(** Hash-consed string keys for the hot path.

    The fact base looks calls up by Call-ID on every SIP packet, and the
    sharded engine partitions traffic by hashing the same Call-ID.  Interning
    maps each distinct key string to a small integer id, so the string is
    hashed exactly once per operation (with {!hash}, the same function the
    shard partitioner uses) and every secondary structure — the call table,
    the media index, the eviction queue — works on cheap integer keys instead
    of rehashing and re-comparing the string. *)

val hash : string -> int
(** FNV-1a over the bytes, folded to a non-negative OCaml [int].  This is
    {e the} partition/intern hash: [Shard.Partition] routes by
    [hash call_id mod shards] and the intern table buckets by the same
    value, so one computation serves both. *)

type t
(** An intern table.  Ids are dense, starting at 0; released ids are
    recycled, so the id space stays proportional to the {e live} key set
    even under sustained key churn. *)

val create : ?size:int -> unit -> t

val intern : t -> string -> int
(** The id for this string, allocating one on first sight.  Ids released
    with {!release} are reused before the table grows. *)

val find : t -> string -> int option
(** The id if already interned, without allocating. *)

val name : t -> int -> string
(** The string behind an id.  Raises [Invalid_argument] on an id never
    handed out; a released id answers [""]. *)

val release : t -> int -> unit
(** Forgets the binding behind an id and recycles the id for a future
    {!intern}.  Idempotent; a caller that keeps a released id around must
    be prepared for [intern] to hand the same id to a {e different} string
    later (the fact base disambiguates with per-record serials). *)

val count : t -> int
(** Number of live (interned and not released) strings. *)
