module V = Efsm.Value

let opt_arg key value rest = match value with None -> rest | Some v -> (key, v) :: rest

let sdp_args ?prof msg =
  match (Sip.Msg.content_type msg, msg.Sip.Msg.body) with
  | Some ct, body when String.length body > 0 && String.equal ct "application/sdp" -> (
      let parsed =
        match prof with
        | None -> Sdp.parse body
        | Some p ->
            Obs.Prof.enter p Obs.Prof.Sdp_parse;
            let r = Sdp.parse body in
            Obs.Prof.exit p Obs.Prof.Sdp_parse;
            r
      in
      match parsed with
      | Error _ -> []
      | Ok description -> (
          match Sdp.first_audio description with
          | None -> []
          | Some media -> (
              match Sdp.media_addr description media with
              | None -> []
              | Some (host, port) ->
                  let pt =
                    match media.Sdp.formats with pt :: _ -> pt | [] -> -1
                  in
                  [
                    (Keys.media_host, V.Str host);
                    (Keys.media_port, V.Int port);
                    (Keys.media_pt, V.Int pt);
                  ])))
  | _ -> []

let of_msg ?prof ~at ~src ~dst msg =
  let name, extra =
    match msg.Sip.Msg.start with
    | Sip.Msg.Request { meth; _ } -> (Sip.Msg_method.to_string meth, [])
    | Sip.Msg.Response { code; _ } -> (Keys.response, [ (Keys.code, V.Int code) ])
  in
  let tag_of field =
    match field msg with
    | Ok na -> Option.map (fun t -> V.Str t) (Sip.Name_addr.tag na)
    | Error _ -> None
  in
  let contact_host =
    match Sip.Msg.contact msg with
    | Ok na -> Some (V.Str na.Sip.Name_addr.uri.Sip.Uri.host)
    | Error _ -> None
  in
  let branch =
    match Sip.Msg.top_via msg with
    | Ok via -> Option.map (fun b -> V.Str b) (Sip.Via.branch via)
    | Error _ -> None
  in
  let cseq =
    match Sip.Msg.cseq msg with
    | Ok c ->
        [
          (Keys.cseq_method, V.Str (Sip.Msg_method.to_string c.Sip.Cseq.meth));
          (Keys.cseq_number, V.Int c.Sip.Cseq.number);
        ]
    | Error _ -> []
  in
  let call_id =
    match Sip.Msg.call_id msg with Ok cid -> [ (Keys.call_id, V.Str cid) ] | Error _ -> []
  in
  let args =
    [
      (Keys.src_ip, V.Str (Dsim.Addr.host src));
      (Keys.src_port, V.Int (Dsim.Addr.port src));
      (Keys.dst_ip, V.Str (Dsim.Addr.host dst));
      (Keys.dst_port, V.Int (Dsim.Addr.port dst));
    ]
    @ extra @ cseq @ call_id @ sdp_args ?prof msg
  in
  let args = opt_arg Keys.from_tag (tag_of Sip.Msg.from_) args in
  let args = opt_arg Keys.to_tag (tag_of Sip.Msg.to_) args in
  let args = opt_arg Keys.contact_host contact_host args in
  let args = opt_arg Keys.branch branch args in
  Efsm.Event.make ~args (Efsm.Event.Data "SIP") ~at name

let media_of_event event =
  if Efsm.Event.has_arg event Keys.media_host then
    match
      (Efsm.Event.arg event Keys.media_host, Efsm.Event.arg event Keys.media_port)
    with
    | V.Str host, V.Int port -> Some (Dsim.Addr.v host port)
    | _ -> None
  else None

let flood_key msg =
  match msg.Sip.Msg.start with
  | Sip.Msg.Request { meth = Sip.Msg_method.INVITE; uri } ->
      let user = Option.value uri.Sip.Uri.user ~default:"" in
      Some (user ^ "@" ^ uri.Sip.Uri.host)
  | Sip.Msg.Request _ | Sip.Msg.Response _ -> None
