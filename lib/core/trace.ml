type record = { at : Dsim.Time.t; src : Dsim.Addr.t; dst : Dsim.Addr.t; payload : string }

let record_of_packet ~at (packet : Dsim.Packet.t) =
  { at; src = packet.src; dst = packet.dst; payload = packet.payload }

let hex_of_string s =
  let buffer = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buffer (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buffer

let string_of_hex h =
  let n = String.length h in
  if n mod 2 <> 0 then Error "odd-length hex payload"
  else
    try
      Ok
        (String.init (n / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2))))
    with Failure _ -> Error "invalid hex digit"

let record_to_line r =
  Printf.sprintf "%d %s %s %s" (Dsim.Time.to_us r.at) (Dsim.Addr.to_string r.src)
    (Dsim.Addr.to_string r.dst) (hex_of_string r.payload)

let record_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ at_str; src_str; dst_str; hex ] -> (
      match
        (int_of_string_opt at_str, Dsim.Addr.of_string src_str, Dsim.Addr.of_string dst_str)
      with
      | Some at, Some src, Some dst -> (
          match string_of_hex hex with
          | Ok payload -> Ok { at = Dsim.Time.of_us at; src; dst; payload }
          | Error e -> Error e)
      | None, _, _ -> Error "bad timestamp"
      | _, None, _ -> Error "bad source address"
      | _, _, None -> Error "bad destination address")
  | [ at_str; src_str; dst_str ] -> (
      (* Empty payload: the hex field is absent. *)
      match
        (int_of_string_opt at_str, Dsim.Addr.of_string src_str, Dsim.Addr.of_string dst_str)
      with
      | Some at, Some src, Some dst -> Ok { at = Dsim.Time.of_us at; src; dst; payload = "" }
      | _ -> Error "malformed record")
  | _ -> Error "malformed record"

let save oc records =
  List.iter
    (fun r ->
      output_string oc (record_to_line r);
      output_char oc '\n')
    records

let load ic =
  let rec go acc line_number =
    match input_line ic with
    | exception End_of_file -> Ok (List.rev acc)
    | "" -> go acc (line_number + 1)
    | line -> (
        match record_of_line line with
        | Ok r -> go (r :: acc) (line_number + 1)
        | Error e -> Error (Printf.sprintf "line %d: %s" line_number e))
  in
  go [] 1

let load_lenient ic =
  let rec go acc skipped line_number =
    match input_line ic with
    | exception End_of_file -> (List.rev acc, List.rev skipped)
    | "" -> go acc skipped (line_number + 1)
    | line -> (
        match record_of_line line with
        | Ok r -> go (r :: acc) skipped (line_number + 1)
        | Error e -> go acc ((line_number, e) :: skipped) (line_number + 1))
  in
  go [] [] 1

type recorder = { mutable entries : record list }

let recorder () = { entries = [] }

let tap t sched (packet : Dsim.Packet.t) =
  t.entries <- record_of_packet ~at:(Dsim.Scheduler.now sched) packet :: t.entries

let records t = List.rev t.entries

let schedule_into ?inject sched engine records =
  let alloc = Dsim.Packet.allocator () in
  let deliver = match inject with Some f -> f | None -> Engine.process_packet engine in
  let sorted = List.stable_sort (fun a b -> Dsim.Time.compare a.at b.at) records in
  List.iter
    (fun r ->
      ignore
        (Dsim.Scheduler.schedule_at sched r.at (fun () ->
             deliver (Dsim.Packet.make alloc ~src:r.src ~dst:r.dst ~sent_at:r.at r.payload))))
    sorted;
  List.length sorted

let replay ?config records =
  let sched = Dsim.Scheduler.create () in
  let engine =
    match config with Some c -> Engine.create ~config:c sched | None -> Engine.create sched
  in
  ignore (schedule_into sched engine records);
  Dsim.Scheduler.run sched;
  engine

let replay_until ?config ~until records =
  let sched = Dsim.Scheduler.create () in
  let engine =
    match config with Some c -> Engine.create ~config:c sched | None -> Engine.create sched
  in
  ignore (schedule_into sched engine records);
  Dsim.Scheduler.run_until sched until;
  (sched, engine)
