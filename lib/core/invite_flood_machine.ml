module M = Efsm.Machine
module I = Efsm.Ir
module Env = Efsm.Env
module V = Efsm.Value

let st_init = "INIT"
let st_counting = "PACKET_RCVD"
let st_flood = "FLOOD_ATTACK"
let window_timer_id = "flood_window_T1"
let machine_name = "INVITE_FLOOD"
let l_count = "l_pck_counter"

let lv n = (Env.Local, n)
let vars : I.decl list = [ (lv l_count, I.D_int) ]

(* Unset counters read as 0 (the machine may see its first timer-window
   reset before any assignment). *)
let next_count = I.Add (I.Int_or0 (I.Var (lv l_count)), I.Int_const 1)
let tr = M.ir_transition

let spec (config : Config.t) =
  let threshold = config.Config.invite_flood_threshold in
  let transitions =
    [
      tr ~label:"first_invite" ~from_state:st_init (M.On_event "INVITE") ~to_state:st_counting
        ~acts:
          [
            I.Assign (lv l_count, I.Const (V.Int 1));
            I.Set_timer { id = window_timer_id; delay = config.Config.invite_flood_window };
          ]
        ();
      tr ~label:"count" ~from_state:st_counting (M.On_event "INVITE") ~to_state:st_counting
        ~guard:(I.Cmp (I.Le, next_count, I.Int_const threshold))
        ~acts:[ I.Assign (lv l_count, I.Of_int next_count) ]
        ();
      tr ~label:"flood" ~from_state:st_counting (M.On_event "INVITE") ~to_state:st_flood
        ~guard:(I.Cmp (I.Gt, next_count, I.Int_const threshold))
        ~acts:[ I.Cancel_timer window_timer_id ]
        ();
      tr ~label:"window_over" ~from_state:st_counting (M.On_timer window_timer_id)
        ~to_state:st_init
        ~acts:[ I.Assign (lv l_count, I.Const (V.Int 0)) ]
        ();
      tr ~label:"flood_more" ~from_state:st_flood (M.On_event "INVITE") ~to_state:st_flood ();
    ]
  in
  {
    M.spec_name = machine_name;
    initial = st_init;
    finals = [];
    attack_states =
      [ (st_flood, Printf.sprintf "more than %d INVITEs within the window" threshold) ];
    transitions;
  }
