(** Alerts raised by the analysis engine. *)

type kind =
  | Invite_flood
  | Bye_dos
  | Cancel_dos
  | Media_spam
  | Rtp_flood
  | Call_hijack
  | Billing_fraud
  | Drdos
  | Registration_hijack
      (** A REGISTER crossing the enterprise boundary: someone outside is
          (re)binding a protected user's contact — our extension; the
          paper's threat model only hints at it via "misconfiguration". *)
  | Spec_deviation  (** Any other departure from the protocol state machines. *)
  | Resource_pressure
      (** The engine shed state or analysis to protect itself: a cap
          eviction, an ageing sweep, or a degraded-mode transition. *)
  | Engine_fault
      (** An exception escaped a state machine or analysis step and was
          contained; the offending call or detector was quarantined. *)

val kind_to_string : kind -> string

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string}; used by the snapshot and journal codecs. *)

val all_kinds : kind list

val pp_kind : Format.formatter -> kind -> unit

val is_attack : kind -> bool
(** Whether this kind reports hostile traffic, as opposed to the engine's
    own health ([Engine_fault], [Resource_pressure]) or bare protocol
    deviations.  Drives the CLI's attacks-detected exit status. *)

type severity = Info | Warning | Critical

val severity_to_string : severity -> string

val severity_of_string : string -> severity option

type t = {
  kind : kind;
  severity : severity;
  at : Dsim.Time.t;
  subject : string;
      (** What the alert is about: a Call-ID, a destination address, or a
          stream key.  Used for de-duplication. *)
  detail : string;
}

val make : kind:kind -> ?severity:severity -> at:Dsim.Time.t -> subject:string -> string -> t

val dedup_key : t -> string

val pp : Format.formatter -> t -> unit

val default_severity : kind -> severity
