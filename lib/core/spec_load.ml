let known_machines =
  [
    Keys.sip_machine;
    Keys.rtp_machine;
    Invite_flood_machine.machine_name;
    Media_spam_machine.machine_name;
    Drdos_machine.machine_name;
  ]

let externs config =
  {
    Spec.Elaborate.find_pred =
      (function
      | "is_spam" -> Some (Media_spam_machine.is_spam_opaque config) | _ -> None);
    find_act =
      (function "advance_baseline" -> Some Media_spam_machine.advance_opaque | _ -> None);
  }

let builtins config =
  [
    ("sip-call", (Sip_call_machine.spec config, Sip_call_machine.vars));
    ("rtp-call", (Rtp_call_machine.spec config, Rtp_call_machine.vars));
    ("invite-flood", (Invite_flood_machine.spec config, Invite_flood_machine.vars));
    ("media-spam", (Media_spam_machine.spec config, Media_spam_machine.vars));
    ("drdos", (Drdos_machine.spec config, Drdos_machine.vars));
  ]

let builtin_for config name =
  let all = builtins config in
  match List.assoc_opt name all with
  | Some _ as found -> found
  | None ->
      List.find_map
        (fun (_, ((spec, _) as entry)) ->
          if String.equal spec.Efsm.Machine.spec_name name then Some entry else None)
        all

let load_files config paths =
  match
    Spec.Front_end.load_files ~known_machines ~externs:(externs config) paths
  with
  | Error e -> Error e
  | Ok (loaded, diags, sources) ->
      let unknown =
        List.filter
          (fun (l : Spec.Front_end.loaded) ->
            not (List.mem l.Spec.Front_end.l_name known_machines))
          loaded
      in
      if Spec.Diag.has_errors diags || unknown <> [] then
        let rendered =
          List.map
            (fun (d : Spec.Diag.t) ->
              let source =
                List.assoc_opt d.Spec.Diag.span.Spec.Loc.s.Spec.Loc.file sources
              in
              Spec.Diag.render ?source d)
            diags
          @ List.map
              (fun (l : Spec.Front_end.loaded) ->
                Printf.sprintf
                  "%s: machine %s does not override a builtin (expected one of %s)"
                  l.Spec.Front_end.l_file l.Spec.Front_end.l_name
                  (String.concat ", " known_machines))
              unknown
        in
        Error (String.concat "\n" rendered)
      else
        Ok
          (List.map
             (fun (l : Spec.Front_end.loaded) ->
               (l.Spec.Front_end.l_name, l.Spec.Front_end.l_spec))
             loaded)
