(** Write-ahead alert/eviction journal.

    Checkpoints ({!Snapshot}) are periodic; the journal is continuous.
    Every distinct alert and every resource reclamation is appended and
    flushed the moment it happens, so a crash between checkpoints loses no
    delivered alert.  [Checkpoint] marker entries pair the journal with
    snapshot sequence numbers so recovery can split it at exactly the
    right point.

    Each line carries its own CRC-32.  The loader is lenient by design:
    a line torn by the crash itself (the expected failure mode for an
    append-only file) is skipped and reported, never fatal. *)

type entry =
  | Alert of Alert.t
  | Eviction of { at : Dsim.Time.t; subject : string; detail : string }
  | Checkpoint of { at : Dsim.Time.t; seq : int }
      (** Written right after a snapshot with this sequence number is
          durably saved. *)
  | Ext of { at : Dsim.Time.t; tag : string; payload : string }
      (** Opaque record for a subsystem layered on top of the engine (e.g.
          an enforcement decision).  Journaled with the same durability as
          an alert; recovery hands the post-checkpoint suffix back to the
          owning subsystem ({!Recovery.recover}'s [on_ext]). *)

val entry_at : entry -> Dsim.Time.t

val entry_to_line : entry -> string
(** One line, no newline: [<crc32> <tag> <fields…>] with strings
    hex-armored. *)

val entry_of_line : string -> (entry, string) result
(** Total: CRC mismatches and malformed fields are [Error]. *)

(** {1 Writing} *)

type writer

val create_writer : ?registry:Obs.Metrics.t -> string -> writer
(** Opens (append, create) the journal file.  With [registry], each
    append+flush's wall-clock duration is observed into a
    [vids_journal_append_seconds] histogram. *)

val append : writer -> entry -> unit
(** Appends and flushes one entry. *)

val fsync_writer : writer -> unit
(** Forces the journal past the OS cache ([fsync]).  Appends flush to the
    kernel on every entry; full durability is batched — the daemon calls
    this at each checkpoint and at shutdown. *)

val close_writer : writer -> unit
(** Fsyncs, then closes. *)

val attach : writer -> Engine.t -> unit
(** Subscribes the writer to the engine's alert and eviction streams so
    every subsequent event is journaled write-ahead. *)

(** {1 Reading} *)

val load_lenient_channel : in_channel -> entry list * (int * string) list
(** Reads every line; undecodable lines come back as [(line_no, reason)]
    diagnostics instead of aborting the load. *)

val load_lenient : string -> (entry list * (int * string) list, string) result
(** [Error] only when the file itself cannot be opened. *)

val suffix_after : seq:int -> at:Dsim.Time.t -> entry list -> entry list
(** Entries recorded after the [Checkpoint] marker with the given sequence
    number — the part of the journal the snapshot does not already cover.
    When no such marker exists (rotated journal, pre-journal snapshot),
    falls back to entries timestamped strictly after [at]. *)
