(** INVITE request flooding detector (paper Figure 4).

    One instance per destination address.  The first INVITE starts the
    window timer T1 and a counter; when more than N INVITEs to the same
    destination arrive within the window, the machine enters the attack
    state.  The window expiring resets the pattern. *)

val spec : Config.t -> Efsm.Machine.spec

val vars : Efsm.Ir.decl list
(** Declared variable domains, consumed by the static verifier. *)

val st_init : string

val st_counting : string
(** The paper's (Packet_Rcvd) state. *)

val st_flood : string

val window_timer_id : string

val machine_name : string
