(* Supervised engine lifecycle: chaos kills, checkpoints, restarts.

   The supervisor drives an engine over a packet trace inside the virtual
   clock and kills it at the requested instants.  Everything since the last
   durable checkpoint dies with the process; the supervisor restarts it
   under a bounded restart budget with exponential backoff (or promotes a
   warm standby after a short failover delay), recovers from the latest
   valid snapshot + journal + recorded-trace suffix, and accounts for the
   packets that crossed the wire while the sensor was down — an inline
   sensor forwards them unanalyzed, so they are missed forever, not
   replayed.

   Checkpoints round-trip through the wire format (to_string/of_string), so
   every supervised run also exercises the codec on the exact bytes a real
   checkpoint file would hold. *)

type policy = {
  checkpoint_every : Dsim.Time.t;  (** Checkpoint grid period (virtual time). *)
  max_restarts : int;
  backoff_initial : Dsim.Time.t;  (** Downtime of the first cold restart. *)
  backoff_factor : float;  (** Growth per consecutive crash without a checkpoint. *)
  backoff_cap : Dsim.Time.t;
      (** Ceiling on one backoff interval: keeps a long crash streak from
          exponentiating past the run horizon (or past [int_of_float]'s
          defined range, which would turn the outage negative). *)
  warm_standby : bool;  (** Keep a restored engine validated at each checkpoint. *)
  failover_delay : Dsim.Time.t;  (** Downtime when promoting the warm standby. *)
  replay_suffix : bool;  (** Replay recorded packets after the snapshot instant. *)
  drain : Dsim.Time.t;  (** How long to keep running after the last packet. *)
}

let default_policy =
  {
    checkpoint_every = Dsim.Time.of_sec 5.0;
    max_restarts = 5;
    backoff_initial = Dsim.Time.of_ms 200.0;
    backoff_factor = 2.0;
    backoff_cap = Dsim.Time.of_sec 30.0;
    warm_standby = false;
    failover_delay = Dsim.Time.of_ms 20.0;
    replay_suffix = true;
    drain = Dsim.Time.of_sec 1.0;
  }

type report = {
  crashes : int;
  restarts : int;
  gave_up : bool;  (** Restart budget exhausted before the trace ended. *)
  packets_missed : int;
  downtime_total : Dsim.Time.t;
  checkpoints : int;
  standby_promotions : int;
  engine : Engine.t;  (** The final incarnation (the dead one if [gave_up]). *)
  sched : Dsim.Scheduler.t;
  end_at : Dsim.Time.t;
}

let run ?(policy = default_policy) ?config ?metrics ?flight ~trace ~kill_at () =
  (* Supervisor-level instruments; engine-level ones are attached per
     incarnation, onto the same registry, so counters accumulate across
     restarts. *)
  let sup_counter name help =
    Option.map (fun m -> Obs.Metrics.counter m name ~help) metrics
  in
  let crashes_c = sup_counter "vids_supervisor_crashes_total" "Engine incarnations killed" in
  let restarts_c = sup_counter "vids_supervisor_restarts_total" "Engine restarts attempted" in
  let promotions_c =
    sup_counter "vids_supervisor_promotions_total" "Warm standbys promoted"
  in
  let checkpoints_c = sup_counter "vids_supervisor_checkpoints_total" "Checkpoints taken" in
  let checkpoint_h =
    Option.map
      (fun m ->
        Obs.Metrics.histogram m "vids_checkpoint_seconds"
          ~help:"Wall-clock duration of capture + wire round-trip per checkpoint")
      metrics
  in
  let tick c = Option.iter Obs.Metrics.incr c in
  let records = List.stable_sort (fun a b -> Dsim.Time.compare a.Trace.at b.Trace.at) trace in
  let end_at =
    match List.rev records with
    | [] -> policy.drain
    | last :: _ -> Dsim.Time.add last.Trace.at policy.drain
  in
  let kills =
    List.sort_uniq Dsim.Time.compare kill_at
    |> List.filter (fun t -> Dsim.Time.( > ) t Dsim.Time.zero && Dsim.Time.( < ) t end_at)
  in
  let in_window lo hi =
    List.filter (fun r -> Dsim.Time.( >= ) r.Trace.at lo && Dsim.Time.( < ) r.Trace.at hi) records
  in
  (* The journal and the latest checkpoint model durable storage: they
     survive crashes.  Everything else dies with the incarnation. *)
  let journal = ref [] (* newest first *) in
  let snapshot = ref None in
  let seq = ref 0 in
  let checkpoints = ref 0 in
  let standby_ok = ref false in
  let consecutive = ref 0 in
  let crashes = ref 0 in
  let restarts = ref 0 in
  let standby_promotions = ref 0 in
  let missed = ref 0 in
  let downtime_total = ref Dsim.Time.zero in
  let gave_up = ref false in
  let journal_entries () = List.rev !journal in
  let journal_alerts entries =
    List.filter_map (function Journal.Alert a -> Some a | _ -> None) entries
  in
  let attach_journal engine =
    Engine.on_alert engine (fun alert -> journal := Journal.Alert alert :: !journal);
    Engine.on_eviction engine (fun ~at ~subject ~detail ->
        journal := Journal.Eviction { at; subject; detail } :: !journal)
  in
  let checkpoint sched engine () =
    let at = Dsim.Scheduler.now sched in
    let t0 = match checkpoint_h with None -> 0.0 | Some _ -> Unix.gettimeofday () in
    let snap = Snapshot.capture ~seq:(!seq + 1) ~at engine in
    let roundtrip = Snapshot.of_string (Snapshot.to_string snap) in
    Option.iter (fun h -> Obs.Metrics.observe h (Unix.gettimeofday () -. t0)) checkpoint_h;
    match roundtrip with
    | Error _ -> () (* an unwritable checkpoint keeps the previous one *)
    | Ok snap ->
        incr seq;
        snapshot := Some snap;
        journal := Journal.Checkpoint { at; seq = !seq } :: !journal;
        incr checkpoints;
        tick checkpoints_c;
        Option.iter
          (fun fl -> Obs.Trace.record fl ~at (Obs.Trace.Checkpoint { seq = !seq }))
          flight;
        (* A completed checkpoint is the health signal that resets backoff. *)
        consecutive := 0;
        if policy.warm_standby then
          standby_ok :=
            (match Snapshot.restore ?config snap with Ok _ -> true | Error _ -> false)
  in
  let schedule_checkpoints sched engine ~stop =
    if Dsim.Time.( > ) policy.checkpoint_every Dsim.Time.zero then begin
      let period = Dsim.Time.to_us policy.checkpoint_every in
      let first = ((Dsim.Time.to_us (Dsim.Scheduler.now sched) / period) + 1) * period in
      let t = ref (Dsim.Time.of_us first) in
      while Dsim.Time.( < ) !t stop do
        ignore (Dsim.Scheduler.schedule_at sched !t (checkpoint sched engine));
        t := Dsim.Time.add !t policy.checkpoint_every
      done
    end
  in
  let cold_start ~start ~stop =
    let sched = Dsim.Scheduler.create () in
    Dsim.Scheduler.run_until sched start;
    let engine =
      match config with Some c -> Engine.create ~config:c sched | None -> Engine.create sched
    in
    Engine.set_telemetry engine ?metrics ?flight ();
    attach_journal engine;
    (* With no snapshot the journal is all that survives: replaying it
       restores the alert log even though the machine state is lost. *)
    List.iter (Engine.merge_journal_alert engine) (journal_alerts (journal_entries ()));
    ignore (Trace.schedule_into sched engine (in_window start stop));
    schedule_checkpoints sched engine ~stop;
    (sched, engine)
  in
  (* [died] is the instant the previous incarnation was killed; the
     recorded trace stops there, so the replay suffix does too. *)
  let incarnation ~start ~stop ~died =
    match (!snapshot, died) with
    | Some snap, Some died when Dsim.Time.( <= ) (Snapshot.at snap) died -> (
        let snap_at = Snapshot.at snap in
        let suffix =
          Journal.suffix_after ~seq:(Snapshot.seq snap) ~at:snap_at (journal_entries ())
        in
        let replayable =
          if policy.replay_suffix then
            List.filter
              (fun r ->
                Dsim.Time.( > ) r.Trace.at snap_at && Dsim.Time.( < ) r.Trace.at died)
              records
          else []
        in
        let before_timers sched engine =
          Engine.set_telemetry engine ?metrics ?flight ();
          attach_journal engine;
          List.iter (Engine.merge_journal_alert engine) (journal_alerts suffix);
          ignore (Trace.schedule_into sched engine replayable);
          ignore (Trace.schedule_into sched engine (in_window start stop));
          schedule_checkpoints sched engine ~stop
        in
        match Snapshot.restore ?config ~before_timers snap with
        | Ok (sched, engine) -> (sched, engine)
        | Error _ -> cold_start ~start ~stop)
    | _ -> cold_start ~start ~stop
  in
  let backoff () =
    let us = float_of_int (Dsim.Time.to_us policy.backoff_initial) in
    let cap = float_of_int (Dsim.Time.to_us (Dsim.Time.max policy.backoff_cap policy.backoff_initial)) in
    let n = max 1 !consecutive in
    (* Clamp in float space: [factor ** n] overflows to [infinity] long
       before [int_of_float] would produce garbage, and [min] with a
       finite cap absorbs both the overflow and the merely-huge cases. *)
    let d = us *. (policy.backoff_factor ** float_of_int (n - 1)) in
    Dsim.Time.of_us (int_of_float (Float.min d cap))
  in
  let rec segments ~start ~died kills =
    let stop, killed, rest =
      match kills with [] -> (end_at, false, []) | k :: r -> (k, true, r)
    in
    let ((sched, engine) as inc) = incarnation ~start ~stop ~died in
    (match died with
    | Some kill when Dsim.Time.( > ) start kill ->
        let seg_missed = List.length (in_window kill start) in
        Engine.record_downtime engine ~start:kill ~stop:start ~missed:seg_missed
    | _ -> ());
    Dsim.Scheduler.run_until sched stop;
    if not killed then (inc, stop)
    else begin
      incr crashes;
      tick crashes_c;
      (* The restart is the other moment the flight recorder exists for:
         dump the tail so the events leading into the kill survive the
         incarnation that recorded them. *)
      Option.iter
        (fun fl ->
          Obs.Trace.record fl ~at:stop
            (Obs.Trace.Note
               { label = "crash"; detail = Printf.sprintf "killed at %d us" (Dsim.Time.to_us stop) });
          ignore (Obs.Trace.dump fl ~reason:"supervisor restart"))
        flight;
      if !restarts >= policy.max_restarts then begin
        gave_up := true;
        missed := !missed + List.length (in_window stop end_at);
        downtime_total := Dsim.Time.add !downtime_total (Dsim.Time.sub end_at stop);
        (inc, stop)
      end
      else begin
        incr restarts;
        tick restarts_c;
        incr consecutive;
        let outage =
          if policy.warm_standby && !standby_ok then begin
            incr standby_promotions;
            tick promotions_c;
            standby_ok := false;
            policy.failover_delay
          end
          else backoff ()
        in
        let restart_at = Dsim.Time.min (Dsim.Time.add stop outage) end_at in
        missed := !missed + List.length (in_window stop restart_at);
        downtime_total := Dsim.Time.add !downtime_total (Dsim.Time.sub restart_at stop);
        if Dsim.Time.( >= ) restart_at end_at then (inc, stop)
        else
          (* Kills landing inside the outage hit a process that is not up;
             they are absorbed by the same restart. *)
          let rest = List.filter (fun k -> Dsim.Time.( > ) k restart_at) rest in
          segments ~start:restart_at ~died:(Some stop) rest
      end
    end
  in
  let (sched, engine), _last = segments ~start:Dsim.Time.zero ~died:None kills in
  {
    crashes = !crashes;
    restarts = !restarts;
    gave_up = !gave_up;
    packets_missed = !missed;
    downtime_total = !downtime_total;
    checkpoints = !checkpoints;
    standby_promotions = !standby_promotions;
    engine;
    sched;
    end_at;
  }
