(** The Packet Classifier component (paper Figure 3).

    Sorts raw datagrams into SIP signaling, RTP media, RTCP and other
    traffic, parsing the wire bytes with the real protocol parsers.  A
    message on a signaling port that fails to parse is itself a reportable
    condition. *)

type classification =
  | Sip of Sip.Msg.t
  | Rtp of Rtp.Rtp_packet.t
  | Rtcp of Rtp.Rtcp.t
  | Malformed_sip of string  (** Parse error text. *)
  | Malformed_rtp of string
  | Other

val classify :
  ?prof:Obs.Prof.t -> known_media:(Dsim.Addr.t -> bool) -> Dsim.Packet.t -> classification
(** [known_media] answers whether an address is a registered media endpoint
    (from the fact base); unknown ports in the dynamic RTP range are also
    tried as media.  With [prof], the wire-parse calls run inside
    [Sip_parse] / [Rtp_parse] spans. *)

val sip_port : int

val rtp_port_range : int * int
(** Dynamic range used by the simulated endpoints; even = RTP, odd = RTCP. *)

val quick_protocol : Dsim.Packet.t -> [ `Sip | `Media | `Other ]
(** Port-only classification, used by the inline delay model. *)
