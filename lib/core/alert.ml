type kind =
  | Invite_flood
  | Bye_dos
  | Cancel_dos
  | Media_spam
  | Rtp_flood
  | Call_hijack
  | Billing_fraud
  | Drdos
  | Registration_hijack
  | Spec_deviation
  | Resource_pressure
  | Engine_fault

let kind_to_string = function
  | Invite_flood -> "INVITE-flood"
  | Bye_dos -> "BYE-DoS"
  | Cancel_dos -> "CANCEL-DoS"
  | Media_spam -> "media-spam"
  | Rtp_flood -> "RTP-flood"
  | Call_hijack -> "call-hijack"
  | Billing_fraud -> "billing-fraud"
  | Drdos -> "DRDoS"
  | Registration_hijack -> "registration-hijack"
  | Spec_deviation -> "spec-deviation"
  | Resource_pressure -> "resource-pressure"
  | Engine_fault -> "engine-fault"

let all_kinds =
  [
    Invite_flood; Bye_dos; Cancel_dos; Media_spam; Rtp_flood; Call_hijack; Billing_fraud; Drdos;
    Registration_hijack; Spec_deviation; Resource_pressure; Engine_fault;
  ]

let kind_of_string s = List.find_opt (fun k -> String.equal (kind_to_string k) s) all_kinds

let pp_kind ppf kind = Format.pp_print_string ppf (kind_to_string kind)

type severity = Info | Warning | Critical

let severity_to_string = function Info -> "info" | Warning -> "warning" | Critical -> "critical"

let severity_of_string = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "critical" -> Some Critical
  | _ -> None

let default_severity = function
  | Invite_flood | Bye_dos | Cancel_dos | Media_spam | Rtp_flood | Call_hijack | Billing_fraud
  | Drdos ->
      Critical
  | Registration_hijack | Spec_deviation | Resource_pressure -> Warning
  | Engine_fault -> Critical

let is_attack = function
  | Invite_flood | Bye_dos | Cancel_dos | Media_spam | Rtp_flood | Call_hijack | Billing_fraud
  | Drdos | Registration_hijack ->
      true
  | Spec_deviation | Resource_pressure | Engine_fault -> false

type t = { kind : kind; severity : severity; at : Dsim.Time.t; subject : string; detail : string }

let make ~kind ?severity ~at ~subject detail =
  let severity = match severity with Some s -> s | None -> default_severity kind in
  { kind; severity; at; subject; detail }

let dedup_key t = kind_to_string t.kind ^ "|" ^ t.subject

let pp_severity ppf = function
  | Info -> Format.pp_print_string ppf "INFO"
  | Warning -> Format.pp_print_string ppf "WARN"
  | Critical -> Format.pp_print_string ppf "CRIT"

let pp ppf t =
  Format.fprintf ppf "[%a] %a %a subject=%s: %s" Dsim.Time.pp t.at pp_severity t.severity pp_kind
    t.kind t.subject t.detail
