(** Supervised engine lifecycle: chaos kills, checkpoints, restarts.

    Drives an engine over a trace inside the virtual clock, kills it at
    chosen instants (losing everything since the last checkpoint), and
    brings it back: restore the latest valid snapshot, merge the journal,
    replay the recorded-trace suffix, resume live analysis.  Restarts are
    bounded by a budget with exponential backoff; with [warm_standby] a
    restored engine validated at each checkpoint is promoted after a short
    failover delay instead.  Packets on the wire during an outage are
    counted as missed — an inline sensor forwards them unanalyzed. *)

type policy = {
  checkpoint_every : Dsim.Time.t;  (** Checkpoint grid period (virtual time). *)
  max_restarts : int;
  backoff_initial : Dsim.Time.t;  (** Downtime of the first cold restart. *)
  backoff_factor : float;  (** Growth per consecutive crash without a checkpoint. *)
  backoff_cap : Dsim.Time.t;
      (** Ceiling on one backoff interval; clamped in float space so a long
          crash streak can neither outlast the horizon nor overflow the
          microsecond integer. *)
  warm_standby : bool;  (** Keep a restored engine validated at each checkpoint. *)
  failover_delay : Dsim.Time.t;  (** Downtime when promoting the warm standby. *)
  replay_suffix : bool;  (** Replay recorded packets after the snapshot instant. *)
  drain : Dsim.Time.t;  (** How long to keep running after the last packet. *)
}

val default_policy : policy
(** 5 s checkpoints, 5 restarts, 200 ms backoff doubling per consecutive
    crash capped at 30 s, no standby, suffix replay on. *)

type report = {
  crashes : int;
  restarts : int;
  gave_up : bool;  (** Restart budget exhausted before the trace ended. *)
  packets_missed : int;
  downtime_total : Dsim.Time.t;
  checkpoints : int;
  standby_promotions : int;
  engine : Engine.t;  (** The final incarnation (the dead one if [gave_up]). *)
  sched : Dsim.Scheduler.t;
  end_at : Dsim.Time.t;  (** Run horizon: last packet plus [drain]. *)
}

val run :
  ?policy:policy ->
  ?config:Config.t ->
  ?metrics:Obs.Metrics.t ->
  ?flight:Obs.Trace.t ->
  trace:Trace.record list ->
  kill_at:Dsim.Time.t list ->
  unit ->
  report
(** Simulates the supervised sensor over [trace], crashing the engine at
    each [kill_at] instant (kills at or before time zero, past the end, or
    landing inside an ongoing outage are absorbed).  Checkpoints round-trip
    through the snapshot wire format, so the codec is exercised on every
    run.

    With [metrics]/[flight], every incarnation is instrumented onto the
    same registry and ring (counters accumulate across restarts); the
    supervisor adds [vids_supervisor_{crashes,restarts,promotions,
    checkpoints}_total] and a wall-clock [vids_checkpoint_seconds]
    histogram, and dumps the flight-recorder tail at every kill so the
    events leading into a crash survive it. *)
