module M = Efsm.Machine
module I = Efsm.Ir
module Env = Efsm.Env
module V = Efsm.Value

let st_init = "INIT"
let st_invite_rcvd = "INVITE_RCVD"
let st_proceeding = "PROCEEDING"
let st_established = "ESTABLISHED"
let st_confirmed = "CONFIRMED"
let st_reinvite_pending = "REINVITE_PENDING"
let st_teardown = "TEARDOWN"
let st_cancelling = "CANCELLING"
let st_failed = "FAILED"
let st_closed = "CLOSED"
let st_registering = "REGISTERING"
let st_options_pending = "OPTIONS_PENDING"
let st_cancel_dos = "CANCEL_DOS_ATTACK"
let st_hijack = "HIJACK_ATTACK"

(* Local variable names. *)
let l_call_id = "l_call_id"
let l_from_tag = "l_from_tag"
let l_to_tag = "l_to_tag"
let l_branch = "l_branch"
let l_invite_src = "l_invite_src"
let l_caller_contact = "l_caller_contact"
let l_callee_contact = "l_callee_contact"

let lv n = (Env.Local, n)
let gv n = (Env.Global, n)
let fld k = I.Field k
let local n = I.Var (lv n)
let global n = I.Var (gv n)

let vars : I.decl list =
  [
    (lv l_call_id, I.D_str);
    (lv l_from_tag, I.D_str);
    (lv l_to_tag, I.D_str);
    (lv l_branch, I.D_str);
    (lv l_invite_src, I.D_str);
    (lv l_caller_contact, I.D_str);
    (lv l_callee_contact, I.D_str);
    (gv Keys.g_caller_media, I.D_addr);
    (gv Keys.g_callee_media, I.D_addr);
    (gv Keys.g_codec, I.D_int);
  ]

(* ------------------------------------------------------------------ *)
(* Guards                                                              *)
(* ------------------------------------------------------------------ *)

let code = I.Int_of (fld Keys.code)

let code_between lo hi =
  I.And [ I.Cmp (I.Ge, code, I.Int_const lo); I.Cmp (I.Le, code, I.Int_const hi) ]

let cseq_is meth = I.Eq (fld Keys.cseq_method, I.Const (V.Str meth))
let is_1xx = code_between 100 199
let is_2xx_invite = I.And [ code_between 200 299; cseq_is "INVITE" ]
let is_fail_invite = I.And [ code_between 300 699; cseq_is "INVITE" ]
let is_2xx_bye = I.And [ code_between 200 299; cseq_is "BYE" ]
let is_final = code_between 200 699
let same_var name key = I.Eq (fld key, local name)

(* Does the From tag of an in-dialog request name one of the two
   participants (in either orientation)? *)
let dialog_tags_match =
  I.Or
    [
      I.And
        [ I.Eq (fld Keys.from_tag, local l_from_tag); I.Eq (fld Keys.to_tag, local l_to_tag) ];
      I.And
        [ I.Eq (fld Keys.from_tag, local l_to_tag); I.Eq (fld Keys.to_tag, local l_from_tag) ];
    ]

let src_is_participant =
  I.Or
    [
      I.Eq (fld Keys.src_ip, local l_caller_contact);
      I.Eq (fld Keys.src_ip, local l_callee_contact);
    ]

(* ------------------------------------------------------------------ *)
(* Actions                                                             *)
(* ------------------------------------------------------------------ *)

let media_args =
  [
    (Keys.media_host, fld Keys.media_host);
    (Keys.media_port, fld Keys.media_port);
    (Keys.media_pt, fld Keys.media_pt);
  ]

let store_offer_media =
  I.If
    ( I.Has_field Keys.media_host,
      [
        I.Assign (gv Keys.g_caller_media, I.Mk_addr (fld Keys.media_host, fld Keys.media_port));
        I.Assign (gv Keys.g_codec, fld Keys.media_pt);
        I.Send_sync
          { target = Keys.rtp_machine; event_name = Keys.delta_media_offer; args = media_args };
      ],
      [] )

let store_answer_media =
  I.If
    ( I.Has_field Keys.media_host,
      [
        I.Assign (gv Keys.g_callee_media, I.Mk_addr (fld Keys.media_host, fld Keys.media_port));
        I.Send_sync
          { target = Keys.rtp_machine; event_name = Keys.delta_media_answer; args = media_args };
      ],
      [] )

let on_invite =
  [
    I.Assign (lv l_call_id, fld Keys.call_id);
    I.Assign (lv l_from_tag, fld Keys.from_tag);
    I.Assign (lv l_branch, fld Keys.branch);
    I.Assign (lv l_invite_src, fld Keys.src_ip);
    I.Assign (lv l_caller_contact, fld Keys.contact_host);
    store_offer_media;
  ]

let on_2xx_invite =
  [
    I.Assign (lv l_to_tag, fld Keys.to_tag);
    I.Assign (lv l_callee_contact, fld Keys.contact_host);
    store_answer_media;
  ]

(* A BYE names its sender via the From tag.  The δ message carries the
   claimed sender's media host (so the RTP machine can attribute later
   packets) and whether the network source actually was that participant's
   contact address — the discriminator between billing fraud and a spoofed
   BYE (paper §3.1). *)
let on_bye =
  let delta ~media_global ~contact =
    [
      I.Send_sync
        {
          target = Keys.rtp_machine;
          event_name = Keys.delta_bye;
          args =
            [
              (Keys.bye_sender_ip, I.Addr_host (global media_global));
              ("src_matched", I.Of_pred (I.Eq (fld Keys.src_ip, local contact)));
            ];
        };
    ]
  in
  [
    I.If
      ( I.Eq (fld Keys.from_tag, local l_from_tag),
        delta ~media_global:Keys.g_caller_media ~contact:l_caller_contact,
        delta ~media_global:Keys.g_callee_media ~contact:l_callee_contact );
  ]

(* ------------------------------------------------------------------ *)
(* The specification                                                   *)
(* ------------------------------------------------------------------ *)

let tr = M.ir_transition

let spec (_config : Config.t) =
  let transitions =
    [
      (* --- Call setup --- *)
      tr ~label:"inv_new" ~from_state:st_init (M.On_event "INVITE") ~to_state:st_invite_rcvd
        ~acts:on_invite ();
      tr ~label:"inv_retrans" ~from_state:st_invite_rcvd (M.On_event "INVITE")
        ~to_state:st_invite_rcvd
        ~guard:(same_var l_branch Keys.branch)
        ();
      tr ~label:"resp_1xx" ~from_state:st_invite_rcvd (M.On_event Keys.response)
        ~to_state:st_proceeding ~guard:is_1xx ();
      tr ~label:"resp_1xx_more" ~from_state:st_proceeding (M.On_event Keys.response)
        ~to_state:st_proceeding ~guard:is_1xx ();
      tr ~label:"inv_retrans_proc" ~from_state:st_proceeding (M.On_event "INVITE")
        ~to_state:st_proceeding
        ~guard:(same_var l_branch Keys.branch)
        ();
      tr ~label:"resp_2xx_direct" ~from_state:st_invite_rcvd (M.On_event Keys.response)
        ~to_state:st_established ~guard:is_2xx_invite ~acts:on_2xx_invite ();
      tr ~label:"resp_2xx" ~from_state:st_proceeding (M.On_event Keys.response)
        ~to_state:st_established ~guard:is_2xx_invite ~acts:on_2xx_invite ();
      tr ~label:"resp_fail_direct" ~from_state:st_invite_rcvd (M.On_event Keys.response)
        ~to_state:st_failed ~guard:is_fail_invite ();
      tr ~label:"resp_fail" ~from_state:st_proceeding (M.On_event Keys.response)
        ~to_state:st_failed ~guard:is_fail_invite ();
      (* --- Establishment --- *)
      tr ~label:"ack" ~from_state:st_established (M.On_event "ACK") ~to_state:st_confirmed ();
      tr ~label:"resp_2xx_retrans_est" ~from_state:st_established (M.On_event Keys.response)
        ~to_state:st_established ~guard:is_2xx_invite ();
      tr ~label:"resp_2xx_retrans_conf" ~from_state:st_confirmed (M.On_event Keys.response)
        ~to_state:st_confirmed ~guard:is_2xx_invite ();
      tr ~label:"ack_retrans" ~from_state:st_confirmed (M.On_event "ACK") ~to_state:st_confirmed
        ();
      (* --- Re-INVITE vs hijack --- *)
      tr ~label:"reinvite" ~from_state:st_confirmed (M.On_event "INVITE")
        ~to_state:st_reinvite_pending
        ~guard:(I.And [ dialog_tags_match; src_is_participant ])
        ();
      tr ~label:"hijack" ~from_state:st_confirmed (M.On_event "INVITE") ~to_state:st_hijack
        ~guard:(I.Not (I.And [ dialog_tags_match; src_is_participant ]))
        ();
      tr ~label:"hijack_absorb_inv" ~from_state:st_hijack (M.On_event "INVITE")
        ~to_state:st_hijack ();
      tr ~label:"hijack_absorb_resp" ~from_state:st_hijack (M.On_event Keys.response)
        ~to_state:st_hijack ();
      tr ~label:"hijack_absorb_ack" ~from_state:st_hijack (M.On_event "ACK") ~to_state:st_hijack
        ();
      tr ~label:"hijack_absorb_bye" ~from_state:st_hijack (M.On_event "BYE") ~to_state:st_hijack
        ();
      tr ~label:"reinv_1xx" ~from_state:st_reinvite_pending (M.On_event Keys.response)
        ~to_state:st_reinvite_pending ~guard:is_1xx ();
      tr ~label:"reinv_retrans" ~from_state:st_reinvite_pending (M.On_event "INVITE")
        ~to_state:st_reinvite_pending ();
      tr ~label:"reinv_2xx" ~from_state:st_reinvite_pending (M.On_event Keys.response)
        ~to_state:st_confirmed ~guard:is_2xx_invite ~acts:[ store_answer_media ] ();
      tr ~label:"reinv_fail" ~from_state:st_reinvite_pending (M.On_event Keys.response)
        ~to_state:st_confirmed ~guard:is_fail_invite ();
      tr ~label:"reinv_ack" ~from_state:st_reinvite_pending (M.On_event "ACK")
        ~to_state:st_confirmed ();
      tr ~label:"reinv_bye" ~from_state:st_reinvite_pending (M.On_event "BYE")
        ~to_state:st_teardown
        ~guard:(I.Or [ same_var l_from_tag Keys.from_tag; same_var l_to_tag Keys.from_tag ])
        ~acts:on_bye ();
      (* --- Teardown --- *)
      tr ~label:"bye" ~from_state:st_confirmed (M.On_event "BYE") ~to_state:st_teardown
        ~guard:(I.Or [ same_var l_from_tag Keys.from_tag; same_var l_to_tag Keys.from_tag ])
        ~acts:on_bye ();
      tr ~label:"bye_early" ~from_state:st_established (M.On_event "BYE") ~to_state:st_teardown
        ~guard:(I.Or [ same_var l_from_tag Keys.from_tag; same_var l_to_tag Keys.from_tag ])
        ~acts:on_bye ();
      tr ~label:"bye_preanswer" ~from_state:st_proceeding (M.On_event "BYE")
        ~to_state:st_teardown
        ~guard:(same_var l_from_tag Keys.from_tag)
        ~acts:on_bye ();
      tr ~label:"bye_retrans" ~from_state:st_teardown (M.On_event "BYE") ~to_state:st_teardown
        ();
      tr ~label:"resp_2xx_bye" ~from_state:st_teardown (M.On_event Keys.response)
        ~to_state:st_closed ~guard:is_2xx_bye ();
      tr ~label:"teardown_other_resp" ~from_state:st_teardown (M.On_event Keys.response)
        ~to_state:st_teardown ~guard:(I.Not is_2xx_bye) ();
      (* --- CANCEL: legitimate vs third-party DoS (paper §3.1) --- *)
      tr ~label:"cancel_inv" ~from_state:st_invite_rcvd (M.On_event "CANCEL")
        ~to_state:st_cancelling
        ~guard:(same_var l_invite_src Keys.src_ip)
        ();
      tr ~label:"cancel_dos_inv" ~from_state:st_invite_rcvd (M.On_event "CANCEL")
        ~to_state:st_cancel_dos
        ~guard:(I.Not (same_var l_invite_src Keys.src_ip))
        ();
      tr ~label:"cancel_proc" ~from_state:st_proceeding (M.On_event "CANCEL")
        ~to_state:st_cancelling
        ~guard:(same_var l_invite_src Keys.src_ip)
        ();
      tr ~label:"cancel_dos_proc" ~from_state:st_proceeding (M.On_event "CANCEL")
        ~to_state:st_cancel_dos
        ~guard:(I.Not (same_var l_invite_src Keys.src_ip))
        ();
      tr ~label:"cancelling_resp_other" ~from_state:st_cancelling (M.On_event Keys.response)
        ~to_state:st_cancelling ~guard:(I.Not is_2xx_invite) ();
      tr ~label:"cancelling_2xx_race" ~from_state:st_cancelling (M.On_event Keys.response)
        ~to_state:st_established ~guard:is_2xx_invite ~acts:on_2xx_invite ();
      tr ~label:"cancelling_retrans" ~from_state:st_cancelling (M.On_event "CANCEL")
        ~to_state:st_cancelling ();
      tr ~label:"cancelling_ack" ~from_state:st_cancelling (M.On_event "ACK")
        ~to_state:st_closed ();
      tr ~label:"cancel_dos_resp" ~from_state:st_cancel_dos (M.On_event Keys.response)
        ~to_state:st_cancelling ();
      tr ~label:"cancel_dos_retrans" ~from_state:st_cancel_dos (M.On_event "CANCEL")
        ~to_state:st_cancel_dos ();
      tr ~label:"cancel_dos_ack" ~from_state:st_cancel_dos (M.On_event "ACK")
        ~to_state:st_closed ();
      (* --- Failed setup --- *)
      tr ~label:"failed_ack" ~from_state:st_failed (M.On_event "ACK") ~to_state:st_closed ();
      tr ~label:"failed_resp_retrans" ~from_state:st_failed (M.On_event Keys.response)
        ~to_state:st_failed ();
      (* --- Non-dialog methods --- *)
      tr ~label:"register" ~from_state:st_init (M.On_event "REGISTER") ~to_state:st_registering
        ();
      tr ~label:"register_retrans" ~from_state:st_registering (M.On_event "REGISTER")
        ~to_state:st_registering ();
      tr ~label:"register_1xx" ~from_state:st_registering (M.On_event Keys.response)
        ~to_state:st_registering ~guard:is_1xx ();
      tr ~label:"register_final" ~from_state:st_registering (M.On_event Keys.response)
        ~to_state:st_closed ~guard:is_final ();
      tr ~label:"options" ~from_state:st_init (M.On_event "OPTIONS")
        ~to_state:st_options_pending ();
      tr ~label:"options_retrans" ~from_state:st_options_pending (M.On_event "OPTIONS")
        ~to_state:st_options_pending ();
      tr ~label:"options_1xx" ~from_state:st_options_pending (M.On_event Keys.response)
        ~to_state:st_options_pending ~guard:is_1xx ();
      tr ~label:"options_final" ~from_state:st_options_pending (M.On_event Keys.response)
        ~to_state:st_closed ~guard:is_final ();
      (* --- Closed: absorb stragglers, allow Call-ID reuse --- *)
      tr ~label:"closed_resp" ~from_state:st_closed (M.On_event Keys.response)
        ~to_state:st_closed ();
      tr ~label:"closed_ack" ~from_state:st_closed (M.On_event "ACK") ~to_state:st_closed ();
      tr ~label:"closed_bye" ~from_state:st_closed (M.On_event "BYE") ~to_state:st_closed ();
      tr ~label:"closed_reinvite" ~from_state:st_closed (M.On_event "INVITE")
        ~to_state:st_invite_rcvd ~acts:on_invite ();
    ]
  in
  {
    M.spec_name = Keys.sip_machine;
    initial = st_init;
    finals = [ st_closed ];
    attack_states =
      [
        (st_cancel_dos, "CANCEL from a third-party source for a pending INVITE");
        (st_hijack, "in-dialog INVITE with foreign tags or source (call hijack)");
      ];
    transitions;
  }
