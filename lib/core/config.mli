(** vIDS tunables: detection thresholds (the timers of paper §6/§7.5) and the
    calibrated per-packet cost model (paper §7.2–§7.4). *)

type t = {
  (* --- INVITE flooding (Figure 4) --- *)
  invite_flood_window : Dsim.Time.t;
      (** Timer T1 of the pattern: the measurement window. *)
  invite_flood_threshold : int;
      (** N: INVITEs to one destination within the window considered normal. *)
  (* --- BYE DoS / billing fraud (Figure 5) --- *)
  bye_inflight_timer : Dsim.Time.t;
      (** Timer T: grace period for in-flight RTP after a BYE; the paper
          recommends about one round-trip time. *)
  (* --- Media spamming (Figure 6) --- *)
  spam_ts_gap : int;
      (** Δt: allowed forward jump in RTP timestamp ticks between
          consecutive packets of a stream. *)
  spam_seq_gap : int;  (** Δn: allowed forward jump in sequence numbers. *)
  spam_silence_ts_gap : int;
      (** Allowed timestamp jump when the sequence number is consecutive —
          a talkspurt after silence suppression (RFC 3550 marker
          semantics).  The paper's raw Figure-6 rule (ts gap alone) would
          false-alarm on the G.729 VAD its own testbed enables. *)
  spam_reorder_tolerance : int;
      (** Allowed backward distance before a packet counts as replay. *)
  (* --- RTP flooding --- *)
  rtp_flood_window : Dsim.Time.t;
  rtp_flood_threshold : int;  (** Packets per window per stream. *)
  (* --- DRDoS reflection --- *)
  drdos_window : Dsim.Time.t;
  drdos_threshold : int;
      (** Orphan responses (no known transaction) per destination per
          window. *)
  (* --- Cost model (calibrated; see DESIGN.md §4) --- *)
  sip_transit_delay : Dsim.Time.t;
      (** Added forwarding latency per SIP message when deployed inline. *)
  rtp_transit_delay : Dsim.Time.t;
  sip_cpu_cost : Dsim.Time.t;  (** Host CPU busy time per SIP message. *)
  rtp_cpu_cost : Dsim.Time.t;
  (* --- Memory model (paper §7.3) --- *)
  sip_state_bytes : int;  (** ≈450 B of SIP call state. *)
  rtp_state_bytes : int;  (** ≈40 B of RTP state. *)
  (* --- Housekeeping --- *)
  closed_call_linger : Dsim.Time.t;
      (** How long a completed call record survives before deletion (it
          absorbs late retransmissions). *)
  flag_boundary_register : bool;
      (** Raise a registration-hijack warning for REGISTER requests seen at
          the boundary sensor (legitimate registrations stay inside the
          enterprise LAN; roaming users are the false-positive risk, hence
          Warning severity). *)
  (* --- Resource governance (state exhaustion defense) --- *)
  max_calls : int;
      (** Hard cap on tracked calls; the oldest record is evicted when a new
          call would exceed it.  [0] disables the cap. *)
  max_detectors : int;
      (** Combined cap on standalone detector machines (flood, spam, DRDoS);
          oldest-first eviction.  [0] disables the cap. *)
  call_max_age : Dsim.Time.t;
      (** Records older than this are reclaimed by the scheduled sweep —
          abandoned setups and machines parked in attack states.  [zero]
          disables age-based reclamation. *)
  sweep_interval : Dsim.Time.t;
      (** Period of the scheduled ageing sweep.  [zero] disables it. *)
  degrade_high_water : int;
      (** When active state records (calls + detectors) reach this mark the
          engine degrades: stream-level RTP analysis is shed while SIP
          signaling checks stay live.  [0] disables degradation. *)
  degrade_low_water : int;
      (** Occupancy at which a degraded engine recovers.  [0] derives it as
          three quarters of the high-water mark. *)
  chaos_inject_every : int;
      (** Self-test knob: raise a synthetic fault inside the containment
          boundary on every [n]-th machine injection, proving that a crashing
          machine is quarantined rather than fatal.  [0] (the default) never
          injects. *)
  defer_global_detectors : bool;
      (** Skip the engine's own INVITE-flood and DRDoS machines and instead
          surface their input events through {!Engine.set_global_listener}.
          A sharded deployment sets this on every shard: those detectors
          need cross-call totals that one shard cannot see, so the shard
          coordinator aggregates the per-shard event counts and runs the
          threshold checks globally.  [false] (the default) keeps the
          detectors local — the single-engine behaviour. *)
}

val default : t

val passive : t -> t
(** Same thresholds, zero transit delay — vIDS as a pure monitor. *)

val governed : t -> t
(** Same thresholds with resource governance enabled: caps on tracked calls
    and detectors, a periodic ageing sweep, and degradation watermarks. *)
