(** Packet trace capture and offline replay.

    An online vIDS taps live traffic; this module gives it the pcap-style
    workflow: record the packets crossing the sensor to a portable text
    format, then re-run the full analysis pipeline over the file later.
    Replay reconstructs virtual time from the recorded timestamps so every
    timer-based pattern (flood windows, the BYE grace period T) behaves
    exactly as it did live. *)

type record = {
  at : Dsim.Time.t;  (** Capture timestamp. *)
  src : Dsim.Addr.t;
  dst : Dsim.Addr.t;
  payload : string;  (** Raw wire bytes. *)
}

val record_of_packet : at:Dsim.Time.t -> Dsim.Packet.t -> record

(** {1 Text serialization}

    One record per line: [<at_us> <src> <dst> <hex payload>]. *)

val record_to_line : record -> string

val record_of_line : string -> (record, string) result

val save : out_channel -> record list -> unit

val load : in_channel -> (record list, string) result
(** Stops at the first malformed line with its line number. *)

val load_lenient : in_channel -> record list * (int * string) list
(** Best-effort load for damaged captures (e.g. a file torn by a crash):
    malformed lines are skipped and reported as [(line, reason)] instead of
    aborting. *)

(** {1 Capture} *)

type recorder

val recorder : unit -> recorder

val tap : recorder -> Dsim.Scheduler.t -> Dsim.Packet.t -> unit
(** Shaped for [Dsim.Network.set_tap] after partial application. *)

val records : recorder -> record list
(** Chronological. *)

(** {1 Replay} *)

val schedule_into :
  ?inject:(Dsim.Packet.t -> unit) -> Dsim.Scheduler.t -> Engine.t -> record list -> int
(** Schedules every record as a packet-arrival event on an existing
    scheduler/engine pair (without running), returning how many were
    scheduled.  [inject] replaces the default delivery
    ([Engine.process_packet]) — an enforcement layer passes its own gate so
    a replay drops exactly the packets the live run dropped.  {!replay} is
    built on this; {!Recovery} uses it to queue the post-checkpoint suffix
    before restored timers are re-armed.  Records at times before the
    scheduler's clock raise [Invalid_argument] — filter first. *)

val replay : ?config:Config.t -> record list -> Engine.t
(** Runs an engine over the trace under virtual time and returns it (with
    its alerts, counters and fact base) for inspection.  Records need not
    be sorted. *)

val replay_until :
  ?config:Config.t -> until:Dsim.Time.t -> record list -> Dsim.Scheduler.t * Engine.t
(** Like {!replay} but stops the clock at a fixed horizon instead of
    draining the queue — required under configs whose periodic sweep
    re-arms itself forever, and for digest comparison at a common instant
    (see [Snapshot.digest]). *)
