(* Versioned, checksummed snapshots of the full engine state.

   A snapshot captures everything the sensor would lose to process death:
   per-call EFSM systems (current states, variable vectors, queued sync
   events, armed timers), standalone detector machines, the fact base's
   aggregate counters and eviction order, the engine's counters and cost
   model, the alert log, and recovery history.  The text format is
   line-oriented with hex-armored strings, a version header, and a trailing
   CRC-32 + length so truncation and corruption are detected — a damaged
   snapshot is rejected with a diagnostic, never applied partially.

   Serialization is canonical: records are emitted in creation order (which
   is deterministic for a given packet stream) and bindings sorted by name,
   so two engines that analyzed the same traffic produce byte-identical
   snapshots.  [digest] builds on that to measure post-recovery divergence:
   it must be zero. *)

let ( let* ) = Result.bind

let magic = "VIDS-SNAPSHOT"
let version = 1

type machine_snap = {
  m_name : string;
  m_state : string;
  m_vars : (string * Efsm.Value.t) list;
  m_hist : (Dsim.Time.t * string) list; (* oldest first *)
}

type system_snap = {
  s_globals : (string * Efsm.Value.t) list;
  s_syncs : (string * Efsm.Event.t) list; (* FIFO order *)
  s_timers : (string * string * Dsim.Time.t) list; (* machine, id, fire at *)
  s_machines : machine_snap list;
}

type call_snap = {
  c_id : string;
  c_created : Dsim.Time.t;
  c_closing : bool;
  c_finish : bool;
  c_delete_at : Dsim.Time.t option;
  c_recheck_at : Dsim.Time.t option;
  c_media : Dsim.Addr.t list; (* sorted *)
  c_system : system_snap;
}

type detector_snap = {
  d_kind : Fact_base.detector_kind;
  d_key : string;
  d_created : Dsim.Time.t;
  d_touched : Dsim.Time.t;
  d_system : system_snap;
}

type fb_snap = {
  fb_peak : int;
  fb_created : int;
  fb_deleted : int;
  fb_calls_evicted : int;
  fb_detectors_evicted : int;
  fb_swept : int;
  fb_dswept : int;
  fb_sweep_at : Dsim.Time.t option;
}

type t = {
  seq : int;
  at : Dsim.Time.t;
  engine : Engine.Persist.dump;
  fb : fb_snap;
  calls : call_snap list; (* creation order *)
  detectors : detector_snap list; (* creation order *)
  ext : (string * string) list;
      (* Opaque (tag, payload) records for subsystems layered on top of the
         engine (e.g. enforcement rules): carried in the checkpoint and its
         CRC, ignored by [restore], surfaced through [ext] for the owning
         subsystem to re-apply.  Serialization order is the given order. *)
}

let seq t = t.seq
let at t = t.at
let ext t = t.ext

(* --------------------------------------------------------------- *)
(* Capture                                                          *)
(* --------------------------------------------------------------- *)

let snap_machine m =
  {
    m_name = Efsm.Machine.name m;
    m_state = Efsm.Machine.state m;
    m_vars = Efsm.Env.local_bindings (Efsm.Machine.env m);
    m_hist = Efsm.Machine.trace m;
  }

let snap_system sys machines =
  {
    s_globals = Efsm.Env.globals_bindings (Efsm.System.globals sys);
    s_syncs = Efsm.System.pending_sync sys;
    s_timers = Efsm.System.pending_timers sys;
    s_machines = List.map snap_machine machines;
  }

let alert_order (a : Alert.t) (b : Alert.t) =
  compare
    (Dsim.Time.to_us a.Alert.at, Alert.kind_to_string a.Alert.kind, a.Alert.subject, a.Alert.detail)
    (Dsim.Time.to_us b.Alert.at, Alert.kind_to_string b.Alert.kind, b.Alert.subject, b.Alert.detail)

let capture ?(seq = 0) ?(ext = []) ~at engine =
  let base = Engine.fact_base engine in
  let stats = Fact_base.stats base in
  let dump = Engine.Persist.dump engine in
  (* Alerts raised at the same instant may be logged in an order that
     depends on timer-queue internals; sort for a canonical form. *)
  let dump =
    { dump with Engine.Persist.p_alerts = List.stable_sort alert_order dump.Engine.Persist.p_alerts }
  in
  {
    seq;
    at;
    engine = dump;
    fb =
      {
        fb_peak = stats.Fact_base.peak_calls;
        fb_created = stats.Fact_base.calls_created;
        fb_deleted = stats.Fact_base.calls_deleted;
        fb_calls_evicted = stats.Fact_base.calls_evicted;
        fb_detectors_evicted = stats.Fact_base.detectors_evicted;
        fb_swept = stats.Fact_base.calls_swept;
        fb_dswept = stats.Fact_base.detectors_swept;
        fb_sweep_at = Fact_base.next_sweep_at base;
      };
    calls =
      List.map
        (fun (call : Fact_base.call) ->
          {
            c_id = call.Fact_base.call_id;
            c_created = call.Fact_base.created_at;
            c_closing = call.Fact_base.closing;
            c_finish = call.Fact_base.finish_pending;
            c_delete_at = call.Fact_base.delete_at;
            c_recheck_at = call.Fact_base.recheck_at;
            c_media = List.sort Dsim.Addr.compare call.Fact_base.media_addrs;
            c_system =
              snap_system call.Fact_base.system [ call.Fact_base.sip; call.Fact_base.rtp ];
          })
        (Fact_base.calls_in_creation_order base);
    detectors =
      List.map
        (fun (kind, key, sys, machine, created, touched) ->
          {
            d_kind = kind;
            d_key = key;
            d_created = created;
            d_touched = touched;
            d_system = snap_system sys [ machine ];
          })
        (Fact_base.detectors_in_creation_order base);
    ext;
  }

(* --------------------------------------------------------------- *)
(* Serialization                                                    *)
(* --------------------------------------------------------------- *)

let us = Dsim.Time.to_us
let bool01 b = if b then "1" else "0"

let system_lines buf ss =
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "G %s %s\n" (Codec.hex k) (Efsm.Value.to_token v)))
    ss.s_globals;
  List.iter
    (fun (target, event) ->
      Buffer.add_string buf
        (Printf.sprintf "Y %s %s\n" (Codec.hex target)
           (String.concat " " (Codec.event_to_tokens event))))
    ss.s_syncs;
  List.iter
    (fun (machine, id, fire_at) ->
      Buffer.add_string buf
        (Printf.sprintf "R %s %s %d\n" (Codec.hex machine) (Codec.hex id) (us fire_at)))
    ss.s_timers;
  List.iter
    (fun ms ->
      Buffer.add_string buf
        (Printf.sprintf "M %s %s\n" (Codec.hex ms.m_name) (Codec.hex ms.m_state));
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf "V %s %s\n" (Codec.hex k) (Efsm.Value.to_token v)))
        ms.m_vars;
      List.iter
        (fun (t, label) ->
          Buffer.add_string buf (Printf.sprintf "H %d %s\n" (us t) (Codec.hex label)))
        ms.m_hist)
    ss.s_machines

let body_string t =
  let buf = Buffer.create 4096 in
  let c = t.engine.Engine.Persist.p_counters in
  Buffer.add_string buf
    (Printf.sprintf "EC %d %d %d %d %d %d %d %d %d %d %d %d %d %d\n" c.Engine.sip_packets
       c.Engine.rtp_packets c.Engine.rtcp_packets c.Engine.other_packets c.Engine.malformed_packets
       c.Engine.orphan_requests c.Engine.orphan_responses c.Engine.alerts_raised
       c.Engine.alerts_suppressed c.Engine.anomalies c.Engine.faults
       t.engine.Engine.Persist.p_injects c.Engine.rtp_shed c.Engine.backpressure_stalls);
  Buffer.add_string buf
    (Printf.sprintf "ET %d %d\n"
       (us t.engine.Engine.Persist.p_busy)
       (us t.engine.Engine.Persist.p_inline_free_at));
  (match t.engine.Engine.Persist.p_degraded_since with
  | None -> ()
  | Some since -> Buffer.add_string buf (Printf.sprintf "ED %d\n" (us since)));
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "EL %d %d\n" (us a) (us b)))
    t.engine.Engine.Persist.p_degraded_log;
  List.iter
    (fun (a, b, missed) ->
      Buffer.add_string buf (Printf.sprintf "EW %d %d %d\n" (us a) (us b) missed))
    t.engine.Engine.Persist.p_downtime;
  List.iter
    (fun alert ->
      Buffer.add_string buf ("EA " ^ String.concat " " (Codec.alert_to_tokens alert) ^ "\n"))
    t.engine.Engine.Persist.p_alerts;
  Buffer.add_string buf
    (Printf.sprintf "FB %d %d %d %d %d %d %d %s\n" t.fb.fb_peak t.fb.fb_created t.fb.fb_deleted
       t.fb.fb_calls_evicted t.fb.fb_detectors_evicted t.fb.fb_swept t.fb.fb_dswept
       (Codec.opt_time_str t.fb.fb_sweep_at));
  List.iter
    (fun cs ->
      Buffer.add_string buf
        (Printf.sprintf "CALL %s %d %s %s %s %s\n" (Codec.hex cs.c_id) (us cs.c_created)
           (bool01 cs.c_closing) (bool01 cs.c_finish)
           (Codec.opt_time_str cs.c_delete_at)
           (Codec.opt_time_str cs.c_recheck_at));
      List.iter
        (fun addr ->
          Buffer.add_string buf
            (Printf.sprintf "CM %s\n"
               (Efsm.Value.to_token
                  (Efsm.Value.Addr (Dsim.Addr.host addr, Dsim.Addr.port addr)))))
        cs.c_media;
      system_lines buf cs.c_system)
    t.calls;
  List.iter
    (fun ds ->
      Buffer.add_string buf
        (Printf.sprintf "DET %s %s %d %d\n"
           (Fact_base.kind_label ds.d_kind)
           (Codec.hex ds.d_key) (us ds.d_created) (us ds.d_touched));
      system_lines buf ds.d_system)
    t.detectors;
  List.iter
    (fun (tag, payload) ->
      Buffer.add_string buf (Printf.sprintf "X %s %s\n" (Codec.hex tag) (Codec.hex payload)))
    t.ext;
  Buffer.contents buf

let to_string t =
  let body = body_string t in
  Printf.sprintf "%s %d %d %d\n%sEND %s %d\n" magic version t.seq (us t.at) body
    (Codec.crc32_hex body) (String.length body)

(* --------------------------------------------------------------- *)
(* Parsing                                                          *)
(* --------------------------------------------------------------- *)

type machine_builder = {
  mb_name : string;
  mb_state : string;
  mutable mb_vars : (string * Efsm.Value.t) list; (* reversed *)
  mutable mb_hist : (Dsim.Time.t * string) list; (* reversed *)
}

type system_builder = {
  mutable sb_globals : (string * Efsm.Value.t) list; (* reversed *)
  mutable sb_syncs : (string * Efsm.Event.t) list; (* reversed *)
  mutable sb_timers : (string * string * Dsim.Time.t) list; (* reversed *)
  mutable sb_machines : machine_builder list; (* reversed *)
}

let new_system_builder () = { sb_globals = []; sb_syncs = []; sb_timers = []; sb_machines = [] }

let finish_machine mb =
  {
    m_name = mb.mb_name;
    m_state = mb.mb_state;
    m_vars = List.rev mb.mb_vars;
    m_hist = List.rev mb.mb_hist;
  }

let finish_system sb =
  {
    s_globals = List.rev sb.sb_globals;
    s_syncs = List.rev sb.sb_syncs;
    s_timers = List.rev sb.sb_timers;
    s_machines = List.rev_map finish_machine sb.sb_machines;
  }

type block =
  | Top
  | In_call of call_snap * system_builder (* c_system placeholder; media reversed in c_media *)
  | In_det of detector_snap * system_builder

let of_body_lines lines =
  let counters = ref None in
  let times = ref None in
  let degraded_since = ref None in
  let degraded_log = ref [] in
  let downtime = ref [] in
  let alerts = ref [] in
  let fb = ref None in
  let calls = ref [] in
  let detectors = ref [] in
  let exts = ref [] in
  let block = ref Top in
  let finish_block () =
    match !block with
    | Top -> ()
    | In_call (cs, sb) ->
        calls :=
          { cs with c_media = List.rev cs.c_media; c_system = finish_system sb } :: !calls
    | In_det (ds, sb) -> detectors := { ds with d_system = finish_system sb } :: !detectors
  in
  let current_system () =
    match !block with
    | Top -> Error "record outside a CALL/DET block"
    | In_call (_, sb) | In_det (_, sb) -> Ok sb
  in
  let current_machine () =
    let* sb = current_system () in
    match sb.sb_machines with
    | [] -> Error "V/H record before any M record"
    | mb :: _ -> Ok mb
  in
  let parse_fb ~peak ~created ~deleted ~evicted ~devicted ~swept ~dswept ~sweep =
    let* peak = Codec.int_tok peak in
    let* created = Codec.int_tok created in
    let* deleted = Codec.int_tok deleted in
    let* evicted = Codec.int_tok evicted in
    let* devicted = Codec.int_tok devicted in
    let* swept = Codec.int_tok swept in
    let* dswept = Codec.int_tok dswept in
    let* sweep_at = Codec.opt_time_tok sweep in
    fb :=
      Some
        {
          fb_peak = peak;
          fb_created = created;
          fb_deleted = deleted;
          fb_calls_evicted = evicted;
          fb_detectors_evicted = devicted;
          fb_swept = swept;
          fb_dswept = dswept;
          fb_sweep_at = sweep_at;
        };
    Ok ()
  in
  let parse_det ~label ~key_hex ~created ~touched =
    let* d_kind =
      match Fact_base.kind_of_label label with
      | Some k -> Ok k
      | None -> Error ("unknown detector kind " ^ label)
    in
    let* d_key = Codec.unhex key_hex in
    let* d_created = Codec.time_tok created in
    let* d_touched = Codec.time_tok touched in
    finish_block ();
    block :=
      In_det
        ( { d_kind; d_key; d_created; d_touched; d_system = finish_system (new_system_builder ()) },
          new_system_builder () );
    Ok ()
  in
  let parse_line line =
    match String.split_on_char ' ' line with
    | [] | [ "" ] -> Ok ()
    | "EC" :: toks -> (
        (* 13 fields through format version 1's first shape; a 14th
           (backpressure_stalls) was appended later.  Read both: a missing
           trailing field is zero, so old snapshots stay loadable. *)
        match List.map int_of_string_opt toks with
        | [
            Some sip; Some rtp; Some rtcp; Some other; Some malformed; Some oreq; Some oresp;
            Some raised; Some suppressed; Some anomalies; Some faults; Some injects; Some shed;
          ]
        | [
            Some sip; Some rtp; Some rtcp; Some other; Some malformed; Some oreq; Some oresp;
            Some raised; Some suppressed; Some anomalies; Some faults; Some injects; Some shed;
            Some _;
          ] as shape ->
            let stalls =
              match shape with [ _; _; _; _; _; _; _; _; _; _; _; _; _; Some s ] -> s | _ -> 0
            in
            counters :=
              Some
                ( {
                    Engine.sip_packets = sip;
                    rtp_packets = rtp;
                    rtcp_packets = rtcp;
                    other_packets = other;
                    malformed_packets = malformed;
                    orphan_requests = oreq;
                    orphan_responses = oresp;
                    alerts_raised = raised;
                    alerts_suppressed = suppressed;
                    anomalies;
                    faults;
                    rtp_shed = shed;
                    backpressure_stalls = stalls;
                  },
                  injects );
            Ok ()
        | _ -> Error "malformed EC record")
    | [ "ET"; busy; free ] ->
        let* busy = Codec.time_tok busy in
        let* free = Codec.time_tok free in
        times := Some (busy, free);
        Ok ()
    | [ "ED"; since ] ->
        let* since = Codec.time_tok since in
        degraded_since := Some since;
        Ok ()
    | [ "EL"; a; b ] ->
        let* a = Codec.time_tok a in
        let* b = Codec.time_tok b in
        degraded_log := (a, b) :: !degraded_log;
        Ok ()
    | [ "EW"; a; b; missed ] ->
        let* a = Codec.time_tok a in
        let* b = Codec.time_tok b in
        let* missed = Codec.int_tok missed in
        downtime := (a, b, missed) :: !downtime;
        Ok ()
    | "EA" :: toks ->
        let* alert = Codec.alert_of_tokens toks in
        alerts := alert :: !alerts;
        Ok ()
    (* 7 operands through version 1's first shape; detectors_swept was
       appended later.  Read both: the missing field is zero. *)
    | [ "FB"; peak; created; deleted; evicted; devicted; swept; sweep ] ->
        parse_fb ~peak ~created ~deleted ~evicted ~devicted ~swept ~dswept:"0" ~sweep
    | [ "FB"; peak; created; deleted; evicted; devicted; swept; dswept; sweep ] ->
        parse_fb ~peak ~created ~deleted ~evicted ~devicted ~swept ~dswept ~sweep
    | [ "CALL"; id_hex; created; closing; finish; delete_at; recheck_at ] ->
        let* c_id = Codec.unhex id_hex in
        let* c_created = Codec.time_tok created in
        let* c_delete_at = Codec.opt_time_tok delete_at in
        let* c_recheck_at = Codec.opt_time_tok recheck_at in
        let* c_closing =
          match closing with "0" -> Ok false | "1" -> Ok true | _ -> Error "bad closing flag"
        in
        let* c_finish =
          match finish with "0" -> Ok false | "1" -> Ok true | _ -> Error "bad finish flag"
        in
        finish_block ();
        block :=
          In_call
            ( {
                c_id;
                c_created;
                c_closing;
                c_finish;
                c_delete_at;
                c_recheck_at;
                c_media = [];
                c_system = finish_system (new_system_builder ());
              },
              new_system_builder () );
        Ok ()
    (* The trailing last-touched time was appended within version 1; an
       older 3-operand line means the detector was last touched when it
       was created. *)
    | [ "DET"; label; key_hex; created ] -> parse_det ~label ~key_hex ~created ~touched:created
    | [ "DET"; label; key_hex; created; touched ] -> parse_det ~label ~key_hex ~created ~touched
    | [ "CM"; addr_tok ] -> (
        match !block with
        | In_call (cs, sb) -> (
            let* v = Efsm.Value.of_token addr_tok in
            match v with
            | Efsm.Value.Addr (host, port) ->
                block := In_call ({ cs with c_media = Dsim.Addr.v host port :: cs.c_media }, sb);
                Ok ()
            | _ -> Error "CM record is not an address")
        | In_det _ | Top -> Error "CM record outside a CALL block")
    | [ "G"; k_hex; v_tok ] ->
        let* sb = current_system () in
        let* k = Codec.unhex k_hex in
        let* v = Efsm.Value.of_token v_tok in
        sb.sb_globals <- (k, v) :: sb.sb_globals;
        Ok ()
    | "Y" :: target_hex :: event_toks ->
        let* sb = current_system () in
        let* target = Codec.unhex target_hex in
        let* event, rest = Codec.event_of_tokens event_toks in
        if rest <> [] then Error "trailing tokens after sync event"
        else begin
          sb.sb_syncs <- (target, event) :: sb.sb_syncs;
          Ok ()
        end
    | [ "R"; machine_hex; id_hex; fire_at ] ->
        let* sb = current_system () in
        let* machine = Codec.unhex machine_hex in
        let* id = Codec.unhex id_hex in
        let* fire_at = Codec.time_tok fire_at in
        sb.sb_timers <- (machine, id, fire_at) :: sb.sb_timers;
        Ok ()
    | [ "M"; name_hex; state_hex ] ->
        let* sb = current_system () in
        let* mb_name = Codec.unhex name_hex in
        let* mb_state = Codec.unhex state_hex in
        sb.sb_machines <- { mb_name; mb_state; mb_vars = []; mb_hist = [] } :: sb.sb_machines;
        Ok ()
    | [ "V"; k_hex; v_tok ] ->
        let* mb = current_machine () in
        let* k = Codec.unhex k_hex in
        let* v = Efsm.Value.of_token v_tok in
        mb.mb_vars <- (k, v) :: mb.mb_vars;
        Ok ()
    | [ "H"; at; label_hex ] ->
        let* mb = current_machine () in
        let* at = Codec.time_tok at in
        let* label = Codec.unhex label_hex in
        mb.mb_hist <- (at, label) :: mb.mb_hist;
        Ok ()
    | [ "X"; tag_hex; payload_hex ] ->
        let* tag = Codec.unhex tag_hex in
        let* payload = Codec.unhex payload_hex in
        finish_block ();
        block := Top;
        exts := (tag, payload) :: !exts;
        Ok ()
    | tag :: _ -> Error ("unknown record tag " ^ tag)
  in
  let rec go i = function
    | [] -> Ok ()
    | line :: rest -> (
        match parse_line line with
        | Ok () -> go (i + 1) rest
        | Error e -> Error (Printf.sprintf "body line %d: %s" i e))
  in
  let* () = go 1 lines in
  finish_block ();
  match (!counters, !times, !fb) with
  | None, _, _ -> Error "missing EC record"
  | _, None, _ -> Error "missing ET record"
  | _, _, None -> Error "missing FB record"
  | Some (c, injects), Some (busy, free), Some fb ->
      Ok
        (fun ~seq ~at ->
          {
            seq;
            at;
            engine =
              {
                Engine.Persist.p_counters = c;
                p_injects = injects;
                p_busy = busy;
                p_inline_free_at = free;
                p_degraded_since = !degraded_since;
                p_degraded_log = List.rev !degraded_log;
                p_alerts = List.rev !alerts;
                p_downtime = List.rev !downtime;
              };
            fb;
            calls = List.rev !calls;
            detectors = List.rev !detectors;
            ext = List.rev !exts;
          })

let of_string text =
  match String.index_opt text '\n' with
  | None -> Error "not a vIDS snapshot: missing header"
  | Some header_end -> (
      let header = String.sub text 0 header_end in
      let rest = String.sub text (header_end + 1) (String.length text - header_end - 1) in
      match String.split_on_char ' ' header with
      | [ m; v; seq_tok; at_tok ] when String.equal m magic -> (
          let* v = Codec.int_tok v in
          if v <> version then
            Error (Printf.sprintf "snapshot version skew: file v%d, supported v%d" v version)
          else
            let* seq = Codec.int_tok seq_tok in
            let* at = Codec.time_tok at_tok in
            (* The trailer is the last line: "END <crc> <len>\n". *)
            match String.rindex_opt (String.sub rest 0 (max 0 (String.length rest - 1))) '\n' with
            | _ when String.length rest = 0 -> Error "truncated snapshot: missing END trailer"
            | None when String.length rest < 4 || String.sub rest 0 3 <> "END" ->
                Error "truncated snapshot: missing END trailer"
            | trailer_start -> (
                let body_len, trailer =
                  match trailer_start with
                  | None -> (0, String.sub rest 0 (String.length rest))
                  | Some i -> (i + 1, String.sub rest (i + 1) (String.length rest - i - 1))
                in
                let body = String.sub rest 0 body_len in
                let trailer = String.trim trailer in
                match String.split_on_char ' ' trailer with
                | [ "END"; crc_hex; len_tok ] ->
                    let* len = Codec.int_tok len_tok in
                    if len <> String.length body then
                      Error
                        (Printf.sprintf "truncated snapshot: body is %d bytes, trailer says %d"
                           (String.length body) len)
                    else if not (String.equal crc_hex (Codec.crc32_hex body)) then
                      Error "corrupted snapshot: CRC mismatch"
                    else
                      let lines =
                        String.split_on_char '\n' body |> List.filter (fun l -> l <> "")
                      in
                      let* make = of_body_lines lines in
                      Ok (make ~seq ~at)
                | _ -> Error "truncated snapshot: malformed END trailer")
          )
      | _ -> Error "not a vIDS snapshot")

(* --------------------------------------------------------------- *)
(* Restore                                                          *)
(* --------------------------------------------------------------- *)

exception Restore_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Restore_error s)) fmt

let apply_machine sys ms =
  match Efsm.System.machine sys ms.m_name with
  | None -> fail "snapshot references unknown machine %S" ms.m_name
  | Some m -> (
      match Efsm.Machine.restore m ~state:ms.m_state ~vars:ms.m_vars ~trace:ms.m_hist with
      | Ok () -> ()
      | Error e -> fail "%s" e)

let apply_system sys ss ~defer =
  List.iter (fun (k, v) -> Efsm.Env.globals_put (Efsm.System.globals sys) k v) ss.s_globals;
  List.iter (apply_machine sys) ss.s_machines;
  List.iter (fun (target, event) -> Efsm.System.push_sync sys ~target event) ss.s_syncs;
  List.iter
    (fun (machine, id, fire_at) ->
      defer (fun () -> Efsm.System.restore_timer sys ~machine ~id ~fire_at))
    ss.s_timers

let apply engine snap ~before_timers ~sched =
  let base = Engine.fact_base engine in
  Engine.Persist.restore engine snap.engine;
  Fact_base.set_counters base ~peak:snap.fb.fb_peak ~created:snap.fb.fb_created
    ~deleted:snap.fb.fb_deleted ~calls_evicted:snap.fb.fb_calls_evicted
    ~detectors_evicted:snap.fb.fb_detectors_evicted ~swept:snap.fb.fb_swept
    ~detectors_swept:snap.fb.fb_dswept;
  (* Cancel the sweep armed by Engine.create; it is re-armed below at the
     snapshot's recorded phase. *)
  Fact_base.set_next_sweep base None;
  (* Timers are armed only after [before_timers] has run so recovery can
     schedule the replay suffix first: packets scheduled before timers at
     the same virtual instant fire first, exactly as in an uninterrupted
     run (where all trace packets are scheduled up front). *)
  let deferred = ref [] in
  let defer f = deferred := f :: !deferred in
  List.iter
    (fun cs ->
      let call = Fact_base.restore_call base ~call_id:cs.c_id ~created_at:cs.c_created in
      apply_system call.Fact_base.system cs.c_system ~defer;
      List.iter (fun addr -> Fact_base.register_media base call addr) cs.c_media;
      call.Fact_base.closing <- cs.c_closing;
      call.Fact_base.finish_pending <- cs.c_finish;
      (match cs.c_delete_at with
      | Some at -> defer (fun () -> Fact_base.arm_delete_at base call at)
      | None -> ());
      match cs.c_recheck_at with
      | Some at when cs.c_delete_at = None ->
          defer (fun () -> Fact_base.arm_recheck_at base call at)
      | Some _ | None -> ())
    snap.calls;
  List.iter
    (fun ds ->
      let sys, _ =
        Fact_base.restore_detector base ds.d_kind ~key:ds.d_key ~created_at:ds.d_created
          ~touched:ds.d_touched
      in
      apply_system sys ds.d_system ~defer)
    snap.detectors;
  (match snap.fb.fb_sweep_at with
  | Some at -> defer (fun () -> Fact_base.set_next_sweep base (Some at))
  | None -> ());
  before_timers sched engine;
  List.iter (fun f -> f ()) (List.rev !deferred)

let restore ?(config = Config.default) ?(before_timers = fun _ _ -> ()) snap =
  let sched = Dsim.Scheduler.create () in
  Dsim.Scheduler.run_until sched snap.at;
  let engine = Engine.create ~config sched in
  match apply engine snap ~before_timers ~sched with
  | () -> Ok (sched, engine)
  | exception Restore_error e -> Error ("snapshot restore: " ^ e)
  | exception exn -> Error ("snapshot restore: " ^ Printexc.to_string exn)

(* --------------------------------------------------------------- *)
(* Files                                                            *)
(* --------------------------------------------------------------- *)

let previous_path path = path ^ ".1"

(* Directory fsync makes the renames themselves durable; a filesystem
   that refuses (some network mounts) degrades to the old behaviour
   rather than failing the checkpoint. *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      ( try Unix.close fd with Unix.Unix_error _ -> ())

let save ~path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (to_string t);
  flush oc;
  (* fsync BEFORE the rename: without it, a power loss can leave the
     rename durable but the data not — a zero-length or torn file sitting
     where a checkpoint should be, which [of_string] would then reject at
     the worst possible moment.  With it, the atomic rename publishes
     only fully-durable bytes. *)
  (try Unix.fsync (Unix.descr_of_out_channel oc)
   with Unix.Unix_error _ | Sys_error _ | Invalid_argument _ -> ());
  close_out oc;
  (* Keep the previous checkpoint as a fallback for a write torn by the
     very crash we are defending against. *)
  if Sys.file_exists path then Sys.rename path (previous_path path);
  Sys.rename tmp path;
  fsync_dir path

let load path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      of_string text

(* --------------------------------------------------------------- *)
(* Divergence                                                       *)
(* --------------------------------------------------------------- *)

let digest ~at engine =
  let snap = capture ~seq:0 ~at engine in
  (* Downtime history is recovery metadata: a recovered engine legitimately
     differs from an uninterrupted one there, so it is excluded from the
     divergence measure. *)
  to_string { snap with engine = { snap.engine with Engine.Persist.p_downtime = [] } }
