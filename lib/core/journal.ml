(* Write-ahead alert/eviction journal.

   The journal is the low-latency half of crash safety: checkpoints are
   periodic, but every alert and resource reclamation is appended (and
   flushed) the moment it happens, so a crash between checkpoints loses no
   delivered alert.  Each line carries its own CRC-32; the lenient loader
   skips torn or corrupted lines — expected at the tail of a file cut by
   the crash itself — and reports them as (line, reason) diagnostics. *)

type entry =
  | Alert of Alert.t
  | Eviction of { at : Dsim.Time.t; subject : string; detail : string }
  | Checkpoint of { at : Dsim.Time.t; seq : int }
  | Ext of { at : Dsim.Time.t; tag : string; payload : string }
      (* Opaque record for a subsystem layered on top of the engine (e.g.
         an enforcement decision): journaled like an alert so a crash loses
         none, replayed to the owning subsystem during recovery. *)

let ( let* ) = Result.bind

let entry_at = function
  | Alert a -> a.Alert.at
  | Eviction { at; _ } -> at
  | Checkpoint { at; _ } -> at
  | Ext { at; _ } -> at

let payload_of_entry = function
  | Alert a -> String.concat " " ("A" :: Codec.alert_to_tokens a)
  | Eviction { at; subject; detail } ->
      Printf.sprintf "E %d %s %s" (Dsim.Time.to_us at) (Codec.hex subject) (Codec.hex detail)
  | Checkpoint { at; seq } -> Printf.sprintf "C %d %d" (Dsim.Time.to_us at) seq
  | Ext { at; tag; payload } ->
      Printf.sprintf "X %d %s %s" (Dsim.Time.to_us at) (Codec.hex tag) (Codec.hex payload)

let entry_to_line entry =
  let payload = payload_of_entry entry in
  Codec.crc32_hex payload ^ " " ^ payload

let entry_of_line line =
  match String.index_opt line ' ' with
  | None -> Error "missing CRC field"
  | Some i ->
      let crc = String.sub line 0 i in
      let payload = String.sub line (i + 1) (String.length line - i - 1) in
      if not (String.equal crc (Codec.crc32_hex payload)) then Error "CRC mismatch (torn line?)"
      else (
        match String.split_on_char ' ' payload with
        | "A" :: toks ->
            let* alert = Codec.alert_of_tokens toks in
            Ok (Alert alert)
        | [ "E"; at; subject; detail ] ->
            let* at = Codec.time_tok at in
            let* subject = Codec.unhex subject in
            let* detail = Codec.unhex detail in
            Ok (Eviction { at; subject; detail })
        | [ "C"; at; seq ] ->
            let* at = Codec.time_tok at in
            let* seq = Codec.int_tok seq in
            Ok (Checkpoint { at; seq })
        | [ "X"; at; tag; payload ] ->
            let* at = Codec.time_tok at in
            let* tag = Codec.unhex tag in
            let* payload = Codec.unhex payload in
            Ok (Ext { at; tag; payload })
        | tag :: _ -> Error ("unknown journal tag " ^ tag)
        | [] -> Error "empty journal payload")

(* --------------------------------------------------------------- *)
(* Writer                                                           *)
(* --------------------------------------------------------------- *)

type writer = {
  oc : out_channel;
  mutable closed : bool;
  append_hist : Obs.Metrics.histogram option;
}

let create_writer ?registry path =
  let append_hist =
    Option.map
      (fun m ->
        Obs.Metrics.histogram m "vids_journal_append_seconds"
          ~help:"Wall-clock duration of one journal append+flush")
      registry
  in
  { oc = open_out_gen [ Open_append; Open_creat ] 0o644 path; closed = false; append_hist }

let append w entry =
  if not w.closed then begin
    (* Wall-clock, not virtual: the flush latency is a property of the
       host's disk, and that is exactly what the histogram is for. *)
    let t0 = match w.append_hist with None -> 0.0 | Some _ -> Unix.gettimeofday () in
    output_string w.oc (entry_to_line entry);
    output_char w.oc '\n';
    (* Flush per entry: the journal is only worth its latency cost if the
       line is on disk before the alert's consequences are visible. *)
    flush w.oc;
    match w.append_hist with
    | None -> ()
    | Some h -> Obs.Metrics.observe h (Unix.gettimeofday () -. t0)
  end

let fsync_writer w =
  if not w.closed then begin
    flush w.oc;
    (* Past the OS cache and onto the platter: a per-append fsync would
       dominate the hot path, so durability beyond the page cache is
       batched to checkpoint instants and shutdown.  A filesystem that
       cannot fsync (pipes in tests) is not a reason to fail. *)
    try Unix.fsync (Unix.descr_of_out_channel w.oc) with
    | Unix.Unix_error _ | Sys_error _ | Invalid_argument _ -> ()
  end

let close_writer w =
  if not w.closed then begin
    fsync_writer w;
    w.closed <- true;
    close_out w.oc
  end

let attach w engine =
  Engine.on_alert engine (fun alert -> append w (Alert alert));
  Engine.on_eviction engine (fun ~at ~subject ~detail -> append w (Eviction { at; subject; detail }))

(* --------------------------------------------------------------- *)
(* Loading                                                          *)
(* --------------------------------------------------------------- *)

let load_lenient_channel ic =
  let entries = ref [] in
  let skipped = ref [] in
  let line_no = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       if String.trim line <> "" then
         match entry_of_line line with
         | Ok entry -> entries := entry :: !entries
         | Error reason -> skipped := (!line_no, reason) :: !skipped
     done
   with End_of_file -> ());
  (List.rev !entries, List.rev !skipped)

let load_lenient path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let result = load_lenient_channel ic in
      close_in ic;
      Ok result

(* --------------------------------------------------------------- *)
(* Recovery suffix                                                  *)
(* --------------------------------------------------------------- *)

let suffix_after ~seq ~at entries =
  let rec after_marker acc found = function
    | [] -> if found then Some (List.rev acc) else None
    | Checkpoint c :: rest when c.seq = seq -> after_marker [] true rest
    | e :: rest -> after_marker (if found then e :: acc else acc) found rest
  in
  match after_marker [] false entries with
  | Some suffix -> suffix
  | None ->
      (* No marker for this checkpoint (e.g. the journal rotated, or the
         snapshot predates journaling): fall back to timestamps. *)
      List.filter (fun e -> Dsim.Time.compare (entry_at e) at > 0) entries
