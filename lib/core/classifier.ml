type classification =
  | Sip of Sip.Msg.t
  | Rtp of Rtp.Rtp_packet.t
  | Rtcp of Rtp.Rtcp.t
  | Malformed_sip of string
  | Malformed_rtp of string
  | Other

let sip_port = 5060
let rtp_port_range = (16384, 32767)

let in_rtp_range port =
  let lo, hi = rtp_port_range in
  port >= lo && port <= hi

let quick_protocol (packet : Dsim.Packet.t) =
  if packet.dst.Dsim.Addr.port = sip_port || packet.src.Dsim.Addr.port = sip_port then `Sip
  else if in_rtp_range packet.dst.Dsim.Addr.port then `Media
  else `Other

let classify ?prof ~known_media (packet : Dsim.Packet.t) =
  let enter s = match prof with None -> () | Some p -> Obs.Prof.enter p s in
  let leave s = match prof with None -> () | Some p -> Obs.Prof.exit p s in
  let dst_port = packet.dst.Dsim.Addr.port in
  if dst_port = sip_port || packet.src.Dsim.Addr.port = sip_port then begin
    enter Obs.Prof.Sip_parse;
    let parsed = Sip.Msg.parse packet.payload in
    leave Obs.Prof.Sip_parse;
    match parsed with Ok msg -> Sip msg | Error e -> Malformed_sip e
  end
  else if known_media packet.dst || in_rtp_range dst_port then
    if dst_port land 1 = 0 then begin
      enter Obs.Prof.Rtp_parse;
      let decoded = Rtp.Rtp_packet.decode packet.payload in
      leave Obs.Prof.Rtp_parse;
      match decoded with Ok p -> Rtp p | Error e -> Malformed_rtp e
    end
    else begin
      enter Obs.Prof.Rtp_parse;
      let decoded = Rtp.Rtcp.decode packet.payload in
      leave Obs.Prof.Rtp_parse;
      match decoded with Ok r -> Rtcp r | Error e -> Malformed_rtp e
    end
  else Other
