(** Translation from parsed SIP messages to EFSM events — the Event
    Distributor's encoding of the input vector x̄ (paper Figure 2a): header
    fields and, when an SDP body is present, the media description. *)

val of_msg :
  ?prof:Obs.Prof.t ->
  at:Dsim.Time.t ->
  src:Dsim.Addr.t ->
  dst:Dsim.Addr.t ->
  Sip.Msg.t ->
  Efsm.Event.t
(** Requests become events named after their method; responses become
    {!Keys.response} events carrying [code].  With [prof], an SDP body's
    parse runs inside an [Sdp_parse] span. *)

val media_of_event : Efsm.Event.t -> Dsim.Addr.t option
(** The SDP media endpoint the event advertises, if any. *)

val flood_key : Sip.Msg.t -> string option
(** The destination identity an INVITE targets (request-URI user\@host),
    keying the per-destination flood detector. *)
