module M = Efsm.Machine
module I = Efsm.Ir
module E = Efsm.Event
module Env = Efsm.Env
module V = Efsm.Value

let st_init = "INIT"
let st_stream = "PACKET_RCVD"
let st_dormant = "DORMANT"
let st_spam = "MEDIA_SPAM_ATTACK"
let st_flood = "RTP_FLOOD_ATTACK"
let window_timer_id = "rate_window"
let machine_name = "MEDIA_SPAM"
let l_ssrc = "l_ssrc"
let l_seq = "l_sequence_number"
let l_ts = "l_time_stamp"
let l_count = "l_window_count"

let lv n = (Env.Local, n)

let vars : I.decl list =
  [
    (lv l_ssrc, I.D_int);
    (lv l_seq, I.D_int);
    (lv l_ts, I.D_int);
    (lv l_count, I.D_int);
  ]

let get_int env name = match Env.get env Env.Local name with V.Int n -> n | _ -> 0

let baseline =
  [
    I.Assign (lv l_ssrc, I.Field Keys.ssrc);
    I.Assign (lv l_seq, I.Field Keys.seq);
    I.Assign (lv l_ts, I.Field Keys.ts);
  ]

(* The paper's spam predicate:
   (x.time_stamp_{i+1} - v.time_stamp_i > Δt) or
   (x.sequence_number_{i+1} - v.sequence_number_i > Δn),
   extended with an SSRC identity check, a replay (deep reorder) check, and
   a talkspurt refinement: a packet whose sequence number is consecutive
   may jump further in timestamp (silence suppression emits no packets but
   the media clock keeps running — the paper's own codec settings enable
   SAD, which the raw rule would flag).  An injector cannot hide behind the
   refinement without giving up the sequence-number advance it needs for
   its packets to win the receiver's playout.

   The wraparound deltas are beyond the IR's linear arithmetic, so the
   predicate stays an opaque escape hatch with declared reads; sharing one
   [pred_name] between the [spam] and [in_order] guards is what lets the
   solver still discharge their disjointness propositionally. *)
let is_spam config env event =
  let ssrc_mismatch = not (V.equal (E.arg event Keys.ssrc) (Env.get env Env.Local l_ssrc)) in
  ssrc_mismatch
  ||
  let seq_jump = Rtp.Rtp_packet.seq_delta (get_int env l_seq) (E.arg_int event Keys.seq) in
  let ts_jump =
    Rtp.Rtp_packet.ts_delta
      (Int32.of_int (get_int env l_ts))
      (Int32.of_int (E.arg_int event Keys.ts))
  in
  let ts_limit =
    if seq_jump >= 1 && seq_jump <= 2 then config.Config.spam_silence_ts_gap
    else config.Config.spam_ts_gap
  in
  seq_jump > config.Config.spam_seq_gap
  || seq_jump < -config.Config.spam_reorder_tolerance
  || ts_jump > ts_limit
  || ts_jump < -(config.Config.spam_ts_gap * 4)

let is_spam_opaque config =
  {
    I.pred_name = "is_spam";
    pred_reads = [ lv l_ssrc; lv l_seq; lv l_ts ];
    pred_fields = [ Keys.ssrc; Keys.seq; Keys.ts ];
    holds = (fun env event -> is_spam config env event);
  }

let spam_pred config = I.Opaque (is_spam_opaque config)

let next_count = I.Add (I.Int_or0 (I.Var (lv l_count)), I.Int_const 1)

let is_flood config = I.Cmp (I.Gt, next_count, I.Int_const config.Config.rtp_flood_threshold)

(* Only move the baseline forward so reordered packets cannot drag it
   backwards.  The seq_delta comparison wraps, hence opaque. *)
let advance_opaque =
  {
    I.act_name = "advance_baseline";
    act_reads = [ lv l_seq; lv l_count ];
    act_writes = [ lv l_seq; lv l_ts; lv l_count ];
    act_emits = [];
    run =
      (fun env event ->
        let seq = E.arg_int event Keys.seq in
        let ts = E.arg_int event Keys.ts in
        if Rtp.Rtp_packet.seq_delta (get_int env l_seq) seq > 0 then begin
          Env.set env Env.Local l_seq (V.Int seq);
          Env.set env Env.Local l_ts (V.Int ts)
        end;
        Env.set env Env.Local l_count (V.Int (get_int env l_count + 1));
        []);
  }

let advance = I.Opaque_act advance_opaque

let tr = M.ir_transition

let spec (config : Config.t) =
  let set_window = I.Set_timer { id = window_timer_id; delay = config.Config.rtp_flood_window } in
  let spam = spam_pred config in
  let flood = is_flood config in
  let transitions =
    [
      tr ~label:"first_packet" ~from_state:st_init (M.On_event Keys.rtp_packet)
        ~to_state:st_stream
        ~acts:(baseline @ [ I.Assign (lv l_count, I.Const (V.Int 1)); set_window ])
        ();
      tr ~label:"flood" ~from_state:st_stream (M.On_event Keys.rtp_packet) ~to_state:st_flood
        ~guard:flood
        ~acts:[ I.Cancel_timer window_timer_id ]
        ();
      tr ~label:"spam" ~from_state:st_stream (M.On_event Keys.rtp_packet) ~to_state:st_spam
        ~guard:(I.And [ I.Not flood; spam ])
        ~acts:[ I.Cancel_timer window_timer_id ]
        ();
      tr ~label:"in_order" ~from_state:st_stream (M.On_event Keys.rtp_packet)
        ~to_state:st_stream
        ~guard:(I.And [ I.Not flood; I.Not spam ])
        ~acts:[ advance ] ();
      tr ~label:"window_active" ~from_state:st_stream (M.On_timer window_timer_id)
        ~to_state:st_stream
        ~guard:(I.Cmp (I.Gt, I.Int_or0 (I.Var (lv l_count)), I.Int_const 0))
        ~acts:[ I.Assign (lv l_count, I.Const (V.Int 0)); set_window ]
        ();
      tr ~label:"window_idle" ~from_state:st_stream (M.On_timer window_timer_id)
        ~to_state:st_dormant
        ~guard:(I.Cmp (I.Ieq, I.Int_or0 (I.Var (lv l_count)), I.Int_const 0))
        ();
      tr ~label:"resume" ~from_state:st_dormant (M.On_event Keys.rtp_packet) ~to_state:st_stream
        ~guard:(I.Eq (I.Field Keys.ssrc, I.Var (lv l_ssrc)))
        ~acts:(baseline @ [ I.Assign (lv l_count, I.Const (V.Int 1)); set_window ])
        ();
      tr ~label:"resume_foreign" ~from_state:st_dormant (M.On_event Keys.rtp_packet)
        ~to_state:st_spam
        ~guard:(I.Not (I.Eq (I.Field Keys.ssrc, I.Var (lv l_ssrc))))
        ();
      tr ~label:"spam_more" ~from_state:st_spam (M.On_event Keys.rtp_packet) ~to_state:st_spam
        ();
      tr ~label:"flood_more" ~from_state:st_flood (M.On_event Keys.rtp_packet)
        ~to_state:st_flood ();
    ]
  in
  {
    M.spec_name = machine_name;
    initial = st_init;
    finals = [];
    attack_states =
      [
        (st_spam, "RTP stream discontinuity: foreign SSRC, sequence or timestamp gap");
        ( st_flood,
          Printf.sprintf "more than %d RTP packets per window on one stream"
            config.Config.rtp_flood_threshold );
      ];
    transitions;
  }
