module M = Efsm.Machine
module I = Efsm.Ir
module Env = Efsm.Env
module V = Efsm.Value

let st_init = "INIT"
let st_counting = "ORPHAN_RCVD"
let st_attack = "DRDOS_ATTACK"
let window_timer_id = "drdos_window"
let machine_name = "DRDOS"
let orphan_response = "ORPHAN_RESPONSE"
let l_count = "l_orphan_count"

let lv n = (Env.Local, n)
let vars : I.decl list = [ (lv l_count, I.D_int) ]
let next_count = I.Add (I.Int_or0 (I.Var (lv l_count)), I.Int_const 1)
let tr = M.ir_transition

let spec (config : Config.t) =
  let threshold = config.Config.drdos_threshold in
  let transitions =
    [
      tr ~label:"first_orphan" ~from_state:st_init (M.On_event orphan_response)
        ~to_state:st_counting
        ~acts:
          [
            I.Assign (lv l_count, I.Const (V.Int 1));
            I.Set_timer { id = window_timer_id; delay = config.Config.drdos_window };
          ]
        ();
      tr ~label:"count" ~from_state:st_counting (M.On_event orphan_response)
        ~to_state:st_counting
        ~guard:(I.Cmp (I.Le, next_count, I.Int_const threshold))
        ~acts:[ I.Assign (lv l_count, I.Of_int next_count) ]
        ();
      tr ~label:"attack" ~from_state:st_counting (M.On_event orphan_response)
        ~to_state:st_attack
        ~guard:(I.Cmp (I.Gt, next_count, I.Int_const threshold))
        ~acts:[ I.Cancel_timer window_timer_id ]
        ();
      tr ~label:"window_over" ~from_state:st_counting (M.On_timer window_timer_id)
        ~to_state:st_init
        ~acts:[ I.Assign (lv l_count, I.Const (V.Int 0)) ]
        ();
      tr ~label:"attack_more" ~from_state:st_attack (M.On_event orphan_response)
        ~to_state:st_attack ();
    ]
  in
  {
    M.spec_name = machine_name;
    initial = st_init;
    finals = [];
    attack_states =
      [
        ( st_attack,
          Printf.sprintf "more than %d unsolicited SIP responses within the window" threshold );
      ];
    transitions;
  }
