type counters = {
  sip_packets : int;
  rtp_packets : int;
  rtcp_packets : int;
  other_packets : int;
  malformed_packets : int;
  orphan_requests : int;
  orphan_responses : int;
  alerts_raised : int;
  alerts_suppressed : int;
  anomalies : int;
  faults : int;
  rtp_shed : int;
  backpressure_stalls : int;
}

(* Input events for the detectors that need cross-call totals.  A sharded
   deployment defers these ([Config.defer_global_detectors]) and aggregates
   the counts across shards; see [set_global_listener]. *)
type global_event =
  | Invite_flood_candidate of string  (* INVITE toward this user\@host *)
  | Drdos_candidate of string  (* orphan response toward this victim host *)

(* Pre-resolved telemetry handles, so the per-packet cost of metrics is a
   field load and an integer bump — no registry lookups on the hot path.
   Strictly write-only with respect to the engine: nothing here feeds back
   into analysis, so [Snapshot.digest] is identical with telemetry on or
   off. *)
type instruments = {
  i_registry : Obs.Metrics.t; (* for the rare, label-dynamic counters *)
  i_sip : Obs.Metrics.counter;
  i_rtp : Obs.Metrics.counter;
  i_rtcp : Obs.Metrics.counter;
  i_other : Obs.Metrics.counter;
  i_malformed : Obs.Metrics.counter;
  i_inject_call : Obs.Metrics.counter;
  i_inject_flood : Obs.Metrics.counter;
  i_inject_spam : Obs.Metrics.counter;
  i_inject_drdos : Obs.Metrics.counter;
  i_suppressed : Obs.Metrics.counter;
  i_anomalies : Obs.Metrics.counter;
  i_faults : Obs.Metrics.counter;
  i_evictions : Obs.Metrics.counter;
  i_rtp_shed : Obs.Metrics.counter;
  i_occupancy : Obs.Metrics.gauge;
  i_occupancy_hist : Obs.Metrics.histogram;
}

type t = {
  config : Config.t;
  sched : Dsim.Scheduler.t;
  base : Fact_base.t;
  mutable inst : instruments option;
  mutable flight : Obs.Trace.t option;
  mutable prof : Obs.Prof.t option;
  mutable alerts : Alert.t list; (* newest first *)
  seen : (string, unit) Hashtbl.t; (* alert dedup keys *)
  (* Dedup keys of alerts recovered from the write-ahead journal but not
     yet reproduced by replay.  The first re-raise of such a key "claims"
     it: the alert is already in the log, so the raise neither appends nor
     counts as a suppressed duplicate — exactly-once semantics that let a
     journal merge plus trace-suffix replay converge with an uninterrupted
     run. *)
  journal_pending : (string, unit) Hashtbl.t;
  mutable listeners : (Alert.t -> unit) list;
  mutable eviction_listeners : (at:Dsim.Time.t -> subject:string -> detail:string -> unit) list;
  mutable downtime_log : (Dsim.Time.t * Dsim.Time.t * int) list; (* newest first *)
  mutable busy : Dsim.Time.t;
  mutable sip_packets : int;
  mutable rtp_packets : int;
  mutable rtcp_packets : int;
  mutable other_packets : int;
  mutable malformed_packets : int;
  mutable orphan_requests : int;
  mutable orphan_responses : int;
  mutable suppressed : int;
  mutable anomalies : int;
  mutable faults : int;
  mutable injects : int; (* machine injections, for the chaos self-test knob *)
  mutable rtp_shed : int;
  mutable backpressure_stalls : int; (* producer stalls on this engine's feed queue *)
  mutable global_listener : (at:Dsim.Time.t -> global_event -> unit) option;
  mutable degraded_since : Dsim.Time.t option;
  mutable degraded_log : (Dsim.Time.t * Dsim.Time.t) list; (* closed intervals, newest first *)
  mutable inline_free_at : Dsim.Time.t; (* single-CPU queueing for inline deployment *)
}

let now t = Dsim.Scheduler.now t.sched

(* --------------------------------------------------------------- *)
(* Telemetry hooks                                                  *)
(* --------------------------------------------------------------- *)

let tick t f = match t.inst with None -> () | Some i -> Obs.Metrics.incr (f i)

(* Same single-branch discipline as [tick]: with no profiler attached a
   span site costs one load and one conditional jump. *)
let penter t s = match t.prof with None -> () | Some p -> Obs.Prof.enter p s
let pexit t s = match t.prof with None -> () | Some p -> Obs.Prof.exit p s

let trace t ev =
  match t.flight with None -> () | Some fl -> Obs.Trace.record fl ~at:(now t) ev

(* A quarantine is the flight recorder's raison d'être: dump the tail so
   the event sequence that led to the fault survives as an artifact. *)
let trace_quarantine t ~subject ~origin =
  match t.flight with
  | None -> ()
  | Some fl ->
      Obs.Trace.record fl ~at:(now t) (Obs.Trace.Quarantine { subject; origin });
      ignore (Obs.Trace.dump fl ~reason:(Printf.sprintf "quarantine %s (%s)" subject origin))

let count_alert t (alert : Alert.t) =
  match t.inst with
  | None -> ()
  | Some i ->
      Obs.Metrics.incr
        (Obs.Metrics.counter i.i_registry "vids_alerts_total"
           ~help:"Distinct alerts raised, by kind"
           ~labels:[ ("kind", Alert.kind_to_string alert.Alert.kind) ])

let raise_alert t alert =
  let key = Alert.dedup_key alert in
  if Hashtbl.mem t.journal_pending key then begin
    (* Claimed: the journal merge already logged this alert (and notified
       nobody — it was delivered before the crash), so the replayed raise
       is the original one, not a duplicate. *)
    Hashtbl.remove t.journal_pending key;
    Hashtbl.replace t.seen key ()
  end
  else if Hashtbl.mem t.seen key then begin
    t.suppressed <- t.suppressed + 1;
    tick t (fun i -> i.i_suppressed)
  end
  else begin
    Hashtbl.replace t.seen key ();
    t.alerts <- alert :: t.alerts;
    count_alert t alert;
    trace t
      (Obs.Trace.Alert
         { kind = Alert.kind_to_string alert.Alert.kind; subject = alert.Alert.subject });
    (* A listener is foreign code; its failure must neither lose the alert
       nor unwind the packet loop (and raising another alert from here
       could recurse) — contain it to a counter. *)
    List.iter
      (fun listener -> try listener alert with _ -> t.faults <- t.faults + 1)
      t.listeners
  end

(* --------------------------------------------------------------- *)
(* Fault containment                                                *)
(* --------------------------------------------------------------- *)

exception Chaos_fault

(* Runs [f] inside the containment boundary.  An escaping exception is
   counted, reported as an [Engine_fault] alert, and returned so the call
   site can quarantine the offending record; it never unwinds further. *)
let contain t ~subject ~origin f =
  try
    f ();
    false
  with
  | (Stack_overflow | Out_of_memory) as fatal -> raise fatal
  | exn ->
      t.faults <- t.faults + 1;
      tick t (fun i -> i.i_faults);
      raise_alert t
        (Alert.make ~kind:Alert.Engine_fault ~at:(now t) ~subject
           (Printf.sprintf "%s: contained exception %s" origin (Printexc.to_string exn)));
      true

(* Chaos self-test: deterministically blow up inside the boundary every
   [chaos_inject_every]-th machine injection. *)
let checked_inject t system ~machine event =
  t.injects <- t.injects + 1;
  let every = t.config.Config.chaos_inject_every in
  if every > 0 && t.injects mod every = 0 then raise Chaos_fault;
  Efsm.System.inject system ~machine event

(* --------------------------------------------------------------- *)
(* Graceful degradation                                             *)
(* --------------------------------------------------------------- *)

let degraded t = Option.is_some t.degraded_since

let degraded_intervals t =
  let closed = List.rev_map (fun (a, b) -> (a, Some b)) t.degraded_log in
  match t.degraded_since with None -> closed | Some since -> closed @ [ (since, None) ]

let update_degradation t =
  let high = t.config.Config.degrade_high_water in
  if high > 0 then begin
    let low =
      if t.config.Config.degrade_low_water > 0 then t.config.Config.degrade_low_water
      else high * 3 / 4
    in
    let occupancy = Fact_base.occupancy t.base in
    match t.degraded_since with
    | None when occupancy >= high ->
        t.degraded_since <- Some (now t);
        raise_alert t
          (Alert.make ~kind:Alert.Resource_pressure ~at:(now t) ~subject:"engine"
             (Printf.sprintf
                "degraded: %d state records >= %d high water; shedding stream-level RTP analysis"
                occupancy high))
    | Some since when occupancy <= low ->
        t.degraded_since <- None;
        t.degraded_log <- (since, now t) :: t.degraded_log
    | None | Some _ -> ()
  end

let create ?(config = Config.default) ?(overrides = []) sched =
  (* The fact base needs the engine's callbacks and the engine record needs
     the fact base: tie the knot with a forward reference that is set
     before any packet or timer can fire. *)
  let self = ref None in
  let with_engine f = match !self with Some t -> f t | None -> () in
  let on_pressure ~subject ~detail =
    with_engine (fun t ->
        raise_alert t (Alert.make ~kind:Alert.Resource_pressure ~at:(now t) ~subject detail);
        tick t (fun i -> i.i_evictions);
        trace t (Obs.Trace.Eviction { subject; detail });
        (* Unlike the deduplicated alert above, eviction listeners see every
           reclamation — the journal needs each one for forensics. *)
        List.iter
          (fun listener ->
            try listener ~at:(now t) ~subject ~detail with _ -> t.faults <- t.faults + 1)
          t.eviction_listeners)
  in
  (* Map a machine's attack state to the alert taxonomy. *)
  let kind_of_attack_state state =
    if String.equal state Sip_call_machine.st_cancel_dos then Alert.Cancel_dos
    else if String.equal state Sip_call_machine.st_hijack then Alert.Call_hijack
    else if String.equal state Rtp_call_machine.st_bye_dos then Alert.Bye_dos
    else if String.equal state Rtp_call_machine.st_billing_fraud then Alert.Billing_fraud
    else if String.equal state Invite_flood_machine.st_flood then Alert.Invite_flood
    else if String.equal state Media_spam_machine.st_spam then Alert.Media_spam
    else if String.equal state Media_spam_machine.st_flood then Alert.Rtp_flood
    else if String.equal state Drdos_machine.st_attack then Alert.Drdos
    else Alert.Spec_deviation
  in
  let on_alert ~machine ~state ~subject ~detail =
    with_engine (fun t ->
        trace t (Obs.Trace.Transition { machine; subject; state });
        raise_alert t (Alert.make ~kind:(kind_of_attack_state state) ~at:(now t) ~subject detail))
  in
  let on_anomaly ~machine ~state ~subject ~event ~detail =
    with_engine (fun t ->
        t.anomalies <- t.anomalies + 1;
        tick t (fun i -> i.i_anomalies);
        let subject = Printf.sprintf "%s/%s@%s" subject event.Efsm.Event.name state in
        raise_alert t
          (Alert.make ~kind:Alert.Spec_deviation ~at:(now t) ~subject
             (Printf.sprintf "machine %s: %s" machine detail)))
  in
  let host = Efsm.System.timer_host_of_scheduler sched in
  (* Timer callbacks run straight off the scheduler, outside the per-packet
     boundary; contain them so a faulting timer cannot kill the event
     loop. *)
  let timer_host =
    {
      host with
      Efsm.System.set =
        (fun delay f ->
          host.Efsm.System.set delay (fun () ->
              match !self with
              | None -> f ()
              | Some t -> ignore (contain t ~subject:"timer" ~origin:"timer callback" f)));
    }
  in
  let base = Fact_base.create ~on_pressure ~overrides ~config ~timer_host ~on_alert ~on_anomaly () in
  let t =
    {
      config;
      sched;
      base;
      inst = None;
      flight = None;
      prof = None;
      alerts = [];
      seen = Hashtbl.create 64;
      journal_pending = Hashtbl.create 8;
      listeners = [];
      eviction_listeners = [];
      downtime_log = [];
      busy = Dsim.Time.zero;
      sip_packets = 0;
      rtp_packets = 0;
      rtcp_packets = 0;
      other_packets = 0;
      malformed_packets = 0;
      orphan_requests = 0;
      orphan_responses = 0;
      suppressed = 0;
      anomalies = 0;
      faults = 0;
      injects = 0;
      rtp_shed = 0;
      backpressure_stalls = 0;
      global_listener = None;
      degraded_since = None;
      degraded_log = [];
      inline_free_at = Dsim.Time.zero;
    }
  in
  self := Some t;
  Fact_base.schedule_sweep base;
  t

let config t = t.config

let set_telemetry t ?metrics ?flight () =
  t.flight <- flight;
  match metrics with
  | None -> t.inst <- None
  | Some m ->
      Obs.Metrics.set_clock m (fun () -> now t);
      let packets cls =
        Obs.Metrics.counter m "vids_packets_total"
          ~help:"Packets seen by the classifier, by class" ~labels:[ ("class", cls) ]
      in
      let injects target =
        Obs.Metrics.counter m "vids_injects_total"
          ~help:"Events injected into state machines, by target" ~labels:[ ("target", target) ]
      in
      t.inst <-
        Some
          {
            i_registry = m;
            i_sip = packets "sip";
            i_rtp = packets "rtp";
            i_rtcp = packets "rtcp";
            i_other = packets "other";
            i_malformed = packets "malformed";
            i_inject_call = injects "call";
            i_inject_flood = injects "flood";
            i_inject_spam = injects "spam";
            i_inject_drdos = injects "drdos";
            i_suppressed =
              Obs.Metrics.counter m "vids_alerts_suppressed_total"
                ~help:"Duplicate alerts dropped by de-duplication";
            i_anomalies =
              Obs.Metrics.counter m "vids_anomalies_total"
                ~help:"Protocol-deviation anomalies flagged by machines";
            i_faults =
              Obs.Metrics.counter m "vids_faults_total"
                ~help:"Exceptions contained at an engine boundary";
            i_evictions =
              Obs.Metrics.counter m "vids_evictions_total"
                ~help:"State records reclaimed by resource governance";
            i_rtp_shed =
              Obs.Metrics.counter m "vids_rtp_shed_total"
                ~help:"RTP packets whose stream analysis was shed while degraded";
            i_occupancy =
              Obs.Metrics.gauge m "vids_fact_base_occupancy"
                ~help:"Live state records in the fact base";
            i_occupancy_hist =
              Obs.Metrics.histogram m "vids_fact_base_occupancy_hist"
                ~help:"Fact-base occupancy sampled per packet";
          }

let metrics_registry t = match t.inst with Some i -> Some i.i_registry | None -> None
let flight_recorder t = t.flight

let set_profiler t prof =
  t.prof <- prof;
  match prof with
  | None -> ()
  | Some p ->
      (* The profiler's registry may be the telemetry registry or its own;
         either way its snapshots should carry this engine's virtual time,
         as should its sampled span events. *)
      Obs.Metrics.set_clock (Obs.Prof.registry p) (fun () -> now t);
      Obs.Prof.set_vclock p (fun () -> now t)

let profiler t = t.prof

(* --------------------------------------------------------------- *)
(* SIP distribution                                                 *)
(* --------------------------------------------------------------- *)

let register_event_media t call event =
  match Sip_event.media_of_event event with
  | None -> ()
  | Some addr -> Fact_base.register_media t.base call addr

(* A fault inside a call's machines quarantines that call: its record is
   deleted so the poisoned state cannot fault again on the next packet,
   while every other call keeps being analyzed. *)
let inject_call t call event =
  tick t (fun i -> i.i_inject_call);
  trace t (Obs.Trace.Dispatch { target = "call"; subject = call.Fact_base.call_id });
  penter t Obs.Prof.Efsm_dispatch;
  let faulted =
    contain t ~subject:call.Fact_base.call_id ~origin:"call machine"
      (fun () ->
        checked_inject t call.Fact_base.system ~machine:Keys.sip_machine event;
        Fact_base.maybe_finish t.base call)
  in
  pexit t Obs.Prof.Efsm_dispatch;
  if faulted then begin
    Fact_base.quarantine_call t.base call;
    trace_quarantine t ~subject:call.Fact_base.call_id ~origin:"call machine"
  end

(* The listener is foreign code (the shard worker's epoch counter); contain
   its failures like alert listeners'. *)
let emit_global_event t ev =
  match t.global_listener with
  | None -> ()
  | Some listener -> ( try listener ~at:(now t) ev with _ -> t.faults <- t.faults + 1)

let feed_flood_detector t msg event =
  match Sip_event.flood_key msg with
  | None -> ()
  | Some key ->
      emit_global_event t (Invite_flood_candidate key);
      if not t.config.Config.defer_global_detectors then begin
        tick t (fun i -> i.i_inject_flood);
        trace t (Obs.Trace.Dispatch { target = "flood"; subject = key });
        penter t Obs.Prof.Detect;
        let system, _ = Fact_base.flood_detector t.base ~key in
        let faulted =
          contain t ~subject:("dst:" ^ key) ~origin:"flood detector" (fun () ->
              checked_inject t system ~machine:Invite_flood_machine.machine_name event)
        in
        pexit t Obs.Prof.Detect;
        if faulted then begin
          Fact_base.quarantine_detector t.base `Flood ~key;
          trace_quarantine t ~subject:("dst:" ^ key) ~origin:"flood detector"
        end
      end

let feed_drdos_detector t (packet : Dsim.Packet.t) event =
  let key = Dsim.Addr.host packet.dst in
  emit_global_event t (Drdos_candidate key);
  if not t.config.Config.defer_global_detectors then begin
    let system, _ = Fact_base.drdos_detector t.base ~key in
    let orphan =
      Efsm.Event.make
        ~args:event.Efsm.Event.args (Efsm.Event.Data "SIP") ~at:event.Efsm.Event.at
        Drdos_machine.orphan_response
    in
    tick t (fun i -> i.i_inject_drdos);
    trace t (Obs.Trace.Dispatch { target = "drdos"; subject = key });
    penter t Obs.Prof.Detect;
    let faulted =
      contain t ~subject:("victim:" ^ key) ~origin:"drdos detector" (fun () ->
          checked_inject t system ~machine:Drdos_machine.machine_name orphan)
    in
    pexit t Obs.Prof.Detect;
    if faulted then begin
      Fact_base.quarantine_detector t.base `Drdos ~key;
      trace_quarantine t ~subject:("victim:" ^ key) ~origin:"drdos detector"
    end
  end

(* A REGISTER crossing the boundary sensor: intra-enterprise registrations
   never reach this vantage point, so someone outside is rebinding a
   protected user's contact. *)
let check_boundary_register t msg =
  if t.config.Config.flag_boundary_register then
    match msg.Sip.Msg.start with
    | Sip.Msg.Request { meth = Sip.Msg_method.REGISTER; _ } ->
        let subject =
          match Sip.Msg.to_ msg with
          | Ok to_ ->
              let uri = to_.Sip.Name_addr.uri in
              Option.value uri.Sip.Uri.user ~default:"" ^ "@" ^ uri.Sip.Uri.host
          | Error _ -> "unknown-aor"
        in
        let contact =
          match Sip.Msg.contact msg with
          | Ok na -> Sip.Uri.to_string na.Sip.Name_addr.uri
          | Error _ -> "?"
        in
        raise_alert t
          (Alert.make ~kind:Alert.Registration_hijack ~at:(now t) ~subject
             (Printf.sprintf "REGISTER crossed the boundary sensor binding contact %s" contact))
    | Sip.Msg.Request _ | Sip.Msg.Response _ -> ()

let trace_packet t (packet : Dsim.Packet.t) proto =
  match t.flight with
  | None -> ()
  | Some fl ->
      Obs.Trace.record fl ~at:(now t)
        (Obs.Trace.Packet
           { proto; src = packet.Dsim.Packet.src; dst = packet.Dsim.Packet.dst })

let handle_sip t (packet : Dsim.Packet.t) msg =
  t.sip_packets <- t.sip_packets + 1;
  tick t (fun i -> i.i_sip);
  trace_packet t packet "sip";
  t.busy <- Dsim.Time.add t.busy t.config.Config.sip_cpu_cost;
  let event = Sip_event.of_msg ?prof:t.prof ~at:(now t) ~src:packet.src ~dst:packet.dst msg in
  check_boundary_register t msg;
  (match msg.Sip.Msg.start with
  | Sip.Msg.Request { meth = Sip.Msg_method.INVITE; _ } -> feed_flood_detector t msg event
  | Sip.Msg.Request _ | Sip.Msg.Response _ -> ());
  match Sip.Msg.call_id msg with
  | Error e ->
      t.malformed_packets <- t.malformed_packets + 1;
      tick t (fun i -> i.i_malformed);
      raise_alert t
        (Alert.make ~kind:Alert.Spec_deviation ~at:(now t)
           ~subject:(Dsim.Addr.to_string packet.src)
           (Printf.sprintf "SIP message without Call-ID: %s" e))
  | Ok call_id -> (
      match Fact_base.find_call t.base call_id with
      | Some call ->
          register_event_media t call event;
          inject_call t call event
      | None -> (
          match msg.Sip.Msg.start with
          | Sip.Msg.Request { meth = Sip.Msg_method.INVITE; _ } ->
              let call = Fact_base.create_call t.base ~call_id in
              register_event_media t call event;
              inject_call t call event
          | Sip.Msg.Request { meth = Sip.Msg_method.REGISTER; _ } ->
              (* Already reported by the boundary-REGISTER check; a
                 registration is not expected to belong to a call. *)
              ()
          | Sip.Msg.Request { meth; _ } ->
              t.orphan_requests <- t.orphan_requests + 1;
              raise_alert t
                (Alert.make ~kind:Alert.Spec_deviation ~severity:Alert.Warning ~at:(now t)
                   ~subject:(call_id ^ "/" ^ Sip.Msg_method.to_string meth)
                   "request for a call the sensor never saw established")
          | Sip.Msg.Response _ ->
              t.orphan_responses <- t.orphan_responses + 1;
              feed_drdos_detector t packet event))

(* --------------------------------------------------------------- *)
(* RTP distribution                                                 *)
(* --------------------------------------------------------------- *)

let rtp_event ~at ~src ~dst (p : Rtp.Rtp_packet.t) =
  let module V = Efsm.Value in
  Efsm.Event.make
    ~args:
      [
        (Keys.src_ip, V.Str (Dsim.Addr.host src));
        (Keys.src_port, V.Int (Dsim.Addr.port src));
        (Keys.dst_ip, V.Str (Dsim.Addr.host dst));
        (Keys.dst_port, V.Int (Dsim.Addr.port dst));
        (Keys.ssrc, V.Int (Int32.to_int p.Rtp.Rtp_packet.ssrc));
        (Keys.seq, V.Int p.Rtp.Rtp_packet.sequence);
        (Keys.ts, V.Int (Int32.to_int p.Rtp.Rtp_packet.timestamp));
        (Keys.payload_type, V.Int p.Rtp.Rtp_packet.payload_type);
        (Keys.size, V.Int (String.length p.Rtp.Rtp_packet.payload));
      ]
    (Efsm.Event.Data "RTP") ~at Keys.rtp_packet

let handle_rtp t (packet : Dsim.Packet.t) decoded =
  t.rtp_packets <- t.rtp_packets + 1;
  tick t (fun i -> i.i_rtp);
  trace_packet t packet "rtp";
  t.busy <- Dsim.Time.add t.busy t.config.Config.rtp_cpu_cost;
  let event = rtp_event ~at:(now t) ~src:packet.src ~dst:packet.dst decoded in
  (* Stream-level checks (Figure 6) run on every stream the sensor sees —
     unless the engine is degraded, in which case they are shed first:
     they are the per-packet bulk of the load and each unknown stream
     grows a new detector, while SIP signaling checks stay live. *)
  if degraded t then begin
    t.rtp_shed <- t.rtp_shed + 1;
    tick t (fun i -> i.i_rtp_shed)
  end
  else begin
    let stream_key = Dsim.Addr.to_string packet.dst in
    tick t (fun i -> i.i_inject_spam);
    trace t (Obs.Trace.Dispatch { target = "spam"; subject = stream_key });
    penter t Obs.Prof.Detect;
    let system, _ = Fact_base.spam_detector t.base ~key:stream_key in
    let faulted =
      contain t ~subject:("stream:" ^ stream_key) ~origin:"spam detector" (fun () ->
          checked_inject t system ~machine:Media_spam_machine.machine_name event)
    in
    pexit t Obs.Prof.Detect;
    if faulted then begin
      Fact_base.quarantine_detector t.base `Spam ~key:stream_key;
      trace_quarantine t ~subject:("stream:" ^ stream_key) ~origin:"spam detector"
    end
  end;
  (* Call-level cross-protocol checks (Figure 5) when the stream belongs to
     a tracked call; these stay live even degraded (they are bounded by the
     call cap and carry the BYE-DoS/billing-fraud discrimination). *)
  match Fact_base.call_for_media t.base packet.dst with
  | None -> ()
  | Some call ->
      tick t (fun i -> i.i_inject_call);
      trace t (Obs.Trace.Dispatch { target = "call"; subject = call.Fact_base.call_id });
      penter t Obs.Prof.Efsm_dispatch;
      let faulted =
        contain t ~subject:call.Fact_base.call_id ~origin:"call machine" (fun () ->
            checked_inject t call.Fact_base.system ~machine:Keys.rtp_machine event;
            Fact_base.maybe_finish t.base call)
      in
      pexit t Obs.Prof.Efsm_dispatch;
      if faulted then begin
        Fact_base.quarantine_call t.base call;
        trace_quarantine t ~subject:call.Fact_base.call_id ~origin:"call machine"
      end

(* --------------------------------------------------------------- *)
(* Entry points                                                     *)
(* --------------------------------------------------------------- *)

let dispatch t packet =
  match Classifier.classify ?prof:t.prof ~known_media:(Fact_base.known_media t.base) packet with
  | Classifier.Sip msg -> handle_sip t packet msg
  | Classifier.Rtp decoded -> handle_rtp t packet decoded
  | Classifier.Rtcp _ ->
      t.rtcp_packets <- t.rtcp_packets + 1;
      tick t (fun i -> i.i_rtcp);
      trace_packet t packet "rtcp";
      t.busy <- Dsim.Time.add t.busy t.config.Config.rtp_cpu_cost
  | Classifier.Malformed_sip e ->
      t.malformed_packets <- t.malformed_packets + 1;
      tick t (fun i -> i.i_malformed);
      trace_packet t packet "malformed-sip";
      t.busy <- Dsim.Time.add t.busy t.config.Config.sip_cpu_cost;
      raise_alert t
        (Alert.make ~kind:Alert.Spec_deviation ~at:(now t)
           ~subject:(Dsim.Addr.to_string packet.Dsim.Packet.src)
           (Printf.sprintf "unparsable SIP message: %s" e))
  | Classifier.Malformed_rtp _ ->
      t.malformed_packets <- t.malformed_packets + 1;
      tick t (fun i -> i.i_malformed);
      trace_packet t packet "malformed-rtp"
  | Classifier.Other ->
      t.other_packets <- t.other_packets + 1;
      tick t (fun i -> i.i_other)

let process_packet t packet =
  update_degradation t;
  (match t.inst with
  | None -> ()
  | Some i ->
      let occ = Float.of_int (Fact_base.occupancy t.base) in
      Obs.Metrics.set i.i_occupancy occ;
      Obs.Metrics.observe i.i_occupancy_hist occ);
  (* Outer boundary: whatever the inner per-record boundaries miss
     (classifier, parser, distributor) is contained here, so no packet —
     however crafted — can unwind the sensor's packet loop. *)
  ignore
    (contain t
       ~subject:(Dsim.Addr.to_string packet.Dsim.Packet.src)
       ~origin:"packet pipeline"
       (fun () -> dispatch t packet))

let tap t packet = process_packet t packet

(* Inline forwarding latency: a fixed per-protocol pipeline latency plus
   time spent queued behind earlier packets on the single analysis CPU
   (whose occupancy per packet is the much smaller cpu cost).  The queueing
   term is what perturbs RTP jitter under load (§7.4). *)
let transit_delay t packet =
  let pipeline, cpu =
    match Classifier.quick_protocol packet with
    | `Sip -> (t.config.Config.sip_transit_delay, t.config.Config.sip_cpu_cost)
    | `Media -> (t.config.Config.rtp_transit_delay, t.config.Config.rtp_cpu_cost)
    | `Other -> (Dsim.Time.zero, Dsim.Time.zero)
  in
  if pipeline = Dsim.Time.zero then Dsim.Time.zero
  else begin
    let at = Dsim.Scheduler.now t.sched in
    let start = Dsim.Time.max at t.inline_free_at in
    t.inline_free_at <- Dsim.Time.add start cpu;
    Dsim.Time.add (Dsim.Time.sub start at) pipeline
  end

let alerts t = List.rev t.alerts
let alerts_of_kind t kind = List.filter (fun a -> a.Alert.kind = kind) (alerts t)

let counters t =
  {
    sip_packets = t.sip_packets;
    rtp_packets = t.rtp_packets;
    rtcp_packets = t.rtcp_packets;
    other_packets = t.other_packets;
    malformed_packets = t.malformed_packets;
    orphan_requests = t.orphan_requests;
    orphan_responses = t.orphan_responses;
    alerts_raised = List.length t.alerts;
    alerts_suppressed = t.suppressed;
    anomalies = t.anomalies;
    faults = t.faults;
    rtp_shed = t.rtp_shed;
    backpressure_stalls = t.backpressure_stalls;
  }

let add_backpressure_stalls t n = if n > 0 then t.backpressure_stalls <- t.backpressure_stalls + n
let cpu_busy t = t.busy
let fact_base t = t.base
let memory_stats t = Fact_base.stats t.base
let on_alert t listener = t.listeners <- listener :: t.listeners
let on_eviction t listener = t.eviction_listeners <- listener :: t.eviction_listeners
let set_global_listener t listener = t.global_listener <- listener

(* --------------------------------------------------------------- *)
(* Crash safety                                                     *)
(* --------------------------------------------------------------- *)

let merge_journal_alert t alert =
  let key = Alert.dedup_key alert in
  if not (Hashtbl.mem t.seen key || Hashtbl.mem t.journal_pending key) then begin
    t.alerts <- alert :: t.alerts;
    Hashtbl.replace t.journal_pending key ()
  end

let record_downtime t ~start ~stop ~missed = t.downtime_log <- (start, stop, missed) :: t.downtime_log
let downtime_intervals t = List.rev t.downtime_log

module Persist = struct
  type dump = {
    p_counters : counters;
    p_injects : int;
    p_busy : Dsim.Time.t;
    p_inline_free_at : Dsim.Time.t;
    p_degraded_since : Dsim.Time.t option;
    p_degraded_log : (Dsim.Time.t * Dsim.Time.t) list; (* oldest first *)
    p_alerts : Alert.t list; (* oldest first *)
    p_downtime : (Dsim.Time.t * Dsim.Time.t * int) list; (* oldest first *)
  }

  let dump t =
    {
      p_counters = counters t;
      p_injects = t.injects;
      p_busy = t.busy;
      p_inline_free_at = t.inline_free_at;
      p_degraded_since = t.degraded_since;
      p_degraded_log = List.rev t.degraded_log;
      p_alerts = alerts t;
      p_downtime = downtime_intervals t;
    }

  let restore t d =
    let c = d.p_counters in
    t.sip_packets <- c.sip_packets;
    t.rtp_packets <- c.rtp_packets;
    t.rtcp_packets <- c.rtcp_packets;
    t.other_packets <- c.other_packets;
    t.malformed_packets <- c.malformed_packets;
    t.orphan_requests <- c.orphan_requests;
    t.orphan_responses <- c.orphan_responses;
    t.suppressed <- c.alerts_suppressed;
    t.anomalies <- c.anomalies;
    t.faults <- c.faults;
    t.injects <- d.p_injects;
    t.rtp_shed <- c.rtp_shed;
    t.backpressure_stalls <- c.backpressure_stalls;
    t.busy <- d.p_busy;
    t.inline_free_at <- d.p_inline_free_at;
    t.degraded_since <- d.p_degraded_since;
    t.degraded_log <- List.rev d.p_degraded_log;
    t.alerts <- List.rev d.p_alerts;
    Hashtbl.reset t.seen;
    List.iter (fun a -> Hashtbl.replace t.seen (Alert.dedup_key a) ()) d.p_alerts;
    t.downtime_log <- List.rev d.p_downtime
end
