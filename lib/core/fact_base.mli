(** The Call State Fact Base (paper Figure 3, §5).

    Stores, per ongoing call, one instance of each protocol state machine
    (the paper's "only one instance of a protocol state machine is
    maintained at the memory" per call) plus the standalone detector
    machines keyed by destination or stream.  Completed calls are deleted
    after a linger period; the memory model mirrors §7.3's ≈450 B SIP +
    ≈40 B RTP per-call figures alongside the measured footprint.

    Because every record here is created by attacker-controlled input, the
    base governs its own size: optional caps on calls and detectors evict
    the oldest record when reached, and a scheduled sweep reclaims records
    older than [call_max_age] (abandoned setups, machines parked in attack
    states).  Every reclamation is reported through [on_pressure] so the
    engine can surface it as a [Resource_pressure] alert. *)

type call = {
  call_id : string;
  key : int;
      (** Interned Call-ID id ({!Intern.intern}); the call table, media index
          and eviction queue all key on this instead of the string.  Released
          (and possibly recycled) when the call is deleted. *)
  serial : int;
      (** Unique per record, never reused: disambiguates a recycled [key] in
          the eviction queue and in stale timer closures. *)
  system : Efsm.System.t;
  sip : Efsm.Machine.t;
  rtp : Efsm.Machine.t;
  created_at : Dsim.Time.t;
  mutable media_addrs : Dsim.Addr.t list;
  mutable closing : bool;
  mutable finish_pending : bool;
  mutable delete_at : Dsim.Time.t option;
      (** Absolute deadline of the pending linger-deletion timer, recorded
          so checkpoints can re-arm it at the same virtual time. *)
  mutable recheck_at : Dsim.Time.t option;
      (** Absolute deadline of the pending finish re-check timer. *)
}

type detector_kind = [ `Flood | `Spam | `Drdos ]

type t

val create :
  ?on_pressure:(subject:string -> detail:string -> unit) ->
  ?overrides:(string * Efsm.Machine.spec) list ->
  config:Config.t ->
  timer_host:Efsm.System.timer_host ->
  on_alert:(machine:string -> state:string -> subject:string -> detail:string -> unit) ->
  on_anomaly:
    (machine:string -> state:string -> subject:string -> event:Efsm.Event.t -> detail:string -> unit) ->
  unit ->
  t

val find_call : t -> string -> call option

val create_call : t -> call_id:string -> call
(** Instantiates the SIP and RTP machines inside a fresh communicating
    system.  Total: a duplicate Call-ID returns the existing record (wire
    input must never raise).  When [max_calls] is set and reached, the
    oldest record is evicted first. *)

val register_media : t -> call -> Dsim.Addr.t -> unit
(** Binds a media address to the call for RTP routing. *)

val call_for_media : t -> Dsim.Addr.t -> call option

val known_media : t -> Dsim.Addr.t -> bool

val flood_detector : t -> key:string -> Efsm.System.t * Efsm.Machine.t
(** Per-destination INVITE flood machine (created on first use). *)

val spam_detector : t -> key:string -> Efsm.System.t * Efsm.Machine.t

val drdos_detector : t -> key:string -> Efsm.System.t * Efsm.Machine.t

val occupancy : t -> int
(** Active calls plus detectors — the engine's degradation signal. *)

val delete_call : t -> call -> unit
(** Releases the call's timers and removes it from the base and the media
    index.  Idempotent. *)

val quarantine_call : t -> call -> unit
(** Removes a call whose machine faulted so the fault cannot recur; the
    engine raises the matching [Engine_fault] alert. *)

val quarantine_detector : t -> detector_kind -> key:string -> unit
(** Same, for a standalone detector. *)

val maybe_finish : t -> call -> unit
(** If both machines reached their final states, marks the call closing and
    schedules its deletion after the configured linger. *)

val sweep : t -> max_age:Dsim.Time.t -> int
(** Forcibly deletes calls older than [max_age]; returns how many.  Covers
    abandoned setups that never reach a final state. *)

val sweep_detectors : t -> max_age:Dsim.Time.t -> int
(** Deletes detectors whose last lookup is older than [max_age]; returns
    how many.  Detector keys are attacker-controlled (streams, victims),
    so idle records must age out or the base grows without bound under key
    churn.  The scheduled sweep runs this alongside {!sweep}. *)

val schedule_sweep : t -> unit
(** Starts the periodic ageing sweep on the base's timer host, driven by
    [sweep_interval] and [call_max_age]; a no-op when either is zero. *)

(** {1 Checkpoint support}

    These accessors exist for {!Snapshot}: they expose the base's full
    mutable state for capture and rebuild it verbatim on restore, without
    the counter bumps, eviction checks or pressure callbacks of the normal
    creation paths. *)

val calls_in_creation_order : t -> call list
(** Live calls, oldest first — the canonical serialization order (and the
    eviction order, so restoring in this order preserves both). *)

val detectors_in_creation_order :
  t ->
  (detector_kind * string * Efsm.System.t * Efsm.Machine.t * Dsim.Time.t * Dsim.Time.t) list
(** Kind, key, system, machine, created-at, last-touched. *)

val restore_call : t -> call_id:string -> created_at:Dsim.Time.t -> call
(** Rebuilds an empty call record (machines in their initial states) under
    the given identity.  Raises [Invalid_argument] on a duplicate. *)

val restore_detector :
  t ->
  detector_kind ->
  key:string ->
  created_at:Dsim.Time.t ->
  touched:Dsim.Time.t ->
  Efsm.System.t * Efsm.Machine.t

val arm_delete_at : t -> call -> Dsim.Time.t -> unit
(** Marks the call closing and schedules its deletion at the absolute time
    (immediately if already past). *)

val arm_recheck_at : t -> call -> Dsim.Time.t -> unit
(** Re-arms the single finish re-check at the absolute time. *)

val next_sweep_at : t -> Dsim.Time.t option
(** When the next scheduled ageing sweep is due, if armed. *)

val set_next_sweep : t -> Dsim.Time.t option -> unit
(** Cancels any armed sweep and, when given a time (and sweeping is
    enabled by the config), re-arms the periodic sweep to first fire
    then. *)

val set_counters :
  t ->
  peak:int ->
  created:int ->
  deleted:int ->
  calls_evicted:int ->
  detectors_evicted:int ->
  swept:int ->
  detectors_swept:int ->
  unit

val kind_label : detector_kind -> string

val kind_of_label : string -> detector_kind option

(** {1 Statistics} *)

type stats = {
  active_calls : int;
  peak_calls : int;
  calls_created : int;
  calls_deleted : int;  (** All removals: lifecycle, sweep, eviction, quarantine. *)
  calls_evicted : int;  (** Subset of deletions forced by the [max_calls] cap. *)
  detectors_evicted : int;
  calls_swept : int;  (** Call deletions by the scheduled ageing sweep. *)
  detectors_swept : int;  (** Idle detectors reclaimed by the ageing sweep. *)
  detectors : int;
  modeled_bytes : int;  (** Paper's per-call memory model. *)
  measured_bytes : int;  (** Actual local-variable footprint. *)
}

val stats : t -> stats
