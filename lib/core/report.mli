(** Human-readable summaries of an engine's findings, for the CLI and for
    operators (the "notifies administrators for further analysis" output of
    paper §5). *)

val alerts : Format.formatter -> Engine.t -> unit
(** The distinct alert log, grouped by kind, oldest first within a kind. *)

val summary : Format.formatter -> Engine.t -> unit
(** Traffic counters, alert totals by severity, fact-base occupancy and
    modeled memory; when present, degraded intervals and crash/recovery
    downtime intervals with the packets missed during each outage. *)

val full : Format.formatter -> Engine.t -> unit
(** [summary] followed by [alerts]. *)

val json : Engine.t -> string
(** The full report as one JSON object: counters, memory/governance stats,
    degraded and downtime intervals, an [attacks_detected] flag
    ({!Alert.is_attack}), and the distinct alert log — the [--json] output
    of [detect]/[analyze]. *)

val to_string : (Format.formatter -> Engine.t -> unit) -> Engine.t -> string
