(** The vIDS Analysis Engine (paper Figure 3).

    Glues the pipeline together: Packet Classifier → Event Distributor →
    per-call communicating machines and standalone detectors in the Call
    State Fact Base → alerts.  Also carries the inline deployment cost
    model (§7.2–§7.4): per-packet forwarding latency and CPU busy time.

    The engine is its own last line of defense: every machine injection and
    timer callback runs inside a containment boundary (a faulting call or
    detector is quarantined, counted, and reported as an [Engine_fault]
    alert, never unwinding the packet loop), and when state occupancy
    crosses the configured high-water mark the engine degrades gracefully —
    stream-level RTP analysis is shed first while SIP signaling checks stay
    live. *)

type counters = {
  sip_packets : int;
  rtp_packets : int;
  rtcp_packets : int;
  other_packets : int;
  malformed_packets : int;
  orphan_requests : int;  (** Non-INVITE requests with no call record. *)
  orphan_responses : int;
  alerts_raised : int;  (** Distinct alerts after de-duplication. *)
  alerts_suppressed : int;  (** Duplicates of an already-raised alert. *)
  anomalies : int;
  faults : int;
      (** Exceptions contained at a boundary (machine, timer, listener,
          packet pipeline). *)
  rtp_shed : int;  (** RTP packets whose stream-level analysis was shed while degraded. *)
}

type t

val create : ?config:Config.t -> Dsim.Scheduler.t -> t

val config : t -> Config.t

val process_packet : t -> Dsim.Packet.t -> unit
(** The tap entry point: classify, distribute, analyze. *)

val tap : t -> Dsim.Packet.t -> unit
(** Alias of {!process_packet} shaped for [Dsim.Network.set_tap]. *)

val transit_delay : t -> Dsim.Packet.t -> Dsim.Time.t
(** Inline forwarding latency for this packet per the cost model; shaped
    for [Dsim.Network.set_transit_delay]. *)

val alerts : t -> Alert.t list
(** Distinct alerts, oldest first. *)

val alerts_of_kind : t -> Alert.kind -> Alert.t list

val counters : t -> counters

val cpu_busy : t -> Dsim.Time.t
(** Accumulated modeled CPU time spent analyzing packets. *)

val fact_base : t -> Fact_base.t

val memory_stats : t -> Fact_base.stats

val degraded : t -> bool
(** Whether stream-level RTP analysis is currently shed. *)

val degraded_intervals : t -> (Dsim.Time.t * Dsim.Time.t option) list
(** Degraded periods, oldest first; [None] marks a still-open interval. *)

val on_alert : t -> (Alert.t -> unit) -> unit
(** Registers an additional listener for distinct alerts. *)
