(** The vIDS Analysis Engine (paper Figure 3).

    Glues the pipeline together: Packet Classifier → Event Distributor →
    per-call communicating machines and standalone detectors in the Call
    State Fact Base → alerts.  Also carries the inline deployment cost
    model (§7.2–§7.4): per-packet forwarding latency and CPU busy time.

    The engine is its own last line of defense: every machine injection and
    timer callback runs inside a containment boundary (a faulting call or
    detector is quarantined, counted, and reported as an [Engine_fault]
    alert, never unwinding the packet loop), and when state occupancy
    crosses the configured high-water mark the engine degrades gracefully —
    stream-level RTP analysis is shed first while SIP signaling checks stay
    live. *)

type counters = {
  sip_packets : int;
  rtp_packets : int;
  rtcp_packets : int;
  other_packets : int;
  malformed_packets : int;
  orphan_requests : int;  (** Non-INVITE requests with no call record. *)
  orphan_responses : int;
  alerts_raised : int;  (** Distinct alerts after de-duplication. *)
  alerts_suppressed : int;  (** Duplicates of an already-raised alert. *)
  anomalies : int;
  faults : int;
      (** Exceptions contained at a boundary (machine, timer, listener,
          packet pipeline). *)
  rtp_shed : int;  (** RTP packets whose stream-level analysis was shed while degraded. *)
  backpressure_stalls : int;
      (** Times a producer blocked feeding this engine's bounded input queue
          (sharded deployment).  Stalled packets are delivered late, never
          dropped; a growing count means this shard is the bottleneck. *)
}

type global_event =
  | Invite_flood_candidate of string
      (** An INVITE toward this [user\@host] request-URI — the input stream
          of the INVITE-flood detector (paper Figure 4). *)
  | Drdos_candidate of string
      (** An orphan SIP response toward this victim host — the input stream
          of the DRDoS reflection detector. *)

type t

val create :
  ?config:Config.t -> ?overrides:(string * Efsm.Machine.spec) list -> Dsim.Scheduler.t -> t
(** [overrides] replaces builtin machine specs by name (e.g. ["SIP"])
    with [.vspec]-loaded ones; see {!Spec_load.load_files}. *)

val config : t -> Config.t

val process_packet : t -> Dsim.Packet.t -> unit
(** The tap entry point: classify, distribute, analyze. *)

val tap : t -> Dsim.Packet.t -> unit
(** Alias of {!process_packet} shaped for [Dsim.Network.set_tap]. *)

val transit_delay : t -> Dsim.Packet.t -> Dsim.Time.t
(** Inline forwarding latency for this packet per the cost model; shaped
    for [Dsim.Network.set_transit_delay]. *)

val alerts : t -> Alert.t list
(** Distinct alerts, oldest first. *)

val alerts_of_kind : t -> Alert.kind -> Alert.t list

val counters : t -> counters

val cpu_busy : t -> Dsim.Time.t
(** Accumulated modeled CPU time spent analyzing packets. *)

val fact_base : t -> Fact_base.t

val memory_stats : t -> Fact_base.stats

val degraded : t -> bool
(** Whether stream-level RTP analysis is currently shed. *)

val degraded_intervals : t -> (Dsim.Time.t * Dsim.Time.t option) list
(** Degraded periods, oldest first; [None] marks a still-open interval. *)

val on_alert : t -> (Alert.t -> unit) -> unit
(** Registers an additional listener for distinct alerts. *)

val on_eviction : t -> (at:Dsim.Time.t -> subject:string -> detail:string -> unit) -> unit
(** Registers a listener for every resource reclamation (cap evictions,
    ageing sweeps).  Unlike {!on_alert}, which deduplicates, this fires per
    event — it feeds the write-ahead journal. *)

val set_global_listener : t -> (at:Dsim.Time.t -> global_event -> unit) option -> unit
(** Observer for the input events of the cross-call detectors (INVITE flood,
    DRDoS).  Fires for every candidate event regardless of configuration;
    with [Config.defer_global_detectors] set the engine {e only} emits these
    events and skips its own local detector machines, leaving the threshold
    decision to an external aggregator (the shard coordinator).  Listener
    exceptions are contained and counted as faults. *)

val add_backpressure_stalls : t -> int -> unit
(** Credits producer-side queue stalls to this engine's counters (the stall
    happens outside the engine, in the feed queue). *)

(** {1 Telemetry}

    Optional, attached after creation so every existing construction site
    (testbed, snapshot restore, supervisor, shard workers) keeps its
    signature.  Strictly observational: instrumentation never feeds back
    into analysis, so [Snapshot.digest] and the alert log are identical
    with telemetry on or off. *)

val set_telemetry : t -> ?metrics:Obs.Metrics.t -> ?flight:Obs.Trace.t -> unit -> unit
(** Attaches a metrics registry and/or flight recorder.  The registry's
    clock is re-pointed at this engine's virtual clock; instrument handles
    are resolved once here so the per-packet cost is a field load and an
    integer bump.  Passing neither detaches telemetry.

    Metrics exported (all prefixed [vids_]): [packets_total{class}],
    [injects_total{target}], [alerts_total{kind}],
    [alerts_suppressed_total], [anomalies_total], [faults_total],
    [evictions_total], [rtp_shed_total], [fact_base_occupancy] (gauge) and
    [fact_base_occupancy_hist] (per-packet histogram).

    The flight recorder sees every pipeline step (packet classified, event
    dispatched, attack-state transition, alert, quarantine, eviction) and
    auto-dumps its tail — via {!Obs.Trace.on_dump} sinks — whenever a
    faulting call or detector is quarantined. *)

val metrics_registry : t -> Obs.Metrics.t option

val flight_recorder : t -> Obs.Trace.t option

val set_profiler : t -> Obs.Prof.t option -> unit
(** Attaches (or with [None] detaches) a hot-path profiler
    ({!Obs.Prof}).  Like telemetry, profiling is strictly write-only —
    digests and alerts are identical with it on or off — and the disabled
    path costs one branch per span site.  With a profiler attached the
    engine wraps wire parsing in [Sip_parse]/[Sdp_parse]/[Rtp_parse]
    spans, per-call machine injections in [Efsm_dispatch] and standalone
    detector injections in [Detect]; the profiler's registry clock and
    sampled-span timestamps are re-pointed at this engine's virtual
    clock. *)

val profiler : t -> Obs.Prof.t option

(** {1 Crash safety}

    Hooks for the checkpoint/recovery subsystem ({!Snapshot}, {!Journal},
    {!Recovery}).  The contract is deterministic convergence: restoring a
    snapshot, merging the journal suffix, and replaying the trace suffix
    recorded after the snapshot's timestamp yields the same engine state as
    a run that never crashed. *)

val merge_journal_alert : t -> Alert.t -> unit
(** Adds an alert recovered from the write-ahead journal to the log.  The
    alert's dedup key is marked pending rather than seen: the first
    re-raise during replay "claims" it (no duplicate log entry, no
    suppressed count, no listener notification — it was already delivered
    before the crash), keeping replay exactly-once. *)

val record_downtime : t -> start:Dsim.Time.t -> stop:Dsim.Time.t -> missed:int -> unit
(** Records a crash/recovery outage: packets in [start, stop) were not
    analyzed.  Persisted across further checkpoints and surfaced by
    [Report.summary]. *)

val downtime_intervals : t -> (Dsim.Time.t * Dsim.Time.t * int) list
(** Recorded outages, oldest first, with packets missed during each. *)

(** Engine-internal mutable state as plain data, for {!Snapshot} only. *)
module Persist : sig
  type dump = {
    p_counters : counters;
    p_injects : int;  (** Chaos self-test injection count, for determinism. *)
    p_busy : Dsim.Time.t;
    p_inline_free_at : Dsim.Time.t;
    p_degraded_since : Dsim.Time.t option;
    p_degraded_log : (Dsim.Time.t * Dsim.Time.t) list;  (** Oldest first. *)
    p_alerts : Alert.t list;  (** Oldest first. *)
    p_downtime : (Dsim.Time.t * Dsim.Time.t * int) list;  (** Oldest first. *)
  }

  val dump : t -> dump

  val restore : t -> dump -> unit
  (** Overwrites counters, cost-model state, degradation history, the alert
      log and the dedup set ([alerts_raised] is derived and ignored). *)
end
