module M = Efsm.Machine
module I = Efsm.Ir
module Env = Efsm.Env
module V = Efsm.Value

let st_init = "INIT"
let st_open = "RTP_OPEN"
let st_active = "RTP_RCVD"
let st_after_bye = "RTP_RCVD_AFTER_BYE"
let st_closed = "RTP_CLOSED"
let st_bye_dos = "BYE_DOS_ATTACK"
let st_billing_fraud = "BILLING_FRAUD_ATTACK"
let bye_timer_id = "bye_inflight_T"

let l_bye_claimed = "l_bye_claimed_host"
let l_bye_src_matched = "l_bye_src_matched"
let l_inflight = "l_inflight_count"

let lv n = (Env.Local, n)

let vars : I.decl list =
  [
    (lv l_bye_claimed, I.D_str);
    (lv l_bye_src_matched, I.D_bool);
    (lv l_inflight, I.D_int);
  ]

let on_bye config =
  [
    I.Assign (lv l_bye_claimed, I.Field Keys.bye_sender_ip);
    I.Assign (lv l_bye_src_matched, I.Field "src_matched");
    I.Assign (lv l_inflight, I.Const (V.Int 0));
    I.Set_timer { id = bye_timer_id; delay = config.Config.bye_inflight_timer };
  ]

(* After timer T: does a straggler packet come from the participant the BYE
   claimed to be, and was that BYE's source genuine? *)
let from_claimed_and_matched =
  I.And
    [
      I.Eq (I.Field Keys.src_ip, I.Var (lv l_bye_claimed));
      I.Eq (I.Var (lv l_bye_src_matched), I.Const (V.Bool true));
    ]

let tr = M.ir_transition

let spec (config : Config.t) =
  let transitions =
    [
      tr ~label:"open" ~from_state:st_init (M.On_sync Keys.delta_media_offer) ~to_state:st_open
        ();
      tr ~label:"answer" ~from_state:st_open (M.On_sync Keys.delta_media_answer)
        ~to_state:st_open ();
      tr ~label:"first_rtp" ~from_state:st_open (M.On_event Keys.rtp_packet) ~to_state:st_active
        ();
      tr ~label:"rtp" ~from_state:st_active (M.On_event Keys.rtp_packet) ~to_state:st_active ();
      tr ~label:"answer_active" ~from_state:st_active (M.On_sync Keys.delta_media_answer)
        ~to_state:st_active ();
      (* --- δ BYE: start the in-flight grace timer (Figure 5) --- *)
      tr ~label:"bye_active" ~from_state:st_active (M.On_sync Keys.delta_bye)
        ~to_state:st_after_bye ~acts:(on_bye config) ();
      tr ~label:"bye_open" ~from_state:st_open (M.On_sync Keys.delta_bye)
        ~to_state:st_after_bye ~acts:(on_bye config) ();
      tr ~label:"bye_init" ~from_state:st_init (M.On_sync Keys.delta_bye) ~to_state:st_closed ();
      tr ~label:"inflight" ~from_state:st_after_bye (M.On_event Keys.rtp_packet)
        ~to_state:st_after_bye
        ~acts:
          [
            I.Assign
              ( lv l_inflight,
                I.Of_int (I.Add (I.Int_or0 (I.Var (lv l_inflight)), I.Int_const 1)) );
          ]
        ();
      tr ~label:"bye_retrans" ~from_state:st_after_bye (M.On_sync Keys.delta_bye)
        ~to_state:st_after_bye ();
      tr ~label:"grace_over" ~from_state:st_after_bye (M.On_timer bye_timer_id)
        ~to_state:st_closed ();
      (* --- Media after close: the paper's BYE DoS signature, split by the
         BYE source check into fraud vs spoofed-BYE DoS --- *)
      tr ~label:"billing_fraud" ~from_state:st_closed (M.On_event Keys.rtp_packet)
        ~to_state:st_billing_fraud ~guard:from_claimed_and_matched ();
      tr ~label:"bye_dos" ~from_state:st_closed (M.On_event Keys.rtp_packet)
        ~to_state:st_bye_dos
        ~guard:(I.Not from_claimed_and_matched)
        ();
      tr ~label:"closed_bye" ~from_state:st_closed (M.On_sync Keys.delta_bye)
        ~to_state:st_closed ();
      tr ~label:"bye_dos_more" ~from_state:st_bye_dos (M.On_event Keys.rtp_packet)
        ~to_state:st_bye_dos ();
      tr ~label:"fraud_more" ~from_state:st_billing_fraud (M.On_event Keys.rtp_packet)
        ~to_state:st_billing_fraud ();
    ]
  in
  {
    M.spec_name = Keys.rtp_machine;
    initial = st_init;
    finals = [ st_closed ];
    attack_states =
      [
        (st_bye_dos, "RTP continued after a spoofed BYE (BYE DoS)");
        (st_billing_fraud, "RTP continued from the party that sent BYE (billing fraud)");
      ];
    transitions;
  }
