(** Loading external [.vspec] machine definitions into the engine.

    Bridges the {!Spec} front end to the builtin machine set: supplies
    the extern registry (the opaque escape hatches some builtins need),
    the known sync-target machine names, and the builtin specs in
    [.vspec]-printable form for [vids-cli lint --emit]. *)

val known_machines : string list
(** Machine names the engine instantiates — valid [sync] targets and the
    only names an override may use. *)

val externs : Config.t -> Spec.Elaborate.externs
(** [extern is_spam] / [extern advance_baseline], backed by the
    media-spam machine's wraparound arithmetic under [config]. *)

val builtins : Config.t -> (string * (Efsm.Machine.spec * Efsm.Ir.decl list)) list
(** CLI-facing key (e.g. ["media-spam"]) to builtin spec and declared
    variable domains. *)

val builtin_for : Config.t -> string -> (Efsm.Machine.spec * Efsm.Ir.decl list) option
(** Accepts either the CLI key ["media-spam"] or the machine name
    ["MEDIA_SPAM"]. *)

val load_files :
  Config.t -> string list -> ((string * Efsm.Machine.spec) list, string) result
(** Loads override machines for [--spec].  Every loaded machine must
    name a member of {!known_machines} (the engine only instantiates
    those); front-end or verifier errors render into the [Error]
    message with caret snippets. *)
