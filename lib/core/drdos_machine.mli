(** Distributed reflection DoS detector (threat model §3.1; our extension —
    the paper names the attack but gives no pattern for it).

    One instance per protected destination.  SIP responses that match no
    known call (orphan responses) are the reflection signature: a victim
    whose address was spoofed in requests to many proxies receives floods
    of responses it never solicited.  Occasional orphans are normal (the
    initial request may have been lost before the sensor), so only a burst
    beyond the threshold within the window raises the alert. *)

val spec : Config.t -> Efsm.Machine.spec

val vars : Efsm.Ir.decl list
(** Declared variable domains, consumed by the static verifier. *)

val st_init : string

val st_counting : string

val st_attack : string

val window_timer_id : string

val machine_name : string

val orphan_response : string
(** Event name fed by the engine for responses without a call record. *)
