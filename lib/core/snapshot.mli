(** Versioned, checksummed snapshots of the full engine state.

    A snapshot is the checkpoint half of the crash-safety story: it captures
    every piece of engine state an uninterrupted run depends on — per-call
    EFSM systems (current states, variable vectors, queued synchronization
    events, armed timers with absolute deadlines), standalone detector
    machines, fact-base counters and eviction order, engine counters, the
    cost model, the alert log and dedup set, and degradation/downtime
    history.

    The on-disk format is a line-oriented text file with a version header
    ([VIDS-SNAPSHOT 1 <seq> <at_us>]) and an [END <crc32> <length>] trailer.
    {!of_string} is total: truncation, bit corruption and version skew are
    reported as [Error] with a diagnostic, never as an exception or a
    partially applied state.

    Serialization is canonical — records in creation order, bindings sorted —
    so two engines that analyzed the same traffic produce byte-identical
    snapshots.  {!digest} exploits this to measure post-recovery divergence,
    which must be zero. *)

type t

val capture : ?seq:int -> ?ext:(string * string) list -> at:Dsim.Time.t -> Engine.t -> t
(** Photographs the engine at virtual time [at] (pass the scheduler's
    current time).  [seq] is the checkpoint sequence number used to pair the
    snapshot with its journal marker; defaults to 0.  [ext] carries opaque
    (tag, payload) records for subsystems layered on top of the engine
    (e.g. enforcement state): they are serialized after the engine's own
    records, covered by the CRC, and surfaced by {!ext} — the engine never
    interprets them. *)

val seq : t -> int

val at : t -> Dsim.Time.t
(** Virtual time of capture; recovery replays trace records strictly after
    this instant. *)

val ext : t -> (string * string) list
(** Extension records in serialization order; [[]] for snapshots taken
    without any. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Total parse with header, CRC and length verification. *)

val restore :
  ?config:Config.t ->
  ?before_timers:(Dsim.Scheduler.t -> Engine.t -> unit) ->
  t ->
  (Dsim.Scheduler.t * Engine.t, string) result
(** Rebuilds a live engine on a fresh scheduler advanced to the snapshot's
    time.  [before_timers] runs after all state is rebuilt but before any
    restored timer is re-armed: recovery uses it to schedule the trace
    replay suffix so that, at equal virtual times, packets still fire before
    timers exactly as in an uninterrupted run (where all packets are
    scheduled up front).  Internal inconsistencies (unknown machine or
    state names — possible only if the file was hand-edited yet still
    checksums) come back as [Error]. *)

val save : path:string -> t -> unit
(** Atomic durable write: the temp file is fsynced {e before} the rename
    (so a power loss cannot publish a zero-length or torn snapshot), the
    containing directory after it (so the rename itself survives).  An
    existing snapshot at [path] is rotated to [path ^ ".1"] first, so a
    crash torn mid-write always leaves one intact predecessor. *)

val previous_path : string -> string
(** Where {!save} rotates the prior snapshot: [path ^ ".1"]. *)

val load : string -> (t, string) result

val digest : at:Dsim.Time.t -> Engine.t -> string
(** Canonical serialization with the sequence number zeroed and downtime
    history (legitimate recovery metadata) excluded: two engines are in
    equivalent states iff their digests are equal. *)
