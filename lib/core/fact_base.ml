type call = {
  call_id : string;
  key : int; (* interned Call-ID id; all secondary structures use this *)
  serial : int; (* unique per record: disambiguates a recycled [key] *)
  system : Efsm.System.t;
  sip : Efsm.Machine.t;
  rtp : Efsm.Machine.t;
  created_at : Dsim.Time.t;
  mutable media_addrs : Dsim.Addr.t list;
  mutable closing : bool;
  mutable finish_pending : bool;
  (* Absolute deadlines of the lifecycle timers, recorded so a checkpoint
     can re-arm them at the same virtual time after a restore. *)
  mutable delete_at : Dsim.Time.t option;
  mutable recheck_at : Dsim.Time.t option;
}

type detector = {
  d_system : Efsm.System.t;
  d_machine : Efsm.Machine.t;
  d_created : Dsim.Time.t;
  d_serial : int;
  (* Last lookup time: detectors are keyed by attacker-controlled values
     (media streams, victim addresses), so an idle record is reclaimed by
     the ageing sweep just like an abandoned call.  Persisted in snapshots
     so a recovered engine sweeps at the same virtual times. *)
  mutable d_touched : Dsim.Time.t;
}

type detector_kind = [ `Flood | `Spam | `Drdos ]

type t = {
  config : Config.t;
  (* [.vspec]-loaded replacements for builtin machine specs, keyed by
     machine name (e.g. "SIP"); builtins are the fallback. *)
  overrides : (string * Efsm.Machine.spec) list;
  timer_host : Efsm.System.timer_host;
  on_alert : machine:string -> state:string -> subject:string -> detail:string -> unit;
  on_anomaly :
    machine:string ->
    state:string ->
    subject:string ->
    event:Efsm.Event.t ->
    detail:string ->
    unit;
  on_pressure : subject:string -> detail:string -> unit;
  (* Call-ID strings are interned to dense ints ({!Intern}): the string is
     hashed once per lookup — with the same FNV hash the shard partitioner
     uses — and the call table, media index and eviction queue all key on
     the cheap int instead of rehashing the string. *)
  ids : Intern.t;
  calls : (int, call) Hashtbl.t;
  media_index : (string, int) Hashtbl.t; (* media addr -> interned call id *)
  floods : (string, detector) Hashtbl.t;
  spams : (string, detector) Hashtbl.t;
  drdoses : (string, detector) Hashtbl.t;
  (* Creation-order queues back oldest-first eviction in O(1) amortized:
     entries are validated lazily against the live tables, so a record
     deleted through the normal lifecycle just leaves a stale entry to be
     skipped.  The per-record serial disambiguates a key recycled after
     deletion; amortized compaction keeps the queues proportional to the
     live record count under sustained churn. *)
  call_order : (int * int) Queue.t; (* key, serial *)
  detector_order : (detector_kind * string * int) Queue.t; (* kind, key, serial *)
  mutable next_serial : int;
  mutable peak : int;
  mutable created : int;
  mutable deleted : int;
  mutable calls_evicted : int;
  mutable detectors_evicted : int;
  mutable swept : int;
  mutable dswept : int;
  mutable sweep_timer : Dsim.Scheduler.timer option;
  mutable sweep_next : Dsim.Time.t option;
}

let create ?(on_pressure = fun ~subject:_ ~detail:_ -> ()) ?(overrides = []) ~config
    ~timer_host ~on_alert ~on_anomaly () =
  {
    config;
    overrides;
    timer_host;
    on_alert;
    on_anomaly;
    on_pressure;
    ids = Intern.create ();
    calls = Hashtbl.create 256;
    media_index = Hashtbl.create 256;
    floods = Hashtbl.create 64;
    spams = Hashtbl.create 256;
    drdoses = Hashtbl.create 64;
    call_order = Queue.create ();
    detector_order = Queue.create ();
    next_serial = 0;
    peak = 0;
    created = 0;
    deleted = 0;
    calls_evicted = 0;
    detectors_evicted = 0;
    swept = 0;
    dswept = 0;
    sweep_timer = None;
    sweep_next = None;
  }

(* Builtin specs are built per record (they close over config), so the
   override lookup keys on the spec name the builtin would have had. *)
let resolve_spec t (spec : Efsm.Machine.spec) =
  match List.assoc_opt spec.Efsm.Machine.spec_name t.overrides with
  | Some replacement -> replacement
  | None -> spec

let find_call t call_id =
  match Intern.find t.ids call_id with
  | None -> None
  | Some key -> Hashtbl.find_opt t.calls key

let system_callbacks t ~subject =
  let on_alert (n : Efsm.System.notification) =
    t.on_alert ~machine:n.Efsm.System.machine ~state:n.Efsm.System.state ~subject
      ~detail:n.Efsm.System.detail
  in
  let on_anomaly (n : Efsm.System.notification) =
    t.on_anomaly ~machine:n.Efsm.System.machine ~state:n.Efsm.System.state ~subject
      ~event:n.Efsm.System.event ~detail:n.Efsm.System.detail
  in
  (on_alert, on_anomaly)

let media_key addr = Dsim.Addr.to_string addr

let fresh_serial t =
  let s = t.next_serial in
  t.next_serial <- s + 1;
  s

(* Stale queue entries are skipped lazily, but under sustained churn the
   skip debt itself is a leak: rebuild the queue once it outgrows twice the
   live population (amortized O(1) per deletion). *)
let compact_call_order t =
  if Queue.length t.call_order > (2 * Hashtbl.length t.calls) + 64 then begin
    let keep = Queue.create () in
    Queue.iter
      (fun ((key, serial) as entry) ->
        match Hashtbl.find_opt t.calls key with
        | Some call when call.serial = serial -> Queue.add entry keep
        | Some _ | None -> ())
      t.call_order;
    Queue.clear t.call_order;
    Queue.transfer keep t.call_order
  end

let delete_call t call =
  match Hashtbl.find_opt t.calls call.key with
  | Some live when live == call ->
      Efsm.System.release call.system;
      List.iter
        (fun addr ->
          match Hashtbl.find_opt t.media_index (media_key addr) with
          | Some k when k = call.key -> Hashtbl.remove t.media_index (media_key addr)
          | Some _ | None -> ())
        call.media_addrs;
      Hashtbl.remove t.calls call.key;
      t.deleted <- t.deleted + 1;
      (* Recycle the interned Call-ID: without this, every distinct id ever
         seen pins a string + table entry forever — the live-word creep the
         soak bench observed under call churn. *)
      Intern.release t.ids call.key;
      compact_call_order t
  | Some _ | None -> () (* already deleted, or the key was recycled *)

(* Drop the oldest live call; stale queue entries (normal deletions,
   Call-ID reuse) are skipped. *)
let rec evict_oldest_call t =
  match Queue.take_opt t.call_order with
  | None -> ()
  | Some (key, serial) -> (
      match Hashtbl.find_opt t.calls key with
      | Some call when call.serial = serial ->
          delete_call t call;
          t.calls_evicted <- t.calls_evicted + 1;
          (* Constant subject: the engine dedups alerts by kind|subject, so
             a sustained flood logs one alert while counters carry the
             totals — the alert log must not grow with the attack. *)
          t.on_pressure ~subject:"fact-base/calls"
            ~detail:
              (Printf.sprintf "call %s evicted: %d-call cap reached" call.call_id
                 t.config.Config.max_calls)
      | Some _ | None -> evict_oldest_call t)

let create_call t ~call_id =
  let key = Intern.intern t.ids call_id in
  match Hashtbl.find_opt t.calls key with
  | Some call ->
      (* Attacker-controlled input must never raise: a duplicate Call-ID
         resumes the existing record. *)
      call
  | None ->
      let cap = t.config.Config.max_calls in
      if cap > 0 && Hashtbl.length t.calls >= cap then evict_oldest_call t;
      let on_alert, on_anomaly = system_callbacks t ~subject:call_id in
      let system = Efsm.System.create ~on_alert ~on_anomaly t.timer_host in
      let sip = Efsm.System.add_machine system (resolve_spec t (Sip_call_machine.spec t.config)) in
      let rtp = Efsm.System.add_machine system (resolve_spec t (Rtp_call_machine.spec t.config)) in
      let call =
        {
          call_id;
          key;
          serial = fresh_serial t;
          system;
          sip;
          rtp;
          created_at = t.timer_host.Efsm.System.now ();
          media_addrs = [];
          closing = false;
          finish_pending = false;
          delete_at = None;
          recheck_at = None;
        }
      in
      Hashtbl.replace t.calls key call;
      Queue.add (key, call.serial) t.call_order;
      t.created <- t.created + 1;
      let active = Hashtbl.length t.calls in
      if active > t.peak then t.peak <- active;
      call

let register_media t call addr =
  if not (List.exists (Dsim.Addr.equal addr) call.media_addrs) then begin
    call.media_addrs <- addr :: call.media_addrs;
    Hashtbl.replace t.media_index (media_key addr) call.key
  end

let call_for_media t addr =
  match Hashtbl.find_opt t.media_index (media_key addr) with
  | None -> None
  | Some key -> Hashtbl.find_opt t.calls key

let known_media t addr = Hashtbl.mem t.media_index (media_key addr)

let detector_table t = function
  | `Flood -> t.floods
  | `Spam -> t.spams
  | `Drdos -> t.drdoses

let detector_count t =
  Hashtbl.length t.floods + Hashtbl.length t.spams + Hashtbl.length t.drdoses

let occupancy t = Hashtbl.length t.calls + detector_count t

let kind_label = function `Flood -> "flood" | `Spam -> "spam" | `Drdos -> "drdos"

let compact_detector_order t =
  if Queue.length t.detector_order > (2 * detector_count t) + 64 then begin
    let keep = Queue.create () in
    Queue.iter
      (fun ((kind, key, serial) as entry) ->
        match Hashtbl.find_opt (detector_table t kind) key with
        | Some d when d.d_serial = serial -> Queue.add entry keep
        | Some _ | None -> ())
      t.detector_order;
    Queue.clear t.detector_order;
    Queue.transfer keep t.detector_order
  end

let remove_detector t kind ~key =
  let table = detector_table t kind in
  match Hashtbl.find_opt table key with
  | None -> false
  | Some d ->
      Efsm.System.release d.d_system;
      Hashtbl.remove table key;
      compact_detector_order t;
      true

let rec evict_oldest_detector t =
  match Queue.take_opt t.detector_order with
  | None -> ()
  | Some (kind, key, serial) -> (
      match Hashtbl.find_opt (detector_table t kind) key with
      | Some d when d.d_serial = serial ->
          ignore (remove_detector t kind ~key);
          t.detectors_evicted <- t.detectors_evicted + 1;
          t.on_pressure ~subject:"fact-base/detectors"
            ~detail:
              (Printf.sprintf "detector %s evicted: %d-detector cap reached"
                 (kind_label kind ^ ":" ^ key)
                 t.config.Config.max_detectors)
      | Some _ | None -> evict_oldest_detector t)

let detector kind t ~key ~make_spec ~subject_prefix =
  let table = detector_table t kind in
  match Hashtbl.find_opt table key with
  | Some d ->
      d.d_touched <- t.timer_host.Efsm.System.now ();
      (d.d_system, d.d_machine)
  | None ->
      let cap = t.config.Config.max_detectors in
      if cap > 0 && detector_count t >= cap then evict_oldest_detector t;
      let subject = subject_prefix ^ key in
      let on_alert, on_anomaly = system_callbacks t ~subject in
      let d_system = Efsm.System.create ~on_alert ~on_anomaly t.timer_host in
      let d_machine = Efsm.System.add_machine d_system (resolve_spec t (make_spec t.config)) in
      let d_created = t.timer_host.Efsm.System.now () in
      let d_serial = fresh_serial t in
      Hashtbl.replace table key { d_system; d_machine; d_created; d_serial; d_touched = d_created };
      Queue.add (kind, key, d_serial) t.detector_order;
      (d_system, d_machine)

let flood_detector t ~key =
  detector `Flood t ~key ~make_spec:Invite_flood_machine.spec ~subject_prefix:"dst:"

let spam_detector t ~key =
  detector `Spam t ~key ~make_spec:Media_spam_machine.spec ~subject_prefix:"stream:"

let drdos_detector t ~key =
  detector `Drdos t ~key ~make_spec:Drdos_machine.spec ~subject_prefix:"victim:"

(* --------------------------------------------------------------- *)
(* Fault quarantine                                                 *)
(* --------------------------------------------------------------- *)

let quarantine_call t call = delete_call t call
let quarantine_detector t kind ~key = ignore (remove_detector t kind ~key)

let rtp_done call =
  Efsm.Machine.is_final call.rtp
  || String.equal (Efsm.Machine.state call.rtp) Rtp_call_machine.st_init

(* Lifecycle timers are armed against an absolute deadline that is also
   recorded on the call, so a checkpoint can re-arm them at the same
   virtual time after a restore. *)
let delay_until t at =
  let now = t.timer_host.Efsm.System.now () in
  if Dsim.Time.( > ) at now then Dsim.Time.sub at now else Dsim.Time.zero

let arm_delete_at t call at =
  call.closing <- true;
  call.delete_at <- Some at;
  ignore (t.timer_host.Efsm.System.set (delay_until t at) (fun () -> delete_call t call))

let schedule_delete t call =
  arm_delete_at t call
    (Dsim.Time.add (t.timer_host.Efsm.System.now ()) t.config.Config.closed_call_linger)

let arm_recheck_at t call at =
  call.finish_pending <- true;
  call.recheck_at <- Some at;
  ignore
    (t.timer_host.Efsm.System.set (delay_until t at) (fun () ->
         call.recheck_at <- None;
         if (not call.closing) && Efsm.Machine.is_final call.sip && rtp_done call then
           schedule_delete t call))

let maybe_finish t call =
  if (not call.closing) && Efsm.Machine.is_final call.sip then
    if rtp_done call then schedule_delete t call
    else if not call.finish_pending then
      (* The RTP machine is waiting out the in-flight grace timer; no
         further packet may arrive to re-trigger this check, so look once
         more after the grace period.  A single re-check only: a machine
         parked in an attack state never becomes final, and re-polling
         forever would keep an otherwise-drained scheduler alive — such
         records are left for [sweep]. *)
      arm_recheck_at t call
        (Dsim.Time.add
           (t.timer_host.Efsm.System.now ())
           (Dsim.Time.add t.config.Config.bye_inflight_timer (Dsim.Time.of_ms 50.0)))

let sweep t ~max_age =
  let now = t.timer_host.Efsm.System.now () in
  let stale =
    Hashtbl.fold
      (fun _ call acc ->
        if Dsim.Time.( > ) (Dsim.Time.sub now call.created_at) max_age then call :: acc else acc)
      t.calls []
  in
  List.iter (delete_call t) stale;
  List.length stale

(* Detectors have no final state and no lifecycle deletion: without ageing,
   every distinct media stream or victim address ever seen keeps a record
   (and its machine history) forever — unbounded growth under key churn.
   A detector untouched for [max_age] has produced any alert it ever will
   for that traffic; reclaim it and let a fresh instance be built if the
   key recurs. *)
let sweep_detectors t ~max_age =
  let now = t.timer_host.Efsm.System.now () in
  let stale =
    List.concat_map
      (fun kind ->
        Hashtbl.fold
          (fun key d acc ->
            if Dsim.Time.( > ) (Dsim.Time.sub now d.d_touched) max_age then (kind, key) :: acc
            else acc)
          (detector_table t kind) [])
      [ `Flood; `Spam; `Drdos ]
  in
  List.iter (fun (kind, key) -> ignore (remove_detector t kind ~key)) stale;
  List.length stale

let arm_sweep t ~delay =
  let interval = t.config.Config.sweep_interval in
  let max_age = t.config.Config.call_max_age in
  let rec arm delay =
    t.sweep_next <- Some (Dsim.Time.add (t.timer_host.Efsm.System.now ()) delay);
    t.sweep_timer <- Some (t.timer_host.Efsm.System.set delay tick)
  and tick () =
    let reclaimed = sweep t ~max_age in
    let d_reclaimed = sweep_detectors t ~max_age in
    if reclaimed + d_reclaimed > 0 then begin
      t.swept <- t.swept + reclaimed;
      t.dswept <- t.dswept + d_reclaimed;
      t.on_pressure ~subject:"sweep"
        ~detail:
          (Printf.sprintf
             "scheduled sweep reclaimed %d call(s) and %d idle detector(s) older than %.0f s"
             reclaimed d_reclaimed (Dsim.Time.to_sec max_age))
    end;
    arm interval
  in
  arm delay

let sweep_enabled t =
  Dsim.Time.( > ) t.config.Config.sweep_interval Dsim.Time.zero
  && Dsim.Time.( > ) t.config.Config.call_max_age Dsim.Time.zero

let schedule_sweep t = if sweep_enabled t then arm_sweep t ~delay:t.config.Config.sweep_interval

let next_sweep_at t = t.sweep_next

let set_next_sweep t at =
  (match t.sweep_timer with
  | Some handle ->
      t.timer_host.Efsm.System.cancel handle;
      t.sweep_timer <- None;
      t.sweep_next <- None
  | None -> ());
  match at with
  | None -> ()
  | Some at ->
      if sweep_enabled t then
        arm_sweep t
          ~delay:
            (let now = t.timer_host.Efsm.System.now () in
             if Dsim.Time.( > ) at now then Dsim.Time.sub at now else Dsim.Time.zero)

(* --------------------------------------------------------------- *)
(* Checkpoint support                                               *)
(* --------------------------------------------------------------- *)

let kind_of_label = function
  | "flood" -> Some `Flood
  | "spam" -> Some `Spam
  | "drdos" -> Some `Drdos
  | _ -> None

(* Live records in creation order, straight from the eviction queues
   (stale entries skipped).  Creation order is deterministic for a given
   packet stream, which keeps snapshots canonical: two engines that
   processed the same traffic serialize identically. *)
let calls_in_creation_order t =
  Queue.fold
    (fun acc (key, serial) ->
      match Hashtbl.find_opt t.calls key with
      | Some call when call.serial = serial -> call :: acc
      | Some _ | None -> acc)
    [] t.call_order
  |> List.rev

let detectors_in_creation_order t =
  Queue.fold
    (fun acc (kind, key, serial) ->
      match Hashtbl.find_opt (detector_table t kind) key with
      | Some d when d.d_serial = serial ->
          (kind, key, d.d_system, d.d_machine, d.d_created, d.d_touched) :: acc
      | Some _ | None -> acc)
    [] t.detector_order
  |> List.rev

(* Rebuild a record from a snapshot: fresh machines wired to the usual
   callbacks, but no counter bumps and no eviction — aggregate counters are
   restored separately and a snapshot never exceeds the caps it was taken
   under. *)
let restore_call t ~call_id ~created_at =
  let key = Intern.intern t.ids call_id in
  if Hashtbl.mem t.calls key then
    invalid_arg (Printf.sprintf "Fact_base.restore_call: duplicate call %S" call_id);
  let on_alert, on_anomaly = system_callbacks t ~subject:call_id in
  let system = Efsm.System.create ~on_alert ~on_anomaly t.timer_host in
  let sip = Efsm.System.add_machine system (resolve_spec t (Sip_call_machine.spec t.config)) in
  let rtp = Efsm.System.add_machine system (resolve_spec t (Rtp_call_machine.spec t.config)) in
  let call =
    {
      call_id;
      key;
      serial = fresh_serial t;
      system;
      sip;
      rtp;
      created_at;
      media_addrs = [];
      closing = false;
      finish_pending = false;
      delete_at = None;
      recheck_at = None;
    }
  in
  Hashtbl.replace t.calls key call;
  Queue.add (key, call.serial) t.call_order;
  call

let restore_detector t kind ~key ~created_at ~touched =
  let table = detector_table t kind in
  if Hashtbl.mem table key then
    invalid_arg
      (Printf.sprintf "Fact_base.restore_detector: duplicate %s detector %S" (kind_label kind) key);
  let make_spec, subject_prefix =
    match kind with
    | `Flood -> (Invite_flood_machine.spec, "dst:")
    | `Spam -> (Media_spam_machine.spec, "stream:")
    | `Drdos -> (Drdos_machine.spec, "victim:")
  in
  let on_alert, on_anomaly = system_callbacks t ~subject:(subject_prefix ^ key) in
  let d_system = Efsm.System.create ~on_alert ~on_anomaly t.timer_host in
  let d_machine = Efsm.System.add_machine d_system (resolve_spec t (make_spec t.config)) in
  let d_serial = fresh_serial t in
  Hashtbl.replace table key
    { d_system; d_machine; d_created = created_at; d_serial; d_touched = touched };
  Queue.add (kind, key, d_serial) t.detector_order;
  (d_system, d_machine)

let set_counters t ~peak ~created ~deleted ~calls_evicted ~detectors_evicted ~swept
    ~detectors_swept =
  t.peak <- peak;
  t.created <- created;
  t.deleted <- deleted;
  t.calls_evicted <- calls_evicted;
  t.detectors_evicted <- detectors_evicted;
  t.swept <- swept;
  t.dswept <- detectors_swept

type stats = {
  active_calls : int;
  peak_calls : int;
  calls_created : int;
  calls_deleted : int;
  calls_evicted : int;
  detectors_evicted : int;
  calls_swept : int;
  detectors_swept : int;
  detectors : int;
  modeled_bytes : int;
  measured_bytes : int;
}

let stats t =
  let active = Hashtbl.length t.calls in
  let per_call = t.config.Config.sip_state_bytes + t.config.Config.rtp_state_bytes in
  let measured =
    Hashtbl.fold (fun _ call acc -> acc + Efsm.System.estimated_bytes call.system) t.calls 0
  in
  {
    active_calls = active;
    peak_calls = t.peak;
    calls_created = t.created;
    calls_deleted = t.deleted;
    calls_evicted = t.calls_evicted;
    detectors_evicted = t.detectors_evicted;
    calls_swept = t.swept;
    detectors_swept = t.dswept;
    detectors = detector_count t;
    modeled_bytes = active * per_call;
    measured_bytes = measured;
  }
