(** Wire helpers shared by the snapshot and journal codecs.

    All decoders are total: a torn or corrupted input line comes back as
    [Error], never an exception, because these formats are read during
    crash recovery when anything may be half-written. *)

val hex : string -> string

val unhex : string -> (string, string) result

val crc32 : string -> int
(** IEEE CRC-32 of the bytes, as a non-negative int. *)

val crc32_hex : string -> string
(** Zero-padded 8-digit lowercase hex. *)

val int_tok : string -> (int, string) result

val time_tok : string -> (Dsim.Time.t, string) result

val opt_time_tok : string -> (Dsim.Time.t option, string) result
(** ["-"] denotes [None]. *)

val opt_time_str : Dsim.Time.t option -> string

val take : string list -> (string * string list, string) result
(** Pops the next token or fails on a truncated record. *)

val event_to_tokens : Efsm.Event.t -> string list
(** Self-delimiting: an explicit argument count precedes the key/value
    pairs, so the encoding can be embedded in a longer token list. *)

val event_of_tokens : string list -> (Efsm.Event.t * string list, string) result
(** Returns the decoded event and the unconsumed tail. *)

val alert_to_tokens : Alert.t -> string list

val alert_of_tokens : string list -> (Alert.t, string) result
