(* FNV-1a, 64-bit folded into OCaml's 63-bit int.  Chosen over Hashtbl.hash
   because it reads every byte (Call-IDs from an attacker may share long
   prefixes) and because the shard partitioner needs a hash that is stable
   across domains and runs. *)
let hash s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Int64.to_int !h land max_int

module Keyed = struct
  type t = string

  let equal = String.equal
  let hash = hash
end

module Table = Hashtbl.Make (Keyed)

type t = {
  ids : int Table.t;
  mutable names : string array; (* id -> string; released slots hold "" *)
  mutable next : int; (* high-water mark: ids in [0, next) have been handed out *)
  mutable free : int list; (* released ids awaiting reuse *)
  mutable live : int;
}

let create ?(size = 256) () =
  { ids = Table.create size; names = Array.make (max 1 size) ""; next = 0; free = []; live = 0 }

let intern t s =
  match Table.find_opt t.ids s with
  | Some id -> id
  | None ->
      let id =
        match t.free with
        | id :: rest ->
            t.free <- rest;
            id
        | [] ->
            let id = t.next in
            if id = Array.length t.names then begin
              let grown = Array.make (2 * Array.length t.names) "" in
              Array.blit t.names 0 grown 0 id;
              t.names <- grown
            end;
            t.next <- id + 1;
            id
      in
      t.names.(id) <- s;
      Table.replace t.ids s id;
      t.live <- t.live + 1;
      id

let find t s = Table.find_opt t.ids s

let name t id =
  if id < 0 || id >= t.next then invalid_arg (Printf.sprintf "Intern.name: unknown id %d" id);
  t.names.(id)

let release t id =
  if id >= 0 && id < t.next then begin
    let s = t.names.(id) in
    match Table.find_opt t.ids s with
    | Some id' when id' = id ->
        Table.remove t.ids s;
        t.names.(id) <- "";
        t.free <- id :: t.free;
        t.live <- t.live - 1
    | Some _ | None -> () (* already released *)
  end

let count t = t.live
