(** Media spamming and RTP flooding detector (paper Figure 6).

    One instance per media stream destination (host:port).  The first RTP
    packet baselines the stream's SSRC, sequence number and timestamp; each
    later packet must advance them within the configured gaps Δn and Δt —
    larger jumps, foreign SSRCs or deep reordering indicate injected media.
    A per-window packet counter catches RTP flooding.  An idle window makes
    the machine dormant; on resumption the sequence baseline is re-learned
    but the SSRC binding is kept. *)

val spec : Config.t -> Efsm.Machine.spec

val vars : Efsm.Ir.decl list
(** Declared variable domains, consumed by the static verifier. *)

val st_init : string

val st_stream : string
(** The paper's (Packet_Rcvd) state. *)

val st_dormant : string

val st_spam : string

val st_flood : string

val window_timer_id : string

val machine_name : string

val is_spam_opaque : Config.t -> Efsm.Ir.opaque_pred
(** The wraparound spam predicate, exposed so externally loaded
    [.vspec] specs can reference it as [extern is_spam]. *)

val advance_opaque : Efsm.Machine.effect Efsm.Ir.opaque_act
(** The baseline-advance action, for [extern advance_baseline]. *)
