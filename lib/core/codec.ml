(* Shared wire helpers for the crash-safety subsystem: hex, CRC-32, and
   self-delimiting token codecs for events and alerts.  Every decoder is
   total — malformed input yields [Error], never an exception — because
   snapshots and journals are read back after crashes that may have torn
   them mid-write. *)

let hex = Efsm.Value.hex_of_string
let unhex = Efsm.Value.string_of_hex

(* --------------------------------------------------------------- *)
(* CRC-32 (IEEE 802.3, reflected)                                   *)
(* --------------------------------------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
  !c lxor 0xFFFFFFFF

let crc32_hex s = Printf.sprintf "%08x" (crc32 s)

(* --------------------------------------------------------------- *)
(* Token-list plumbing                                              *)
(* --------------------------------------------------------------- *)

let ( let* ) = Result.bind

let int_tok s = match int_of_string_opt s with Some n -> Ok n | None -> Error ("bad int " ^ s)
let time_tok s = Result.map Dsim.Time.of_us (int_tok s)

let opt_time_tok = function
  | "-" -> Ok None
  | s -> Result.map (fun t -> Some t) (time_tok s)

let opt_time_str = function None -> "-" | Some t -> string_of_int (Dsim.Time.to_us t)

let take = function [] -> Error "truncated record" | tok :: rest -> Ok (tok, rest)

(* --------------------------------------------------------------- *)
(* Events                                                           *)
(* --------------------------------------------------------------- *)

let channel_to_token = function
  | Efsm.Event.Data proto -> "D" ^ hex proto
  | Efsm.Event.Sync { from_machine } -> "S" ^ hex from_machine
  | Efsm.Event.Timer -> "T"

let channel_of_token tok =
  if String.length tok = 0 then Error "empty channel token"
  else
    let body = String.sub tok 1 (String.length tok - 1) in
    match tok.[0] with
    | 'D' -> Result.map (fun proto -> Efsm.Event.Data proto) (unhex body)
    | 'S' -> Result.map (fun from_machine -> Efsm.Event.Sync { from_machine }) (unhex body)
    | 'T' -> if body = "" then Ok Efsm.Event.Timer else Error "bad timer channel token"
    | _ -> Error "unknown channel token"

(* [<name-hex> <at_us> <chan> <argc> (<key-hex> <value>)*] — the explicit
   argument count makes the encoding self-delimiting inside a longer
   token list. *)
let event_to_tokens (e : Efsm.Event.t) =
  hex e.Efsm.Event.name
  :: string_of_int (Dsim.Time.to_us e.Efsm.Event.at)
  :: channel_to_token e.Efsm.Event.channel
  :: string_of_int (List.length e.Efsm.Event.args)
  :: List.concat_map
       (fun (k, v) -> [ hex k; Efsm.Value.to_token v ])
       e.Efsm.Event.args

let event_of_tokens tokens =
  let* name_hex, rest = take tokens in
  let* name = unhex name_hex in
  let* at_tok, rest = take rest in
  let* at = time_tok at_tok in
  let* chan_tok, rest = take rest in
  let* channel = channel_of_token chan_tok in
  let* argc_tok, rest = take rest in
  let* argc = int_tok argc_tok in
  if argc < 0 || argc > 1024 then Error "unreasonable event arg count"
  else
    let rec args acc n rest =
      if n = 0 then Ok (List.rev acc, rest)
      else
        let* k_hex, rest = take rest in
        let* k = unhex k_hex in
        let* v_tok, rest = take rest in
        let* v = Efsm.Value.of_token v_tok in
        args ((k, v) :: acc) (n - 1) rest
    in
    let* args, rest = args [] argc rest in
    Ok (Efsm.Event.make ~args channel ~at name, rest)

(* --------------------------------------------------------------- *)
(* Alerts                                                           *)
(* --------------------------------------------------------------- *)

let alert_to_tokens (a : Alert.t) =
  [
    string_of_int (Dsim.Time.to_us a.Alert.at);
    Alert.kind_to_string a.Alert.kind;
    Alert.severity_to_string a.Alert.severity;
    hex a.Alert.subject;
    hex a.Alert.detail;
  ]

let alert_of_tokens = function
  | [ at_tok; kind_tok; sev_tok; subject_hex; detail_hex ] -> (
      let* at = time_tok at_tok in
      let* subject = unhex subject_hex in
      let* detail = unhex detail_hex in
      match (Alert.kind_of_string kind_tok, Alert.severity_of_string sev_tok) with
      | Some kind, Some severity -> Ok (Alert.make ~kind ~severity ~at ~subject detail)
      | None, _ -> Error ("unknown alert kind " ^ kind_tok)
      | _, None -> Error ("unknown alert severity " ^ sev_tok))
  | _ -> Error "malformed alert record"
