(* Deterministic recovery: snapshot + journal suffix + trace replay.

   The convergence contract (proved by the property tests and measured by
   bench/recovery): restoring the latest valid snapshot, merging journal
   entries recorded after its checkpoint marker, and replaying the trace
   records timestamped strictly after it yields an engine whose canonical
   digest equals that of a run that never crashed.

   Ordering is the delicate part.  Journal alerts are merged first (their
   dedup keys go pending, so replay re-raising them stays exactly-once),
   then the replay suffix is scheduled, and only then are restored timers
   re-armed — packets scheduled before timers win same-instant ties, just
   as in an uninterrupted run where every packet is scheduled up front. *)

type outcome = {
  engine : Engine.t;
  sched : Dsim.Scheduler.t;
  snapshot_seq : int;
  snapshot_at : Dsim.Time.t;
  journal_alerts : int;
  journal_evictions : int;
  journal_exts : int;
  replayed : int;
}

let recover ?config ?prepare ?on_ext ?inject ?(journal = []) ?(trace = []) ?until snapshot =
  let snapshot_at = Snapshot.at snapshot in
  let snapshot_seq = Snapshot.seq snapshot in
  let suffix = Journal.suffix_after ~seq:snapshot_seq ~at:snapshot_at journal in
  let alerts = List.filter_map (function Journal.Alert a -> Some a | _ -> None) suffix in
  let evictions =
    List.length (List.filter (function Journal.Eviction _ -> true | _ -> false) suffix)
  in
  let exts =
    List.filter_map
      (function Journal.Ext { at; tag; payload } -> Some (at, tag, payload) | _ -> None)
      suffix
  in
  let packets =
    List.filter (fun (r : Trace.record) -> Dsim.Time.( > ) r.Trace.at snapshot_at) trace
  in
  let replayed = ref 0 in
  let before_timers sched engine =
    (* Caller hook first: a shard coordinator uses it to re-attach the
       global-event listener before any packet or journal entry lands; an
       enforcement layer uses it to rebuild its state from the snapshot's
       extension records. *)
    (match prepare with None -> () | Some f -> f sched engine);
    List.iter (Engine.merge_journal_alert engine) alerts;
    replayed := Trace.schedule_into ?inject sched engine packets;
    (* Journaled extension records recorded after the checkpoint, in
       append order: replayed alerts are claimed (exactly-once) and never
       re-notify listeners, so actions taken on them live must be restored
       from the journal, not re-derived.  Applied after the replay suffix
       is scheduled: an extension that re-arms a timer (e.g. a journaled
       call teardown) must lose same-instant ties to packets, exactly as
       live, where the packet that triggered the action was already
       executing when the timer was armed. *)
    (match on_ext with
    | None -> ()
    | Some f -> List.iter (fun (at, tag, payload) -> f ~at ~tag ~payload) exts)
  in
  match Snapshot.restore ?config ~before_timers snapshot with
  | Error e -> Error e
  | Ok (sched, engine) ->
      (match until with
      | Some limit -> Dsim.Scheduler.run_until sched limit
      | None -> Dsim.Scheduler.run sched);
      Ok
        {
          engine;
          sched;
          snapshot_seq;
          snapshot_at;
          journal_alerts = List.length alerts;
          journal_evictions = evictions;
          journal_exts = List.length exts;
          replayed = !replayed;
        }

(* --------------------------------------------------------------- *)
(* From files                                                       *)
(* --------------------------------------------------------------- *)

type file_report = {
  outcome : outcome;
  snapshot_path : string;  (** The snapshot actually used. *)
  used_fallback : bool;  (** True when the primary was rejected and [path.1] used. *)
  rejected : (string * string) list;  (** Snapshots rejected before one loaded, with reasons. *)
  journal_skipped : (int * string) list;
  trace_skipped : (int * string) list;
}

let load_with_fallback path =
  match Snapshot.load path with
  | Ok snap -> Ok (snap, path, false, [])
  | Error primary_err -> (
      let fallback = Snapshot.previous_path path in
      if not (Sys.file_exists fallback) then Error [ (path, primary_err) ]
      else
        match Snapshot.load fallback with
        | Ok snap -> Ok (snap, fallback, true, [ (path, primary_err) ])
        | Error fallback_err -> Error [ (path, primary_err); (fallback, fallback_err) ])

let recover_files ?config ?prepare ?on_snapshot ?on_ext ?inject ?journal_path ?trace_path ?until
    ~snapshot_path () =
  match load_with_fallback snapshot_path with
  | Error rejected ->
      Error
        (String.concat "; "
           (List.map (fun (p, e) -> Printf.sprintf "%s: %s" p e) rejected))
  | Ok (snapshot, used_path, used_fallback, rejected) -> (
      (match on_snapshot with None -> () | Some f -> f snapshot);
      let journal, journal_skipped =
        match journal_path with
        | None -> ([], [])
        | Some p when not (Sys.file_exists p) -> ([], [])
        | Some p -> (
            match Journal.load_lenient p with
            | Ok (entries, skipped) -> (entries, skipped)
            | Error _ -> ([], []))
      in
      let trace, trace_skipped =
        match trace_path with
        | None -> ([], [])
        | Some p -> (
            match open_in_bin p with
            | exception Sys_error _ -> ([], [])
            | ic ->
                let r = Trace.load_lenient ic in
                close_in ic;
                r)
      in
      match recover ?config ?prepare ?on_ext ?inject ~journal ~trace ?until snapshot with
      | Error e -> Error e
      | Ok outcome ->
          Ok
            {
              outcome;
              snapshot_path = used_path;
              used_fallback;
              rejected;
              journal_skipped;
              trace_skipped;
            })
