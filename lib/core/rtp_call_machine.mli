(** The per-call RTP protocol state machine (paper Figures 2a and 5).

    Opened by the SIP machine's δ media-offer message, it follows the media
    session and implements the cross-protocol BYE check: after a δ BYE it
    grants in-flight packets a grace timer T, then classifies any further
    media as a spoofed-BYE denial of service or as billing fraud, depending
    on whether the BYE's network source matched the participant it claimed
    to be. *)

val spec : Config.t -> Efsm.Machine.spec

val vars : Efsm.Ir.decl list
(** Declared variable domains, consumed by the static verifier. *)

val st_init : string

val st_open : string

val st_active : string

val st_after_bye : string

val st_closed : string

val st_bye_dos : string

val st_billing_fraud : string

val bye_timer_id : string
(** Timer id used for the in-flight grace period (the paper's timer T). *)
