type t = {
  invite_flood_window : Dsim.Time.t;
  invite_flood_threshold : int;
  bye_inflight_timer : Dsim.Time.t;
  spam_ts_gap : int;
  spam_seq_gap : int;
  spam_silence_ts_gap : int;
  spam_reorder_tolerance : int;
  rtp_flood_window : Dsim.Time.t;
  rtp_flood_threshold : int;
  drdos_window : Dsim.Time.t;
  drdos_threshold : int;
  sip_transit_delay : Dsim.Time.t;
  rtp_transit_delay : Dsim.Time.t;
  sip_cpu_cost : Dsim.Time.t;
  rtp_cpu_cost : Dsim.Time.t;
  sip_state_bytes : int;
  rtp_state_bytes : int;
  closed_call_linger : Dsim.Time.t;
  flag_boundary_register : bool;
  max_calls : int;
  max_detectors : int;
  call_max_age : Dsim.Time.t;
  sweep_interval : Dsim.Time.t;
  degrade_high_water : int;
  degrade_low_water : int;
  chaos_inject_every : int;
  defer_global_detectors : bool;
}

let default =
  {
    invite_flood_window = Dsim.Time.of_sec 1.0;
    invite_flood_threshold = 6;
    (* One round trip across the testbed (≈100 ms) plus margin. *)
    bye_inflight_timer = Dsim.Time.of_ms 250.0;
    (* G.729 advances 160 ticks per 20 ms packet; allow ~0.5 s of silence
       suppression before calling a jump a spam injection. *)
    spam_ts_gap = 4000;
    spam_seq_gap = 50;
    (* A consecutive-sequence packet may jump this far in timestamp: a
       silence-suppression gap (the paper's codec config enables SAD).
       60 s of media clock at 8 kHz. *)
    spam_silence_ts_gap = 480_000;
    spam_reorder_tolerance = 8;
    rtp_flood_window = Dsim.Time.of_sec 1.0;
    (* G.729 at 20 ms packetization is 50 pps; 3x headroom. *)
    rtp_flood_threshold = 150;
    drdos_window = Dsim.Time.of_sec 10.0;
    drdos_threshold = 30;
    (* Two SIP messages (INVITE, 180) cross the inline vIDS during call
       setup; 50 ms each reproduces the paper's ≈100 ms setup penalty. *)
    sip_transit_delay = Dsim.Time.of_ms 50.0;
    rtp_transit_delay = Dsim.Time.of_ms 1.5;
    (* CPU busy time per message on the (333 MHz Sun Ultra 10) vIDS host;
       calibrated so the Figure-7 workload lands near the paper's 3.6%
       overhead: ~426k RTP + ~1.2k SIP messages over 7200 s. *)
    sip_cpu_cost = Dsim.Time.of_ms 20.0;
    rtp_cpu_cost = Dsim.Time.of_us 550;
    sip_state_bytes = 450;
    rtp_state_bytes = 40;
    closed_call_linger = Dsim.Time.of_sec 32.0;
    (* Registrations normally stay inside the enterprise; one crossing the
       boundary sensor is worth an operator's attention. *)
    flag_boundary_register = true;
    max_calls = 0;
    max_detectors = 0;
    call_max_age = Dsim.Time.zero;
    sweep_interval = Dsim.Time.zero;
    degrade_high_water = 0;
    degrade_low_water = 0;
    chaos_inject_every = 0;
    defer_global_detectors = false;
  }

let passive t =
  { t with sip_transit_delay = Dsim.Time.zero; rtp_transit_delay = Dsim.Time.zero }

let governed t =
  {
    t with
    max_calls = 10_000;
    max_detectors = 10_000;
    (* An abandoned setup that has seen no progress for half an hour will
       never complete; §7.3's memory argument needs it reclaimed. *)
    call_max_age = Dsim.Time.of_sec 1800.0;
    sweep_interval = Dsim.Time.of_sec 60.0;
    degrade_high_water = 9_000;
    degrade_low_water = 8_000;
  }
