(** Deterministic crash recovery.

    Composes the crash-safety pieces: restore the latest valid
    {!Snapshot}, merge the {!Journal} suffix recorded after its checkpoint
    marker (exactly-once: replayed alerts claim their journaled twins), and
    replay the {!Trace} records timestamped strictly after the snapshot.
    The recovered engine's {!Snapshot.digest} equals that of a run that
    never crashed — the convergence property the test suite checks. *)

type outcome = {
  engine : Engine.t;
  sched : Dsim.Scheduler.t;
  snapshot_seq : int;
  snapshot_at : Dsim.Time.t;
  journal_alerts : int;  (** Journal alerts merged ahead of replay. *)
  journal_evictions : int;  (** Journaled reclamations in the suffix (informational). *)
  journal_exts : int;  (** Extension records handed to [on_ext]. *)
  replayed : int;  (** Trace records replayed after the snapshot instant. *)
}

val recover :
  ?config:Config.t ->
  ?prepare:(Dsim.Scheduler.t -> Engine.t -> unit) ->
  ?on_ext:(at:Dsim.Time.t -> tag:string -> payload:string -> unit) ->
  ?inject:(Dsim.Packet.t -> unit) ->
  ?journal:Journal.entry list ->
  ?trace:Trace.record list ->
  ?until:Dsim.Time.t ->
  Snapshot.t ->
  (outcome, string) result
(** Pure-data recovery.  [prepare] runs on the restored engine before the
    journal merge, the replay scheduling and the timer re-arm — the hook a
    shard coordinator uses to re-attach {!Engine.set_global_listener} so
    replayed packets feed the cross-shard aggregation again, and an
    enforcement layer uses to rebuild its tables from the snapshot's
    extension records.  [on_ext] receives every {!Journal.Ext} entry
    recorded after the checkpoint, in append order, once the replay
    suffix is scheduled (so a hook that re-arms a timer loses same-instant
    ties to packets, exactly as live): replayed alerts are claimed
    exactly-once and never re-notify listeners, so decisions taken on
    them live must be restored from the journal, not re-derived.
    [inject] replaces packet delivery during replay (see
    {!Trace.schedule_into}) so a gate that dropped packets live drops the
    same packets again.  [until] bounds the clock ([run_until]); omit it to
    drain the queue — but beware that configs with a periodic sweep re-arm
    it forever, so bound governed runs. *)

type file_report = {
  outcome : outcome;
  snapshot_path : string;  (** The snapshot actually used. *)
  used_fallback : bool;  (** True when the primary was rejected and [path.1] used. *)
  rejected : (string * string) list;
      (** Snapshots rejected before one loaded, with diagnostics. *)
  journal_skipped : (int * string) list;  (** Torn/corrupt journal lines skipped. *)
  trace_skipped : (int * string) list;  (** Malformed trace lines skipped. *)
}

val recover_files :
  ?config:Config.t ->
  ?prepare:(Dsim.Scheduler.t -> Engine.t -> unit) ->
  ?on_snapshot:(Snapshot.t -> unit) ->
  ?on_ext:(at:Dsim.Time.t -> tag:string -> payload:string -> unit) ->
  ?inject:(Dsim.Packet.t -> unit) ->
  ?journal_path:string ->
  ?trace_path:string ->
  ?until:Dsim.Time.t ->
  snapshot_path:string ->
  unit ->
  (file_report, string) result
(** File-level recovery with fault tolerance end to end: a corrupted or
    truncated primary snapshot falls back to the rotated
    [Snapshot.previous_path]; journal and trace files are loaded leniently
    (missing files are treated as empty).  [on_snapshot] sees the loaded
    snapshot (after fallback selection, before any restore) — the hook for
    reading its {!Snapshot.ext} records.  [Error] only when no snapshot
    at all can be validated. *)
