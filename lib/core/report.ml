let all_kinds = Alert.all_kinds

let alerts ppf engine =
  let all = Engine.alerts engine in
  if all = [] then Format.fprintf ppf "no alerts.@."
  else
    List.iter
      (fun kind ->
        match List.filter (fun a -> a.Alert.kind = kind) all with
        | [] -> ()
        | group ->
            Format.fprintf ppf "%a (%d):@." Alert.pp_kind kind (List.length group);
            List.iter (fun a -> Format.fprintf ppf "  %a@." Alert.pp a) group)
      all_kinds

let summary ppf engine =
  let c = Engine.counters engine in
  let stats = Engine.memory_stats engine in
  Format.fprintf ppf "traffic: %d SIP, %d RTP, %d RTCP, %d other, %d malformed@."
    c.Engine.sip_packets c.Engine.rtp_packets c.Engine.rtcp_packets c.Engine.other_packets
    c.Engine.malformed_packets;
  Format.fprintf ppf "orphans: %d requests, %d responses@." c.Engine.orphan_requests
    c.Engine.orphan_responses;
  let by_severity severity =
    List.length (List.filter (fun a -> a.Alert.severity = severity) (Engine.alerts engine))
  in
  Format.fprintf ppf "alerts: %d distinct (%d critical, %d warning), %d duplicates suppressed@."
    c.Engine.alerts_raised (by_severity Alert.Critical) (by_severity Alert.Warning)
    c.Engine.alerts_suppressed;
  Format.fprintf ppf "calls: %d active, %d created, %d deleted, peak %d@."
    stats.Fact_base.active_calls stats.Fact_base.calls_created stats.Fact_base.calls_deleted
    stats.Fact_base.peak_calls;
  Format.fprintf ppf "memory: %d B modeled (%d B/call), %d B measured; %d detectors@."
    stats.Fact_base.modeled_bytes
    ((Engine.config engine).Config.sip_state_bytes + (Engine.config engine).Config.rtp_state_bytes)
    stats.Fact_base.measured_bytes stats.Fact_base.detectors;
  if
    stats.Fact_base.calls_evicted + stats.Fact_base.detectors_evicted
    + stats.Fact_base.calls_swept
    > 0
  then
    Format.fprintf ppf "governance: %d calls evicted, %d detectors evicted, %d swept@."
      stats.Fact_base.calls_evicted stats.Fact_base.detectors_evicted stats.Fact_base.calls_swept;
  if c.Engine.faults > 0 then
    Format.fprintf ppf "faults contained: %d@." c.Engine.faults;
  if c.Engine.backpressure_stalls > 0 then
    Format.fprintf ppf "backpressure: %d producer stalls on the feed queue@."
      c.Engine.backpressure_stalls;
  (match Engine.degraded_intervals engine with
  | [] -> ()
  | intervals ->
      Format.fprintf ppf "degraded intervals (%d RTP packets shed):@." c.Engine.rtp_shed;
      List.iter
        (fun (start, stop) ->
          match stop with
          | Some stop -> Format.fprintf ppf "  %a .. %a@." Dsim.Time.pp start Dsim.Time.pp stop
          | None -> Format.fprintf ppf "  %a .. (still degraded)@." Dsim.Time.pp start)
        intervals);
  (match Engine.downtime_intervals engine with
  | [] -> ()
  | outages ->
      let total_missed = List.fold_left (fun acc (_, _, m) -> acc + m) 0 outages in
      let total_down =
        List.fold_left
          (fun acc (start, stop, _) -> Dsim.Time.add acc (Dsim.Time.sub stop start))
          Dsim.Time.zero outages
      in
      Format.fprintf ppf "downtime intervals (%a down, %d packets missed):@." Dsim.Time.pp
        total_down total_missed;
      List.iter
        (fun (start, stop, missed) ->
          Format.fprintf ppf "  %a .. %a (%d packets missed)@." Dsim.Time.pp start Dsim.Time.pp
            stop missed)
        outages);
  Format.fprintf ppf "analysis cpu: %a@." Dsim.Time.pp (Engine.cpu_busy engine)

(* Machine-readable twin of [full]: everything the text report shows, as
   one JSON object, for scripted post-processing of detect/analyze runs. *)
let json engine =
  let module J = Obs.Json in
  let c = Engine.counters engine in
  let stats = Engine.memory_stats engine in
  let counters =
    J.obj
      [
        ("sip_packets", J.int c.Engine.sip_packets);
        ("rtp_packets", J.int c.Engine.rtp_packets);
        ("rtcp_packets", J.int c.Engine.rtcp_packets);
        ("other_packets", J.int c.Engine.other_packets);
        ("malformed_packets", J.int c.Engine.malformed_packets);
        ("orphan_requests", J.int c.Engine.orphan_requests);
        ("orphan_responses", J.int c.Engine.orphan_responses);
        ("alerts_raised", J.int c.Engine.alerts_raised);
        ("alerts_suppressed", J.int c.Engine.alerts_suppressed);
        ("anomalies", J.int c.Engine.anomalies);
        ("faults", J.int c.Engine.faults);
        ("rtp_shed", J.int c.Engine.rtp_shed);
        ("backpressure_stalls", J.int c.Engine.backpressure_stalls);
      ]
  in
  let memory =
    J.obj
      [
        ("active_calls", J.int stats.Fact_base.active_calls);
        ("calls_created", J.int stats.Fact_base.calls_created);
        ("calls_deleted", J.int stats.Fact_base.calls_deleted);
        ("peak_calls", J.int stats.Fact_base.peak_calls);
        ("modeled_bytes", J.int stats.Fact_base.modeled_bytes);
        ("measured_bytes", J.int stats.Fact_base.measured_bytes);
        ("detectors", J.int stats.Fact_base.detectors);
        ("calls_evicted", J.int stats.Fact_base.calls_evicted);
        ("detectors_evicted", J.int stats.Fact_base.detectors_evicted);
        ("calls_swept", J.int stats.Fact_base.calls_swept);
        ("detectors_swept", J.int stats.Fact_base.detectors_swept);
      ]
  in
  let alert_json (a : Alert.t) =
    J.obj
      [
        ("kind", J.quote (Alert.kind_to_string a.Alert.kind));
        ("severity", J.quote (Alert.severity_to_string a.Alert.severity));
        ("at_us", J.int (Dsim.Time.to_us a.Alert.at));
        ("subject", J.quote a.Alert.subject);
        ("detail", J.quote a.Alert.detail);
      ]
  in
  let degraded =
    List.map
      (fun (start, stop) ->
        J.obj
          [
            ("start_us", J.int (Dsim.Time.to_us start));
            ("stop_us", match stop with Some s -> J.int (Dsim.Time.to_us s) | None -> "null");
          ])
      (Engine.degraded_intervals engine)
  in
  let downtime =
    List.map
      (fun (start, stop, missed) ->
        J.obj
          [
            ("start_us", J.int (Dsim.Time.to_us start));
            ("stop_us", J.int (Dsim.Time.to_us stop));
            ("packets_missed", J.int missed);
          ])
      (Engine.downtime_intervals engine)
  in
  let alerts = Engine.alerts engine in
  J.obj
    [
      ("counters", counters);
      ("memory", memory);
      ("cpu_busy_us", J.int (Dsim.Time.to_us (Engine.cpu_busy engine)));
      ("degraded", J.bool (Engine.degraded engine));
      ("degraded_intervals", J.arr degraded);
      ("downtime_intervals", J.arr downtime);
      ("attacks_detected", J.bool (List.exists (fun a -> Alert.is_attack a.Alert.kind) alerts));
      ("alerts", J.arr (List.map alert_json alerts));
    ]

let full ppf engine =
  summary ppf engine;
  Format.fprintf ppf "@.";
  alerts ppf engine

let to_string render engine = Format.asprintf "%a" render engine
