(** The per-call SIP protocol state machine, as observed by vIDS on the
    wire (paper §4.2 and Figure 2a).

    One instance tracks a single Call-ID through setup, establishment and
    teardown.  Its actions publish the negotiated media endpoints into the
    call's global variables and emit the δ synchronization messages that
    drive the companion {!Rtp_call_machine}.  Embedded attack states cover
    the signaling-visible patterns: CANCEL DoS from a third party and
    call hijacking via a foreign in-dialog INVITE. *)

val spec : Config.t -> Efsm.Machine.spec

val vars : Efsm.Ir.decl list
(** Declared variable domains, consumed by the static verifier. *)

(** State names, exposed for tests and documentation. *)

val st_init : string

val st_invite_rcvd : string

val st_proceeding : string

val st_established : string
(** 2xx seen, ACK pending. *)

val st_confirmed : string

val st_reinvite_pending : string

val st_teardown : string

val st_cancelling : string

val st_failed : string

val st_closed : string

val st_registering : string

val st_options_pending : string

val st_cancel_dos : string

val st_hijack : string
