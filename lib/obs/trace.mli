(** Pipeline flight recorder: a bounded ring buffer of structured events.

    Cheap enough to leave on in production — recording is one array store
    plus the event allocation, nothing is formatted until a dump — the
    ring holds the last [capacity] pipeline events (packet classified,
    event distributed to a machine, attack-state transition, alert,
    quarantine, eviction, checkpoint).  When something goes wrong — an
    [Engine_fault] quarantine, a supervisor restart — {!dump} snapshots
    the tail and hands it to every registered sink, turning "a fault was
    contained and counted" into a diagnosable artifact: the exact event
    sequence that led up to the fault.

    Events carry only plain strings, addresses and the virtual timestamp,
    so the recorder knows nothing about the engine's types and the
    engine's behaviour can never depend on what was recorded. *)

type event =
  | Packet of { proto : string; src : Dsim.Addr.t; dst : Dsim.Addr.t }
      (** Classifier verdict for one wire packet.  Addresses stay
          unrendered until a dump: recording must not pay for
          formatting. *)
  | Dispatch of { target : string; subject : string }
      (** The event distributor handing an event to a machine:
          [target] is [call]/[flood]/[spam]/[drdos], [subject] the
          Call-ID or detector key. *)
  | Transition of { machine : string; subject : string; state : string }
      (** A machine entering a named (attack or anomalous) state. *)
  | Alert of { kind : string; subject : string }
  | Quarantine of { subject : string; origin : string }
      (** A faulting call or detector being removed. *)
  | Eviction of { subject : string; detail : string }
      (** Resource governance reclaiming a record. *)
  | Checkpoint of { seq : int }
  | Ingest of { action : string; detail : string }
      (** A live-ingestion boundary event: overload shedding, a source
          quarantine, a socket backoff/reopen.  [action] is a short
          machine-stable tag ([shed-media], [quarantine], …). *)
  | Enforce of { action : string; subject : string }
      (** An enforcement decision: a rule installed or expired, a packet
          dropped or rate-limited, a forced call teardown.  [action] is a
          short machine-stable tag ([block], [rate-limit], [teardown],
          [expire], [lockdown], …). *)
  | Span of { stage : string; self_s : float; words : float }
      (** A sampled profiler span ({!Prof}): one completed stage span's
          self wall seconds and self minor words allocated.  Sampled, not
          exhaustive — the per-stage totals live in the metrics. *)
  | Note of { label : string; detail : string }
      (** Free-form marker (supervisor crashes/restarts, run phases). *)

type entry = {
  seq : int;  (** Monotone event number since creation (never wraps). *)
  at : Dsim.Time.t;
  ev : event;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 256 retained events; raises [Invalid_argument]
    when not positive. *)

val capacity : t -> int

val recorded : t -> int
(** Total events ever recorded (≥ the number retained). *)

val record : t -> at:Dsim.Time.t -> event -> unit

val entries : t -> entry list
(** The retained tail, oldest first. *)

val clear : t -> unit

val on_dump : t -> (reason:string -> entry list -> unit) -> unit
(** Registers a sink for {!dump}.  Sink exceptions are swallowed:
    observation must never unwind the pipeline being observed. *)

val dump : t -> reason:string -> entry list
(** Snapshots the retained tail, notifies every sink, and returns the
    entries (oldest first).  The ring is not cleared — overlapping dumps
    are fine. *)

val event_to_json : event -> string

val entry_to_json : entry -> string
(** One JSON object: [{"seq": …, "at_us": …, "event": …, …}]. *)

val pp_entry : Format.formatter -> entry -> unit
