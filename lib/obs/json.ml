let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float f = if Float.is_finite f then Printf.sprintf "%.17g" f else "null"

let int = string_of_int
let bool = string_of_bool

let obj fields =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> quote k ^ ": " ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat ", " items ^ "]"
