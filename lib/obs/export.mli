(** Machine-readable renderers for metrics snapshots and flight-recorder
    traces.

    Two formats, one snapshot type: Prometheus text exposition (for
    scraping / promtool) and JSONL (one self-describing object per row,
    for ad-hoc analysis with jq).  Rendering is pure string production;
    the [write_*] helpers add file plumbing and pick a format from the
    file extension. *)

val prometheus : Metrics.snapshot -> string
(** Prometheus text exposition format, version 0.0.4: [# HELP]/[# TYPE]
    headers per metric family, histograms expanded to cumulative
    [_bucket{le="…"}] series plus [_sum]/[_count], quantile estimates as
    [{quantile="0.5|0.95|0.99"}] gauge-style series under
    [<name>_quantile]. *)

val metrics_jsonl : Metrics.snapshot -> string
(** One JSON object per row, newline-terminated.  Histogram rows carry
    non-cumulative bucket counts, [sum], [count], and p50/p95/p99. *)

val metrics_json : Metrics.snapshot -> string
(** The whole snapshot as a single JSON object
    [{"at_us": …, "metrics": [row, …]}]. *)

val trace_jsonl : ?reason:string -> Trace.entry list -> string
(** One JSON object per entry, newline-terminated, oldest first.  When
    [reason] is given, a leading [{"type": "dump", "reason": …}] marker
    object precedes the entries, so several dumps can share one file and
    stay attributable. *)

val write_metrics : path:string -> Metrics.snapshot -> unit
(** Writes the snapshot to [path], truncating: JSONL when the extension
    is [.json] or [.jsonl], Prometheus text otherwise. *)

val append_trace : ?reason:string -> path:string -> Trace.entry list -> unit
(** Appends {!trace_jsonl} output to [path] (creating it if missing) —
    append, not truncate, because one run can dump several times. *)
