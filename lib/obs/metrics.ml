(* Instance-scoped metrics registry: counters, gauges, log-bucket
   histograms, mergeable snapshots.  See metrics.mli for the contract. *)

let bucket_bounds =
  (* Powers of two from 1e-6 to ~9e9: spans sub-microsecond durations (in
     seconds) through dimensionless counts in the billions, so one shared
     ladder keeps every histogram mergeable bucket-by-bucket. *)
  Array.init 54 (fun i -> 1e-6 *. Float.of_int (1 lsl i))

let n_buckets = Array.length bucket_bounds + 1 (* + overflow *)

(* First bound >= x, by binary search — observe is hot-path code. *)
let bucket_index x =
  let n = Array.length bucket_bounds in
  if x > bucket_bounds.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if x <= bucket_bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  hb : int array;
  mutable hcount : int;
  mutable hsum : float;
  hq : Dsim.Stat.Quantiles.t;
}

type instrument = C of counter | G of gauge | H of histogram

type registered = {
  r_name : string;
  r_help : string;
  r_labels : (string * string) list; (* sorted by label name *)
  r_inst : instrument;
}

type t = {
  mutable clock : unit -> Dsim.Time.t;
  table : (string, registered) Hashtbl.t; (* keyed by name + rendered labels *)
  mutable order : registered list; (* newest first; snapshot sorts anyway *)
}

let create ?(clock = fun () -> Dsim.Time.zero) () =
  { clock; table = Hashtbl.create 64; order = [] }

let set_clock t clock = t.clock <- clock

let render_labels labels =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let sort_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_label = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register t ~help ~labels name make match_inst =
  let labels = sort_labels labels in
  let key = name ^ "{" ^ render_labels labels ^ "}" in
  match Hashtbl.find_opt t.table key with
  | Some r -> (
      match match_inst r.r_inst with
      | Some i -> i
      | None ->
          invalid_arg
            (Printf.sprintf "Obs.Metrics: %s already registered as a %s" key
               (kind_label r.r_inst)))
  | None ->
      let inst, handle = make () in
      let r = { r_name = name; r_help = help; r_labels = labels; r_inst = inst } in
      Hashtbl.replace t.table key r;
      t.order <- r :: t.order;
      handle

let counter t ?(help = "") ?(labels = []) name =
  register t ~help ~labels name
    (fun () ->
      let c = { c = 0 } in
      (C c, c))
    (function C c -> Some c | G _ | H _ -> None)

let incr c = c.c <- c.c + 1
let add c n = if n > 0 then c.c <- c.c + n
let counter_value c = c.c

let gauge t ?(help = "") ?(labels = []) name =
  register t ~help ~labels name
    (fun () ->
      let g = { g = 0.0 } in
      (G g, g))
    (function G g -> Some g | C _ | H _ -> None)

let set g x = g.g <- x
let gauge_value g = g.g

let histogram t ?(help = "") ?(labels = []) name =
  register t ~help ~labels name
    (fun () ->
      let h =
        { hb = Array.make n_buckets 0; hcount = 0; hsum = 0.0; hq = Dsim.Stat.Quantiles.create () }
      in
      (H h, h))
    (function H h -> Some h | C _ | G _ -> None)

let observe h x =
  let i = bucket_index x in
  h.hb.(i) <- h.hb.(i) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. x;
  Dsim.Stat.Quantiles.add h.hq x

(* --------------------------------------------------------------- *)
(* Snapshots                                                        *)
(* --------------------------------------------------------------- *)

type hist_snap = {
  buckets : int array;
  count : int;
  sum : float;
  quantiles : Dsim.Stat.Quantiles.t;
}

type value = Counter of int | Gauge of float | Histogram of hist_snap

type row = { name : string; help : string; labels : (string * string) list; value : value }

type snapshot = { at : Dsim.Time.t; rows : row list }

let row_key r = r.name ^ "{" ^ render_labels r.labels ^ "}"

let row_order a b = String.compare (row_key a) (row_key b)

let snapshot t =
  let rows =
    List.rev_map
      (fun r ->
        let value =
          match r.r_inst with
          | C c -> Counter c.c
          | G g -> Gauge g.g
          | H h ->
              Histogram
                {
                  buckets = Array.copy h.hb;
                  count = h.hcount;
                  sum = h.hsum;
                  quantiles = Dsim.Stat.Quantiles.merge h.hq (Dsim.Stat.Quantiles.create ());
                  (* merge-with-empty: a private copy, so later observes
                     into the live histogram never mutate the snapshot *)
                }
          in
        { name = r.r_name; help = r.r_help; labels = r.r_labels; value })
      t.order
  in
  { at = t.clock (); rows = List.sort row_order rows }

let merge_values key a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (x +. y)
  | Histogram x, Histogram y ->
      Histogram
        {
          buckets = Array.init n_buckets (fun i -> x.buckets.(i) + y.buckets.(i));
          count = x.count + y.count;
          sum = x.sum +. y.sum;
          quantiles = Dsim.Stat.Quantiles.merge x.quantiles y.quantiles;
        }
  | _ -> invalid_arg (Printf.sprintf "Obs.Metrics.merge: %s has mismatched types" key)

let merge a b =
  let tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace tbl (row_key r) r) a.rows;
  let merged_b =
    List.filter_map
      (fun r ->
        let key = row_key r in
        match Hashtbl.find_opt tbl key with
        | None -> Some r
        | Some existing ->
            Hashtbl.replace tbl key
              { existing with value = merge_values key existing.value r.value };
            None)
      b.rows
  in
  let rows =
    List.map (fun r -> Hashtbl.find tbl (row_key r)) a.rows @ merged_b
  in
  { at = Dsim.Time.max a.at b.at; rows = List.sort row_order rows }

let find snap ?(labels = []) name =
  let labels = sort_labels labels in
  List.find_map
    (fun r -> if String.equal r.name name && r.labels = labels then Some r.value else None)
    snap.rows

let total snap name =
  List.fold_left
    (fun acc r ->
      match r.value with
      | Counter n when String.equal r.name name -> acc + n
      | Counter _ | Gauge _ | Histogram _ -> acc)
    0 snap.rows
