(** Minimal JSON emission helpers for the telemetry exporters.

    Emission only — the observability layer writes machine-readable files
    but never parses them back, so no decoder lives here.  Strings are
    escaped per RFC 8259 (quotes, backslash, control characters); floats
    render with enough digits to round-trip, and non-finite floats (which
    JSON cannot carry) render as [null]. *)

val quote : string -> string
(** ["…"] with JSON escaping applied. *)

val float : float -> string
(** Round-trippable float literal; [nan]/[inf] become [null]. *)

val int : int -> string

val bool : bool -> string

val obj : (string * string) list -> string
(** [{"k": v, …}] from already-rendered value strings. *)

val arr : string list -> string
(** [[v, …]] from already-rendered value strings. *)
