(** Instance-scoped registry of named, labeled metrics.

    The telemetry counterpart of the paper's §7 evaluation: every number
    the engine's hot paths produce — packet counts by class, machine
    injections, alert rates, fact-base occupancy, journal/checkpoint
    durations — registers here once and is sampled as a {!snapshot} for
    the exporters ({!Export}).

    Deterministic by construction: the registry itself never reads the
    wall clock.  Timestamps come from the {e virtual} clock the registry
    was created with, and histograms reduce through
    {!Dsim.Stat.Quantiles} (seeded reservoir) plus fixed log-scale
    buckets, so two identical runs export byte-identical files — except
    for explicitly wall-clock-valued observations (fsync and checkpoint
    durations), whose {e values} are inherently host-dependent.

    Snapshots are plain data and {e mergeable}: the shard coordinator
    folds per-worker registries with {!merge} exactly like it merges
    alert logs — counters and histogram buckets sum, gauges sum (every
    gauge here is an occupancy, for which the cross-shard total is the
    meaningful figure), quantile reservoirs merge.

    Registration is idempotent: asking for an existing (name, labels)
    pair returns the same handle, so instrument-attachment code can run
    unconditionally.  A name registered twice with different metric
    types raises [Invalid_argument]. *)

type t

val create : ?clock:(unit -> Dsim.Time.t) -> unit -> t
(** [clock] stamps snapshots with virtual time; defaults to a constant
    {!Dsim.Time.zero}. *)

val set_clock : t -> (unit -> Dsim.Time.t) -> unit

(** {1 Instruments} *)

type counter

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter

val incr : counter -> unit

val add : counter -> int -> unit
(** Negative increments are ignored — counters are monotone. *)

val counter_value : counter -> int

type gauge

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val set : gauge -> float -> unit

val gauge_value : gauge -> float

type histogram

val histogram : t -> ?help:string -> ?labels:(string * string) list -> string -> histogram
(** Fixed log-scale buckets (powers of two from 1e-6 up, plus overflow)
    shared by every histogram, so any two histogram snapshots merge
    bucket-by-bucket; a seeded {!Dsim.Stat.Quantiles} reservoir rides
    along for p50/p95/p99. *)

val observe : histogram -> float -> unit

val bucket_bounds : float array
(** The shared upper bounds, smallest first; the implicit last bucket is
    +infinity. *)

(** {1 Snapshots} *)

type hist_snap = {
  buckets : int array;  (** Per-bucket (non-cumulative) counts; length [Array.length bucket_bounds + 1], last = overflow. *)
  count : int;
  sum : float;
  quantiles : Dsim.Stat.Quantiles.t;
}

type value = Counter of int | Gauge of float | Histogram of hist_snap

type row = {
  name : string;
  help : string;
  labels : (string * string) list;  (** Sorted by label name. *)
  value : value;
}

type snapshot = { at : Dsim.Time.t; rows : row list (** Sorted by (name, labels). *) }

val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Counters and histograms sum, gauges sum, quantile reservoirs merge;
    rows present on one side only pass through.  [at] is the later of the
    two.  Raises [Invalid_argument] when the same (name, labels) row has
    different metric types on the two sides. *)

val find : snapshot -> ?labels:(string * string) list -> string -> value option

val total : snapshot -> string -> int
(** Sum of every [Counter] row with this name across all label sets; 0
    when absent.  The cross-shard invariant checks compare these. *)
