(* Exporters: Prometheus text exposition + JSONL.  See export.mli. *)

let prom_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels)
      ^ "}"

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" f

(* le="…" values must be identical across exports for series continuity;
   %.17g of the shared bucket bounds is stable. *)
let le_values =
  lazy (Array.map (fun b -> Printf.sprintf "%.17g" b) Metrics.bucket_bounds)

let prometheus (snap : Metrics.snapshot) =
  let buf = Buffer.create 4096 in
  let last_header = ref "" in
  let header name help typ =
    if !last_header <> name then begin
      last_header := name;
      if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ)
    end
  in
  List.iter
    (fun (r : Metrics.row) ->
      match r.value with
      | Metrics.Counter n ->
          header r.name r.help "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" r.name (prom_labels r.labels) n)
      | Metrics.Gauge g ->
          header r.name r.help "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" r.name (prom_labels r.labels) (prom_float g))
      | Metrics.Histogram h ->
          header r.name r.help "histogram";
          let les = Lazy.force le_values in
          let cum = ref 0 in
          Array.iteri
            (fun i le ->
              cum := !cum + h.Metrics.buckets.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" r.name
                   (prom_labels (r.labels @ [ ("le", le) ]))
                   !cum))
            les;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" r.name
               (prom_labels (r.labels @ [ ("le", "+Inf") ]))
               h.Metrics.count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" r.name (prom_labels r.labels)
               (prom_float h.Metrics.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" r.name (prom_labels r.labels)
               h.Metrics.count);
          if h.Metrics.count > 0 then
            List.iter
              (fun (q, p) ->
                Buffer.add_string buf
                  (Printf.sprintf "%s_quantile%s %s\n" r.name
                     (prom_labels (r.labels @ [ ("quantile", q) ]))
                     (prom_float (Dsim.Stat.Quantiles.quantile h.Metrics.quantiles p))))
              [ ("0.5", 50.0); ("0.95", 95.0); ("0.99", 99.0) ])
    snap.rows;
  Buffer.contents buf

let row_json (r : Metrics.row) =
  let labels = Json.obj (List.map (fun (k, v) -> (k, Json.quote v)) r.labels) in
  let base = [ ("name", Json.quote r.name); ("labels", labels) ] in
  let value =
    match r.value with
    | Metrics.Counter n -> [ ("type", Json.quote "counter"); ("value", Json.int n) ]
    | Metrics.Gauge g -> [ ("type", Json.quote "gauge"); ("value", Json.float g) ]
    | Metrics.Histogram h ->
        [ ("type", Json.quote "histogram");
          ("count", Json.int h.Metrics.count);
          ("sum", Json.float h.Metrics.sum);
          ("buckets", Json.arr (Array.to_list (Array.map Json.int h.Metrics.buckets)));
          ("p50", Json.float (Dsim.Stat.Quantiles.p50 h.Metrics.quantiles));
          ("p95", Json.float (Dsim.Stat.Quantiles.p95 h.Metrics.quantiles));
          ("p99", Json.float (Dsim.Stat.Quantiles.p99 h.Metrics.quantiles)) ]
  in
  Json.obj (base @ value)

let metrics_jsonl (snap : Metrics.snapshot) =
  String.concat "" (List.map (fun r -> row_json r ^ "\n") snap.rows)

let metrics_json (snap : Metrics.snapshot) =
  Json.obj
    [ ("at_us", Json.int (Dsim.Time.to_us snap.at));
      ("metrics", Json.arr (List.map row_json snap.rows)) ]

let trace_jsonl ?reason entries =
  let buf = Buffer.create 1024 in
  (match reason with
  | Some reason ->
      Buffer.add_string buf
        (Json.obj [ ("type", Json.quote "dump"); ("reason", Json.quote reason) ]);
      Buffer.add_char buf '\n'
  | None -> ());
  List.iter
    (fun e ->
      Buffer.add_string buf (Trace.entry_to_json e);
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let write_metrics ~path snap =
  let body =
    if has_suffix path ".json" || has_suffix path ".jsonl" then metrics_jsonl snap
    else prometheus snap
  in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc body)

let append_trace ?reason ~path entries =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (trace_jsonl ?reason entries))
