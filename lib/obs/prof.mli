(** Hot-path profiler: per-stage span timing and allocation attribution.

    The metrics of {!Metrics} count {e events}; this layer attributes
    {e wall time} and {e allocation} to the pipeline stages that produced
    them, so a perf regression (or the planned zero-copy parse / batched
    dispatch rewrite) has a measured before/after instead of a guess.

    A profiler owns a small fixed-depth span stack.  {!enter} pushes a
    stage frame recording the wall clock and the allocation counter;
    {!exit} pops it and accounts the frame's {e self} time and {e self}
    allocation — elapsed minus whatever nested child spans consumed — so
    per-stage totals are disjoint and sum to the outermost span's
    elapsed time.  That is what lets a driver wrap a whole run in a
    {!stage-Drive} span and report per-stage shares that add up to the
    measured end-to-end wall time.

    Everything lands in an ordinary {!Metrics} registry:

    - [vids_stage_seconds{stage}] — histogram of per-span self seconds on
      the shared log2 ladder, quantile reservoir riding along;
    - [vids_stage_alloc_words_total{stage}] — counter of self words
      allocated (minor-heap words; see the caveat below);
    - [vids_stage_spans_total{stage}] — counter of completed spans;
    - [vids_prof_mismatch_total] / [vids_prof_depth_overflow_total] —
      guard counters (a mismatched or over-deep span is counted and
      dropped, never an exception);
    - [vids_gc_*] gauges sampled by {!sample_gc}.

    Snapshots therefore merge across shards exactly like every other
    registry: the coordinator folds per-worker snapshots with
    {!Metrics.merge} and the per-stage histograms sum bucket-by-bucket.

    Determinism: wall times and allocation counts are host-dependent by
    nature (the same explicit exception the fsync/checkpoint histograms
    already carry); everything else — span counts, stage names, export
    shape — is deterministic.  Tests inject [clock]/[alloc] to pin the
    values themselves.

    Allocation attribution caveat: the cheap per-span counter is
    [Gc.minor_words], so blocks larger than the minor heap's
    [Max_young_wosize] (big strings, large arrays) that are allocated
    directly on the major heap are invisible to per-span deltas; they do
    show up in the [vids_gc_*] gauges.  Under OCaml 5 domains each worker
    profiles its own domain-local minor counter, so per-shard numbers are
    attributable and the merged totals sum them. *)

type stage =
  | Sip_parse  (** [Sip.Msg.parse] in the classifier. *)
  | Sdp_parse  (** [Sdp.parse] of a SIP body during event construction. *)
  | Rtp_parse  (** RTP/RTCP decode in the classifier. *)
  | Partition  (** Coordinator routing a record to its shard. *)
  | Ring_publish  (** Coordinator pushing into a shard's SPSC queue (includes backpressure stalls). *)
  | Ring_drain  (** Worker-side pop-to-dispatch turnaround. *)
  | Efsm_dispatch  (** Guard+action injection into per-call machines. *)
  | Detect  (** Standalone detector machines (flood, spam, DRDoS). *)
  | Enforce_gate  (** Prevention-mode verdict for one packet. *)
  | Journal_fsync  (** Durability fsync of the write-ahead journal. *)
  | Checkpoint  (** Snapshot capture + save + journal marker. *)
  | Ingest_poll  (** Daemon pulling datagrams from a source. *)
  | Drive  (** The driver loop itself: scheduling, clock bridging, glue. *)

val all_stages : stage list
(** Every stage, in declaration order. *)

val stage_name : stage -> string
(** The machine-stable label used in metric rows, reports and JSON
    ([sip-parse], [efsm-dispatch], …). *)

val stage_of_name : string -> stage option

type t

val create :
  ?registry:Metrics.t ->
  ?flight:Trace.t ->
  ?sample_every:int ->
  ?clock:(unit -> float) ->
  ?alloc:(unit -> float) ->
  ?vclock:(unit -> Dsim.Time.t) ->
  unit ->
  t
(** [registry] defaults to a fresh one (retrieve it with {!registry}); all
    instruments are pre-resolved here so {!enter}/{!exit} never touch the
    registry's tables.  [flight], when given, receives a sampled
    {!Trace.Span} event every [sample_every] completed spans (default
    1024; [<= 0] disables sampling).  [clock] defaults to
    [Unix.gettimeofday], [alloc] to [Gc.minor_words], [vclock] — the
    virtual timestamp put on sampled events — to a constant zero. *)

val registry : t -> Metrics.t

val set_vclock : t -> (unit -> Dsim.Time.t) -> unit
(** Re-points the virtual clock stamping sampled [Span] events (the
    engine does this when a profiler is attached). *)

val enter : t -> stage -> unit
(** Pushes a span.  Beyond the fixed stack depth the span is counted as
    an overflow and not measured; never raises. *)

val exit : t -> stage -> unit
(** Pops the current span and accounts its self time/allocation.  An
    [exit] with an empty stack or a stage different from the top frame's
    increments [vids_prof_mismatch_total] and accounts nothing. *)

val span : t -> stage -> (unit -> 'a) -> 'a
(** [span t s f] is [f ()] wrapped in {!enter}/{!exit}; the frame is
    popped even when [f] raises. *)

val depth : t -> int
(** Current nesting depth (0 when idle) — for tests and invariants. *)

val sample_gc : t -> unit
(** Samples [Gc.quick_stat] into gauges: [vids_gc_heap_words],
    [vids_gc_top_heap_words], [vids_gc_minor_collections],
    [vids_gc_major_collections], [vids_gc_compactions],
    [vids_gc_allocated_words].  Call at export/report instants, not per
    packet. *)

(** {1 Reports}

    Built from any {!Metrics.snapshot} — a live registry's, or the merged
    cross-shard snapshot — so the CLI, the bench and the coordinator all
    share one formatter. *)

type stage_report = {
  r_stage : string;
  r_spans : int;
  r_seconds : float;  (** Total self wall seconds. *)
  r_words : float;  (** Total self minor words allocated. *)
  r_p50_s : float;
  r_p95_s : float;
  r_p99_s : float;  (** Per-span self-seconds quantiles ([nan] when empty). *)
}

val report_of_snapshot : Metrics.snapshot -> stage_report list
(** One row per stage with at least one completed span, sorted by total
    self seconds, largest first. *)

val total_seconds : stage_report list -> float

val pp_table :
  ?records:int -> ?total_s:float -> Format.formatter -> stage_report list -> unit
(** The breakdown table: stage, spans, total self seconds, share of
    [total_s] (default: the rows' own sum), p50/p99 microseconds, and —
    with [records] — bytes allocated per record. *)

val report_json : ?records:int -> ?total_s:float -> stage_report list -> string
(** A JSON array of stage objects ranked by total self seconds, each with
    [stage], [spans], [self_s], [share], [alloc_words],
    [bytes_per_record] (with [records]) and quantiles. *)
