(* Bounded ring-buffer flight recorder.  See trace.mli for the contract. *)

type event =
  | Packet of { proto : string; src : Dsim.Addr.t; dst : Dsim.Addr.t }
  | Dispatch of { target : string; subject : string }
  | Transition of { machine : string; subject : string; state : string }
  | Alert of { kind : string; subject : string }
  | Quarantine of { subject : string; origin : string }
  | Eviction of { subject : string; detail : string }
  | Checkpoint of { seq : int }
  | Ingest of { action : string; detail : string }
  | Enforce of { action : string; subject : string }
  | Span of { stage : string; self_s : float; words : float }
  | Note of { label : string; detail : string }

type entry = { seq : int; at : Dsim.Time.t; ev : event }

(* Sentinel-filled array rather than [entry option]: recording is hot-path
   code, and the sentinel saves the [Some] cell per event. *)
let sentinel = { seq = -1; at = Dsim.Time.zero; ev = Note { label = ""; detail = "" } }

type t = {
  ring : entry array;
  mutable cursor : int; (* next slot to overwrite *)
  mutable next : int; (* total events recorded *)
  mutable sinks : (reason:string -> entry list -> unit) list;
}

let create ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Obs.Trace.create: capacity must be positive";
  { ring = Array.make capacity sentinel; cursor = 0; next = 0; sinks = [] }

let capacity t = Array.length t.ring
let recorded t = t.next

let record t ~at ev =
  t.ring.(t.cursor) <- { seq = t.next; at; ev };
  let c = t.cursor + 1 in
  t.cursor <- (if c = Array.length t.ring then 0 else c);
  t.next <- t.next + 1

let entries t =
  let cap = Array.length t.ring in
  let n = Stdlib.min t.next cap in
  let first = if t.next < cap then 0 else t.cursor in
  List.init n (fun i -> t.ring.((first + i) mod cap))

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) sentinel;
  t.cursor <- 0;
  t.next <- 0

let on_dump t sink = t.sinks <- sink :: t.sinks

let dump t ~reason =
  let tail = entries t in
  List.iter
    (fun sink ->
      (* A failing sink must not unwind the pipeline being observed. *)
      try sink ~reason tail with _ -> ())
    (List.rev t.sinks);
  tail

let event_to_json = function
  | Packet { proto; src; dst } ->
      Json.obj
        [ ("type", Json.quote "packet"); ("proto", Json.quote proto);
          ("src", Json.quote (Dsim.Addr.to_string src));
          ("dst", Json.quote (Dsim.Addr.to_string dst)) ]
  | Dispatch { target; subject } ->
      Json.obj
        [ ("type", Json.quote "dispatch"); ("target", Json.quote target);
          ("subject", Json.quote subject) ]
  | Transition { machine; subject; state } ->
      Json.obj
        [ ("type", Json.quote "transition"); ("machine", Json.quote machine);
          ("subject", Json.quote subject); ("state", Json.quote state) ]
  | Alert { kind; subject } ->
      Json.obj
        [ ("type", Json.quote "alert"); ("kind", Json.quote kind);
          ("subject", Json.quote subject) ]
  | Quarantine { subject; origin } ->
      Json.obj
        [ ("type", Json.quote "quarantine"); ("subject", Json.quote subject);
          ("origin", Json.quote origin) ]
  | Eviction { subject; detail } ->
      Json.obj
        [ ("type", Json.quote "eviction"); ("subject", Json.quote subject);
          ("detail", Json.quote detail) ]
  | Checkpoint { seq } ->
      Json.obj [ ("type", Json.quote "checkpoint"); ("seq", Json.int seq) ]
  | Ingest { action; detail } ->
      Json.obj
        [ ("type", Json.quote "ingest"); ("action", Json.quote action);
          ("detail", Json.quote detail) ]
  | Enforce { action; subject } ->
      Json.obj
        [ ("type", Json.quote "enforce"); ("action", Json.quote action);
          ("subject", Json.quote subject) ]
  | Span { stage; self_s; words } ->
      Json.obj
        [ ("type", Json.quote "span"); ("stage", Json.quote stage);
          ("self_s", Json.float self_s); ("words", Json.float words) ]
  | Note { label; detail } ->
      Json.obj
        [ ("type", Json.quote "note"); ("label", Json.quote label);
          ("detail", Json.quote detail) ]

let entry_to_json e =
  Json.obj
    [ ("seq", Json.int e.seq); ("at_us", Json.int (Dsim.Time.to_us e.at));
      ("event", event_to_json e.ev) ]

let pp_entry ppf e =
  Format.fprintf ppf "#%d @%a %s" e.seq Dsim.Time.pp e.at (event_to_json e.ev)
