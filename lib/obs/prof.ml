(* Hot-path profiler.  See prof.mli for the contract.

   The span stack is an array of preallocated mutable frames, so a
   balanced enter/exit pair allocates nothing beyond the two boxed floats
   the clock and allocation counters return.  Self time is attributed by
   subtraction: every exit adds its *elapsed* time to the parent frame's
   child accumulator, so the parent's own accounting later removes it. *)

type stage =
  | Sip_parse
  | Sdp_parse
  | Rtp_parse
  | Partition
  | Ring_publish
  | Ring_drain
  | Efsm_dispatch
  | Detect
  | Enforce_gate
  | Journal_fsync
  | Checkpoint
  | Ingest_poll
  | Drive

let all_stages =
  [
    Sip_parse; Sdp_parse; Rtp_parse; Partition; Ring_publish; Ring_drain; Efsm_dispatch;
    Detect; Enforce_gate; Journal_fsync; Checkpoint; Ingest_poll; Drive;
  ]

let index = function
  | Sip_parse -> 0
  | Sdp_parse -> 1
  | Rtp_parse -> 2
  | Partition -> 3
  | Ring_publish -> 4
  | Ring_drain -> 5
  | Efsm_dispatch -> 6
  | Detect -> 7
  | Enforce_gate -> 8
  | Journal_fsync -> 9
  | Checkpoint -> 10
  | Ingest_poll -> 11
  | Drive -> 12

let stage_name = function
  | Sip_parse -> "sip-parse"
  | Sdp_parse -> "sdp-parse"
  | Rtp_parse -> "rtp-parse"
  | Partition -> "partition"
  | Ring_publish -> "ring-publish"
  | Ring_drain -> "ring-drain"
  | Efsm_dispatch -> "efsm-dispatch"
  | Detect -> "detect"
  | Enforce_gate -> "enforce-gate"
  | Journal_fsync -> "journal-fsync"
  | Checkpoint -> "checkpoint"
  | Ingest_poll -> "ingest-poll"
  | Drive -> "drive"

let stage_of_name name =
  List.find_opt (fun s -> String.equal (stage_name s) name) all_stages

(* Deep enough for every real nesting (driver > ingest > engine > parse is
   depth 4); a runaway recursion hits the overflow counter instead of
   growing state. *)
let max_depth = 16

type frame = {
  mutable f_stage : int;
  mutable f_t0 : float;
  mutable f_a0 : float;
  mutable f_child_s : float; (* elapsed seconds consumed by nested spans *)
  mutable f_child_w : float; (* words allocated by nested spans *)
}

type t = {
  clock : unit -> float;
  alloc : unit -> float;
  reg : Metrics.t;
  hist : Metrics.histogram array; (* self seconds, per stage *)
  words_c : Metrics.counter array;
  spans_c : Metrics.counter array;
  mismatch : Metrics.counter;
  overflow : Metrics.counter;
  g_heap : Metrics.gauge;
  g_top_heap : Metrics.gauge;
  g_minor : Metrics.gauge;
  g_major : Metrics.gauge;
  g_compactions : Metrics.gauge;
  g_allocated : Metrics.gauge;
  stack : frame array;
  mutable depth : int;
  flight : Trace.t option;
  mutable vclock : unit -> Dsim.Time.t;
  sample_every : int;
  mutable until_sample : int;
}

let default_clock () = Unix.gettimeofday ()
let default_alloc () = Gc.minor_words ()

let create ?registry ?flight ?(sample_every = 1024) ?(clock = default_clock)
    ?(alloc = default_alloc) ?(vclock = fun () -> Dsim.Time.zero) () =
  let reg = match registry with Some r -> r | None -> Metrics.create () in
  let per name help =
    Array.of_list
      (List.map
         (fun s -> name reg ~help ~labels:[ ("stage", stage_name s) ])
         all_stages)
  in
  {
    clock;
    alloc;
    reg;
    hist =
      per
        (fun r ~help ~labels -> Metrics.histogram r "vids_stage_seconds" ~help ~labels)
        "Per-span self wall seconds, by pipeline stage";
    words_c =
      per
        (fun r ~help ~labels -> Metrics.counter r "vids_stage_alloc_words_total" ~help ~labels)
        "Minor-heap words allocated inside the stage's own spans";
    spans_c =
      per
        (fun r ~help ~labels -> Metrics.counter r "vids_stage_spans_total" ~help ~labels)
        "Completed spans, by pipeline stage";
    mismatch =
      Metrics.counter reg "vids_prof_mismatch_total"
        ~help:"Span exits without a matching enter (dropped, not raised)";
    overflow =
      Metrics.counter reg "vids_prof_depth_overflow_total"
        ~help:"Spans opened beyond the profiler's fixed stack depth";
    g_heap = Metrics.gauge reg "vids_gc_heap_words" ~help:"Major heap size in words";
    g_top_heap =
      Metrics.gauge reg "vids_gc_top_heap_words" ~help:"Largest major heap size reached, words";
    g_minor = Metrics.gauge reg "vids_gc_minor_collections" ~help:"Minor collections so far";
    g_major = Metrics.gauge reg "vids_gc_major_collections" ~help:"Major collection cycles so far";
    g_compactions = Metrics.gauge reg "vids_gc_compactions" ~help:"Heap compactions so far";
    g_allocated =
      Metrics.gauge reg "vids_gc_allocated_words"
        ~help:"Words allocated over the process lifetime (minor + direct major)";
    stack =
      Array.init max_depth (fun _ ->
          { f_stage = -1; f_t0 = 0.0; f_a0 = 0.0; f_child_s = 0.0; f_child_w = 0.0 });
    depth = 0;
    flight;
    vclock;
    sample_every;
    until_sample = sample_every;
  }

let registry t = t.reg
let set_vclock t vclock = t.vclock <- vclock
let depth t = t.depth

let enter t stage =
  let d = t.depth in
  t.depth <- d + 1;
  if d >= max_depth then Metrics.incr t.overflow
  else begin
    let f = t.stack.(d) in
    f.f_stage <- index stage;
    f.f_child_s <- 0.0;
    f.f_child_w <- 0.0;
    f.f_t0 <- t.clock ();
    f.f_a0 <- t.alloc ()
  end

let sample t stage ~self_s ~self_w =
  if t.sample_every > 0 then begin
    t.until_sample <- t.until_sample - 1;
    if t.until_sample <= 0 then begin
      t.until_sample <- t.sample_every;
      match t.flight with
      | None -> ()
      | Some fl ->
          Trace.record fl ~at:(t.vclock ())
            (Trace.Span { stage = stage_name stage; self_s; words = self_w })
    end
  end

let exit t stage =
  if t.depth = 0 then Metrics.incr t.mismatch
  else begin
    let d = t.depth - 1 in
    t.depth <- d;
    if d < max_depth then begin
      let f = t.stack.(d) in
      if f.f_stage <> index stage then Metrics.incr t.mismatch
      else begin
        (* Read the counters before any accounting so the profiler's own
           bookkeeping is charged to the parent, not to this span. *)
        let elapsed = t.clock () -. f.f_t0 in
        let allocated = t.alloc () -. f.f_a0 in
        let self_s = Float.max 0.0 (elapsed -. f.f_child_s) in
        let self_w = Float.max 0.0 (allocated -. f.f_child_w) in
        let i = f.f_stage in
        Metrics.observe t.hist.(i) self_s;
        Metrics.add t.words_c.(i) (int_of_float self_w);
        Metrics.incr t.spans_c.(i);
        if d > 0 && d <= max_depth then begin
          let parent = t.stack.(d - 1) in
          parent.f_child_s <- parent.f_child_s +. elapsed;
          parent.f_child_w <- parent.f_child_w +. allocated
        end;
        sample t stage ~self_s ~self_w
      end
    end
  end

let span t stage f =
  enter t stage;
  Fun.protect ~finally:(fun () -> exit t stage) f

let sample_gc t =
  let s = Gc.quick_stat () in
  Metrics.set t.g_heap (float_of_int s.Gc.heap_words);
  Metrics.set t.g_top_heap (float_of_int s.Gc.top_heap_words);
  Metrics.set t.g_minor (float_of_int s.Gc.minor_collections);
  Metrics.set t.g_major (float_of_int s.Gc.major_collections);
  Metrics.set t.g_compactions (float_of_int s.Gc.compactions);
  Metrics.set t.g_allocated (s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words)

(* --------------------------------------------------------------- *)
(* Reports                                                          *)
(* --------------------------------------------------------------- *)

type stage_report = {
  r_stage : string;
  r_spans : int;
  r_seconds : float;
  r_words : float;
  r_p50_s : float;
  r_p95_s : float;
  r_p99_s : float;
}

let report_of_snapshot snap =
  let rows =
    List.filter_map
      (fun stage ->
        let labels = [ ("stage", stage_name stage) ] in
        let spans =
          match Metrics.find snap ~labels "vids_stage_spans_total" with
          | Some (Metrics.Counter n) -> n
          | Some _ | None -> 0
        in
        if spans = 0 then None
        else
          let words =
            match Metrics.find snap ~labels "vids_stage_alloc_words_total" with
            | Some (Metrics.Counter n) -> float_of_int n
            | Some _ | None -> 0.0
          in
          match Metrics.find snap ~labels "vids_stage_seconds" with
          | Some (Metrics.Histogram h) ->
              Some
                {
                  r_stage = stage_name stage;
                  r_spans = spans;
                  r_seconds = h.Metrics.sum;
                  r_words = words;
                  r_p50_s = Dsim.Stat.Quantiles.p50 h.Metrics.quantiles;
                  r_p95_s = Dsim.Stat.Quantiles.p95 h.Metrics.quantiles;
                  r_p99_s = Dsim.Stat.Quantiles.p99 h.Metrics.quantiles;
                }
          | Some _ | None -> None)
      all_stages
  in
  List.sort (fun a b -> Float.compare b.r_seconds a.r_seconds) rows

let total_seconds rows = List.fold_left (fun acc r -> acc +. r.r_seconds) 0.0 rows

let bytes_per_record ~records words =
  if records <= 0 then 0.0 else words *. 8.0 /. float_of_int records

let pp_table ?records ?total_s ppf rows =
  let total = match total_s with Some t when t > 0.0 -> t | _ -> total_seconds rows in
  let us v = if Float.is_nan v then 0.0 else v *. 1e6 in
  Format.fprintf ppf "%-14s %10s %10s %7s %9s %9s" "stage" "spans" "self s" "share" "p50 us"
    "p99 us";
  (match records with Some _ -> Format.fprintf ppf " %9s@." "B/record" | None -> Format.fprintf ppf "@.");
  List.iter
    (fun r ->
      let share = if total > 0.0 then 100.0 *. r.r_seconds /. total else 0.0 in
      Format.fprintf ppf "%-14s %10d %10.4f %6.1f%% %9.1f %9.1f" r.r_stage r.r_spans r.r_seconds
        share (us r.r_p50_s) (us r.r_p99_s);
      match records with
      | Some n -> Format.fprintf ppf " %9.0f@." (bytes_per_record ~records:n r.r_words)
      | None -> Format.fprintf ppf "@.")
    rows;
  Format.fprintf ppf "%-14s %10s %10.4f@." "total" "" (total_seconds rows)

let report_json ?records ?total_s rows =
  let total = match total_s with Some t when t > 0.0 -> t | _ -> total_seconds rows in
  Json.arr
    (List.map
       (fun r ->
         let share = if total > 0.0 then r.r_seconds /. total else 0.0 in
         let base =
           [
             ("stage", Json.quote r.r_stage);
             ("spans", Json.int r.r_spans);
             ("self_s", Json.float r.r_seconds);
             ("share", Json.float share);
             ("alloc_words", Json.float r.r_words);
             ("p50_s", Json.float r.r_p50_s);
             ("p95_s", Json.float r.r_p95_s);
             ("p99_s", Json.float r.r_p99_s);
           ]
         in
         Json.obj
           (match records with
           | Some n ->
               base @ [ ("bytes_per_record", Json.float (bytes_per_record ~records:n r.r_words)) ]
           | None -> base))
       rows)
