(** Values carried by EFSM state variables and event parameters.

    The paper's model (Definition 1) works over a vector of typed state
    variables [v] with domains [D]; this is the value universe. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Float of float
  | Addr of string * int  (** host, port *)
  | Unset  (** A declared variable before initialization. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** {1 Checkpoint serialization}

    Space-free wire tokens: [of_token (to_token v) = Ok v] for every value,
    exactly — floats round-trip through their IEEE bit pattern and strings
    through hex, so arbitrary bytes survive. *)

val to_token : t -> string

val of_token : string -> (t, string) result

val hex_of_string : string -> string

val string_of_hex : string -> (string, string) result

(** Coercions; raise [Type_error] with a descriptive message. *)

exception Type_error of string

val as_int : t -> int

val as_str : t -> string

val as_bool : t -> bool

val as_float : t -> float

val as_addr : t -> string * int
