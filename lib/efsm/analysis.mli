(** Static analysis of machine specifications.

    Guards are opaque OCaml functions, so the analysis works on the
    control-flow graph (every transition assumed fireable).  That makes
    reachability an over-approximation and dead-end detection exact for
    the graph: together they catch the common specification bugs —
    orphaned states, unreachable attack states, final states that cannot
    be reached. *)

type report = {
  reachable : string list;  (** From the initial state, sorted. *)
  unreachable : string list;
  dead_ends : string list;
      (** Non-final states with no outgoing transitions: a call arriving
          there is stuck forever. *)
  unreachable_attacks : string list;
      (** Attack states the graph cannot reach: the pattern can never
          fire. *)
  finals_reachable : bool;
}

val analyze : Machine.spec -> report
(** Graph-level facts only; for pass/fail verification use the
    guard-aware verifier in [lib/analyze] ([Analyze.Verifier]). *)
