(** Static analysis of machine specifications.

    Guards are opaque OCaml functions, so the analysis works on the
    control-flow graph (every transition assumed fireable).  That makes
    reachability an over-approximation and dead-end detection exact for
    the graph: together they catch the common specification bugs —
    orphaned states, unreachable attack states, final states that cannot
    be reached. *)

type report = {
  reachable : string list;  (** From the initial state, sorted. *)
  unreachable : string list;
  dead_ends : string list;
      (** Non-final states with no outgoing transitions: a call arriving
          there is stuck forever. *)
  unreachable_attacks : string list;
      (** Attack states the graph cannot reach: the pattern can never
          fire. *)
  finals_reachable : bool;
}

val analyze : Machine.spec -> report

val check : Machine.spec -> (unit, string) result
  [@@ocaml.deprecated "Use the Analyze.Verifier subsystem: graph-only checking assumes every \
                       guard fireable. This compatibility shim remains for old callers."]
(** [Ok] when the spec validates ({!Machine.validate_spec}), every attack
    state is reachable, some final state is reachable (when any is
    declared), and no non-final, non-attack state is a dead end.

    @deprecated Superseded by the guard-aware verifier in [lib/analyze]
    ([Analyze.Verifier.verify_spec]), which refines these graph checks with
    predicate-level reachability and adds determinism, sync-channel,
    variable- and timer-hygiene passes. *)
