type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Float of float
  | Addr of string * int
  | Unset

exception Type_error of string

let equal a b =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Float x, Float y -> Float.equal x y
  | Addr (h1, p1), Addr (h2, p2) -> String.equal h1 h2 && Int.equal p1 p2
  | Unset, Unset -> true
  | (Int _ | Str _ | Bool _ | Float _ | Addr _ | Unset), _ -> false

let rank = function
  | Int _ -> 0
  | Str _ -> 1
  | Bool _ -> 2
  | Float _ -> 3
  | Addr _ -> 4
  | Unset -> 5

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Float x, Float y -> Float.compare x y
  | Addr (h1, p1), Addr (h2, p2) ->
      let c = String.compare h1 h2 in
      if c <> 0 then c else Int.compare p1 p2
  | _ -> Int.compare (rank a) (rank b)

let pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.fprintf ppf "%b" b
  | Float f -> Format.fprintf ppf "%g" f
  | Addr (h, p) -> Format.fprintf ppf "%s:%d" h p
  | Unset -> Format.fprintf ppf "<unset>"

let to_string t = Format.asprintf "%a" pp t

let type_error expected got =
  raise (Type_error (Printf.sprintf "expected %s, got %s" expected (to_string got)))

(* Wire tokens for checkpointing: compact, space-free, and exact (floats
   round-trip through their bit pattern, strings through hex). *)

let hex_of_string s =
  let buffer = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buffer (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buffer

let string_of_hex h =
  let n = String.length h in
  if n mod 2 <> 0 then Error "odd-length hex"
  else
    try
      Ok (String.init (n / 2) (fun i -> Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2))))
    with Failure _ -> Error "invalid hex digit"

let to_token = function
  | Int n -> Printf.sprintf "i%d" n
  | Str s -> "s" ^ hex_of_string s
  | Bool b -> if b then "b1" else "b0"
  | Float f -> Printf.sprintf "f%Lx" (Int64.bits_of_float f)
  | Addr (h, p) -> Printf.sprintf "a%s:%d" (hex_of_string h) p
  | Unset -> "u"

let of_token token =
  if String.length token = 0 then Error "empty value token"
  else
    let body = String.sub token 1 (String.length token - 1) in
    match token.[0] with
    | 'i' -> (
        match int_of_string_opt body with
        | Some n -> Ok (Int n)
        | None -> Error "bad int token")
    | 's' -> Result.map (fun s -> Str s) (string_of_hex body)
    | 'b' -> (
        match body with
        | "0" -> Ok (Bool false)
        | "1" -> Ok (Bool true)
        | _ -> Error "bad bool token")
    | 'f' -> (
        match Int64.of_string_opt ("0x" ^ body) with
        | Some bits -> Ok (Float (Int64.float_of_bits bits))
        | None -> Error "bad float token")
    | 'a' -> (
        match String.index_opt body ':' with
        | None -> Error "bad addr token"
        | Some i -> (
            let host_hex = String.sub body 0 i in
            let port_str = String.sub body (i + 1) (String.length body - i - 1) in
            match (string_of_hex host_hex, int_of_string_opt port_str) with
            | Ok host, Some port -> Ok (Addr (host, port))
            | Error e, _ -> Error e
            | _, None -> Error "bad addr port"))
    | 'u' -> if body = "" then Ok Unset else Error "bad unset token"
    | _ -> Error "unknown value token"

let as_int = function Int n -> n | v -> type_error "int" v
let as_str = function Str s -> s | v -> type_error "string" v
let as_bool = function Bool b -> b | v -> type_error "bool" v
let as_float = function Float f -> f | Int n -> float_of_int n | v -> type_error "float" v
let as_addr = function Addr (h, p) -> (h, p) | v -> type_error "addr" v
