type domain = D_int | D_bool | D_str | D_addr | D_enum of Value.t list

type var = Env.scope * string

type decl = var * domain

type cmp = Lt | Le | Gt | Ge | Ieq | Ine

type expr =
  | Const of Value.t
  | Var of var
  | Field of string
  | Mk_addr of expr * expr
  | Addr_host of expr
  | Of_int of iexpr
  | Of_pred of pred

and iexpr =
  | Int_const of int
  | Int_of of expr
  | Int_or0 of expr
  | Add of iexpr * iexpr
  | Sub of iexpr * iexpr

and pred =
  | True
  | False
  | Not of pred
  | And of pred list
  | Or of pred list
  | Eq of expr * expr
  | Member of expr * Value.t list
  | Cmp of cmp * iexpr * iexpr
  | Has_field of string
  | Opaque of opaque_pred

and opaque_pred = {
  pred_name : string;
  pred_reads : var list;
  pred_fields : string list;
  holds : Env.t -> Event.t -> bool;
}

type emission =
  | Emits_sync of { target : string; event_name : string }
  | Emits_set_timer of string
  | Emits_cancel_timer of string

type 'eff act =
  | Assign of var * expr
  | If of pred * 'eff act list * 'eff act list
  | Send_sync of { target : string; event_name : string; args : (string * expr) list }
  | Set_timer of { id : string; delay : Dsim.Time.t }
  | Cancel_timer of string
  | Opaque_act of 'eff opaque_act

and 'eff opaque_act = {
  act_name : string;
  act_reads : var list;
  act_writes : var list;
  act_emits : emission list;
  run : Env.t -> Event.t -> 'eff list;
}

type 'eff t = { guard : pred; acts : 'eff act list }

type 'eff builders = {
  build_sync : target:string -> event_name:string -> args:(string * Value.t) list -> 'eff;
  build_set_timer : id:string -> delay:Dsim.Time.t -> 'eff;
  build_cancel_timer : string -> 'eff;
}

let apply_cmp cmp a b =
  match cmp with
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | Ieq -> Int.equal a b
  | Ine -> not (Int.equal a b)

(* --------------------------------------------------------------- *)
(* Reference interpreter                                            *)
(* --------------------------------------------------------------- *)

let rec eval_expr env event = function
  | Const v -> v
  | Var (scope, name) -> Env.get env scope name
  | Field name -> Event.arg event name
  | Mk_addr (h, p) -> (
      match (eval_expr env event h, eval_expr env event p) with
      | Value.Str host, Value.Int port -> Value.Addr (host, port)
      | _ -> Value.Unset)
  | Addr_host e -> (
      match eval_expr env event e with Value.Addr (h, _) -> Value.Str h | _ -> Value.Str "")
  | Of_int ie -> (
      match eval_iexpr env event ie with Some n -> Value.Int n | None -> Value.Unset)
  | Of_pred p -> Value.Bool (eval_pred env event p)

and eval_iexpr env event = function
  | Int_const n -> Some n
  | Int_of e -> ( match eval_expr env event e with Value.Int n -> Some n | _ -> None)
  | Int_or0 e -> ( match eval_expr env event e with Value.Int n -> Some n | _ -> Some 0)
  | Add (a, b) -> (
      match (eval_iexpr env event a, eval_iexpr env event b) with
      | Some x, Some y -> Some (x + y)
      | _ -> None)
  | Sub (a, b) -> (
      match (eval_iexpr env event a, eval_iexpr env event b) with
      | Some x, Some y -> Some (x - y)
      | _ -> None)

and eval_pred env event = function
  | True -> true
  | False -> false
  | Not p -> not (eval_pred env event p)
  | And ps -> List.for_all (eval_pred env event) ps
  | Or ps -> List.exists (eval_pred env event) ps
  | Eq (a, b) -> Value.equal (eval_expr env event a) (eval_expr env event b)
  | Member (e, vs) ->
      let v = eval_expr env event e in
      List.exists (Value.equal v) vs
  | Cmp (cmp, a, b) -> (
      match (eval_iexpr env event a, eval_iexpr env event b) with
      | Some x, Some y -> apply_cmp cmp x y
      | _ -> false)
  | Has_field f -> Event.has_arg event f
  | Opaque o -> o.holds env event

let rec run_act builders env event = function
  | Assign ((scope, name), e) ->
      Env.set env scope name (eval_expr env event e);
      []
  | If (p, then_, else_) ->
      run_acts builders (if eval_pred env event p then then_ else else_) env event
  | Send_sync { target; event_name; args } ->
      let args = List.map (fun (k, e) -> (k, eval_expr env event e)) args in
      [ builders.build_sync ~target ~event_name ~args ]
  | Set_timer { id; delay } -> [ builders.build_set_timer ~id ~delay ]
  | Cancel_timer id -> [ builders.build_cancel_timer id ]
  | Opaque_act o -> o.run env event

and run_acts builders acts env event =
  List.fold_left (fun acc act -> acc @ run_act builders env event act) [] acts

(* --------------------------------------------------------------- *)
(* Staged compiler                                                  *)
(* --------------------------------------------------------------- *)

let rec compile_expr e =
  match e with
  | Const v -> fun _ _ -> v
  | Var (scope, name) -> fun env _ -> Env.get env scope name
  | Field name -> fun _ event -> Event.arg event name
  | Mk_addr (h, p) ->
      let fh = compile_expr h and fp = compile_expr p in
      fun env event ->
        (match (fh env event, fp env event) with
        | Value.Str host, Value.Int port -> Value.Addr (host, port)
        | _ -> Value.Unset)
  | Addr_host e ->
      let f = compile_expr e in
      fun env event ->
        (match f env event with Value.Addr (h, _) -> Value.Str h | _ -> Value.Str "")
  | Of_int ie ->
      let f = compile_iexpr ie in
      fun env event -> (match f env event with Some n -> Value.Int n | None -> Value.Unset)
  | Of_pred p ->
      let f = compile_pred p in
      fun env event -> Value.Bool (f env event)

and compile_iexpr ie =
  match ie with
  | Int_const n ->
      let r = Some n in
      fun _ _ -> r
  | Int_of e ->
      let f = compile_expr e in
      fun env event -> (match f env event with Value.Int n -> Some n | _ -> None)
  | Int_or0 e ->
      let f = compile_expr e in
      fun env event -> (match f env event with Value.Int n -> Some n | _ -> Some 0)
  | Add (a, b) ->
      let fa = compile_iexpr a and fb = compile_iexpr b in
      fun env event ->
        (match (fa env event, fb env event) with Some x, Some y -> Some (x + y) | _ -> None)
  | Sub (a, b) ->
      let fa = compile_iexpr a and fb = compile_iexpr b in
      fun env event ->
        (match (fa env event, fb env event) with Some x, Some y -> Some (x - y) | _ -> None)

and compile_pred p =
  match p with
  | True -> fun _ _ -> true
  | False -> fun _ _ -> false
  | Not p ->
      let f = compile_pred p in
      fun env event -> not (f env event)
  | And ps ->
      let fs = List.map compile_pred ps in
      fun env event -> List.for_all (fun f -> f env event) fs
  | Or ps ->
      let fs = List.map compile_pred ps in
      fun env event -> List.exists (fun f -> f env event) fs
  | Eq (a, b) ->
      let fa = compile_expr a and fb = compile_expr b in
      fun env event -> Value.equal (fa env event) (fb env event)
  | Member (e, vs) ->
      let f = compile_expr e in
      fun env event ->
        let v = f env event in
        List.exists (Value.equal v) vs
  | Cmp (cmp, a, b) ->
      let fa = compile_iexpr a and fb = compile_iexpr b in
      fun env event ->
        (match (fa env event, fb env event) with
        | Some x, Some y -> apply_cmp cmp x y
        | _ -> false)
  | Has_field f -> fun _ event -> Event.has_arg event f
  | Opaque o -> o.holds

let compile_acts builders acts =
  let rec compile_act = function
    | Assign ((scope, name), e) ->
        let f = compile_expr e in
        fun env event ->
          Env.set env scope name (f env event);
          []
    | If (p, then_, else_) ->
        let fp = compile_pred p and ft = compile_list then_ and fe = compile_list else_ in
        fun env event -> if fp env event then ft env event else fe env event
    | Send_sync { target; event_name; args } ->
        let fargs = List.map (fun (k, e) -> (k, compile_expr e)) args in
        fun env event ->
          [ builders.build_sync ~target ~event_name
              ~args:(List.map (fun (k, f) -> (k, f env event)) fargs);
          ]
    | Set_timer { id; delay } -> fun _ _ -> [ builders.build_set_timer ~id ~delay ]
    | Cancel_timer id -> fun _ _ -> [ builders.build_cancel_timer id ]
    | Opaque_act o -> o.run
  and compile_list acts =
    let fs = List.map compile_act acts in
    fun env event -> List.fold_left (fun acc f -> acc @ f env event) [] fs
  in
  compile_list acts

(* --------------------------------------------------------------- *)
(* Introspection                                                    *)
(* --------------------------------------------------------------- *)

let dedup l = List.sort_uniq compare l

let rec expr_vars acc = function
  | Const _ | Field _ -> acc
  | Var v -> v :: acc
  | Mk_addr (a, b) -> expr_vars (expr_vars acc a) b
  | Addr_host e -> expr_vars acc e
  | Of_int ie -> iexpr_vars acc ie
  | Of_pred p -> pred_vars_acc acc p

and iexpr_vars acc = function
  | Int_const _ -> acc
  | Int_of e | Int_or0 e -> expr_vars acc e
  | Add (a, b) | Sub (a, b) -> iexpr_vars (iexpr_vars acc a) b

and pred_vars_acc acc = function
  | True | False | Has_field _ -> acc
  | Not p -> pred_vars_acc acc p
  | And ps | Or ps -> List.fold_left pred_vars_acc acc ps
  | Eq (a, b) -> expr_vars (expr_vars acc a) b
  | Member (e, _) -> expr_vars acc e
  | Cmp (_, a, b) -> iexpr_vars (iexpr_vars acc a) b
  | Opaque o -> List.rev_append o.pred_reads acc

let rec expr_fields acc = function
  | Const _ | Var _ -> acc
  | Field f -> f :: acc
  | Mk_addr (a, b) -> expr_fields (expr_fields acc a) b
  | Addr_host e -> expr_fields acc e
  | Of_int ie -> iexpr_fields acc ie
  | Of_pred p -> pred_fields_acc acc p

and iexpr_fields acc = function
  | Int_const _ -> acc
  | Int_of e | Int_or0 e -> expr_fields acc e
  | Add (a, b) | Sub (a, b) -> iexpr_fields (iexpr_fields acc a) b

and pred_fields_acc acc = function
  | True | False -> acc
  | Has_field f -> f :: acc
  | Not p -> pred_fields_acc acc p
  | And ps | Or ps -> List.fold_left pred_fields_acc acc ps
  | Eq (a, b) -> expr_fields (expr_fields acc a) b
  | Member (e, _) -> expr_fields acc e
  | Cmp (_, a, b) -> iexpr_fields (iexpr_fields acc a) b
  | Opaque o -> List.rev_append o.pred_fields acc

let pred_vars p = dedup (pred_vars_acc [] p)
let pred_fields p = dedup (pred_fields_acc [] p)
let vars_of_expr e = dedup (expr_vars [] e)

let rec pred_opaques acc = function
  | True | False | Has_field _ | Eq _ | Member _ | Cmp _ -> acc
  | Not p -> pred_opaques acc p
  | And ps | Or ps -> List.fold_left pred_opaques acc ps
  | Opaque o -> o.pred_name :: acc

let pred_opaque_names p = dedup (pred_opaques [] p)

(* Action folds walk both branches of every [If]: the analyses want what an
   action *may* do, not what one execution did. *)
let rec acts_fold f acc acts = List.fold_left (act_fold f) acc acts

and act_fold f acc act =
  let acc = f acc act in
  match act with If (_, then_, else_) -> acts_fold f (acts_fold f acc then_) else_ | _ -> acc

let acts_writes acts =
  dedup
    (acts_fold
       (fun acc -> function
         | Assign (v, _) -> v :: acc
         | Opaque_act o -> List.rev_append o.act_writes acc
         | _ -> acc)
       [] acts)

let acts_reads acts =
  dedup
    (acts_fold
       (fun acc -> function
         | Assign (_, e) -> expr_vars acc e
         | If (p, _, _) -> pred_vars_acc acc p
         | Send_sync { args; _ } -> List.fold_left (fun acc (_, e) -> expr_vars acc e) acc args
         | Opaque_act o -> List.rev_append o.act_reads acc
         | Set_timer _ | Cancel_timer _ -> acc)
       [] acts)

let acts_syncs acts =
  dedup
    (acts_fold
       (fun acc -> function
         | Send_sync { target; event_name; _ } -> (target, event_name) :: acc
         | Opaque_act o ->
             List.fold_left
               (fun acc -> function
                 | Emits_sync { target; event_name } -> (target, event_name) :: acc
                 | _ -> acc)
               acc o.act_emits
         | _ -> acc)
       [] acts)

let acts_timers_set acts =
  dedup
    (acts_fold
       (fun acc -> function
         | Set_timer { id; _ } -> id :: acc
         | Opaque_act o ->
             List.fold_left
               (fun acc -> function Emits_set_timer id -> id :: acc | _ -> acc)
               acc o.act_emits
         | _ -> acc)
       [] acts)

let acts_timers_cancelled acts =
  dedup
    (acts_fold
       (fun acc -> function
         | Cancel_timer id -> id :: acc
         | Opaque_act o ->
             List.fold_left
               (fun acc -> function Emits_cancel_timer id -> id :: acc | _ -> acc)
               acc o.act_emits
         | _ -> acc)
       [] acts)

let acts_opaque_names acts =
  dedup
    (acts_fold
       (fun acc -> function
         | Opaque_act o -> o.act_name :: acc
         | If (p, _, _) -> List.rev_append (pred_opaque_names p) acc
         | _ -> acc)
       [] acts)

let domain_of_value = function
  | Value.Int _ -> Some D_int
  | Value.Bool _ -> Some D_bool
  | Value.Str _ -> Some D_str
  | Value.Addr _ -> Some D_addr
  | Value.Float _ -> None (* no float domain: specs do not compare floats *)
  | Value.Unset -> None

let type_of_expr = function
  | Const v -> domain_of_value v
  | Var _ | Field _ -> None
  | Mk_addr _ -> Some D_addr
  | Addr_host _ -> Some D_str
  | Of_int _ -> Some D_int
  | Of_pred _ -> Some D_bool

let domain_to_string = function
  | D_int -> "int"
  | D_bool -> "bool"
  | D_str -> "string"
  | D_addr -> "addr"
  | D_enum vs ->
      Printf.sprintf "{%s}" (String.concat ", " (List.map Value.to_string vs))

(* --------------------------------------------------------------- *)
(* Pretty-printing (lint findings, DOT annotations, docs)           *)
(* --------------------------------------------------------------- *)

let var_to_string (scope, name) =
  match scope with Env.Local -> name | Env.Global -> "g:" ^ name

let cmp_to_string = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Ieq -> "=="
  | Ine -> "!="

let rec expr_to_string = function
  | Const v -> Value.to_string v
  | Var v -> var_to_string v
  | Field f -> "$" ^ f
  | Mk_addr (h, p) -> Printf.sprintf "addr(%s, %s)" (expr_to_string h) (expr_to_string p)
  | Addr_host e -> Printf.sprintf "host(%s)" (expr_to_string e)
  | Of_int ie -> iexpr_to_string ie
  | Of_pred p -> pred_to_string p

and iexpr_to_string = function
  | Int_const n -> string_of_int n
  | Int_of e -> expr_to_string e
  | Int_or0 e -> Printf.sprintf "int0(%s)" (expr_to_string e)
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (iexpr_to_string a) (iexpr_to_string b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (iexpr_to_string a) (iexpr_to_string b)

and pred_to_string = function
  | True -> "true"
  | False -> "false"
  | Not p -> Printf.sprintf "!(%s)" (pred_to_string p)
  | And ps -> Printf.sprintf "(%s)" (String.concat " && " (List.map pred_to_string ps))
  | Or ps -> Printf.sprintf "(%s)" (String.concat " || " (List.map pred_to_string ps))
  | Eq (a, b) -> Printf.sprintf "%s = %s" (expr_to_string a) (expr_to_string b)
  | Member (e, vs) ->
      Printf.sprintf "%s in {%s}" (expr_to_string e)
        (String.concat ", " (List.map Value.to_string vs))
  | Cmp (c, a, b) ->
      Printf.sprintf "%s %s %s" (iexpr_to_string a) (cmp_to_string c) (iexpr_to_string b)
  | Has_field f -> Printf.sprintf "has($%s)" f
  | Opaque o -> Printf.sprintf "<%s>" o.pred_name
