let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let trigger_label = function
  | Machine.On_event n -> n
  | Machine.On_channel proto -> proto ^ "?*"
  | Machine.On_sync n -> "δ:" ^ n
  | Machine.On_timer id -> "timeout(" ^ id ^ ")"

let notes_for key notes = List.filter_map (fun (k, n) -> if String.equal k key then Some n else None) notes

let of_spec ?(state_notes = []) ?(edge_notes = []) (spec : Machine.spec) =
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer (Printf.sprintf "digraph %S {\n" spec.Machine.spec_name);
  Buffer.add_string buffer "  rankdir=LR;\n  node [shape=ellipse];\n";
  List.iter
    (fun state ->
      let attrs =
        if List.mem_assoc state spec.Machine.attack_states then
          [ "shape=doubleoctagon"; "style=filled"; "fillcolor=salmon" ]
        else if List.mem state spec.Machine.finals then [ "shape=doublecircle" ]
        else if String.equal state spec.Machine.initial then [ "style=bold" ]
        else []
      in
      let notes = notes_for state state_notes in
      let attrs =
        if notes = [] then attrs
        else
          let label =
            escape (String.concat "\\n" (state :: List.map (fun n -> "⚠ " ^ n) notes))
          in
          attrs @ [ Printf.sprintf "label=\"%s\"" label; "color=red"; "penwidth=2" ]
      in
      let attrs = if attrs = [] then "" else " [" ^ String.concat "," attrs ^ "]" in
      Buffer.add_string buffer (Printf.sprintf "  \"%s\"%s;\n" (escape state) attrs))
    (Machine.states spec);
  List.iter
    (fun tr ->
      let notes = notes_for tr.Machine.label edge_notes in
      let label =
        escape
          (String.concat "\\n"
             (trigger_label tr.Machine.trigger :: List.map (fun n -> "⚠ " ^ n) notes))
      in
      let extra = if notes = [] then "" else ",color=red,fontcolor=red,penwidth=2" in
      Buffer.add_string buffer
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s\"%s];\n"
           (escape tr.Machine.from_state) (escape tr.Machine.to_state) label extra))
    spec.Machine.transitions;
  Buffer.add_string buffer "}\n";
  Buffer.contents buffer
