(** Declarative guard/action IR for EFSM transitions.

    Guards are boolean {!pred} trees over machine variables ({!Env}) and
    event fields ({!Event}); actions are assignment lists plus the
    machine-level effects (sync sends, timer operations).  Transitions
    built from the IR carry their syntax alongside a compiled closure, so
    the static verifier in [lib/analyze] can reason about disjointness,
    dataflow and channel usage while the engine hot path keeps calling an
    ordinary [Env.t -> Event.t -> bool].

    Semantics are total: no IR evaluation raises.  In particular an
    integer comparison whose operand is not an [Int] is simply false —
    mirroring how [Machine.guard_holds] treats a [Value.Type_error]
    escaping a hand-written closure guard.  The two disagree only on
    events that bind an expected field to a value of the wrong type,
    which the packet classifiers never produce; the digest-transparency
    test pins the end-to-end equivalence.

    Guards that genuinely cannot be expressed (e.g. RTP sequence-number
    wraparound deltas) use {!Opaque} / [Opaque_act] escape hatches that
    declare their reads/writes/emissions so analyses degrade gracefully
    instead of silently losing soundness. *)

(** Value domain of a variable, used for declarations and bounded
    enumeration in the solver. *)
type domain =
  | D_int
  | D_bool
  | D_str
  | D_addr
  | D_enum of Value.t list  (** Finite set of possible values (besides [Unset]). *)

type var = Env.scope * string

type decl = var * domain

type cmp = Lt | Le | Gt | Ge | Ieq | Ine

type expr =
  | Const of Value.t
  | Var of var  (** Current value; [Unset] when never assigned. *)
  | Field of string  (** Event argument; [Unset] when absent. *)
  | Mk_addr of expr * expr  (** [Str h, Int p -> Addr (h, p)]; otherwise [Unset]. *)
  | Addr_host of expr  (** [Addr (h, _) -> Str h]; otherwise [Str ""]. *)
  | Of_int of iexpr  (** [Int n] when defined, [Unset] otherwise. *)
  | Of_pred of pred

and iexpr =
  | Int_const of int
  | Int_of of expr  (** Undefined when the operand is not an [Int]. *)
  | Int_or0 of expr  (** Non-[Int] operands read as [0] (counter idiom). *)
  | Add of iexpr * iexpr
  | Sub of iexpr * iexpr

and pred =
  | True
  | False
  | Not of pred
  | And of pred list
  | Or of pred list
  | Eq of expr * expr  (** Structural [Value.equal]. *)
  | Member of expr * Value.t list
  | Cmp of cmp * iexpr * iexpr  (** False when either side is undefined. *)
  | Has_field of string
  | Opaque of opaque_pred

and opaque_pred = {
  pred_name : string;  (** Identity for the solver: same name = same truth value. *)
  pred_reads : var list;  (** Declared variable reads (trusted). *)
  pred_fields : string list;  (** Declared event-field reads (trusted). *)
  holds : Env.t -> Event.t -> bool;
}

(** What an opaque action declares it may emit. *)
type emission =
  | Emits_sync of { target : string; event_name : string }
  | Emits_set_timer of string
  | Emits_cancel_timer of string

type 'eff act =
  | Assign of var * expr
  | If of pred * 'eff act list * 'eff act list
  | Send_sync of { target : string; event_name : string; args : (string * expr) list }
  | Set_timer of { id : string; delay : Dsim.Time.t }
  | Cancel_timer of string
  | Opaque_act of 'eff opaque_act

and 'eff opaque_act = {
  act_name : string;
  act_reads : var list;
  act_writes : var list;
  act_emits : emission list;
  run : Env.t -> Event.t -> 'eff list;
}

type 'eff t = { guard : pred; acts : 'eff act list }
(** A transition's declarative payload. ['eff] is abstract here to avoid a
    cycle with {!Machine.effect}; {!Machine.builders} instantiates it. *)

type 'eff builders = {
  build_sync : target:string -> event_name:string -> args:(string * Value.t) list -> 'eff;
  build_set_timer : id:string -> delay:Dsim.Time.t -> 'eff;
  build_cancel_timer : string -> 'eff;
}

val apply_cmp : cmp -> int -> int -> bool

(** {1 Reference interpreter} *)

val eval_expr : Env.t -> Event.t -> expr -> Value.t
val eval_iexpr : Env.t -> Event.t -> iexpr -> int option
val eval_pred : Env.t -> Event.t -> pred -> bool

val run_acts : 'eff builders -> 'eff act list -> Env.t -> Event.t -> 'eff list
(** Executes assignments in order (side-effecting the [Env]) and returns
    emitted effects in order. *)

(** {1 Staged compiler}

    Builds a closure tree once at spec-construction time; the returned
    closures perform no IR-tree traversal.  Behaviour is pointwise equal
    to the reference interpreter (qcheck-pinned). *)

val compile_pred : pred -> Env.t -> Event.t -> bool
val compile_acts : 'eff builders -> 'eff act list -> Env.t -> Event.t -> 'eff list

(** {1 Introspection}

    All results are deduplicated.  Action walks visit both branches of
    every [If] (may-analysis) and trust opaque declarations. *)

val pred_vars : pred -> var list
val pred_fields : pred -> string list
val pred_opaque_names : pred -> string list
val vars_of_expr : expr -> var list

val acts_fold : ('a -> 'eff act -> 'a) -> 'a -> 'eff act list -> 'a
(** Folds over every action node, descending into both branches of each
    [If]. *)


val acts_writes : 'eff act list -> var list
val acts_reads : 'eff act list -> var list
val acts_syncs : 'eff act list -> (string * string) list
(** Possible sync sends as (target machine, event name) pairs. *)

val acts_timers_set : 'eff act list -> string list
val acts_timers_cancelled : 'eff act list -> string list
val acts_opaque_names : 'eff act list -> string list

val domain_of_value : Value.t -> domain option
(** [None] for [Unset]. *)

val type_of_expr : expr -> domain option
(** Static type when syntactically evident ([None] for variables/fields). *)

(** {1 Rendering} *)

val domain_to_string : domain -> string
val var_to_string : var -> string
val cmp_to_string : cmp -> string
val expr_to_string : expr -> string
val iexpr_to_string : iexpr -> string
val pred_to_string : pred -> string
