(** Extended finite state machines (paper §4.1, Definition 1).

    A machine specification is the quintuple (Σ, S, v, D, T): the event
    alphabet is whatever {!trigger}s mention, states are strings, the
    variable vector and domains live in {!Env}, and each transition
    ⟨s_t, event, P_t, A_t, q_t⟩ carries a guard [P_t] over the input vector
    x̄ and current variables v̄, and an action [A_t] that updates v̄ and may
    emit effects (synchronization messages, timer operations).

    Determinism: the paper assumes mutually disjoint predicates.  The step
    function checks this at runtime — if more than one guard is true the
    outcome is [Nondeterministic], which test suites treat as a
    specification bug. *)

type trigger =
  | On_event of string  (** Any event with this name. *)
  | On_channel of string  (** Any data event on this protocol channel. *)
  | On_sync of string  (** A δ synchronization event with this name. *)
  | On_timer of string  (** Expiry of the named timer. *)

type effect =
  | Send_sync of {
      target : string;  (** Peer machine name within the same call. *)
      event_name : string;
      args : (string * Value.t) list;
    }
  | Set_timer of { id : string; delay : Dsim.Time.t }
  | Cancel_timer of string

type transition = {
  label : string;  (** Unique within the spec; used in traces and tests. *)
  from_state : string;
  trigger : trigger;
  guard : Env.t -> Event.t -> bool;
  action : Env.t -> Event.t -> effect list;
  to_state : string;
  syntax : effect Ir.t option;
      (** Declarative source when built with {!ir_transition}; [None] for raw
          closures.  The static verifier ([lib/analyze]) reasons over this;
          the engine only ever calls the compiled [guard]/[action]. *)
}

val transition :
  ?guard:(Env.t -> Event.t -> bool) ->
  ?action:(Env.t -> Event.t -> effect list) ->
  label:string ->
  from_state:string ->
  trigger ->
  to_state:string ->
  unit ->
  transition
(** Guard defaults to [true], action to no-op.  Carries no {!Ir} syntax. *)

val builders : effect Ir.builders
(** Effect constructors used to compile IR actions for this machine type. *)

val ir_transition :
  ?guard:Ir.pred ->
  ?acts:effect Ir.act list ->
  label:string ->
  from_state:string ->
  trigger ->
  to_state:string ->
  unit ->
  transition
(** Builds a transition from IR syntax: the guard/action closures are
    compiled once here ({!Ir.compile_pred} / {!Ir.compile_acts}) and the
    syntax is retained in [syntax] for static analysis.  Guard defaults to
    [Ir.True], actions to none. *)

type spec = {
  spec_name : string;
  initial : string;
  finals : string list;  (** Reaching one of these completes the machine. *)
  attack_states : (string * string) list;  (** state, alert description. *)
  transitions : transition list;
}

val validate_spec : spec -> (unit, string) result
(** Structural well-formedness: label uniqueness, the initial state has
    outgoing transitions, no state is both final and attack, attack states
    carry non-empty alert descriptions, and every transition endpoint is
    anchored in the graph (a [from_state] must be reachable by some edge or
    be the initial state; a [to_state] must have outgoing edges or be
    final/attack — lone endpoints are typo'd state names). *)

val states : spec -> string list
(** All states mentioned, sorted. *)

(** {1 Instances} *)

type t
(** A running instance: the configuration (sᵢ, v̄) of the paper. *)

type outcome =
  | Moved of { transition : transition; effects : effect list; attack : string option }
      (** [attack] is the alert description when the target state is an
          attack state. *)
  | Rejected  (** No transition enabled: a deviation from the specification. *)
  | Nondeterministic of string list  (** Labels of simultaneously enabled transitions. *)

val instantiate : spec -> globals:Env.globals -> t

val spec : t -> spec

val name : t -> string

val state : t -> string

val env : t -> Env.t

val is_final : t -> bool

val in_attack_state : t -> string option

val step : t -> Event.t -> outcome
(** Guards that raise [Value.Type_error] count as false (a malformed event
    cannot satisfy a well-typed predicate). *)

val trace : t -> (Dsim.Time.t * string) list
(** Transition labels taken, oldest first.  Bounded: only a recent window
    (last 32–64 transitions, truncated amortized) is retained, so a
    long-lived detector machine cannot grow without limit.  The retained
    window is a pure function of the transition count, keeping snapshots
    canonical across a live run and a replay of its capture. *)

val configuration : t -> string * (string * Value.t) list
(** Current state and local variable bindings. *)

val restore :
  t ->
  state:string ->
  vars:(string * Value.t) list ->
  trace:(Dsim.Time.t * string) list ->
  (unit, string) result
(** Overwrites the instance's configuration from a snapshot: current state
    (validated against the spec's state set), local variables and transition
    history ([trace] oldest first).  Global variables belong to the system
    and are restored separately. *)
