type scope = Local | Global

type globals = (string, Value.t) Hashtbl.t

let globals () : globals = Hashtbl.create 16

type t = { locals : (string, Value.t) Hashtbl.t; shared : globals }

let create shared = { locals = Hashtbl.create 16; shared }
let table t = function Local -> t.locals | Global -> t.shared

let get t scope name =
  match Hashtbl.find_opt (table t scope) name with Some v -> v | None -> Value.Unset

let set t scope name value = Hashtbl.replace (table t scope) name value
let mem t scope name = Hashtbl.mem (table t scope) name

let bindings table =
  Hashtbl.fold (fun name value acc -> (name, value) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let local_bindings t = bindings t.locals
let global_bindings t = bindings t.shared
let reset_locals t = Hashtbl.reset t.locals
let globals_bindings (g : globals) = bindings g
let globals_put (g : globals) name value = Hashtbl.replace g name value

let value_bytes = function
  | Value.Int _ | Value.Bool _ | Value.Float _ -> 8
  | Value.Str s -> String.length s
  | Value.Addr (h, _) -> String.length h + 8
  | Value.Unset -> 0

let estimated_bytes t =
  Hashtbl.fold
    (fun name value acc -> acc + String.length name + value_bytes value)
    t.locals 0
