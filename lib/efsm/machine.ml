type trigger = On_event of string | On_channel of string | On_sync of string | On_timer of string

type effect =
  | Send_sync of { target : string; event_name : string; args : (string * Value.t) list }
  | Set_timer of { id : string; delay : Dsim.Time.t }
  | Cancel_timer of string

type transition = {
  label : string;
  from_state : string;
  trigger : trigger;
  guard : Env.t -> Event.t -> bool;
  action : Env.t -> Event.t -> effect list;
  to_state : string;
  syntax : effect Ir.t option;
}

let transition ?(guard = fun _ _ -> true) ?(action = fun _ _ -> []) ~label ~from_state trigger
    ~to_state () =
  { label; from_state; trigger; guard; action; to_state; syntax = None }

let builders : effect Ir.builders =
  {
    Ir.build_sync = (fun ~target ~event_name ~args -> Send_sync { target; event_name; args });
    build_set_timer = (fun ~id ~delay -> Set_timer { id; delay });
    build_cancel_timer = (fun id -> Cancel_timer id);
  }

let ir_transition ?(guard = Ir.True) ?(acts = []) ~label ~from_state trigger ~to_state () =
  {
    label;
    from_state;
    trigger;
    guard = Ir.compile_pred guard;
    action = Ir.compile_acts builders acts;
    to_state;
    syntax = Some { Ir.guard; acts };
  }

type spec = {
  spec_name : string;
  initial : string;
  finals : string list;
  attack_states : (string * string) list;
  transitions : transition list;
}

let validate_spec spec =
  let labels = List.map (fun t -> t.label) spec.transitions in
  let sorted = List.sort String.compare labels in
  let rec dup = function
    | a :: (b :: _ as rest) -> if String.equal a b then Some a else dup rest
    | [ _ ] | [] -> None
  in
  let err fmt = Printf.ksprintf (fun m -> Error (spec.spec_name ^ ": " ^ m)) fmt in
  match dup sorted with
  | Some label -> err "duplicate transition label %S" label
  | None ->
      if not (List.exists (fun t -> String.equal t.from_state spec.initial) spec.transitions)
      then err "initial state %S has no transitions" spec.initial
      else begin
        (* A state name that appears only once in the whole spec is almost
           certainly a typo: sources must be enterable, targets must lead
           somewhere (or be terminal). *)
        let final s = List.mem s spec.finals in
        let attack s = List.mem_assoc s spec.attack_states in
        let enterable s =
          String.equal s spec.initial
          || List.exists (fun t -> String.equal t.to_state s) spec.transitions
        in
        let exitable s = List.exists (fun t -> String.equal t.from_state s) spec.transitions in
        let bad_final = List.find_opt attack spec.finals in
        let bad_attack =
          List.find_opt (fun (_, desc) -> String.equal (String.trim desc) "") spec.attack_states
        in
        let orphan_from =
          List.find_opt (fun t -> not (enterable t.from_state)) spec.transitions
        in
        let orphan_to =
          List.find_opt
            (fun t -> not (exitable t.to_state || final t.to_state || attack t.to_state))
            spec.transitions
        in
        match (bad_final, bad_attack, orphan_from, orphan_to) with
        | Some s, _, _, _ -> err "state %S is both final and an attack state" s
        | None, Some (s, _), _, _ -> err "attack state %S has an empty alert description" s
        | None, None, Some t, _ ->
            err "transition %S leaves state %S, which nothing can reach (typo?)" t.label
              t.from_state
        | None, None, None, Some t ->
            err
              "transition %S enters state %S, which has no outgoing transitions and is neither \
               final nor an attack state (typo?)"
              t.label t.to_state
        | None, None, None, None -> Ok ()
      end

let states spec =
  let add acc s = if List.mem s acc then acc else s :: acc in
  let acc = List.fold_left (fun acc t -> add (add acc t.from_state) t.to_state) [] spec.transitions in
  let acc = add acc spec.initial in
  let acc = List.fold_left add acc spec.finals in
  List.sort String.compare acc

type t = {
  spec : spec;
  mutable state : string;
  env : Env.t;
  mutable trace : (Dsim.Time.t * string) list;
  mutable trace_len : int;
}

(* Transition history is diagnostic, not analysis state — but a long-lived
   detector machine (a spam/flood detector survives for the whole run)
   appends to it on every packet, which is unbounded growth.  Bound it to
   the newest [hist_keep] entries, truncating amortized (only once the list
   doubles) so the steady-state cost stays one cons per transition.  The
   retained window is a pure function of the transition count, so a live
   run and a replay of its capture keep identical histories and snapshots
   stay canonical. *)
let hist_keep = 32
let hist_max = 2 * hist_keep

type outcome =
  | Moved of { transition : transition; effects : effect list; attack : string option }
  | Rejected
  | Nondeterministic of string list

let instantiate spec ~globals =
  { spec; state = spec.initial; env = Env.create globals; trace = []; trace_len = 0 }
let spec t = t.spec
let name t = t.spec.spec_name
let state t = t.state
let env t = t.env
let is_final t = List.mem t.state t.spec.finals
let in_attack_state t = List.assoc_opt t.state t.spec.attack_states

let trigger_matches trigger (event : Event.t) =
  match (trigger, event.channel) with
  | On_event n, _ -> String.equal n event.name
  | On_channel proto, Event.Data p -> String.equal proto p
  | On_channel _, (Event.Sync _ | Event.Timer) -> false
  | On_sync n, Event.Sync _ -> String.equal n event.name
  | On_sync _, (Event.Data _ | Event.Timer) -> false
  | On_timer id, Event.Timer -> String.equal id event.name
  | On_timer _, (Event.Data _ | Event.Sync _) -> false

let guard_holds transition env event =
  try transition.guard env event with Value.Type_error _ -> false

let step t event =
  let candidates =
    List.filter
      (fun tr -> String.equal tr.from_state t.state && trigger_matches tr.trigger event)
      t.spec.transitions
  in
  let enabled = List.filter (fun tr -> guard_holds tr t.env event) candidates in
  match enabled with
  | [] -> Rejected
  | [ tr ] ->
      let effects = tr.action t.env event in
      t.state <- tr.to_state;
      t.trace <- (event.Event.at, tr.label) :: t.trace;
      t.trace_len <- t.trace_len + 1;
      if t.trace_len > hist_max then begin
        t.trace <- List.filteri (fun i _ -> i < hist_keep) t.trace;
        t.trace_len <- hist_keep
      end;
      Moved { transition = tr; effects; attack = List.assoc_opt tr.to_state t.spec.attack_states }
  | many -> Nondeterministic (List.map (fun tr -> tr.label) many)

let trace t = List.rev t.trace
let configuration t = (t.state, Env.local_bindings t.env)

let restore t ~state ~vars ~trace =
  if not (List.mem state (states t.spec)) then
    Error (Printf.sprintf "%s: unknown state %S in snapshot" t.spec.spec_name state)
  else begin
    t.state <- state;
    Env.reset_locals t.env;
    List.iter (fun (name, value) -> Env.set t.env Local name value) vars;
    t.trace <- List.rev trace;
    t.trace_len <- List.length trace;
    Ok ()
  end
