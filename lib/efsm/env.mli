(** The state-variable vector [v] of an EFSM.

    Variables come in two scopes, as in the paper's Figure 2: local
    variables ([v.l_*]) belong to one machine, while global variables
    ([v.g_*]) live in a store shared by all machines of the same call, which
    is how the SIP machine hands the negotiated media endpoint to the RTP
    machine. *)

type scope = Local | Global

type globals
(** A shared global store; create one per call. *)

val globals : unit -> globals

type t

val create : globals -> t
(** Fresh local store bound to a shared global store. *)

val get : t -> scope -> string -> Value.t
(** [Value.Unset] for never-written variables. *)

val set : t -> scope -> string -> Value.t -> unit

val mem : t -> scope -> string -> bool

val local_bindings : t -> (string * Value.t) list
(** Sorted by name. *)

val global_bindings : t -> (string * Value.t) list

(** {1 Checkpoint support} *)

val reset_locals : t -> unit
(** Drops every local binding; used when restoring a machine from a
    snapshot. *)

val globals_bindings : globals -> (string * Value.t) list
(** Sorted by name, like {!local_bindings}. *)

val globals_put : globals -> string -> Value.t -> unit

val estimated_bytes : t -> int
(** Rough memory footprint of the locals (strings dominate), used by the
    fact base to report the paper's per-call memory cost. *)
