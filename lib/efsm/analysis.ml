type report = {
  reachable : string list;
  unreachable : string list;
  dead_ends : string list;
  unreachable_attacks : string list;
  finals_reachable : bool;
}

module Set = struct
  include Hashtbl

  let mem_s t s = Hashtbl.mem t s
end

let analyze (spec : Machine.spec) =
  let states = Machine.states spec in
  let successors =
    List.fold_left
      (fun acc (tr : Machine.transition) ->
        let existing = try List.assoc tr.Machine.from_state acc with Not_found -> [] in
        (tr.Machine.from_state, tr.Machine.to_state :: existing)
        :: List.remove_assoc tr.Machine.from_state acc)
      [] spec.Machine.transitions
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec visit state =
    if not (Set.mem_s seen state) then begin
      Hashtbl.replace seen state ();
      List.iter visit (try List.assoc state successors with Not_found -> [])
    end
  in
  visit spec.Machine.initial;
  let reachable = List.filter (Set.mem_s seen) states in
  let unreachable = List.filter (fun s -> not (Set.mem_s seen s)) states in
  let has_out state = List.mem_assoc state successors in
  let dead_ends =
    List.filter
      (fun s -> (not (has_out s)) && not (List.mem s spec.Machine.finals))
      reachable
  in
  let unreachable_attacks =
    List.filter
      (fun (s, _) -> not (Set.mem_s seen s))
      spec.Machine.attack_states
    |> List.map fst
  in
  let finals_reachable =
    spec.Machine.finals = [] || List.exists (Set.mem_s seen) spec.Machine.finals
  in
  { reachable; unreachable; dead_ends; unreachable_attacks; finals_reachable }
