(** Graphviz export of machine specifications, for documentation and for
    eyeballing the attack patterns against the paper's Figures 4–6. *)

val of_spec :
  ?state_notes:(string * string) list ->
  ?edge_notes:(string * string) list ->
  Machine.spec ->
  string
(** A [digraph] with the initial state marked, final states double-circled
    and attack states filled red.

    [state_notes] (state name, note) and [edge_notes] (transition label,
    note) attach verifier findings: annotated nodes/edges are outlined red
    with the note appended to their label.  Both default to empty, which
    renders exactly the plain diagram. *)
