type timer_host = {
  now : unit -> Dsim.Time.t;
  set : Dsim.Time.t -> (unit -> unit) -> Dsim.Scheduler.timer;
  cancel : Dsim.Scheduler.timer -> unit;
}

let timer_host_of_scheduler sched =
  {
    now = (fun () -> Dsim.Scheduler.now sched);
    set = (fun delay f -> Dsim.Scheduler.schedule_after sched delay f);
    cancel = Dsim.Scheduler.cancel;
  }

type notification = { machine : string; state : string; event : Event.t; detail : string }

type t = {
  timer_host : timer_host;
  on_alert : notification -> unit;
  on_anomaly : notification -> unit;
  shared : Env.globals;
  machines : (string, Machine.t) Hashtbl.t;
  sync_queue : (string * Event.t) Queue.t; (* target machine, event — FIFO across the system *)
  timers : (string * string, Dsim.Scheduler.timer) Hashtbl.t; (* (machine, timer id) *)
  mutable released : bool;
}

let create ?(on_alert = fun _ -> ()) ?(on_anomaly = fun _ -> ()) timer_host =
  {
    timer_host;
    on_alert;
    on_anomaly;
    shared = Env.globals ();
    machines = Hashtbl.create 4;
    sync_queue = Queue.create ();
    timers = Hashtbl.create 8;
    released = false;
  }

let globals t = t.shared

let add_machine t spec =
  let name = spec.Machine.spec_name in
  if Hashtbl.mem t.machines name then
    invalid_arg (Printf.sprintf "System.add_machine: duplicate machine %S" name);
  let m = Machine.instantiate spec ~globals:t.shared in
  Hashtbl.replace t.machines name m;
  m

let machine t name = Hashtbl.find_opt t.machines name
let machines t = Hashtbl.fold (fun _ m acc -> m :: acc) t.machines []

let cancel_timer t machine_name id =
  match Hashtbl.find_opt t.timers (machine_name, id) with
  | None -> ()
  | Some handle ->
      t.timer_host.cancel handle;
      Hashtbl.remove t.timers (machine_name, id)

let rec arm_timer t machine_name id ~delay =
  cancel_timer t machine_name id;
  let handle =
    t.timer_host.set delay (fun () ->
        Hashtbl.remove t.timers (machine_name, id);
        let event = Event.make Event.Timer ~at:(t.timer_host.now ()) id in
        feed t machine_name event ~is_data:false;
        drain_sync t)
  in
  Hashtbl.replace t.timers (machine_name, id) handle

and apply_effects t machine_name effects =
  List.iter
    (fun effect ->
      match effect with
      | Machine.Send_sync { target; event_name; args } ->
          let event =
            Event.make ~args (Event.Sync { from_machine = machine_name })
              ~at:(t.timer_host.now ()) event_name
          in
          Queue.add (target, event) t.sync_queue
      | Machine.Set_timer { id; delay } -> arm_timer t machine_name id ~delay
      | Machine.Cancel_timer id -> cancel_timer t machine_name id)
    effects

and feed t machine_name event ~is_data =
  match Hashtbl.find_opt t.machines machine_name with
  | None ->
      t.on_anomaly
        { machine = machine_name; state = "?"; event; detail = "no such machine in system" }
  | Some m -> (
      match Machine.step m event with
      | Machine.Moved { effects; attack; _ } -> (
          apply_effects t machine_name effects;
          match attack with
          | None -> ()
          | Some detail ->
              t.on_alert { machine = machine_name; state = Machine.state m; event; detail })
      | Machine.Rejected ->
          (* Unmatched timers and sync messages are absorbed silently (a
             machine past the relevant state no longer cares); an unmatched
             data packet is a specification deviation. *)
          if is_data then
            t.on_anomaly
              {
                machine = machine_name;
                state = Machine.state m;
                event;
                detail = "event rejected: no enabled transition";
              }
      | Machine.Nondeterministic labels ->
          t.on_anomaly
            {
              machine = machine_name;
              state = Machine.state m;
              event;
              detail =
                "nondeterministic specification: " ^ String.concat ", " labels;
            })

and drain_sync t =
  while not (Queue.is_empty t.sync_queue) do
    let target, event = Queue.take t.sync_queue in
    feed t target event ~is_data:false
  done

let inject t ~machine event =
  drain_sync t;
  feed t machine event ~is_data:true;
  drain_sync t

let queued_sync t = Queue.length t.sync_queue
let all_final t = Hashtbl.fold (fun _ m acc -> acc && Machine.is_final m) t.machines true

(* --------------------------------------------------------------- *)
(* Checkpoint support                                               *)
(* --------------------------------------------------------------- *)

let pending_sync t = List.of_seq (Queue.to_seq t.sync_queue)
let push_sync t ~target event = Queue.add (target, event) t.sync_queue

let pending_timers t =
  Hashtbl.fold
    (fun (machine, id) handle acc -> (machine, id, Dsim.Scheduler.fire_time handle) :: acc)
    t.timers []
  |> List.sort compare

let restore_timer t ~machine ~id ~fire_at =
  let now = t.timer_host.now () in
  let delay = if Dsim.Time.( > ) fire_at now then Dsim.Time.sub fire_at now else Dsim.Time.zero in
  arm_timer t machine id ~delay

let estimated_bytes t =
  Hashtbl.fold (fun _ m acc -> acc + Env.estimated_bytes (Machine.env m)) t.machines 0

let release t =
  if not t.released then begin
    Hashtbl.iter (fun _ handle -> t.timer_host.cancel handle) t.timers;
    Hashtbl.reset t.timers;
    t.released <- true
  end
