(** Communicating EFSMs (paper §4.2, Figure 2b).

    A system groups the machine instances of one call and the reliable FIFO
    synchronization queues between them.  Synchronization events waiting in
    a queue have strictly higher priority than data packet events: a data
    event is only handed to its machine once every sync queue is drained.

    Timers requested by machine actions are armed on a {!timer_host}; expiry
    re-enters the owning machine as an [Event.Timer] event. *)

type timer_host = {
  now : unit -> Dsim.Time.t;
  set : Dsim.Time.t -> (unit -> unit) -> Dsim.Scheduler.timer;
  cancel : Dsim.Scheduler.timer -> unit;
}

val timer_host_of_scheduler : Dsim.Scheduler.t -> timer_host

type notification = {
  machine : string;
  state : string;  (** State after (alerts) or at (anomalies) the event. *)
  event : Event.t;
  detail : string;
}

type t

val create :
  ?on_alert:(notification -> unit) ->
  ?on_anomaly:(notification -> unit) ->
  timer_host ->
  t
(** [on_alert] fires when a machine enters an attack state; [on_anomaly]
    when a data event is rejected (specification deviation) or a
    nondeterminism bug is detected. *)

val globals : t -> Env.globals
(** The shared global-variable store of this call's machines. *)

val add_machine : t -> Machine.spec -> Machine.t
(** Instantiates the spec bound to this system's global store.  Machine
    names must be unique within the system. *)

val machine : t -> string -> Machine.t option

val machines : t -> Machine.t list

val inject : t -> machine:string -> Event.t -> unit
(** Delivers a data event (sync queues drain first, and again after). *)

val queued_sync : t -> int
(** Outstanding synchronization events (should be 0 between injections). *)

val all_final : t -> bool

val estimated_bytes : t -> int
(** Sum of the machines' local variable footprints. *)

(** {1 Checkpoint support}

    A system's transient channel state — queued δ synchronization events and
    armed timers — must survive a checkpoint/restore cycle for recovery to
    converge with an uninterrupted run. *)

val pending_sync : t -> (string * Event.t) list
(** Queued synchronization events in FIFO order, with their target machine. *)

val push_sync : t -> target:string -> Event.t -> unit
(** Re-enqueues a synchronization event during restore (appends in call
    order, preserving FIFO). *)

val pending_timers : t -> (string * string * Dsim.Time.t) list
(** Armed timers as (machine, timer id, absolute fire time), sorted. *)

val restore_timer : t -> machine:string -> id:string -> fire_at:Dsim.Time.t -> unit
(** Re-arms a timer to fire at [fire_at] (immediately if that is already in
    the past), routing expiry to the owning machine as usual. *)

val release : t -> unit
(** Cancels all pending timers; call when the call record is deleted. *)
