type vids_mode = Inline | Monitor | Off

type t = {
  sched : Dsim.Scheduler.t;
  rng : Dsim.Rng.t;
  net : Dsim.Network.t;
  metrics : Metrics.t;
  uas_a : Ua.t list;
  uas_b : Ua.t list;
  proxy_a : Proxy.t;
  proxy_b : Proxy.t;
  proxy_a_addr : Dsim.Addr.t;
  proxy_b_addr : Dsim.Addr.t;
  cloud : Dsim.Network.node;
  vids_node : Dsim.Network.node;
  engine : Vids.Engine.t option;
}

let lan_rate = 100e6
let lan_delay = Dsim.Time.of_us 50
let ds1_rate = 1.536e6
let domain_a = "a.example"
let domain_b = "b.example"

let make ?(seed = 42) ?(n_ua = 10) ?(vids = Monitor) ?config ?(overrides = [])
    ?(loss = 0.0042) ?(wan_delay_ms = 50.0) ?(vad = false) ?(record_route = false)
    ?(auth = false) () =
  let sched = Dsim.Scheduler.create () in
  let rng = Dsim.Rng.create seed in
  let net = Dsim.Network.create sched (Dsim.Rng.split rng) in
  let metrics = Metrics.create () in
  (* --- Nodes --- *)
  let hub_a = Dsim.Network.add_node net ~name:"hubA" ~hosts:[] in
  let router_a = Dsim.Network.add_node net ~name:"routerA" ~hosts:[ "10.1.0.1" ] in
  let cloud = Dsim.Network.add_node net ~name:"cloud" ~hosts:[ "198.18.0.1" ] in
  let router_b = Dsim.Network.add_node net ~name:"routerB" ~hosts:[ "10.2.0.1" ] in
  let vids_node = Dsim.Network.add_node net ~name:"vids" ~hosts:[] in
  let hub_b = Dsim.Network.add_node net ~name:"hubB" ~hosts:[] in
  let proxy_a_host = "10.1.0.2" and proxy_b_host = "10.2.0.2" in
  let proxy_a_node = Dsim.Network.add_node net ~name:"proxyA" ~hosts:[ proxy_a_host ] in
  let proxy_b_node = Dsim.Network.add_node net ~name:"proxyB" ~hosts:[ proxy_b_host ] in
  (* --- Links (Figure 7) --- *)
  let lan a b = Dsim.Network.connect net a b ~rate_bps:lan_rate ~prop_delay:lan_delay ~loss_prob:0.0 in
  lan hub_a router_a;
  lan proxy_a_node hub_a;
  lan router_b vids_node;
  lan vids_node hub_b;
  lan proxy_b_node hub_b;
  (* The 50 ms / 0.42% Internet cloud, split across the two DS1 legs. *)
  let wan_leg = Dsim.Time.of_ms (wan_delay_ms /. 2.0) in
  let leg_loss = 1.0 -. sqrt (1.0 -. loss) in
  Dsim.Network.connect net router_a cloud ~rate_bps:ds1_rate ~prop_delay:wan_leg
    ~loss_prob:leg_loss;
  Dsim.Network.connect net cloud router_b ~rate_bps:ds1_rate ~prop_delay:wan_leg
    ~loss_prob:leg_loss;
  (* --- vIDS --- *)
  let engine =
    match vids with
    | Off -> None
    | Inline | Monitor ->
        let engine =
          match config with
          | Some c -> Vids.Engine.create ~config:c ~overrides sched
          | None -> Vids.Engine.create ~overrides sched
        in
        Dsim.Network.set_tap vids_node (Some (Vids.Engine.tap engine));
        if vids = Inline then
          Dsim.Network.set_transit_delay vids_node
            (Some (Vids.Engine.transit_delay engine));
        Some engine
  in
  (* --- SIP entities --- *)
  let proxy_a_addr = Dsim.Addr.v proxy_a_host 5060 in
  let proxy_b_addr = Dsim.Addr.v proxy_b_host 5060 in
  let dns domain =
    if String.equal domain domain_a then Some proxy_a_addr
    else if String.equal domain domain_b then Some proxy_b_addr
    else None
  in
  (* Every provisioned phone uses the default UA password scheme. *)
  let credentials username =
    if auth then Some ("pw-" ^ username) else None
  in
  let auth_store = if auth then Some credentials else None in
  let proxy_a =
    Proxy.create ~record_route ?auth:auth_store
      (Transport.create net proxy_a_node ~local:proxy_a_addr)
      ~domain:domain_a ~dns
  in
  let proxy_b =
    Proxy.create ~record_route ?auth:auth_store
      (Transport.create net proxy_b_node ~local:proxy_b_addr)
      ~domain:domain_b ~dns
  in
  Dsim.Network.set_handler proxy_a_node (Proxy.handle_packet proxy_a);
  Dsim.Network.set_handler proxy_b_node (Proxy.handle_packet proxy_b);
  let make_ua ~prefix ~subnet ~hub ~domain ~proxy i =
    let name = Printf.sprintf "%s%d" prefix (i + 1) in
    let host = Printf.sprintf "%s.%d" subnet (10 + i) in
    let node = Dsim.Network.add_node net ~name ~hosts:[ host ] in
    lan node hub;
    Ua.create net node ~name ~host ~domain ~proxy ~rng:(Dsim.Rng.split rng) ~metrics ~vad ()
  in
  let uas_a =
    List.init n_ua (make_ua ~prefix:"a" ~subnet:"10.1.0" ~hub:hub_a ~domain:domain_a
                      ~proxy:proxy_a_addr)
  in
  let uas_b =
    List.init n_ua (make_ua ~prefix:"b" ~subnet:"10.2.0" ~hub:hub_b ~domain:domain_b
                      ~proxy:proxy_b_addr)
  in
  (* Stagger registrations through the first second. *)
  List.iteri
    (fun i ua ->
      ignore
        (Dsim.Scheduler.schedule_at sched (Dsim.Time.of_ms (10.0 *. float_of_int (i + 1)))
           (fun () -> Ua.register ua)))
    (uas_a @ uas_b);
  {
    sched;
    rng;
    net;
    metrics;
    uas_a;
    uas_b;
    proxy_a;
    proxy_b;
    proxy_a_addr;
    proxy_b_addr;
    cloud;
    vids_node;
    engine;
  }

let engine_exn t =
  match t.engine with Some e -> e | None -> failwith "Testbed: vIDS is off in this run"

let ua_b_uris t =
  Array.of_list (List.map (fun ua -> Ua.aor ua) t.uas_b)

let ua_b_host t i = Dsim.Addr.host (Ua.addr (List.nth t.uas_b i))

let attacker t ~host =
  let node = Dsim.Network.add_node t.net ~name:("attacker-" ^ host) ~hosts:[ host ] in
  Dsim.Network.connect t.net node t.cloud ~rate_bps:lan_rate ~prop_delay:(Dsim.Time.of_ms 5.0)
    ~loss_prob:0.0;
  (node, Transport.create t.net node ~local:(Dsim.Addr.v host 5060))

(* A compromised host behind the sensor: traffic to other B hosts never
   crosses the vIDS node, demonstrating the placement blind spot. *)
let inside_b_attacker t ~host =
  let node = Dsim.Network.add_node t.net ~name:("insider-" ^ host) ~hosts:[ host ] in
  let proxy_b_node =
    match Dsim.Network.find_node t.net ~host:"10.2.0.2" with
    | Some n -> n
    | None -> failwith "Testbed: proxy B node missing"
  in
  Dsim.Network.connect t.net node proxy_b_node ~rate_bps:lan_rate ~prop_delay:lan_delay
    ~loss_prob:0.0;
  (node, Transport.create t.net node ~local:(Dsim.Addr.v host 5060))

let run_until t time = Dsim.Scheduler.run_until t.sched time

let run_workload t ?(profile = Call_generator.default_profile) ~duration () =
  Call_generator.start t.sched (Dsim.Rng.split t.rng) ~callers:t.uas_a
    ~callees:(ua_b_uris t) ~metrics:t.metrics ~profile ~until:duration;
  (* Drain: let calls started near the end complete. *)
  let drain = Dsim.Time.of_sec 600.0 in
  run_until t (Dsim.Time.add duration drain)
