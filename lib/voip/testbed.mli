(** The paper's Figure 7 topology, as a ready-to-run simulation.

    Two enterprise networks of [n_ua] UAs and one SIP proxy each, 100BaseT
    LANs behind edge routers, DS1 uplinks to an Internet cloud with 50 ms
    one-way delay and 0.42% end-to-end loss, and the vIDS host placed
    between network B's edge router and its hub so all traffic entering or
    leaving B crosses it.  Voice is G.729. *)

type vids_mode =
  | Inline  (** vIDS forwards traffic and adds processing latency (§7.2). *)
  | Monitor  (** vIDS sees all traffic but adds no delay. *)
  | Off  (** The host forwards blindly — the paper's "without vIDS". *)

type t = {
  sched : Dsim.Scheduler.t;
  rng : Dsim.Rng.t;
  net : Dsim.Network.t;
  metrics : Metrics.t;
  uas_a : Ua.t list;
  uas_b : Ua.t list;
  proxy_a : Proxy.t;
  proxy_b : Proxy.t;
  proxy_a_addr : Dsim.Addr.t;
  proxy_b_addr : Dsim.Addr.t;
  cloud : Dsim.Network.node;
  vids_node : Dsim.Network.node;
  engine : Vids.Engine.t option;
}

val make :
  ?seed:int ->
  ?n_ua:int ->
  ?vids:vids_mode ->
  ?config:Vids.Config.t ->
  ?overrides:(string * Efsm.Machine.spec) list ->
  ?loss:float ->
  ?wan_delay_ms:float ->
  ?vad:bool ->
  ?record_route:bool ->
  ?auth:bool ->
  unit ->
  t
(** Builds the network and registers every UA (registration packets are
    scheduled in the first simulated second).  [vad] enables
    speech-activity detection on every UA (the paper's G.729 configuration
    has SAD enabled); off by default so packet counts stay deterministic
    for the calibrated cost model.  [record_route] keeps in-dialog
    signaling on the proxy path instead of going direct between UAs.
    [auth] makes both registrars challenge REGISTERs with digest
    authentication (the prevention the paper's threat model assumes
    absent). *)

val engine_exn : t -> Vids.Engine.t

val ua_b_uris : t -> Sip.Uri.t array
(** AORs of network B's phones — the callees of the standard workload. *)

val ua_b_host : t -> int -> string
(** IP address of network B's i-th UA (0-based). *)

val attacker : t -> host:string -> Dsim.Network.node * Transport.t
(** Attaches a host on the Internet side of the cloud; its traffic to
    network B crosses the vIDS host. *)

val inside_b_attacker : t -> host:string -> Dsim.Network.node * Transport.t
(** A compromised host inside network B (behind the sensor) — used to show
    placement blind spots. *)

val run_workload :
  t -> ?profile:Call_generator.profile -> duration:Dsim.Time.t -> unit -> unit
(** Starts the Figure-8 workload on network A's UAs and runs the scheduler
    until [duration] plus a drain period. *)

val run_until : t -> Dsim.Time.t -> unit
