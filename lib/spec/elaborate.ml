module I = Efsm.Ir
module M = Efsm.Machine
module V = Efsm.Value

type externs = {
  find_pred : string -> I.opaque_pred option;
  find_act : string -> M.effect I.opaque_act option;
}

let no_externs = { find_pred = (fun _ -> None); find_act = (fun _ -> None) }

type elaborated = {
  el_spec : M.spec;
  el_vars : I.decl list;
  el_state_spans : (string * Loc.span) list;
  el_trans_spans : (string * Loc.span) list;
}

let value_of_lit = function
  | Ast.L_int n -> V.Int n
  | Ast.L_str s -> V.Str s
  | Ast.L_bool b -> V.Bool b
  | Ast.L_unset -> V.Unset

let domain_of_ty = function
  | Ast.T_int -> I.D_int
  | Ast.T_bool -> I.D_bool
  | Ast.T_str -> I.D_str
  | Ast.T_addr -> I.D_addr
  | Ast.T_enum lits -> I.D_enum (List.map value_of_lit lits)

(* Syntactic classification: which IR fragment does an expression in
   value position elaborate into? *)

let is_int_shaped (e : Ast.exp) =
  match e.Ast.e with
  | Ast.Bin ((Ast.B_add | Ast.B_sub), _, _) -> true
  | Ast.Call (("int" | "int0"), _) -> true
  | _ -> false

let is_pred_shaped (e : Ast.exp) =
  match e.Ast.e with
  | Ast.Not _ | Ast.In_set _ | Ast.Extern_ref _ -> true
  | Ast.Bin
      ( ( Ast.B_and | Ast.B_or | Ast.B_eq | Ast.B_ne | Ast.B_lt | Ast.B_le | Ast.B_gt
        | Ast.B_ge | Ast.B_ieq | Ast.B_ine ),
        _,
        _ ) ->
      true
  | Ast.Call ("has", _) -> true
  | _ -> false

type env = { externs : externs; scope_of : string -> Efsm.Env.scope }

(* Left-associative chains of the same operator flatten back into the
   n-ary [And]/[Or] the builtin specs use, so [a && b && c] elaborates
   to [And [a; b; c]], not [And [And [a; b]; c]]. *)
let rec flatten op (e : Ast.exp) acc =
  match e.Ast.e with
  | Ast.Bin (o, a, b) when o = op -> flatten op a (b :: acc)
  | _ -> e :: acc

let rec elab_pred env (e : Ast.exp) : I.pred =
  match e.Ast.e with
  | Ast.Lit (Ast.L_bool true) -> I.True
  | Ast.Lit (Ast.L_bool false) -> I.False
  | Ast.Not e -> I.Not (elab_pred env e)
  | Ast.Bin (Ast.B_and, _, _) ->
      I.And (List.map (elab_pred env) (flatten Ast.B_and e []))
  | Ast.Bin (Ast.B_or, _, _) -> I.Or (List.map (elab_pred env) (flatten Ast.B_or e []))
  | Ast.Bin (Ast.B_eq, a, b) -> I.Eq (elab_expr env a, elab_expr env b)
  | Ast.Bin (Ast.B_ne, a, b) -> I.Not (I.Eq (elab_expr env a, elab_expr env b))
  | Ast.Bin (Ast.B_lt, a, b) -> I.Cmp (I.Lt, elab_iexpr env a, elab_iexpr env b)
  | Ast.Bin (Ast.B_le, a, b) -> I.Cmp (I.Le, elab_iexpr env a, elab_iexpr env b)
  | Ast.Bin (Ast.B_gt, a, b) -> I.Cmp (I.Gt, elab_iexpr env a, elab_iexpr env b)
  | Ast.Bin (Ast.B_ge, a, b) -> I.Cmp (I.Ge, elab_iexpr env a, elab_iexpr env b)
  | Ast.Bin (Ast.B_ieq, a, b) -> I.Cmp (I.Ieq, elab_iexpr env a, elab_iexpr env b)
  | Ast.Bin (Ast.B_ine, a, b) -> I.Cmp (I.Ine, elab_iexpr env a, elab_iexpr env b)
  | Ast.In_set (e, lits) -> I.Member (elab_expr env e, List.map value_of_lit lits)
  | Ast.Call ("has", [ { Ast.e = Ast.Fieldref f; _ } ]) -> I.Has_field f
  | Ast.Extern_ref name -> (
      match env.externs.find_pred name with Some o -> I.Opaque o | None -> I.False)
  | _ -> I.False

and elab_iexpr env (e : Ast.exp) : I.iexpr =
  match e.Ast.e with
  | Ast.Lit (Ast.L_int n) -> I.Int_const n
  | Ast.Call ("int", [ a ]) -> I.Int_of (elab_expr env a)
  | Ast.Call ("int0", [ a ]) -> I.Int_or0 (elab_expr env a)
  | Ast.Bin (Ast.B_add, a, b) -> I.Add (elab_iexpr env a, elab_iexpr env b)
  | Ast.Bin (Ast.B_sub, a, b) -> I.Sub (elab_iexpr env a, elab_iexpr env b)
  | _ -> I.Int_const 0

and elab_expr env (e : Ast.exp) : I.expr =
  match e.Ast.e with
  | Ast.Lit l -> I.Const (value_of_lit l)
  | Ast.Ident name -> I.Var (env.scope_of name, name)
  | Ast.Fieldref f -> I.Field f
  | Ast.Call ("addr", [ h; p ]) -> I.Mk_addr (elab_expr env h, elab_expr env p)
  | Ast.Call ("host", [ a ]) -> I.Addr_host (elab_expr env a)
  | _ when is_int_shaped e -> I.Of_int (elab_iexpr env e)
  | _ when is_pred_shaped e -> I.Of_pred (elab_pred env e)
  | _ -> I.Const V.Unset

let rec elab_act env (act : Ast.act) : M.effect I.act list =
  match act.Ast.a with
  | Ast.Assign (name, e) -> [ I.Assign ((env.scope_of name, name), elab_expr env e) ]
  | Ast.If (p, then_acts, else_acts) ->
      [ I.If (elab_pred env p, elab_acts env then_acts, elab_acts env else_acts) ]
  | Ast.Sync { target; event; args } ->
      [
        I.Send_sync
          {
            target;
            event_name = event;
            args = List.map (fun (k, e) -> (k, elab_expr env e)) args;
          };
      ]
  | Ast.Set_timer (id, us) -> [ I.Set_timer { id; delay = us } ]
  | Ast.Cancel_timer id -> [ I.Cancel_timer id ]
  | Ast.Extern_act name -> (
      match env.externs.find_act name with Some o -> [ I.Opaque_act o ] | None -> [])

and elab_acts env acts = List.concat_map (elab_act env) acts

let trigger_of = function
  | Ast.Tg_event, name -> M.On_event name
  | Ast.Tg_channel, name -> M.On_channel name
  | Ast.Tg_sync, name -> M.On_sync name
  | Ast.Tg_timer, name -> M.On_timer name

let machine ~externs (m : Ast.machine) =
  let decls =
    List.filter_map
      (function
        | Ast.I_var { v_name; v_scope; v_ty; _ } ->
            let scope =
              match v_scope with
              | Ast.S_local -> Efsm.Env.Local
              | Ast.S_global -> Efsm.Env.Global
            in
            Some ((scope, v_name), domain_of_ty v_ty)
        | _ -> None)
      m.Ast.m_items
  in
  let scope_of name =
    match List.find_opt (fun ((_, n), _) -> String.equal n name) decls with
    | Some ((scope, _), _) -> scope
    | None -> Efsm.Env.Local
  in
  let env = { externs; scope_of } in
  let initial =
    match
      List.find_map (function Ast.I_initial (s, _) -> Some s | _ -> None) m.Ast.m_items
    with
    | Some s -> s
    | None -> "INIT"
  in
  let finals =
    List.concat_map
      (function Ast.I_final states -> List.map fst states | _ -> [])
      m.Ast.m_items
  in
  let attacks =
    List.filter_map
      (function
        | Ast.I_attack { at_state; at_desc; _ } -> Some (at_state, at_desc) | _ -> None)
      m.Ast.m_items
  in
  let transitions =
    List.filter_map
      (function
        | Ast.I_trans t ->
            Some
              (M.ir_transition
                 ?guard:(Option.map (elab_pred env) t.Ast.t_guard)
                 ~acts:(elab_acts env t.Ast.t_acts) ~label:t.Ast.t_label
                 ~from_state:t.Ast.t_from
                 (trigger_of t.Ast.t_trigger)
                 ~to_state:t.Ast.t_to ())
        | _ -> None)
      m.Ast.m_items
  in
  (* First textual mention of each state anchors verifier findings. *)
  let state_spans =
    let add acc (name, span) = if List.mem_assoc name acc then acc else (name, span) :: acc in
    List.fold_left
      (fun acc item ->
        match item with
        | Ast.I_initial (s, sp) -> add acc (s, sp)
        | Ast.I_final states -> List.fold_left add acc states
        | Ast.I_attack { at_state; at_span; _ } -> add acc (at_state, at_span)
        | Ast.I_trans t -> add (add acc (t.Ast.t_from, t.Ast.t_span)) (t.Ast.t_to, t.Ast.t_span)
        | Ast.I_var _ -> acc)
      [] m.Ast.m_items
    |> List.rev
  in
  let trans_spans =
    List.filter_map
      (function Ast.I_trans t -> Some (t.Ast.t_label, t.Ast.t_span) | _ -> None)
      m.Ast.m_items
  in
  {
    el_spec =
      {
        M.spec_name = m.Ast.m_name;
        initial;
        finals;
        attack_states = attacks;
        transitions;
      };
    el_vars = decls;
    el_state_spans = state_spans;
    el_trans_spans = trans_spans;
  }
