(** Recursive-descent parser for [.vspec] text.

    Never raises: grammar violations become [Diag.Parse] diagnostics and
    the parser resynchronizes at the next [;] or [}], so one typo does
    not hide the rest of the file's defects.  See DESIGN.md §13 for the
    grammar. *)

val parse : file:string -> string -> Ast.file * Diag.t list
(** Lexes and parses [.vspec] source.  The AST is whatever could be
    recovered; callers must treat it as meaningful only when the
    diagnostic list carries no errors. *)
