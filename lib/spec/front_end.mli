(** The [.vspec] front end: parse, check, elaborate.

    One call takes raw sources and returns loaded machines plus every
    diagnostic collected along the way.  Machines whose own checks fail
    are not elaborated; clean machines still load, so one broken file in
    a batch does not hide the others.  Never raises on bad input. *)

type loaded = {
  l_file : string;  (** Source file the machine came from. *)
  l_name : string;  (** [spec_name], e.g. ["SIP"]. *)
  l_spec : Efsm.Machine.spec;
  l_vars : Efsm.Ir.decl list;
  l_state_spans : (string * Loc.span) list;
  l_trans_spans : (string * Loc.span) list;
}

val load_sources :
  ?known_machines:string list ->
  externs:Elaborate.externs ->
  (string * string) list ->
  loaded list * Diag.t list
(** [(filename, source)] pairs.  Machines defined anywhere in the batch
    are valid sync targets everywhere in it, on top of
    [known_machines].  Elaborated specs additionally pass through
    {!Efsm.Machine.validate_spec}; a failure is reported as a
    [Diag.Structure] error and the machine is dropped. *)

val load_string :
  ?known_machines:string list ->
  externs:Elaborate.externs ->
  file:string ->
  string ->
  loaded list * Diag.t list

val read_file : string -> (string, string) result
(** Whole-file read; [Error] carries a printable message. *)

val load_files :
  ?known_machines:string list ->
  externs:Elaborate.externs ->
  string list ->
  (loaded list * Diag.t list * (string * string) list, string) result
(** Reads and loads each path.  The third component returns the sources
    for caret-snippet rendering.  [Error] only for I/O failures. *)

val span_for :
  loaded list -> machine:string -> state:string option -> transition:string option ->
  Loc.span option
(** Maps a verifier finding's coordinates back into [.vspec] source: the
    transition's declaration site when a label is given (compound
    ["a/b"] determinism labels resolve to the first), otherwise the
    state's first mention. *)
