(** Name-and-type resolution over the parsed AST.

    Validates everything the elaborator will rely on — declared
    variables, operator typing over the {!Efsm.Ir} linear-int/value
    fragment, duplicate states and labels, sync targets, extern
    references, enum domains — and reports each defect as a positioned
    {!Diag.t}.  Never raises. *)

val machine :
  known_machines:string list ->
  externs:Elaborate.externs ->
  Ast.machine ->
  Diag.t list

val file :
  known_machines:string list ->
  externs:Elaborate.externs ->
  Ast.file ->
  Diag.t list
(** Checks every machine; machines defined in the file are themselves
    valid sync targets in addition to [known_machines]. *)
