(* Positioned surface syntax for [.vspec] machine specifications.

   The AST is deliberately untyped and context-free: one expression form
   covers predicate, value and integer positions, and [Check] decides
   which {!Efsm.Ir} fragment each node elaborates into.  Every node
   carries the span of the text it was parsed from; machine-emitted
   trees ([Printer.of_machine]) carry [Loc.dummy]. *)

type lit =
  | L_int of int
  | L_str of string
  | L_bool of bool
  | L_unset

(* Variable domains; mirrors [Efsm.Ir.domain]. *)
type ty = T_int | T_bool | T_str | T_addr | T_enum of lit list

type binop =
  | B_and
  | B_or
  | B_eq  (* ==  structural value equality          -> Ir.Eq        *)
  | B_ne  (* !=                                     -> Ir.Not Eq    *)
  | B_lt  (* <   integer comparisons                -> Ir.Cmp       *)
  | B_le  (* <=                                                     *)
  | B_gt  (* >                                                      *)
  | B_ge  (* >=                                                     *)
  | B_ieq (* =   integer equality                   -> Ir.Cmp Ieq   *)
  | B_ine (* <>                                     -> Ir.Cmp Ine   *)
  | B_add (* +   integer arithmetic                 -> Ir.Add       *)
  | B_sub (* -                                      -> Ir.Sub       *)

type exp = { e : exp_node; e_span : Loc.span }

and exp_node =
  | Lit of lit
  | Ident of string  (* declared variable; scope resolved by Check *)
  | Fieldref of string  (* $name: event field *)
  | Call of string * exp list  (* addr/2 host/1 int/1 int0/1 has/1 *)
  | Extern_ref of string  (* opaque predicate escape hatch *)
  | Not of exp
  | Bin of binop * exp * exp
  | In_set of exp * lit list

type act = { a : act_node; a_span : Loc.span }

and act_node =
  | Assign of string * exp
  | If of exp * act list * act list
  | Sync of { target : string; event : string; args : (string * exp) list }
  | Set_timer of string * int  (* delay in microseconds (Dsim.Time.t) *)
  | Cancel_timer of string
  | Extern_act of string

type trigger_kind = Tg_event | Tg_channel | Tg_sync | Tg_timer

type trans = {
  t_label : string;
  t_from : string;
  t_to : string;
  t_trigger : trigger_kind * string;
  t_guard : exp option;
  t_acts : act list;
  t_span : Loc.span;  (* the label token: where findings point *)
}

type scope = S_local | S_global

type item =
  | I_var of { v_name : string; v_scope : scope; v_ty : ty; v_span : Loc.span }
  | I_initial of string * Loc.span
  | I_final of (string * Loc.span) list
  | I_attack of { at_state : string; at_desc : string; at_span : Loc.span }
  | I_trans of trans

type machine = { m_name : string; m_items : item list; m_span : Loc.span }

type file = machine list

(* Structural equality ignoring spans — the contract the round-trip
   property (parse . print = id) is stated against. *)

let equal_lit (a : lit) (b : lit) = a = b

let equal_ty (a : ty) (b : ty) = a = b

let rec equal_exp a b =
  match (a.e, b.e) with
  | Lit x, Lit y -> equal_lit x y
  | Ident x, Ident y | Fieldref x, Fieldref y | Extern_ref x, Extern_ref y ->
      String.equal x y
  | Call (f, xs), Call (g, ys) ->
      String.equal f g && List.length xs = List.length ys && List.for_all2 equal_exp xs ys
  | Not x, Not y -> equal_exp x y
  | Bin (o, x1, x2), Bin (p, y1, y2) -> o = p && equal_exp x1 y1 && equal_exp x2 y2
  | In_set (x, xs), In_set (y, ys) -> equal_exp x y && xs = ys
  | _ -> false

let rec equal_act a b =
  match (a.a, b.a) with
  | Assign (x, e1), Assign (y, e2) -> String.equal x y && equal_exp e1 e2
  | If (p, t1, f1), If (q, t2, f2) ->
      equal_exp p q && equal_acts t1 t2 && equal_acts f1 f2
  | Sync s1, Sync s2 ->
      String.equal s1.target s2.target
      && String.equal s1.event s2.event
      && List.length s1.args = List.length s2.args
      && List.for_all2
           (fun (k1, e1) (k2, e2) -> String.equal k1 k2 && equal_exp e1 e2)
           s1.args s2.args
  | Set_timer (i, d), Set_timer (j, e) -> String.equal i j && d = e
  | Cancel_timer i, Cancel_timer j -> String.equal i j
  | Extern_act i, Extern_act j -> String.equal i j
  | _ -> false

and equal_acts a b = List.length a = List.length b && List.for_all2 equal_act a b

let equal_trans (a : trans) (b : trans) =
  String.equal a.t_label b.t_label
  && String.equal a.t_from b.t_from
  && String.equal a.t_to b.t_to
  && a.t_trigger = b.t_trigger
  && (match (a.t_guard, b.t_guard) with
     | None, None -> true
     | Some x, Some y -> equal_exp x y
     | _ -> false)
  && equal_acts a.t_acts b.t_acts

let equal_item a b =
  match (a, b) with
  | I_var x, I_var y ->
      String.equal x.v_name y.v_name && x.v_scope = y.v_scope && equal_ty x.v_ty y.v_ty
  | I_initial (x, _), I_initial (y, _) -> String.equal x y
  | I_final xs, I_final ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (x, _) (y, _) -> String.equal x y) xs ys
  | I_attack x, I_attack y ->
      String.equal x.at_state y.at_state && String.equal x.at_desc y.at_desc
  | I_trans x, I_trans y -> equal_trans x y
  | _ -> false

let equal_machine a b =
  String.equal a.m_name b.m_name
  && List.length a.m_items = List.length b.m_items
  && List.for_all2 equal_item a.m_items b.m_items

let equal_file a b = List.length a = List.length b && List.for_all2 equal_machine a b
