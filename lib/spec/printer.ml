module I = Efsm.Ir
module M = Efsm.Machine

exception Unprintable of string

(* ------------------------------------------------------------------ *)
(* Canonical printing                                                  *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_lit = function
  | Ast.L_int n -> string_of_int n
  | Ast.L_str s -> Printf.sprintf "\"%s\"" (escape s)
  | Ast.L_bool true -> "true"
  | Ast.L_bool false -> "false"
  | Ast.L_unset -> "unset"

let print_ty = function
  | Ast.T_int -> "int"
  | Ast.T_bool -> "bool"
  | Ast.T_str -> "string"
  | Ast.T_addr -> "addr"
  | Ast.T_enum lits ->
      Printf.sprintf "enum { %s }" (String.concat ", " (List.map print_lit lits))

let binop_symbol = function
  | Ast.B_and -> "&&"
  | Ast.B_or -> "||"
  | Ast.B_eq -> "=="
  | Ast.B_ne -> "!="
  | Ast.B_lt -> "<"
  | Ast.B_le -> "<="
  | Ast.B_gt -> ">"
  | Ast.B_ge -> ">="
  | Ast.B_ieq -> "="
  | Ast.B_ine -> "<>"
  | Ast.B_add -> "+"
  | Ast.B_sub -> "-"

(* Operator layers, mirroring the parser: higher binds tighter. *)
let binop_prec = function
  | Ast.B_or -> 1
  | Ast.B_and -> 2
  | Ast.B_eq | Ast.B_ne | Ast.B_lt | Ast.B_le | Ast.B_gt | Ast.B_ge | Ast.B_ieq
  | Ast.B_ine ->
      3
  | Ast.B_add | Ast.B_sub -> 4

let prec (e : Ast.exp) =
  match e.Ast.e with
  | Ast.Bin (op, _, _) -> binop_prec op
  | Ast.In_set _ -> 3
  | Ast.Not _ -> 5
  | Ast.Lit _ | Ast.Ident _ | Ast.Fieldref _ | Ast.Call _ | Ast.Extern_ref _ -> 6

let rec print_at level e =
  let s = print_node e in
  if prec e < level then "(" ^ s ^ ")" else s

and print_node (e : Ast.exp) =
  match e.Ast.e with
  | Ast.Lit l -> print_lit l
  | Ast.Ident n -> n
  | Ast.Fieldref f -> "$" ^ f
  | Ast.Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map (print_at 1) args))
  | Ast.Extern_ref n -> "extern " ^ n
  | Ast.Not e -> "!" ^ print_at 5 e
  | Ast.Bin (op, a, b) ->
      let p = binop_prec op in
      (* Left-associative: the left child may sit at the same level, the
         right child must bind tighter.  Comparisons are non-associative:
         both sides must bind tighter. *)
      let left_level = if p = 3 then p + 1 else p in
      Printf.sprintf "%s %s %s" (print_at left_level a) (binop_symbol op)
        (print_at (p + 1) b)
  | Ast.In_set (e, lits) ->
      Printf.sprintf "%s in { %s }" (print_at 4 e)
        (String.concat ", " (List.map print_lit lits))

let print_exp e = print_at 1 e

let print_duration us =
  if us mod 1_000_000 = 0 then Printf.sprintf "%ds" (us / 1_000_000)
  else if us mod 1_000 = 0 then Printf.sprintf "%dms" (us / 1_000)
  else Printf.sprintf "%dus" us

let rec print_act buf indent (act : Ast.act) =
  let pad = String.make indent ' ' in
  match act.Ast.a with
  | Ast.Assign (n, e) -> Buffer.add_string buf (Printf.sprintf "%s%s := %s;\n" pad n (print_exp e))
  | Ast.If (p, then_acts, else_acts) ->
      Buffer.add_string buf (Printf.sprintf "%sif %s {\n" pad (print_exp p));
      List.iter (print_act buf (indent + 2)) then_acts;
      if else_acts <> [] then begin
        Buffer.add_string buf (pad ^ "} else {\n");
        List.iter (print_act buf (indent + 2)) else_acts
      end;
      Buffer.add_string buf (pad ^ "}\n")
  | Ast.Sync { target; event; args } ->
      Buffer.add_string buf
        (Printf.sprintf "%ssync %s.%s(%s);\n" pad target event
           (String.concat ", "
              (List.map (fun (k, e) -> Printf.sprintf "%s: %s" k (print_exp e)) args)))
  | Ast.Set_timer (id, us) ->
      Buffer.add_string buf (Printf.sprintf "%sset_timer %s %s;\n" pad id (print_duration us))
  | Ast.Cancel_timer id -> Buffer.add_string buf (Printf.sprintf "%scancel_timer %s;\n" pad id)
  | Ast.Extern_act n -> Buffer.add_string buf (Printf.sprintf "%sextern %s;\n" pad n)

let trigger_keyword = function
  | Ast.Tg_event -> "event"
  | Ast.Tg_channel -> "channel"
  | Ast.Tg_sync -> "sync"
  | Ast.Tg_timer -> "timer"

let print_trans buf (t : Ast.trans) =
  let kind, name = t.Ast.t_trigger in
  Buffer.add_string buf
    (Printf.sprintf "  trans %s : %s -> %s on %s %s" t.Ast.t_label t.Ast.t_from t.Ast.t_to
       (trigger_keyword kind) name);
  (match t.Ast.t_guard with
  | None -> ()
  | Some g -> Buffer.add_string buf (Printf.sprintf "\n    when %s" (print_exp g)));
  if t.Ast.t_acts = [] then Buffer.add_string buf ";\n"
  else begin
    Buffer.add_string buf "\n    do {\n";
    List.iter (print_act buf 6) t.Ast.t_acts;
    Buffer.add_string buf "    }\n"
  end

let print_item buf = function
  | Ast.I_var { v_name; v_scope; v_ty; _ } ->
      Buffer.add_string buf
        (Printf.sprintf "  %s %s : %s;\n"
           (match v_scope with Ast.S_local -> "var" | Ast.S_global -> "global")
           v_name (print_ty v_ty))
  | Ast.I_initial (s, _) -> Buffer.add_string buf (Printf.sprintf "  initial %s;\n" s)
  | Ast.I_final states ->
      Buffer.add_string buf
        (Printf.sprintf "  final %s;\n" (String.concat ", " (List.map fst states)))
  | Ast.I_attack { at_state; at_desc; _ } ->
      Buffer.add_string buf
        (Printf.sprintf "  attack %s \"%s\";\n" at_state (escape at_desc))
  | Ast.I_trans t -> print_trans buf t

let print_machine (m : Ast.machine) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "machine %s {\n" m.Ast.m_name);
  (* A blank line before the first transition separates the declaration
     header from the transition table. *)
  let seen_trans = ref false in
  List.iter
    (fun item ->
      (match item with
      | Ast.I_trans _ when not !seen_trans ->
          seen_trans := true;
          Buffer.add_char buf '\n'
      | _ -> ());
      print_item buf item)
    m.Ast.m_items;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let print_file machines = String.concat "\n" (List.map print_machine machines)

(* ------------------------------------------------------------------ *)
(* Unelaboration: Efsm.Machine.spec -> Ast                             *)
(* ------------------------------------------------------------------ *)

let dummy e = { Ast.e; e_span = Loc.dummy }

let dummy_act a = { Ast.a; a_span = Loc.dummy }

let lit_of_value = function
  | Efsm.Value.Int n -> Ast.L_int n
  | Efsm.Value.Str s -> Ast.L_str s
  | Efsm.Value.Bool b -> Ast.L_bool b
  | Efsm.Value.Unset -> Ast.L_unset
  | Efsm.Value.Float _ -> raise (Unprintable "float constants have no surface syntax")
  | Efsm.Value.Addr _ -> raise (Unprintable "use addr(host, port) instead of address constants")

let cmp_op = function
  | I.Lt -> Ast.B_lt
  | I.Le -> Ast.B_le
  | I.Gt -> Ast.B_gt
  | I.Ge -> Ast.B_ge
  | I.Ieq -> Ast.B_ieq
  | I.Ine -> Ast.B_ine

let left_chain op = function
  | [] -> dummy (Ast.Lit (Ast.L_bool (op = Ast.B_and)))
  | first :: rest -> List.fold_left (fun acc e -> dummy (Ast.Bin (op, acc, e))) first rest

let rec exp_of_pred = function
  | I.True -> dummy (Ast.Lit (Ast.L_bool true))
  | I.False -> dummy (Ast.Lit (Ast.L_bool false))
  | I.Not p -> dummy (Ast.Not (exp_of_pred p))
  | I.And ps -> left_chain Ast.B_and (List.map exp_of_pred ps)
  | I.Or ps -> left_chain Ast.B_or (List.map exp_of_pred ps)
  | I.Eq (a, b) -> dummy (Ast.Bin (Ast.B_eq, exp_of_expr a, exp_of_expr b))
  | I.Member (e, vs) -> dummy (Ast.In_set (exp_of_expr e, List.map lit_of_value vs))
  | I.Cmp (c, a, b) -> dummy (Ast.Bin (cmp_op c, exp_of_iexpr a, exp_of_iexpr b))
  | I.Has_field f -> dummy (Ast.Call ("has", [ dummy (Ast.Fieldref f) ]))
  | I.Opaque o -> dummy (Ast.Extern_ref o.I.pred_name)

and exp_of_expr = function
  | I.Const v -> (
      match v with
      | Efsm.Value.Addr (h, p) ->
          dummy
            (Ast.Call
               ("addr", [ dummy (Ast.Lit (Ast.L_str h)); dummy (Ast.Lit (Ast.L_int p)) ]))
      | v -> dummy (Ast.Lit (lit_of_value v)))
  | I.Var (_, name) -> dummy (Ast.Ident name)
  | I.Field f -> dummy (Ast.Fieldref f)
  | I.Mk_addr (h, p) -> dummy (Ast.Call ("addr", [ exp_of_expr h; exp_of_expr p ]))
  | I.Addr_host e -> dummy (Ast.Call ("host", [ exp_of_expr e ]))
  | I.Of_int ie -> exp_of_iexpr ie
  | I.Of_pred p -> exp_of_pred p

and exp_of_iexpr = function
  | I.Int_const n -> dummy (Ast.Lit (Ast.L_int n))
  | I.Int_of e -> dummy (Ast.Call ("int", [ exp_of_expr e ]))
  | I.Int_or0 e -> dummy (Ast.Call ("int0", [ exp_of_expr e ]))
  | I.Add (a, b) -> dummy (Ast.Bin (Ast.B_add, exp_of_iexpr a, exp_of_iexpr b))
  | I.Sub (a, b) -> dummy (Ast.Bin (Ast.B_sub, exp_of_iexpr a, exp_of_iexpr b))

let rec act_of = function
  | I.Assign ((_, name), e) -> dummy_act (Ast.Assign (name, exp_of_expr e))
  | I.If (p, then_acts, else_acts) ->
      dummy_act (Ast.If (exp_of_pred p, List.map act_of then_acts, List.map act_of else_acts))
  | I.Send_sync { target; event_name; args } ->
      dummy_act
        (Ast.Sync
           {
             target;
             event = event_name;
             args = List.map (fun (k, e) -> (k, exp_of_expr e)) args;
           })
  | I.Set_timer { id; delay } -> dummy_act (Ast.Set_timer (id, delay))
  | I.Cancel_timer id -> dummy_act (Ast.Cancel_timer id)
  | I.Opaque_act o -> dummy_act (Ast.Extern_act o.I.act_name)

let ty_of_domain = function
  | I.D_int -> Ast.T_int
  | I.D_bool -> Ast.T_bool
  | I.D_str -> Ast.T_str
  | I.D_addr -> Ast.T_addr
  | I.D_enum vs -> Ast.T_enum (List.map lit_of_value vs)

let trigger_of = function
  | M.On_event name -> (Ast.Tg_event, name)
  | M.On_channel name -> (Ast.Tg_channel, name)
  | M.On_sync name -> (Ast.Tg_sync, name)
  | M.On_timer name -> (Ast.Tg_timer, name)

let trans_of (t : M.transition) =
  match t.M.syntax with
  | None ->
      raise
        (Unprintable
           (Printf.sprintf "transition %s is built from raw closures (no IR syntax)"
              t.M.label))
  | Some { I.guard; acts } ->
      {
        Ast.t_label = t.M.label;
        t_from = t.M.from_state;
        t_to = t.M.to_state;
        t_trigger = trigger_of t.M.trigger;
        t_guard = (match guard with I.True -> None | g -> Some (exp_of_pred g));
        t_acts = List.map act_of acts;
        t_span = Loc.dummy;
      }

let of_machine (spec : M.spec) (decls : I.decl list) =
  let var_items =
    List.map
      (fun ((scope, name), domain) ->
        Ast.I_var
          {
            v_name = name;
            v_scope = (match scope with Efsm.Env.Local -> Ast.S_local | Efsm.Env.Global -> Ast.S_global);
            v_ty = ty_of_domain domain;
            v_span = Loc.dummy;
          })
      decls
  in
  let header =
    [ Ast.I_initial (spec.M.initial, Loc.dummy) ]
    @ (match spec.M.finals with
      | [] -> []
      | finals -> [ Ast.I_final (List.map (fun s -> (s, Loc.dummy)) finals) ])
    @ List.map
        (fun (state, desc) -> Ast.I_attack { at_state = state; at_desc = desc; at_span = Loc.dummy })
        spec.M.attack_states
  in
  let transitions = List.map (fun t -> Ast.I_trans (trans_of t)) spec.M.transitions in
  { Ast.m_name = spec.M.spec_name; m_items = var_items @ header @ transitions; m_span = Loc.dummy }
