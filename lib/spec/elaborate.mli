(** Lowering checked ASTs into {!Efsm.Ir} transitions.

    The elaborator is syntax-directed and total: it assumes {!Check}
    already rejected ill-formed input, and maps anything unexpected to a
    harmless default (an unresolvable guard becomes [Ir.False], an
    unresolvable action is dropped) instead of raising.  Transitions are
    built with {!Efsm.Machine.ir_transition}, so loaded specs are
    compiled by the same staged closure compiler as the builtin machines
    and run on the unchanged hot path.

    Elaboration rules (also in DESIGN.md §13): [==]/[!=] are structural
    {!Efsm.Value.equal} ([Ir.Eq]); [<] [<=] [>] [>=] [=] [<>] are integer
    comparisons ([Ir.Cmp]) whose operands must be integer-shaped (an
    integer literal, [int(e)], [int0(e)], or [+]/[-] arithmetic); an
    integer-shaped expression in value position is wrapped in [Of_int], a
    predicate-shaped one in [Of_pred]. *)

type externs = {
  find_pred : string -> Efsm.Ir.opaque_pred option;
  find_act : string -> Efsm.Machine.effect Efsm.Ir.opaque_act option;
}
(** Registry for [extern] escape hatches: guards and actions (like the
    RTP wraparound arithmetic of the media-spam machine) that the linear
    IR cannot express.  Supplied by the host at load time. *)

val no_externs : externs

type elaborated = {
  el_spec : Efsm.Machine.spec;
  el_vars : Efsm.Ir.decl list;  (** Declared domains, for the verifier. *)
  el_state_spans : (string * Loc.span) list;  (** First mention of each state. *)
  el_trans_spans : (string * Loc.span) list;  (** Label -> declaration site. *)
}

val is_int_shaped : Ast.exp -> bool
(** Elaborates into the [Ir.iexpr] fragment when in value position. *)

val is_pred_shaped : Ast.exp -> bool
(** Elaborates into the [Ir.pred] fragment when in value position. *)

val machine : externs:externs -> Ast.machine -> elaborated
