type severity = Error | Warning

type code =
  | Lex
  | Parse
  | Unbound_var
  | Type_mismatch
  | Dup_state
  | Unknown_sync
  | Unknown_extern
  | Out_of_domain
  | Dup_label
  | Structure

type t = { severity : severity; code : code; span : Loc.span; message : string }

let error code span message = { severity = Error; code; span; message }

let warning code span message = { severity = Warning; code; span; message }

let code_to_string = function
  | Lex -> "lex"
  | Parse -> "parse"
  | Unbound_var -> "unbound-var"
  | Type_mismatch -> "type-mismatch"
  | Dup_state -> "dup-state"
  | Unknown_sync -> "unknown-sync"
  | Unknown_extern -> "unknown-extern"
  | Out_of_domain -> "out-of-domain"
  | Dup_label -> "dup-label"
  | Structure -> "structure"

let severity_to_string = function Error -> "error" | Warning -> "warning"

let is_error d = d.severity = Error

let has_errors ds = List.exists is_error ds

let to_string d =
  Printf.sprintf "%s: %s[%s]: %s" (Loc.to_string d.span)
    (severity_to_string d.severity) (code_to_string d.code) d.message

(* The [n]th 1-based line of [source], without its terminator. *)
let line_of_source source n =
  let rec skip pos line =
    if line = n then Some pos
    else
      match String.index_from_opt source pos '\n' with
      | Some nl when nl + 1 <= String.length source -> skip (nl + 1) (line + 1)
      | _ -> None
  in
  if n < 1 then None
  else
    match skip 0 1 with
    | None -> None
    | Some start ->
        let stop =
          match String.index_from_opt source start '\n' with
          | Some nl -> nl
          | None -> String.length source
        in
        Some (String.sub source start (stop - start))

let render ?source d =
  let head = to_string d in
  if Loc.is_dummy d.span || source = None then head
  else
    match line_of_source (Option.get source) d.span.Loc.s.Loc.line with
    | None -> head
    | Some text ->
        let col = max 1 d.span.Loc.s.Loc.col in
        let width =
          if d.span.Loc.e.Loc.line = d.span.Loc.s.Loc.line then
            max 1 (d.span.Loc.e.Loc.col - col)
          else max 1 (String.length text - col + 1)
        in
        (* Tabs in the source line would desynchronize the caret column;
           render them as single spaces in the snippet. *)
        let text = String.map (function '\t' -> ' ' | c -> c) text in
        let caret = String.make (col - 1) ' ' ^ String.make width '^' in
        Printf.sprintf "%s\n  | %s\n  | %s" head text caret

let render_all ~source ds =
  String.concat "\n" (List.map (render ~source) ds)

let quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_json d =
  Printf.sprintf
    "{\"severity\":%s,\"code\":%s,\"file\":%s,\"line\":%d,\"col\":%d,\"message\":%s}"
    (quote (severity_to_string d.severity))
    (quote (code_to_string d.code))
    (quote d.span.Loc.s.Loc.file) d.span.Loc.s.Loc.line d.span.Loc.s.Loc.col
    (quote d.message)
