module L = Lexer

type state = {
  toks : L.token array;
  mutable pos : int;
  mutable diags : Diag.t list;  (* reversed *)
}

let cur st = st.toks.(min st.pos (Array.length st.toks - 1))

let cur_kind st = (cur st).L.kind

let cur_span st = (cur st).L.span

let bump st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let err st span message = st.diags <- Diag.error Diag.Parse span message :: st.diags

let expected st what =
  err st (cur_span st)
    (Printf.sprintf "expected %s, found %s" what (L.kind_to_string (cur_kind st)))

(* Skip forward to just after the next [;] (or stop before [}]/EOF), the
   statement-level resynchronization point. *)
let recover st =
  let rec go () =
    match cur_kind st with
    | L.SEMI -> bump st
    | L.RBRACE | L.EOF -> ()
    | _ ->
        bump st;
        go ()
  in
  go ()

let eat st kind what =
  if cur_kind st = kind then begin
    bump st;
    true
  end
  else begin
    expected st what;
    false
  end

let ident st what =
  match cur_kind st with
  | L.IDENT s ->
      let sp = cur_span st in
      bump st;
      Some (s, sp)
  | _ ->
      expected st what;
      None

(* Keywords are contextual: any identifier can still name a state or an
   event, so we only match keyword spellings where the grammar wants
   one. *)
let at_keyword st kw = match cur_kind st with L.IDENT s -> String.equal s kw | _ -> false

let eat_keyword st kw = if at_keyword st kw then (bump st; true) else false

let parse_lit st : Ast.lit option =
  match cur_kind st with
  | L.INT n ->
      bump st;
      Some (Ast.L_int n)
  | L.MINUS -> (
      bump st;
      match cur_kind st with
      | L.INT n ->
          bump st;
          Some (Ast.L_int (-n))
      | _ ->
          expected st "an integer after '-'";
          None)
  | L.STRING s ->
      bump st;
      Some (Ast.L_str s)
  | L.IDENT "true" ->
      bump st;
      Some (Ast.L_bool true)
  | L.IDENT "false" ->
      bump st;
      Some (Ast.L_bool false)
  | L.IDENT "unset" ->
      bump st;
      Some (Ast.L_unset)
  | _ ->
      expected st "a literal";
      None

let parse_lit_set st =
  (* "{" lit ("," lit)* "}" *)
  ignore (eat st L.LBRACE "'{'");
  let rec go acc =
    match parse_lit st with
    | None -> List.rev acc
    | Some l ->
        if cur_kind st = L.COMMA then begin
          bump st;
          go (l :: acc)
        end
        else List.rev (l :: acc)
  in
  let lits = go [] in
  ignore (eat st L.RBRACE "'}'");
  lits

let binop_of_kind = function
  | L.EQEQ -> Some Ast.B_eq
  | L.BANGEQ -> Some Ast.B_ne
  | L.LT -> Some Ast.B_lt
  | L.LE -> Some Ast.B_le
  | L.GT -> Some Ast.B_gt
  | L.GE -> Some Ast.B_ge
  | L.EQ -> Some Ast.B_ieq
  | L.NE -> Some Ast.B_ine
  | _ -> None

let rec parse_exp st : Ast.exp = parse_or st

and parse_or st =
  let left = parse_and st in
  if cur_kind st = L.BARBAR then begin
    bump st;
    let right = parse_and st in
    let e =
      { Ast.e = Ast.Bin (Ast.B_or, left, right);
        e_span = Loc.merge left.Ast.e_span right.Ast.e_span }
    in
    parse_or_rest st e
  end
  else left

and parse_or_rest st left =
  if cur_kind st = L.BARBAR then begin
    bump st;
    let right = parse_and st in
    parse_or_rest st
      { Ast.e = Ast.Bin (Ast.B_or, left, right);
        e_span = Loc.merge left.Ast.e_span right.Ast.e_span }
  end
  else left

and parse_and st =
  let left = parse_cmp st in
  parse_and_rest st left

and parse_and_rest st left =
  if cur_kind st = L.AMPAMP then begin
    bump st;
    let right = parse_cmp st in
    parse_and_rest st
      { Ast.e = Ast.Bin (Ast.B_and, left, right);
        e_span = Loc.merge left.Ast.e_span right.Ast.e_span }
  end
  else left

and parse_cmp st =
  let left = parse_add st in
  match binop_of_kind (cur_kind st) with
  | Some op ->
      bump st;
      let right = parse_add st in
      { Ast.e = Ast.Bin (op, left, right);
        e_span = Loc.merge left.Ast.e_span right.Ast.e_span }
  | None ->
      if at_keyword st "in" then begin
        bump st;
        let sp = cur_span st in
        let lits = parse_lit_set st in
        { Ast.e = Ast.In_set (left, lits); e_span = Loc.merge left.Ast.e_span sp }
      end
      else left

and parse_add st =
  let left = parse_unary st in
  parse_add_rest st left

and parse_add_rest st left =
  match cur_kind st with
  | L.PLUS | L.MINUS ->
      let op = if cur_kind st = L.PLUS then Ast.B_add else Ast.B_sub in
      bump st;
      let right = parse_unary st in
      parse_add_rest st
        { Ast.e = Ast.Bin (op, left, right);
          e_span = Loc.merge left.Ast.e_span right.Ast.e_span }
  | _ -> left

and parse_unary st =
  match cur_kind st with
  | L.BANG ->
      let sp = cur_span st in
      bump st;
      let e = parse_unary st in
      { Ast.e = Ast.Not e; e_span = Loc.merge sp e.Ast.e_span }
  | L.MINUS -> (
      let sp = cur_span st in
      bump st;
      match cur_kind st with
      | L.INT n ->
          let sp2 = cur_span st in
          bump st;
          { Ast.e = Ast.Lit (Ast.L_int (-n)); e_span = Loc.merge sp sp2 }
      | _ ->
          expected st "an integer after unary '-'";
          { Ast.e = Ast.Lit (Ast.L_int 0); e_span = sp })
  | _ -> parse_primary st

and parse_primary st =
  let sp = cur_span st in
  match cur_kind st with
  | L.INT n ->
      bump st;
      { Ast.e = Ast.Lit (Ast.L_int n); e_span = sp }
  | L.STRING s ->
      bump st;
      { Ast.e = Ast.Lit (Ast.L_str s); e_span = sp }
  | L.FIELD f ->
      bump st;
      { Ast.e = Ast.Fieldref f; e_span = sp }
  | L.LPAREN ->
      bump st;
      let e = parse_exp st in
      ignore (eat st L.RPAREN "')'");
      e
  | L.IDENT "true" ->
      bump st;
      { Ast.e = Ast.Lit (Ast.L_bool true); e_span = sp }
  | L.IDENT "false" ->
      bump st;
      { Ast.e = Ast.Lit (Ast.L_bool false); e_span = sp }
  | L.IDENT "unset" ->
      bump st;
      { Ast.e = Ast.Lit Ast.L_unset; e_span = sp }
  | L.IDENT "extern" -> (
      bump st;
      match ident st "an extern name" with
      | Some (name, sp2) -> { Ast.e = Ast.Extern_ref name; e_span = Loc.merge sp sp2 }
      | None -> { Ast.e = Ast.Extern_ref "?"; e_span = sp })
  | L.IDENT name -> (
      bump st;
      match cur_kind st with
      | L.LPAREN ->
          bump st;
          let rec args acc =
            if cur_kind st = L.RPAREN then List.rev acc
            else
              let e = parse_exp st in
              if cur_kind st = L.COMMA then begin
                bump st;
                args (e :: acc)
              end
              else List.rev (e :: acc)
          in
          let args = args [] in
          let sp2 = cur_span st in
          ignore (eat st L.RPAREN "')'");
          { Ast.e = Ast.Call (name, args); e_span = Loc.merge sp sp2 }
      | _ -> { Ast.e = Ast.Ident name; e_span = sp })
  | _ ->
      expected st "an expression";
      bump st;
      { Ast.e = Ast.Lit Ast.L_unset; e_span = sp }

let parse_duration st =
  match cur_kind st with
  | L.DURATION us ->
      bump st;
      Some us
  | _ ->
      expected st "a duration (e.g. 250ms, 1s)";
      None

let rec parse_act st : Ast.act option =
  let sp = cur_span st in
  match cur_kind st with
  | L.IDENT "if" ->
      bump st;
      let p = parse_exp st in
      ignore (eat st L.LBRACE "'{'");
      let then_acts = parse_acts st in
      ignore (eat st L.RBRACE "'}'");
      let else_acts =
        if eat_keyword st "else" then begin
          ignore (eat st L.LBRACE "'{'");
          let acts = parse_acts st in
          ignore (eat st L.RBRACE "'}'");
          acts
        end
        else []
      in
      Some { Ast.a = Ast.If (p, then_acts, else_acts); a_span = sp }
  | L.IDENT "sync" -> (
      bump st;
      match ident st "a target machine name" with
      | None ->
          recover st;
          None
      | Some (target, _) ->
          if not (eat st L.DOT "'.'") then begin
            recover st;
            None
          end
          else (
            match ident st "a sync event name" with
            | None ->
                recover st;
                None
            | Some (event, _) ->
                ignore (eat st L.LPAREN "'('");
                let rec args acc =
                  if cur_kind st = L.RPAREN then List.rev acc
                  else
                    match ident st "an argument name" with
                    | None -> List.rev acc
                    | Some (k, _) ->
                        ignore (eat st L.COLON "':'");
                        let e = parse_exp st in
                        if cur_kind st = L.COMMA then begin
                          bump st;
                          args ((k, e) :: acc)
                        end
                        else List.rev ((k, e) :: acc)
                in
                let args = args [] in
                ignore (eat st L.RPAREN "')'");
                ignore (eat st L.SEMI "';'");
                Some { Ast.a = Ast.Sync { target; event; args }; a_span = sp }))
  | L.IDENT "set_timer" -> (
      bump st;
      match ident st "a timer id" with
      | None ->
          recover st;
          None
      | Some (id, _) -> (
          match parse_duration st with
          | None ->
              recover st;
              None
          | Some d ->
              ignore (eat st L.SEMI "';'");
              Some { Ast.a = Ast.Set_timer (id, d); a_span = sp }))
  | L.IDENT "cancel_timer" -> (
      bump st;
      match ident st "a timer id" with
      | None ->
          recover st;
          None
      | Some (id, _) ->
          ignore (eat st L.SEMI "';'");
          Some { Ast.a = Ast.Cancel_timer id; a_span = sp })
  | L.IDENT "extern" -> (
      bump st;
      match ident st "an extern name" with
      | None ->
          recover st;
          None
      | Some (name, _) ->
          ignore (eat st L.SEMI "';'");
          Some { Ast.a = Ast.Extern_act name; a_span = sp })
  | L.IDENT _ -> (
      match ident st "a variable name" with
      | None ->
          recover st;
          None
      | Some (name, _) ->
          if not (eat st L.ASSIGN "':='") then begin
            recover st;
            None
          end
          else
            let e = parse_exp st in
            ignore (eat st L.SEMI "';'");
            Some { Ast.a = Ast.Assign (name, e); a_span = sp })
  | _ ->
      expected st "an action";
      recover st;
      None

and parse_acts st =
  let rec go acc =
    match cur_kind st with
    | L.RBRACE | L.EOF -> List.rev acc
    | _ -> (
        match parse_act st with
        | Some a -> go (a :: acc)
        | None -> go acc)
  in
  go []

let parse_trigger st : (Ast.trigger_kind * string) option =
  let kind =
    if eat_keyword st "event" then Some Ast.Tg_event
    else if eat_keyword st "channel" then Some Ast.Tg_channel
    else if eat_keyword st "sync" then Some Ast.Tg_sync
    else if eat_keyword st "timer" then Some Ast.Tg_timer
    else begin
      expected st "a trigger kind (event, channel, sync or timer)";
      None
    end
  in
  match kind with
  | None -> None
  | Some k -> (
      match ident st "a trigger name" with
      | Some (name, _) -> Some (k, name)
      | None -> None)

let parse_ty st : Ast.ty option =
  match cur_kind st with
  | L.IDENT "int" ->
      bump st;
      Some Ast.T_int
  | L.IDENT "bool" ->
      bump st;
      Some Ast.T_bool
  | L.IDENT "string" ->
      bump st;
      Some Ast.T_str
  | L.IDENT "addr" ->
      bump st;
      Some Ast.T_addr
  | L.IDENT "enum" ->
      bump st;
      Some (Ast.T_enum (parse_lit_set st))
  | _ ->
      expected st "a type (int, bool, string, addr or enum)";
      None

let parse_var st ~scope sp =
  match ident st "a variable name" with
  | None ->
      recover st;
      None
  | Some (name, nsp) ->
      if not (eat st L.COLON "':'") then begin
        recover st;
        None
      end
      else (
        match parse_ty st with
        | None ->
            recover st;
            None
        | Some ty ->
            ignore (eat st L.SEMI "';'");
            Some
              (Ast.I_var
                 { v_name = name; v_scope = scope; v_ty = ty; v_span = Loc.merge sp nsp }))

let parse_trans st sp =
  match ident st "a transition label" with
  | None ->
      recover st;
      None
  | Some (label, lsp) ->
      if not (eat st L.COLON "':'") then begin
        recover st;
        None
      end
      else
        let from_state = ident st "a source state" in
        let ok = eat st L.ARROW "'->'" in
        let to_state = if ok then ident st "a target state" else None in
        if not (eat_keyword st "on") then begin
          expected st "'on'";
          recover st;
          None
        end
        else (
          match (from_state, to_state, parse_trigger st) with
          | Some (f, _), Some (t, _), Some trigger ->
              let guard = if eat_keyword st "when" then Some (parse_exp st) else None in
              let acts =
                if eat_keyword st "do" then begin
                  ignore (eat st L.LBRACE "'{'");
                  let acts = parse_acts st in
                  ignore (eat st L.RBRACE "'}'");
                  acts
                end
                else []
              in
              if cur_kind st = L.SEMI then bump st;
              Some
                (Ast.I_trans
                   {
                     Ast.t_label = label;
                     t_from = f;
                     t_to = t;
                     t_trigger = trigger;
                     t_guard = guard;
                     t_acts = acts;
                     t_span = Loc.merge sp lsp;
                   })
          | _ ->
              recover st;
              None)

let parse_item st : Ast.item option =
  let sp = cur_span st in
  if eat_keyword st "var" then parse_var st ~scope:Ast.S_local sp
  else if eat_keyword st "global" then parse_var st ~scope:Ast.S_global sp
  else if eat_keyword st "initial" then (
    match ident st "a state name" with
    | None ->
        recover st;
        None
    | Some (name, nsp) ->
        ignore (eat st L.SEMI "';'");
        Some (Ast.I_initial (name, Loc.merge sp nsp)))
  else if eat_keyword st "final" then begin
    let rec go acc =
      match ident st "a state name" with
      | None -> List.rev acc
      | Some (name, nsp) ->
          if cur_kind st = L.COMMA then begin
            bump st;
            go ((name, nsp) :: acc)
          end
          else List.rev ((name, nsp) :: acc)
    in
    let states = go [] in
    ignore (eat st L.SEMI "';'");
    if states = [] then begin
      recover st;
      None
    end
    else Some (Ast.I_final states)
  end
  else if eat_keyword st "attack" then (
    match ident st "a state name" with
    | None ->
        recover st;
        None
    | Some (name, nsp) -> (
        match cur_kind st with
        | L.STRING desc ->
            bump st;
            ignore (eat st L.SEMI "';'");
            Some (Ast.I_attack { at_state = name; at_desc = desc; at_span = Loc.merge sp nsp })
        | _ ->
            expected st "an alert description string";
            recover st;
            None))
  else if eat_keyword st "trans" then parse_trans st sp
  else begin
    expected st "a declaration (var, global, initial, final, attack or trans)";
    recover st;
    None
  end

let parse_machine st : Ast.machine option =
  let sp = cur_span st in
  if not (eat_keyword st "machine") then begin
    expected st "'machine'";
    (* Not even a machine header: skip one token to guarantee progress. *)
    bump st;
    None
  end
  else
    match ident st "a machine name" with
    | None ->
        recover st;
        None
    | Some (name, nsp) ->
        if not (eat st L.LBRACE "'{'") then begin
          recover st;
          None
        end
        else begin
          let rec items acc =
            match cur_kind st with
            | L.RBRACE | L.EOF -> List.rev acc
            | _ -> (
                match parse_item st with
                | Some item -> items (item :: acc)
                | None -> items acc)
          in
          let body = items [] in
          ignore (eat st L.RBRACE "'}'");
          Some { Ast.m_name = name; m_items = body; m_span = Loc.merge sp nsp }
        end

let parse ~file src =
  let toks, lex_diags = Lexer.tokenize ~file src in
  let st = { toks = Array.of_list toks; pos = 0; diags = [] } in
  let rec go acc =
    match cur_kind st with
    | L.EOF -> List.rev acc
    | _ -> (
        match parse_machine st with
        | Some m -> go (m :: acc)
        | None -> go acc)
  in
  let machines = go [] in
  (machines, lex_diags @ List.rev st.diags)
