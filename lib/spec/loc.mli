(** Source positions and spans for [.vspec] files.

    Every AST node carries a {!span} so the checker, the elaborator and
    (through [Analyze.Finding]) the static verifier can point findings
    back into the text the operator actually wrote.  Lines and columns
    are 1-based, like compilers and editors count them. *)

type pos = { file : string; line : int; col : int }

type span = { s : pos; e : pos }
(** Half-open: [e] is the position just past the last character. *)

val dummy : span
(** For synthesized nodes (e.g. machine-emitted specs); renders as
    [<none>:0:0]. *)

val is_dummy : span -> bool

val make : file:string -> line:int -> col:int -> end_line:int -> end_col:int -> span

val merge : span -> span -> span
(** Covers both spans (assumes same file). *)

val pos_to_string : pos -> string
(** [file:line:col]. *)

val to_string : span -> string
(** The start position as [file:line:col] — the conventional anchor. *)
