(** Hand-written lexer for [.vspec] text.

    Total: unrecognized input produces a [Diag.Lex] diagnostic and the
    lexer skips forward, so the parser always receives a token stream
    ending in {!EOF}.  Comments run from [#] to end of line.  Duration
    literals are an integer immediately followed by [s], [ms] or [us]
    and carry microseconds. *)

type kind =
  | IDENT of string
  | INT of int
  | STRING of string
  | DURATION of int  (** microseconds *)
  | FIELD of string  (** [$name] *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | COLON
  | DOT
  | ARROW  (** [->] *)
  | ASSIGN  (** [:=] *)
  | AMPAMP
  | BARBAR
  | BANG
  | EQEQ
  | BANGEQ
  | LT
  | LE
  | GT
  | GE
  | EQ  (** [=] — integer equality *)
  | NE  (** [<>] — integer inequality *)
  | PLUS
  | MINUS
  | EOF

type token = { kind : kind; span : Loc.span }

val tokenize : file:string -> string -> token list * Diag.t list
(** The token list always ends with an [EOF] token. *)

val kind_to_string : kind -> string
(** For parser error messages. *)
