type loaded = {
  l_file : string;
  l_name : string;
  l_spec : Efsm.Machine.spec;
  l_vars : Efsm.Ir.decl list;
  l_state_spans : (string * Loc.span) list;
  l_trans_spans : (string * Loc.span) list;
}

let load_sources ?(known_machines = []) ~externs sources =
  let parsed =
    List.map (fun (file, src) -> (file, Parser.parse ~file src)) sources
  in
  let parse_diags = List.concat_map (fun (_, (_, ds)) -> ds) parsed in
  let all_machines = List.concat_map (fun (_, (ms, _)) -> ms) parsed in
  let known =
    List.sort_uniq String.compare
      (known_machines @ List.map (fun m -> m.Ast.m_name) all_machines)
  in
  (* Check per machine so a broken one does not block its batch. *)
  let loaded, check_diags =
    List.fold_left
      (fun (loaded, diags) (file, (machines, _)) ->
        List.fold_left
          (fun (loaded, diags) m ->
            let ds = Check.machine ~known_machines:known ~externs m in
            if Diag.has_errors ds then (loaded, diags @ ds)
            else
              let el = Elaborate.machine ~externs m in
              match Efsm.Machine.validate_spec el.Elaborate.el_spec with
              | Error msg ->
                  ( loaded,
                    diags @ ds
                    @ [
                        Diag.error Diag.Structure m.Ast.m_span
                          (Printf.sprintf "invalid machine %s: %s" m.Ast.m_name msg);
                      ] )
              | Ok () ->
                  ( loaded
                    @ [
                        {
                          l_file = file;
                          l_name = el.Elaborate.el_spec.Efsm.Machine.spec_name;
                          l_spec = el.Elaborate.el_spec;
                          l_vars = el.Elaborate.el_vars;
                          l_state_spans = el.Elaborate.el_state_spans;
                          l_trans_spans = el.Elaborate.el_trans_spans;
                        };
                      ],
                    diags @ ds ))
          (loaded, diags) machines)
      ([], []) parsed
  in
  (* Duplicate machine names across the whole batch. *)
  let dup_diags =
    let seen = Hashtbl.create 4 in
    List.filter_map
      (fun (_, (machines, _)) ->
        let rec dups = function
          | [] -> None
          | m :: rest ->
              if Hashtbl.mem seen m.Ast.m_name then
                Some
                  (Diag.error Diag.Dup_label m.Ast.m_span
                     (Printf.sprintf "machine %s is defined twice in this batch"
                        m.Ast.m_name))
              else begin
                Hashtbl.add seen m.Ast.m_name ();
                dups rest
              end
        in
        dups machines)
      parsed
  in
  (loaded, parse_diags @ dup_diags @ check_diags)

let load_string ?known_machines ~externs ~file src =
  load_sources ?known_machines ~externs [ (file, src) ]

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s

let load_files ?known_machines ~externs paths =
  let rec read acc = function
    | [] -> Ok (List.rev acc)
    | path :: rest -> (
        match read_file path with
        | Error e -> Error (Printf.sprintf "%s: %s" path e)
        | Ok src -> read ((path, src) :: acc) rest)
  in
  match read [] paths with
  | Error _ as e -> e
  | Ok sources ->
      let loaded, diags = load_sources ?known_machines ~externs sources in
      Ok (loaded, diags, sources)

let span_for loaded ~machine ~state ~transition =
  match List.find_opt (fun l -> String.equal l.l_name machine) loaded with
  | None -> None
  | Some l -> (
      let first_label compound =
        match String.split_on_char '/' compound with lbl :: _ -> lbl | [] -> compound
      in
      match transition with
      | Some t -> (
          match List.assoc_opt (first_label t) l.l_trans_spans with
          | Some sp -> Some sp
          | None -> Option.bind state (fun s -> List.assoc_opt s l.l_state_spans))
      | None -> Option.bind state (fun s -> List.assoc_opt s l.l_state_spans))
