type ctx = {
  known_machines : string list;
  externs : Elaborate.externs;
  vars : (string * (Ast.scope * Ast.ty)) list;
  mutable diags : Diag.t list;  (* reversed *)
}

let err ctx code span message = ctx.diags <- Diag.error code span message :: ctx.diags

let ty_name = function
  | Ast.T_int -> "int"
  | Ast.T_bool -> "bool"
  | Ast.T_str -> "string"
  | Ast.T_addr -> "addr"
  | Ast.T_enum _ -> "enum"

let ty_of_lit = function
  | Ast.L_int _ -> Some Ast.T_int
  | Ast.L_str _ -> Some Ast.T_str
  | Ast.L_bool _ -> Some Ast.T_bool
  | Ast.L_unset -> None

(* Two known types conflict unless one is an enum (whose members are
   plain values compared structurally). *)
let conflict a b =
  match (a, b) with
  | Some x, Some y -> (
      match (x, y) with Ast.T_enum _, _ | _, Ast.T_enum _ -> false | x, y -> x <> y)
  | _ -> false

let lookup_var ctx name = List.assoc_opt name ctx.vars

let resolve ctx span name =
  match lookup_var ctx name with
  | Some (_, ty) -> Some ty
  | None ->
      err ctx Diag.Unbound_var span (Printf.sprintf "undeclared variable %s" name);
      None

let is_pred_shaped = Elaborate.is_pred_shaped

let rec check_pred ctx (e : Ast.exp) =
  match e.Ast.e with
  | Ast.Lit (Ast.L_bool _) -> ()
  | Ast.Not e -> check_pred ctx e
  | Ast.Bin ((Ast.B_and | Ast.B_or), a, b) ->
      check_pred ctx a;
      check_pred ctx b
  | Ast.Bin ((Ast.B_eq | Ast.B_ne), a, b) ->
      let ta = check_expr ctx a in
      let tb = check_expr ctx b in
      if conflict ta tb then
        err ctx Diag.Type_mismatch e.Ast.e_span
          (Printf.sprintf "cannot compare %s with %s: the equality is always false"
             (ty_name (Option.get ta)) (ty_name (Option.get tb)))
  | Ast.Bin ((Ast.B_lt | Ast.B_le | Ast.B_gt | Ast.B_ge | Ast.B_ieq | Ast.B_ine), a, b) ->
      check_iexpr ctx a;
      check_iexpr ctx b
  | Ast.Bin ((Ast.B_add | Ast.B_sub), _, _) ->
      err ctx Diag.Type_mismatch e.Ast.e_span
        "an arithmetic expression is not a predicate; compare it (e.g. ... > 0)"
  | Ast.In_set (scrutinee, lits) ->
      let t = check_expr ctx scrutinee in
      List.iter
        (fun l ->
          if conflict t (ty_of_lit l) then
            err ctx Diag.Type_mismatch e.Ast.e_span
              (Printf.sprintf "set member %s can never equal a %s value"
                 (ty_name (Option.get (ty_of_lit l)))
                 (ty_name (Option.get t))))
        lits
  | Ast.Call ("has", args) -> (
      match args with
      | [ { Ast.e = Ast.Fieldref _; _ } ] -> ()
      | [ other ] ->
          err ctx Diag.Type_mismatch other.Ast.e_span
            "has(...) takes an event field ($name)"
      | _ ->
          err ctx Diag.Type_mismatch e.Ast.e_span
            (Printf.sprintf "has(...) takes 1 argument, got %d" (List.length args)))
  | Ast.Extern_ref name ->
      if ctx.externs.Elaborate.find_pred name = None then
        err ctx Diag.Unknown_extern e.Ast.e_span
          (Printf.sprintf "no extern predicate %s is registered" name)
  | Ast.Ident name ->
      ignore (resolve ctx e.Ast.e_span name);
      err ctx Diag.Type_mismatch e.Ast.e_span
        (Printf.sprintf "a bare variable is not a predicate; write %s == true" name)
  | _ ->
      err ctx Diag.Type_mismatch e.Ast.e_span "expected a predicate"

and check_iexpr ctx (e : Ast.exp) =
  match e.Ast.e with
  | Ast.Lit (Ast.L_int _) -> ()
  | Ast.Call (("int" | "int0") as f, args) -> (
      match args with
      | [ a ] -> ignore (check_expr ctx a)
      | _ ->
          err ctx Diag.Type_mismatch e.Ast.e_span
            (Printf.sprintf "%s(...) takes 1 argument, got %d" f (List.length args)))
  | Ast.Bin ((Ast.B_add | Ast.B_sub), a, b) ->
      check_iexpr ctx a;
      check_iexpr ctx b
  | Ast.Ident name ->
      ignore (resolve ctx e.Ast.e_span name);
      err ctx Diag.Type_mismatch e.Ast.e_span
        (Printf.sprintf
           "integer context needs an explicit conversion: write int(%s) or int0(%s)" name
           name)
  | Ast.Fieldref f ->
      err ctx Diag.Type_mismatch e.Ast.e_span
        (Printf.sprintf
           "integer context needs an explicit conversion: write int($%s) or int0($%s)" f f)
  | _ -> err ctx Diag.Type_mismatch e.Ast.e_span "expected an integer expression"

and check_expr ctx (e : Ast.exp) : Ast.ty option =
  match e.Ast.e with
  | Ast.Lit l -> ty_of_lit l
  | Ast.Ident name -> resolve ctx e.Ast.e_span name
  | Ast.Fieldref _ -> None
  | Ast.Call ("addr", args) -> (
      match args with
      | [ h; p ] ->
          let th = check_expr ctx h in
          let tp = check_expr ctx p in
          if conflict th (Some Ast.T_str) then
            err ctx Diag.Type_mismatch h.Ast.e_span "addr(...) host must be a string";
          if conflict tp (Some Ast.T_int) then
            err ctx Diag.Type_mismatch p.Ast.e_span "addr(...) port must be an int";
          Some Ast.T_addr
      | _ ->
          err ctx Diag.Type_mismatch e.Ast.e_span
            (Printf.sprintf "addr(...) takes 2 arguments, got %d" (List.length args));
          Some Ast.T_addr)
  | Ast.Call ("host", args) -> (
      match args with
      | [ a ] ->
          let t = check_expr ctx a in
          if conflict t (Some Ast.T_addr) then
            err ctx Diag.Type_mismatch a.Ast.e_span "host(...) takes an addr value";
          Some Ast.T_str
      | _ ->
          err ctx Diag.Type_mismatch e.Ast.e_span
            (Printf.sprintf "host(...) takes 1 argument, got %d" (List.length args));
          Some Ast.T_str)
  | Ast.Call (("int" | "int0"), _) ->
      check_iexpr ctx e;
      Some Ast.T_int
  | Ast.Bin ((Ast.B_add | Ast.B_sub), _, _) ->
      check_iexpr ctx e;
      Some Ast.T_int
  | _ when is_pred_shaped e ->
      check_pred ctx e;
      Some Ast.T_bool
  | Ast.Call (f, _) ->
      err ctx Diag.Type_mismatch e.Ast.e_span
        (Printf.sprintf "unknown function %s (expected addr, host, int, int0 or has)" f);
      None
  | _ ->
      err ctx Diag.Type_mismatch e.Ast.e_span "expected a value expression";
      None

let lit_in_enum lit lits = List.exists (fun l -> l = lit) lits

let check_assign ctx span name (rhs : Ast.exp) =
  match lookup_var ctx name with
  | None -> err ctx Diag.Unbound_var span (Printf.sprintf "undeclared variable %s" name)
  | Some (_, declared) -> (
      let inferred = check_expr ctx rhs in
      match declared with
      | Ast.T_enum lits -> (
          match rhs.Ast.e with
          | Ast.Lit l when not (lit_in_enum l lits) ->
              err ctx Diag.Out_of_domain rhs.Ast.e_span
                (Printf.sprintf "constant outside the declared domain of %s" name)
          | _ -> ())
      | _ ->
          if conflict (Some declared) inferred then
            err ctx Diag.Type_mismatch rhs.Ast.e_span
              (Printf.sprintf "%s is declared %s but assigned a %s value" name
                 (ty_name declared)
                 (ty_name (Option.get inferred))))

let rec check_act ctx (act : Ast.act) =
  match act.Ast.a with
  | Ast.Assign (name, rhs) -> check_assign ctx act.Ast.a_span name rhs
  | Ast.If (p, then_acts, else_acts) ->
      check_pred ctx p;
      List.iter (check_act ctx) then_acts;
      List.iter (check_act ctx) else_acts
  | Ast.Sync { target; args; _ } ->
      if not (List.exists (String.equal target) ctx.known_machines) then
        err ctx Diag.Unknown_sync act.Ast.a_span
          (Printf.sprintf "unknown sync target machine %s (known: %s)" target
             (String.concat ", " ctx.known_machines));
      List.iter (fun (_, e) -> ignore (check_expr ctx e)) args
  | Ast.Set_timer _ | Ast.Cancel_timer _ -> ()
  | Ast.Extern_act name ->
      if ctx.externs.Elaborate.find_act name = None then
        err ctx Diag.Unknown_extern act.Ast.a_span
          (Printf.sprintf "no extern action %s is registered" name)

(* Declaration-level structure: duplicates and missing initial. *)
let check_structure ctx (m : Ast.machine) =
  let seen_vars = Hashtbl.create 8 in
  let seen_labels = Hashtbl.create 8 in
  let initials = ref [] in
  let finals = ref [] in
  let attacks = ref [] in
  List.iter
    (fun item ->
      match item with
      | Ast.I_var { v_name; v_span; _ } ->
          if Hashtbl.mem seen_vars v_name then
            err ctx Diag.Dup_label v_span
              (Printf.sprintf "variable %s is declared twice" v_name)
          else Hashtbl.add seen_vars v_name ()
      | Ast.I_initial (s, sp) ->
          if !initials <> [] then
            err ctx Diag.Dup_state sp
              (Printf.sprintf "initial state declared twice (already %s)"
                 (List.hd !initials))
          else initials := [ s ]
      | Ast.I_final states ->
          List.iter
            (fun (s, sp) ->
              if List.mem s !finals then
                err ctx Diag.Dup_state sp (Printf.sprintf "state %s is final twice" s)
              else begin
                finals := s :: !finals;
                if List.mem_assoc s !attacks then
                  err ctx Diag.Dup_state sp
                    (Printf.sprintf "state %s is declared both final and attack" s)
              end)
            states
      | Ast.I_attack { at_state; at_span; _ } ->
          if List.mem_assoc at_state !attacks then
            err ctx Diag.Dup_state at_span
              (Printf.sprintf "state %s is declared attack twice" at_state)
          else begin
            attacks := (at_state, at_span) :: !attacks;
            if List.mem at_state !finals then
              err ctx Diag.Dup_state at_span
                (Printf.sprintf "state %s is declared both final and attack" at_state)
          end
      | Ast.I_trans t ->
          if Hashtbl.mem seen_labels t.Ast.t_label then
            err ctx Diag.Dup_label t.Ast.t_span
              (Printf.sprintf "transition label %s is used twice" t.Ast.t_label)
          else Hashtbl.add seen_labels t.Ast.t_label ())
    m.Ast.m_items;
  if !initials = [] then
    err ctx Diag.Structure m.Ast.m_span
      (Printf.sprintf "machine %s has no initial state" m.Ast.m_name)

let machine ~known_machines ~externs (m : Ast.machine) =
  let vars =
    List.filter_map
      (function
        | Ast.I_var { v_name; v_scope; v_ty; _ } -> Some (v_name, (v_scope, v_ty))
        | _ -> None)
      m.Ast.m_items
  in
  let ctx = { known_machines; externs; vars; diags = [] } in
  check_structure ctx m;
  List.iter
    (fun item ->
      match item with
      | Ast.I_trans t ->
          Option.iter (check_pred ctx) t.Ast.t_guard;
          List.iter (check_act ctx) t.Ast.t_acts
      | _ -> ())
    m.Ast.m_items;
  List.rev ctx.diags

let file ~known_machines ~externs (machines : Ast.file) =
  let local_names = List.map (fun m -> m.Ast.m_name) machines in
  let known = List.sort_uniq String.compare (known_machines @ local_names) in
  (* Duplicate machine names across the file. *)
  let dup_diags =
    let seen = Hashtbl.create 4 in
    List.filter_map
      (fun m ->
        if Hashtbl.mem seen m.Ast.m_name then
          Some
            (Diag.error Diag.Dup_label m.Ast.m_span
               (Printf.sprintf "machine %s is defined twice" m.Ast.m_name))
        else begin
          Hashtbl.add seen m.Ast.m_name ();
          None
        end)
      machines
  in
  dup_diags @ List.concat_map (machine ~known_machines:known ~externs) machines
