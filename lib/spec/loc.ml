type pos = { file : string; line : int; col : int }

type span = { s : pos; e : pos }

let dummy =
  let p = { file = "<none>"; line = 0; col = 0 } in
  { s = p; e = p }

let is_dummy sp = sp.s.line = 0

let make ~file ~line ~col ~end_line ~end_col =
  { s = { file; line; col }; e = { file; line = end_line; col = end_col } }

let merge a b =
  let before (p : pos) (q : pos) = p.line < q.line || (p.line = q.line && p.col <= q.col) in
  { s = (if before a.s b.s then a.s else b.s); e = (if before a.e b.e then b.e else a.e) }

let pos_to_string p = Printf.sprintf "%s:%d:%d" p.file p.line p.col

let to_string sp = pos_to_string sp.s
