type kind =
  | IDENT of string
  | INT of int
  | STRING of string
  | DURATION of int
  | FIELD of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | COLON
  | DOT
  | ARROW
  | ASSIGN
  | AMPAMP
  | BARBAR
  | BANG
  | EQEQ
  | BANGEQ
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | PLUS
  | MINUS
  | EOF

type token = { kind : kind; span : Loc.span }

let kind_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | STRING s -> Printf.sprintf "string %S" s
  | DURATION _ -> "duration"
  | FIELD s -> Printf.sprintf "field $%s" s
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | DOT -> "'.'"
  | ARROW -> "'->'"
  | ASSIGN -> "':='"
  | AMPAMP -> "'&&'"
  | BARBAR -> "'||'"
  | BANG -> "'!'"
  | EQEQ -> "'=='"
  | BANGEQ -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EQ -> "'='"
  | NE -> "'<>'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | EOF -> "end of input"

type state = {
  file : string;
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable toks : token list;  (* reversed *)
  mutable diags : Diag.t list;  (* reversed *)
}

let here st = { Loc.file = st.file; line = st.line; col = st.col }

let advance st =
  (if st.pos < String.length st.src then
     match st.src.[st.pos] with
     | '\n' ->
         st.line <- st.line + 1;
         st.col <- 1
     | _ -> st.col <- st.col + 1);
  st.pos <- st.pos + 1

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let emit st kind s = st.toks <- { kind; span = { Loc.s; e = here st } } :: st.toks

let diag st s message =
  st.diags <- Diag.error Diag.Lex { Loc.s; e = here st } message :: st.diags

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let read_while st pred =
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some c when pred c ->
        Buffer.add_char b c;
        advance st;
        go ()
    | _ -> Buffer.contents b
  in
  go ()

let read_string st start =
  advance st (* opening quote *);
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None ->
        diag st start "unterminated string literal";
        emit st (STRING (Buffer.contents b)) start
    | Some '"' ->
        advance st;
        emit st (STRING (Buffer.contents b)) start
    | Some '\n' ->
        diag st start "unterminated string literal";
        emit st (STRING (Buffer.contents b)) start
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' ->
            Buffer.add_char b '"';
            advance st;
            go ()
        | Some '\\' ->
            Buffer.add_char b '\\';
            advance st;
            go ()
        | Some 'n' ->
            Buffer.add_char b '\n';
            advance st;
            go ()
        | Some 't' ->
            Buffer.add_char b '\t';
            advance st;
            go ()
        | Some c ->
            diag st start (Printf.sprintf "unknown escape '\\%c'" c);
            advance st;
            go ()
        | None ->
            diag st start "unterminated string literal";
            emit st (STRING (Buffer.contents b)) start)
    | Some c ->
        Buffer.add_char b c;
        advance st;
        go ()
  in
  go ()

let read_number st start =
  let digits = read_while st is_digit in
  let n = try int_of_string digits with _ -> 0 in
  (* A duration is digits immediately followed by a unit suffix. *)
  match peek st with
  | Some c when is_ident_start c -> (
      let suffix = read_while st is_ident_char in
      match suffix with
      | "s" -> emit st (DURATION (n * 1_000_000)) start
      | "ms" -> emit st (DURATION (n * 1_000)) start
      | "us" -> emit st (DURATION n) start
      | _ ->
          diag st start
            (Printf.sprintf "bad numeric suffix %S (expected s, ms or us)" suffix);
          emit st (INT n) start)
  | _ -> emit st (INT n) start

let tokenize ~file src =
  let st = { file; src; pos = 0; line = 1; col = 1; toks = []; diags = [] } in
  let simple kind = fun start -> advance st; emit st kind start in
  let two_char second kind_two kind_one start =
    advance st;
    if peek st = Some second then begin
      advance st;
      emit st kind_two start
    end
    else emit st kind_one start
  in
  let rec go () =
    let start = here st in
    match peek st with
    | None -> emit st EOF start
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance st;
        go ()
    | Some '#' ->
        let rec skip () =
          match peek st with
          | Some '\n' | None -> ()
          | Some _ ->
              advance st;
              skip ()
        in
        skip ();
        go ()
    | Some '"' ->
        read_string st start;
        go ()
    | Some c when is_digit c ->
        read_number st start;
        go ()
    | Some c when is_ident_start c ->
        emit st (IDENT (read_while st is_ident_char)) start;
        go ()
    | Some '$' -> (
        advance st;
        match peek st with
        | Some c when is_ident_start c ->
            emit st (FIELD (read_while st is_ident_char)) start;
            go ()
        | _ ->
            diag st start "'$' must be followed by a field name";
            go ())
    | Some '{' ->
        simple LBRACE start;
        go ()
    | Some '}' ->
        simple RBRACE start;
        go ()
    | Some '(' ->
        simple LPAREN start;
        go ()
    | Some ')' ->
        simple RPAREN start;
        go ()
    | Some ',' ->
        simple COMMA start;
        go ()
    | Some ';' ->
        simple SEMI start;
        go ()
    | Some '.' ->
        simple DOT start;
        go ()
    | Some '+' ->
        simple PLUS start;
        go ()
    | Some ':' ->
        two_char '=' ASSIGN COLON start;
        go ()
    | Some '-' ->
        two_char '>' ARROW MINUS start;
        go ()
    | Some '=' ->
        two_char '=' EQEQ EQ start;
        go ()
    | Some '!' ->
        two_char '=' BANGEQ BANG start;
        go ()
    | Some '<' -> (
        advance st;
        match peek st with
        | Some '=' ->
            advance st;
            emit st LE start;
            go ()
        | Some '>' ->
            advance st;
            emit st NE start;
            go ()
        | _ ->
            emit st LT start;
            go ())
    | Some '>' ->
        two_char '=' GE GT start;
        go ()
    | Some '&' -> (
        advance st;
        match peek st with
        | Some '&' ->
            advance st;
            emit st AMPAMP start;
            go ()
        | _ ->
            diag st start "'&' must be doubled ('&&')";
            go ())
    | Some '|' -> (
        advance st;
        match peek st with
        | Some '|' ->
            advance st;
            emit st BARBAR start;
            go ()
        | _ ->
            diag st start "'|' must be doubled ('||')";
            go ())
    | Some c ->
        advance st;
        diag st start (Printf.sprintf "unexpected character %C" c);
        go ()
  in
  go ();
  (List.rev st.toks, List.rev st.diags)
