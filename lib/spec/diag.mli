(** Positioned diagnostics from the [.vspec] front end.

    The lexer, parser, resolver and elaborator never raise on bad input:
    they accumulate diagnostics, each anchored to a {!Loc.span}.  A
    diagnostic carries a stable [code] naming its class, so tests and CI
    can assert on the class rather than the message text. *)

type severity = Error | Warning

(** Diagnostic classes.  One constructor per kind of defect the front
    end detects; {!code_to_string} gives the stable wire name. *)
type code =
  | Lex  (** Unrecognized character, unterminated string, bad escape. *)
  | Parse  (** Grammar violation. *)
  | Unbound_var  (** Reference to an undeclared variable. *)
  | Type_mismatch  (** Operand/assignment type conflict, arity errors. *)
  | Dup_state  (** State declared twice (initial/final/attack). *)
  | Unknown_sync  (** [sync] target machine that exists nowhere. *)
  | Unknown_extern  (** [extern] name with no registered implementation. *)
  | Out_of_domain  (** Constant outside a variable's declared domain. *)
  | Dup_label  (** Duplicate transition label or machine name. *)
  | Structure  (** Missing initial state, [Machine.validate_spec] failures. *)

type t = { severity : severity; code : code; span : Loc.span; message : string }

val error : code -> Loc.span -> string -> t

val warning : code -> Loc.span -> string -> t

val code_to_string : code -> string

val is_error : t -> bool

val has_errors : t list -> bool

val to_string : t -> string
(** One line: [file:line:col: error[code]: message]. *)

val render : ?source:string -> t -> string
(** {!to_string} plus, when [source] is available, a caret-underlined
    snippet of the offending source line, GCC-style. *)

val render_all : source:string -> t list -> string

val to_json : t -> string
