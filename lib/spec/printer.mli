(** Canonical [.vspec] rendering, and "unelaboration" of compiled-in
    machine specifications back to surface syntax.

    [print_file] is the canonical printer: [Parser.parse] of its output
    yields a span-ignoring structurally equal AST (the qcheck round-trip
    property in the test suite).  [of_machine] lifts an IR-built
    {!Efsm.Machine.spec} into the AST, which is how the builtin machines
    are exported as [examples/specs/*.vspec] ([vids-cli lint --emit]). *)

val print_exp : Ast.exp -> string

val print_machine : Ast.machine -> string

val print_file : Ast.file -> string

exception Unprintable of string
(** Raised by {!of_machine} on a spec that cannot round-trip: a
    transition built from raw closures (no [Ir] syntax) or a constant
    outside the surface language (floats). *)

val of_machine : Efsm.Machine.spec -> Efsm.Ir.decl list -> Ast.machine
(** @raise Unprintable — see above. *)
