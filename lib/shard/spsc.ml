type 'a t = {
  slots : 'a option array;
  mask : int;
  head : int Atomic.t; (* next slot to pop; consumer-advanced *)
  tail : int Atomic.t; (* next slot to push; producer-advanced *)
  mutable stall_count : int; (* producer-side only *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ~capacity =
  if capacity <= 0 then invalid_arg "Spsc.create: capacity must be positive";
  let cap = pow2 capacity 2 in
  { slots = Array.make cap None; mask = cap - 1; head = Atomic.make 0; tail = Atomic.make 0; stall_count = 0 }

let capacity t = Array.length t.slots

let try_push t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    (* Plain array store, then the Atomic tail bump publishes it: the
       consumer reads tail first, so it never sees the slot unwritten. *)
    t.slots.(tail land t.mask) <- Some x;
    Atomic.set t.tail (tail + 1);
    true
  end

(* Spin briefly, then sleep: on a machine with fewer cores than domains
   the peer may not even be running, and burning the shared core only
   delays it further. *)
let backoff spins =
  if spins < 1024 then Domain.cpu_relax () else Unix.sleepf 0.0001

let push t x =
  if not (try_push t x) then begin
    t.stall_count <- t.stall_count + 1;
    let spins = ref 0 in
    while not (try_push t x) do
      backoff !spins;
      incr spins
    done
  end

let pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if head >= tail then None
  else begin
    let slot = head land t.mask in
    let x = t.slots.(slot) in
    (* Clear before the head bump hands the slot back to the producer:
       afterwards the producer may overwrite it at any moment, and a live
       [Some] in a recycled slot would also pin the element for GC. *)
    t.slots.(slot) <- None;
    Atomic.set t.head (head + 1);
    x
  end

let stalls t = t.stall_count
let length t = Atomic.get t.tail - Atomic.get t.head
