(** Bounded single-producer / single-consumer queue.

    The feed channel between the dispatcher domain and one shard worker:
    the dispatcher is the only producer, the worker the only consumer.
    Backed by a power-of-two ring of [Atomic] head/tail indices — the
    producer publishes a slot by storing it {e before} bumping the tail,
    the consumer reads the tail before the slot, so under the OCaml memory
    model every [pop] observes a fully written element.

    A full queue {e blocks} the producer ([push] spins, then sleeps —
    {!backoff}) rather than dropping: an IDS that sheds input under load
    silently is blind exactly when it matters.  Every blocked push is
    counted, so the stall total surfaces in the merged report
    ([backpressure_stalls]) instead of vanishing. *)

type 'a t

val create : capacity:int -> 'a t
(** Rounds [capacity] up to a power of two (minimum 2).  Raises
    [Invalid_argument] when not positive. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** Blocks (spinning) while the queue is full.  Producer domain only. *)

val try_push : 'a t -> 'a -> bool
(** [false] when full, without blocking. *)

val pop : 'a t -> 'a option
(** [None] when currently empty (not a close signal).  Consumer domain
    only. *)

val stalls : 'a t -> int
(** Pushes that found the queue full and had to wait, as counted by the
    producer.  Read it after the producer is done (or joined) — it is
    plain producer-side state, not synchronized. *)

val length : 'a t -> int
(** Snapshot of the occupancy; racy by nature, for reporting only. *)

val backoff : int -> unit
(** [backoff spins] after the [spins]-th consecutive failed attempt:
    [Domain.cpu_relax] for the first ~1k, a short sleep beyond — with
    more domains than cores the peer is probably descheduled, and burning
    the shared core only delays it.  Used by [push] internally and by the
    worker's empty-queue wait. *)
