(** Deterministic traffic partitioning for the sharded engine.

    Every analysis the per-shard engines run locally is keyed by either a
    Call-ID (the per-call EFSM systems) or a destination address (the media
    spam/flood detectors, the media index).  The dispatcher therefore only
    has to guarantee two invariants for partition-local detection to equal
    the sequential engine's:

    - every SIP message of one call lands on the same shard
      ([Vids.Intern.hash] of the Call-ID, the same hash the fact base's
      intern table uses, modulo the shard count); and
    - every media packet of one destination address lands on the same
      shard — on the shard of the owning call when the dispatcher saw the
      SDP that advertised the address, so the call's RTP machine is fed.

    SIP messages that cannot be keyed (unparsable, or no Call-ID) route by
    source address, matching the subject of the alert the engine will raise
    for them, so their deduplication stays shard-local too.

    Known approximations, accepted and checked by the property tests: a
    media stream that starts before its SDP is seen routes by destination
    hash and may keep its spam detector on a different shard from the call;
    and the dispatcher never unbinds a media address, so an address reused
    by a later call on another shard keeps its original owner until rebound
    by a new SDP. *)

type t

val create : shards:int -> t
(** Raises [Invalid_argument] when [shards <= 0]. *)

val shards : t -> int

val route : t -> Vids.Trace.record -> int
(** The shard index in [\[0, shards)] this packet belongs to.  Stateful:
    SIP messages carrying SDP bind their media address to the call's shard
    for subsequent media routing.  Must be called from a single dispatcher
    domain, in timestamp order. *)

val media_bindings : t -> int
(** Number of media addresses currently bound to a shard (diagnostics). *)
