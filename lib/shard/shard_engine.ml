module E = Vids.Engine

let snapshot_path prefix i = Printf.sprintf "%s.shard%d" prefix i
let journal_path prefix i = snapshot_path prefix i ^ ".journal"

type checkpoint = { prefix : string; every : Dsim.Time.t }

(* --------------------------------------------------------------- *)
(* Epoch buckets for the deferred global detectors                   *)
(* --------------------------------------------------------------- *)

(* Per-(key, epoch) candidate-event counts, where an epoch is the
   detector's own window length anchored at virtual time zero.  Closed
   epochs are journaled as synthetic Eviction entries (subject
   [epoch_subject]) so recovery can rebuild pre-checkpoint counts. *)
module Bucket = struct
  let epoch_subject = "shard-epoch"

  type t = {
    label : string; (* "flood" | "drdos" *)
    window_us : int;
    counts : (string, (int, int) Hashtbl.t) Hashtbl.t; (* key -> epoch -> count *)
    mutable journaled_below : int; (* epochs < this are already journaled *)
  }

  let create ~label ~window =
    {
      label;
      window_us = Stdlib.max 1 (Dsim.Time.to_us window);
      counts = Hashtbl.create 32;
      journaled_below = 0;
    }

  let epoch_of t at = Dsim.Time.to_us at / t.window_us
  let epoch_end t epoch = Dsim.Time.of_us ((epoch + 1) * t.window_us)

  let per_key t key =
    match Hashtbl.find_opt t.counts key with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 8 in
        Hashtbl.replace t.counts key h;
        h

  let add t ~key ~epoch n =
    let h = per_key t key in
    Hashtbl.replace h epoch ((Option.value (Hashtbl.find_opt h epoch) ~default:0) + n)

  let set t ~key ~epoch n = Hashtbl.replace (per_key t key) epoch n
  let mem t ~key ~epoch =
    match Hashtbl.find_opt t.counts key with
    | None -> false
    | Some h -> Hashtbl.mem h epoch

  (* Journal every count of every epoch in [journaled_below, below). *)
  let close_below t writer below =
    if below > t.journaled_below then begin
      (match writer with
      | None -> ()
      | Some w ->
          Hashtbl.iter
            (fun key h ->
              Hashtbl.iter
                (fun epoch count ->
                  if epoch >= t.journaled_below && epoch < below then
                    Vids.Journal.append w
                      (Vids.Journal.Eviction
                         {
                           at = epoch_end t epoch;
                           subject = epoch_subject;
                           detail = Printf.sprintf "%s %s %d %d" t.label key epoch count;
                         }))
                h)
            t.counts);
      t.journaled_below <- below
    end

  let bump t writer ~at key =
    let epoch = epoch_of t at in
    close_below t writer epoch;
    add t ~key ~epoch 1

  (* "label key epoch count", parsed from the right so a key containing
     spaces survives the round trip. *)
  let parse_delta detail =
    match String.split_on_char ' ' detail with
    | label :: (_ :: _ :: _ as rest) -> (
        let rec last2 acc = function
          | [ e; c ] -> (List.rev acc, e, c)
          | x :: tl -> last2 (x :: acc) tl
          | [] -> ([], "", "")
        in
        let key_parts, e, c = last2 [] rest in
        match (key_parts, int_of_string_opt e, int_of_string_opt c) with
        | _ :: _, Some epoch, Some count ->
            Some (label, String.concat " " key_parts, epoch, count)
        | _ -> None)
    | _ -> None
end

(* --------------------------------------------------------------- *)
(* Worker domains                                                    *)
(* --------------------------------------------------------------- *)

type msg =
  | Rec of Vids.Trace.record
  | Tick of Dsim.Time.t
      (* A checkpoint boundary every shard must take, whether or not any of
         its own records crossed it — keeps snapshot sequence numbers (and
         so the recoverable instants) aligned across shards. *)

type worker_result = {
  w_engine : E.t;
  w_flood : Bucket.t;
  w_drdos : Bucket.t;
  w_latency : Dsim.Stat.Quantiles.t option;
  w_processed : int;
  w_metrics : Obs.Metrics.snapshot option;
      (* A snapshot, not the registry: plain data, safe to carry across the
         Domain.join back to the coordinator. *)
  w_flight : Obs.Trace.entry list;
}

let attach_bucket_listener engine ~flood ~drdos ~writer =
  E.set_global_listener engine
    (Some
       (fun ~at ev ->
         match ev with
         | E.Invite_flood_candidate key -> Bucket.bump flood writer ~at key
         | E.Drdos_candidate key -> Bucket.bump drdos writer ~at key))

let worker ~index ~config ~queue ~closed ~checkpoint ~measure_latency ~horizon ~telemetry
    ~profile ~trace_ring () =
  let sched = Dsim.Scheduler.create () in
  let engine = E.create ~config sched in
  (* Per-domain registry and ring: no sharing, no synchronization; the
     coordinator folds the snapshots after the join.  Profiling rides the
     same registry, so per-stage histograms merge like every other row. *)
  let metrics = if telemetry || profile then Some (Obs.Metrics.create ()) else None in
  let flight = if telemetry then Some (Obs.Trace.create ~capacity:trace_ring ()) else None in
  E.set_telemetry engine ?metrics ?flight ();
  let prof =
    if profile then Option.map (fun m -> Obs.Prof.create ~registry:m ?flight ()) metrics
    else None
  in
  E.set_profiler engine prof;
  let penter s = match prof with None -> () | Some p -> Obs.Prof.enter p s in
  let pexit s = match prof with None -> () | Some p -> Obs.Prof.exit p s in
  let ck_hist =
    Option.map
      (fun m ->
        Obs.Metrics.histogram m "vids_checkpoint_seconds"
          ~help:"Wall-clock duration of one shard checkpoint (snapshot save + journal marker)")
      metrics
  in
  let flood = Bucket.create ~label:"flood" ~window:config.Vids.Config.invite_flood_window in
  let drdos = Bucket.create ~label:"drdos" ~window:config.Vids.Config.drdos_window in
  let journal =
    match checkpoint with
    | None -> None
    | Some ck ->
        let w = Vids.Journal.create_writer ?registry:metrics (journal_path ck.prefix index) in
        Vids.Journal.attach w engine;
        Some w
  in
  attach_bucket_listener engine ~flood ~drdos ~writer:journal;
  let alloc = Dsim.Packet.allocator () in
  let seq = ref 0 in
  let next_ck = ref (match checkpoint with Some ck -> ck.every | None -> Dsim.Time.zero) in
  let latency = if measure_latency then Some (Dsim.Stat.Quantiles.create ()) else None in
  let processed = ref 0 in
  let do_checkpoint ck at =
    (* Same-instant ordering as the sequential offline path: records at
       exactly the boundary were already processed (strict [>] below), so
       they are inside the snapshot; timers due exactly at the boundary
       stay pending and are captured as armed. *)
    penter Obs.Prof.Checkpoint;
    let t0 = match ck_hist with None -> 0.0 | Some _ -> Unix.gettimeofday () in
    Dsim.Scheduler.advance_to sched at;
    incr seq;
    Bucket.close_below flood journal (Bucket.epoch_of flood at);
    Bucket.close_below drdos journal (Bucket.epoch_of drdos at);
    Vids.Snapshot.save
      ~path:(snapshot_path ck.prefix index)
      (Vids.Snapshot.capture ~seq:!seq ~at engine);
    Option.iter
      (fun w -> Vids.Journal.append w (Vids.Journal.Checkpoint { at; seq = !seq }))
      journal;
    Option.iter (fun fl -> Obs.Trace.record fl ~at (Obs.Trace.Checkpoint { seq = !seq })) flight;
    Option.iter (fun h -> Obs.Metrics.observe h (Unix.gettimeofday () -. t0)) ck_hist;
    pexit Obs.Prof.Checkpoint
  in
  let checkpoints_below at ~strict =
    match checkpoint with
    | None -> ()
    | Some ck ->
        while
          (if strict then Dsim.Time.( > ) at !next_ck else Dsim.Time.( >= ) at !next_ck)
        do
          do_checkpoint ck !next_ck;
          next_ck := Dsim.Time.add !next_ck ck.every
        done
  in
  let handle = function
    | Tick at -> checkpoints_below at ~strict:false
    | Rec (r : Vids.Trace.record) ->
        (* [Ring_drain] covers the pop-to-dispatch turnaround; the engine's
           own spans nest inside it, so its self time is the advance_to +
           packet-construction glue the engine never sees. *)
        penter Obs.Prof.Ring_drain;
        checkpoints_below r.at ~strict:true;
        Dsim.Scheduler.advance_to sched r.at;
        let packet = Dsim.Packet.make alloc ~src:r.src ~dst:r.dst ~sent_at:r.at r.payload in
        (match latency with
        | None -> E.process_packet engine packet
        | Some q ->
            let t0 = Unix.gettimeofday () in
            E.process_packet engine packet;
            Dsim.Stat.Quantiles.add q (Unix.gettimeofday () -. t0));
        incr processed;
        pexit Obs.Prof.Ring_drain
  in
  let rec loop spins =
    match Spsc.pop queue with
    | Some m ->
        handle m;
        loop 0
    | None ->
        (* The producer publishes every push before setting [closed], so one
           more drain after observing the flag sees everything. *)
        if Atomic.get closed then
          match Spsc.pop queue with
          | Some m ->
              handle m;
              loop 0
          | None -> ()
        else begin
          Spsc.backoff spins;
          loop (spins + 1)
        end
  in
  loop 0;
  (match horizon with
  | Some h -> Dsim.Scheduler.run_until sched h
  | None -> Dsim.Scheduler.run sched);
  Option.iter Vids.Journal.close_writer journal;
  {
    w_engine = engine;
    w_flood = flood;
    w_drdos = drdos;
    w_latency = latency;
    w_processed = !processed;
    w_metrics = Option.map Obs.Metrics.snapshot metrics;
    w_flight = (match flight with None -> [] | Some fl -> Obs.Trace.entries fl);
  }

(* --------------------------------------------------------------- *)
(* Coordinator                                                       *)
(* --------------------------------------------------------------- *)

type shard_stat = {
  fed : int;
  stalls : int;
  counters : E.counters;
  memory : Vids.Fact_base.stats;
}

type outcome = {
  shards : int;
  alerts : Vids.Alert.t list;
  counters : E.counters;
  global_alerts : Vids.Alert.t list;
  per_shard : shard_stat array;
  engines : E.t array;
  latency : Dsim.Stat.Quantiles.t option;
  metrics : Obs.Metrics.snapshot option;
  flights : Obs.Trace.entry list array;
}

type t = {
  n : int;
  partition : Partition.t;
  queues : msg Spsc.t array;
  closed : bool Atomic.t;
  domains : worker_result Domain.t array;
  checkpoint : checkpoint option;
  config : Vids.Config.t; (* the worker config, deferral already applied *)
  fed_per_shard : int array;
  coord_metrics : Obs.Metrics.t option; (* dispatcher-side registry *)
  coord_prof : Obs.Prof.t option; (* partition/ring-publish spans *)
  depth_hists : Obs.Metrics.histogram array; (* per shard, when telemetry is on *)
  mutable next_tick : Dsim.Time.t;
  mutable last_at : Dsim.Time.t;
  mutable finished : outcome option;
}

(* Shards cannot see cross-call totals, so with more than one of them the
   INVITE-flood and DRDoS machines are deferred to the coordinator's
   aggregation; a single shard keeps them local and behaves exactly like
   the sequential engine. *)
let shard_config ~shards config =
  if shards > 1 then { config with Vids.Config.defer_global_detectors = true } else config

let create ?(config = Vids.Config.default) ?(queue_capacity = 1024) ?checkpoint
    ?(measure_latency = false) ?horizon ?(telemetry = false) ?(profile = false)
    ?(trace_ring = 256) ~shards () =
  if shards <= 0 then invalid_arg "Shard_engine.create: shards must be positive";
  let config = shard_config ~shards config in
  let queues = Array.init shards (fun _ -> Spsc.create ~capacity:queue_capacity) in
  let closed = Atomic.make false in
  let domains =
    Array.init shards (fun index ->
        let queue = queues.(index) in
        Domain.spawn
          (worker ~index ~config ~queue ~closed ~checkpoint ~measure_latency ~horizon ~telemetry
             ~profile ~trace_ring))
  in
  let coord_metrics = if telemetry || profile then Some (Obs.Metrics.create ()) else None in
  let coord_prof =
    if profile then Option.map (fun m -> Obs.Prof.create ~registry:m ()) coord_metrics
    else None
  in
  let depth_hists =
    match coord_metrics with
    | None -> [||]
    | Some m ->
        Array.init shards (fun i ->
            Obs.Metrics.histogram m "vids_queue_depth"
              ~help:"Feed-queue occupancy sampled at each dispatch"
              ~labels:[ ("shard", string_of_int i) ])
  in
  {
    n = shards;
    partition = Partition.create ~shards;
    queues;
    closed;
    domains;
    checkpoint;
    config;
    fed_per_shard = Array.make shards 0;
    coord_metrics;
    coord_prof;
    depth_hists;
    next_tick = (match checkpoint with Some ck -> ck.every | None -> Dsim.Time.zero);
    last_at = Dsim.Time.zero;
    finished = None;
  }

let feed t (r : Vids.Trace.record) =
  if t.finished <> None then invalid_arg "Shard_engine.feed: already finished";
  if Dsim.Time.( < ) r.at t.last_at then
    invalid_arg "Shard_engine.feed: records must arrive in non-decreasing time order";
  t.last_at <- r.at;
  (match t.checkpoint with
  | None -> ()
  | Some ck ->
      (* Broadcast each crossed checkpoint boundary so every shard takes
         snapshot [k] at virtual time [k * every], records or not. *)
      while Dsim.Time.( > ) r.at t.next_tick do
        Array.iter (fun q -> Spsc.push q (Tick t.next_tick)) t.queues;
        t.next_tick <- Dsim.Time.add t.next_tick ck.every
      done);
  let penter s = match t.coord_prof with None -> () | Some p -> Obs.Prof.enter p s in
  let pexit s = match t.coord_prof with None -> () | Some p -> Obs.Prof.exit p s in
  penter Obs.Prof.Partition;
  let shard = Partition.route t.partition r in
  pexit Obs.Prof.Partition;
  (* The publish span includes any backpressure stall: time the dispatcher
     spends blocked on a full ring is exactly the cost worth seeing. *)
  penter Obs.Prof.Ring_publish;
  Spsc.push t.queues.(shard) (Rec r);
  pexit Obs.Prof.Ring_publish;
  t.fed_per_shard.(shard) <- t.fed_per_shard.(shard) + 1;
  if Array.length t.depth_hists > 0 then
    (* [Spsc.length] is a racy snapshot — fine for a load histogram. *)
    Obs.Metrics.observe t.depth_hists.(shard) (Float.of_int (Spsc.length t.queues.(shard)))

let fed t = Array.fold_left ( + ) 0 t.fed_per_shard

(* --------------------------------------------------------------- *)
(* Cross-shard aggregation                                           *)
(* --------------------------------------------------------------- *)

(* Sum per-shard buckets, then flag every key whose two consecutive epochs
   total more than the threshold.  Any burst the sequential anchored window
   flags lies within two fixed epochs, so this is a conservative superset
   firing at most one epoch later. *)
let aggregate_detector ~kind ~subject_prefix ~threshold ~detail (buckets : Bucket.t array) =
  if Array.length buckets = 0 then []
  else begin
    let window_us = buckets.(0).Bucket.window_us in
    let totals : (string, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 32 in
    Array.iter
      (fun (b : Bucket.t) ->
        Hashtbl.iter
          (fun key h ->
            let into =
              match Hashtbl.find_opt totals key with
              | Some h -> h
              | None ->
                  let h = Hashtbl.create 8 in
                  Hashtbl.replace totals key h;
                  h
            in
            Hashtbl.iter
              (fun epoch count ->
                Hashtbl.replace into epoch
                  ((Option.value (Hashtbl.find_opt into epoch) ~default:0) + count))
              h)
          b.Bucket.counts)
      buckets;
    let keys = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) totals []) in
    List.filter_map
      (fun key ->
        let h = Hashtbl.find totals key in
        let epochs = List.sort Stdlib.compare (Hashtbl.fold (fun e _ acc -> e :: acc) h []) in
        let count e = Option.value (Hashtbl.find_opt h e) ~default:0 in
        let crossing =
          List.find_opt (fun e -> count (e - 1) + count e > threshold) epochs
        in
        Option.map
          (fun e ->
            Vids.Alert.make ~kind
              ~at:(Dsim.Time.of_us ((e + 1) * window_us))
              ~subject:(subject_prefix ^ key) detail)
          crossing)
      keys
  end

let aggregate_global ~config ~shards (floods : Bucket.t array) (drdoses : Bucket.t array) =
  let flood_alerts =
    aggregate_detector ~kind:Vids.Alert.Invite_flood ~subject_prefix:"dst:"
      ~threshold:config.Vids.Config.invite_flood_threshold
      ~detail:
        (Printf.sprintf "more than %d INVITEs within the window (aggregated across %d shards)"
           config.Vids.Config.invite_flood_threshold shards)
      floods
  in
  let drdos_alerts =
    aggregate_detector ~kind:Vids.Alert.Drdos ~subject_prefix:"victim:"
      ~threshold:config.Vids.Config.drdos_threshold
      ~detail:
        (Printf.sprintf
           "more than %d unsolicited SIP responses within the window (aggregated across %d \
            shards)"
           config.Vids.Config.drdos_threshold shards)
      drdoses
  in
  flood_alerts @ drdos_alerts

(* --------------------------------------------------------------- *)
(* Merge                                                             *)
(* --------------------------------------------------------------- *)

let alert_order (a : Vids.Alert.t) (b : Vids.Alert.t) =
  let ( <?> ) c next = if c <> 0 then c else next () in
  Dsim.Time.compare a.at b.at <?> fun () ->
  String.compare (Vids.Alert.kind_to_string a.kind) (Vids.Alert.kind_to_string b.kind)
  <?> fun () ->
  String.compare a.subject b.subject <?> fun () -> String.compare a.detail b.detail

(* Earliest instance of each dedup key survives (the list is sorted by
   time); later cross-shard duplicates count as suppressed, exactly as the
   sequential engine would have counted them. *)
let dedup_sorted alerts =
  let seen = Hashtbl.create 64 in
  let dropped = ref 0 in
  let kept =
    List.filter
      (fun a ->
        let key = Vids.Alert.dedup_key a in
        if Hashtbl.mem seen key then begin
          incr dropped;
          false
        end
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      alerts
  in
  (kept, !dropped)

let zero_counters =
  {
    E.sip_packets = 0;
    rtp_packets = 0;
    rtcp_packets = 0;
    other_packets = 0;
    malformed_packets = 0;
    orphan_requests = 0;
    orphan_responses = 0;
    alerts_raised = 0;
    alerts_suppressed = 0;
    anomalies = 0;
    faults = 0;
    rtp_shed = 0;
    backpressure_stalls = 0;
  }

let add_counters (a : E.counters) (b : E.counters) =
  {
    E.sip_packets = a.sip_packets + b.sip_packets;
    rtp_packets = a.rtp_packets + b.rtp_packets;
    rtcp_packets = a.rtcp_packets + b.rtcp_packets;
    other_packets = a.other_packets + b.other_packets;
    malformed_packets = a.malformed_packets + b.malformed_packets;
    orphan_requests = a.orphan_requests + b.orphan_requests;
    orphan_responses = a.orphan_responses + b.orphan_responses;
    alerts_raised = a.alerts_raised + b.alerts_raised;
    alerts_suppressed = a.alerts_suppressed + b.alerts_suppressed;
    anomalies = a.anomalies + b.anomalies;
    faults = a.faults + b.faults;
    rtp_shed = a.rtp_shed + b.rtp_shed;
    backpressure_stalls = a.backpressure_stalls + b.backpressure_stalls;
  }

let merge_results ?coord_snapshot ~n ~config ~fed_per_shard ~stalls_per_shard
    (results : worker_result array) =
  let engines = Array.map (fun r -> r.w_engine) results in
  Array.iteri (fun i e -> E.add_backpressure_stalls e stalls_per_shard.(i)) engines;
  let global_alerts =
    if n > 1 then
      aggregate_global ~config ~shards:n
        (Array.map (fun r -> r.w_flood) results)
        (Array.map (fun r -> r.w_drdos) results)
    else []
  in
  let all =
    List.sort alert_order
      (global_alerts @ List.concat_map E.alerts (Array.to_list engines))
  in
  let merged, cross_dups = dedup_sorted all in
  let summed =
    Array.fold_left (fun acc e -> add_counters acc (E.counters e)) zero_counters engines
  in
  let counters =
    {
      summed with
      E.alerts_raised = List.length merged;
      alerts_suppressed = summed.E.alerts_suppressed + cross_dups;
    }
  in
  let per_shard =
    Array.mapi
      (fun i e ->
        {
          fed = fed_per_shard.(i);
          stalls = stalls_per_shard.(i);
          counters = E.counters e;
          memory = E.memory_stats e;
        })
      engines
  in
  let latency =
    Array.fold_left
      (fun acc r ->
        match (acc, r.w_latency) with
        | None, q | q, None -> q
        | Some a, Some b -> Some (Dsim.Stat.Quantiles.merge a b))
      None results
  in
  let metrics =
    let snaps =
      Option.to_list coord_snapshot
      @ List.filter_map (fun r -> r.w_metrics) (Array.to_list results)
    in
    match snaps with
    | [] -> None
    | s :: rest -> Some (List.fold_left Obs.Metrics.merge s rest)
  in
  {
    shards = n;
    alerts = merged;
    counters;
    global_alerts;
    per_shard;
    engines;
    latency;
    metrics;
    flights = Array.map (fun r -> r.w_flight) results;
  }

let finish t =
  match t.finished with
  | Some outcome -> outcome
  | None ->
      Atomic.set t.closed true;
      let results = Array.map Domain.join t.domains in
      let stalls = Array.map Spsc.stalls t.queues in
      (match t.coord_metrics with
      | None -> ()
      | Some m ->
          Array.iteri
            (fun i s ->
              Obs.Metrics.add
                (Obs.Metrics.counter m "vids_queue_stalls_total"
                   ~help:"Producer stalls pushing into the shard's bounded feed queue"
                   ~labels:[ ("shard", string_of_int i) ])
                s)
            stalls);
      let coord_snapshot = Option.map Obs.Metrics.snapshot t.coord_metrics in
      let outcome =
        merge_results ?coord_snapshot ~n:t.n ~config:t.config ~fed_per_shard:t.fed_per_shard
          ~stalls_per_shard:stalls results
      in
      t.finished <- Some outcome;
      outcome

let run_trace ?config ?queue_capacity ?checkpoint ?measure_latency ?horizon ?telemetry ?profile
    ?trace_ring ~shards records =
  let t =
    create ?config ?queue_capacity ?checkpoint ?measure_latency ?horizon ?telemetry ?profile
      ?trace_ring ~shards ()
  in
  let sorted =
    List.stable_sort (fun (a : Vids.Trace.record) b -> Dsim.Time.compare a.at b.at) records
  in
  List.iter (feed t) sorted;
  finish t

(* --------------------------------------------------------------- *)
(* Report                                                            *)
(* --------------------------------------------------------------- *)

let report ppf (o : outcome) =
  let c = o.counters in
  let sum f = Array.fold_left (fun acc s -> acc + f s.memory) 0 o.per_shard in
  Format.fprintf ppf "shards: %d workers, %d records dispatched@." o.shards
    (Array.fold_left (fun acc s -> acc + s.fed) 0 o.per_shard);
  Format.fprintf ppf "traffic: %d SIP, %d RTP, %d RTCP, %d other, %d malformed@." c.E.sip_packets
    c.E.rtp_packets c.E.rtcp_packets c.E.other_packets c.E.malformed_packets;
  Format.fprintf ppf "orphans: %d requests, %d responses@." c.E.orphan_requests
    c.E.orphan_responses;
  let by_severity severity =
    List.length (List.filter (fun a -> a.Vids.Alert.severity = severity) o.alerts)
  in
  Format.fprintf ppf
    "alerts: %d distinct (%d critical, %d warning), %d duplicates suppressed, %d cross-shard@."
    c.E.alerts_raised (by_severity Vids.Alert.Critical) (by_severity Vids.Alert.Warning)
    c.E.alerts_suppressed (List.length o.global_alerts);
  Format.fprintf ppf "calls: %d active, %d created, %d deleted@."
    (sum (fun m -> m.Vids.Fact_base.active_calls))
    (sum (fun m -> m.Vids.Fact_base.calls_created))
    (sum (fun m -> m.Vids.Fact_base.calls_deleted));
  Format.fprintf ppf "memory: %d B modeled, %d B measured; %d detectors@."
    (sum (fun m -> m.Vids.Fact_base.modeled_bytes))
    (sum (fun m -> m.Vids.Fact_base.measured_bytes))
    (sum (fun m -> m.Vids.Fact_base.detectors));
  if c.E.backpressure_stalls > 0 then
    Format.fprintf ppf "backpressure: %d producer stalls on the feed queues@."
      c.E.backpressure_stalls;
  (match o.latency with
  | None -> ()
  | Some q -> Format.fprintf ppf "per-packet latency: %a@." Dsim.Stat.Quantiles.pp q);
  Format.fprintf ppf "analysis cpu: %a@."
    Dsim.Time.pp
    (Array.fold_left (fun acc e -> Dsim.Time.add acc (E.cpu_busy e)) Dsim.Time.zero o.engines);
  Format.fprintf ppf "@.";
  (if o.alerts = [] then Format.fprintf ppf "no alerts.@."
   else
     List.iter
       (fun kind ->
         match List.filter (fun a -> a.Vids.Alert.kind = kind) o.alerts with
         | [] -> ()
         | group ->
             Format.fprintf ppf "%a (%d):@." Vids.Alert.pp_kind kind (List.length group);
             List.iter (fun a -> Format.fprintf ppf "  %a@." Vids.Alert.pp a) group)
       Vids.Alert.all_kinds);
  Format.fprintf ppf "@.";
  Array.iteri
    (fun i s ->
      Format.fprintf ppf
        "shard %d: %d records, %d sip, %d rtp, %d alerts, %d stalls, %d active calls@." i s.fed
        s.counters.E.sip_packets s.counters.E.rtp_packets s.counters.E.alerts_raised s.stalls
        s.memory.Vids.Fact_base.active_calls)
    o.per_shard

(* --------------------------------------------------------------- *)
(* Recovery                                                          *)
(* --------------------------------------------------------------- *)

type recovery = {
  outcome : outcome;
  snapshot_seq : int;
  snapshot_at : Dsim.Time.t;
  replayed : int;
  used_fallback : bool array;
}

let ( let* ) = Result.bind

(* Candidate snapshots for one shard: primary first, rotated fallback
   second.  Either may be missing or torn. *)
let shard_candidates prefix i =
  let path = snapshot_path prefix i in
  let try_load p fb =
    match Vids.Snapshot.load p with Ok s -> [ (s, fb) ] | Error _ -> []
  in
  try_load path false @ try_load (Vids.Snapshot.previous_path path) true

let recover ?(config = Vids.Config.default) ?horizon ?(telemetry = false) ~prefix ~shards:n
    ~trace () =
  if n <= 0 then invalid_arg "Shard_engine.recover: shards must be positive";
  let worker_config = shard_config ~shards:n config in
  let candidates = Array.init n (shard_candidates prefix) in
  let* target_seq =
    Array.to_seqi candidates
    |> Seq.fold_left
         (fun acc (i, cands) ->
           let* acc = acc in
           match cands with
           | [] -> Error (Printf.sprintf "shard %d: no loadable snapshot" i)
           | _ ->
               let best =
                 List.fold_left (fun m (s, _) -> Stdlib.max m (Vids.Snapshot.seq s)) 0 cands
               in
               Ok (Stdlib.min acc best))
         (Ok max_int)
  in
  let* chosen =
    Array.to_seqi candidates
    |> Seq.fold_left
         (fun acc (i, cands) ->
           let* acc = acc in
           match List.find_opt (fun (s, _) -> Vids.Snapshot.seq s = target_seq) cands with
           | Some pick -> Ok (pick :: acc)
           | None ->
               Error
                 (Printf.sprintf
                    "shard %d: no snapshot at consistent checkpoint #%d (shards diverged by \
                     more than one rotation)"
                    i target_seq))
         (Ok [])
  in
  let chosen = Array.of_list (List.rev chosen) in
  (* Deterministic re-partition of the full trace rebuilds the dispatch
     decisions — including media bindings — every shard saw live. *)
  let sorted =
    List.stable_sort (fun (a : Vids.Trace.record) b -> Dsim.Time.compare a.at b.at) trace
  in
  let partition = Partition.create ~shards:n in
  let shard_traces = Array.make n [] in
  List.iter
    (fun r ->
      let s = Partition.route partition r in
      shard_traces.(s) <- r :: shard_traces.(s))
    sorted;
  let shard_traces = Array.map List.rev shard_traces in
  let journals =
    Array.init n (fun i ->
        match Vids.Journal.load_lenient (journal_path prefix i) with
        | Ok (entries, _skipped) -> entries
        | Error _ -> [])
  in
  (* Buckets: journaled counts are authoritative for their (key, epoch);
     the replayed suffix fills only the epochs the journal never closed. *)
  let journaled_of label entries bucket =
    List.iter
      (function
        | Vids.Journal.Eviction { subject; detail; _ }
          when String.equal subject Bucket.epoch_subject -> (
            match Bucket.parse_delta detail with
            | Some (l, key, epoch, count) when String.equal l label ->
                Bucket.set bucket ~key ~epoch count
            | Some _ | None -> ())
        | Vids.Journal.Alert _ | Vids.Journal.Eviction _ | Vids.Journal.Checkpoint _
        | Vids.Journal.Ext _ -> ())
      entries;
    bucket
  in
  let recover_shard i =
    let snap, _fallback = chosen.(i) in
    let replay_flood =
      Bucket.create ~label:"flood" ~window:worker_config.Vids.Config.invite_flood_window
    in
    let replay_drdos =
      Bucket.create ~label:"drdos" ~window:worker_config.Vids.Config.drdos_window
    in
    let metrics = if telemetry then Some (Obs.Metrics.create ()) else None in
    let flight = if telemetry then Some (Obs.Trace.create ()) else None in
    let prepare _sched engine =
      E.set_telemetry engine ?metrics ?flight ();
      attach_bucket_listener engine ~flood:replay_flood ~drdos:replay_drdos ~writer:None
    in
    let* o =
      Vids.Recovery.recover ~config:worker_config ~prepare ~journal:journals.(i)
        ~trace:shard_traces.(i) ?until:horizon snap
    in
    let flood =
      journaled_of "flood" journals.(i)
        (Bucket.create ~label:"flood" ~window:worker_config.Vids.Config.invite_flood_window)
    in
    let drdos =
      journaled_of "drdos" journals.(i)
        (Bucket.create ~label:"drdos" ~window:worker_config.Vids.Config.drdos_window)
    in
    let fill into (from : Bucket.t) =
      Hashtbl.iter
        (fun key h ->
          Hashtbl.iter
            (fun epoch count ->
              if not (Bucket.mem into ~key ~epoch) then Bucket.set into ~key ~epoch count)
            h)
        from.Bucket.counts
    in
    fill flood replay_flood;
    fill drdos replay_drdos;
    Ok
      ( {
          w_engine = o.Vids.Recovery.engine;
          w_flood = flood;
          w_drdos = drdos;
          w_latency = None;
          w_processed = o.Vids.Recovery.replayed;
          w_metrics = Option.map Obs.Metrics.snapshot metrics;
          w_flight = (match flight with None -> [] | Some fl -> Obs.Trace.entries fl);
        },
        o.Vids.Recovery.replayed )
  in
  let* results =
    let rec go i acc =
      if i = n then Ok (List.rev acc)
      else
        match recover_shard i with
        | Error e -> Error (Printf.sprintf "shard %d: %s" i e)
        | Ok r -> go (i + 1) (r :: acc)
    in
    go 0 []
  in
  let results = Array.of_list results in
  let workers = Array.map fst results in
  let replayed = Array.fold_left (fun acc (_, r) -> acc + r) 0 results in
  let outcome =
    merge_results ~n ~config:worker_config
      ~fed_per_shard:(Array.map List.length shard_traces)
      ~stalls_per_shard:(Array.make n 0) workers
  in
  Ok
    {
      outcome;
      snapshot_seq = target_seq;
      snapshot_at = Vids.Snapshot.at (fst chosen.(0));
      replayed;
      used_fallback = Array.map snd chosen;
    }
