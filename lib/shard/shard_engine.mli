(** Sharded multi-core analysis engine.

    Scales the single-threaded {!Vids.Engine} across OCaml 5 domains while
    keeping its detection semantics: a dispatcher partitions traffic by
    Call-ID / media binding ({!Partition}), each of N worker domains owns a
    private engine on a private virtual clock fed through a bounded
    {!Spsc} queue (backpressure blocks and is counted, never dropped), and
    a coordinator merges the per-shard results into one report.

    Partition-local analyses (per-call machines, media spam/flood, all
    Spec_deviation checks) are exact: each is keyed by Call-ID or
    destination address, which the partition keeps on one shard, so the
    merged alert multiset equals the sequential engine's.  The two
    detectors that need {e cross-call} totals — INVITE flooding and DRDoS
    reflection — are deferred on the shards
    ([Config.defer_global_detectors]): workers count their candidate
    events per (key, epoch) bucket, where an epoch is the detector's own
    window length, and the coordinator sums the buckets across shards at
    the end of the run.  A key whose two consecutive epochs total more
    than the threshold is flagged; any burst the sequential anchored
    window flags spans at most two fixed epochs, so the aggregate detector
    is a conservative superset that fires within one epoch of the
    sequential alert.

    Worker clocks replay the batch semantics exactly: for each record the
    worker advances its scheduler to the record's timestamp
    ({!Dsim.Scheduler.advance_to} — timers strictly earlier fire first,
    same-instant packets beat timers) and then processes the packet.

    With [shards = 1] no deferral happens and the single worker behaves
    exactly like the sequential engine. *)

type checkpoint = {
  prefix : string;
      (** Shard [i] snapshots to [prefix ^ ".shard" ^ i] (rotating the
          previous one to [….1]) with a write-ahead journal at
          [… ^ ".journal"]. *)
  every : Dsim.Time.t;  (** Virtual-time checkpoint period. *)
}

val snapshot_path : string -> int -> string
val journal_path : string -> int -> string

type shard_stat = {
  fed : int;  (** Records routed to this shard. *)
  stalls : int;  (** Producer stalls pushing into this shard's queue. *)
  counters : Vids.Engine.counters;
  memory : Vids.Fact_base.stats;
}

type outcome = {
  shards : int;
  alerts : Vids.Alert.t list;
      (** Merged: per-shard alerts plus coordinator global alerts, sorted
          by (time, kind, subject, detail) and de-duplicated across shards
          keeping the earliest — deterministic for a given trace and shard
          count. *)
  counters : Vids.Engine.counters;
      (** Field-wise sums; [alerts_raised] is the merged distinct count and
          cross-shard duplicates are added to [alerts_suppressed], so the
          totals match a sequential run. *)
  global_alerts : Vids.Alert.t list;
      (** The coordinator's cross-shard INVITE-flood / DRDoS alerts
          (already included in [alerts]). *)
  per_shard : shard_stat array;
  engines : Vids.Engine.t array;
      (** The worker engines, safe to inspect once {!finish} returned. *)
  latency : Dsim.Stat.Quantiles.t option;
      (** Merged per-packet wall-clock processing latency, when measured. *)
  metrics : Obs.Metrics.snapshot option;
      (** With [telemetry]: every per-worker registry folded through
          {!Obs.Metrics.merge}, plus the coordinator's own queue-depth
          histograms and per-shard stall counters — one export whose
          traffic-counter totals equal a sequential instrumented run's. *)
  flights : Obs.Trace.entry list array;
      (** With [telemetry]: each worker's flight-recorder tail (empty lists
          otherwise). *)
}

type t

val create :
  ?config:Vids.Config.t ->
  ?queue_capacity:int ->
  ?checkpoint:checkpoint ->
  ?measure_latency:bool ->
  ?horizon:Dsim.Time.t ->
  ?telemetry:bool ->
  ?profile:bool ->
  ?trace_ring:int ->
  shards:int ->
  unit ->
  t
(** Spawns [shards] worker domains.  [queue_capacity] (default 1024) bounds
    each feed queue.  [horizon], when given, bounds the end-of-run drain
    ([run_until] instead of [run]) — required for governed configs whose
    periodic sweep re-arms forever.  With [shards > 1] the worker engines
    run with [defer_global_detectors] set.

    [telemetry] (default false) gives every worker domain a private
    {!Obs.Metrics} registry and an {!Obs.Trace} ring of [trace_ring]
    (default 256) entries, plus a dispatcher-side registry sampling
    [vids_queue_depth{shard}] at each dispatch; {!finish} folds them into
    [outcome.metrics] / [outcome.flights].

    [profile] (default false) attaches an {!Obs.Prof} hot-path profiler to
    every worker engine (parse / dispatch / detect / checkpoint spans plus
    a worker-side [Ring_drain] span per record) and to the dispatcher
    ([Partition] and [Ring_publish] — the publish span includes
    backpressure stalls).  Per-stage histograms live in the same per-domain
    registries, so the merged [outcome.metrics] carries cross-shard
    per-stage totals exactly like every other row; [profile] forces those
    registries on even without [telemetry].  Raises [Invalid_argument]
    when [shards <= 0]. *)

val feed : t -> Vids.Trace.record -> unit
(** Routes one record to its shard, blocking (and counting a stall) when
    that queue is full.  Records must arrive in non-decreasing timestamp
    order; a decreasing timestamp raises [Invalid_argument].  Call from
    one dispatcher thread only. *)

val fed : t -> int
(** Records dispatched so far. *)

val finish : t -> outcome
(** Closes the queues, joins every worker domain, runs the cross-shard
    aggregation and merge.  Idempotent: later calls return the same
    outcome.  No worker engine may be touched before this returns. *)

val run_trace :
  ?config:Vids.Config.t ->
  ?queue_capacity:int ->
  ?checkpoint:checkpoint ->
  ?measure_latency:bool ->
  ?horizon:Dsim.Time.t ->
  ?telemetry:bool ->
  ?profile:bool ->
  ?trace_ring:int ->
  shards:int ->
  Vids.Trace.record list ->
  outcome
(** Sort (stable, by timestamp), dispatch, finish — the sharded
    counterpart of [Vids.Trace.replay]. *)

val report : Format.formatter -> outcome -> unit
(** The merged report in [Vids.Report.full]'s shape — aggregate traffic /
    alert / memory summary, the alert log grouped by kind — followed by a
    per-shard load table. *)

(** {1 Recovery}

    Each worker checkpoints independently at the same virtual-time
    boundaries, so snapshot sequence number [k] means virtual time
    [k * every] on every shard.  Recovery picks the highest checkpoint
    sequence available on {e all} shards (using a shard's rotated [.1]
    snapshot when its primary is ahead of or torn relative to the others),
    restores every shard to that consistent instant, re-partitions the
    full trace with a fresh {!Partition} (deterministic, so media bindings
    rebuild identically), and replays each shard's post-checkpoint suffix.

    Global-detector state is not part of the engine snapshots; instead
    workers journal each closed (key, epoch) count as it closes.  Recovery
    rebuilds the buckets from the journal where present and from the
    replayed suffix otherwise, so at most the still-open epoch's
    pre-checkpoint counts are lost — the aggregate detector's one-epoch
    slack already covers that. *)

type recovery = {
  outcome : outcome;
  snapshot_seq : int;  (** The consistent checkpoint all shards restored to. *)
  snapshot_at : Dsim.Time.t;
  replayed : int;  (** Trace records replayed across all shards. *)
  used_fallback : bool array;  (** Shards restored from their rotated [.1] snapshot. *)
}

val recover :
  ?config:Vids.Config.t ->
  ?horizon:Dsim.Time.t ->
  ?telemetry:bool ->
  prefix:string ->
  shards:int ->
  trace:Vids.Trace.record list ->
  unit ->
  (recovery, string) result
(** [Error] when any shard has no loadable snapshot at the consistent
    sequence number.  With [telemetry], each restored engine's replay is
    instrumented and the merged snapshot lands in [outcome.metrics]. *)
