type t = {
  shards : int;
  (* Calls the engines will have created (an INVITE was seen): SDP from a
     message of such a call binds its media address to the call's shard,
     mirroring [Engine]'s register rules.  Never pruned — the dispatcher
     cannot see shard-local deletions, and a stale binding only costs a
     rebind when the address is reused. *)
  known_calls : (string, unit) Hashtbl.t;
  media_map : (string, int) Hashtbl.t; (* media addr string -> shard *)
}

let create ~shards =
  if shards <= 0 then invalid_arg "Partition.create: shards must be positive";
  { shards; known_calls = Hashtbl.create 256; media_map = Hashtbl.create 256 }

let shards t = t.shards

let hash_to_shard t s = Vids.Intern.hash s mod t.shards

(* Mirror of [Vids.Sip_event.sdp_args]'s media extraction: the first audio
   media of an SDP body, with its connection address. *)
let sdp_media_addr (msg : Sip.Msg.t) =
  match (Sip.Msg.content_type msg, msg.Sip.Msg.body) with
  | Some ct, body when String.length body > 0 && String.equal ct "application/sdp" -> (
      match Sdp.parse body with
      | Error _ -> None
      | Ok description -> (
          match Sdp.first_audio description with
          | None -> None
          | Some media ->
              Option.map
                (fun (host, port) -> Dsim.Addr.v host port)
                (Sdp.media_addr description media)))
  | _ -> None

let route_sip t (r : Vids.Trace.record) =
  match Sip.Msg.parse r.payload with
  | Error _ ->
      (* The engine reports an unparsable message under its source address;
         route by the same key so duplicates from one source dedup locally. *)
      hash_to_shard t (Dsim.Addr.to_string r.src)
  | Ok msg -> (
      match Sip.Msg.call_id msg with
      | Error _ -> hash_to_shard t (Dsim.Addr.to_string r.src)
      | Ok call_id ->
          let shard = hash_to_shard t call_id in
          let is_invite =
            match msg.Sip.Msg.start with
            | Sip.Msg.Request { meth = Sip.Msg_method.INVITE; _ } -> true
            | Sip.Msg.Request _ | Sip.Msg.Response _ -> false
          in
          if is_invite then Hashtbl.replace t.known_calls call_id ();
          (if is_invite || Hashtbl.mem t.known_calls call_id then
             match sdp_media_addr msg with
             | None -> ()
             | Some addr -> Hashtbl.replace t.media_map (Dsim.Addr.to_string addr) shard);
          shard)

let route t (r : Vids.Trace.record) =
  let sip_port = Vids.Classifier.sip_port in
  if Dsim.Addr.port r.src = sip_port || Dsim.Addr.port r.dst = sip_port then route_sip t r
  else
    let dst = Dsim.Addr.to_string r.dst in
    match Hashtbl.find_opt t.media_map dst with
    | Some shard -> shard
    | None -> hash_to_shard t dst

let media_bindings t = Hashtbl.length t.media_map
