let count severity findings =
  List.length (List.filter (fun (f : Finding.t) -> f.Finding.severity = severity) findings)

let summary report =
  let all = Verifier.all_findings report in
  Printf.sprintf "%d machine(s): %d error(s), %d warning(s), %d info"
    (List.length report.Verifier.machines)
    (count Finding.Error all) (count Finding.Warning all) (count Finding.Info all)

let render_machine_text (m : Verifier.machine_report) =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer
    (Printf.sprintf "== %s: determinism %s (%d pair(s) checked), %d finding(s)\n" m.spec_name
       (if m.determinism_discharged then "statically discharged" else "NOT discharged")
       m.pairs_checked (List.length m.findings));
  if m.pruned_transitions <> [] then
    Buffer.add_string buffer
      (Printf.sprintf "   pruned transitions: %s\n" (String.concat ", " m.pruned_transitions));
  List.iter
    (fun f -> Buffer.add_string buffer ("   " ^ Finding.to_string f ^ "\n"))
    m.findings;
  Buffer.contents buffer

let render_text report =
  let buffer = Buffer.create 1024 in
  List.iter
    (fun m -> Buffer.add_string buffer (render_machine_text m))
    report.Verifier.machines;
  if report.Verifier.system_findings <> [] then begin
    Buffer.add_string buffer "== system coupling\n";
    List.iter
      (fun f -> Buffer.add_string buffer ("   " ^ Finding.to_string f ^ "\n"))
      report.Verifier.system_findings
  end;
  Buffer.add_string buffer (summary report ^ "\n");
  Buffer.contents buffer

let render_json report =
  let all = Verifier.all_findings report in
  let machine (m : Verifier.machine_report) =
    Obs.Json.obj
      [
        ("name", Obs.Json.quote m.spec_name);
        ("determinism_discharged", Obs.Json.bool m.determinism_discharged);
        ("pairs_checked", Obs.Json.int m.pairs_checked);
        ("reachable_states", Obs.Json.arr (List.map Obs.Json.quote m.reachable));
        ("pruned_transitions", Obs.Json.arr (List.map Obs.Json.quote m.pruned_transitions));
        ("findings", Obs.Json.arr (List.map Finding.to_json m.findings));
      ]
  in
  Obs.Json.obj
    [
      ("machines", Obs.Json.arr (List.map machine report.Verifier.machines));
      ("system_findings", Obs.Json.arr (List.map Finding.to_json report.Verifier.system_findings));
      ("errors", Obs.Json.int (count Finding.Error all));
      ("warnings", Obs.Json.int (count Finding.Warning all));
      ("info", Obs.Json.int (count Finding.Info all));
    ]

(* Split a machine's findings (plus any system findings that name it) into
   the [state_notes]/[edge_notes] assoc lists [Efsm.Dot.of_spec] takes. *)
let dot_annotations report (m : Verifier.machine_report) =
  let relevant =
    m.Verifier.findings
    @ List.filter
        (fun (f : Finding.t) -> String.equal f.Finding.machine m.Verifier.spec_name)
        report.Verifier.system_findings
  in
  let note (f : Finding.t) =
    Printf.sprintf "%s: %s" (Finding.severity_to_string f.Finding.severity) f.Finding.message
  in
  let edge_notes =
    (* Determinism findings carry compound "a/b" coordinates: annotate
       both offending edges. *)
    List.concat_map
      (fun (f : Finding.t) ->
        match f.Finding.transition with
        | Some t -> List.map (fun l -> (l, note f)) (String.split_on_char '/' t)
        | None -> [])
      relevant
  in
  let state_notes =
    List.filter_map
      (fun (f : Finding.t) ->
        match (f.Finding.transition, f.Finding.state) with
        | None, Some s -> Some (s, note f)
        | _ -> None)
      relevant
  in
  (state_notes, edge_notes)

let render_dot report (spec : Efsm.Machine.spec) =
  match
    List.find_opt
      (fun (m : Verifier.machine_report) ->
        String.equal m.Verifier.spec_name spec.Efsm.Machine.spec_name)
      report.Verifier.machines
  with
  | None -> Efsm.Dot.of_spec spec
  | Some m ->
      let state_notes, edge_notes = dot_annotations report m in
      Efsm.Dot.of_spec ~state_notes ~edge_notes spec
