module Ir = Efsm.Ir
module Value = Efsm.Value

type verdict = Unsat | Sat of string | Unknown of string

(* The solver decides satisfiability of a conjunction of IR predicates by
   (1) abstracting the formula into a propositional skeleton over a finite
   atom table, (2) enumerating truth assignments of the atoms, and (3) for
   each propositionally-satisfying assignment, checking per-subject theory
   feasibility by complete candidate enumeration: every constraint is a
   single-value predicate (pin / membership / integer bound), so a
   satisfying value exists iff one exists among the mentioned constants,
   their integer neighbours, and one fresh representative per value
   type.  Anything outside the decidable fragment (opaque predicates,
   non-linear comparisons, compound expressions) becomes an uninterpreted
   atom, which over-approximates satisfiability: the solver may answer
   [Sat] for an unsatisfiable formula (so a determinism check degrades to
   a warning) but never [Unsat] for a satisfiable one. *)

(* ----------------------------------------------------------------- *)
(* Atoms                                                              *)
(* ----------------------------------------------------------------- *)

type constr =
  | C_le of int  (** subject is [Int n] with [n <= k]. *)
  | C_eq_int of int  (** subject is exactly [Int k]. *)
  | C_pin of Value.t  (** subject equals this value. *)
  | C_mem of Value.t list  (** subject is a member of this set. *)
  | C_free  (** uninterpreted boolean. *)

type atom = { key : string; constr : constr; var : Ir.var option; ints_only : bool }

type prop =
  | P_true
  | P_false
  | P_not of prop
  | P_and of prop list
  | P_or of prop list
  | P_atom of int  (** index into the atom table *)

type table = { mutable atoms : atom list; mutable count : int }

let intern table atom =
  let rec find i = function
    | [] -> None
    | a :: _ when a.key = atom.key && a.constr = atom.constr -> Some (table.count - 1 - i)
    | _ :: rest -> find (i + 1) rest
  in
  match find 0 table.atoms with
  | Some idx -> idx
  | None ->
      table.atoms <- atom :: table.atoms;
      table.count <- table.count + 1;
      table.count - 1

(* Subjects we can reason about exactly: a bare variable or event field. *)
let atomic_key = function
  | Ir.Var v -> Some (Ir.var_to_string (fst v, snd v), Some v)
  | Ir.Field f -> Some ("$" ^ f, None)
  | _ -> None

let free_atom table key = P_atom (intern table { key; constr = C_free; var = None; ints_only = false })

(* Linear view of an integer expression: either a constant, or an atomic
   base plus a constant offset. *)
type lin = L_const of int | L_base of string * Ir.var option * bool * int | L_hard

let rec linearize (ie : Ir.iexpr) =
  match ie with
  | Int_const n -> L_const n
  | Int_of e -> (
      match atomic_key e with Some (key, var) -> L_base (key, var, false, 0) | None -> L_hard)
  | Int_or0 e -> (
      match atomic_key e with
      | Some (key, var) -> L_base ("int0(" ^ key ^ ")", var, true, 0)
      | None -> L_hard)
  | Add (a, b) -> (
      match (linearize a, linearize b) with
      | L_const x, L_const y -> L_const (x + y)
      | L_base (k, v, t, o), L_const c | L_const c, L_base (k, v, t, o) -> L_base (k, v, t, o + c)
      | _ -> L_hard)
  | Sub (a, b) -> (
      match (linearize a, linearize b) with
      | L_const x, L_const y -> L_const (x - y)
      | L_base (k, v, t, o), L_const c -> L_base (k, v, t, o - c)
      | _ -> L_hard)

let flip = function Ir.Lt -> Ir.Gt | Le -> Ge | Gt -> Lt | Ge -> Le | Ieq -> Ieq | Ine -> Ine

(* [base cmp k] as a (possibly negated) canonical atom.  Normalizing to
   {<=, ==} makes interval complements propositional complements:
   [x >= 200] is literally [not (x <= 199)], so disjointness of e.g.
   1xx/2xx response-code guards falls out of the skeleton. *)
let cmp_atom table ~key ~var ~ints_only cmp k =
  let atom constr = P_atom (intern table { key; constr; var; ints_only }) in
  match cmp with
  | Ir.Lt -> atom (C_le (k - 1))
  | Le -> atom (C_le k)
  | Gt -> P_not (atom (C_le k))
  | Ge -> P_not (atom (C_le (k - 1)))
  | Ieq -> atom (C_eq_int k)
  | Ine -> P_not (atom (C_eq_int k))

let abstract_cmp table cmp a b =
  match (linearize a, linearize b) with
  | L_const x, L_const y -> if Ir.apply_cmp cmp x y then P_true else P_false
  | L_base (key, var, ints_only, off), L_const k ->
      cmp_atom table ~key ~var ~ints_only cmp (k - off)
  | L_const k, L_base (key, var, ints_only, off) ->
      cmp_atom table ~key ~var ~ints_only (flip cmp) (k - off)
  | L_base (k1, _, t1, o1), L_base (k2, _, t2, o2) when k1 = k2 && t1 && t2 ->
      if Ir.apply_cmp cmp o1 o2 then P_true else P_false
  | _ ->
      free_atom table
        (Printf.sprintf "cmp:%s %s %s" (Ir.iexpr_to_string a) (Ir.cmp_to_string cmp)
           (Ir.iexpr_to_string b))

let rec abstract table (p : Ir.pred) =
  match p with
  | True -> P_true
  | False -> P_false
  | Not p -> P_not (abstract table p)
  | And ps -> P_and (List.map (abstract table) ps)
  | Or ps -> P_or (List.map (abstract table) ps)
  | Cmp (cmp, a, b) -> abstract_cmp table cmp a b
  | Eq (a, b) -> (
      match (a, b) with
      | Const x, Const y -> if Value.equal x y then P_true else P_false
      | Const c, e | e, Const c -> (
          match atomic_key e with
          | Some (key, var) -> P_atom (intern table { key; constr = C_pin c; var; ints_only = false })
          | None ->
              free_atom table
                (Printf.sprintf "eq:%s=%s" (Ir.expr_to_string e) (Value.to_string c)))
      | _ ->
          let s1 = Ir.expr_to_string a and s2 = Ir.expr_to_string b in
          let lo = min s1 s2 and hi = max s1 s2 in
          free_atom table (Printf.sprintf "eq:%s=%s" lo hi))
  | Member (e, vs) -> (
      match atomic_key e with
      | Some (key, var) -> P_atom (intern table { key; constr = C_mem vs; var; ints_only = false })
      | None -> free_atom table (Printf.sprintf "mem:%s" (Ir.expr_to_string e)))
  | Has_field f ->
      (* has($f) <=> the field's value is not Unset. *)
      P_not (P_atom (intern table { key = "$" ^ f; constr = C_pin Value.Unset; var = None; ints_only = false }))
  | Opaque o -> free_atom table ("opaque:" ^ o.pred_name)

let rec eval_prop assignment = function
  | P_true -> true
  | P_false -> false
  | P_not p -> not (eval_prop assignment p)
  | P_and ps -> List.for_all (eval_prop assignment) ps
  | P_or ps -> List.exists (eval_prop assignment) ps
  | P_atom i -> assignment.(i)

(* ----------------------------------------------------------------- *)
(* Theory feasibility by candidate enumeration                        *)
(* ----------------------------------------------------------------- *)

let constr_holds constr (v : Value.t) =
  match constr with
  | C_le k -> ( match v with Value.Int n -> n <= k | _ -> false)
  | C_eq_int k -> Value.equal v (Value.Int k)
  | C_pin c -> Value.equal v c
  | C_mem vs -> List.exists (Value.equal v) vs
  | C_free -> true

let constr_constants = function
  | C_le k | C_eq_int k -> [ Value.Int k; Value.Int (k - 1); Value.Int (k + 1) ]
  | C_pin c -> [ c ]
  | C_mem vs -> vs
  | C_free -> []

let fresh_string mentioned =
  let rec go s = if List.exists (Value.equal (Value.Str s)) mentioned then go (s ^ "'") else s in
  go "fresh"

let fresh_int mentioned =
  let m =
    List.fold_left (fun m -> function Value.Int n -> max m n | _ -> m) 0 mentioned
  in
  m + 1

let domain_admits domain (v : Value.t) =
  match (domain, v) with
  | _, Value.Unset -> true (* a declared variable can always still be unset *)
  | Ir.D_int, Value.Int _ -> true
  | Ir.D_bool, Value.Bool _ -> true
  | Ir.D_str, Value.Str _ -> true
  | Ir.D_addr, Value.Addr _ -> true
  | Ir.D_enum vs, v -> List.exists (Value.equal v) vs
  | _ -> false

(* Is there a single value satisfying every (constraint, polarity) pair?
   Candidates: each mentioned constant, integer neighbours of comparison
   bounds, one fresh representative per type, both booleans, and Unset.
   Every region the constraints can carve out of the value space contains
   one of these, so the enumeration is exact for this fragment. *)
let subject_feasible ~domain ~ints_only constraints =
  let mentioned = List.concat_map (fun (c, _) -> constr_constants c) constraints in
  let fresh =
    [
      Value.Int (fresh_int mentioned);
      Value.Str (fresh_string mentioned);
      Value.Addr (fresh_string mentioned, 1);
      Value.Bool true;
      Value.Bool false;
      Value.Unset;
    ]
  in
  let enum = match domain with Some (Ir.D_enum vs) -> vs | _ -> [] in
  let candidates = mentioned @ enum @ fresh in
  let admissible v =
    (match v with Value.Int _ -> true | _ -> not ints_only)
    && (match domain with Some d -> domain_admits d v | None -> true)
  in
  let satisfies v = List.for_all (fun (c, polarity) -> constr_holds c v = polarity) constraints in
  List.find_opt (fun v -> admissible v && satisfies v) candidates

let feasible_assignment ~domains atoms assignment =
  (* Group the assigned atoms by subject key, then check each subject. *)
  let keys =
    List.sort_uniq String.compare
      (List.filter_map (fun a -> if a.constr = C_free then None else Some a.key) atoms)
  in
  let witness = Buffer.create 64 in
  let ok =
    List.for_all
      (fun key ->
        let constraints = ref [] and var = ref None and ints_only = ref false in
        List.iteri
          (fun i a ->
            if a.key = key && a.constr <> C_free then begin
              constraints := (a.constr, assignment.(i)) :: !constraints;
              (match a.var with Some v -> var := Some v | None -> ());
              if a.ints_only then ints_only := true
            end)
          atoms;
        let domain =
          match !var with Some v -> List.assoc_opt v domains | None -> None
        in
        match subject_feasible ~domain ~ints_only:!ints_only !constraints with
        | Some v ->
            if Buffer.length witness > 0 then Buffer.add_string witness ", ";
            Buffer.add_string witness (Printf.sprintf "%s=%s" key (Value.to_string v));
            true
        | None -> false)
      keys
  in
  if ok then Some (Buffer.contents witness) else None

(* ----------------------------------------------------------------- *)
(* Entry point                                                        *)
(* ----------------------------------------------------------------- *)

let max_atoms = 16

let satisfiable ?(domains = []) preds =
  let table = { atoms = []; count = 0 } in
  let props = List.map (abstract table) preds in
  let atoms = List.rev table.atoms in
  let n = table.count in
  if n > max_atoms then
    Unknown (Printf.sprintf "formula has %d atoms (limit %d)" n max_atoms)
  else begin
    let assignment = Array.make (max n 1) false in
    let found = ref None in
    let mask = ref 0 in
    let limit = 1 lsl n in
    while !found = None && !mask < limit do
      for i = 0 to n - 1 do
        assignment.(i) <- (!mask lsr i) land 1 = 1
      done;
      if List.for_all (eval_prop assignment) props then begin
        match feasible_assignment ~domains atoms assignment with
        | Some w ->
            let w = if w = "" then "any inputs" else w in
            found := Some w
        | None -> ()
      end;
      incr mask
    done;
    match !found with Some w -> Sat w | None -> Unsat
  end

let has_opaque pred = Ir.pred_opaque_names pred <> []
