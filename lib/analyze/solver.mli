(** Bounded satisfiability for conjunctions of guard predicates.

    Decides the fragment the shipped specs live in exactly — single
    variable/field subjects under comparisons, equalities against
    constants, set membership, and boolean structure — by propositional
    enumeration over a canonical atom table plus per-subject candidate
    checking.  Everything else (opaque predicates, compound-subject
    comparisons, variable-to-variable equalities) becomes an
    uninterpreted atom.

    The over-approximation is one-sided: [Sat] may be spurious (the
    caller degrades to a warning), [Unsat] is trustworthy. *)

type verdict =
  | Unsat
  | Sat of string  (** Human-readable witness, e.g. ["$code=Int 200"]. *)
  | Unknown of string  (** Formula exceeded the enumeration budget. *)

val max_atoms : int
(** Atom budget; beyond it [satisfiable] answers [Unknown]. *)

val satisfiable : ?domains:(Efsm.Ir.var * Efsm.Ir.domain) list -> Efsm.Ir.pred list -> verdict
(** Satisfiability of the conjunction of [preds].  [domains] restricts the
    values declared variables may take (besides [Unset], which is always
    possible). *)

val has_opaque : Efsm.Ir.pred -> bool
