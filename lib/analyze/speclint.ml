type result = {
  loaded : Spec.Front_end.loaded list;
  diags : Spec.Diag.t list;
  report : Verifier.report;
  sources : (string * string) list;
}

let attach_spans loaded (report : Verifier.report) =
  let place (f : Finding.t) =
    match
      Spec.Front_end.span_for loaded ~machine:f.Finding.machine ~state:f.Finding.state
        ~transition:f.Finding.transition
    with
    | Some sp when not (Spec.Loc.is_dummy sp) -> Finding.with_span (Some sp) f
    | _ -> f
  in
  {
    Verifier.machines =
      List.map
        (fun (m : Verifier.machine_report) ->
          { m with Verifier.findings = List.map place m.Verifier.findings })
        report.Verifier.machines;
    system_findings = List.map place report.Verifier.system_findings;
  }

let lint_sources ?known_machines ~externs sources =
  let loaded, diags = Spec.Front_end.load_sources ?known_machines ~externs sources in
  let report =
    Verifier.verify_system
      (List.map
         (fun (l : Spec.Front_end.loaded) ->
           (l.Spec.Front_end.l_spec, l.Spec.Front_end.l_vars))
         loaded)
  in
  { loaded; diags; report = attach_spans loaded report; sources }

let lint_files ?known_machines ~externs paths =
  match Spec.Front_end.load_files ?known_machines ~externs paths with
  | Error _ as e -> e
  | Ok (loaded, diags, sources) ->
      let report =
        Verifier.verify_system
          (List.map
             (fun (l : Spec.Front_end.loaded) ->
               (l.Spec.Front_end.l_spec, l.Spec.Front_end.l_vars))
             loaded)
      in
      Ok { loaded; diags; report = attach_spans loaded report; sources }

let ok r = (not (Spec.Diag.has_errors r.diags)) && not (Verifier.has_errors r.report)

let render_text r =
  let buffer = Buffer.create 1024 in
  List.iter
    (fun d ->
      let source = List.assoc_opt d.Spec.Diag.span.Spec.Loc.s.Spec.Loc.file r.sources in
      Buffer.add_string buffer (Spec.Diag.render ?source d);
      Buffer.add_char buffer '\n')
    r.diags;
  if r.loaded <> [] then Buffer.add_string buffer (Report.render_text r.report);
  Buffer.contents buffer

let render_json r =
  Obs.Json.obj
    [
      ("diagnostics", Obs.Json.arr (List.map Spec.Diag.to_json r.diags));
      ("report", Report.render_json r.report);
      ("ok", Obs.Json.bool (ok r));
    ]
