module Machine = Efsm.Machine
module Ir = Efsm.Ir

module VarSet = Set.Make (struct
  type t = Ir.var

  let compare = compare
end)

module SS = Set.Make (String)

type machine_report = {
  spec_name : string;
  findings : Finding.t list;
  determinism_discharged : bool;
  pairs_checked : int;
  reachable : string list;
  pruned_transitions : string list;
}

type report = { machines : machine_report list; system_findings : Finding.t list }

let machine_errors r = List.filter Finding.is_error r.findings

let all_findings report =
  List.concat_map (fun m -> m.findings) report.machines @ report.system_findings

let has_errors report = List.exists Finding.is_error (all_findings report)

(* ----------------------------------------------------------------- *)
(* Trigger overlap                                                    *)
(* ----------------------------------------------------------------- *)

(* Can one concrete event match both triggers?  [On_event n] matches any
   channel carrying name [n], so it overlaps the channel-specific
   triggers whenever the names agree (and every data channel). *)
let triggers_overlap a b =
  match (a, b) with
  | Machine.On_event x, Machine.On_event y -> String.equal x y
  | On_event _, On_channel _ | On_channel _, On_event _ -> true
  | On_event x, On_sync y | On_sync y, On_event x -> String.equal x y
  | On_event x, On_timer y | On_timer y, On_event x -> String.equal x y
  | On_channel x, On_channel y -> String.equal x y
  | On_sync x, On_sync y -> String.equal x y
  | On_timer x, On_timer y -> String.equal x y
  | On_channel _, (On_sync _ | On_timer _) | (On_sync _ | On_timer _), On_channel _ -> false
  | On_sync _, On_timer _ | On_timer _, On_sync _ -> false

(* ----------------------------------------------------------------- *)
(* Action dataflow helpers                                            *)
(* ----------------------------------------------------------------- *)

let may_writes acts = VarSet.of_list (Ir.acts_writes acts)

(* Variables assigned on *every* execution of [acts].  Opaque actions
   declare may-writes only, so they contribute nothing here. *)
let rec must_writes acts =
  List.fold_left
    (fun acc act ->
      match act with
      | Ir.Assign (v, _) -> VarSet.add v acc
      | Ir.If (_, then_, else_) ->
          VarSet.union acc (VarSet.inter (must_writes then_) (must_writes else_))
      | _ -> acc)
    VarSet.empty acts

(* ----------------------------------------------------------------- *)
(* Per-spec verification                                              *)
(* ----------------------------------------------------------------- *)

let verify_spec ?vars (spec : Machine.spec) =
  let name = spec.Machine.spec_name in
  let findings = ref [] in
  let emit ?state ?transition severity pass message =
    findings := Finding.make ?state ?transition ~severity ~pass ~machine:name message :: !findings
  in
  let domains = Option.value vars ~default:[] in
  let syntaxed = List.filter_map (fun t -> t.Machine.syntax) spec.Machine.transitions in
  let opaque_transitions =
    List.filter (fun t -> t.Machine.syntax = None) spec.Machine.transitions
  in
  let fully_declarative = opaque_transitions = [] in

  (* Pass: structural validation (Machine.validate_spec). *)
  (match Machine.validate_spec spec with
  | Ok () -> ()
  | Error e -> emit Finding.Error "structure" e);

  if not fully_declarative then
    emit Finding.Warning "coverage"
      (Printf.sprintf
         "%d transition(s) carry closure guards/actions with no declarative syntax (%s): \
          variable, timer and sync analyses are incomplete"
         (List.length opaque_transitions)
         (String.concat ", " (List.map (fun t -> t.Machine.label) opaque_transitions)));

  (* Pass: per-transition guard satisfiability (prunes the graph). *)
  let pruned = ref [] in
  List.iter
    (fun (t : Machine.transition) ->
      match t.Machine.syntax with
      | Some { Ir.guard; _ } -> (
          match Solver.satisfiable ~domains [ guard ] with
          | Solver.Unsat ->
              pruned := t.Machine.label :: !pruned;
              emit ~state:t.Machine.from_state ~transition:t.Machine.label Finding.Error
                "reachability"
                (Printf.sprintf "guard %s is unsatisfiable: transition can never fire"
                   (Ir.pred_to_string guard))
          | Solver.Sat _ -> ()
          | Solver.Unknown why ->
              emit ~transition:t.Machine.label Finding.Info "reachability"
                ("guard satisfiability not decided: " ^ why))
      | None -> ())
    spec.Machine.transitions;
  let pruned = !pruned in
  let kept =
    List.filter (fun t -> not (List.mem t.Machine.label pruned)) spec.Machine.transitions
  in

  (* Pass: determinism — pairwise guard disjointness per (state, trigger). *)
  let pairs_checked = ref 0 in
  let all_disjoint = ref true in
  let rec pairs = function
    | [] -> []
    | t :: rest -> List.map (fun u -> (t, u)) rest @ pairs rest
  in
  List.iter
    (fun ((t : Machine.transition), (u : Machine.transition)) ->
      if
        String.equal t.Machine.from_state u.Machine.from_state
        && triggers_overlap t.Machine.trigger u.Machine.trigger
      then begin
        incr pairs_checked;
        match (t.Machine.syntax, u.Machine.syntax) with
        | Some s1, Some s2 -> (
            match Solver.satisfiable ~domains [ s1.Ir.guard; s2.Ir.guard ] with
            | Solver.Unsat -> ()
            | Solver.Sat witness ->
                all_disjoint := false;
                let opaque = Solver.has_opaque s1.Ir.guard || Solver.has_opaque s2.Ir.guard in
                let severity = if opaque then Finding.Warning else Finding.Error in
                let qualifier = if opaque then "may both fire" else "both fire" in
                emit ~state:t.Machine.from_state
                  ~transition:(t.Machine.label ^ "/" ^ u.Machine.label) severity "determinism"
                  (Printf.sprintf "guards are not disjoint: %S and %S %s on %s" t.Machine.label
                     u.Machine.label qualifier witness)
            | Solver.Unknown why ->
                all_disjoint := false;
                emit ~state:t.Machine.from_state
                  ~transition:(t.Machine.label ^ "/" ^ u.Machine.label) Finding.Warning
                  "determinism"
                  (Printf.sprintf "disjointness of %S and %S not decided: %s" t.Machine.label
                     u.Machine.label why))
        | _ ->
            all_disjoint := false;
            emit ~state:t.Machine.from_state
              ~transition:(t.Machine.label ^ "/" ^ u.Machine.label) Finding.Warning "determinism"
              (Printf.sprintf
                 "cannot check disjointness of %S and %S: closure guard without syntax"
                 t.Machine.label u.Machine.label)
      end)
    (pairs kept);

  (* Reachability over the pruned graph. *)
  let reachable =
    let seen = ref (SS.singleton spec.Machine.initial) in
    let frontier = ref [ spec.Machine.initial ] in
    while !frontier <> [] do
      let s = List.hd !frontier in
      frontier := List.tl !frontier;
      List.iter
        (fun (t : Machine.transition) ->
          if String.equal t.Machine.from_state s && not (SS.mem t.Machine.to_state !seen) then begin
            seen := SS.add t.Machine.to_state !seen;
            frontier := t.Machine.to_state :: !frontier
          end)
        kept
    done;
    !seen
  in
  let states = Machine.states spec in
  List.iter
    (fun s ->
      if not (SS.mem s reachable) then
        match List.assoc_opt s spec.Machine.attack_states with
        | Some _ ->
            emit ~state:s Finding.Error "reachability"
              "attack state is unreachable: the pattern can never fire"
        | None ->
            if List.mem s spec.Machine.finals then
              emit ~state:s Finding.Warning "reachability" "final state is unreachable"
            else emit ~state:s Finding.Warning "reachability" "state is unreachable")
    states;
  if
    spec.Machine.finals <> []
    && not (List.exists (fun s -> SS.mem s reachable) spec.Machine.finals)
  then emit Finding.Error "reachability" "no final state is reachable: calls can never complete";
  List.iter
    (fun s ->
      if
        SS.mem s reachable
        && (not (List.exists (fun (t : Machine.transition) -> String.equal t.Machine.from_state s) kept))
        && (not (List.mem s spec.Machine.finals))
        && not (List.mem_assoc s spec.Machine.attack_states)
      then
        emit ~state:s Finding.Error "reachability"
          "reachable dead end: not final, not an attack state, and no live outgoing transition")
    states;

  (* Variable and timer hygiene need full declarative coverage. *)
  if fully_declarative then begin
    let kept_syn =
      List.filter_map
        (fun (t : Machine.transition) ->
          match t.Machine.syntax with Some s -> Some (t, s) | None -> None)
        kept
    in
    (* May/must-assigned fixpoint over the pruned, reachable graph. *)
    let universe =
      List.fold_left
        (fun acc { Ir.guard; acts } ->
          let acc = VarSet.union acc (VarSet.of_list (Ir.pred_vars guard)) in
          let acc = VarSet.union acc (VarSet.of_list (Ir.acts_reads acts)) in
          VarSet.union acc (may_writes acts))
        (VarSet.of_list (List.map fst domains))
        syntaxed
    in
    let may : (string, VarSet.t) Hashtbl.t = Hashtbl.create 16 in
    let must : (string, VarSet.t) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun s ->
        Hashtbl.replace may s VarSet.empty;
        Hashtbl.replace must s (if String.equal s spec.Machine.initial then VarSet.empty else universe))
      states;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun ((t : Machine.transition), { Ir.acts; _ }) ->
          if SS.mem t.Machine.from_state reachable then begin
            let update table v join =
              let cur = Hashtbl.find table v in
              let next = join cur in
              if not (VarSet.equal cur next) then begin
                Hashtbl.replace table v next;
                changed := true
              end
            in
            let may_in = Hashtbl.find may t.Machine.from_state in
            let must_in = Hashtbl.find must t.Machine.from_state in
            update may t.Machine.to_state (VarSet.union (VarSet.union may_in (may_writes acts)));
            update must t.Machine.to_state
              (VarSet.inter (VarSet.union must_in (must_writes acts)))
          end)
        kept_syn
    done;
    let ever_written =
      List.fold_left (fun acc { Ir.acts; _ } -> VarSet.union acc (may_writes acts)) VarSet.empty
        syntaxed
    in
    let ever_read =
      List.fold_left
        (fun acc { Ir.guard; acts } ->
          VarSet.union acc
            (VarSet.union (VarSet.of_list (Ir.pred_vars guard)) (VarSet.of_list (Ir.acts_reads acts))))
        VarSet.empty syntaxed
    in
    let report_read ~where ~state ~transition ~may_in ~assigned v =
      if not (VarSet.mem v assigned) then
        let scope_of (scope, _) = scope in
        if not (VarSet.mem v may_in) then begin
          if scope_of v = Efsm.Env.Local then
            emit ~state ~transition Finding.Error "variables"
              (Printf.sprintf "%s reads %s before any assignment can have happened%s" where
                 (Ir.var_to_string v)
                 (if VarSet.mem v ever_written then "" else " (never assigned in this machine)"))
          else
            emit ~state ~transition Finding.Warning "variables"
              (Printf.sprintf "%s reads global %s, which this machine never assigns first" where
                 (Ir.var_to_string v))
        end
        else
          emit ~state ~transition Finding.Info "variables"
            (Printf.sprintf "%s may read %s before initialization (assigned on some paths only)"
               where (Ir.var_to_string v))
    in
    List.iter
      (fun ((t : Machine.transition), { Ir.guard; acts }) ->
        let state = t.Machine.from_state and transition = t.Machine.label in
        if SS.mem state reachable then begin
          let may_in = Hashtbl.find may state and must_in = Hashtbl.find must state in
          List.iter
            (report_read ~where:"guard" ~state ~transition ~may_in ~assigned:must_in)
            (Ir.pred_vars guard);
          (* Actions: sequential tracking within the list. *)
          let rec walk assigned seen_may acts =
            List.fold_left
              (fun (assigned, seen_may) act ->
                let check_expr e =
                  List.iter
                    (report_read ~where:"action" ~state ~transition ~may_in:seen_may
                       ~assigned)
                    (Ir.vars_of_expr e)
                in
                match act with
                | Ir.Assign (v, e) ->
                    check_expr e;
                    (VarSet.add v assigned, VarSet.add v seen_may)
                | Ir.If (p, then_, else_) ->
                    List.iter
                      (report_read ~where:"action" ~state ~transition ~may_in:seen_may
                         ~assigned)
                      (Ir.pred_vars p);
                    let a1, m1 = walk assigned seen_may then_ in
                    let a2, m2 = walk assigned seen_may else_ in
                    (VarSet.inter a1 a2, VarSet.union m1 m2)
                | Ir.Send_sync { args; _ } ->
                    List.iter (fun (_, e) -> check_expr e) args;
                    (assigned, seen_may)
                | Ir.Opaque_act o ->
                    List.iter
                      (report_read ~where:"action" ~state ~transition ~may_in:seen_may
                         ~assigned)
                      o.Ir.act_reads;
                    (assigned, VarSet.union seen_may (VarSet.of_list o.Ir.act_writes))
                | Ir.Set_timer _ | Ir.Cancel_timer _ -> (assigned, seen_may))
              (assigned, seen_may) acts
          in
          ignore (walk must_in may_in acts)
        end)
      kept_syn;
    (* Declared-domain hygiene. *)
    (match vars with
    | None -> ()
    | Some decls ->
        List.iter
          (fun ((t : Machine.transition), { Ir.acts; _ }) ->
            Ir.acts_fold
              (fun () act ->
                match act with
                | Ir.Assign (v, e) -> (
                    match List.assoc_opt v decls with
                    | None ->
                        emit ~state:t.Machine.from_state ~transition:t.Machine.label
                          Finding.Error "variables"
                          (Printf.sprintf "assignment to %s, which is outside the declared \
                                           variable domain"
                             (Ir.var_to_string v))
                    | Some domain -> (
                        match (domain, e) with
                        | Ir.D_enum allowed, Ir.Const c ->
                            if not (List.exists (Efsm.Value.equal c) allowed) then
                              emit ~state:t.Machine.from_state ~transition:t.Machine.label
                                Finding.Error "variables"
                                (Printf.sprintf "assigns %s to %s, outside its declared domain %s"
                                   (Efsm.Value.to_string c) (Ir.var_to_string v)
                                   (Ir.domain_to_string domain))
                        | _ -> (
                            match Ir.type_of_expr e with
                            | Some d when d <> domain -> (
                                match domain with
                                | Ir.D_enum _ -> ()
                                | _ ->
                                    emit ~state:t.Machine.from_state ~transition:t.Machine.label
                                      Finding.Error "variables"
                                      (Printf.sprintf
                                         "assigns a %s expression to %s, declared as %s"
                                         (Ir.domain_to_string d) (Ir.var_to_string v)
                                         (Ir.domain_to_string domain)))
                            | _ -> ())))
                | _ -> ())
              () acts)
          kept_syn);
    (* Dead variables: locally assigned, never read by this machine. *)
    VarSet.iter
      (fun v ->
        if fst v = Efsm.Env.Local && not (VarSet.mem v ever_read) then
          emit Finding.Warning "variables"
            (Printf.sprintf "dead variable: %s is assigned but never read" (Ir.var_to_string v)))
      ever_written;

    (* Timer hygiene. *)
    let timers_set =
      List.concat_map
        (fun ((t : Machine.transition), { Ir.acts; _ }) ->
          List.map (fun id -> (id, t.Machine.label, t.Machine.from_state)) (Ir.acts_timers_set acts))
        kept_syn
    in
    let timers_cancelled =
      List.concat_map
        (fun ((t : Machine.transition), { Ir.acts; _ }) ->
          List.map (fun id -> (id, t.Machine.label, t.Machine.from_state))
            (Ir.acts_timers_cancelled acts))
        kept_syn
    in
    let expiry_ids =
      List.filter_map
        (fun (t : Machine.transition) ->
          match t.Machine.trigger with Machine.On_timer id -> Some id | _ -> None)
        spec.Machine.transitions
    in
    let set_ids = List.map (fun (id, _, _) -> id) timers_set in
    List.iter
      (fun (id, label, state) ->
        if not (List.mem id expiry_ids) then
          emit ~state ~transition:label Finding.Error "timers"
            (Printf.sprintf "Set_timer %S has no On_timer expiry transition: the timer fires \
                             into the void"
               id))
      timers_set;
    List.iter
      (fun (id, label, state) ->
        if not (List.mem id set_ids) then
          emit ~state ~transition:label Finding.Warning "timers"
            (Printf.sprintf "Cancel_timer %S cancels a timer no transition ever sets" id))
      timers_cancelled;
    List.iter
      (fun id ->
        if not (List.mem id set_ids) then
          emit Finding.Warning "timers"
            (Printf.sprintf "On_timer %S expiry can never occur: no transition sets the timer" id))
      (List.sort_uniq String.compare expiry_ids)
  end;

  {
    spec_name = name;
    findings = List.stable_sort Finding.compare (List.rev !findings);
    determinism_discharged = !all_disjoint;
    pairs_checked = !pairs_checked;
    reachable = List.filter (fun s -> SS.mem s reachable) states;
    pruned_transitions = List.rev pruned;
  }

(* ----------------------------------------------------------------- *)
(* Whole-system verification                                          *)
(* ----------------------------------------------------------------- *)

let verify_system (machines : (Machine.spec * Ir.decl list) list) =
  let reports = List.map (fun (spec, vars) -> verify_spec ~vars spec) machines in
  let findings = ref [] in
  let emit ?state ?transition severity pass machine message =
    findings := Finding.make ?state ?transition ~severity ~pass ~machine message :: !findings
  in
  let by_name = List.map (fun ((spec : Machine.spec), _) -> (spec.Machine.spec_name, spec)) machines in
  let report_of name = List.find (fun r -> String.equal r.spec_name name) reports in
  (* Sync sends per machine: (sender, transition, target, event, live). *)
  let live_transition r (t : Machine.transition) =
    SS.mem t.Machine.from_state (SS.of_list r.reachable)
    && not (List.mem t.Machine.label r.pruned_transitions)
  in
  let sends =
    List.concat_map
      (fun ((spec : Machine.spec), _) ->
        let r = report_of spec.Machine.spec_name in
        List.concat_map
          (fun (t : Machine.transition) ->
            match t.Machine.syntax with
            | None -> []
            | Some { Ir.acts; _ } ->
                List.map
                  (fun (target, ev) ->
                    (spec.Machine.spec_name, t, target, ev, live_transition r t))
                  (Ir.acts_syncs acts))
          spec.Machine.transitions)
      machines
  in
  (* Every live send needs a live receiver on a known target machine. *)
  List.iter
    (fun (sender, (t : Machine.transition), target, ev, live) ->
      if live then
        match List.assoc_opt target by_name with
        | None ->
            emit ~state:t.Machine.from_state ~transition:t.Machine.label Finding.Error "sync"
              sender
              (Printf.sprintf "Send_sync %S targets machine %S, which is not in the system" ev
                 target)
        | Some (target_spec : Machine.spec) -> (
            let receivers =
              List.filter
                (fun (u : Machine.transition) ->
                  match u.Machine.trigger with
                  | Machine.On_sync n -> String.equal n ev
                  | _ -> false)
                target_spec.Machine.transitions
            in
            match receivers with
            | [] ->
                emit ~state:t.Machine.from_state ~transition:t.Machine.label Finding.Error "sync"
                  sender
                  (Printf.sprintf
                     "orphan Send_sync: %S has no On_sync receiver on machine %S — the message \
                      queues forever in the FIFO coupling"
                     ev target)
            | _ ->
                let target_r = report_of target in
                if not (List.exists (live_transition target_r) receivers) then
                  emit ~state:t.Machine.from_state ~transition:t.Machine.label Finding.Error
                    "sync" sender
                    (Printf.sprintf
                       "Send_sync %S: every On_sync receiver on machine %S is unreachable" ev
                       target)))
    sends;
  (* Receivers with no possible sender can never fire. *)
  List.iter
    (fun ((spec : Machine.spec), _) ->
      List.iter
        (fun (t : Machine.transition) ->
          match t.Machine.trigger with
          | Machine.On_sync ev ->
              let has_sender =
                List.exists
                  (fun (_, _, target, ev', live) ->
                    live && String.equal target spec.Machine.spec_name && String.equal ev' ev)
                  sends
              in
              let sender_syntax_gaps =
                List.exists
                  (fun ((other : Machine.spec), _) ->
                    (not (String.equal other.Machine.spec_name spec.Machine.spec_name))
                    && List.exists (fun (u : Machine.transition) -> u.Machine.syntax = None)
                         other.Machine.transitions)
                  machines
              in
              if not has_sender then
                if sender_syntax_gaps then
                  emit ~state:t.Machine.from_state ~transition:t.Machine.label Finding.Warning
                    "sync" spec.Machine.spec_name
                    (Printf.sprintf
                       "On_sync %S has no declared sender (some machines carry closure actions, \
                        so a sender may be hidden)"
                       ev)
                else
                  emit ~state:t.Machine.from_state ~transition:t.Machine.label Finding.Error
                    "sync" spec.Machine.spec_name
                    (Printf.sprintf
                       "On_sync %S can never fire: no machine in the system sends it" ev)
          | _ -> ())
        spec.Machine.transitions)
    machines;
  (* Send/receive cycles between machines can deadlock or grow the FIFO. *)
  let edges =
    List.sort_uniq compare
      (List.filter_map
         (fun (sender, _, target, _, live) ->
           if live && List.mem_assoc target by_name then Some (sender, target) else None)
         sends)
  in
  let rec reaches seen src dst =
    String.equal src dst
    || List.exists
         (fun (a, b) -> String.equal a src && (not (SS.mem b seen)) && reaches (SS.add b seen) b dst)
         edges
  in
  List.iter
    (fun (a, b) ->
      if (not (String.equal a b)) && String.compare a b < 0 && reaches SS.empty b a then
        emit Finding.Warning "sync" a
          (Printf.sprintf
             "sync cycle between machines %S and %S: the FIFO coupling can deadlock or grow \
              without bound"
             a b))
    edges;
  List.iter
    (fun (a, b) ->
      if String.equal a b then
        emit Finding.Warning "sync" a "machine sends sync events to itself (self-loop coupling)")
    edges;
  (* Cross-machine global dataflow. *)
  let global_writes_of (spec : Machine.spec) =
    List.concat_map
      (fun (t : Machine.transition) ->
        match t.Machine.syntax with
        | None -> []
        | Some { Ir.acts; _ } ->
            List.filter (fun (scope, _) -> scope = Efsm.Env.Global) (Ir.acts_writes acts))
      spec.Machine.transitions
  in
  let global_reads_of (spec : Machine.spec) =
    List.concat_map
      (fun (t : Machine.transition) ->
        match t.Machine.syntax with
        | None -> []
        | Some { Ir.guard; acts } ->
            List.filter
              (fun (scope, _) -> scope = Efsm.Env.Global)
              (Ir.pred_vars guard @ Ir.acts_reads acts))
      spec.Machine.transitions
  in
  let any_syntax_gap =
    List.exists
      (fun ((spec : Machine.spec), _) ->
        List.exists (fun (t : Machine.transition) -> t.Machine.syntax = None)
          spec.Machine.transitions)
      machines
  in
  if not any_syntax_gap then begin
    let writers = List.concat_map (fun (spec, _) -> global_writes_of spec) machines in
    let readers = List.concat_map (fun (spec, _) -> global_reads_of spec) machines in
    List.iter
      (fun ((spec : Machine.spec), _) ->
        List.iter
          (fun v ->
            if not (List.mem v writers) then
              emit Finding.Warning "globals" spec.Machine.spec_name
                (Printf.sprintf "reads global %s, which no machine in the system writes"
                   (Ir.var_to_string v)))
          (List.sort_uniq compare (global_reads_of spec)))
      machines;
    List.iter
      (fun v ->
        if not (List.mem v readers) then
          let writer =
            List.find
              (fun ((spec : Machine.spec), _) -> List.mem v (global_writes_of spec))
              machines
          in
          emit Finding.Warning "globals" (fst writer).Machine.spec_name
            (Printf.sprintf "writes global %s, which no machine in the system reads"
               (Ir.var_to_string v)))
      (List.sort_uniq compare writers)
  end;
  { machines = reports; system_findings = List.stable_sort Finding.compare (List.rev !findings) }
