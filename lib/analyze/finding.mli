(** Verifier findings: severity plus machine/state/transition coordinates. *)

type severity = Error | Warning | Info

val severity_rank : severity -> int
(** [Error] = 0 (most severe) … [Info] = 2. *)

val severity_to_string : severity -> string

type t = {
  severity : severity;
  pass : string;  (** Which verifier pass produced it (e.g. ["determinism"]). *)
  machine : string;
  state : string option;
  transition : string option;  (** Transition label. *)
  span : Spec.Loc.span option;
      (** Source position when the machine was loaded from a [.vspec]
          file; [None] for compiled-in specs. *)
  message : string;
}

val make :
  ?state:string ->
  ?transition:string ->
  ?span:Spec.Loc.span ->
  severity:severity ->
  pass:string ->
  machine:string ->
  string ->
  t

val with_span : Spec.Loc.span option -> t -> t

val is_error : t -> bool

val compare : t -> t -> int
(** Severity-major ordering for stable reports. *)

val coordinates : t -> string

val to_string : t -> string
(** One line: [severity [pass] machine at state/transition: message],
    prefixed with [file:line:col:] when a span is attached. *)

val to_json : t -> string
