(** Verifier findings: severity plus machine/state/transition coordinates. *)

type severity = Error | Warning | Info

val severity_rank : severity -> int
(** [Error] = 0 (most severe) … [Info] = 2. *)

val severity_to_string : severity -> string

type t = {
  severity : severity;
  pass : string;  (** Which verifier pass produced it (e.g. ["determinism"]). *)
  machine : string;
  state : string option;
  transition : string option;  (** Transition label. *)
  message : string;
}

val make :
  ?state:string ->
  ?transition:string ->
  severity:severity ->
  pass:string ->
  machine:string ->
  string ->
  t

val is_error : t -> bool

val compare : t -> t -> int
(** Severity-major ordering for stable reports. *)

val coordinates : t -> string

val to_string : t -> string
(** One line: [severity [pass] machine at state/transition: message]. *)

val to_json : t -> string
