(** Static verification of EFSM specifications and composed systems.

    Refines the deprecated graph-only [Efsm.Analysis] with guard-level
    reasoning over the declarative {!Efsm.Ir} syntax carried by
    IR-built transitions:

    - {b determinism}: pairwise guard disjointness per (state, trigger)
      via {!Solver.satisfiable}, statically discharging the runtime
      [Nondeterministic] outcome;
    - {b reachability}: transitions with unsatisfiable guards are pruned
      before the reachable/dead-end/attack-state checks;
    - {b variables}: init-before-use (may/must dataflow over the pruned
      graph, sequential within action lists), assignments outside the
      declared domain, dead variables;
    - {b timers}: [Set_timer] with no expiry transition, [Cancel_timer]
      of a never-set id, expiry transitions for never-set timers;
    - {b sync channels} (system-level): orphan [Send_sync],
      receive-without-sender, unreachable receivers, send/receive cycles
      between machines, cross-machine global dataflow.

    Transitions built from raw closures (no [syntax]) degrade the
    affected passes to warnings rather than silently assuming anything
    about their guards. *)

type machine_report = {
  spec_name : string;
  findings : Finding.t list;  (** Sorted most-severe first. *)
  determinism_discharged : bool;
      (** True when every overlapping transition pair was proved
          guard-disjoint: [Machine.step] can never return
          [Nondeterministic] for this spec. *)
  pairs_checked : int;  (** Overlapping (state, trigger) pairs examined. *)
  reachable : string list;  (** States reachable through satisfiable guards. *)
  pruned_transitions : string list;  (** Labels whose guards are unsatisfiable. *)
}

type report = { machines : machine_report list; system_findings : Finding.t list }

val machine_errors : machine_report -> Finding.t list
val all_findings : report -> Finding.t list
val has_errors : report -> bool

val triggers_overlap : Efsm.Machine.trigger -> Efsm.Machine.trigger -> bool
(** Can a single concrete event match both triggers? *)

val verify_spec : ?vars:Efsm.Ir.decl list -> Efsm.Machine.spec -> machine_report
(** [vars], when given, declares the spec's variable domains and enables
    the undeclared-assignment and domain-mismatch checks (and sharpens
    the solver's bounded enumeration). *)

val verify_system : (Efsm.Machine.spec * Efsm.Ir.decl list) list -> report
(** Verifies each spec individually, then the sync-channel and global
    dataflow coupling across the composed system. *)
