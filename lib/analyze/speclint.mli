(** Lint driver for [.vspec] files: front-end diagnostics plus verifier
    findings mapped back to source positions.  Shared by [vids-cli lint]
    and the test suite. *)

type result = {
  loaded : Spec.Front_end.loaded list;
  diags : Spec.Diag.t list;  (** Lex/parse/check/structure diagnostics. *)
  report : Verifier.report;
      (** Verifier report over the successfully loaded machines, composed
          as one system.  Findings carry source spans where the machine's
          span tables can place them. *)
  sources : (string * string) list;  (** For caret-snippet rendering. *)
}

val lint_sources :
  ?known_machines:string list ->
  externs:Spec.Elaborate.externs ->
  (string * string) list ->
  result
(** [(filename, source)] pairs; never raises. *)

val lint_files :
  ?known_machines:string list ->
  externs:Spec.Elaborate.externs ->
  string list ->
  (result, string) Stdlib.result
(** Reads each path; [Error] only for I/O failures. *)

val ok : result -> bool
(** No error-severity diagnostics and no error-severity findings. *)

val render_text : result -> string
(** Caret-snippet diagnostics followed by the verifier report. *)

val render_json : result -> string
(** One object: [{"diagnostics": [...], "report": {...}, "ok": bool}]. *)
