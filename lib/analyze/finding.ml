type severity = Error | Warning | Info

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let severity_to_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

type t = {
  severity : severity;
  pass : string;
  machine : string;
  state : string option;
  transition : string option;
  span : Spec.Loc.span option;
  message : string;
}

let make ?state ?transition ?span ~severity ~pass ~machine message =
  { severity; pass; machine; state; transition; span; message }

let with_span span f = { f with span }

let is_error f = f.severity = Error

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.machine b.machine in
    if c <> 0 then c
    else
      let c = String.compare a.pass b.pass in
      if c <> 0 then c else String.compare a.message b.message

let coordinates f =
  let at =
    match (f.state, f.transition) with
    | Some s, Some t -> Printf.sprintf " at %s/%s" s t
    | Some s, None -> " at " ^ s
    | None, Some t -> " on " ^ t
    | None, None -> ""
  in
  Printf.sprintf "%s%s" f.machine at

let to_string f =
  let where =
    match f.span with None -> "" | Some sp -> Spec.Loc.to_string sp ^ ": "
  in
  Printf.sprintf "%s%-7s [%s] %s: %s" where
    (severity_to_string f.severity)
    f.pass (coordinates f) f.message

let to_json f =
  let opt = function None -> "null" | Some s -> Obs.Json.quote s in
  let span_json = function
    | None -> "null"
    | Some (sp : Spec.Loc.span) ->
        Obs.Json.obj
          [
            ("file", Obs.Json.quote sp.Spec.Loc.s.Spec.Loc.file);
            ("line", Obs.Json.int sp.Spec.Loc.s.Spec.Loc.line);
            ("col", Obs.Json.int sp.Spec.Loc.s.Spec.Loc.col);
          ]
  in
  Obs.Json.obj
    [
      ("severity", Obs.Json.quote (severity_to_string f.severity));
      ("pass", Obs.Json.quote f.pass);
      ("machine", Obs.Json.quote f.machine);
      ("state", opt f.state);
      ("transition", opt f.transition);
      ("span", span_json f.span);
      ("message", Obs.Json.quote f.message);
    ]
