(** Rendering of verifier reports: text, JSON, annotated DOT. *)

val summary : Verifier.report -> string
(** One line: machine and per-severity finding counts. *)

val render_machine_text : Verifier.machine_report -> string

val render_text : Verifier.report -> string

val render_json : Verifier.report -> string
(** Single JSON object: per-machine reports with findings, system-level
    findings, and severity totals. *)

val dot_annotations :
  Verifier.report -> Verifier.machine_report -> (string * string) list * (string * string) list
(** (state notes, edge notes) for {!Efsm.Dot.of_spec}, including system
    findings that name the machine. *)

val render_dot : Verifier.report -> Efsm.Machine.spec -> string
(** The spec's DOT diagram with this report's findings attached to the
    offending states and edges. *)
