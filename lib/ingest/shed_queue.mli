(** Bounded ingest queue with watermark-driven overload shedding.

    Sits between the packet sources and the engine, extending the
    engine's degradation ladder ({!Vids.Config.degrade_high_water}, which
    sheds stream-level RTP analysis first) one stage upstream: when the
    queue backs up past its high watermark, {e media} packets are shed at
    the door while signaling is still admitted — losing RTP costs
    stream-level checks, losing SIP costs call-state tracking, so SIP
    always wins.  At capacity the queue sheds its {e oldest} entry to
    admit the newcomer: under sustained overload the freshest traffic is
    the most valuable, because stale packets describe calls whose timers
    have already fired.

    Single-threaded by design — the daemon polls sources and drains the
    queue from one loop — so there are no locks to contend. *)

type t

val create : ?high_water:int -> capacity:int -> unit -> t
(** [high_water] defaults to 3/4 of [capacity].  Raises
    [Invalid_argument] unless [0 < high_water <= capacity]. *)

(** What happened to a pushed record. *)
type verdict =
  | Enqueued
  | Shed_media  (** Above high water and classified as media: refused. *)
  | Displaced_oldest  (** At capacity: enqueued, evicting the head. *)

val push : t -> Vids.Trace.record -> verdict

val pop : t -> Vids.Trace.record option

val length : t -> int

val capacity : t -> int

val high_water : t -> int

val is_signaling : string -> bool
(** The admission-control classifier: a payload whose first byte is an
    ASCII letter is treated as SIP signaling (requests start with a
    method token, responses with ["SIP/2.0"]); binary payloads are
    media.  Deliberately cruder than the engine's classifier — it runs
    before any parsing, on possibly hostile bytes. *)

type stats = {
  enqueued : int;
  shed_media : int;
  shed_oldest : int;
  peak_depth : int;
  capacity : int;  (** The configured bound, for machine-readable reports. *)
  high_water : int;
}

val stats : t -> stats
