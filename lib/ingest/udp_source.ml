(* Non-blocking UDP listener.  One receive buffer is reused across the
   whole life of the source; each delivered payload is the only per-
   datagram allocation.  Errors follow the supervised-restart shape:
   close, wait out a capped exponential backoff, rebind, give up when the
   budget is spent. *)

type datagram = { src : Dsim.Addr.t; payload : string }

type stats = { received : int; recv_errors : int; reopens : int; gave_up : bool }

type t = {
  host : string;
  port : int;  (* requested; 0 = ephemeral *)
  recv_buffer : int;
  backoff : Backoff.t;
  buf : Bytes.t;
  mutable sock : Unix.file_descr option;
  mutable bound : Dsim.Addr.t;
  mutable retry_at : float;  (* next rebind attempt when the socket is down *)
  mutable received : int;
  mutable recv_errors : int;
  mutable reopens : int;
  mutable gave_up : bool;
}

let addr_of_sockaddr = function
  | Unix.ADDR_INET (ip, port) -> Dsim.Addr.v (Unix.string_of_inet_addr ip) port
  | Unix.ADDR_UNIX path -> Dsim.Addr.v path 0

let bind_socket ~host ~port ~recv_buffer =
  let ip =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
      | _ -> raise (Unix.Unix_error (Unix.EINVAL, "getaddrinfo", host)))
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  (try Unix.setsockopt_int sock Unix.SO_RCVBUF recv_buffer
   with Unix.Unix_error _ -> () (* best effort *));
  (try Unix.setsockopt sock Unix.SO_REUSEADDR true with Unix.Unix_error _ -> ());
  match Unix.bind sock (Unix.ADDR_INET (ip, port)) with
  | () ->
      Unix.set_nonblock sock;
      (sock, addr_of_sockaddr (Unix.getsockname sock))
  | exception e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      raise e

let listen ?(recv_buffer = 1 lsl 20) ?(backoff = Backoff.create ()) ~host ~port () =
  match bind_socket ~host ~port ~recv_buffer with
  | sock, bound ->
      Ok
        {
          host;
          port;
          recv_buffer;
          backoff;
          buf = Bytes.create 65536;
          sock = Some sock;
          bound;
          retry_at = 0.0;
          received = 0;
          recv_errors = 0;
          reopens = 0;
          gave_up = false;
        }
  | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "bind %s:%d: %s" host port (Unix.error_message err))
  | exception e -> Error (Printf.sprintf "bind %s:%d: %s" host port (Printexc.to_string e))

let local_addr t = t.bound

let alive t = not t.gave_up

let close t =
  (match t.sock with
  | Some s -> ( try Unix.close s with Unix.Unix_error _ -> ())
  | None -> ());
  t.sock <- None

(* A receive error: drop the descriptor and arm the rebind deadline; a
   spent budget kills the source for good. *)
let fail t ~(clock : Clock.t) =
  t.recv_errors <- t.recv_errors + 1;
  close t;
  match Backoff.next t.backoff with
  | Some delay -> t.retry_at <- clock.Clock.now () +. delay
  | None -> t.gave_up <- true

let try_reopen t ~(clock : Clock.t) =
  if (not t.gave_up) && clock.Clock.now () >= t.retry_at then begin
    (* Rebind to the requested port — except that a source bound
       ephemerally must reclaim the port it already announced. *)
    let port = if t.port = 0 then Dsim.Addr.port t.bound else t.port in
    match bind_socket ~host:t.host ~port ~recv_buffer:t.recv_buffer with
    | sock, bound ->
        t.sock <- Some sock;
        t.bound <- bound;
        t.reopens <- t.reopens + 1
    | exception _ -> fail t ~clock
  end

let recv_batch t ~clock ~max =
  if t.sock = None then try_reopen t ~clock;
  match t.sock with
  | None -> []
  | Some sock ->
      let rec go acc n =
        if n >= max then List.rev acc
        else
          match Unix.recvfrom sock t.buf 0 (Bytes.length t.buf) [] with
          | len, from ->
              t.received <- t.received + 1;
              Backoff.reset t.backoff;
              let d = { src = addr_of_sockaddr from; payload = Bytes.sub_string t.buf 0 len } in
              go (d :: acc) (n + 1)
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              List.rev acc
          | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
              (* Linux surfaces stale ICMP errors on unconnected UDP
                 sockets; the socket itself is healthy — keep draining. *)
              go acc n
          | exception Unix.Unix_error (_, _, _) ->
              fail t ~clock;
              List.rev acc
      in
      go [] 0

let stats t =
  {
    received = t.received;
    recv_errors = t.recv_errors;
    reopens = t.reopens;
    gave_up = t.gave_up;
  }
