(* Capped exponential backoff with a retry budget.  All float arithmetic
   with an explicit clamp, so a huge factor or a long failure streak can
   never overflow into a negative or absurd delay. *)

type t = {
  initial_s : float;
  factor : float;
  cap_s : float;
  budget : int;
  mutable used : int;
}

let create ?(initial_s = 0.1) ?(factor = 2.0) ?(cap_s = 30.0) ?(budget = 8) () =
  if initial_s <= 0.0 then invalid_arg "Backoff.create: initial_s must be positive";
  if factor < 1.0 then invalid_arg "Backoff.create: factor must be >= 1";
  if cap_s < initial_s then invalid_arg "Backoff.create: cap_s below initial_s";
  { initial_s; factor; cap_s; budget; used = 0 }

let next t =
  if t.used >= t.budget then None
  else begin
    let d = t.initial_s *. (t.factor ** float_of_int t.used) in
    t.used <- t.used + 1;
    (* [d] may be infinite for large exponents; min with the finite cap
       yields the cap, so the clamp doubles as overflow protection. *)
    Some (if d > t.cap_s then t.cap_s else d)
  end

let reset t = t.used <- 0

let retries t = t.used
