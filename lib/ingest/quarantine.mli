(** Per-source quarantine for hostile or broken senders.

    The engine already contains parse failures (they are counted, never
    fatal), but a source spraying garbage still costs a parse attempt per
    datagram.  This table pushes the boundary to the front door: every
    parse failure is charged to the sending transport address, and a
    source that crosses the error threshold within the sliding window is
    quarantined — its datagrams are dropped at ingest, without parsing,
    until the TTL expires.  Legitimate traffic from other sources is
    untouched, which is what distinguishes quarantine from shedding.

    Keys are full [host:port] transport addresses, not bare hosts: NATed
    or loopback deployments see many independent senders behind one IP,
    and a quarantine keyed on the host would let one hostile socket take
    its neighbours down with it.  The key normalization is
    {!Enforce.Source_key} — the same identity the enforcement block
    table uses, so the two per-source defenses can never disagree about
    who a sender is.

    The table itself is bounded (LRU beyond [max_sources]) so an attacker
    cycling source ports cannot turn the defense into a memory leak. *)

type t

val create :
  ?threshold:int -> ?window_s:float -> ?ttl_s:float -> ?max_sources:int -> unit -> t
(** [threshold] parse errors (default 8) within [window_s] seconds
    (default 10) quarantine the source for [ttl_s] seconds (default 30).
    At most [max_sources] (default 4096) sources are tracked. *)

val note_error : t -> now:float -> src:Dsim.Addr.t -> bool
(** Charges one parse failure; [true] when this charge tripped the
    threshold and the source is now quarantined. *)

val blocked : t -> now:float -> src:Dsim.Addr.t -> bool
(** Whether datagrams from [src] should be dropped right now.  Counts
    the drop when it answers [true]. *)

type stats = {
  errors : int;  (** Parse failures charged. *)
  quarantines : int;  (** Times a source entered quarantine. *)
  dropped : int;  (** Datagrams dropped while their source was quarantined. *)
  active : int;  (** Sources currently quarantined (at the last query). *)
}

val stats : t -> now:float -> stats
