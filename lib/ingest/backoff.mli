(** Capped exponential backoff under a retry budget.

    The socket listener's retry arithmetic, shared with tests: each
    consecutive failure doubles (by [factor]) the wait, clamped at [cap]
    so the sensor never sleeps itself into uselessness, and bounded by
    [budget] total retries before giving up — the same shape as
    {!Vids.Supervisor}'s restart policy, but on the wall clock. *)

type t

val create : ?initial_s:float -> ?factor:float -> ?cap_s:float -> ?budget:int -> unit -> t
(** Defaults: 0.1 s initial, factor 2, 30 s cap, budget 8.  Raises
    [Invalid_argument] on a non-positive initial delay or factor < 1. *)

val next : t -> float option
(** The wait before the next retry, or [None] when the budget is spent.
    Each call consumes one retry. *)

val reset : t -> unit
(** A success: the delay returns to [initial_s] and the budget refills. *)

val retries : t -> int
(** Retries consumed since the last {!reset}. *)
