(** Wall-clock abstraction for the live-ingestion daemon.

    Everything inside the sensor runs on the deterministic virtual clock
    ({!Dsim.Scheduler}); the daemon is the one place real time enters the
    system.  It does so only through this record, so every component that
    paces, times out, backs off or quarantines can run under a {!manual}
    clock in tests and benches — instantly and deterministically — while
    production uses {!system}.

    Times are seconds as a float (the natural unit of
    [Unix.gettimeofday]); the daemon converts elapsed wall seconds to
    virtual {!Dsim.Time.t} at its clock bridge and nowhere else. *)

type t = {
  now : unit -> float;  (** Seconds since an arbitrary origin; monotone non-decreasing. *)
  sleep : float -> unit;  (** Blocks for the given seconds (no-op when <= 0). *)
}

val system : unit -> t
(** [Unix.gettimeofday] + [Unix.sleepf], hardened into monotonicity: a
    backwards step of the system clock (NTP correction) is absorbed by
    holding the reported time still rather than travelling back. *)

val manual : ?start:float -> unit -> t
(** A virtual wall clock for tests: [now] returns the current setting and
    [sleep d] advances it by [d], so paced ingestion runs at memory speed.
    Use {!advance} to model time passing while the daemon polls. *)

val advance : t -> float -> unit
(** Advances a {!manual} clock by the given seconds.  Raises
    [Invalid_argument] on a {!system} clock or a negative delta. *)
