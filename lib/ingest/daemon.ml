(* The live-ingestion daemon: one loop from the wire to the engine.

   Ordering is the whole trick.  Offline replay pre-schedules every packet
   and lets the scheduler interleave them with timers (packets at an
   instant beat timers at that instant).  Live, packets arrive one at a
   time, so for each record the loop calls [advance_to] — which runs
   events strictly before the record's timestamp and leaves same-instant
   timers queued — and then injects the packet by hand.  That reproduces
   the batch ordering exactly, which is why a live run's digest converges
   with an offline replay of its own capture file. *)

type source =
  | Pcap_file of { path : string; pace : bool }
  | Udp of Udp_source.t

type config = {
  engine_config : Vids.Config.t option;
  spec_overrides : (string * Efsm.Machine.spec) list;
  queue_capacity : int;
  queue_high_water : int option;
  checkpoint_every_s : float;
  snapshot_path : string option;
  journal_path : string option;
  record_path : string option;
  quarantine_threshold : int;
  quarantine_window_s : float;
  quarantine_ttl_s : float;
  max_runtime_s : float option;
  batch : int;
  poll_interval_s : float;
  enforce : Enforce.Enforcer.policy option;
}

let default =
  {
    engine_config = None;
    spec_overrides = [];
    queue_capacity = 4096;
    queue_high_water = None;
    checkpoint_every_s = 5.0;
    snapshot_path = None;
    journal_path = None;
    record_path = None;
    quarantine_threshold = 8;
    quarantine_window_s = 10.0;
    quarantine_ttl_s = 30.0;
    max_runtime_s = None;
    batch = 256;
    poll_interval_s = 0.01;
    enforce = None;
  }

type stop_reason = Eof | Signalled | Deadline | Source_dead | Killed

type report = {
  stop_reason : stop_reason;
  dispatched : int;
  parse_errors : int;
  checkpoints : int;
  queue : Shed_queue.stats;
  quarantine : Quarantine.stats;
  pcap : (string * Pcap.stats) list;
  udp : Udp_source.stats list;
  dispatch : Dsim.Stat.Quantiles.t;
  horizon : Dsim.Time.t;
  engine : Vids.Engine.t;
  sched : Dsim.Scheduler.t;
  enforcer : Enforce.Enforcer.t option;
}

(* A capture file being streamed.  [base] is the first record's absolute
   capture timestamp; every record is rebased to [at - base] so the
   virtual clock starts at zero regardless of when the capture was
   taken. *)
type pcap_state = {
  p_path : string;
  p_pace : bool;
  p_ic : in_channel;
  p_reader : Pcap.reader;
  mutable p_base : Dsim.Time.t option;
  mutable p_eof : bool;
}

type src_state = S_pcap of pcap_state | S_udp of Udp_source.t

let run ?clock ?metrics ?flight ?prof ?stop ?hard_kill ?on_batch config sources =
  let clock = match clock with Some c -> c | None -> Clock.system () in
  let penter s = match prof with None -> () | Some p -> Obs.Prof.enter p s in
  let pexit s = match prof with None -> () | Some p -> Obs.Prof.exit p s in
  let stop = match stop with Some r -> r | None -> ref false in
  let hard_kill = match hard_kill with Some r -> r | None -> ref false in
  if sources = [] then Error "no sources"
  else begin
    (* Open every capture file before touching the engine, so a bad path
       is a startup error, not a half-started daemon. *)
    let opened =
      List.fold_left
        (fun acc src ->
          match acc with
          | Error _ as e -> e
          | Ok states -> (
              match src with
              | Udp u -> Ok (S_udp u :: states)
              | Pcap_file { path; pace } -> (
                  match open_in_bin path with
                  | exception Sys_error e -> Error e
                  | ic -> (
                      match Pcap.of_channel ic with
                      | Error e ->
                          close_in_noerr ic;
                          Error (path ^ ": " ^ e)
                      | Ok reader ->
                          Ok
                            (S_pcap
                               {
                                 p_path = path;
                                 p_pace = pace;
                                 p_ic = ic;
                                 p_reader = reader;
                                 p_base = None;
                                 p_eof = false;
                               }
                            :: states)))))
        (Ok []) sources
    in
    match opened with
    | Error e -> Error e
    | Ok rev_states ->
        let states = List.rev rev_states in
        let sched = Dsim.Scheduler.create () in
        let engine =
          match config.engine_config with
          | Some c -> Vids.Engine.create ~config:c ~overrides:config.spec_overrides sched
          | None -> Vids.Engine.create ~overrides:config.spec_overrides sched
        in
        Vids.Engine.set_telemetry engine ?metrics ?flight ();
        Vids.Engine.set_profiler engine prof;
        let journal_w =
          Option.map
            (fun p -> Vids.Journal.create_writer ?registry:metrics p)
            config.journal_path
        in
        Option.iter (fun w -> Vids.Journal.attach w engine) journal_w;
        (* Prevention mode: the gate sits between the queue and the
           engine, and its decisions are journaled write-ahead through
           the same writer as alerts. *)
        let enforcer =
          Option.map
            (fun policy ->
              Enforce.Enforcer.create ~policy
                ?journal:(Option.map (fun w e -> Vids.Journal.append w e) journal_w)
                sched engine)
            config.enforce
        in
        let record_oc =
          Option.map
            (fun p -> open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 p)
            config.record_path
        in
        let queue =
          Shed_queue.create ?high_water:config.queue_high_water
            ~capacity:config.queue_capacity ()
        in
        let quar =
          Quarantine.create ~threshold:config.quarantine_threshold
            ~window_s:config.quarantine_window_s ~ttl_s:config.quarantine_ttl_s ()
        in
        let ctr name help =
          Option.map (fun m -> Obs.Metrics.counter m name ~help) metrics
        in
        let packets_c = ctr "vids_ingest_packets_total" "Records dispatched to the engine" in
        let shed_c = ctr "vids_ingest_shed_total" "Records refused or displaced by the ingest queue" in
        let quarantines_c = ctr "vids_ingest_quarantines_total" "Sources entering quarantine" in
        let checkpoints_c = ctr "vids_ingest_checkpoints_total" "Checkpoints saved by the daemon" in
        let dispatch_h =
          Option.map
            (fun m ->
              Obs.Metrics.histogram m "vids_ingest_dispatch_seconds"
                ~help:"Wall-clock seconds per record dispatch")
            metrics
        in
        let tick c = Option.iter Obs.Metrics.incr c in
        let note action detail =
          Option.iter
            (fun fl ->
              Obs.Trace.record fl ~at:(Dsim.Scheduler.now sched)
                (Obs.Trace.Ingest { action; detail }))
            flight
        in
        let wall0 = clock.Clock.now () in
        let vat now_s = Dsim.Time.of_sec (now_s -. wall0) in
        let quantiles = Dsim.Stat.Quantiles.create () in
        let alloc = Dsim.Packet.allocator () in
        let dispatched = ref 0 in
        let parse_errors = ref 0 in
        let checkpoints = ref 0 in
        let seq = ref 0 in
        let take_checkpoint () =
          match config.snapshot_path with
          | None -> ()
          | Some path ->
              penter Obs.Prof.Checkpoint;
              (* The capture must be durable at least up to the snapshot
                 instant, or a kill -9 leaves a snapshot whose replay
                 suffix is still sitting in this channel's buffer. *)
              Option.iter flush record_oc;
              let at = Dsim.Scheduler.now sched in
              (* The block table (with live token-bucket levels) rides in
                 the checkpoint so a kill -9 recovers into the same
                 enforcement state, not just the same analysis state. *)
              let ext =
                match enforcer with
                | None -> []
                | Some e -> [ (Enforce.Enforcer.ext_tag, Enforce.Enforcer.snapshot_payload e) ]
              in
              let snap = Vids.Snapshot.capture ~seq:(!seq + 1) ~ext ~at engine in
              Vids.Snapshot.save ~path snap;
              incr seq;
              incr checkpoints;
              tick checkpoints_c;
              Option.iter
                (fun w ->
                  Vids.Journal.append w (Vids.Journal.Checkpoint { at; seq = !seq });
                  penter Obs.Prof.Journal_fsync;
                  Vids.Journal.fsync_writer w;
                  pexit Obs.Prof.Journal_fsync)
                journal_w;
              Option.iter
                (fun fl -> Obs.Trace.record fl ~at (Obs.Trace.Checkpoint { seq = !seq }))
                flight;
              pexit Obs.Prof.Checkpoint
        in
        (* Periodic checkpoints ride the virtual clock as self-re-arming
           events: under live pacing the grid tracks wall time through
           the clock bridge, and under a manual clock it is exactly the
           deterministic grid the supervisor tests use. *)
        if config.checkpoint_every_s > 0.0 && config.snapshot_path <> None then begin
          let period = Dsim.Time.of_sec config.checkpoint_every_s in
          let rec arm t =
            ignore
              (Dsim.Scheduler.schedule_at sched t (fun () ->
                   take_checkpoint ();
                   arm (Dsim.Time.add t period)))
          in
          arm (Dsim.Time.add (Dsim.Scheduler.now sched) period)
        end;
        let dispatch r =
          penter Obs.Prof.Drive;
          (* Never move the clock backwards: a wall-timestamped datagram
             can land behind a capture that raced ahead of real time. *)
          let at = Dsim.Time.max r.Vids.Trace.at (Dsim.Scheduler.now sched) in
          let r = { r with Vids.Trace.at } in
          let before = (Vids.Engine.counters engine).Vids.Engine.malformed_packets in
          let t0 = Unix.gettimeofday () in
          Dsim.Scheduler.advance_to sched at;
          let pkt =
            Dsim.Packet.make alloc ~src:r.Vids.Trace.src ~dst:r.Vids.Trace.dst
              ~sent_at:at r.Vids.Trace.payload
          in
          (match enforcer with
          | Some e ->
              (* The gate's own verdict cost; the engine spans it forwards
                 into nest underneath as children. *)
              penter Obs.Prof.Enforce_gate;
              ignore (Enforce.Enforcer.ingest e pkt);
              pexit Obs.Prof.Enforce_gate
          | None -> Vids.Engine.process_packet engine pkt);
          let dt = Unix.gettimeofday () -. t0 in
          Dsim.Stat.Quantiles.add quantiles dt;
          Option.iter (fun h -> Obs.Metrics.observe h dt) dispatch_h;
          incr dispatched;
          tick packets_c;
          Option.iter
            (fun oc ->
              output_string oc (Vids.Trace.record_to_line r);
              output_char oc '\n')
            record_oc;
          let after = (Vids.Engine.counters engine).Vids.Engine.malformed_packets in
          if after > before then begin
            parse_errors := !parse_errors + (after - before);
            if Quarantine.note_error quar ~now:(clock.Clock.now ()) ~src:r.Vids.Trace.src
            then begin
              tick quarantines_c;
              note "quarantine" (Dsim.Addr.to_string r.Vids.Trace.src)
            end
          end;
          pexit Obs.Prof.Drive
        in
        let push r =
          match Shed_queue.push queue r with
          | Shed_queue.Enqueued -> ()
          | Shed_queue.Shed_media | Shed_queue.Displaced_oldest -> tick shed_c
        in
        (* Pull up to [batch] frames from one source into the queue,
           returning how many frames were consumed (decoded or not — a
           skipped frame is progress too, or a garbage capture would spin
           the loop forever). *)
        let poll_source st =
          match st with
          | S_pcap p when p.p_eof -> 0
          | S_pcap p ->
              let consumed = ref 0 in
              let continue = ref true in
              while !continue && !consumed < config.batch && not !stop && not !hard_kill do
                match Pcap.next p.p_reader with
                | None ->
                    p.p_eof <- true;
                    close_in_noerr p.p_ic;
                    continue := false
                | Some (Pcap.Skipped _) -> incr consumed
                | Some (Pcap.Record r) ->
                    incr consumed;
                    let base =
                      match p.p_base with
                      | Some b -> b
                      | None ->
                          p.p_base <- Some r.Vids.Trace.at;
                          r.Vids.Trace.at
                    in
                    let at = Dsim.Time.sub r.Vids.Trace.at base in
                    if p.p_pace then begin
                      let target = wall0 +. Dsim.Time.to_sec at in
                      let now_s = clock.Clock.now () in
                      if target > now_s then clock.Clock.sleep (target -. now_s)
                    end;
                    push { r with Vids.Trace.at = at }
              done;
              !consumed
          | S_udp u ->
              let before_alive = Udp_source.alive u in
              let ds = Udp_source.recv_batch u ~clock ~max:config.batch in
              if before_alive && not (Udp_source.alive u) then
                note "source_dead" (Dsim.Addr.to_string (Udp_source.local_addr u));
              List.iter
                (fun { Udp_source.src; payload } ->
                  let now_s = clock.Clock.now () in
                  if not (Quarantine.blocked quar ~now:now_s ~src) then
                    push
                      {
                        Vids.Trace.at = vat now_s;
                        src;
                        dst = Udp_source.local_addr u;
                        payload;
                      })
                ds;
              List.length ds
        in
        let drain limit =
          let n = ref 0 in
          let continue = ref true in
          while !continue && !n < limit && not !hard_kill do
            match Shed_queue.pop queue with
            | None -> continue := false
            | Some r ->
                dispatch r;
                incr n
          done;
          !n
        in
        let source_live = function
          | S_pcap p -> not p.p_eof
          | S_udp u -> Udp_source.alive u
        in
        let deadline_hit () =
          match config.max_runtime_s with
          | None -> false
          | Some limit -> clock.Clock.now () -. wall0 >= limit
        in
        let reason = ref None in
        while !reason = None do
          if !hard_kill then reason := Some Killed
          else if !stop then reason := Some Signalled
          else if deadline_hit () then reason := Some Deadline
          else begin
            let produced =
              List.fold_left
                (fun acc st ->
                  penter Obs.Prof.Ingest_poll;
                  let n = poll_source st in
                  pexit Obs.Prof.Ingest_poll;
                  acc + n)
                0 states
            in
            let consumed = drain config.batch in
            Option.iter (fun f -> f ()) on_batch;
            if (not (List.exists source_live states)) && Shed_queue.length queue = 0
            then
              reason :=
                Some
                  (if
                     List.exists
                       (function
                         | S_udp u -> (Udp_source.stats u).Udp_source.gave_up
                         | S_pcap _ -> false)
                       states
                   then Source_dead
                   else Eof)
            else if produced = 0 && consumed = 0 then begin
              (* Idle: keep the virtual clock tracking the wall so call
                 timers (flood windows, BYE grace) fire even in silence,
                 then nap.  [advance_to] ignores targets in the past, so
                 an unpaced capture that raced ahead is left alone. *)
              Dsim.Scheduler.advance_to sched (vat (clock.Clock.now ()));
              clock.Clock.sleep config.poll_interval_s
            end
          end
        done;
        let reason = Option.get !reason in
        let graceful = reason <> Killed in
        if graceful then begin
          (* Drain what is already queued (a hard kill arriving mid-drain
             still aborts), then make the shutdown durable. *)
          ignore (drain max_int);
          (* [advance_to] runs timers strictly before each packet, so a
             timer due exactly at the last packet's instant is still
             pending here; fire it, or the final state disagrees with an
             offline [replay_until] of the same capture at this horizon. *)
          Dsim.Scheduler.run_until sched (Dsim.Scheduler.now sched);
          note "shutdown"
            (match reason with
            | Eof -> "eof"
            | Signalled -> "signal"
            | Deadline -> "deadline"
            | Source_dead -> "source_dead"
            | Killed -> assert false);
          take_checkpoint ();
          Option.iter Vids.Journal.close_writer journal_w;
          Option.iter
            (fun oc ->
              flush oc;
              (try Unix.fsync (Unix.descr_of_out_channel oc)
               with Unix.Unix_error _ | Sys_error _ | Invalid_argument _ -> ());
              close_out_noerr oc)
            record_oc;
          List.iter (function S_udp u -> Udp_source.close u | S_pcap _ -> ()) states;
          Option.iter (fun fl -> ignore (Obs.Trace.dump fl ~reason:"daemon shutdown")) flight
        end;
        Ok
          {
            stop_reason = reason;
            dispatched = !dispatched;
            parse_errors = !parse_errors;
            checkpoints = !checkpoints;
            queue = Shed_queue.stats queue;
            quarantine = Quarantine.stats quar ~now:(clock.Clock.now ());
            pcap =
              List.filter_map
                (function
                  | S_pcap p -> Some (p.p_path, Pcap.stats p.p_reader)
                  | S_udp _ -> None)
                states;
            udp =
              List.filter_map
                (function S_udp u -> Some (Udp_source.stats u) | S_pcap _ -> None)
                states;
            dispatch = quantiles;
            horizon = Dsim.Scheduler.now sched;
            engine;
            sched;
            enforcer;
          }
  end
