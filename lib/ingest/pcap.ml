(* Classic libpcap reader/writer.

   The reader is written as a total function over arbitrary bytes: every
   length is checked before use, every arithmetic result is bounded, and
   anything surprising becomes [Skipped] (bad frame) or ends the stream
   with [truncated_tail] (bad file).  The decode path allocates one string
   per delivered payload and nothing else of note. *)

type item = Record of Vids.Trace.record | Skipped of string

(* Magics: A1B2C3D4 = microseconds, A1B23C4D = nanoseconds; each in both
   byte orders. *)
let magic_us = 0xA1B2C3D4l
let magic_us_swapped = 0xD4C3B2A1l
let magic_ns = 0xA1B23C4Dl
let magic_ns_swapped = 0x4D3CB2A1l

(* Link types we can peel. *)
let dlt_null = 0
let dlt_en10mb = 1
let dlt_raw = 101
let dlt_linux_sll = 113

type stats = { frames : int; records : int; skipped : int; truncated_tail : bool }

type reader = {
  ic : in_channel;
  swapped : bool;  (** File byte order differs from the one we read with. *)
  nanos : bool;
  link : int;
  mutable frames : int;
  mutable records : int;
  mutable skipped : int;
  mutable truncated : bool;
  mutable eof : bool;
}

let stats r =
  { frames = r.frames; records = r.records; skipped = r.skipped; truncated_tail = r.truncated }

let link_type r = r.link

(* Bounded read: [None] when fewer than [n] bytes remain. *)
let read_exact ic n =
  match really_input_string ic n with
  | s -> Some s
  | exception End_of_file -> None
  | exception Sys_error _ -> None

let u32 ~swapped s off =
  let v = if swapped then String.get_int32_be s off else String.get_int32_le s off in
  Int32.to_int v land 0xFFFFFFFF

let of_channel ic =
  match read_exact ic 24 with
  | None -> Error "not a pcap file: header shorter than 24 bytes"
  | Some hdr -> (
      let magic = String.get_int32_le hdr 0 in
      let order =
        if Int32.equal magic magic_us then Some (false, false)
        else if Int32.equal magic magic_ns then Some (false, true)
        else if Int32.equal magic magic_us_swapped then Some (true, false)
        else if Int32.equal magic magic_ns_swapped then Some (true, true)
        else None
      in
      match order with
      | None -> Error (Printf.sprintf "not a pcap file: bad magic 0x%08lx" magic)
      | Some (swapped, nanos) ->
          let link = u32 ~swapped hdr 20 in
          Ok
            {
              ic;
              swapped;
              nanos;
              link;
              frames = 0;
              records = 0;
              skipped = 0;
              truncated = false;
              eof = false;
            })

(* ------------------------------------------------------------------ *)
(* Frame decoding                                                      *)
(* ------------------------------------------------------------------ *)

let dotted s off =
  Printf.sprintf "%d.%d.%d.%d"
    (Char.code s.[off])
    (Char.code s.[off + 1])
    (Char.code s.[off + 2])
    (Char.code s.[off + 3])

let be16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]

(* Offset of the IPv4 header within the frame, or an error.  Returns the
   offset so the IP decoder below slices once. *)
let ip_offset link frame =
  let len = String.length frame in
  match link with
  | l when l = dlt_raw -> Ok 0
  | l when l = dlt_null ->
      (* 4-byte host-order address family; AF_INET is 2 on every Unix. *)
      if len < 4 then Error "loopback frame shorter than family header"
      else
        let fam_le = Char.code frame.[0] and fam_be = Char.code frame.[3] in
        if fam_le = 2 || fam_be = 2 then Ok 4 else Error "loopback frame is not AF_INET"
  | l when l = dlt_en10mb ->
      if len < 14 then Error "ethernet frame shorter than 14 bytes"
      else
        let ethertype = be16 frame 12 in
        if ethertype = 0x0800 then Ok 14
        else if ethertype = 0x8100 then
          (* One 802.1Q VLAN tag. *)
          if len < 18 then Error "vlan frame shorter than 18 bytes"
          else if be16 frame 16 = 0x0800 then Ok 18
          else Error "vlan frame is not IPv4"
        else Error (Printf.sprintf "ethertype 0x%04x is not IPv4" ethertype)
  | l when l = dlt_linux_sll ->
      if len < 16 then Error "sll frame shorter than 16 bytes"
      else if be16 frame 14 = 0x0800 then Ok 16
      else Error "sll frame is not IPv4"
  | l -> Error (Printf.sprintf "unsupported link type %d" l)

(* IPv4 + UDP decode over [frame] starting at [off]; total, never raises. *)
let decode_udp ~at link frame =
  match ip_offset link frame with
  | Error e -> Skipped e
  | Ok off -> (
      let len = String.length frame in
      if len < off + 20 then Skipped "ipv4 header truncated"
      else
        let vihl = Char.code frame.[off] in
        if vihl lsr 4 <> 4 then Skipped "not ipv4"
        else
          let ihl = (vihl land 0xF) * 4 in
          if ihl < 20 then Skipped "ipv4 header length below 20"
          else if len < off + ihl then Skipped "ipv4 options truncated"
          else
            let frag = be16 frame (off + 6) in
            if frag land 0x3FFF <> 0 (* MF set or nonzero offset *) then
              Skipped "ipv4 fragment"
            else if Char.code frame.[off + 9] <> 17 then Skipped "not udp"
            else
              let udp = off + ihl in
              if len < udp + 8 then Skipped "udp header truncated"
              else
                let src_port = be16 frame udp and dst_port = be16 frame (udp + 2) in
                let udp_len = be16 frame (udp + 4) in
                if udp_len < 8 then Skipped "udp length below 8"
                else
                  (* A snaplen-truncated capture may hold fewer payload
                     bytes than the UDP header claims: deliver what is
                     there, like tcpdump does. *)
                  let avail = len - udp - 8 in
                  let plen = min (udp_len - 8) avail in
                  let payload = String.sub frame (udp + 8) plen in
                  let src = Dsim.Addr.v (dotted frame (off + 12)) src_port in
                  let dst = Dsim.Addr.v (dotted frame (off + 16)) dst_port in
                  Record { Vids.Trace.at = Dsim.Time.of_us at; src; dst; payload })

(* An incl_len beyond this is a corrupt length field, not a jumbo frame;
   stop rather than trying to allocate it. *)
let max_frame = 0x40000 (* 256 KiB *)

let next r =
  if r.eof then None
  else
    match read_exact r.ic 16 with
    | None ->
        r.eof <- true;
        (* A clean EOF lands exactly on a record boundary; anything the
           read consumed before failing means a torn tail, but
           [really_input_string] does not tell us which, so probe: if the
           channel is at EOF we cannot distinguish — treat a short final
           header as clean only when 0 bytes remained.  [read_exact]
           consumed nothing on success; on failure we check whether any
           bytes were available at all via [pos_in] against [in_channel_length]. *)
        (try
           if pos_in r.ic < in_channel_length r.ic then r.truncated <- true
         with Sys_error _ -> ());
        None
    | Some hdr -> (
        let swapped = r.swapped in
        let ts_sec = u32 ~swapped hdr 0 in
        let ts_frac = u32 ~swapped hdr 4 in
        let incl_len = u32 ~swapped hdr 8 in
        if incl_len > max_frame then begin
          r.eof <- true;
          r.truncated <- true;
          None
        end
        else
          match read_exact r.ic incl_len with
          | None ->
              r.eof <- true;
              r.truncated <- true;
              None
          | Some frame ->
              r.frames <- r.frames + 1;
              let us = if r.nanos then ts_frac / 1000 else ts_frac in
              let at = (ts_sec * 1_000_000) + us in
              (match decode_udp ~at r.link frame with
              | Record _ as item ->
                  r.records <- r.records + 1;
                  Some item
              | Skipped _ as item ->
                  r.skipped <- r.skipped + 1;
                  Some item))

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic -> (
      match of_channel ic with
      | Error e ->
          close_in_noerr ic;
          Error e
      | Ok r ->
          let rec go acc skipped =
            match next r with
            | None -> (List.rev acc, List.rev skipped)
            | Some (Record rec_) -> go (rec_ :: acc) skipped
            | Some (Skipped reason) -> go acc ((r.frames, reason) :: skipped)
          in
          let records, skipped = go [] [] in
          close_in_noerr ic;
          Ok (records, skipped))

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

type writer = { oc : out_channel }

let put32 b v = Buffer.add_int32_le b (Int32.of_int v)
let put16 b v = Buffer.add_int16_le b v

let to_channel oc =
  let b = Buffer.create 24 in
  Buffer.add_int32_le b magic_us;
  put16 b 2;
  (* major *)
  put16 b 4;
  (* minor *)
  put32 b 0;
  (* thiszone *)
  put32 b 0;
  (* sigfigs *)
  put32 b 65535;
  (* snaplen *)
  put32 b dlt_en10mb;
  output_string oc (Buffer.contents b);
  { oc }

(* Dotted-quad parse; non-IP simulator hosts map deterministically into
   198.18.0.0/15 (the RFC 2544 benchmark range) via FNV-1a. *)
let ip_bytes host =
  let dotted =
    match String.split_on_char '.' host with
    | [ a; b; c; d ] -> (
        match
          (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d)
        with
        | Some a, Some b, Some c, Some d
          when a land 0xFF = a && b land 0xFF = b && c land 0xFF = c && d land 0xFF = d ->
            Some (a, b, c, d)
        | _ -> None)
    | _ -> None
  in
  match dotted with
  | Some q -> q
  | None ->
      let h = ref 0x811C9DC5 in
      String.iter
        (fun c ->
          h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFF)
        host;
      (198, 18 + (!h lsr 16 land 1), !h lsr 8 land 0xFF, !h land 0xFF)

let add_be16 b v =
  Buffer.add_char b (Char.chr (v lsr 8 land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let ipv4_checksum header =
  let n = Bytes.length header in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + (Char.code (Bytes.get header !i) lsl 8) + Char.code (Bytes.get header (!i + 1));
    i := !i + 2
  done;
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let write w (r : Vids.Trace.record) =
  let plen = String.length r.Vids.Trace.payload in
  if plen > 65507 then invalid_arg "Pcap.write: payload exceeds UDP maximum";
  let sa, sb, sc, sd = ip_bytes (Dsim.Addr.host r.Vids.Trace.src) in
  let da, db, dc, dd = ip_bytes (Dsim.Addr.host r.Vids.Trace.dst) in
  let ip_total = 20 + 8 + plen in
  (* IPv4 header with checksum computed over itself. *)
  let ip = Buffer.create 20 in
  Buffer.add_char ip '\x45';
  Buffer.add_char ip '\x00';
  add_be16 ip ip_total;
  add_be16 ip 0;
  (* id *)
  add_be16 ip 0x4000;
  (* DF, no fragments *)
  Buffer.add_char ip '\x40';
  (* ttl *)
  Buffer.add_char ip '\x11';
  (* udp *)
  add_be16 ip 0;
  (* checksum placeholder *)
  List.iter (fun v -> Buffer.add_char ip (Char.chr v)) [ sa; sb; sc; sd; da; db; dc; dd ];
  let ip_bytes_ = Buffer.to_bytes ip in
  let ck = ipv4_checksum ip_bytes_ in
  Bytes.set ip_bytes_ 10 (Char.chr (ck lsr 8));
  Bytes.set ip_bytes_ 11 (Char.chr (ck land 0xFF));
  let frame = Buffer.create (14 + 28 + plen) in
  (* Ethernet: locally-administered placeholder MACs, IPv4 ethertype. *)
  Buffer.add_string frame "\x02\x00\x00\x00\x00\x02";
  Buffer.add_string frame "\x02\x00\x00\x00\x00\x01";
  add_be16 frame 0x0800;
  Buffer.add_bytes frame ip_bytes_;
  add_be16 frame (Dsim.Addr.port r.Vids.Trace.src);
  add_be16 frame (Dsim.Addr.port r.Vids.Trace.dst);
  add_be16 frame (8 + plen);
  add_be16 frame 0;
  (* UDP checksum 0 = none (legal for IPv4) *)
  Buffer.add_string frame r.Vids.Trace.payload;
  let us = Dsim.Time.to_us r.Vids.Trace.at in
  let hdr = Buffer.create 16 in
  put32 hdr (us / 1_000_000);
  put32 hdr (us mod 1_000_000);
  put32 hdr (Buffer.length frame);
  put32 hdr (Buffer.length frame);
  output_string w.oc (Buffer.contents hdr);
  output_string w.oc (Buffer.contents frame)

let write_file path records =
  let oc = open_out_bin path in
  let w = to_channel oc in
  List.iter (write w) records;
  close_out oc
