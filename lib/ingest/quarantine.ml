(* Per-source parse-error quarantine: threshold errors within a sliding
   window block the source for a TTL.  The per-source state is two
   numbers (window start + count) plus the quarantine deadline; the table
   is bounded by evicting the least recently touched source. *)

type source = {
  mutable window_start : float;
  mutable window_errors : int;
  mutable blocked_until : float;  (* 0.0 = not quarantined *)
  mutable touched : float;
}

type t = {
  threshold : int;
  window_s : float;
  ttl_s : float;
  max_sources : int;
  table : (string, source) Hashtbl.t;
  mutable errors : int;
  mutable quarantines : int;
  mutable dropped : int;
}

type stats = { errors : int; quarantines : int; dropped : int; active : int }

let create ?(threshold = 8) ?(window_s = 10.0) ?(ttl_s = 30.0) ?(max_sources = 4096) () =
  if threshold <= 0 then invalid_arg "Quarantine.create: threshold must be positive";
  {
    threshold;
    window_s;
    ttl_s;
    max_sources;
    table = Hashtbl.create 64;
    errors = 0;
    quarantines = 0;
    dropped = 0;
  }

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key s ->
      match !victim with
      | Some (_, oldest) when oldest <= s.touched -> ()
      | _ -> victim := Some (key, s.touched))
    t.table;
  match !victim with None -> () | Some (key, _) -> Hashtbl.remove t.table key

let lookup t ~now key =
  match Hashtbl.find_opt t.table key with
  | Some s ->
      s.touched <- now;
      s
  | None ->
      if Hashtbl.length t.table >= t.max_sources then evict_lru t;
      let s = { window_start = now; window_errors = 0; blocked_until = 0.0; touched = now } in
      Hashtbl.replace t.table key s;
      s

(* One normalization shared with the enforcement block table: a source
   quarantined here and the same source blocked by an alert-driven rule
   must agree on identity (lowercased host, endpoint-scoped). *)
let key_of_src src = Enforce.Source_key.to_string (Enforce.Source_key.of_addr src)

let note_error t ~now ~src =
  let s = lookup t ~now (key_of_src src) in
  t.errors <- t.errors + 1;
  if now -. s.window_start > t.window_s then begin
    s.window_start <- now;
    s.window_errors <- 0
  end;
  s.window_errors <- s.window_errors + 1;
  if s.window_errors >= t.threshold && s.blocked_until <= now then begin
    s.blocked_until <- now +. t.ttl_s;
    s.window_errors <- 0;
    t.quarantines <- t.quarantines + 1;
    true
  end
  else false

let blocked t ~now ~src =
  match Hashtbl.find_opt t.table (key_of_src src) with
  | None -> false
  | Some s ->
      s.touched <- now;
      if s.blocked_until > now then begin
        t.dropped <- t.dropped + 1;
        true
      end
      else false

let stats t ~now =
  let active = ref 0 in
  Hashtbl.iter (fun _ s -> if s.blocked_until > now then incr active) t.table;
  { errors = t.errors; quarantines = t.quarantines; dropped = t.dropped; active = !active }
