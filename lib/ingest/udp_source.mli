(** Non-blocking UDP listener with supervised reopen.

    The daemon's live front-end: binds a datagram socket and drains it in
    bounded batches from the ingestion loop.  Socket failures never
    propagate — a receive error closes the socket and schedules a rebind
    under a capped exponential {!Backoff} budget, mirroring the process
    supervisor's restart discipline at the descriptor level.  When the
    budget is spent the source reports itself dead ([gave_up]) and the
    daemon decides whether that is fatal (its only source) or not. *)

type t

type datagram = { src : Dsim.Addr.t; payload : string }

val listen :
  ?recv_buffer : int ->
  ?backoff:Backoff.t ->
  host:string ->
  port:int ->
  unit ->
  (t, string) result
(** Binds [host:port] non-blocking ([port] 0 picks an ephemeral port —
    the test harness's friend).  [recv_buffer] asks for SO_RCVBUF bytes
    (best effort; default 1 MiB) so a dispatch stall spills into kernel
    buffering before it drops datagrams. *)

val local_addr : t -> Dsim.Addr.t
(** The actually-bound address. *)

val recv_batch : t -> clock:Clock.t -> max:int -> datagram list
(** Up to [max] datagrams without blocking; an empty list means the
    socket is dry (or down awaiting its backoff deadline).  Handles the
    close-and-rebind lifecycle internally, using [clock] for backoff
    deadlines. *)

val alive : t -> bool
(** False once the reopen budget is spent. *)

val close : t -> unit

type stats = {
  received : int;
  recv_errors : int;
  reopens : int;
  gave_up : bool;
}

val stats : t -> stats
