(** Pure-OCaml reader/writer for classic libpcap capture files.

    The live daemon's file front-end: streams UDP datagrams out of a
    [.pcap] capture (tcpdump/wireshark format, both byte orders,
    microsecond and nanosecond variants) as {!Vids.Trace.record}s, peeling
    Ethernet / Linux-SLL / loopback / raw-IP link headers and the
    IPv4 + UDP headers in between.

    The reader is a hostile-input boundary: a truncated file, a garbage
    link type, a lying length field or a malformed IP header is reported
    as a skipped item or a truncated tail — never an exception and never
    a crash.  Anything that is not an IPv4/UDP datagram (ARP, TCP,
    fragments) is skipped with a reason, since the sensor only analyzes
    SIP/RTP over UDP.

    Timestamps are capture-absolute (epoch microseconds); the daemon
    rebases them onto its virtual clock. *)

(** {1 Reading} *)

type item =
  | Record of Vids.Trace.record  (** One decoded UDP datagram. *)
  | Skipped of string  (** A frame the decoder rejected, with the reason. *)

type reader

val of_channel : in_channel -> (reader, string) result
(** Validates the global header.  [Error] on a non-pcap magic or a
    truncated header. *)

val next : reader -> item option
(** The next frame, [None] at end of file.  A record header torn by a
    crash mid-write ends the stream ([None]) and sets
    {!stats}[.truncated_tail] rather than raising. *)

type stats = {
  frames : int;  (** Frames read, decoded or not. *)
  records : int;  (** UDP datagrams successfully decoded. *)
  skipped : int;  (** Frames rejected by the decoder. *)
  truncated_tail : bool;  (** File ended inside a frame. *)
}

val stats : reader -> stats

val link_type : reader -> int

val read_file : string -> (Vids.Trace.record list * (int * string) list, string) result
(** Loads a whole capture leniently: skipped frames come back as
    [(frame_index, reason)] diagnostics.  [Error] only when the file
    cannot be opened or is not a pcap file at all. *)

(** {1 Writing}

    Records are wrapped in Ethernet + IPv4 + UDP framing (link type 1,
    little-endian, microsecond timestamps) — the dialect every pcap tool
    reads.  Hosts that do not parse as dotted-quad IPv4 (simulated node
    names) are mapped deterministically into the 198.18.0.0/15 benchmark
    range, so a capture written from simulator traffic round-trips
    structurally even though such host {e strings} are not preserved. *)

type writer

val to_channel : out_channel -> writer
(** Writes the global header immediately. *)

val write : writer -> Vids.Trace.record -> unit
(** Appends one record.  Raises [Invalid_argument] if the payload exceeds
    the 65507-byte UDP maximum. *)

val write_file : string -> Vids.Trace.record list -> unit
