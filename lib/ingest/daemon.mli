(** The live-ingestion daemon: sources → quarantine → shed queue →
    clock bridge → engine.

    This is the composition root of [lib/ingest]: it owns the single
    ingestion loop that polls every source, admits datagrams through the
    per-source {!Quarantine} and the watermarked {!Shed_queue}, bridges
    the wall clock onto the virtual clock, and dispatches each record
    into a {!Vids.Engine} with the exact ordering discipline offline
    replay uses — [Dsim.Scheduler.advance_to] to the record's timestamp,
    then [process_packet], so packets at an instant always beat timers
    at that instant and a live run converges to the same digest as a
    batch replay of its own capture.

    Robustness contract:
    - Parse failures are counted and charged to the sending transport
      address (quarantining repeat offenders), never fatal.
    - Socket errors retry with capped exponential backoff under a
      budget ({!Udp_source}); a dead source stops the daemon only when
      no source remains.
    - A cooperative [stop] flag (the signal handler's write) triggers a
      graceful drain: queued records dispatched, a final checkpoint
      saved, the journal fsynced and closed, the flight recorder
      dumped.
    - A [hard_kill] flag models [kill -9]: the loop returns
      immediately, skipping every cleanup step, leaving recovery to
      {!Vids.Recovery} over the snapshot + journal + capture files. *)

type source =
  | Pcap_file of { path : string; pace : bool }
      (** Stream a capture file; with [pace], sleep so records enter at
          their recorded inter-arrival times (soak realism) instead of
          as fast as the disk reads. *)
  | Udp of Udp_source.t  (** A live listener, already bound. *)

type config = {
  engine_config : Vids.Config.t option;
  spec_overrides : (string * Efsm.Machine.spec) list;
      (** [.vspec]-loaded machine replacements, keyed by machine name;
          see {!Vids.Spec_load.load_files}. *)
  queue_capacity : int;
  queue_high_water : int option;  (** Default: {!Shed_queue.create}'s 3/4. *)
  checkpoint_every_s : float;  (** <= 0 disables periodic checkpoints. *)
  snapshot_path : string option;
  journal_path : string option;
  record_path : string option;  (** Capture every dispatched record ({!Vids.Trace} text). *)
  quarantine_threshold : int;
  quarantine_window_s : float;
  quarantine_ttl_s : float;
  max_runtime_s : float option;  (** Wall-clock deadline (soak harness). *)
  batch : int;  (** Max records pulled per source per loop turn. *)
  poll_interval_s : float;  (** Idle nap when every source is dry. *)
  enforce : Enforce.Enforcer.policy option;
      (** Prevention mode: route every dispatch through an
          {!Enforce.Enforcer} gate whose decisions are journaled through
          the daemon's writer and checkpointed as a snapshot extension.
          Records are still written to [record_path] {e regardless} of
          the gate's verdict, so an offline replay of the capture makes
          the same drop decisions and converges to the same digest. *)
}

val default : config
(** 4096-deep queue, 5 s checkpoints (when [snapshot_path] is set),
    quarantine 8 errors / 10 s / 30 s TTL, batch 256, 10 ms poll. *)

type stop_reason =
  | Eof  (** Every file source exhausted (and no socket still alive). *)
  | Signalled  (** The [stop] flag: SIGINT/SIGTERM graceful drain ran. *)
  | Deadline  (** [max_runtime_s] elapsed (graceful drain ran). *)
  | Source_dead  (** A socket source spent its reopen budget; none left. *)
  | Killed  (** The [hard_kill] flag: no drain, no checkpoint, no close. *)

type report = {
  stop_reason : stop_reason;
  dispatched : int;  (** Records fed to the engine. *)
  parse_errors : int;  (** Engine-side malformed packets, attributed here. *)
  checkpoints : int;
  queue : Shed_queue.stats;
  quarantine : Quarantine.stats;
  pcap : (string * Pcap.stats) list;  (** Per capture file, in source order. *)
  udp : Udp_source.stats list;  (** Per socket, in source order. *)
  dispatch : Dsim.Stat.Quantiles.t;
      (** Wall-clock seconds per dispatch ([advance_to] + analysis). *)
  horizon : Dsim.Time.t;  (** Final virtual time. *)
  engine : Vids.Engine.t;
  sched : Dsim.Scheduler.t;
  enforcer : Enforce.Enforcer.t option;  (** Present iff [config.enforce] was. *)
}

val run :
  ?clock:Clock.t ->
  ?metrics:Obs.Metrics.t ->
  ?flight:Obs.Trace.t ->
  ?prof:Obs.Prof.t ->
  ?stop:bool ref ->
  ?hard_kill:bool ref ->
  ?on_batch:(unit -> unit) ->
  config ->
  source list ->
  (report, string) result
(** Runs the ingestion loop until a {!stop_reason} occurs.  [clock]
    defaults to {!Clock.system}; benches pass {!Clock.manual} to soak at
    memory speed.  [on_batch] fires once per loop turn — the soak
    harness's sampling hook.  [prof] attaches an {!Obs.Prof} hot-path
    profiler: the daemon wraps source polling ([Ingest_poll] — includes
    pacing sleeps), each record dispatch ([Drive]), the enforcement gate
    ([Enforce_gate]), checkpoints ([Checkpoint]) and the journal's
    durability sync ([Journal_fsync]); the engine's parse/dispatch/detect
    spans nest inside.  [Error] is reserved for startup failures
    (unreadable capture, no sources); once the loop is entered every
    fault is contained and reported through the {!report}. *)
