(* Wall-clock abstraction: the single point where real time enters the
   daemon.  The system clock is made monotone (a backwards NTP step holds
   the reported time still); the manual clock lets tests and benches run
   paced ingestion instantly. *)

type t = { now : unit -> float; sleep : float -> unit }

let system () =
  let last = ref neg_infinity in
  let now () =
    let t = Unix.gettimeofday () in
    if t > !last then last := t;
    !last
  in
  { now; sleep = (fun d -> if d > 0.0 then Unix.sleepf d) }

(* Manual clocks advance themselves when asked to sleep.  The cell backing
   each one is kept in an association list under physical equality so
   [advance] can find it without widening the public record type. *)
let manual_cells : (t * float ref) list ref = ref []

let manual ?(start = 0.0) () =
  let cell = ref start in
  let t =
    { now = (fun () -> !cell); sleep = (fun d -> if d > 0.0 then cell := !cell +. d) }
  in
  manual_cells := (t, cell) :: !manual_cells;
  t

let advance t d =
  match List.assq_opt t !manual_cells with
  | None -> invalid_arg "Clock.advance: not a manual clock"
  | Some cell ->
      if d < 0.0 then invalid_arg "Clock.advance: negative delta";
      cell := !cell +. d
