(* Bounded ingest queue with watermark shedding: media refused above the
   high watermark, oldest displaced at capacity.  Backed by the stdlib
   Queue; depth is tracked explicitly so push/pop stay O(1). *)

type t = {
  q : Vids.Trace.record Queue.t;
  capacity : int;
  high_water : int;
  mutable enqueued : int;
  mutable shed_media : int;
  mutable shed_oldest : int;
  mutable peak_depth : int;
}

type verdict = Enqueued | Shed_media | Displaced_oldest

type stats = {
  enqueued : int;
  shed_media : int;
  shed_oldest : int;
  peak_depth : int;
  capacity : int;
  high_water : int;
}

let create ?high_water ~capacity () =
  let high_water = match high_water with Some h -> h | None -> max 1 (capacity * 3 / 4) in
  if capacity <= 0 then invalid_arg "Shed_queue.create: capacity must be positive";
  if high_water <= 0 || high_water > capacity then
    invalid_arg "Shed_queue.create: need 0 < high_water <= capacity";
  {
    q = Queue.create ();
    capacity;
    high_water;
    enqueued = 0;
    shed_media = 0;
    shed_oldest = 0;
    peak_depth = 0;
  }

let is_signaling payload =
  String.length payload > 0
  &&
  match payload.[0] with 'A' .. 'Z' | 'a' .. 'z' -> true | _ -> false

let enqueue t r =
  Queue.push r t.q;
  t.enqueued <- t.enqueued + 1;
  let depth = Queue.length t.q in
  if depth > t.peak_depth then t.peak_depth <- depth

let push t (r : Vids.Trace.record) =
  let depth = Queue.length t.q in
  if depth >= t.capacity then begin
    ignore (Queue.pop t.q);
    t.shed_oldest <- t.shed_oldest + 1;
    enqueue t r;
    Displaced_oldest
  end
  else if depth >= t.high_water && not (is_signaling r.Vids.Trace.payload) then begin
    t.shed_media <- t.shed_media + 1;
    Shed_media
  end
  else begin
    enqueue t r;
    Enqueued
  end

let pop t = Queue.take_opt t.q

let length t = Queue.length t.q

let capacity (t : t) = t.capacity

let high_water (t : t) = t.high_water

let stats (t : t) =
  {
    enqueued = t.enqueued;
    shed_media = t.shed_media;
    shed_oldest = t.shed_oldest;
    peak_depth = t.peak_depth;
    capacity = t.capacity;
    high_water = t.high_water;
  }
