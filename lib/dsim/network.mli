(** Topology, links and hop-by-hop packet forwarding.

    A network is a graph of named nodes joined by point-to-point links.  Each
    link models transmission serialization (bit rate), propagation delay and
    independent Bernoulli loss, which is everything the paper's OPNET
    topology configures (100BaseT LANs, DS1 uplinks, a 50 ms / 0.42% loss
    Internet cloud).  Packets are routed hop by hop over precomputed
    shortest paths so that mid-path nodes — the vIDS host in particular — can
    observe and delay traffic in flight. *)

type t

type node

val create : Scheduler.t -> Rng.t -> t

val scheduler : t -> Scheduler.t

val add_node : t -> name:string -> hosts:string list -> node
(** [hosts] are the IP-like host strings this node answers for.  A host may
    belong to at most one node. *)

val node_name : node -> string

val find_node : t -> host:string -> node option

val connect :
  t -> node -> node -> rate_bps:float -> prop_delay:Time.t -> loss_prob:float -> unit
(** Adds a bidirectional link.  [rate_bps <= 0] means infinite rate. *)

val set_handler : node -> (Packet.t -> unit) -> unit
(** Called for packets whose destination host belongs to this node. *)

val set_tap : node -> (Packet.t -> unit) option -> unit
(** Passive monitor invoked for every packet that arrives at this node,
    whether delivered locally or forwarded. *)

val set_transit_delay : node -> (Packet.t -> Time.t) option -> unit
(** Inline processing delay added before forwarding a transit packet (the
    vIDS host uses this when deployed online). *)

val send : t -> from:node -> Packet.t -> unit
(** Injects a packet at [from]; it is forwarded toward [Packet.dst].  An
    unroutable destination counts as a drop. *)

val make_packet : t -> src:Addr.t -> dst:Addr.t -> string -> Packet.t
(** Allocates a packet stamped with the current simulation time. *)

val packets_delivered : t -> int

val packets_dropped : t -> int
(** Link losses plus unroutable packets. *)

val bytes_forwarded : t -> node -> int
(** Total bytes that transited or terminated at this node. *)

(** Per-direction link usage, for utilization reports. *)
type link_stats = {
  from_node : string;
  to_node : string;
  rate_bps : float;
  tx_packets : int;
  tx_bytes : int;
  lost_packets : int;
}

val link_stats : t -> link_stats list
(** One entry per link direction, in node order. *)

(** {1 Fault injection}

    An adversarial transmission layer for torture-testing whatever listens
    on the network — the intrusion detection sensor in particular.  When a
    profile is installed, every link traversal may lose the packet in a
    burst, truncate or bit-flip its payload, duplicate it, or hold a copy
    back so it arrives out of order.  All randomness is drawn from the
    network's deterministic {!Rng}, so a torture run replays exactly. *)

type fault_profile = {
  truncate_prob : float;  (** Chance the payload is cut to a random prefix. *)
  corrupt_prob : float;  (** Chance 1–4 payload bytes are bit-flipped. *)
  duplicate_prob : float;  (** Chance the packet is delivered twice. *)
  reorder_prob : float;  (** Chance a copy is held back. *)
  reorder_delay : Time.t;  (** Maximum hold-back when reordered. *)
  burst_loss_prob : float;  (** Chance a loss burst starts at this packet. *)
  burst_length : int;  (** Packets consumed by one burst. *)
}

val pristine : fault_profile
(** All probabilities zero — a convenient base for [{ pristine with ... }]. *)

val set_fault_profile : t -> fault_profile option -> unit
(** Installs (or clears) the fault layer for the whole network. *)

type fault_stats = {
  truncated : int;
  corrupted : int;
  duplicated : int;
  reordered : int;
  burst_lost : int;
}

val fault_stats : t -> fault_stats
