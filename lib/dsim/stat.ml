module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max

  let pp ppf t =
    Format.fprintf ppf "n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g" t.count (mean t) (stddev t)
      (min t) (max t)
end

module Series = struct
  type t = { name : string; mutable samples : (Time.t * float) list; mutable n : int }

  let create ~name = { name; samples = []; n = 0 }
  let name t = t.name

  let add t at x =
    t.samples <- (at, x) :: t.samples;
    t.n <- t.n + 1

  let length t = t.n
  let to_list t = List.rev t.samples
  let values t = Array.of_list (List.rev_map snd t.samples)

  let summary t =
    let s = Summary.create () in
    List.iter (fun (_, x) -> Summary.add s x) t.samples;
    s

  let bucket_mean t ~bucket =
    if bucket <= 0 then invalid_arg "Series.bucket_mean: bucket must be positive";
    let tbl = Hashtbl.create 64 in
    let record (at, x) =
      let key = at / bucket in
      let sum, n = try Hashtbl.find tbl key with Not_found -> (0.0, 0) in
      Hashtbl.replace tbl key (sum +. x, n + 1)
    in
    List.iter record t.samples;
    Hashtbl.fold (fun key (sum, n) acc -> (key * bucket, sum /. float_of_int n) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Time.compare a b)
end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let frac = rank -. floor rank in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

module Quantiles = struct
  type t = {
    capacity : int;
    rng : Rng.t;
    samples : float array; (* retained reservoir; first [filled] slots live *)
    mutable filled : int;
    mutable seen : int;
  }

  let create ?(capacity = 8192) ?(seed = 0x51a7) () =
    if capacity <= 0 then invalid_arg "Quantiles.create: capacity must be positive";
    { capacity; rng = Rng.create seed; samples = Array.make capacity 0.0; filled = 0; seen = 0 }

  let add t x =
    t.seen <- t.seen + 1;
    if t.filled < t.capacity then begin
      t.samples.(t.filled) <- x;
      t.filled <- t.filled + 1
    end
    else begin
      (* Algorithm R: keep each of the [seen] samples with equal probability. *)
      let slot = Rng.int t.rng t.seen in
      if slot < t.capacity then t.samples.(slot) <- x
    end

  let count t = t.seen

  let quantile t p = percentile (Array.sub t.samples 0 t.filled) p

  let p50 t = quantile t 50.0
  let p95 t = quantile t 95.0
  let p99 t = quantile t 99.0

  let merge a b =
    let merged = create ~capacity:(a.capacity + b.capacity) () in
    Array.iter (add merged) (Array.sub a.samples 0 a.filled);
    Array.iter (add merged) (Array.sub b.samples 0 b.filled);
    merged.seen <- a.seen + b.seen;
    merged

  let pp ppf t =
    Format.fprintf ppf "p50=%.6g p95=%.6g p99=%.6g (n=%d)" (p50 t) (p95 t) (p99 t) t.seen
end

module Histogram = struct
  type t = { lo : float; hi : float; width : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
    if hi <= lo then invalid_arg "Histogram.create: empty range";
    { lo; hi; width = (hi -. lo) /. float_of_int bins; counts = Array.make bins 0; total = 0 }

  let add t x =
    let n = Array.length t.counts in
    let index =
      if x < t.lo then 0
      else if x >= t.hi then n - 1
      else int_of_float ((x -. t.lo) /. t.width)
    in
    let index = Stdlib.min (n - 1) (Stdlib.max 0 index) in
    t.counts.(index) <- t.counts.(index) + 1;
    t.total <- t.total + 1

  let count t = t.total

  let bins t =
    Array.to_list
      (Array.mapi
         (fun i c ->
           (t.lo +. (float_of_int i *. t.width), t.lo +. (float_of_int (i + 1) *. t.width), c))
         t.counts)

  let pp ppf t =
    let peak = Array.fold_left Stdlib.max 1 t.counts in
    List.iter
      (fun (lower, upper, c) ->
        let bar = String.make (c * 40 / peak) '#' in
        Format.fprintf ppf "%10.4f-%-10.4f %6d %s@." lower upper c bar)
      (bins t)
end

module Counter = struct
  type t = { mutable value : int }

  let create () = { value = 0 }
  let incr t = t.value <- t.value + 1
  let add t n = t.value <- t.value + n
  let get t = t.value
end
