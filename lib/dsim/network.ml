type link = {
  peer : int; (* node id at the far end *)
  rate_bps : float;
  prop_delay : Time.t;
  loss_prob : float;
  mutable free_at : Time.t; (* when this direction's transmitter is idle *)
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable lost_packets : int;
}

type node = {
  id : int;
  name : string;
  hosts : string list;
  mutable links : link list;
  mutable handler : Packet.t -> unit;
  mutable tap : (Packet.t -> unit) option;
  mutable transit_delay : (Packet.t -> Time.t) option;
  mutable bytes_seen : int;
}

and t = {
  sched : Scheduler.t;
  rng : Rng.t;
  alloc : Packet.allocator;
  mutable nodes : node array;
  mutable count : int;
  host_owner : (string, int) Hashtbl.t;
  mutable next_hop : int array array; (* next_hop.(src).(dst) = peer id, -1 if unreachable *)
  mutable routes_dirty : bool;
  delivered : Stat.Counter.t;
  dropped : Stat.Counter.t;
  mutable faults : fault_profile option;
  mutable burst_remaining : int;
  mutable truncated : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable burst_lost : int;
}

and fault_profile = {
  truncate_prob : float;
  corrupt_prob : float;
  duplicate_prob : float;
  reorder_prob : float;
  reorder_delay : Time.t;
  burst_loss_prob : float;
  burst_length : int;
}

let pristine =
  {
    truncate_prob = 0.0;
    corrupt_prob = 0.0;
    duplicate_prob = 0.0;
    reorder_prob = 0.0;
    reorder_delay = Time.zero;
    burst_loss_prob = 0.0;
    burst_length = 0;
  }

let create sched rng =
  {
    sched;
    rng;
    alloc = Packet.allocator ();
    nodes = [||];
    count = 0;
    host_owner = Hashtbl.create 64;
    next_hop = [||];
    routes_dirty = true;
    delivered = Stat.Counter.create ();
    dropped = Stat.Counter.create ();
    faults = None;
    burst_remaining = 0;
    truncated = 0;
    corrupted = 0;
    duplicated = 0;
    reordered = 0;
    burst_lost = 0;
  }

let scheduler t = t.sched

let add_node t ~name ~hosts =
  let node =
    {
      id = t.count;
      name;
      hosts;
      links = [];
      handler = (fun _ -> ());
      tap = None;
      transit_delay = None;
      bytes_seen = 0;
    }
  in
  List.iter
    (fun host ->
      if Hashtbl.mem t.host_owner host then
        invalid_arg (Printf.sprintf "Network.add_node: host %s already assigned" host);
      Hashtbl.replace t.host_owner host node.id)
    hosts;
  if t.count = Array.length t.nodes then begin
    let capacity = Stdlib.max 8 (2 * Array.length t.nodes) in
    let nodes' = Array.make capacity node in
    Array.blit t.nodes 0 nodes' 0 t.count;
    t.nodes <- nodes'
  end;
  t.nodes.(t.count) <- node;
  t.count <- t.count + 1;
  t.routes_dirty <- true;
  node

let node_name node = node.name

let find_node t ~host =
  match Hashtbl.find_opt t.host_owner host with
  | None -> None
  | Some id -> Some t.nodes.(id)

let connect t a b ~rate_bps ~prop_delay ~loss_prob =
  let fresh peer =
    { peer; rate_bps; prop_delay; loss_prob; free_at = Time.zero; tx_packets = 0;
      tx_bytes = 0; lost_packets = 0 }
  in
  a.links <- fresh b.id :: a.links;
  b.links <- fresh a.id :: b.links;
  t.routes_dirty <- true

let set_handler node f = node.handler <- f
let set_tap node tap = node.tap <- tap
let set_transit_delay node f = node.transit_delay <- f

let recompute_routes t =
  let n = t.count in
  let next_hop = Array.make_matrix n n (-1) in
  for src = 0 to n - 1 do
    (* BFS from [src]; record the first hop on each shortest path. *)
    let first = Array.make n (-1) in
    let visited = Array.make n false in
    visited.(src) <- true;
    let queue = Queue.create () in
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.take queue in
      List.iter
        (fun link ->
          let v = link.peer in
          if not visited.(v) then begin
            visited.(v) <- true;
            first.(v) <- (if u = src then v else first.(u));
            Queue.add v queue
          end)
        t.nodes.(u).links
    done;
    Array.blit first 0 next_hop.(src) 0 n
  done;
  t.next_hop <- next_hop;
  t.routes_dirty <- false

let ensure_routes t = if t.routes_dirty then recompute_routes t

let make_packet t ~src ~dst payload =
  Packet.make t.alloc ~src ~dst ~sent_at:(Scheduler.now t.sched) payload

let link_to node peer_id = List.find_opt (fun link -> link.peer = peer_id) node.links

(* Forwarding: each hop serializes the packet on the outgoing link (FIFO
   behind earlier packets), suffers propagation delay, and may be lost. *)
let rec arrive_at t node packet =
  node.bytes_seen <- node.bytes_seen + Packet.size packet;
  (match node.tap with None -> () | Some tap -> tap packet);
  let dst_host = (packet : Packet.t).dst.host in
  match Hashtbl.find_opt t.host_owner dst_host with
  | Some owner when owner = node.id ->
      Stat.Counter.incr t.delivered;
      node.handler packet
  | Some _ | None -> (
      match node.transit_delay with
      | None -> forward t node packet
      | Some delay_of ->
          let delay = delay_of packet in
          if delay = Time.zero then forward t node packet
          else ignore (Scheduler.schedule_after t.sched delay (fun () -> forward t node packet)))

and forward t node packet =
  ensure_routes t;
  let dst_host = (packet : Packet.t).dst.host in
  match Hashtbl.find_opt t.host_owner dst_host with
  | None -> Stat.Counter.incr t.dropped
  | Some owner when t.next_hop.(node.id).(owner) = -1 -> Stat.Counter.incr t.dropped
  | Some owner -> (
      let hop = t.next_hop.(node.id).(owner) in
      match link_to node hop with
      | None -> Stat.Counter.incr t.dropped
      | Some link -> transmit t link packet)

and transmit t link packet =
  let now = Scheduler.now t.sched in
  let tx_time =
    if link.rate_bps <= 0.0 then Time.zero
    else Time.of_sec (float_of_int (8 * Packet.size packet) /. link.rate_bps)
  in
  let start = Time.max now link.free_at in
  let done_ = Time.add start tx_time in
  link.free_at <- done_;
  let arrival = Time.add done_ link.prop_delay in
  link.tx_packets <- link.tx_packets + 1;
  link.tx_bytes <- link.tx_bytes + Packet.size packet;
  let lost = link.loss_prob > 0.0 && Rng.bool t.rng link.loss_prob in
  if lost then link.lost_packets <- link.lost_packets + 1;
  let peer = t.nodes.(link.peer) in
  if lost then ignore (Scheduler.schedule_at t.sched arrival (fun () -> Stat.Counter.incr t.dropped))
  else
    match t.faults with
    | None -> ignore (Scheduler.schedule_at t.sched arrival (fun () -> arrive_at t peer packet))
    | Some profile -> deliver_faulty t profile ~arrival peer packet

(* The fault-injection layer: applied per link traversal, after the link's
   own Bernoulli loss.  Order: burst loss kills the packet outright;
   surviving bytes may be truncated then corrupted; the mangled packet may
   be duplicated; each copy may be independently held back (reordering). *)
and deliver_faulty t p ~arrival peer packet =
  let drop =
    if t.burst_remaining > 0 then begin
      t.burst_remaining <- t.burst_remaining - 1;
      true
    end
    else if p.burst_loss_prob > 0.0 && Rng.bool t.rng p.burst_loss_prob then begin
      t.burst_remaining <- Stdlib.max 0 (p.burst_length - 1);
      true
    end
    else false
  in
  if drop then begin
    t.burst_lost <- t.burst_lost + 1;
    ignore (Scheduler.schedule_at t.sched arrival (fun () -> Stat.Counter.incr t.dropped))
  end
  else begin
    let payload = (packet : Packet.t).payload in
    let payload =
      if String.length payload > 0 && p.truncate_prob > 0.0 && Rng.bool t.rng p.truncate_prob
      then begin
        t.truncated <- t.truncated + 1;
        String.sub payload 0 (Rng.int t.rng (String.length payload))
      end
      else payload
    in
    let payload =
      if String.length payload > 0 && p.corrupt_prob > 0.0 && Rng.bool t.rng p.corrupt_prob
      then begin
        t.corrupted <- t.corrupted + 1;
        let bytes = Bytes.of_string payload in
        let flips = 1 + Rng.int t.rng 4 in
        for _ = 1 to flips do
          let i = Rng.int t.rng (Bytes.length bytes) in
          Bytes.set bytes i
            (Char.chr (Char.code (Bytes.get bytes i) lxor (1 + Rng.int t.rng 255)))
        done;
        Bytes.to_string bytes
      end
      else payload
    in
    let packet = if payload == (packet : Packet.t).payload then packet else Packet.with_payload packet payload in
    let copies =
      if p.duplicate_prob > 0.0 && Rng.bool t.rng p.duplicate_prob then begin
        t.duplicated <- t.duplicated + 1;
        2
      end
      else 1
    in
    for _ = 1 to copies do
      let arrival =
        if
          p.reorder_prob > 0.0
          && Time.( > ) p.reorder_delay Time.zero
          && Rng.bool t.rng p.reorder_prob
        then begin
          t.reordered <- t.reordered + 1;
          Time.add arrival (Time.of_sec (Rng.float t.rng (Time.to_sec p.reorder_delay)))
        end
        else arrival
      in
      ignore (Scheduler.schedule_at t.sched arrival (fun () -> arrive_at t peer packet))
    done
  end

let send t ~from packet = arrive_at t from packet

type link_stats = {
  from_node : string;
  to_node : string;
  rate_bps : float;
  tx_packets : int;
  tx_bytes : int;
  lost_packets : int;
}

let link_stats t =
  let stats = ref [] in
  for i = 0 to t.count - 1 do
    let node = t.nodes.(i) in
    List.iter
      (fun link ->
        stats :=
          {
            from_node = node.name;
            to_node = t.nodes.(link.peer).name;
            rate_bps = link.rate_bps;
            tx_packets = link.tx_packets;
            tx_bytes = link.tx_bytes;
            lost_packets = link.lost_packets;
          }
          :: !stats)
      node.links
  done;
  List.rev !stats
let packets_delivered t = Stat.Counter.get t.delivered
let packets_dropped t = Stat.Counter.get t.dropped
let bytes_forwarded _t node = node.bytes_seen

let set_fault_profile t profile =
  t.faults <- profile;
  if profile = None then t.burst_remaining <- 0

type fault_stats = {
  truncated : int;
  corrupted : int;
  duplicated : int;
  reordered : int;
  burst_lost : int;
}

let fault_stats (t : t) =
  {
    truncated = t.truncated;
    corrupted = t.corrupted;
    duplicated = t.duplicated;
    reordered = t.reordered;
    burst_lost = t.burst_lost;
  }
