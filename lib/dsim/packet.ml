type t = { id : int; src : Addr.t; dst : Addr.t; payload : string; sent_at : Time.t }

let header_overhead = 28
let size t = String.length t.payload + header_overhead

let pp ppf t =
  Format.fprintf ppf "#%d %a -> %a (%dB @ %a)" t.id Addr.pp t.src Addr.pp t.dst (size t) Time.pp
    t.sent_at

type allocator = { mutable next : int }

let allocator () = { next = 0 }

let make alloc ~src ~dst ~sent_at payload =
  let id = alloc.next in
  alloc.next <- alloc.next + 1;
  { id; src; dst; payload; sent_at }

let with_payload t payload = { t with payload }
