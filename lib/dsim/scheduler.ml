type state = Pending | Fired | Cancelled

type timer = {
  fire_at : Time.t;
  seq : int;
  action : unit -> unit;
  mutable state : state;
  owner : t;
}

and t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable live : int; (* queued timers still in Pending state *)
  queue : timer Heap.t;
}

let cmp_timer a b =
  let c = Time.compare a.fire_at b.fire_at in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () = { clock = Time.zero; next_seq = 0; live = 0; queue = Heap.create ~cmp:cmp_timer }
let now t = t.clock

let schedule_at t when_ action =
  if Time.( < ) when_ t.clock then
    invalid_arg
      (Format.asprintf "Scheduler.schedule_at: %a is in the past (now %a)" Time.pp when_ Time.pp
         t.clock);
  let timer = { fire_at = when_; seq = t.next_seq; action; state = Pending; owner = t } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Heap.push t.queue timer;
  timer

let schedule_after t delay action = schedule_at t (Time.add t.clock delay) action

let cancel timer =
  match timer.state with
  | Pending ->
      timer.state <- Cancelled;
      timer.owner.live <- timer.owner.live - 1
  | Fired | Cancelled -> ()

let is_cancelled timer = timer.state = Cancelled
let fire_time timer = timer.fire_at
let pending t = t.live

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some timer ->
      t.clock <- timer.fire_at;
      (match timer.state with
      | Pending ->
          timer.state <- Fired;
          t.live <- t.live - 1;
          timer.action ()
      | Cancelled | Fired -> ());
      true

let run t = while step t do () done

let run_until t limit =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | Some timer when Time.( <= ) timer.fire_at limit -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if Time.( < ) t.clock limit then t.clock <- limit

let advance_to t target =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | Some timer when Time.( < ) timer.fire_at target -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if Time.( < ) t.clock target then t.clock <- target
