(** Streaming statistics and time series for experiment reporting. *)

(** Welford-style running summary of a scalar stream. *)
module Summary : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit

  val count : t -> int

  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Sample variance; 0 with fewer than two observations. *)

  val stddev : t -> float

  val min : t -> float
  (** +inf when empty. *)

  val max : t -> float
  (** -inf when empty. *)

  val pp : Format.formatter -> t -> unit
end

(** Timestamped samples, for reproducing the paper's per-time plots. *)
module Series : sig
  type t

  val create : name:string -> t

  val name : t -> string

  val add : t -> Time.t -> float -> unit

  val length : t -> int

  val to_list : t -> (Time.t * float) list
  (** In insertion order. *)

  val values : t -> float array

  val summary : t -> Summary.t

  val bucket_mean : t -> bucket:Time.t -> (Time.t * float) list
  (** Mean of samples per time bucket, for compact plotting; buckets with no
      samples are omitted. *)
end

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]]; sorts a copy.  Returns [nan] on
    an empty array. *)

(** Streaming quantile estimator with bounded memory.

    Keeps every sample exactly until [capacity] is reached, then degrades
    gracefully to uniform reservoir sampling (Vitter's algorithm R, driven by
    a deterministic {!Rng} stream so runs stay reproducible).  Built for the
    per-packet latency distributions of the benchmarks, where millions of
    samples must reduce to p50/p95/p99 without holding them all. *)
module Quantiles : sig
  type t

  val create : ?capacity:int -> ?seed:int -> unit -> t
  (** [capacity] defaults to 8192 retained samples; raises
      [Invalid_argument] when not positive. *)

  val add : t -> float -> unit

  val count : t -> int
  (** Total samples observed (not the retained subset size). *)

  val quantile : t -> float -> float
  (** [quantile t p] with [p] in [\[0,100\]]; [nan] when empty.  Exact until
      [capacity] samples, an unbiased estimate beyond. *)

  val p50 : t -> float

  val p95 : t -> float

  val p99 : t -> float

  val merge : t -> t -> t
  (** A fresh estimator over both retained sample sets — how per-shard
      latency distributions combine into one report. *)

  val pp : Format.formatter -> t -> unit
  (** ["p50=… p95=… p99=… (n=…)"]. *)
end

(** Fixed-width-bin histogram over a known range. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  (** Raises [Invalid_argument] when [bins <= 0] or [hi <= lo]. *)

  val add : t -> float -> unit
  (** Out-of-range samples land in the first/last bin. *)

  val count : t -> int

  val bins : t -> (float * float * int) list
  (** [(lower, upper, count)] per bin, in order. *)

  val pp : Format.formatter -> t -> unit
  (** A small ASCII bar chart. *)
end

(** Integer-valued event counter. *)
module Counter : sig
  type t

  val create : unit -> t

  val incr : t -> unit

  val add : t -> int -> unit

  val get : t -> int
end
