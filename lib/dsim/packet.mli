(** Simulated UDP datagrams.

    The payload is raw wire bytes: SIP messages travel as their textual
    encoding and RTP as its binary encoding, so every consumer (including the
    intrusion detection system) exercises a real parser rather than being
    handed structured data. *)

type t = {
  id : int;  (** Unique per simulation run; useful for tracing. *)
  src : Addr.t;
  dst : Addr.t;
  payload : string;
  sent_at : Time.t;  (** Time the packet entered the network. *)
}

val size : t -> int
(** Bytes on the wire: payload plus a 28-byte IPv4+UDP header estimate. *)

val header_overhead : int

val pp : Format.formatter -> t -> unit

type allocator
(** Hands out fresh packet ids. *)

val allocator : unit -> allocator

val make : allocator -> src:Addr.t -> dst:Addr.t -> sent_at:Time.t -> string -> t

val with_payload : t -> string -> t
(** Same packet identity with different wire bytes — how the fault
    injector models in-flight truncation and corruption. *)
