(** The discrete-event engine.

    A scheduler owns the simulation clock and a priority queue of pending
    events.  Events scheduled at equal times fire in scheduling order (FIFO),
    which the protocol machines rely on for deterministic replay. *)

type t

type timer
(** Handle to a scheduled event, usable for cancellation. *)

val create : unit -> t

val now : t -> Time.t
(** Current simulation time. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> timer
(** [schedule_at t when_ f] runs [f] at absolute time [when_].  Scheduling in
    the past raises [Invalid_argument]. *)

val schedule_after : t -> Time.t -> (unit -> unit) -> timer
(** [schedule_after t delay f] runs [f] at [now t + delay]. *)

val cancel : timer -> unit
(** Cancelling an already-fired or already-cancelled timer is a no-op. *)

val is_cancelled : timer -> bool

val fire_time : timer -> Time.t
(** Absolute time the timer is (or was) due to fire; used when
    checkpointing pending timers. *)

val pending : t -> int
(** Number of live (non-cancelled) queued events. *)

val step : t -> bool
(** Runs the next event; returns [false] when the queue is empty. *)

val run : t -> unit
(** Runs events until the queue is empty. *)

val run_until : t -> Time.t -> unit
(** [run_until t limit] runs events with timestamps [<= limit], then advances
    the clock to [limit]. *)

val advance_to : t -> Time.t -> unit
(** [advance_to t target] runs events with timestamps strictly before
    [target], then sets the clock to [target], leaving events due exactly at
    [target] queued.  This is the streaming counterpart of pre-scheduling a
    packet trace: a consumer that advances to each packet's timestamp and
    then processes the packet by hand reproduces the batch-replay ordering
    where same-instant packets beat timers.  A [target] before the current
    clock is a no-op (the clock never moves backwards). *)
