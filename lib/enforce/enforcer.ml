(* Alert-driven enforcement.  See enforcer.mli for the per-kind policy
   and the crash-safety contract. *)

module Engine = Vids.Engine
module Journal = Vids.Journal
module Alert = Vids.Alert
module Fact_base = Vids.Fact_base
module Codec = Vids.Codec

type policy = {
  block_ttl : Dsim.Time.t;
  rate_pps : int;
  rate_burst : int;
  fail_closed : bool;
  max_rules : int;
}

let default_policy =
  {
    block_ttl = Dsim.Time.of_sec 60.0;
    rate_pps = 50;
    rate_burst = 100;
    fail_closed = false;
    max_rules = 4096;
  }

let ext_tag = "enforce"

type t = {
  p : policy;
  sched : Dsim.Scheduler.t;
  eng : Engine.t;
  tbl : Block_table.t;
  journal : (Journal.entry -> unit) option;
  (* The packet under analysis: alerts fire synchronously inside
     [process_packet], so the listener reads the attacker-controlled
     source from here. *)
  mutable current : Dsim.Packet.t option;
  mutable passed : int;
  mutable blocked : int;
  mutable teardowns : int;
}

let now t = Dsim.Scheduler.now t.sched

(* ---- telemetry (strictly observational, resolved per event: the
   registry may be attached after the enforcer) ---------------------- *)

let bump t ?labels name =
  match Engine.metrics_registry t.eng with
  | None -> ()
  | Some m -> Obs.Metrics.incr (Obs.Metrics.counter m ?labels name)

let gauge_rules t =
  match Engine.metrics_registry t.eng with
  | None -> ()
  | Some m ->
      Obs.Metrics.set
        (Obs.Metrics.gauge m "vids_enforce_rules_active")
        (float_of_int (List.length (Block_table.rules t.tbl ~now:(now t))))

let trace t action subject =
  match Engine.flight_recorder t.eng with
  | None -> ()
  | Some fl -> Obs.Trace.record fl ~at:(now t) (Obs.Trace.Enforce { action; subject })

let emit_ext t payload =
  match t.journal with
  | None -> ()
  | Some emit -> emit (Journal.Ext { at = now t; tag = ext_tag; payload })

(* ---- rule installation -------------------------------------------- *)

let scope_subject = function
  | Block_table.Src k -> "src " ^ Source_key.to_string k
  | Block_table.Dst k -> "dst " ^ Source_key.to_string k

let enter_lockdown t =
  if not (Block_table.lockdown t.tbl) then begin
    Block_table.set_lockdown t.tbl true;
    emit_ext t "L 1";
    trace t "lockdown" "rule table full";
    bump t "vids_enforce_lockdowns_total"
  end

let install t scope action ~escalate ~reason =
  let at = now t in
  let expires_at = Dsim.Time.add at t.p.block_ttl in
  match Block_table.install t.tbl ~now:at scope action ~expires_at ~escalate ~reason () with
  | Block_table.Overflow ->
      (* The table is attacker-fillable; what overflow means is policy.
         Fail-open sheds enforcement (detection continues); fail-closed
         prefers an outage to an unenforced attack. *)
      if t.p.fail_closed then enter_lockdown t
      else trace t "overflow" (scope_subject scope)
  | Block_table.Installed | Block_table.Refreshed -> (
      match Block_table.find t.tbl scope with
      | None -> ()
      | Some r ->
          (* Journal the post-install state: re-applying it verbatim on
             recovery converges even when the install was a refresh. *)
          emit_ext t (Block_table.rule_to_line r);
          let action_tag =
            match action with Block_table.Drop -> "block" | Block_table.Rate_limit _ -> "rate-limit"
          in
          trace t action_tag (scope_subject scope);
          bump t ~labels:[ ("action", action_tag) ] "vids_enforce_rules_total";
          gauge_rules t)

let drop_src_host t ~reason =
  match t.current with
  | None -> ()
  | Some pkt ->
      install t
        (Block_table.Src (Source_key.host_of_addr pkt.Dsim.Packet.src))
        Block_table.Drop ~escalate:false ~reason

let drop_src_endpoint t ~reason =
  match t.current with
  | None -> ()
  | Some pkt ->
      install t
        (Block_table.Src (Source_key.of_addr pkt.Dsim.Packet.src))
        Block_table.Drop ~escalate:false ~reason

let limit_src_endpoint t ~reason =
  match t.current with
  | None -> ()
  | Some pkt ->
      install t
        (Block_table.Src (Source_key.of_addr pkt.Dsim.Packet.src))
        (Block_table.Rate_limit { pps = t.p.rate_pps; burst = t.p.rate_burst })
        ~escalate:false ~reason

let protect_victim t ~victim ~reason =
  install t
    (Block_table.Dst (Source_key.host victim))
    (Block_table.Rate_limit { pps = t.p.rate_pps; burst = t.p.rate_burst })
    ~escalate:true ~reason

(* ---- forced call teardown ----------------------------------------- *)

let do_teardown t ~call_id ~at =
  let fb = Engine.fact_base t.eng in
  match Fact_base.find_call fb call_id with
  | None -> false
  | Some call ->
      Fact_base.arm_delete_at fb call at;
      t.teardowns <- t.teardowns + 1;
      trace t "teardown" call_id;
      bump t "vids_enforce_teardowns_total";
      true

let teardown t ~call_id =
  let at = now t in
  if do_teardown t ~call_id ~at then
    emit_ext t (Printf.sprintf "T %s %d" (Codec.hex call_id) (Dsim.Time.to_us at))

(* ---- the per-kind response map ------------------------------------ *)

let strip_prefix ~prefix s =
  if String.length s > String.length prefix && String.sub s 0 (String.length prefix) = prefix
  then Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

let on_alert t (a : Alert.t) =
  let reason = Alert.kind_to_string a.Alert.kind in
  match a.Alert.kind with
  | Alert.Invite_flood -> drop_src_host t ~reason
  | Alert.Media_spam -> drop_src_endpoint t ~reason
  | Alert.Rtp_flood -> limit_src_endpoint t ~reason
  | Alert.Call_hijack | Alert.Cancel_dos | Alert.Registration_hijack ->
      teardown t ~call_id:a.Alert.subject;
      drop_src_host t ~reason
  | Alert.Bye_dos | Alert.Billing_fraud ->
      (* The triggering packet names — and can come from — the legitimate
         party, so only the call is torn down; no source is blocked. *)
      teardown t ~call_id:a.Alert.subject
  | Alert.Drdos ->
      (match strip_prefix ~prefix:"victim:" a.Alert.subject with
      | Some victim -> protect_victim t ~victim ~reason
      | None -> ());
      drop_src_host t ~reason
  | Alert.Spec_deviation | Alert.Resource_pressure | Alert.Engine_fault ->
      (* Engine health, not an attacker: acting on these would turn a
         contained fault into a self-inflicted outage. *)
      ()

let create ?(policy = default_policy) ?journal sched eng =
  let tbl = Block_table.create ~max_rules:policy.max_rules () in
  let t =
    {
      p = policy;
      sched;
      eng;
      tbl;
      journal;
      current = None;
      passed = 0;
      blocked = 0;
      teardowns = 0;
    }
  in
  Engine.on_alert eng (fun a -> on_alert t a);
  t

let policy t = t.p
let table t = t.tbl
let engine t = t.eng

(* ---- the gate ----------------------------------------------------- *)

let ingest t pkt =
  let at = now t in
  let src = pkt.Dsim.Packet.src and dst = pkt.Dsim.Packet.dst in
  match Block_table.decide t.tbl ~now:at ~src ~dst with
  | Block_table.Pass ->
      t.passed <- t.passed + 1;
      t.current <- Some pkt;
      Fun.protect
        ~finally:(fun () -> t.current <- None)
        (fun () -> Engine.process_packet t.eng pkt);
      true
  | Block_table.Blocked _ ->
      t.blocked <- t.blocked + 1;
      trace t "drop" (Dsim.Addr.to_string src);
      bump t ~labels:[ ("cause", "block") ] "vids_enforce_dropped_total";
      false
  | Block_table.Locked ->
      t.blocked <- t.blocked + 1;
      bump t ~labels:[ ("cause", "lockdown") ] "vids_enforce_dropped_total";
      false
  | Block_table.Limited r ->
      t.blocked <- t.blocked + 1;
      trace t "rate-limit-drop" (Dsim.Addr.to_string src);
      bump t ~labels:[ ("cause", "rate") ] "vids_enforce_dropped_total";
      if r.Block_table.escalate then
        install t
          (Block_table.Src (Source_key.of_addr src))
          Block_table.Drop ~escalate:false
          ~reason:("escalated:" ^ r.Block_table.reason);
      false

type stats = {
  passed : int;
  blocked : int;
  teardowns : int;
  table : Block_table.stats;
}

let stats (t : t) =
  {
    passed = t.passed;
    blocked = t.blocked;
    teardowns = t.teardowns;
    table = Block_table.stats t.tbl ~now:(now t);
  }

let digest t = Block_table.digest t.tbl ~now:(now t)
let rules_text t = Block_table.to_text t.tbl ~now:(now t)
let rules_json t = Block_table.to_json t.tbl ~now:(now t)

(* ---- crash safety ------------------------------------------------- *)

let snapshot_payload t = Block_table.serialize t.tbl ~now:(now t)

let restore t ~payload =
  match Block_table.restore t.tbl payload with
  | Ok () -> Ok ()
  | Error e ->
      if t.p.fail_closed then enter_lockdown t;
      Error e

let ( let* ) = Result.bind

(* The payload self-describes (the teardown line carries its own absolute
   time), so the entry timestamp only decides *when* to apply it. *)
let apply_payload t payload =
  match String.split_on_char ' ' payload with
  | "R" :: _ -> Block_table.apply_rule_line t.tbl ~keep_hits:true payload
  | [ "T"; callid_hex; t_us ] ->
      let* call_id = Codec.unhex callid_hex in
      let* at = Codec.time_tok t_us in
      ignore (do_teardown t ~call_id ~at);
      Ok ()
  | [ "L"; flag ] ->
      let* flag = Codec.int_tok flag in
      Block_table.set_lockdown t.tbl (flag <> 0);
      Ok ()
  | _ -> Error (Printf.sprintf "unrecognized enforcement journal payload %S" payload)

let apply_journal t ~at ~payload =
  ignore
    (Dsim.Scheduler.schedule_at t.sched at (fun () ->
         match apply_payload t payload with
         | Ok () -> ()
         | Error _ -> trace t "journal-skip" payload))
