(** The enforcement rule table: TTL'd per-source blocks and rate limits.

    Pure mechanism, no policy: callers ({!Enforcer}) decide {e what} to
    install in response to which alert; this module answers the per-packet
    question "may this datagram pass right now?" and keeps the table
    bounded, serializable and deterministic.

    Determinism is the design driver throughout, because the same
    decisions must replay identically during crash recovery:

    - TTLs are {e absolute} virtual-time deadlines, expired {e lazily} on
      lookup (plus an [O(n)] purge before each install) — there is no
      periodic expiry timer whose firing could interleave differently on
      replay.
    - Rate limiting uses float token buckets advanced by the virtual
      clock; bucket state round-trips exactly (hex float encoding)
      through checkpoints so a recovered gate makes the same pass/drop
      calls as the uninterrupted run.
    - {!install} is an idempotent upsert keyed by scope, so re-applying a
      journaled install after its live twin converges instead of
      duplicating.

    The canonical {!digest} covers the durable rule set (scopes, actions,
    deadlines, reasons) and excludes the volatile counters (hits, bucket
    levels) — it is the enforcement analogue of [Snapshot.digest]. *)

type scope =
  | Src of Source_key.t  (** Matches a datagram's source. *)
  | Dst of Source_key.t
      (** Matches a datagram's destination — protects a victim (e.g. a
          DRDoS reflection target) from {e all} sources. *)

type action =
  | Drop
  | Rate_limit of { pps : int; burst : int }
      (** Token bucket: sustained [pps] packets/second, bursts up to
          [burst].  A [Dst] rate limit buckets {e per offending source},
          so one noisy source cannot starve the rest. *)

type bucket = { mutable tokens : float; mutable last : Dsim.Time.t }

type rule = {
  scope : scope;
  mutable action : action;
  mutable installed_at : Dsim.Time.t;
  mutable expires_at : Dsim.Time.t;  (** Absolute; lazy expiry. *)
  mutable escalate : bool;
      (** On a [Dst] rate limit: a source that trips the limiter earns its
          own [Src] [Drop] rule (installed by the caller, who owns
          policy). *)
  mutable reason : string;  (** The alert that caused the rule. *)
  mutable hits : int;  (** Packets dropped or limited by this rule. *)
  serial : int;  (** Install order; canonical serialization order. *)
  buckets : (string, bucket) Hashtbl.t;
      (** Rate-limit state, keyed by offending source ([""] for [Src]
          rules, which have exactly one bucket). *)
}

type t

type stats = {
  active : int;  (** Unexpired rules (after a purge). *)
  installed : int;  (** Fresh installs (not refreshes). *)
  refreshed : int;
  expired : int;
  overflowed : int;  (** Installs refused because the table was full. *)
  dropped : int;  (** Packets blocked by a [Drop] rule or lockdown. *)
  limited : int;  (** Packets dropped by an exhausted token bucket. *)
}

val create : ?max_rules:int -> ?on_expire:(scope -> unit) -> unit -> t
(** [max_rules] (default 4096) bounds the table: rule scopes are derived
    from attacker-controlled addresses, so the table governs its own size
    exactly like the fact base does.  [on_expire] fires once per rule as
    lazy expiry reclaims it. *)

val max_rules : t -> int

val lockdown : t -> bool

val set_lockdown : t -> bool -> unit
(** Fail-closed overload state: while set, {!decide} blocks everything.
    Owned by the caller's policy (e.g. entered on table overflow when the
    operator chose fail-closed). *)

type install_outcome = Installed | Refreshed | Overflow

val install :
  t ->
  now:Dsim.Time.t ->
  scope ->
  action ->
  expires_at:Dsim.Time.t ->
  ?escalate:bool ->
  reason:string ->
  unit ->
  install_outcome
(** Upsert.  An existing rule for the scope is refreshed: the deadline
    extends to the later of the two, [Drop] dominates [Rate_limit],
    [escalate] is sticky, the original reason and install time stand, and
    accumulated hits and bucket state survive.  A fresh install when
    [active ≥ max_rules] (after purging expired rules) returns [Overflow]
    and installs nothing. *)

val find : t -> scope -> rule option
(** Live lookup ([None] for expired rules, without reclaiming them). *)

type verdict =
  | Pass
  | Blocked of rule  (** Matched a [Drop] rule. *)
  | Limited of rule  (** Token bucket exhausted. *)
  | Locked  (** Lockdown: fail-closed blocks everything. *)

val decide : t -> now:Dsim.Time.t -> src:Dsim.Addr.t -> dst:Dsim.Addr.t -> verdict
(** The per-packet gate.  Match order: source endpoint, source host,
    destination endpoint, destination host — [Drop] rules are checked
    across all four before any token bucket is charged, so a drop is
    never masked by a limiter that still has tokens.  Matched expired
    rules are reclaimed on the spot. *)

val purge_expired : t -> now:Dsim.Time.t -> int
(** Reclaims every expired rule; returns how many. *)

val rules : t -> now:Dsim.Time.t -> rule list
(** Active rules in install order (purges first). *)

val stats : t -> now:Dsim.Time.t -> stats
(** Purges first, so [active] counts only live rules. *)

(** {1 Serialization}

    Snapshot payload (multi-line): an [ENF 1 <lockdown>] header, then per
    rule an [R] line (identity, action, deadlines, hits, reason) followed
    by its [B] bucket lines — tokens as hex floats for exact round-trip.
    Journal payloads are single [R] lines {e without} hits or buckets:
    replay re-derives the volatile state by re-running the gate. *)

val serialize : t -> now:Dsim.Time.t -> string

val restore : t -> string -> (unit, string) result
(** Replaces the table's contents from a {!serialize} payload.  Total:
    malformed input is [Error] and leaves the table empty rather than
    half-loaded. *)

val rule_to_line : rule -> string
(** The journal form: hits rendered as 0, no bucket state. *)

val apply_rule_line : t -> keep_hits:bool -> string -> (unit, string) result
(** Re-applies a journaled [R] line: overwrites the rule's durable fields
    (creating it if absent), preserving accumulated hits and buckets when
    [keep_hits] — the exactly-once contract for journal replay. *)

val digest : t -> now:Dsim.Time.t -> string
(** MD5 over the canonical active rule set plus the lockdown flag,
    excluding volatile hits and bucket levels.  Two tables enforce
    equivalently iff their digests are equal. *)

val to_text : t -> now:Dsim.Time.t -> string
(** Operator-readable rule listing (the [vids-cli rules] output). *)

val to_json : t -> now:Dsim.Time.t -> string
