(* TTL'd block/rate-limit rule table.  See block_table.mli for the
   determinism contract (absolute deadlines, lazy expiry, exact bucket
   round-trip, idempotent upsert). *)

module Codec = Vids.Codec

type scope = Src of Source_key.t | Dst of Source_key.t
type action = Drop | Rate_limit of { pps : int; burst : int }
type bucket = { mutable tokens : float; mutable last : Dsim.Time.t }

type rule = {
  scope : scope;
  mutable action : action;
  mutable installed_at : Dsim.Time.t;
  mutable expires_at : Dsim.Time.t;
  mutable escalate : bool;
  mutable reason : string;
  mutable hits : int;
  serial : int;
  buckets : (string, bucket) Hashtbl.t;
}

type stats = {
  active : int;
  installed : int;
  refreshed : int;
  expired : int;
  overflowed : int;
  dropped : int;
  limited : int;
}

type t = {
  table : (string, rule) Hashtbl.t;  (* keyed by [scope_key] *)
  t_max_rules : int;
  on_expire : scope -> unit;
  mutable next_serial : int;
  mutable t_lockdown : bool;
  mutable s_installed : int;
  mutable s_refreshed : int;
  mutable s_expired : int;
  mutable s_overflowed : int;
  mutable s_dropped : int;
  mutable s_limited : int;
}

(* A rule's buckets are keyed by offending source, which is
   attacker-controlled: past this many distinct sources the overflow
   shares one bucket, keeping the rule's footprint bounded (and the
   degradation deterministic — insertion order decides who shares). *)
let max_buckets_per_rule = 4096

let scope_key = function
  | Src k -> "S:" ^ Source_key.to_string k
  | Dst k -> "D:" ^ Source_key.to_string k

let create ?(max_rules = 4096) ?(on_expire = fun _ -> ()) () =
  if max_rules <= 0 then invalid_arg "Block_table.create: max_rules must be positive";
  {
    table = Hashtbl.create 64;
    t_max_rules = max_rules;
    on_expire;
    next_serial = 0;
    t_lockdown = false;
    s_installed = 0;
    s_refreshed = 0;
    s_expired = 0;
    s_overflowed = 0;
    s_dropped = 0;
    s_limited = 0;
  }

let max_rules t = t.t_max_rules
let lockdown t = t.t_lockdown
let set_lockdown t v = t.t_lockdown <- v

let expire_rule t r =
  Hashtbl.remove t.table (scope_key r.scope);
  t.s_expired <- t.s_expired + 1;
  t.on_expire r.scope

let lookup t ~now scope =
  match Hashtbl.find_opt t.table (scope_key scope) with
  | None -> None
  | Some r ->
      if Dsim.Time.( >= ) now r.expires_at then (
        expire_rule t r;
        None)
      else Some r

let find t scope =
  match Hashtbl.find_opt t.table (scope_key scope) with
  | Some r -> Some r
  | None -> None

let purge_expired t ~now =
  let stale =
    Hashtbl.fold
      (fun _ r acc -> if Dsim.Time.( >= ) now r.expires_at then r :: acc else acc)
      t.table []
  in
  List.iter (expire_rule t) stale;
  List.length stale

type install_outcome = Installed | Refreshed | Overflow

let install t ~now scope action ~expires_at ?(escalate = false) ~reason () =
  ignore (purge_expired t ~now);
  let key = scope_key scope in
  match Hashtbl.find_opt t.table key with
  | Some r ->
      (* Refresh: deadline extends, Drop dominates, escalate is sticky,
         the original reason/install time (first cause) stand. *)
      r.expires_at <- Dsim.Time.max r.expires_at expires_at;
      (match (r.action, action) with
      | Drop, _ -> ()
      | _, a -> r.action <- a);
      r.escalate <- r.escalate || escalate;
      t.s_refreshed <- t.s_refreshed + 1;
      Refreshed
  | None ->
      if Hashtbl.length t.table >= t.t_max_rules then (
        t.s_overflowed <- t.s_overflowed + 1;
        Overflow)
      else (
        let r =
          {
            scope;
            action;
            installed_at = now;
            expires_at;
            escalate;
            reason;
            hits = 0;
            serial = t.next_serial;
            buckets = Hashtbl.create 4;
          }
        in
        t.next_serial <- t.next_serial + 1;
        Hashtbl.replace t.table key r;
        t.s_installed <- t.s_installed + 1;
        Installed)

(* --------------------------------------------------------------- *)
(* The per-packet gate                                              *)
(* --------------------------------------------------------------- *)

let bucket_for r key =
  match Hashtbl.find_opt r.buckets key with
  | Some b -> Some b
  | None ->
      if Hashtbl.length r.buckets >= max_buckets_per_rule then Hashtbl.find_opt r.buckets "*"
      else None

let take_token r ~now ~key ~pps ~burst =
  let b =
    match bucket_for r key with
    | Some b -> b
    | None ->
        let key =
          if Hashtbl.length r.buckets >= max_buckets_per_rule then "*" else key
        in
        let b = { tokens = float_of_int burst; last = now } in
        Hashtbl.replace r.buckets key b;
        b
  in
  let dt = float_of_int (Dsim.Time.to_us (Dsim.Time.sub now b.last)) /. 1e6 in
  let dt = if dt < 0.0 then 0.0 else dt in
  b.tokens <- Float.min (float_of_int burst) (b.tokens +. (float_of_int pps *. dt));
  b.last <- now;
  if b.tokens >= 1.0 then (
    b.tokens <- b.tokens -. 1.0;
    true)
  else false

type verdict = Pass | Blocked of rule | Limited of rule | Locked

let decide t ~now ~src ~dst =
  if t.t_lockdown then (
    t.s_dropped <- t.s_dropped + 1;
    Locked)
  else
    let matched =
      List.filter_map (lookup t ~now)
        [
          Src (Source_key.of_addr src);
          Src (Source_key.host_of_addr src);
          Dst (Source_key.of_addr dst);
          Dst (Source_key.host_of_addr dst);
        ]
    in
    (* Drops first across every matching scope: a drop must never be
       masked by a limiter that still has tokens. *)
    match List.find_opt (fun r -> r.action = Drop) matched with
    | Some r ->
        r.hits <- r.hits + 1;
        t.s_dropped <- t.s_dropped + 1;
        Blocked r
    | None ->
        let rec charge = function
          | [] -> Pass
          | r :: rest -> (
              match r.action with
              | Drop -> charge rest
              | Rate_limit { pps; burst } ->
                  let key =
                    match r.scope with
                    | Src _ -> ""
                    | Dst _ -> Source_key.to_string (Source_key.of_addr src)
                  in
                  if take_token r ~now ~key ~pps ~burst then charge rest
                  else (
                    r.hits <- r.hits + 1;
                    t.s_limited <- t.s_limited + 1;
                    Limited r))
        in
        charge matched

let rules t ~now =
  ignore (purge_expired t ~now);
  let all = Hashtbl.fold (fun _ r acc -> r :: acc) t.table [] in
  List.sort (fun a b -> Stdlib.compare a.serial b.serial) all

let stats t ~now =
  ignore (purge_expired t ~now);
  {
    active = Hashtbl.length t.table;
    installed = t.s_installed;
    refreshed = t.s_refreshed;
    expired = t.s_expired;
    overflowed = t.s_overflowed;
    dropped = t.s_dropped;
    limited = t.s_limited;
  }

(* --------------------------------------------------------------- *)
(* Serialization                                                    *)
(* --------------------------------------------------------------- *)

let scope_tokens = function
  | Src k -> ("S", Codec.hex (Source_key.to_string k))
  | Dst k -> ("D", Codec.hex (Source_key.to_string k))

let action_tokens = function
  | Drop -> ("drop", 0, 0)
  | Rate_limit { pps; burst } -> ("rate", pps, burst)

let rule_line ~hits r =
  let stag, keyhex = scope_tokens r.scope in
  let atag, pps, burst = action_tokens r.action in
  Printf.sprintf "R %s %s %s %d %d %d %d %d %d %s" stag keyhex atag pps burst
    (Dsim.Time.to_us r.installed_at)
    (Dsim.Time.to_us r.expires_at)
    (if r.escalate then 1 else 0)
    hits (Codec.hex r.reason)

let rule_to_line r = rule_line ~hits:0 r

let bucket_lines r =
  let entries = Hashtbl.fold (fun k b acc -> (k, b) :: acc) r.buckets [] in
  let entries = List.sort (fun (a, _) (b, _) -> String.compare a b) entries in
  List.map
    (fun (k, b) ->
      Printf.sprintf "B %s %h %d" (Codec.hex k) b.tokens (Dsim.Time.to_us b.last))
    entries

let serialize t ~now =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "ENF 1 %d\n" (if t.t_lockdown then 1 else 0));
  List.iter
    (fun r ->
      Buffer.add_string buf (rule_line ~hits:r.hits r);
      Buffer.add_char buf '\n';
      List.iter
        (fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        (bucket_lines r))
    (rules t ~now);
  Buffer.contents buf

let ( let* ) = Result.bind

let parse_scope stag keyhex =
  let* key_str = Codec.unhex keyhex in
  let* key = Source_key.of_string key_str in
  match stag with
  | "S" -> Ok (Src key)
  | "D" -> Ok (Dst key)
  | s -> Error (Printf.sprintf "unknown rule scope %S" s)

let parse_action atag pps burst =
  let* pps = Codec.int_tok pps in
  let* burst = Codec.int_tok burst in
  match atag with
  | "drop" -> Ok Drop
  | "rate" -> Ok (Rate_limit { pps; burst })
  | s -> Error (Printf.sprintf "unknown rule action %S" s)

type parsed_rule = {
  p_scope : scope;
  p_action : action;
  p_installed : Dsim.Time.t;
  p_expires : Dsim.Time.t;
  p_escalate : bool;
  p_hits : int;
  p_reason : string;
}

let parse_rule_tokens = function
  | [ stag; keyhex; atag; pps; burst; installed; expires; esc; hits; reasonhex ] ->
      let* p_scope = parse_scope stag keyhex in
      let* p_action = parse_action atag pps burst in
      let* p_installed = Codec.time_tok installed in
      let* p_expires = Codec.time_tok expires in
      let* esc = Codec.int_tok esc in
      let* p_hits = Codec.int_tok hits in
      let* p_reason = Codec.unhex reasonhex in
      Ok { p_scope; p_action; p_installed; p_expires; p_escalate = esc <> 0; p_hits; p_reason }
  | _ -> Error "malformed rule line"

(* Force-creates or overwrites a rule from parsed fields; no overflow or
   refresh-merge semantics — restore and journal replay record the exact
   post-install state, so re-applying it verbatim is what converges. *)
let put_rule t p ~hits ~buckets =
  let key = scope_key p.p_scope in
  match Hashtbl.find_opt t.table key with
  | Some r ->
      r.action <- p.p_action;
      r.installed_at <- p.p_installed;
      r.expires_at <- p.p_expires;
      r.escalate <- p.p_escalate;
      r.reason <- p.p_reason;
      (match hits with Some h -> r.hits <- h | None -> ());
      (match buckets with
      | Some bs ->
          Hashtbl.reset r.buckets;
          List.iter (fun (k, b) -> Hashtbl.replace r.buckets k b) bs
      | None -> ());
      r
  | None ->
      let r =
        {
          scope = p.p_scope;
          action = p.p_action;
          installed_at = p.p_installed;
          expires_at = p.p_expires;
          escalate = p.p_escalate;
          reason = p.p_reason;
          hits = (match hits with Some h -> h | None -> 0);
          serial = t.next_serial;
          buckets = Hashtbl.create 4;
        }
      in
      (match buckets with
      | Some bs -> List.iter (fun (k, b) -> Hashtbl.replace r.buckets k b) bs
      | None -> ());
      t.next_serial <- t.next_serial + 1;
      Hashtbl.replace t.table key r;
      r

let apply_rule_line t ~keep_hits line =
  match String.split_on_char ' ' line with
  | "R" :: rest ->
      let* p = parse_rule_tokens rest in
      let hits = if keep_hits then None else Some p.p_hits in
      let (_ : rule) = put_rule t p ~hits ~buckets:None in
      Ok ()
  | _ -> Error "expected an R line"

let parse_bucket_tokens = function
  | [ keyhex; tokens; last ] ->
      let* key = Codec.unhex keyhex in
      let* last = Codec.time_tok last in
      (match float_of_string_opt tokens with
      | Some tk -> Ok (key, { tokens = tk; last })
      | None -> Error (Printf.sprintf "bad bucket level %S" tokens))
  | _ -> Error "malformed bucket line"

let restore t payload =
  Hashtbl.reset t.table;
  t.next_serial <- 0;
  let lines = String.split_on_char '\n' payload in
  let lines = List.filter (fun l -> l <> "") lines in
  let current = ref None in
  let step line =
    match String.split_on_char ' ' line with
    | [ "ENF"; "1"; lock ] ->
        let* lock = Codec.int_tok lock in
        t.t_lockdown <- lock <> 0;
        Ok ()
    | "R" :: rest ->
        let* p = parse_rule_tokens rest in
        current := Some (put_rule t p ~hits:(Some p.p_hits) ~buckets:None);
        Ok ()
    | "B" :: rest -> (
        let* key, b = parse_bucket_tokens rest in
        match !current with
        | Some r ->
            Hashtbl.replace r.buckets key b;
            Ok ()
        | None -> Error "bucket line before any rule")
    | _ -> Error (Printf.sprintf "unrecognized enforcement line %S" line)
  in
  let rec go = function
    | [] -> Ok ()
    | l :: rest -> (
        match step l with
        | Ok () -> go rest
        | Error e ->
            Hashtbl.reset t.table;
            Error e)
  in
  go lines

let digest t ~now =
  let canonical =
    String.concat "\n"
      (Printf.sprintf "ENF 1 %d" (if t.t_lockdown then 1 else 0)
      :: List.map rule_to_line (rules t ~now))
  in
  Digest.to_hex (Digest.string canonical)

(* --------------------------------------------------------------- *)
(* Operator export                                                  *)
(* --------------------------------------------------------------- *)

let scope_to_string = function
  | Src k -> "src " ^ Source_key.to_string k
  | Dst k -> "dst " ^ Source_key.to_string k

let action_to_string = function
  | Drop -> "drop"
  | Rate_limit { pps; burst } -> Printf.sprintf "rate-limit %d pps (burst %d)" pps burst

let to_text t ~now =
  let rs = rules t ~now in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d active rule(s); lockdown %s\n" (List.length rs)
       (if t.t_lockdown then "ON" else "off"));
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-28s %-26s expires %8.3f s  hits %-6d %s\n"
           (scope_to_string r.scope) (action_to_string r.action)
           (Dsim.Time.to_sec r.expires_at)
           r.hits r.reason))
    rs;
  Buffer.contents buf

let to_json t ~now =
  let module J = Obs.Json in
  let rule_json r =
    let base =
      [
        ( "scope",
          J.quote (match r.scope with Src _ -> "src" | Dst _ -> "dst") );
        ( "key",
          J.quote
            (Source_key.to_string (match r.scope with Src k | Dst k -> k)) );
        ("action", J.quote (match r.action with Drop -> "drop" | Rate_limit _ -> "rate-limit"));
      ]
    in
    let rate =
      match r.action with
      | Drop -> []
      | Rate_limit { pps; burst } -> [ ("pps", J.int pps); ("burst", J.int burst) ]
    in
    J.obj
      (base @ rate
      @ [
          ("installed_us", J.int (Dsim.Time.to_us r.installed_at));
          ("expires_us", J.int (Dsim.Time.to_us r.expires_at));
          ("escalate", J.bool r.escalate);
          ("hits", J.int r.hits);
          ("reason", J.quote r.reason);
        ])
  in
  J.obj
    [
      ("lockdown", J.bool t.t_lockdown);
      ("rules", J.arr (List.map rule_json (rules t ~now)));
    ]
