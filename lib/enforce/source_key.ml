(* Canonical source identity.  See source_key.mli for the contract. *)

type t = Host of string | Endpoint of string * int

let normalize = String.lowercase_ascii
let host h = Host (normalize h)

let endpoint h p =
  if p < 0 || p > 65535 then invalid_arg "Source_key.endpoint: port out of range";
  Endpoint (normalize h, p)

let of_addr (a : Dsim.Addr.t) = endpoint a.Dsim.Addr.host a.Dsim.Addr.port
let host_of_addr (a : Dsim.Addr.t) = host a.Dsim.Addr.host

let to_string = function
  | Host h -> h
  | Endpoint (h, p) -> Printf.sprintf "%s:%d" h p

let of_string s =
  if s = "" then Error "Source_key.of_string: empty key"
  else
    match String.rindex_opt s ':' with
    | None -> Ok (host s)
    | Some i -> (
        let h = String.sub s 0 i in
        let p = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt p with
        | Some port when port >= 0 && port <= 65535 ->
            if h = "" then Error "Source_key.of_string: empty host" else Ok (endpoint h port)
        | Some _ -> Error "Source_key.of_string: port out of range"
        | None -> Ok (host s))

let equal a b =
  match (a, b) with
  | Host x, Host y -> String.equal x y
  | Endpoint (x, px), Endpoint (y, py) -> px = py && String.equal x y
  | _ -> false

let compare a b =
  match (a, b) with
  | Host x, Host y -> String.compare x y
  | Host _, Endpoint _ -> -1
  | Endpoint _, Host _ -> 1
  | Endpoint (x, px), Endpoint (y, py) ->
      let c = String.compare x y in
      if c <> 0 then c else Stdlib.compare px py

let pp ppf k = Format.pp_print_string ppf (to_string k)
