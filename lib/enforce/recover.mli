(** Crash recovery with enforcement: {!Vids.Recovery.recover_files}
    plus the three hooks that restore prevention mode.

    The ordering burden lives here so callers cannot get it wrong:

    + the snapshot's [enforce] extension payload is stashed before any
      restore work ([on_snapshot]);
    + the enforcer is created and its table restored inside [prepare] —
      before the journal merge and the replay scheduling, so the gate
      exists (with the checkpoint's rules and token-bucket levels) when
      the first replayed packet arrives;
    + journaled enforcement decisions are {e scheduled} at their recorded
      times ([on_ext], after replay scheduling) so replayed packets from
      before each decision still see the pre-decision table;
    + replay is routed through {!Enforcer.ingest} ([inject]) so packets
      the gate dropped live are dropped again instead of reaching the
      engine.

    The convergence property (checked by [bench/prevent] and the qcheck
    properties): the recovered engine digest {e and} the recovered
    enforcement digest equal those of a run that never crashed. *)

val recover_files :
  ?config:Vids.Config.t ->
  ?policy:Enforcer.policy ->
  ?journal:(Vids.Journal.entry -> unit) ->
  ?journal_path:string ->
  ?trace_path:string ->
  ?until:Dsim.Time.t ->
  snapshot_path:string ->
  unit ->
  (Vids.Recovery.file_report * Enforcer.t, string) result
(** [journal] is handed to {!Enforcer.create} so decisions taken {e after}
    recovery are journaled again (pass the daemon's writer).  A corrupt
    enforcement payload follows the policy's fail-open/fail-closed knob
    (see {!Enforcer.restore}) — it never fails the recovery itself. *)
