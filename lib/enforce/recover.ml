(* Enforcement-aware recovery.  See recover.mli for the ordering
   contract each hook discharges. *)

let recover_files ?config ?policy ?journal ?journal_path ?trace_path ?until ~snapshot_path () =
  let enforcer = ref None in
  let stash = ref None in
  let on_snapshot snap = stash := List.assoc_opt Enforcer.ext_tag (Vids.Snapshot.ext snap) in
  let prepare sched engine =
    let e = Enforcer.create ?policy ?journal sched engine in
    (match !stash with
    | None -> ()
    | Some payload ->
        (* The error path is already policy: a fail-closed enforcer locked
           itself down inside [restore]; fail-open starts empty. *)
        (match Enforcer.restore e ~payload with Ok () -> () | Error _ -> ()));
    enforcer := Some e
  in
  let on_ext ~at ~tag ~payload =
    if String.equal tag Enforcer.ext_tag then
      match !enforcer with Some e -> Enforcer.apply_journal e ~at ~payload | None -> ()
  in
  let inject pkt = match !enforcer with Some e -> ignore (Enforcer.ingest e pkt) | None -> () in
  match
    Vids.Recovery.recover_files ?config ~prepare ~on_snapshot ~on_ext ~inject ?journal_path
      ?trace_path ?until ~snapshot_path ()
  with
  | Error e -> Error e
  | Ok report -> (
      match !enforcer with
      | Some e -> Ok (report, e)
      | None -> Error "enforcement recovery: prepare hook never ran")
