(** Canonical traffic-source identity shared by the enforcement block
    table and the ingest quarantine.

    Both subsystems key per-source state on attacker-controlled addresses;
    using one normalization (lowercased host, explicit host-only vs
    host:port distinction) guarantees that a source quarantined at the
    parse boundary and the same source blocked by an alert-driven rule
    agree on identity — and that neither can be split into two records by
    case games in a hostname. *)

type t =
  | Host of string  (** Every port on the host — signaling-level blocks. *)
  | Endpoint of string * int  (** One UDP endpoint — media-level blocks. *)

val host : string -> t
(** Normalizes (lowercases) the host. *)

val endpoint : string -> int -> t

val of_addr : Dsim.Addr.t -> t
(** The endpoint key for a datagram's source address. *)

val host_of_addr : Dsim.Addr.t -> t

val to_string : t -> string
(** [host] or [host:port]; {!of_string} inverts it. *)

val of_string : string -> (t, string) result
(** Total: a malformed port comes back as [Error].  A trailing [:]
    segment that parses as an integer makes an [Endpoint]; anything else
    is a [Host] (hosts here are simulation labels, not IPv6 literals). *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
