(** Prevention mode: the policy layer that turns alerts into enforcement.

    Subscribes to the engine's distinct-alert stream and reacts per kind:

    - [Invite_flood] → drop the flooding source host.
    - [Media_spam] → drop the spamming media endpoint.
    - [Rtp_flood] → rate-limit the flooding media endpoint.
    - [Call_hijack], [Cancel_dos], [Registration_hijack] → tear the
      victim call down {e and} drop the attacking source host.
    - [Bye_dos], [Billing_fraud] → tear the call down only: the packet
      being analyzed when these fire can come from the {e legitimate}
      party (a replayed/spoofed BYE names real participants), so blocking
      its source would punish the victim.
    - [Drdos] → rate-limit all traffic toward the victim host, with
      {e escalation}: any source that trips the limiter earns its own
      drop rule; the reflector source of the triggering packet is dropped
      outright.
    - Health alerts ([Engine_fault], [Resource_pressure],
      [Spec_deviation]) → never enforced on: they describe the engine,
      not an attacker, and acting on them would let a fault turn into an
      outage.

    Attribution uses the packet under analysis: alerts fire synchronously
    inside {!Vids.Engine.process_packet}, so the gate records the current
    packet before injecting and the listener reads its source — the
    attacker-controlled address that tripped the machine.

    Fault tolerance is the other half of the contract: every install,
    teardown and lockdown transition is journaled ({!Vids.Journal.Ext},
    tag {!ext_tag}) and the full table (including token-bucket levels)
    rides in each snapshot, so a [kill -9] recovers into the same
    enforcement state — see {!Recover}. *)

type policy = {
  block_ttl : Dsim.Time.t;  (** Rule lifetime; refreshes extend it. *)
  rate_pps : int;  (** Sustained packets/second for rate-limit rules. *)
  rate_burst : int;
  fail_closed : bool;
      (** What enforcement does when it cannot do its job: [true] locks
          the gate down (drop everything) on rule-table overflow or a
          corrupt recovery payload; [false] (default) fails open —
          detection continues, enforcement degrades. *)
  max_rules : int;
}

val default_policy : policy
(** 60 s TTL, 50 pps / burst 100, fail-open, 4096 rules. *)

type t

val ext_tag : string
(** ["enforce"] — the snapshot-extension and journal-extension tag. *)

val create :
  ?policy:policy ->
  ?journal:(Vids.Journal.entry -> unit) ->
  Dsim.Scheduler.t ->
  Vids.Engine.t ->
  t
(** Attaches the alert listener.  [journal] receives an [Ext] entry for
    every enforcement decision (installs, teardowns, lockdown) —
    write-ahead, exactly like alerts. *)

val policy : t -> policy

val table : t -> Block_table.t

val engine : t -> Vids.Engine.t

val ingest : t -> Dsim.Packet.t -> bool
(** The gated tap: decides, then delivers to the engine only on [Pass].
    Returns whether the packet was delivered.  This is the {e only} entry
    point prevention mode routes packets through — shaped for
    [Dsim.Network.set_tap] (ignore the result) and for the daemon's
    dispatch loop (count it). *)

type stats = {
  passed : int;
  blocked : int;  (** Packets stopped at the gate (drop + limit + lockdown). *)
  teardowns : int;
  table : Block_table.stats;
}

val stats : t -> stats

val digest : t -> string
(** {!Block_table.digest} at the current virtual time. *)

val rules_text : t -> string
(** {!Block_table.to_text} at the current virtual time. *)

val rules_json : t -> string

(** {1 Crash safety} *)

val snapshot_payload : t -> string
(** The table serialized at the current virtual time; store it as the
    {!ext_tag} extension of the checkpoint ([Snapshot.capture ~ext]). *)

val restore : t -> payload:string -> (unit, string) result
(** Replaces the table from a snapshot payload.  Under a [fail_closed]
    policy a corrupt payload locks the gate down (and still returns the
    [Error]); fail-open starts empty. *)

val apply_journal : t -> at:Dsim.Time.t -> payload:string -> unit
(** Re-applies one journaled decision by {e scheduling} it at its
    recorded time rather than applying it immediately: replayed packets
    from before the decision must still see the pre-decision table, and
    same-instant ties go to the packet (scheduled first), exactly as live
    — where the packet that triggered the alert had already passed the
    gate when the rule landed.  Call between replay scheduling and the
    scheduler run, i.e. from [Recovery.recover]'s [on_ext].  Malformed
    payloads are counted as faults and skipped, never raised. *)
