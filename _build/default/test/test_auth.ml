(* Tests for digest-style authentication: the mechanism, the registrar
   challenge flow, and the prevention-vs-detection contrast with the
   registration-hijack attack. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let tc name f = Alcotest.test_case name `Quick f

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

module T = Voip.Testbed

let sec = Dsim.Time.of_sec

(* ------------------------------------------------------------------ *)
(* Mechanism                                                           *)
(* ------------------------------------------------------------------ *)

let challenge_roundtrip () =
  let c = { Sip.Auth.realm = "b.example"; nonce = "abc123" } in
  let parsed = ok (Sip.Auth.parse_challenge (Sip.Auth.challenge_header c)) in
  check "roundtrip" true (parsed = c);
  check "rejects junk" true (Result.is_error (Sip.Auth.parse_challenge "Basic foo"));
  check "missing nonce" true
    (Result.is_error (Sip.Auth.parse_challenge "Digest realm=\"x\""))

let register_msg ?(headers = []) ~cseq () =
  Sip.Msg.request ~meth:Sip.Msg_method.REGISTER
    ~uri:(Sip.Uri.make "b.example")
    ~via:(Sip.Via.make ~port:5060 ~branch:"z9hG4bKreg" "10.2.0.10")
    ~from_:(Sip.Name_addr.make ~params:[ ("tag", Some "t") ] (ok (Sip.Uri.parse "sip:b1@b.example")))
    ~to_:(Sip.Name_addr.make (ok (Sip.Uri.parse "sip:b1@b.example")))
    ~call_id:"c-auth"
    ~cseq:(Sip.Cseq.make cseq Sip.Msg_method.REGISTER)
    ~contact:(Sip.Name_addr.make (ok (Sip.Uri.parse "sip:b1@10.2.0.10:5060")))
    ~headers ()

let verify_accepts_valid () =
  let challenge = { Sip.Auth.realm = "b.example"; nonce = "n1" } in
  let authorization =
    Sip.Auth.authorization_header ~username:"b1" ~password:"pw-b1" ~challenge
      ~meth:Sip.Msg_method.REGISTER
      ~uri:(Sip.Uri.make "b.example")
  in
  let msg = register_msg ~headers:[ ("Authorization", authorization) ] ~cseq:2 () in
  let password_of u = if u = "b1" then Some "pw-b1" else None in
  check "valid accepted" true
    (Sip.Auth.verify ~password_of ~realm:"b.example" ~nonce_valid:(String.equal "n1") msg);
  check "stale nonce rejected" false
    (Sip.Auth.verify ~password_of ~realm:"b.example" ~nonce_valid:(String.equal "n2") msg);
  check "wrong realm rejected" false
    (Sip.Auth.verify ~password_of ~realm:"other" ~nonce_valid:(String.equal "n1") msg);
  check "unknown user rejected" false
    (Sip.Auth.verify
       ~password_of:(fun _ -> None)
       ~realm:"b.example" ~nonce_valid:(String.equal "n1") msg)

let verify_rejects_wrong_password () =
  let challenge = { Sip.Auth.realm = "b.example"; nonce = "n1" } in
  let authorization =
    Sip.Auth.authorization_header ~username:"b1" ~password:"guessed" ~challenge
      ~meth:Sip.Msg_method.REGISTER
      ~uri:(Sip.Uri.make "b.example")
  in
  let msg = register_msg ~headers:[ ("Authorization", authorization) ] ~cseq:2 () in
  check "forged response rejected" false
    (Sip.Auth.verify
       ~password_of:(fun _ -> Some "pw-b1")
       ~realm:"b.example" ~nonce_valid:(String.equal "n1") msg);
  check "absent header rejected" false
    (Sip.Auth.verify
       ~password_of:(fun _ -> Some "pw-b1")
       ~realm:"b.example" ~nonce_valid:(String.equal "n1") (register_msg ~cseq:1 ()))

(* ------------------------------------------------------------------ *)
(* End-to-end                                                          *)
(* ------------------------------------------------------------------ *)

let uas_register_through_challenge () =
  (* With auth enabled, legitimate UAs still register (401 then retry) and
     calls work. *)
  let tb = T.make ~seed:51 ~n_ua:2 ~vids:T.Off ~auth:true () in
  T.run_until tb (sec 5.0);
  check "binding present" true
    (Voip.Location.lookup (Voip.Proxy.location tb.T.proxy_b) ~aor:"b1@b.example"
    = Some (Dsim.Addr.v "10.2.0.10" 5060));
  ignore
    (Dsim.Scheduler.schedule_at tb.T.sched (sec 6.0) (fun () ->
         Voip.Ua.call (List.hd tb.T.uas_a)
           ~callee:(Voip.Ua.aor (List.hd tb.T.uas_b))
           ~duration:(sec 5.0)));
  T.run_until tb (sec 40.0);
  check_int "call completes under auth" 1 (Voip.Metrics.completed tb.T.metrics)

let hijack_prevented_by_auth () =
  (* The same registration-hijack attack that succeeds without auth
     (test_extensions) is refused by the challenged registrar — while vIDS
     still reports the attempt. *)
  let tb = T.make ~seed:52 ~n_ua:2 ~vids:T.Monitor ~auth:true () in
  T.run_until tb (sec 5.0);
  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  Attack.Scenarios.register_hijack atk ~victim:(List.hd tb.T.uas_b) ~at:(sec 6.0);
  T.run_until tb (sec 15.0);
  check "binding unchanged" true
    (Voip.Location.lookup (Voip.Proxy.location tb.T.proxy_b) ~aor:"b1@b.example"
    = Some (Dsim.Addr.v "10.2.0.10" 5060));
  check_int "attempt still reported by vIDS" 1
    (List.length
       (Vids.Engine.alerts_of_kind (T.engine_exn tb) Vids.Alert.Registration_hijack))

let suite =
  [
    ( "sip.auth",
      [
        tc "challenge roundtrip" challenge_roundtrip;
        tc "verify accepts valid" verify_accepts_valid;
        tc "verify rejects forgery" verify_rejects_wrong_password;
        tc "UA registers through 401" uas_register_through_challenge;
        tc "hijack prevented by auth" hijack_prevented_by_auth;
      ] );
  ]
