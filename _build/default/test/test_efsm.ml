(* Unit tests for the EFSM formal model (paper §4). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let tc name f = Alcotest.test_case name `Quick f

module M = Efsm.Machine
module E = Efsm.Event
module V = Efsm.Value
module Env = Efsm.Env

let ev ?(args = []) ?(at = 0) name = E.make ~args (E.Data "TEST") ~at name
let tr = M.transition

(* ------------------------------------------------------------------ *)
(* Values and environments                                             *)
(* ------------------------------------------------------------------ *)

let value_equality () =
  check "int" true (V.equal (V.Int 1) (V.Int 1));
  check "cross-type" false (V.equal (V.Int 1) (V.Str "1"));
  check "addr" true (V.equal (V.Addr ("h", 1)) (V.Addr ("h", 1)));
  check "unset" true (V.equal V.Unset V.Unset);
  check "compare total" true (V.compare (V.Int 1) (V.Str "a") <> 0)

let value_coercions () =
  check_int "as_int" 5 (V.as_int (V.Int 5));
  check_str "as_str" "x" (V.as_str (V.Str "x"));
  check "as_float from int" true (V.as_float (V.Int 2) = 2.0);
  check "type error" true
    (try
       ignore (V.as_int (V.Str "no"));
       false
     with V.Type_error _ -> true)

let env_scopes () =
  let g = Env.globals () in
  let e1 = Env.create g and e2 = Env.create g in
  Env.set e1 Env.Local "x" (V.Int 1);
  Env.set e1 Env.Global "shared" (V.Str "both");
  check "local not visible to peer" true (Env.get e2 Env.Local "x" = V.Unset);
  check "global visible to peer" true (Env.get e2 Env.Global "shared" = V.Str "both");
  check "unset default" true (Env.get e1 Env.Local "nope" = V.Unset);
  check "mem" true (Env.mem e1 Env.Local "x");
  check "bindings sorted" true (List.map fst (Env.local_bindings e1) = [ "x" ])

let env_bytes () =
  let g = Env.globals () in
  let e = Env.create g in
  Env.set e Env.Local "tag" (V.Str "abcdef");
  check "estimate counts names+values" true (Env.estimated_bytes e >= 9)

(* ------------------------------------------------------------------ *)
(* Machine stepping                                                    *)
(* ------------------------------------------------------------------ *)

let toy_spec =
  {
    M.spec_name = "toy";
    initial = "A";
    finals = [ "C" ];
    attack_states = [ ("X", "boom") ];
    transitions =
      [
        tr ~label:"a_to_b" ~from_state:"A" (M.On_event "go") ~to_state:"B"
          ~action:(fun env e ->
            Env.set env Env.Local "n" (E.arg e "n");
            [])
          ();
        tr ~label:"b_self_small" ~from_state:"B" (M.On_event "go") ~to_state:"B"
          ~guard:(fun _ e -> E.arg_int e "n" <= 10)
          ();
        tr ~label:"b_attack_big" ~from_state:"B" (M.On_event "go") ~to_state:"X"
          ~guard:(fun _ e -> E.arg_int e "n" > 10)
          ();
        tr ~label:"b_done" ~from_state:"B" (M.On_event "done") ~to_state:"C" ();
      ];
  }

let machine_moves () =
  let m = M.instantiate toy_spec ~globals:(Env.globals ()) in
  check_str "initial" "A" (M.state m);
  (match M.step m (ev ~args:[ ("n", V.Int 3) ] "go") with
  | M.Moved { transition; attack; _ } ->
      check_str "label" "a_to_b" transition.M.label;
      check "no attack" true (attack = None)
  | _ -> Alcotest.fail "expected move");
  check_str "in B" "B" (M.state m);
  check "var stored" true (Env.get (M.env m) Env.Local "n" = V.Int 3)

let machine_guards_select () =
  let m = M.instantiate toy_spec ~globals:(Env.globals ()) in
  ignore (M.step m (ev ~args:[ ("n", V.Int 1) ] "go"));
  (match M.step m (ev ~args:[ ("n", V.Int 99) ] "go") with
  | M.Moved { attack = Some detail; _ } -> check_str "attack detail" "boom" detail
  | _ -> Alcotest.fail "expected attack entry");
  check "in attack state" true (M.in_attack_state m = Some "boom")

let machine_rejects () =
  let m = M.instantiate toy_spec ~globals:(Env.globals ()) in
  (match M.step m (ev "unknown") with
  | M.Rejected -> ()
  | _ -> Alcotest.fail "expected rejection");
  check_str "state unchanged" "A" (M.state m)

let machine_final () =
  let m = M.instantiate toy_spec ~globals:(Env.globals ()) in
  ignore (M.step m (ev ~args:[ ("n", V.Int 1) ] "go"));
  ignore (M.step m (ev "done"));
  check "final" true (M.is_final m);
  check_int "trace length" 2 (List.length (M.trace m));
  let state, _vars = M.configuration m in
  check_str "configuration state" "C" state

let machine_guard_type_error_is_false () =
  let m = M.instantiate toy_spec ~globals:(Env.globals ()) in
  ignore (M.step m (ev ~args:[ ("n", V.Int 1) ] "go"));
  (* "go" without an int n: both guards raise Type_error -> no transition. *)
  match M.step m (ev ~args:[ ("n", V.Str "oops") ] "go") with
  | M.Rejected -> ()
  | _ -> Alcotest.fail "expected rejection on type error"

let nondeterminism_detected () =
  let bad =
    {
      M.spec_name = "bad";
      initial = "A";
      finals = [];
      attack_states = [];
      transitions =
        [
          tr ~label:"t1" ~from_state:"A" (M.On_event "e") ~to_state:"B" ();
          tr ~label:"t2" ~from_state:"A" (M.On_event "e") ~to_state:"C" ();
        ];
    }
  in
  let m = M.instantiate bad ~globals:(Env.globals ()) in
  match M.step m (ev "e") with
  | M.Nondeterministic labels ->
      Alcotest.(check (list string)) "labels" [ "t1"; "t2" ] (List.sort String.compare labels)
  | _ -> Alcotest.fail "expected nondeterminism report"

let spec_validation () =
  check "toy valid" true (Result.is_ok (M.validate_spec toy_spec));
  let dup = { toy_spec with M.transitions = toy_spec.M.transitions @ toy_spec.M.transitions } in
  check "duplicate labels rejected" true (Result.is_error (M.validate_spec dup));
  let orphan = { toy_spec with M.initial = "Z" } in
  check "dead initial rejected" true (Result.is_error (M.validate_spec orphan))

let spec_states () =
  Alcotest.(check (list string)) "states" [ "A"; "B"; "C"; "X" ] (M.states toy_spec)

let trigger_kinds () =
  let spec =
    {
      M.spec_name = "trig";
      initial = "S";
      finals = [];
      attack_states = [];
      transitions =
        [
          tr ~label:"by_chan" ~from_state:"S" (M.On_channel "RTP") ~to_state:"S" ();
          tr ~label:"by_sync" ~from_state:"S" (M.On_sync "delta") ~to_state:"S" ();
          tr ~label:"by_timer" ~from_state:"S" (M.On_timer "t1") ~to_state:"S" ();
        ];
    }
  in
  let m = M.instantiate spec ~globals:(Env.globals ()) in
  let step_label e =
    match M.step m e with
    | M.Moved { transition; _ } -> transition.M.label
    | _ -> "rejected"
  in
  check_str "channel matches any name" "by_chan"
    (step_label (E.make (E.Data "RTP") ~at:0 "anything"));
  check_str "sync" "by_sync"
    (step_label (E.make (E.Sync { from_machine = "SIP" }) ~at:0 "delta"));
  check_str "timer" "by_timer" (step_label (E.make E.Timer ~at:0 "t1"));
  check_str "wrong channel rejected" "rejected"
    (step_label (E.make (E.Data "SIP") ~at:0 "anything"));
  check_str "wrong timer rejected" "rejected" (step_label (E.make E.Timer ~at:0 "t2"))

(* ------------------------------------------------------------------ *)
(* Communicating systems                                               *)
(* ------------------------------------------------------------------ *)

(* Machine P forwards each "ping" to Q as sync "delta"; Q counts them. *)
let ping_spec =
  {
    M.spec_name = "P";
    initial = "S";
    finals = [];
    attack_states = [];
    transitions =
      [
        tr ~label:"fwd" ~from_state:"S" (M.On_event "ping") ~to_state:"S"
          ~action:(fun _ e ->
            [ M.Send_sync { target = "Q"; event_name = "delta"; args = e.E.args } ])
          ();
      ];
  }

let pong_spec =
  {
    M.spec_name = "Q";
    initial = "S";
    finals = [];
    attack_states = [ ("X", "threshold") ];
    transitions =
      [
        tr ~label:"recv" ~from_state:"S" (M.On_sync "delta") ~to_state:"S"
          ~guard:(fun env _ ->
            (match Env.get env Env.Local "count" with V.Int n -> n | _ -> 0) < 2)
          ~action:(fun env _ ->
            let n = match Env.get env Env.Local "count" with V.Int n -> n | _ -> 0 in
            Env.set env Env.Local "count" (V.Int (n + 1));
            [])
          ();
        tr ~label:"boom" ~from_state:"S" (M.On_sync "delta") ~to_state:"X"
          ~guard:(fun env _ ->
            (match Env.get env Env.Local "count" with V.Int n -> n | _ -> 0) >= 2)
          ();
      ];
  }

let make_system () =
  let sched = Dsim.Scheduler.create () in
  let alerts = ref [] and anomalies = ref [] in
  let sys =
    Efsm.System.create
      ~on_alert:(fun n -> alerts := n :: !alerts)
      ~on_anomaly:(fun n -> anomalies := n :: !anomalies)
      (Efsm.System.timer_host_of_scheduler sched)
  in
  (sched, sys, alerts, anomalies)

let system_sync_delivery () =
  let _sched, sys, alerts, _ = make_system () in
  ignore (Efsm.System.add_machine sys ping_spec);
  let q = Efsm.System.add_machine sys pong_spec in
  Efsm.System.inject sys ~machine:"P" (ev "ping");
  Efsm.System.inject sys ~machine:"P" (ev "ping");
  check "no alert yet" true (!alerts = []);
  check "count 2" true (Env.get (M.env q) Env.Local "count" = V.Int 2);
  Efsm.System.inject sys ~machine:"P" (ev "ping");
  check_int "alert raised" 1 (List.length !alerts);
  check_str "attack machine" "Q" (List.hd !alerts).Efsm.System.machine;
  check_int "sync queues drained" 0 (Efsm.System.queued_sync sys)

let system_anomaly_on_rejected_data () =
  let _sched, sys, _, anomalies = make_system () in
  ignore (Efsm.System.add_machine sys ping_spec);
  ignore (Efsm.System.add_machine sys pong_spec);
  Efsm.System.inject sys ~machine:"P" (ev "garbage");
  check_int "anomaly" 1 (List.length !anomalies)

let system_sync_rejection_silent () =
  let _sched, sys, _, anomalies = make_system () in
  ignore (Efsm.System.add_machine sys ping_spec);
  (* No machine Q: sync goes to an unknown machine -> anomaly is reported
     for the missing machine, not silently lost. *)
  Efsm.System.inject sys ~machine:"P" (ev "ping");
  check_int "missing machine reported" 1 (List.length !anomalies)

let timer_spec =
  {
    M.spec_name = "T";
    initial = "S";
    finals = [];
    attack_states = [ ("LATE", "timer fired") ];
    transitions =
      [
        tr ~label:"arm" ~from_state:"S" (M.On_event "arm") ~to_state:"WAIT"
          ~action:(fun _ _ -> [ M.Set_timer { id = "t"; delay = Dsim.Time.of_ms 100.0 } ])
          ();
        tr ~label:"disarm" ~from_state:"WAIT" (M.On_event "disarm") ~to_state:"S"
          ~action:(fun _ _ -> [ M.Cancel_timer "t" ])
          ();
        tr ~label:"fire" ~from_state:"WAIT" (M.On_timer "t") ~to_state:"LATE" ();
      ];
  }

let system_timer_fires () =
  let sched, sys, alerts, _ = make_system () in
  ignore (Efsm.System.add_machine sys timer_spec);
  Efsm.System.inject sys ~machine:"T" (ev "arm");
  Dsim.Scheduler.run_until sched (Dsim.Time.of_ms 50.0);
  check "not yet" true (!alerts = []);
  Dsim.Scheduler.run_until sched (Dsim.Time.of_ms 200.0);
  check_int "fired" 1 (List.length !alerts)

let system_timer_cancelled () =
  let sched, sys, alerts, _ = make_system () in
  let m = Efsm.System.add_machine sys timer_spec in
  Efsm.System.inject sys ~machine:"T" (ev "arm");
  Efsm.System.inject sys ~machine:"T" (ev "disarm");
  Dsim.Scheduler.run_until sched (Dsim.Time.of_ms 500.0);
  check "no alert" true (!alerts = []);
  check_str "back to S" "S" (M.state m)

let system_release_cancels_timers () =
  let sched, sys, alerts, _ = make_system () in
  ignore (Efsm.System.add_machine sys timer_spec);
  Efsm.System.inject sys ~machine:"T" (ev "arm");
  Efsm.System.release sys;
  Dsim.Scheduler.run_until sched (Dsim.Time.of_ms 500.0);
  check "released timers do not fire" true (!alerts = [])

let system_duplicate_machine () =
  let _sched, sys, _, _ = make_system () in
  ignore (Efsm.System.add_machine sys ping_spec);
  check "duplicate rejected" true
    (try
       ignore (Efsm.System.add_machine sys ping_spec);
       false
     with Invalid_argument _ -> true)

let dot_export () =
  let dot = Efsm.Dot.of_spec toy_spec in
  check "mentions digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  check "attack styled" true (contains "doubleoctagon" dot);
  check "edges present" true (contains "\"A\" -> \"B\"" dot);
  check "final styled" true (contains "doublecircle" dot)

let suite =
  [
    ( "efsm.value+env",
      [
        tc "value equality" value_equality;
        tc "value coercions" value_coercions;
        tc "env scopes" env_scopes;
        tc "env bytes" env_bytes;
      ] );
    ( "efsm.machine",
      [
        tc "moves" machine_moves;
        tc "guards select" machine_guards_select;
        tc "rejects" machine_rejects;
        tc "final + trace + configuration" machine_final;
        tc "guard type error = false" machine_guard_type_error_is_false;
        tc "nondeterminism detected" nondeterminism_detected;
        tc "spec validation" spec_validation;
        tc "spec states" spec_states;
        tc "trigger kinds" trigger_kinds;
      ] );
    ( "efsm.system",
      [
        tc "sync delivery + priority" system_sync_delivery;
        tc "anomaly on rejected data" system_anomaly_on_rejected_data;
        tc "missing machine reported" system_sync_rejection_silent;
        tc "timer fires" system_timer_fires;
        tc "timer cancelled" system_timer_cancelled;
        tc "release cancels timers" system_release_cancels_timers;
        tc "duplicate machine rejected" system_duplicate_machine;
        tc "dot export" dot_export;
      ] );
  ]
