(* Unit tests for the SDP and RTP substrates. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let tc name f = Alcotest.test_case name `Quick f

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

(* ------------------------------------------------------------------ *)
(* SDP                                                                 *)
(* ------------------------------------------------------------------ *)

let sample_sdp =
  "v=0\r\n\
   o=alice 0 0 IN IP4 10.1.0.10\r\n\
   s=-\r\n\
   c=IN IP4 10.1.0.10\r\n\
   t=0 0\r\n\
   m=audio 16384 RTP/AVP 18 0\r\n\
   a=rtpmap:18 G729/8000\r\n\
   a=rtpmap:0 PCMU/8000\r\n"

let sdp_parse () =
  let d = ok (Sdp.parse sample_sdp) in
  check_int "version" 0 d.Sdp.version;
  check "connection" true (d.Sdp.connection = Some "10.1.0.10");
  check_int "one media" 1 (List.length d.Sdp.media);
  let m = List.hd d.Sdp.media in
  check_str "type" "audio" m.Sdp.media_type;
  check_int "port" 16384 m.Sdp.port;
  Alcotest.(check (list int)) "formats" [ 18; 0 ] m.Sdp.formats;
  check_int "attributes" 2 (List.length m.Sdp.attributes)

let sdp_roundtrip () =
  let d = ok (Sdp.parse sample_sdp) in
  let d2 = ok (Sdp.parse (Sdp.to_string d)) in
  check "media equal" true (d.Sdp.media = d2.Sdp.media);
  check "connection equal" true (d.Sdp.connection = d2.Sdp.connection)

let sdp_make () =
  let d =
    Sdp.make ~origin_user:"bob" ~origin_host:"10.2.0.10" ~connection:"10.2.0.10"
      ~media:[ Sdp.audio_media ~port:20000 ~formats:[ 18 ] ]
      ()
  in
  let m = Option.get (Sdp.first_audio d) in
  check "addr" true (Sdp.media_addr d m = Some ("10.2.0.10", 20000));
  (* audio_media fills rtpmap attributes for known payload types *)
  check "rtpmap generated" true
    (List.exists (fun (n, v) -> n = "rtpmap" && v = Some "18 G729/8000") m.Sdp.attributes)

let sdp_multiple_media () =
  let text =
    "v=0\r\no=x 0 0 IN IP4 h\r\ns=-\r\nc=IN IP4 h\r\nt=0 0\r\n\
     m=audio 100 RTP/AVP 0\r\nm=video 200 RTP/AVP 96\r\na=x\r\n"
  in
  let d = ok (Sdp.parse text) in
  check_int "two blocks" 2 (List.length d.Sdp.media);
  let audio = Option.get (Sdp.first_audio d) in
  check_int "audio port" 100 audio.Sdp.port;
  let video = List.nth d.Sdp.media 1 in
  check_str "video" "video" video.Sdp.media_type;
  check_int "video attr" 1 (List.length video.Sdp.attributes)

let sdp_errors () =
  check "garbage line" true (Result.is_error (Sdp.parse "v=0\r\nnonsense\r\n"));
  check "bad media port" true
    (Result.is_error (Sdp.parse "v=0\r\nm=audio xx RTP/AVP 0\r\n"));
  check "unknown type char" true (Result.is_error (Sdp.parse "q=huh\r\n"))

let sdp_tolerated_lines () =
  let text = "v=0\r\no=x 0 0 IN IP4 h\r\ns=-\r\nb=AS:64\r\ni=info\r\nt=0 0\r\n" in
  check "b=/i= ignored" true (Result.is_ok (Sdp.parse text))

let payload_registry () =
  check "g729 is 18" true (Sdp.Payload_type.g729.Sdp.Payload_type.number = 18);
  check "find 0" true (Sdp.Payload_type.find 0 = Some Sdp.Payload_type.pcmu);
  check "find unknown" true (Sdp.Payload_type.find 77 = None);
  check_str "rtpmap" "18 G729/8000" (Sdp.Payload_type.rtpmap Sdp.Payload_type.g729)

(* ------------------------------------------------------------------ *)
(* RTP packet codec                                                    *)
(* ------------------------------------------------------------------ *)

let rtp_roundtrip () =
  let p =
    Rtp.Rtp_packet.make ~marker:true ~payload_type:18 ~sequence:4660 ~timestamp:305419896l
      ~ssrc:0x1234ABCDl "hello-rtp"
  in
  let decoded = ok (Rtp.Rtp_packet.decode (Rtp.Rtp_packet.encode p)) in
  check_int "version" 2 decoded.Rtp.Rtp_packet.version;
  check "marker" true decoded.Rtp.Rtp_packet.marker;
  check_int "pt" 18 decoded.Rtp.Rtp_packet.payload_type;
  check_int "seq" 4660 decoded.Rtp.Rtp_packet.sequence;
  check "ts" true (Int32.equal decoded.Rtp.Rtp_packet.timestamp 305419896l);
  check "ssrc" true (Int32.equal decoded.Rtp.Rtp_packet.ssrc 0x1234ABCDl);
  check_str "payload" "hello-rtp" decoded.Rtp.Rtp_packet.payload

let rtp_header_is_12_bytes () =
  let p = Rtp.Rtp_packet.make ~payload_type:0 ~sequence:0 ~timestamp:0l ~ssrc:1l "" in
  check_int "wire size" 12 (String.length (Rtp.Rtp_packet.encode p));
  check_int "header_size" 12 (Rtp.Rtp_packet.header_size p)

let rtp_seq_wraps () =
  let p = Rtp.Rtp_packet.make ~payload_type:0 ~sequence:0x1FFFF ~timestamp:0l ~ssrc:1l "" in
  check_int "masked" 0xFFFF p.Rtp.Rtp_packet.sequence

let rtp_decode_errors () =
  check "short" true (Result.is_error (Rtp.Rtp_packet.decode "abc"));
  let bad_version = String.make 12 '\x00' in
  check "version" true (Result.is_error (Rtp.Rtp_packet.decode bad_version));
  (* CC=3 but no CSRC words present. *)
  let truncated_csrc = "\x83" ^ String.make 11 '\x00' in
  check "truncated csrc" true (Result.is_error (Rtp.Rtp_packet.decode truncated_csrc))

let rtp_decode_padding () =
  let p = Rtp.Rtp_packet.make ~payload_type:0 ~sequence:1 ~timestamp:0l ~ssrc:1l "abcd" in
  let raw = Rtp.Rtp_packet.encode p in
  (* Set the padding bit and append 3 pad bytes ending in count 3. *)
  let padded = Bytes.of_string (raw ^ "\x00\x00\x03") in
  Bytes.set padded 0 (Char.chr (Char.code (Bytes.get padded 0) lor 0x20));
  let decoded = ok (Rtp.Rtp_packet.decode (Bytes.to_string padded)) in
  check_str "payload without padding" "abcd" decoded.Rtp.Rtp_packet.payload;
  check "padding flag" true decoded.Rtp.Rtp_packet.padding

let seq_arithmetic () =
  check_int "forward" 1 (Rtp.Rtp_packet.seq_delta 10 11);
  check_int "backward" (-1) (Rtp.Rtp_packet.seq_delta 11 10);
  check_int "wrap forward" 2 (Rtp.Rtp_packet.seq_delta 0xFFFF 1);
  check_int "wrap backward" (-2) (Rtp.Rtp_packet.seq_delta 1 0xFFFF);
  check "lt across wrap" true (Rtp.Rtp_packet.seq_lt 0xFFFF 1);
  check "not lt" false (Rtp.Rtp_packet.seq_lt 1 0xFFFF)

let ts_arithmetic () =
  check_int "forward" 160 (Rtp.Rtp_packet.ts_delta 0l 160l);
  check_int "wraps" 416 (Rtp.Rtp_packet.ts_delta 0xFFFFFF60l 0x100l)

(* ------------------------------------------------------------------ *)
(* Codec models                                                        *)
(* ------------------------------------------------------------------ *)

let codec_g729 () =
  let c = Rtp.Codec.g729 in
  check_int "20ms interval" (Dsim.Time.of_ms 20.0) (Rtp.Codec.packet_interval c);
  check_int "160 ticks" 160 (Rtp.Codec.timestamp_increment c);
  check_int "20 bytes payload" 20 (Rtp.Codec.payload_size c);
  check "lookup" true (Rtp.Codec.of_payload_type 18 = Some c)

let codec_g711 () =
  let c = Rtp.Codec.g711u in
  check_int "160 bytes" 160 (Rtp.Codec.payload_size c);
  check_int "160 ticks" 160 (Rtp.Codec.timestamp_increment c)

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

let sender_advances () =
  let s = Rtp.Session.Sender.create ~ssrc:7l ~codec:Rtp.Codec.g729 ~initial_seq:0xFFFE ~initial_ts:100l in
  let p1 = Rtp.Session.Sender.next_packet s in
  let p2 = Rtp.Session.Sender.next_packet s in
  let p3 = Rtp.Session.Sender.next_packet s in
  check "marker on first" true p1.Rtp.Rtp_packet.marker;
  check "no marker later" false p2.Rtp.Rtp_packet.marker;
  check_int "seq wraps" 0xFFFF p2.Rtp.Rtp_packet.sequence;
  check_int "seq wraps to 0" 0 p3.Rtp.Rtp_packet.sequence;
  check "ts advances" true (Int32.equal p2.Rtp.Rtp_packet.timestamp 260l);
  check_int "sent" 3 (Rtp.Session.Sender.packets_sent s)

let receiver_counts_loss () =
  let r = Rtp.Session.Receiver.create ~clock_rate:8000 in
  let packet seq ts =
    Rtp.Rtp_packet.make ~payload_type:18 ~sequence:seq ~timestamp:(Int32.of_int ts) ~ssrc:7l "x"
  in
  Rtp.Session.Receiver.observe r ~arrival:0 (packet 100 0);
  Rtp.Session.Receiver.observe r ~arrival:(Dsim.Time.of_ms 20.0) (packet 101 160);
  (* seq 102 lost *)
  Rtp.Session.Receiver.observe r ~arrival:(Dsim.Time.of_ms 60.0) (packet 103 480);
  check_int "received" 3 (Rtp.Session.Receiver.packets_received r);
  check_int "lost" 1 (Rtp.Session.Receiver.lost r);
  check "highest" true (Rtp.Session.Receiver.highest_seq r = Some 103)

let receiver_out_of_order () =
  let r = Rtp.Session.Receiver.create ~clock_rate:8000 in
  let packet seq =
    Rtp.Rtp_packet.make ~payload_type:18 ~sequence:seq ~timestamp:0l ~ssrc:7l "x"
  in
  Rtp.Session.Receiver.observe r ~arrival:0 (packet 10);
  Rtp.Session.Receiver.observe r ~arrival:10 (packet 12);
  Rtp.Session.Receiver.observe r ~arrival:20 (packet 11);
  check_int "out of order" 1 (Rtp.Session.Receiver.out_of_order r);
  check_int "no loss once the straggler arrives" 0 (Rtp.Session.Receiver.lost r)

(* ------------------------------------------------------------------ *)
(* Jitter                                                              *)
(* ------------------------------------------------------------------ *)

let jitter_zero_when_perfect () =
  let j = Rtp.Jitter.create ~clock_rate:8000 in
  for i = 0 to 50 do
    Rtp.Jitter.observe j
      ~arrival:(i * Dsim.Time.of_ms 20.0)
      ~rtp_timestamp:(Int32.of_int (160 * i))
  done;
  check "zero jitter" true (Rtp.Jitter.jitter_seconds j < 1e-9);
  check_int "samples" 51 (Rtp.Jitter.samples j)

let jitter_grows_with_variance () =
  let j = Rtp.Jitter.create ~clock_rate:8000 in
  let r = Dsim.Rng.create 11 in
  for i = 0 to 200 do
    let noise = Dsim.Time.of_ms (Dsim.Rng.uniform r 0.0 8.0) in
    Rtp.Jitter.observe j
      ~arrival:(Dsim.Time.add (i * Dsim.Time.of_ms 20.0) noise)
      ~rtp_timestamp:(Int32.of_int (160 * i))
  done;
  let s = Rtp.Jitter.jitter_seconds j in
  check "positive" true (s > 0.0005);
  check "bounded by noise" true (s < 0.008)

(* ------------------------------------------------------------------ *)
(* RTCP                                                                *)
(* ------------------------------------------------------------------ *)

let rtcp_rr_roundtrip () =
  let block =
    {
      Rtp.Rtcp.ssrc = 99l;
      fraction_lost = 12;
      cumulative_lost = 345;
      highest_seq = 1000l;
      jitter = 42l;
    }
  in
  let rr = Rtp.Rtcp.Receiver_report { ssrc = 7l; blocks = [ block ] } in
  match ok (Rtp.Rtcp.decode (Rtp.Rtcp.encode rr)) with
  | Rtp.Rtcp.Receiver_report { ssrc; blocks = [ b ] } ->
      check "ssrc" true (Int32.equal ssrc 7l);
      check_int "fraction" 12 b.Rtp.Rtcp.fraction_lost;
      check_int "cumulative" 345 b.Rtp.Rtcp.cumulative_lost;
      check "jitter" true (Int32.equal b.Rtp.Rtcp.jitter 42l)
  | _ -> Alcotest.fail "wrong shape"

let rtcp_sr_roundtrip () =
  let sr =
    Rtp.Rtcp.Sender_report
      { ssrc = 1l; ntp_sec = 2l; rtp_ts = 3l; packet_count = 4l; octet_count = 5l; blocks = [] }
  in
  match ok (Rtp.Rtcp.decode (Rtp.Rtcp.encode sr)) with
  | Rtp.Rtcp.Sender_report { ssrc; ntp_sec; rtp_ts; packet_count; octet_count; blocks = [] } ->
      check "fields" true
        (ssrc = 1l && ntp_sec = 2l && rtp_ts = 3l && packet_count = 4l && octet_count = 5l)
  | _ -> Alcotest.fail "wrong shape"

let rtcp_errors () =
  check "short" true (Result.is_error (Rtp.Rtcp.decode "ab"));
  check "bad version" true (Result.is_error (Rtp.Rtcp.decode (String.make 8 '\x00')))

(* ------------------------------------------------------------------ *)
(* Playout buffer and MOS                                              *)
(* ------------------------------------------------------------------ *)

let playout_classifies () =
  let p = Rtp.Playout.create ~target_delay:(Dsim.Time.of_ms 60.0) in
  check "on time" true (Rtp.Playout.offer p ~capture:0 ~arrival:(Dsim.Time.of_ms 50.0) = `On_time);
  check "boundary on time" true
    (Rtp.Playout.offer p ~capture:0 ~arrival:(Dsim.Time.of_ms 60.0) = `On_time);
  check "late" true (Rtp.Playout.offer p ~capture:0 ~arrival:(Dsim.Time.of_ms 61.0) = `Late);
  check_int "received" 3 (Rtp.Playout.received p);
  check_int "late count" 1 (Rtp.Playout.late p);
  Alcotest.(check (float 1e-9)) "fraction" (1.0 /. 3.0) (Rtp.Playout.late_fraction p)

let mos_reference_points () =
  (* Low delay, no loss: G.729 tops out near 4.1. *)
  let good = Rtp.Mos.mos ~one_way_delay:0.05 ~loss_fraction:0.0 in
  check "clean call is good" true (good > 4.0);
  check_str "verdict" "good" (Rtp.Mos.verdict good);
  (* The testbed's ~52 ms delay and 0.42% loss stay comfortably good. *)
  let testbed = Rtp.Mos.mos ~one_way_delay:0.052 ~loss_fraction:0.0042 in
  check "testbed good" true (testbed > 3.9);
  (* Heavy delay degrades noticeably. *)
  let laggy = Rtp.Mos.mos ~one_way_delay:0.4 ~loss_fraction:0.0 in
  check "400ms is degraded" true (laggy < 3.6);
  check "verdict bands" true
    (Rtp.Mos.verdict 3.7 = "fair" && Rtp.Mos.verdict 3.2 = "poor" && Rtp.Mos.verdict 2.0 = "bad")

let suite =
  [
    ( "sdp",
      [
        tc "parse" sdp_parse;
        tc "roundtrip" sdp_roundtrip;
        tc "make + audio_media" sdp_make;
        tc "multiple media" sdp_multiple_media;
        tc "errors" sdp_errors;
        tc "tolerated lines" sdp_tolerated_lines;
        tc "payload registry" payload_registry;
      ] );
    ( "rtp.packet",
      [
        tc "roundtrip" rtp_roundtrip;
        tc "12-byte header" rtp_header_is_12_bytes;
        tc "sequence masked" rtp_seq_wraps;
        tc "decode errors" rtp_decode_errors;
        tc "padding" rtp_decode_padding;
        tc "seq arithmetic" seq_arithmetic;
        tc "ts arithmetic" ts_arithmetic;
      ] );
    ( "rtp.codec",
      [ tc "g729 model" codec_g729; tc "g711 model" codec_g711 ] );
    ( "rtp.session",
      [
        tc "sender advances + wraps" sender_advances;
        tc "receiver loss" receiver_counts_loss;
        tc "receiver reorder" receiver_out_of_order;
      ] );
    ( "rtp.jitter",
      [ tc "zero when perfect" jitter_zero_when_perfect; tc "grows with variance" jitter_grows_with_variance ] );
    ( "rtp.quality",
      [ tc "playout classification" playout_classifies; tc "mos reference points" mos_reference_points ] );
    ( "rtp.rtcp",
      [ tc "rr roundtrip" rtcp_rr_roundtrip; tc "sr roundtrip" rtcp_sr_roundtrip; tc "errors" rtcp_errors ] );
  ]
