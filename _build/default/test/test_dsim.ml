(* Unit tests for the discrete-event simulation substrate. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Time                                                                *)
(* ------------------------------------------------------------------ *)

let time_roundtrip () =
  check_float "1.5s" 1.5 (Dsim.Time.to_sec (Dsim.Time.of_sec 1.5));
  check_int "1ms in us" 1000 (Dsim.Time.of_ms 1.0);
  check_int "of_us identity" 123 (Dsim.Time.of_us 123);
  check_float "to_ms" 2.5 (Dsim.Time.to_ms (Dsim.Time.of_us 2500))

let time_arith () =
  let a = Dsim.Time.of_ms 10.0 and b = Dsim.Time.of_ms 3.0 in
  check_int "add" 13_000 (Dsim.Time.add a b);
  check_int "sub" 7_000 (Dsim.Time.sub a b);
  check "lt" true Dsim.Time.(b < a);
  check "ge" true Dsim.Time.(a >= b);
  check_int "min" 3000 (Dsim.Time.min a b);
  check_int "max" 10_000 (Dsim.Time.max a b)

let time_pp () =
  Alcotest.(check string) "format" "1.500000s" (Format.asprintf "%a" Dsim.Time.pp (Dsim.Time.of_ms 1500.0))

let time_rounding () =
  check_int "rounds to nearest" 1 (Dsim.Time.of_sec 0.0000014);
  check_int "rounds half up" 2 (Dsim.Time.of_sec 0.0000015)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let rng_deterministic () =
  let a = Dsim.Rng.create 1 and b = Dsim.Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Dsim.Rng.bits64 a) (Dsim.Rng.bits64 b)
  done

let rng_seeds_differ () =
  let a = Dsim.Rng.create 1 and b = Dsim.Rng.create 2 in
  check "different seeds" false (Int64.equal (Dsim.Rng.bits64 a) (Dsim.Rng.bits64 b))

let rng_int_bounds () =
  let r = Dsim.Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Dsim.Rng.int r 17 in
    check "in range" true (v >= 0 && v < 17)
  done

let rng_int_rejects_zero () =
  let r = Dsim.Rng.create 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Dsim.Rng.int r 0))

let rng_float_bounds () =
  let r = Dsim.Rng.create 4 in
  for _ = 1 to 10_000 do
    let v = Dsim.Rng.float r 2.5 in
    check "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let rng_exponential_mean () =
  let r = Dsim.Rng.create 5 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Dsim.Rng.exponential r 90.0
  done;
  let mean = !sum /. float_of_int n in
  check "mean within 5%" true (Float.abs (mean -. 90.0) < 4.5)

let rng_bool_probability () =
  let r = Dsim.Rng.create 6 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Dsim.Rng.bool r 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  check "p within 0.29..0.31" true (p > 0.29 && p < 0.31)

let rng_split_independent () =
  let parent = Dsim.Rng.create 7 in
  let child = Dsim.Rng.split parent in
  check "child differs from parent stream" false
    (Int64.equal (Dsim.Rng.bits64 parent) (Dsim.Rng.bits64 child))

let rng_pick () =
  let r = Dsim.Rng.create 8 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    check "picks member" true (Array.mem (Dsim.Rng.pick r arr) arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Dsim.Rng.pick r [||]))

let rng_uniform_range () =
  let r = Dsim.Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Dsim.Rng.uniform r 2.0 5.0 in
    check "in range" true (v >= 2.0 && v < 5.0)
  done

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let heap_sorts () =
  let h = Dsim.Heap.create ~cmp:Int.compare in
  List.iter (Dsim.Heap.push h) [ 5; 1; 4; 1; 5; 9; 2; 6 ];
  let rec drain acc =
    match Dsim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 4; 5; 5; 6; 9 ] (drain [])

let heap_empty () =
  let h = Dsim.Heap.create ~cmp:Int.compare in
  check "is_empty" true (Dsim.Heap.is_empty h);
  check "pop none" true (Dsim.Heap.pop h = None);
  check "peek none" true (Dsim.Heap.peek h = None)

let heap_peek_not_removing () =
  let h = Dsim.Heap.create ~cmp:Int.compare in
  Dsim.Heap.push h 3;
  check "peek" true (Dsim.Heap.peek h = Some 3);
  check_int "length unchanged" 1 (Dsim.Heap.length h)

let heap_large () =
  let h = Dsim.Heap.create ~cmp:Int.compare in
  let r = Dsim.Rng.create 10 in
  for _ = 1 to 10_000 do
    Dsim.Heap.push h (Dsim.Rng.int r 1_000_000)
  done;
  let rec drain last n =
    match Dsim.Heap.pop h with
    | None -> n
    | Some x ->
        check "non-decreasing" true (x >= last);
        drain x (n + 1)
  in
  check_int "all popped" 10_000 (drain min_int 0)

let heap_clear () =
  let h = Dsim.Heap.create ~cmp:Int.compare in
  Dsim.Heap.push h 1;
  Dsim.Heap.clear h;
  check "empty after clear" true (Dsim.Heap.is_empty h)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let sched_orders_events () =
  let s = Dsim.Scheduler.create () in
  let log = ref [] in
  ignore (Dsim.Scheduler.schedule_at s 300 (fun () -> log := 3 :: !log));
  ignore (Dsim.Scheduler.schedule_at s 100 (fun () -> log := 1 :: !log));
  ignore (Dsim.Scheduler.schedule_at s 200 (fun () -> log := 2 :: !log));
  Dsim.Scheduler.run s;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
  check_int "clock at last event" 300 (Dsim.Scheduler.now s)

let sched_fifo_at_same_time () =
  let s = Dsim.Scheduler.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Dsim.Scheduler.schedule_at s 50 (fun () -> log := i :: !log))
  done;
  Dsim.Scheduler.run s;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let sched_cancel () =
  let s = Dsim.Scheduler.create () in
  let fired = ref false in
  let timer = Dsim.Scheduler.schedule_at s 10 (fun () -> fired := true) in
  Dsim.Scheduler.cancel timer;
  check "is_cancelled" true (Dsim.Scheduler.is_cancelled timer);
  Dsim.Scheduler.run s;
  check "not fired" false !fired

let sched_cancel_idempotent () =
  let s = Dsim.Scheduler.create () in
  let timer = Dsim.Scheduler.schedule_at s 10 (fun () -> ()) in
  Dsim.Scheduler.cancel timer;
  Dsim.Scheduler.cancel timer;
  check_int "pending count stable" 0 (Dsim.Scheduler.pending s)

let sched_past_rejected () =
  let s = Dsim.Scheduler.create () in
  ignore (Dsim.Scheduler.schedule_at s 100 (fun () -> ()));
  Dsim.Scheduler.run s;
  check "raises" true
    (try
       ignore (Dsim.Scheduler.schedule_at s 50 (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let sched_run_until () =
  let s = Dsim.Scheduler.create () in
  let fired = ref [] in
  ignore (Dsim.Scheduler.schedule_at s 100 (fun () -> fired := 100 :: !fired));
  ignore (Dsim.Scheduler.schedule_at s 200 (fun () -> fired := 200 :: !fired));
  Dsim.Scheduler.run_until s 150;
  Alcotest.(check (list int)) "only first" [ 100 ] !fired;
  check_int "clock advanced to limit" 150 (Dsim.Scheduler.now s);
  Dsim.Scheduler.run_until s 250;
  Alcotest.(check (list int)) "second fired" [ 200; 100 ] !fired

let sched_nested_scheduling () =
  let s = Dsim.Scheduler.create () in
  let log = ref [] in
  ignore
    (Dsim.Scheduler.schedule_at s 10 (fun () ->
         log := "outer" :: !log;
         ignore (Dsim.Scheduler.schedule_after s 5 (fun () -> log := "inner" :: !log))));
  Dsim.Scheduler.run s;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  check_int "final clock" 15 (Dsim.Scheduler.now s)

let sched_pending () =
  let s = Dsim.Scheduler.create () in
  let t1 = Dsim.Scheduler.schedule_at s 10 (fun () -> ()) in
  ignore (Dsim.Scheduler.schedule_at s 20 (fun () -> ()));
  check_int "two pending" 2 (Dsim.Scheduler.pending s);
  Dsim.Scheduler.cancel t1;
  check_int "one pending" 1 (Dsim.Scheduler.pending s);
  Dsim.Scheduler.run s;
  check_int "none pending" 0 (Dsim.Scheduler.pending s)

(* ------------------------------------------------------------------ *)
(* Stat                                                                *)
(* ------------------------------------------------------------------ *)

let summary_moments () =
  let s = Dsim.Stat.Summary.create () in
  List.iter (Dsim.Stat.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_float "mean" 5.0 (Dsim.Stat.Summary.mean s);
  check_int "count" 8 (Dsim.Stat.Summary.count s);
  check_float "min" 2.0 (Dsim.Stat.Summary.min s);
  check_float "max" 9.0 (Dsim.Stat.Summary.max s);
  Alcotest.(check (float 1e-6)) "sample variance" (32.0 /. 7.0) (Dsim.Stat.Summary.variance s)

let summary_empty () =
  let s = Dsim.Stat.Summary.create () in
  check_float "mean 0" 0.0 (Dsim.Stat.Summary.mean s);
  check_float "variance 0" 0.0 (Dsim.Stat.Summary.variance s)

let series_order_and_summary () =
  let s = Dsim.Stat.Series.create ~name:"x" in
  Dsim.Stat.Series.add s 100 1.0;
  Dsim.Stat.Series.add s 200 3.0;
  Alcotest.(check (list (pair int (float 0.0))))
    "in order"
    [ (100, 1.0); (200, 3.0) ]
    (Dsim.Stat.Series.to_list s);
  check_float "summary mean" 2.0 (Dsim.Stat.Summary.mean (Dsim.Stat.Series.summary s))

let series_bucket_mean () =
  let s = Dsim.Stat.Series.create ~name:"x" in
  Dsim.Stat.Series.add s 100 1.0;
  Dsim.Stat.Series.add s 900 3.0;
  Dsim.Stat.Series.add s 1500 10.0;
  Alcotest.(check (list (pair int (float 0.0))))
    "bucketed"
    [ (0, 2.0); (1000, 10.0) ]
    (Dsim.Stat.Series.bucket_mean s ~bucket:1000)

let percentile_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0" 1.0 (Dsim.Stat.percentile xs 0.0);
  check_float "p50" 3.0 (Dsim.Stat.percentile xs 50.0);
  check_float "p100" 5.0 (Dsim.Stat.percentile xs 100.0);
  check_float "p25" 2.0 (Dsim.Stat.percentile xs 25.0);
  check "nan on empty" true (Float.is_nan (Dsim.Stat.percentile [||] 50.0))

let histogram_basics () =
  let h = Dsim.Stat.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Dsim.Stat.Histogram.add h) [ 0.5; 1.5; 2.5; 2.9; 9.9; -3.0; 42.0 ];
  check_int "count" 7 (Dsim.Stat.Histogram.count h);
  (match Dsim.Stat.Histogram.bins h with
  | [ (_, _, b0); (_, _, b1); _; _; (_, _, b4) ] ->
      check_int "first bin catches underflow" 3 b0;
      check_int "second bin" 2 b1;
      check_int "last bin catches overflow" 2 b4
  | _ -> Alcotest.fail "expected 5 bins");
  check "renders" true (String.length (Format.asprintf "%a" Dsim.Stat.Histogram.pp h) > 0);
  check "bad args" true
    (try
       ignore (Dsim.Stat.Histogram.create ~lo:1.0 ~hi:1.0 ~bins:3);
       false
     with Invalid_argument _ -> true)

let counter_ops () =
  let c = Dsim.Stat.Counter.create () in
  Dsim.Stat.Counter.incr c;
  Dsim.Stat.Counter.add c 5;
  check_int "value" 6 (Dsim.Stat.Counter.get c)

(* ------------------------------------------------------------------ *)
(* Network                                                             *)
(* ------------------------------------------------------------------ *)

let two_node_net () =
  let sched = Dsim.Scheduler.create () in
  let net = Dsim.Network.create sched (Dsim.Rng.create 1) in
  let a = Dsim.Network.add_node net ~name:"a" ~hosts:[ "10.0.0.1" ] in
  let b = Dsim.Network.add_node net ~name:"b" ~hosts:[ "10.0.0.2" ] in
  Dsim.Network.connect net a b ~rate_bps:1e6 ~prop_delay:(Dsim.Time.of_ms 10.0) ~loss_prob:0.0;
  (sched, net, a, b)

let net_delivers () =
  let sched, net, a, b = two_node_net () in
  let got = ref None in
  Dsim.Network.set_handler b (fun p -> got := Some p);
  let packet =
    Dsim.Network.make_packet net ~src:(Dsim.Addr.v "10.0.0.1" 1000)
      ~dst:(Dsim.Addr.v "10.0.0.2" 2000) "hello"
  in
  Dsim.Network.send net ~from:a packet;
  Dsim.Scheduler.run sched;
  (match !got with
  | None -> Alcotest.fail "not delivered"
  | Some p -> Alcotest.(check string) "payload" "hello" p.Dsim.Packet.payload);
  check_int "delivered count" 1 (Dsim.Network.packets_delivered net)

let net_delay_model () =
  let sched, net, a, b = two_node_net () in
  let arrival = ref 0 in
  Dsim.Network.set_handler b (fun _ -> arrival := Dsim.Scheduler.now sched);
  let payload = String.make 97 'x' in
  (* 125 bytes with overhead = 1000 bits at 1 Mbps = 1 ms tx + 10 ms prop. *)
  let packet =
    Dsim.Network.make_packet net ~src:(Dsim.Addr.v "10.0.0.1" 1) ~dst:(Dsim.Addr.v "10.0.0.2" 2)
      payload
  in
  Dsim.Network.send net ~from:a packet;
  Dsim.Scheduler.run sched;
  check_int "tx + prop" (Dsim.Time.of_ms 11.0) !arrival

let net_serialization_queueing () =
  let sched, net, a, b = two_node_net () in
  let arrivals = ref [] in
  Dsim.Network.set_handler b (fun _ -> arrivals := Dsim.Scheduler.now sched :: !arrivals);
  let payload = String.make 97 'x' in
  for _ = 1 to 2 do
    let packet =
      Dsim.Network.make_packet net ~src:(Dsim.Addr.v "10.0.0.1" 1)
        ~dst:(Dsim.Addr.v "10.0.0.2" 2) payload
    in
    Dsim.Network.send net ~from:a packet
  done;
  Dsim.Scheduler.run sched;
  (* Second packet waits for the first transmission to finish. *)
  Alcotest.(check (list int))
    "arrivals"
    [ Dsim.Time.of_ms 12.0; Dsim.Time.of_ms 11.0 ]
    !arrivals

let net_loss () =
  let sched = Dsim.Scheduler.create () in
  let net = Dsim.Network.create sched (Dsim.Rng.create 1) in
  let a = Dsim.Network.add_node net ~name:"a" ~hosts:[ "h1" ] in
  let b = Dsim.Network.add_node net ~name:"b" ~hosts:[ "h2" ] in
  Dsim.Network.connect net a b ~rate_bps:0.0 ~prop_delay:0 ~loss_prob:0.5;
  let received = ref 0 in
  Dsim.Network.set_handler b (fun _ -> incr received);
  for _ = 1 to 1000 do
    Dsim.Network.send net ~from:a
      (Dsim.Network.make_packet net ~src:(Dsim.Addr.v "h1" 1) ~dst:(Dsim.Addr.v "h2" 1) "x")
  done;
  Dsim.Scheduler.run sched;
  check "about half lost" true (!received > 400 && !received < 600);
  check_int "conservation" 1000 (!received + Dsim.Network.packets_dropped net)

let net_multihop_and_tap () =
  let sched = Dsim.Scheduler.create () in
  let net = Dsim.Network.create sched (Dsim.Rng.create 1) in
  let a = Dsim.Network.add_node net ~name:"a" ~hosts:[ "h1" ] in
  let mid = Dsim.Network.add_node net ~name:"mid" ~hosts:[] in
  let b = Dsim.Network.add_node net ~name:"b" ~hosts:[ "h2" ] in
  Dsim.Network.connect net a mid ~rate_bps:0.0 ~prop_delay:(Dsim.Time.of_ms 1.0) ~loss_prob:0.0;
  Dsim.Network.connect net mid b ~rate_bps:0.0 ~prop_delay:(Dsim.Time.of_ms 1.0) ~loss_prob:0.0;
  let tapped = ref 0 and delivered = ref false in
  Dsim.Network.set_tap mid (Some (fun _ -> incr tapped));
  Dsim.Network.set_handler b (fun _ -> delivered := true);
  Dsim.Network.send net ~from:a
    (Dsim.Network.make_packet net ~src:(Dsim.Addr.v "h1" 1) ~dst:(Dsim.Addr.v "h2" 1) "x");
  Dsim.Scheduler.run sched;
  check "delivered over two hops" true !delivered;
  check_int "tap saw transit packet" 1 !tapped

let net_transit_delay () =
  let sched = Dsim.Scheduler.create () in
  let net = Dsim.Network.create sched (Dsim.Rng.create 1) in
  let a = Dsim.Network.add_node net ~name:"a" ~hosts:[ "h1" ] in
  let mid = Dsim.Network.add_node net ~name:"mid" ~hosts:[] in
  let b = Dsim.Network.add_node net ~name:"b" ~hosts:[ "h2" ] in
  Dsim.Network.connect net a mid ~rate_bps:0.0 ~prop_delay:0 ~loss_prob:0.0;
  Dsim.Network.connect net mid b ~rate_bps:0.0 ~prop_delay:0 ~loss_prob:0.0;
  Dsim.Network.set_transit_delay mid (Some (fun _ -> Dsim.Time.of_ms 50.0));
  let at = ref 0 in
  Dsim.Network.set_handler b (fun _ -> at := Dsim.Scheduler.now sched);
  Dsim.Network.send net ~from:a
    (Dsim.Network.make_packet net ~src:(Dsim.Addr.v "h1" 1) ~dst:(Dsim.Addr.v "h2" 1) "x");
  Dsim.Scheduler.run sched;
  check_int "50ms added" (Dsim.Time.of_ms 50.0) !at

let net_unroutable_drops () =
  let sched, net, a, _ = two_node_net () in
  Dsim.Network.send net ~from:a
    (Dsim.Network.make_packet net ~src:(Dsim.Addr.v "10.0.0.1" 1)
       ~dst:(Dsim.Addr.v "unknown-host" 1) "x");
  Dsim.Scheduler.run sched;
  check_int "dropped" 1 (Dsim.Network.packets_dropped net)

let net_duplicate_host_rejected () =
  let sched = Dsim.Scheduler.create () in
  let net = Dsim.Network.create sched (Dsim.Rng.create 1) in
  ignore (Dsim.Network.add_node net ~name:"a" ~hosts:[ "h1" ]);
  check "raises" true
    (try
       ignore (Dsim.Network.add_node net ~name:"b" ~hosts:[ "h1" ]);
       false
     with Invalid_argument _ -> true)

let net_link_stats () =
  let sched, net, a, b = two_node_net () in
  Dsim.Network.set_handler b (fun _ -> ());
  for _ = 1 to 3 do
    Dsim.Network.send net ~from:a
      (Dsim.Network.make_packet net ~src:(Dsim.Addr.v "10.0.0.1" 1)
         ~dst:(Dsim.Addr.v "10.0.0.2" 2) "xx")
  done;
  Dsim.Scheduler.run sched;
  let stats = Dsim.Network.link_stats net in
  check_int "two directions" 2 (List.length stats);
  let a_to_b =
    List.find (fun ls -> ls.Dsim.Network.from_node = "a") stats
  in
  check_int "packets counted" 3 a_to_b.Dsim.Network.tx_packets;
  check_int "bytes counted" 90 a_to_b.Dsim.Network.tx_bytes;
  check_int "no loss" 0 a_to_b.Dsim.Network.lost_packets;
  let b_to_a = List.find (fun ls -> ls.Dsim.Network.from_node = "b") stats in
  check_int "idle direction" 0 b_to_a.Dsim.Network.tx_packets

let addr_parse () =
  (match Dsim.Addr.of_string "10.0.0.1:5060" with
  | Some a ->
      Alcotest.(check string) "host" "10.0.0.1" (Dsim.Addr.host a);
      check_int "port" 5060 (Dsim.Addr.port a)
  | None -> Alcotest.fail "should parse");
  check "no port" true (Dsim.Addr.of_string "10.0.0.1" = None);
  check "bad port" true (Dsim.Addr.of_string "h:xx" = None);
  check "empty host" true (Dsim.Addr.of_string ":80" = None)

let tc name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "dsim.time",
      [
        tc "roundtrip" time_roundtrip;
        tc "arithmetic" time_arith;
        tc "pretty-print" time_pp;
        tc "rounding" time_rounding;
      ] );
    ( "dsim.rng",
      [
        tc "deterministic" rng_deterministic;
        tc "seeds differ" rng_seeds_differ;
        tc "int bounds" rng_int_bounds;
        tc "int rejects zero" rng_int_rejects_zero;
        tc "float bounds" rng_float_bounds;
        tc "exponential mean" rng_exponential_mean;
        tc "bool probability" rng_bool_probability;
        tc "split independence" rng_split_independent;
        tc "pick" rng_pick;
        tc "uniform range" rng_uniform_range;
      ] );
    ( "dsim.heap",
      [
        tc "sorts" heap_sorts;
        tc "empty" heap_empty;
        tc "peek" heap_peek_not_removing;
        tc "large random" heap_large;
        tc "clear" heap_clear;
      ] );
    ( "dsim.scheduler",
      [
        tc "orders events" sched_orders_events;
        tc "fifo at same time" sched_fifo_at_same_time;
        tc "cancel" sched_cancel;
        tc "cancel idempotent" sched_cancel_idempotent;
        tc "past rejected" sched_past_rejected;
        tc "run_until" sched_run_until;
        tc "nested scheduling" sched_nested_scheduling;
        tc "pending count" sched_pending;
      ] );
    ( "dsim.stat",
      [
        tc "summary moments" summary_moments;
        tc "summary empty" summary_empty;
        tc "series order" series_order_and_summary;
        tc "series bucket mean" series_bucket_mean;
        tc "percentile" percentile_basics;
        tc "histogram" histogram_basics;
        tc "counter" counter_ops;
      ] );
    ( "dsim.network",
      [
        tc "delivers" net_delivers;
        tc "delay model" net_delay_model;
        tc "serialization queueing" net_serialization_queueing;
        tc "bernoulli loss" net_loss;
        tc "multihop + tap" net_multihop_and_tap;
        tc "transit delay" net_transit_delay;
        tc "unroutable drops" net_unroutable_drops;
        tc "link stats" net_link_stats;
        tc "duplicate host rejected" net_duplicate_host_rejected;
        tc "addr parse" addr_parse;
      ] );
  ]
