(* Direct event-injection tests for the paper's protocol and detector
   machines (Figures 2, 4, 5, 6). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let tc name f = Alcotest.test_case name `Quick f

module M = Efsm.Machine
module E = Efsm.Event
module V = Efsm.Value

let config = Vids.Config.default

(* A call-machine pair wired into one system, with a controllable clock. *)
type rig = {
  sched : Dsim.Scheduler.t;
  sys : Efsm.System.t;
  sip : M.t;
  rtp : M.t;
  alerts : Efsm.System.notification list ref;
  anomalies : Efsm.System.notification list ref;
}

let make_rig () =
  let sched = Dsim.Scheduler.create () in
  let alerts = ref [] and anomalies = ref [] in
  let sys =
    Efsm.System.create
      ~on_alert:(fun n -> alerts := n :: !alerts)
      ~on_anomaly:(fun n -> anomalies := n :: !anomalies)
      (Efsm.System.timer_host_of_scheduler sched)
  in
  let sip = Efsm.System.add_machine sys (Vids.Sip_call_machine.spec config) in
  let rtp = Efsm.System.add_machine sys (Vids.Rtp_call_machine.spec config) in
  { sched; sys; sip; rtp; alerts; anomalies }

let now rig = Dsim.Scheduler.now rig.sched

let base_args =
  [
    (Vids.Keys.call_id, V.Str "cid-1");
    (Vids.Keys.from_tag, V.Str "tag-a");
    (Vids.Keys.branch, V.Str "z9hG4bK1");
    (Vids.Keys.src_ip, V.Str "10.1.0.2");
    (Vids.Keys.dst_ip, V.Str "10.2.0.2");
    (Vids.Keys.src_port, V.Int 5060);
    (Vids.Keys.dst_port, V.Int 5060);
    (Vids.Keys.cseq_method, V.Str "INVITE");
    (Vids.Keys.cseq_number, V.Int 1);
    (Vids.Keys.contact_host, V.Str "10.1.0.10");
  ]

let sip_event rig ?(extra = []) name =
  E.make ~args:(extra @ base_args) (E.Data "SIP") ~at:(now rig) name

let inject_sip rig ?extra name =
  Efsm.System.inject rig.sys ~machine:Vids.Keys.sip_machine (sip_event rig ?extra name)

let invite_with_sdp rig =
  inject_sip rig
    ~extra:
      [
        (Vids.Keys.media_host, V.Str "10.1.0.10");
        (Vids.Keys.media_port, V.Int 16384);
        (Vids.Keys.media_pt, V.Int 18);
      ]
    "INVITE"

let resp rig ?(cseq_method = "INVITE") ?(extra = []) code =
  inject_sip rig
    ~extra:
      ((Vids.Keys.code, V.Int code)
      :: (Vids.Keys.cseq_method, V.Str cseq_method)
      :: (Vids.Keys.to_tag, V.Str "tag-b")
      :: (Vids.Keys.contact_host, V.Str "10.2.0.10")
      :: extra)
    Vids.Keys.response

let resp_with_media rig code =
  resp rig
    ~extra:
      [
        (Vids.Keys.media_host, V.Str "10.2.0.10");
        (Vids.Keys.media_port, V.Int 20000);
        (Vids.Keys.media_pt, V.Int 18);
      ]
    code

let rtp_event rig ~src ~dst =
  E.make
    ~args:
      [
        (Vids.Keys.src_ip, V.Str src);
        (Vids.Keys.dst_ip, V.Str dst);
        (Vids.Keys.src_port, V.Int 17000);
        (Vids.Keys.dst_port, V.Int 20000);
        (Vids.Keys.ssrc, V.Int 1234);
        (Vids.Keys.seq, V.Int 1);
        (Vids.Keys.ts, V.Int 160);
        (Vids.Keys.payload_type, V.Int 18);
        (Vids.Keys.size, V.Int 20);
      ]
    (E.Data "RTP") ~at:(now rig) Vids.Keys.rtp_packet

let inject_rtp rig ~src ~dst =
  Efsm.System.inject rig.sys ~machine:Vids.Keys.rtp_machine (rtp_event rig ~src ~dst)

(* Walk a call to CONFIRMED: INVITE, 180, 200, ACK. *)
let establish rig =
  invite_with_sdp rig;
  resp rig 180;
  resp_with_media rig 200;
  inject_sip rig ~extra:[ (Vids.Keys.cseq_method, V.Str "ACK") ] "ACK"

let bye ?(src = "10.1.0.10") ?(from_tag = "tag-a") rig =
  inject_sip rig
    ~extra:
      [
        (Vids.Keys.cseq_method, V.Str "BYE");
        (Vids.Keys.src_ip, V.Str src);
        (Vids.Keys.from_tag, V.Str from_tag);
      ]
    "BYE"

(* ------------------------------------------------------------------ *)
(* SIP call machine paths                                              *)
(* ------------------------------------------------------------------ *)

let normal_setup_path () =
  let rig = make_rig () in
  invite_with_sdp rig;
  check_str "invite rcvd" Vids.Sip_call_machine.st_invite_rcvd (M.state rig.sip);
  check_str "rtp open via sync" Vids.Rtp_call_machine.st_open (M.state rig.rtp);
  resp rig 180;
  check_str "proceeding" Vids.Sip_call_machine.st_proceeding (M.state rig.sip);
  resp_with_media rig 200;
  check_str "established" Vids.Sip_call_machine.st_established (M.state rig.sip);
  inject_sip rig ~extra:[ (Vids.Keys.cseq_method, V.Str "ACK") ] "ACK";
  check_str "confirmed" Vids.Sip_call_machine.st_confirmed (M.state rig.sip);
  check "no alerts" true (!(rig.alerts) = []);
  check "no anomalies" true (!(rig.anomalies) = [])

let normal_teardown_path () =
  let rig = make_rig () in
  establish rig;
  bye rig;
  check_str "teardown" Vids.Sip_call_machine.st_teardown (M.state rig.sip);
  resp rig ~cseq_method:"BYE" 200;
  check_str "closed" Vids.Sip_call_machine.st_closed (M.state rig.sip);
  check "sip final" true (M.is_final rig.sip);
  check "no alerts" true (!(rig.alerts) = [])

let retransmissions_absorbed () =
  let rig = make_rig () in
  invite_with_sdp rig;
  invite_with_sdp rig;
  check_str "still invite rcvd" Vids.Sip_call_machine.st_invite_rcvd (M.state rig.sip);
  resp rig 180;
  resp rig 180;
  resp rig 100;
  check_str "proceeding" Vids.Sip_call_machine.st_proceeding (M.state rig.sip);
  resp_with_media rig 200;
  resp_with_media rig 200;
  inject_sip rig ~extra:[ (Vids.Keys.cseq_method, V.Str "ACK") ] "ACK";
  inject_sip rig ~extra:[ (Vids.Keys.cseq_method, V.Str "ACK") ] "ACK";
  check_str "confirmed" Vids.Sip_call_machine.st_confirmed (M.state rig.sip);
  check "no anomalies from retransmissions" true (!(rig.anomalies) = [])

let direct_200_without_180 () =
  let rig = make_rig () in
  invite_with_sdp rig;
  resp_with_media rig 200;
  check_str "established" Vids.Sip_call_machine.st_established (M.state rig.sip)

let failed_setup_path () =
  let rig = make_rig () in
  invite_with_sdp rig;
  resp rig 180;
  resp rig 486;
  check_str "failed" Vids.Sip_call_machine.st_failed (M.state rig.sip);
  inject_sip rig ~extra:[ (Vids.Keys.cseq_method, V.Str "ACK") ] "ACK";
  check_str "closed" Vids.Sip_call_machine.st_closed (M.state rig.sip)

let cancel_legitimate () =
  let rig = make_rig () in
  invite_with_sdp rig;
  resp rig 180;
  (* CANCEL from the same source as the INVITE. *)
  inject_sip rig ~extra:[ (Vids.Keys.cseq_method, V.Str "CANCEL") ] "CANCEL";
  check_str "cancelling" Vids.Sip_call_machine.st_cancelling (M.state rig.sip);
  resp rig ~cseq_method:"CANCEL" 200;
  resp rig 487;
  inject_sip rig ~extra:[ (Vids.Keys.cseq_method, V.Str "ACK") ] "ACK";
  check_str "closed" Vids.Sip_call_machine.st_closed (M.state rig.sip);
  check "no alerts" true (!(rig.alerts) = [])

let cancel_dos_detected () =
  let rig = make_rig () in
  invite_with_sdp rig;
  resp rig 180;
  inject_sip rig
    ~extra:
      [ (Vids.Keys.cseq_method, V.Str "CANCEL"); (Vids.Keys.src_ip, V.Str "203.0.113.66") ]
    "CANCEL";
  check_str "attack state" Vids.Sip_call_machine.st_cancel_dos (M.state rig.sip);
  check_int "alert" 1 (List.length !(rig.alerts))

let reinvite_legitimate () =
  let rig = make_rig () in
  establish rig;
  (* Re-INVITE from the caller with matching dialog tags and known source. *)
  inject_sip rig
    ~extra:
      [ (Vids.Keys.to_tag, V.Str "tag-b"); (Vids.Keys.src_ip, V.Str "10.1.0.10") ]
    "INVITE";
  check_str "reinvite pending" Vids.Sip_call_machine.st_reinvite_pending (M.state rig.sip);
  resp rig 200;
  check_str "back to confirmed" Vids.Sip_call_machine.st_confirmed (M.state rig.sip);
  check "no alerts" true (!(rig.alerts) = [])

let hijack_detected () =
  let rig = make_rig () in
  establish rig;
  (* In-dialog INVITE with foreign tags from a foreign source. *)
  inject_sip rig
    ~extra:
      [
        (Vids.Keys.from_tag, V.Str "tag-mallory");
        (Vids.Keys.to_tag, V.Str "tag-b");
        (Vids.Keys.src_ip, V.Str "203.0.113.66");
      ]
    "INVITE";
  check_str "hijack state" Vids.Sip_call_machine.st_hijack (M.state rig.sip);
  check_int "alert" 1 (List.length !(rig.alerts))

let hijack_matching_tags_wrong_source () =
  let rig = make_rig () in
  establish rig;
  (* Correct tags but source that is neither participant's contact. *)
  inject_sip rig
    ~extra:
      [ (Vids.Keys.to_tag, V.Str "tag-b"); (Vids.Keys.src_ip, V.Str "203.0.113.66") ]
    "INVITE";
  check_str "hijack state" Vids.Sip_call_machine.st_hijack (M.state rig.sip)

let bye_with_unknown_tag_is_anomaly () =
  let rig = make_rig () in
  establish rig;
  bye rig ~from_tag:"tag-nobody";
  check_str "state unchanged" Vids.Sip_call_machine.st_confirmed (M.state rig.sip);
  check_int "anomaly" 1 (List.length !(rig.anomalies))

let register_path () =
  let rig = make_rig () in
  inject_sip rig ~extra:[ (Vids.Keys.cseq_method, V.Str "REGISTER") ] "REGISTER";
  check_str "registering" Vids.Sip_call_machine.st_registering (M.state rig.sip);
  resp rig ~cseq_method:"REGISTER" 200;
  check_str "closed" Vids.Sip_call_machine.st_closed (M.state rig.sip)

let callee_bye_teardown () =
  let rig = make_rig () in
  establish rig;
  (* BYE from the callee side (their tag, their contact). *)
  bye rig ~src:"10.2.0.10" ~from_tag:"tag-b";
  check_str "teardown" Vids.Sip_call_machine.st_teardown (M.state rig.sip);
  check "no alerts" true (!(rig.alerts) = [])

(* ------------------------------------------------------------------ *)
(* RTP machine + cross-protocol BYE check (Figure 5)                   *)
(* ------------------------------------------------------------------ *)

let rtp_opens_on_sync () =
  let rig = make_rig () in
  invite_with_sdp rig;
  check_str "open" Vids.Rtp_call_machine.st_open (M.state rig.rtp);
  resp_with_media rig 200;
  check_str "still open after answer" Vids.Rtp_call_machine.st_open (M.state rig.rtp);
  inject_rtp rig ~src:"10.1.0.10" ~dst:"10.2.0.10";
  check_str "active" Vids.Rtp_call_machine.st_active (M.state rig.rtp)

let bye_then_quiet_closes () =
  let rig = make_rig () in
  establish rig;
  inject_rtp rig ~src:"10.1.0.10" ~dst:"10.2.0.10";
  bye rig;
  check_str "after bye" Vids.Rtp_call_machine.st_after_bye (M.state rig.rtp);
  (* In-flight packet inside the grace window: allowed. *)
  Dsim.Scheduler.run_until rig.sched (Dsim.Time.of_ms 100.0);
  inject_rtp rig ~src:"10.2.0.10" ~dst:"10.1.0.10";
  check_str "still grace" Vids.Rtp_call_machine.st_after_bye (M.state rig.rtp);
  Dsim.Scheduler.run_until rig.sched (Dsim.Time.of_sec 1.0);
  check_str "closed" Vids.Rtp_call_machine.st_closed (M.state rig.rtp);
  check "rtp final" true (M.is_final rig.rtp);
  check "no alerts" true (!(rig.alerts) = [])

let spoofed_bye_dos_detected () =
  let rig = make_rig () in
  establish rig;
  inject_rtp rig ~src:"10.1.0.10" ~dst:"10.2.0.10";
  (* BYE claims the caller (tag-a) but comes from a foreign source. *)
  bye rig ~src:"203.0.113.66";
  Dsim.Scheduler.run_until rig.sched (Dsim.Time.of_sec 1.0);
  (* The real caller keeps talking. *)
  inject_rtp rig ~src:"10.1.0.10" ~dst:"10.2.0.10";
  check_str "bye dos" Vids.Rtp_call_machine.st_bye_dos (M.state rig.rtp);
  check_int "alert" 1 (List.length !(rig.alerts))

let billing_fraud_detected () =
  let rig = make_rig () in
  establish rig;
  inject_rtp rig ~src:"10.1.0.10" ~dst:"10.2.0.10";
  (* Genuine BYE from the caller's contact... *)
  bye rig ~src:"10.1.0.10";
  Dsim.Scheduler.run_until rig.sched (Dsim.Time.of_sec 1.0);
  (* ...who keeps streaming after the grace period. *)
  inject_rtp rig ~src:"10.1.0.10" ~dst:"10.2.0.10";
  check_str "billing fraud" Vids.Rtp_call_machine.st_billing_fraud (M.state rig.rtp);
  check_int "alert" 1 (List.length !(rig.alerts))

let grace_timer_uses_config () =
  let rig = make_rig () in
  establish rig;
  inject_rtp rig ~src:"10.1.0.10" ~dst:"10.2.0.10";
  bye rig;
  (* Just before T (250 ms default) the machine is still in grace. *)
  Dsim.Scheduler.run_until rig.sched (Dsim.Time.of_ms 240.0);
  check_str "still grace" Vids.Rtp_call_machine.st_after_bye (M.state rig.rtp);
  Dsim.Scheduler.run_until rig.sched (Dsim.Time.of_ms 260.0);
  check_str "closed at T" Vids.Rtp_call_machine.st_closed (M.state rig.rtp)

(* ------------------------------------------------------------------ *)
(* INVITE flood detector (Figure 4)                                    *)
(* ------------------------------------------------------------------ *)

let flood_rig () =
  let sched = Dsim.Scheduler.create () in
  let alerts = ref [] in
  let sys =
    Efsm.System.create
      ~on_alert:(fun n -> alerts := n :: !alerts)
      (Efsm.System.timer_host_of_scheduler sched)
  in
  let m = Efsm.System.add_machine sys (Vids.Invite_flood_machine.spec config) in
  let send () =
    Efsm.System.inject sys ~machine:Vids.Invite_flood_machine.machine_name
      (E.make (E.Data "SIP") ~at:(Dsim.Scheduler.now sched) "INVITE")
  in
  (sched, m, alerts, send)

let flood_below_threshold () =
  let sched, m, alerts, send = flood_rig () in
  for _ = 1 to config.Vids.Config.invite_flood_threshold do
    send ()
  done;
  check "no alert at N" true (!alerts = []);
  check_str "counting" Vids.Invite_flood_machine.st_counting (M.state m);
  (* Window expires: reset. *)
  Dsim.Scheduler.run_until sched (Dsim.Time.of_sec 2.0);
  check_str "reset" Vids.Invite_flood_machine.st_init (M.state m);
  (* A fresh burst of N after the window is still fine. *)
  for _ = 1 to config.Vids.Config.invite_flood_threshold do
    send ()
  done;
  check "still no alert" true (!alerts = [])

let flood_above_threshold () =
  let _sched, m, alerts, send = flood_rig () in
  for _ = 1 to config.Vids.Config.invite_flood_threshold + 1 do
    send ()
  done;
  check_str "flood state" Vids.Invite_flood_machine.st_flood (M.state m);
  check_int "one alert per entry" 1 (List.length !alerts)

let flood_spread_out_no_alert () =
  let sched, _m, alerts, send = flood_rig () in
  (* N+5 INVITEs but only a few per window. *)
  for _ = 1 to config.Vids.Config.invite_flood_threshold + 5 do
    send ();
    Dsim.Scheduler.run_until sched
      (Dsim.Time.add (Dsim.Scheduler.now sched) (Dsim.Time.of_ms 600.0))
  done;
  check "no alert when spread out" true (!alerts = [])

(* ------------------------------------------------------------------ *)
(* Media spam detector (Figure 6)                                      *)
(* ------------------------------------------------------------------ *)

let spam_rig () =
  let sched = Dsim.Scheduler.create () in
  let alerts = ref [] in
  let sys =
    Efsm.System.create
      ~on_alert:(fun n -> alerts := n :: !alerts)
      (Efsm.System.timer_host_of_scheduler sched)
  in
  let m = Efsm.System.add_machine sys (Vids.Media_spam_machine.spec config) in
  let send ?(ssrc = 7) ~seq ~ts () =
    Efsm.System.inject sys ~machine:Vids.Media_spam_machine.machine_name
      (E.make
         ~args:
           [
             (Vids.Keys.ssrc, V.Int ssrc);
             (Vids.Keys.seq, V.Int seq);
             (Vids.Keys.ts, V.Int ts);
             (Vids.Keys.src_ip, V.Str "10.1.0.10");
           ]
         (E.Data "RTP") ~at:(Dsim.Scheduler.now sched) Vids.Keys.rtp_packet)
  in
  (sched, m, alerts, send)

let spam_in_order_stream_ok () =
  let sched, m, alerts, send = spam_rig () in
  for i = 0 to 100 do
    send ~seq:(1000 + i) ~ts:(160 * i) ();
    Dsim.Scheduler.run_until sched
      (Dsim.Time.add (Dsim.Scheduler.now sched) (Dsim.Time.of_ms 20.0))
  done;
  check "no alert" true (!alerts = []);
  check_str "streaming" Vids.Media_spam_machine.st_stream (M.state m)

let spam_seq_gap_detected () =
  let _sched, m, alerts, send = spam_rig () in
  send ~seq:1000 ~ts:0 ();
  send ~seq:(1000 + config.Vids.Config.spam_seq_gap + 1) ~ts:160 ();
  check_str "spam" Vids.Media_spam_machine.st_spam (M.state m);
  check_int "alert" 1 (List.length !alerts)

let spam_ts_gap_detected () =
  let _sched, m, _alerts, send = spam_rig () in
  send ~seq:1000 ~ts:0 ();
  (* A non-consecutive sequence advance with a timestamp jump beyond Δt. *)
  send ~seq:1005 ~ts:(config.Vids.Config.spam_ts_gap + 801) ();
  check_str "spam" Vids.Media_spam_machine.st_spam (M.state m)

let spam_talkspurt_tolerated () =
  let _sched, m, alerts, send = spam_rig () in
  send ~seq:1000 ~ts:0 ();
  (* Consecutive sequence number with a multi-second timestamp jump: a
     talkspurt after VAD silence suppression, not an injection. *)
  send ~seq:1001 ~ts:24000 ();
  check_str "talkspurt ok" Vids.Media_spam_machine.st_stream (M.state m);
  check "no alert" true (!alerts = []);
  (* But even a consecutive-sequence packet cannot jump beyond the silence
     allowance. *)
  send ~seq:1002 ~ts:(24000 + config.Vids.Config.spam_silence_ts_gap + 161) ();
  check_str "absurd jump is spam" Vids.Media_spam_machine.st_spam (M.state m)

let spam_foreign_ssrc_detected () =
  let _sched, m, _alerts, send = spam_rig () in
  send ~seq:1000 ~ts:0 ();
  send ~ssrc:999 ~seq:1001 ~ts:160 ();
  check_str "spam" Vids.Media_spam_machine.st_spam (M.state m)

let spam_replay_detected () =
  let _sched, m, _alerts, send = spam_rig () in
  send ~seq:1000 ~ts:160000 ();
  send ~seq:(1000 - config.Vids.Config.spam_reorder_tolerance - 1) ~ts:150000 ();
  check_str "deep reorder is spam" Vids.Media_spam_machine.st_spam (M.state m)

let spam_small_reorder_tolerated () =
  let _sched, m, _alerts, send = spam_rig () in
  send ~seq:1000 ~ts:16000 ();
  send ~seq:999 ~ts:15840 ();
  check_str "tolerated" Vids.Media_spam_machine.st_stream (M.state m)

let spam_seq_wrap_tolerated () =
  let _sched, m, _alerts, send = spam_rig () in
  send ~seq:0xFFFE ~ts:0 ();
  send ~seq:0xFFFF ~ts:160 ();
  send ~seq:0 ~ts:320 ();
  send ~seq:1 ~ts:480 ();
  check_str "wrap ok" Vids.Media_spam_machine.st_stream (M.state m);
  check "no alert" true (!_alerts = [])

let spam_silence_suppression_tolerated () =
  let _sched, m, _alerts, send = spam_rig () in
  send ~seq:1000 ~ts:0 ();
  (* A 0.4 s timestamp jump with consecutive seq: silence suppression. *)
  send ~seq:1001 ~ts:3200 ();
  check_str "tolerated" Vids.Media_spam_machine.st_stream (M.state m)

let rtp_flood_detected () =
  let _sched, m, alerts, send = spam_rig () in
  for i = 1 to config.Vids.Config.rtp_flood_threshold + 1 do
    send ~seq:(1000 + i) ~ts:(160 * i) ()
  done;
  check_str "flood" Vids.Media_spam_machine.st_flood (M.state m);
  check_int "alert on entering the attack state" 1 (List.length !alerts)

let spam_dormant_resume () =
  let sched, m, alerts, send = spam_rig () in
  send ~seq:1000 ~ts:0 ();
  (* Idle long enough for two window expiries: counting window then idle. *)
  Dsim.Scheduler.run_until sched (Dsim.Time.of_sec 3.0);
  check_str "dormant" Vids.Media_spam_machine.st_dormant (M.state m);
  (* Same SSRC resumes with a big jump: tolerated (re-baseline). *)
  send ~seq:3000 ~ts:500000 ();
  check_str "resumed" Vids.Media_spam_machine.st_stream (M.state m);
  check "no alert" true (!alerts = []);
  (* But a foreign SSRC after dormancy is spam. *)
  Dsim.Scheduler.run_until sched (Dsim.Time.of_sec 10.0);
  check_str "dormant again" Vids.Media_spam_machine.st_dormant (M.state m);
  send ~ssrc:999 ~seq:1 ~ts:0 ();
  check_str "foreign after dormancy" Vids.Media_spam_machine.st_spam (M.state m)

(* ------------------------------------------------------------------ *)
(* DRDoS detector                                                      *)
(* ------------------------------------------------------------------ *)

let drdos_detector () =
  let sched = Dsim.Scheduler.create () in
  let alerts = ref [] in
  let sys =
    Efsm.System.create
      ~on_alert:(fun n -> alerts := n :: !alerts)
      (Efsm.System.timer_host_of_scheduler sched)
  in
  let m = Efsm.System.add_machine sys (Vids.Drdos_machine.spec config) in
  let send () =
    Efsm.System.inject sys ~machine:Vids.Drdos_machine.machine_name
      (E.make (E.Data "SIP") ~at:(Dsim.Scheduler.now sched) Vids.Drdos_machine.orphan_response)
  in
  for _ = 1 to config.Vids.Config.drdos_threshold do
    send ()
  done;
  check "below threshold" true (!alerts = []);
  send ();
  check_str "attack" Vids.Drdos_machine.st_attack (M.state m);
  check_int "alert" 1 (List.length !alerts);
  (* Occasional orphans spread over windows never alert. *)
  let sched2 = Dsim.Scheduler.create () in
  let alerts2 = ref [] in
  let sys2 =
    Efsm.System.create
      ~on_alert:(fun n -> alerts2 := n :: !alerts2)
      (Efsm.System.timer_host_of_scheduler sched2)
  in
  ignore (Efsm.System.add_machine sys2 (Vids.Drdos_machine.spec config));
  for _ = 1 to 100 do
    Efsm.System.inject sys2 ~machine:Vids.Drdos_machine.machine_name
      (E.make (E.Data "SIP") ~at:(Dsim.Scheduler.now sched2) Vids.Drdos_machine.orphan_response);
    Dsim.Scheduler.run_until sched2
      (Dsim.Time.add (Dsim.Scheduler.now sched2) (Dsim.Time.of_sec 1.0))
  done;
  check "spread orphans fine" true (!alerts2 = [])

(* ------------------------------------------------------------------ *)
(* Spec hygiene                                                        *)
(* ------------------------------------------------------------------ *)

let all_specs_validate () =
  List.iter
    (fun spec ->
      match M.validate_spec spec with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid spec: %s" e)
    [
      Vids.Sip_call_machine.spec config;
      Vids.Rtp_call_machine.spec config;
      Vids.Invite_flood_machine.spec config;
      Vids.Media_spam_machine.spec config;
      Vids.Drdos_machine.spec config;
    ]

let dot_export_of_paper_figures () =
  (* The three patterns of Figures 4-6 export to non-trivial graphs. *)
  List.iter
    (fun spec ->
      let dot = Efsm.Dot.of_spec spec in
      check "has content" true (String.length dot > 100))
    [
      Vids.Invite_flood_machine.spec config;
      Vids.Rtp_call_machine.spec config;
      Vids.Media_spam_machine.spec config;
    ]

let suite =
  [
    ( "vids.sip_machine",
      [
        tc "normal setup" normal_setup_path;
        tc "normal teardown" normal_teardown_path;
        tc "retransmissions absorbed" retransmissions_absorbed;
        tc "200 without 180" direct_200_without_180;
        tc "failed setup" failed_setup_path;
        tc "legitimate CANCEL" cancel_legitimate;
        tc "CANCEL DoS detected" cancel_dos_detected;
        tc "legitimate re-INVITE" reinvite_legitimate;
        tc "hijack detected" hijack_detected;
        tc "hijack by source" hijack_matching_tags_wrong_source;
        tc "BYE with unknown tag = anomaly" bye_with_unknown_tag_is_anomaly;
        tc "REGISTER path" register_path;
        tc "callee-initiated BYE" callee_bye_teardown;
      ] );
    ( "vids.rtp_machine",
      [
        tc "opens on sync" rtp_opens_on_sync;
        tc "bye then quiet closes" bye_then_quiet_closes;
        tc "spoofed BYE DoS" spoofed_bye_dos_detected;
        tc "billing fraud" billing_fraud_detected;
        tc "grace timer T" grace_timer_uses_config;
      ] );
    ( "vids.invite_flood",
      [
        tc "below threshold" flood_below_threshold;
        tc "above threshold" flood_above_threshold;
        tc "spread out fine" flood_spread_out_no_alert;
      ] );
    ( "vids.media_spam",
      [
        tc "in-order ok" spam_in_order_stream_ok;
        tc "seq gap" spam_seq_gap_detected;
        tc "ts gap" spam_ts_gap_detected;
        tc "talkspurt tolerated" spam_talkspurt_tolerated;
        tc "foreign ssrc" spam_foreign_ssrc_detected;
        tc "replay" spam_replay_detected;
        tc "small reorder ok" spam_small_reorder_tolerated;
        tc "seq wraparound ok" spam_seq_wrap_tolerated;
        tc "silence suppression ok" spam_silence_suppression_tolerated;
        tc "rtp flood" rtp_flood_detected;
        tc "dormant/resume" spam_dormant_resume;
      ] );
    ("vids.drdos", [ tc "threshold behaviour" drdos_detector ]);
    ( "vids.specs",
      [ tc "all validate" all_specs_validate; tc "figures export to dot" dot_export_of_paper_figures ] );
  ]
