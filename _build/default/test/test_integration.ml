(* End-to-end integration tests on the Figure-7 testbed: full SIP/RTP stacks
   over lossy links, with vIDS watching. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let tc name f = Alcotest.test_case name `Quick f
let tc_slow name f = Alcotest.test_case name `Slow f

module T = Voip.Testbed

let sec = Dsim.Time.of_sec

let single_call tb ~caller ~callee ~duration ~at =
  ignore
    (Dsim.Scheduler.schedule_at tb.T.sched at (fun () ->
         Voip.Ua.call caller ~callee:(Voip.Ua.aor callee) ~duration))

(* ------------------------------------------------------------------ *)
(* Clean traffic                                                       *)
(* ------------------------------------------------------------------ *)

let clean_call_completes () =
  let tb = T.make ~seed:1 ~n_ua:2 ~vids:T.Monitor () in
  single_call tb ~caller:(List.hd tb.T.uas_a) ~callee:(List.hd tb.T.uas_b)
    ~duration:(sec 10.0) ~at:(sec 2.0);
  T.run_until tb (sec 60.0);
  let m = tb.T.metrics in
  check_int "attempted" 1 (Voip.Metrics.attempted m);
  check_int "established" 1 (Voip.Metrics.established m);
  check_int "completed" 1 (Voip.Metrics.completed m);
  check_int "failed" 0 (Voip.Metrics.failed m);
  check "media flowed both ways" true (Voip.Metrics.rtp_packets_received m > 900)

let clean_call_no_false_alarms () =
  let tb = T.make ~seed:2 ~n_ua:2 ~vids:T.Monitor () in
  single_call tb ~caller:(List.hd tb.T.uas_a) ~callee:(List.hd tb.T.uas_b)
    ~duration:(sec 10.0) ~at:(sec 2.0);
  T.run_until tb (sec 60.0);
  let c = Vids.Engine.counters (T.engine_exn tb) in
  check_int "zero alerts" 0 c.Vids.Engine.alerts_raised;
  check_int "zero anomalies" 0 c.Vids.Engine.anomalies

let concurrent_calls () =
  let tb = T.make ~seed:3 ~n_ua:5 ~vids:T.Monitor () in
  List.iteri
    (fun i (caller, callee) ->
      single_call tb ~caller ~callee ~duration:(sec 8.0)
        ~at:(Dsim.Time.add (sec 2.0) (Dsim.Time.of_ms (200.0 *. float_of_int i))))
    (List.combine tb.T.uas_a tb.T.uas_b);
  T.run_until tb (sec 90.0);
  let m = tb.T.metrics in
  check_int "all complete" 5 (Voip.Metrics.completed m);
  let stats = Vids.Engine.memory_stats (T.engine_exn tb) in
  check_int "all records created" 5 stats.Vids.Fact_base.calls_created;
  check "peak tracked" true (stats.Vids.Fact_base.peak_calls >= 4);
  check_int "no alerts" 0 (Vids.Engine.counters (T.engine_exn tb)).Vids.Engine.alerts_raised

let calls_survive_loss () =
  (* 5% loss: transactions must retransmit their way through. *)
  let tb = T.make ~seed:4 ~n_ua:3 ~vids:T.Off ~loss:0.05 () in
  List.iteri
    (fun i (caller, callee) ->
      single_call tb ~caller ~callee ~duration:(sec 6.0)
        ~at:(Dsim.Time.add (sec 2.0) (sec (float_of_int i))))
    (List.combine tb.T.uas_a tb.T.uas_b);
  T.run_until tb (sec 120.0);
  let m = tb.T.metrics in
  check_int "all established despite loss" 3 (Voip.Metrics.established m);
  check_int "all completed" 3 (Voip.Metrics.completed m)

let busy_when_at_capacity () =
  let tb = T.make ~seed:5 ~n_ua:3 ~vids:T.Off () in
  let callee = List.hd tb.T.uas_b in
  (* Three simultaneous calls to one phone with max_concurrent = 2. *)
  List.iteri
    (fun i caller ->
      single_call tb ~caller ~callee ~duration:(sec 20.0)
        ~at:(Dsim.Time.add (sec 2.0) (Dsim.Time.of_ms (float_of_int i))))
    tb.T.uas_a;
  T.run_until tb (sec 60.0);
  let m = tb.T.metrics in
  check_int "two accepted" 2 (Voip.Metrics.established m);
  check_int "one refused busy" 1 (Voip.Metrics.failed m)

(* ------------------------------------------------------------------ *)
(* vIDS deployment modes                                               *)
(* ------------------------------------------------------------------ *)

let setup_delay_measured tb =
  Dsim.Stat.Summary.mean (Voip.Metrics.setup_all tb.T.metrics)

let run_one_call_mode mode seed =
  let tb = T.make ~seed ~n_ua:2 ~vids:mode () in
  single_call tb ~caller:(List.hd tb.T.uas_a) ~callee:(List.hd tb.T.uas_b)
    ~duration:(sec 5.0) ~at:(sec 2.0);
  T.run_until tb (sec 40.0);
  tb

let inline_adds_setup_delay () =
  let with_ = run_one_call_mode T.Inline 6 in
  let without = run_one_call_mode T.Off 6 in
  let delta = setup_delay_measured with_ -. setup_delay_measured without in
  (* Paper §7.2: about 100 ms added to call setup.  Two SIP crossings at
     50 ms each; allow sim noise. *)
  check "delta near 100 ms" true (delta > 0.08 && delta < 0.13)

let monitor_adds_no_delay () =
  let monitored = run_one_call_mode T.Monitor 7 in
  let off = run_one_call_mode T.Off 7 in
  let delta = Float.abs (setup_delay_measured monitored -. setup_delay_measured off) in
  check "no measurable delay" true (delta < 0.001)

let inline_adds_rtp_delay () =
  let with_ = run_one_call_mode T.Inline 8 in
  let without = run_one_call_mode T.Off 8 in
  let d_with = Dsim.Stat.Summary.mean (Dsim.Stat.Series.summary (Voip.Metrics.rtp_delay with_.T.metrics)) in
  let d_without =
    Dsim.Stat.Summary.mean (Dsim.Stat.Series.summary (Voip.Metrics.rtp_delay without.T.metrics))
  in
  let delta = d_with -. d_without in
  (* Paper §7.4: ≈1.5 ms added one-way RTP delay. *)
  check "rtp delay near 1.5 ms" true (delta > 0.001 && delta < 0.003)

(* ------------------------------------------------------------------ *)
(* Attack detection end-to-end                                         *)
(* ------------------------------------------------------------------ *)

let detected tb kind = List.length (Vids.Engine.alerts_of_kind (T.engine_exn tb) kind)

let attack_rig seed =
  let tb = T.make ~seed ~n_ua:4 ~vids:T.Monitor () in
  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  (tb, atk)

let detects_bye_dos () =
  let tb, atk = attack_rig 10 in
  Attack.Scenarios.spoofed_bye_call atk ~caller:(List.hd tb.T.uas_a)
    ~callee:(List.hd tb.T.uas_b) ~at:(sec 2.0);
  T.run_until tb (sec 40.0);
  check_int "bye dos" 1 (detected tb Vids.Alert.Bye_dos)

let detects_cancel_dos () =
  let tb, atk = attack_rig 11 in
  Attack.Scenarios.cancel_dos_call atk ~caller:(List.hd tb.T.uas_a)
    ~callee:(List.hd tb.T.uas_b) ~at:(sec 2.0);
  T.run_until tb (sec 30.0);
  check_int "cancel dos" 1 (detected tb Vids.Alert.Cancel_dos)

let detects_hijack () =
  let tb, atk = attack_rig 12 in
  Attack.Scenarios.hijack_call atk ~caller:(List.hd tb.T.uas_a) ~callee:(List.hd tb.T.uas_b)
    ~at:(sec 2.0);
  T.run_until tb (sec 40.0);
  check_int "hijack" 1 (detected tb Vids.Alert.Call_hijack)

let detects_media_spam () =
  let tb, atk = attack_rig 13 in
  Attack.Scenarios.media_spam_call atk ~caller:(List.hd tb.T.uas_a)
    ~callee:(List.hd tb.T.uas_b) ~at:(sec 2.0);
  T.run_until tb (sec 40.0);
  check_int "media spam" 1 (detected tb Vids.Alert.Media_spam)

let detects_billing_fraud () =
  let tb, atk = attack_rig 14 in
  Attack.Scenarios.billing_fraud_call atk ~caller:(List.hd tb.T.uas_a)
    ~callee:(List.hd tb.T.uas_b) ~at:(sec 2.0);
  T.run_until tb (sec 60.0);
  check_int "billing fraud" 1 (detected tb Vids.Alert.Billing_fraud)

let detects_invite_flood () =
  let tb, atk = attack_rig 15 in
  Attack.Scenarios.invite_flood atk ~target:(Voip.Ua.aor (List.hd tb.T.uas_b)) ~via_proxy:true
    ~count:20 ~interval:(Dsim.Time.of_ms 50.0) ~at:(sec 2.0);
  T.run_until tb (sec 20.0);
  check_int "invite flood" 1 (detected tb Vids.Alert.Invite_flood)

let detects_rtp_flood () =
  let tb, atk = attack_rig 16 in
  Attack.Scenarios.rtp_flood atk ~target:(Dsim.Addr.v (T.ua_b_host tb 0) 16500) ~rate_pps:400
    ~duration:(sec 2.0) ~at:(sec 2.0);
  T.run_until tb (sec 20.0);
  check_int "rtp flood" 1 (detected tb Vids.Alert.Rtp_flood)

let detects_drdos () =
  let tb, atk = attack_rig 17 in
  Attack.Scenarios.drdos atk ~victim_host:(T.ua_b_host tb 0) ~reflectors:16 ~responses:50
    ~at:(sec 2.0);
  T.run_until tb (sec 30.0);
  check_int "drdos" 1 (detected tb Vids.Alert.Drdos)

let normal_flood_rate_no_alert () =
  (* Several genuine calls to the same callee spread over time must not
     trip the flood detector. *)
  let tb = T.make ~seed:18 ~n_ua:4 ~vids:T.Monitor () in
  let callee = List.hd tb.T.uas_b in
  List.iteri
    (fun i caller ->
      single_call tb ~caller ~callee ~duration:(sec 3.0)
        ~at:(Dsim.Time.add (sec 2.0) (sec (8.0 *. float_of_int i))))
    tb.T.uas_a;
  T.run_until tb (sec 80.0);
  check_int "no flood alert" 0 (detected tb Vids.Alert.Invite_flood)

let insider_blind_spot () =
  (* An attacker behind the sensor (inside network B) attacking another B
     phone is invisible to vIDS — the placement property of Figure 1/7. *)
  let tb = T.make ~seed:19 ~n_ua:2 ~vids:T.Monitor () in
  let _node, transport = T.inside_b_attacker tb ~host:"10.2.0.99" in
  ignore
    (Dsim.Scheduler.schedule_at tb.T.sched (sec 2.0) (fun () ->
         for i = 0 to 200 do
           Voip.Transport.send_raw transport ~src:(Dsim.Addr.v "10.2.0.99" 18000)
             ~dst:(Dsim.Addr.v (T.ua_b_host tb 0) 16500)
             (Rtp.Rtp_packet.encode
                (Rtp.Rtp_packet.make ~payload_type:18 ~sequence:i
                   ~timestamp:(Int32.of_int (160 * i)) ~ssrc:5l "xxxx"))
         done));
  T.run_until tb (sec 10.0);
  let c = Vids.Engine.counters (T.engine_exn tb) in
  check_int "sensor saw nothing" 0 c.Vids.Engine.rtp_packets;
  check_int "no alert possible" 0 c.Vids.Engine.alerts_raised

let full_sweep_accuracy () =
  (* The paper's detection table: every attack over clean background, all
     detected, zero false positives (§7.5). *)
  let tb, atk = attack_rig 20 in
  let ua_a n = List.nth tb.T.uas_a n and ua_b n = List.nth tb.T.uas_b n in
  single_call tb ~caller:(ua_a 3) ~callee:(ua_b 3) ~duration:(sec 20.0) ~at:(sec 1.0);
  Attack.Scenarios.spoofed_bye_call atk ~caller:(ua_a 0) ~callee:(ua_b 0) ~at:(sec 5.0);
  Attack.Scenarios.cancel_dos_call atk ~caller:(ua_a 1) ~callee:(ua_b 1) ~at:(sec 30.0);
  Attack.Scenarios.hijack_call atk ~caller:(ua_a 2) ~callee:(ua_b 2) ~at:(sec 50.0);
  Attack.Scenarios.media_spam_call atk ~caller:(ua_a 0) ~callee:(ua_b 1) ~at:(sec 75.0);
  Attack.Scenarios.billing_fraud_call atk ~caller:(ua_a 1) ~callee:(ua_b 2) ~at:(sec 100.0);
  Attack.Scenarios.invite_flood atk ~target:(Voip.Ua.aor (ua_b 3)) ~via_proxy:true ~count:20
    ~interval:(Dsim.Time.of_ms 40.0) ~at:(sec 120.0);
  Attack.Scenarios.rtp_flood atk ~target:(Dsim.Addr.v (T.ua_b_host tb 2) 16500) ~rate_pps:400
    ~duration:(sec 2.0) ~at:(sec 130.0);
  Attack.Scenarios.drdos atk ~victim_host:(T.ua_b_host tb 3) ~reflectors:16 ~responses:50
    ~at:(sec 140.0);
  T.run_until tb (sec 220.0);
  List.iter
    (fun kind -> check_int (Vids.Alert.kind_to_string kind) 1 (detected tb kind))
    [
      Vids.Alert.Bye_dos;
      Vids.Alert.Cancel_dos;
      Vids.Alert.Call_hijack;
      Vids.Alert.Media_spam;
      Vids.Alert.Billing_fraud;
      Vids.Alert.Invite_flood;
      Vids.Alert.Rtp_flood;
      Vids.Alert.Drdos;
    ];
  check_int "no spec deviations on clean background" 0
    (detected tb Vids.Alert.Spec_deviation)

let soak_no_false_positives () =
  (* 10 minutes of the standard workload, 0.42% loss, no attacks: vIDS must
     stay silent (critical alerts = 0). *)
  let tb = T.make ~seed:21 ~vids:T.Monitor () in
  T.run_workload tb
    ~profile:
      {
        Voip.Call_generator.mean_interarrival = sec 60.0;
        mean_duration = sec 30.0;
        min_duration = sec 5.0;
      }
    ~duration:(sec 600.0) ();
  let e = T.engine_exn tb in
  let critical =
    List.filter (fun a -> a.Vids.Alert.severity = Vids.Alert.Critical) (Vids.Engine.alerts e)
  in
  check_int "no critical alerts" 0 (List.length critical);
  let m = tb.T.metrics in
  check "calls happened" true (Voip.Metrics.established m > 5);
  check "most calls complete" true
    (Voip.Metrics.completed m >= Voip.Metrics.established m - 2)

let vad_no_false_alarms () =
  (* Speech-activity detection (the paper's own codec setting) makes the
     RTP stream bursty with timestamp jumps over silences; the refined
     Figure-6 rule must not flag it. *)
  let tb = T.make ~seed:23 ~n_ua:2 ~vids:T.Monitor ~vad:true () in
  single_call tb ~caller:(List.hd tb.T.uas_a) ~callee:(List.hd tb.T.uas_b)
    ~duration:(sec 30.0) ~at:(sec 2.0);
  T.run_until tb (sec 90.0);
  let m = tb.T.metrics in
  check_int "call completed" 1 (Voip.Metrics.completed m);
  let received = Voip.Metrics.rtp_packets_received m in
  (* Roughly a 60% talk duty cycle: well below the 3000 packets of
     always-on media, well above silence. *)
  check "vad reduced packet count" true (received > 500 && received < 2700);
  let c = Vids.Engine.counters (T.engine_exn tb) in
  check_int "no alerts over vad stream" 0 c.Vids.Engine.alerts_raised;
  check_int "no anomalies" 0 c.Vids.Engine.anomalies

let vad_spam_still_detected () =
  (* The talkspurt tolerance must not blind the detector to injection. *)
  let tb = T.make ~seed:24 ~n_ua:2 ~vids:T.Monitor ~vad:true () in
  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  Attack.Scenarios.media_spam_call atk ~caller:(List.hd tb.T.uas_a)
    ~callee:(List.hd tb.T.uas_b) ~at:(sec 2.0);
  T.run_until tb (sec 40.0);
  check_int "spam detected despite vad" 1 (detected tb Vids.Alert.Media_spam)

let record_route_mode () =
  (* With record-routing the in-dialog BYE flows through both proxies; the
     call still completes and vIDS still closes the record cleanly. *)
  let tb = T.make ~seed:25 ~n_ua:2 ~vids:T.Monitor ~record_route:true () in
  single_call tb ~caller:(List.hd tb.T.uas_a) ~callee:(List.hd tb.T.uas_b)
    ~duration:(sec 8.0) ~at:(sec 2.0);
  T.run_until tb (sec 60.0);
  let m = tb.T.metrics in
  check_int "completed" 1 (Voip.Metrics.completed m);
  let c = Vids.Engine.counters (T.engine_exn tb) in
  check_int "no critical alerts" 0
    (List.length
       (List.filter
          (fun a -> a.Vids.Alert.severity = Vids.Alert.Critical)
          (Vids.Engine.alerts (T.engine_exn tb))));
  ignore c;
  (* The BYE crossed the proxies: both forwarded more requests than the
     INVITE alone. *)
  check "proxy stayed on path" true (Voip.Proxy.requests_forwarded tb.T.proxy_b >= 2)

let midcall_reinvite () =
  (* The caller renegotiates its media endpoint mid-call (paper §2.1: the
     media path changes only through a re-invite); the call survives, media
     keeps flowing to the new port, and vIDS tracks the change without
     raising anything. *)
  let tb = T.make ~seed:27 ~n_ua:2 ~vids:T.Monitor () in
  let caller = List.hd tb.T.uas_a in
  single_call tb ~caller ~callee:(List.hd tb.T.uas_b) ~duration:(sec 20.0) ~at:(sec 2.0);
  ignore
    (Dsim.Scheduler.schedule_at tb.T.sched (sec 10.0) (fun () -> Voip.Ua.reinvite_all caller));
  let received_before = ref 0 in
  ignore
    (Dsim.Scheduler.schedule_at tb.T.sched (sec 12.0) (fun () ->
         received_before := Voip.Metrics.rtp_packets_received tb.T.metrics));
  T.run_until tb (sec 60.0);
  let m = tb.T.metrics in
  check_int "call completed" 1 (Voip.Metrics.completed m);
  check "media continued after renegotiation" true
    (Voip.Metrics.rtp_packets_received m > !received_before + 200);
  let c = Vids.Engine.counters (T.engine_exn tb) in
  check_int "no alerts" 0 c.Vids.Engine.alerts_raised;
  check_int "no anomalies" 0 c.Vids.Engine.anomalies

let rtcp_flows () =
  let tb = T.make ~seed:26 ~n_ua:2 ~vids:T.Monitor () in
  single_call tb ~caller:(List.hd tb.T.uas_a) ~callee:(List.hd tb.T.uas_b)
    ~duration:(sec 12.0) ~at:(sec 2.0);
  T.run_until tb (sec 60.0);
  let m = tb.T.metrics in
  (* 12 s call, SR every 5 s from each side: at least two reports land. *)
  check "rtcp received" true (Voip.Metrics.rtcp_packets_received m >= 2);
  let c = Vids.Engine.counters (T.engine_exn tb) in
  check "vids classified rtcp" true (c.Vids.Engine.rtcp_packets >= 2);
  check_int "no alerts" 0 c.Vids.Engine.alerts_raised

let proxy_counters () =
  let tb = T.make ~seed:22 ~n_ua:2 ~vids:T.Off () in
  single_call tb ~caller:(List.hd tb.T.uas_a) ~callee:(List.hd tb.T.uas_b)
    ~duration:(sec 5.0) ~at:(sec 2.0);
  T.run_until tb (sec 30.0);
  check "proxy A forwarded requests" true (Voip.Proxy.requests_forwarded tb.T.proxy_a > 0);
  check "proxy B forwarded requests" true (Voip.Proxy.requests_forwarded tb.T.proxy_b > 0);
  check "responses came back" true (Voip.Proxy.responses_forwarded tb.T.proxy_a > 0);
  check_int "registrations" 2 (Voip.Proxy.registrations tb.T.proxy_b)

let deterministic_replay () =
  (* The whole stack — RNG, scheduler, network, stacks, IDS — is
     deterministic: the same seed reproduces the experiment exactly.  This
     is what makes every number in EXPERIMENTS.md reproducible. *)
  let run () =
    let tb = T.make ~seed:99 ~n_ua:3 ~vids:T.Inline ~vad:true () in
    T.run_workload tb
      ~profile:
        {
          Voip.Call_generator.mean_interarrival = sec 40.0;
          mean_duration = sec 15.0;
          min_duration = sec 5.0;
        }
      ~duration:(sec 180.0) ();
    let m = tb.T.metrics in
    let c = Vids.Engine.counters (T.engine_exn tb) in
    ( Voip.Metrics.attempted m,
      Voip.Metrics.completed m,
      Voip.Metrics.rtp_packets_received m,
      Dsim.Stat.Summary.mean (Voip.Metrics.setup_all m),
      c.Vids.Engine.sip_packets,
      c.Vids.Engine.rtp_packets )
  in
  let first = run () and second = run () in
  check "bit-identical runs" true (first = second)

let engine_handles_reinvite_media_move () =
  (* After a mid-call renegotiation the sensor routes RTP for the NEW
     media address to the same call record. *)
  let tb = T.make ~seed:28 ~n_ua:2 ~vids:T.Monitor () in
  let caller = List.hd tb.T.uas_a in
  single_call tb ~caller ~callee:(List.hd tb.T.uas_b) ~duration:(sec 15.0) ~at:(sec 2.0);
  ignore
    (Dsim.Scheduler.schedule_at tb.T.sched (sec 8.0) (fun () -> Voip.Ua.reinvite_all caller));
  T.run_until tb (sec 12.0);
  let base = Vids.Engine.fact_base (T.engine_exn tb) in
  (* The renegotiated endpoint (second port drawn from the caller's pool)
     is indexed. *)
  check "new media indexed" true
    (Vids.Fact_base.known_media base (Dsim.Addr.v "10.1.0.10" 16386));
  T.run_until tb (sec 60.0);
  check_int "still no alerts" 0
    (Vids.Engine.counters (T.engine_exn tb)).Vids.Engine.alerts_raised

let suite =
  [
    ( "integration.calls",
      [
        tc "clean call completes" clean_call_completes;
        tc "no false alarms" clean_call_no_false_alarms;
        tc "concurrent calls" concurrent_calls;
        tc_slow "calls survive 5% loss" calls_survive_loss;
        tc "busy at capacity" busy_when_at_capacity;
        tc "proxy counters" proxy_counters;
        tc "vad: no false alarms" vad_no_false_alarms;
        tc "vad: spam still detected" vad_spam_still_detected;
        tc "record-route mode" record_route_mode;
        tc "mid-call re-INVITE" midcall_reinvite;
        tc "rtcp flows" rtcp_flows;
      ] );
    ( "integration.deployment",
      [
        tc "inline adds ~100ms setup" inline_adds_setup_delay;
        tc "monitor adds none" monitor_adds_no_delay;
        tc "inline adds ~1.5ms rtp" inline_adds_rtp_delay;
      ] );
    ( "integration.attacks",
      [
        tc "bye dos" detects_bye_dos;
        tc "cancel dos" detects_cancel_dos;
        tc "hijack" detects_hijack;
        tc "media spam" detects_media_spam;
        tc "billing fraud" detects_billing_fraud;
        tc "invite flood" detects_invite_flood;
        tc "rtp flood" detects_rtp_flood;
        tc "drdos" detects_drdos;
        tc "normal rate no flood alert" normal_flood_rate_no_alert;
        tc "insider blind spot" insider_blind_spot;
        tc_slow "full sweep accuracy" full_sweep_accuracy;
        tc_slow "soak: no false positives" soak_no_false_positives;
        tc_slow "deterministic replay" deterministic_replay;
        tc "reinvite media move tracked" engine_handles_reinvite_media_move;
      ] );
  ]
