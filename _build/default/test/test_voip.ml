(* Unit tests for the voip layer: transport, transaction manager, proxy,
   location service, call generator, attack forgery. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let tc name f = Alcotest.test_case name `Quick f

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

(* A two-node network with a transport on each end. *)
type net_rig = {
  sched : Dsim.Scheduler.t;
  net : Dsim.Network.t;
  left : Voip.Transport.t;
  right : Voip.Transport.t;
  right_node : Dsim.Network.node;
}

let make_net () =
  let sched = Dsim.Scheduler.create () in
  let net = Dsim.Network.create sched (Dsim.Rng.create 5) in
  let a = Dsim.Network.add_node net ~name:"left" ~hosts:[ "10.0.0.1" ] in
  let b = Dsim.Network.add_node net ~name:"right" ~hosts:[ "10.0.0.2" ] in
  Dsim.Network.connect net a b ~rate_bps:0.0 ~prop_delay:(Dsim.Time.of_ms 5.0) ~loss_prob:0.0;
  {
    sched;
    net;
    left = Voip.Transport.create net a ~local:(Dsim.Addr.v "10.0.0.1" 5060);
    right = Voip.Transport.create net b ~local:(Dsim.Addr.v "10.0.0.2" 5060);
    right_node = b;
  }

let options_msg ?(call_id = "c-opt") ?(branch = "z9hG4bKopt") () =
  Sip.Msg.request ~meth:Sip.Msg_method.OPTIONS
    ~uri:(ok (Sip.Uri.parse "sip:svc@10.0.0.2"))
    ~via:(Sip.Via.make ~port:5060 ~branch "10.0.0.1")
    ~from_:(Sip.Name_addr.make ~params:[ ("tag", Some "t1") ] (ok (Sip.Uri.parse "sip:a@x")))
    ~to_:(Sip.Name_addr.make (ok (Sip.Uri.parse "sip:svc@10.0.0.2")))
    ~call_id
    ~cseq:(Sip.Cseq.make 1 Sip.Msg_method.OPTIONS)
    ()

(* ------------------------------------------------------------------ *)
(* Transport                                                           *)
(* ------------------------------------------------------------------ *)

let transport_delivers_msg () =
  let rig = make_net () in
  let got = ref None in
  Dsim.Network.set_handler rig.right_node (fun packet ->
      got := Some packet.Dsim.Packet.payload);
  Voip.Transport.send_msg rig.left (options_msg ()) (Dsim.Addr.v "10.0.0.2" 5060);
  Dsim.Scheduler.run rig.sched;
  match !got with
  | Some payload -> check "parses back" true (Result.is_ok (Sip.Msg.parse payload))
  | None -> Alcotest.fail "not delivered"

let transport_raw_chooses_src () =
  let rig = make_net () in
  let got = ref None in
  Dsim.Network.set_handler rig.right_node (fun packet -> got := Some packet.Dsim.Packet.src);
  Voip.Transport.send_raw rig.left ~src:(Dsim.Addr.v "10.0.0.1" 40000)
    ~dst:(Dsim.Addr.v "10.0.0.2" 30000) "payload";
  Dsim.Scheduler.run rig.sched;
  check "spoofable source" true (!got = Some (Dsim.Addr.v "10.0.0.1" 40000))

(* ------------------------------------------------------------------ *)
(* Transaction manager                                                 *)
(* ------------------------------------------------------------------ *)

type mgr_log = {
  mutable requests : Sip.Msg.t list;
  mutable cancels : (Sip.Msg.t * Sip.Transaction.Server.t option) list;
  mutable acks : Sip.Msg.t list;
  mutable strays : Sip.Msg.t list;
}

let make_mgr transport =
  let log = { requests = []; cancels = []; acks = []; strays = [] } in
  let callbacks =
    {
      Voip.Txn_manager.on_request = (fun msg ~src:_ _txn -> log.requests <- msg :: log.requests);
      on_cancel = (fun msg ~src:_ txn -> log.cancels <- (msg, txn) :: log.cancels);
      on_ack = (fun msg ~src:_ -> log.acks <- msg :: log.acks);
      on_stray_response = (fun msg ~src:_ -> log.strays <- msg :: log.strays);
    }
  in
  (Voip.Txn_manager.create transport callbacks, log)

let packet_of rig msg = Dsim.Network.make_packet rig.net ~src:(Dsim.Addr.v "10.0.0.1" 5060)
    ~dst:(Dsim.Addr.v "10.0.0.2" 5060) (Sip.Msg.serialize msg)

let mgr_creates_server_txn_once () =
  let rig = make_net () in
  let mgr, log = make_mgr rig.right in
  let msg = options_msg () in
  Voip.Txn_manager.handle_packet mgr (packet_of rig msg);
  Voip.Txn_manager.handle_packet mgr (packet_of rig msg);
  check_int "TU saw the request once" 1 (List.length log.requests);
  check_int "one server txn" 1 (Voip.Txn_manager.active_servers mgr)

let mgr_matches_response_to_client () =
  let rig = make_net () in
  let mgr, log = make_mgr rig.left in
  let got = ref [] in
  let msg = options_msg () in
  ignore
    (Voip.Txn_manager.request mgr msg
       ~dst:(Dsim.Addr.v "10.0.0.2" 5060)
       ~on_response:(fun r -> got := r :: !got)
       ~on_timeout:(fun () -> ()));
  check_int "client registered" 1 (Voip.Txn_manager.active_clients mgr);
  let response = Sip.Msg.response_to msg ~code:200 ~to_tag:"x" () in
  Voip.Txn_manager.handle_packet mgr
    (Dsim.Network.make_packet rig.net ~src:(Dsim.Addr.v "10.0.0.2" 5060)
       ~dst:(Dsim.Addr.v "10.0.0.1" 5060) (Sip.Msg.serialize response));
  check_int "delivered" 1 (List.length !got);
  check_int "no strays" 0 (List.length log.strays)

let mgr_stray_response () =
  let rig = make_net () in
  let mgr, log = make_mgr rig.left in
  let response = Sip.Msg.response_to (options_msg ()) ~code:200 ~to_tag:"x" () in
  Voip.Txn_manager.handle_packet mgr
    (Dsim.Network.make_packet rig.net ~src:(Dsim.Addr.v "10.0.0.2" 5060)
       ~dst:(Dsim.Addr.v "10.0.0.1" 5060) (Sip.Msg.serialize response));
  check_int "stray surfaced" 1 (List.length log.strays)

let mgr_cancel_unmatched_481 () =
  let rig = make_net () in
  let sent = ref [] in
  Dsim.Network.set_handler rig.right_node (fun _ -> ());
  (* Watch what the manager sends back. *)
  let watch_transport = rig.right in
  let mgr, log = make_mgr watch_transport in
  Dsim.Network.set_tap rig.right_node None;
  let cancel =
    Attack.Forge.spoofed_cancel ~call_id:"nope"
      ~target_uri:(ok (Sip.Uri.parse "sip:svc@10.0.0.2"))
      ~from_uri:(ok (Sip.Uri.parse "sip:a@x"))
      ~from_tag:"t9" ~via_host:"10.0.0.1" ~branch:"z9hG4bKnope" ~cseq:1 ()
  in
  (* Capture the 481 on the left node. *)
  (match Dsim.Network.find_node rig.net ~host:"10.0.0.1" with
  | Some left_node -> Dsim.Network.set_handler left_node (fun p -> sent := p :: !sent)
  | None -> Alcotest.fail "left node");
  Voip.Txn_manager.handle_packet mgr (packet_of rig cancel);
  Dsim.Scheduler.run rig.sched;
  check_int "on_cancel with no txn" 1 (List.length log.cancels);
  (match log.cancels with
  | [ (_, None) ] -> ()
  | _ -> Alcotest.fail "expected no matching INVITE txn");
  match !sent with
  | [ p ] -> (
      match Sip.Msg.parse p.Dsim.Packet.payload with
      | Ok resp -> check "481 returned" true (Sip.Msg.status_of resp = Some 481)
      | Error _ -> Alcotest.fail "unparsable response")
  | _ -> Alcotest.fail "expected exactly one response"

(* ------------------------------------------------------------------ *)
(* Proxy                                                               *)
(* ------------------------------------------------------------------ *)

type proxy_rig = {
  p_sched : Dsim.Scheduler.t;
  p_net : Dsim.Network.t;
  proxy : Voip.Proxy.t;
  ua_node : Dsim.Network.node;
  far_node : Dsim.Network.node;
}

let make_proxy ?record_route () =
  let sched = Dsim.Scheduler.create () in
  let net = Dsim.Network.create sched (Dsim.Rng.create 9) in
  let proxy_node = Dsim.Network.add_node net ~name:"proxy" ~hosts:[ "10.0.0.9" ] in
  let ua_node = Dsim.Network.add_node net ~name:"ua" ~hosts:[ "10.0.0.1" ] in
  let far_node = Dsim.Network.add_node net ~name:"far" ~hosts:[ "10.9.9.9" ] in
  let lan a b = Dsim.Network.connect net a b ~rate_bps:0.0 ~prop_delay:(Dsim.Time.of_ms 1.0) ~loss_prob:0.0 in
  lan ua_node proxy_node;
  lan proxy_node far_node;
  let dns domain = if domain = "far.example" then Some (Dsim.Addr.v "10.9.9.9" 5060) else None in
  let proxy =
    Voip.Proxy.create ?record_route
      (Voip.Transport.create net proxy_node ~local:(Dsim.Addr.v "10.0.0.9" 5060))
      ~domain:"home.example" ~dns
  in
  Dsim.Network.set_handler proxy_node (Voip.Proxy.handle_packet proxy);
  { p_sched = sched; p_net = net; proxy; ua_node; far_node }

let send_to_proxy rig msg =
  let packet =
    Dsim.Network.make_packet rig.p_net ~src:(Dsim.Addr.v "10.0.0.1" 5060)
      ~dst:(Dsim.Addr.v "10.0.0.9" 5060) (Sip.Msg.serialize msg)
  in
  Dsim.Network.send rig.p_net ~from:rig.ua_node packet

let invite_to domain user =
  Sip.Msg.request ~meth:Sip.Msg_method.INVITE
    ~uri:(Sip.Uri.make ~user domain)
    ~via:(Sip.Via.make ~port:5060 ~branch:"z9hG4bKpx" "10.0.0.1")
    ~from_:(Sip.Name_addr.make ~params:[ ("tag", Some "t1") ] (Sip.Uri.make ~user:"me" "home.example"))
    ~to_:(Sip.Name_addr.make (Sip.Uri.make ~user domain))
    ~call_id:"c-proxy"
    ~cseq:(Sip.Cseq.make 1 Sip.Msg_method.INVITE)
    ~contact:(Sip.Name_addr.make (Sip.Uri.make ~user:"me" ~port:5060 "10.0.0.1"))
    ()

let proxy_registers_and_routes () =
  let rig = make_proxy () in
  (* Register a local user. *)
  let register =
    Sip.Msg.request ~meth:Sip.Msg_method.REGISTER
      ~uri:(Sip.Uri.make "home.example")
      ~via:(Sip.Via.make ~port:5060 ~branch:"z9hG4bKr1" "10.0.0.1")
      ~from_:(Sip.Name_addr.make ~params:[ ("tag", Some "t") ] (Sip.Uri.make ~user:"me" "home.example"))
      ~to_:(Sip.Name_addr.make (Sip.Uri.make ~user:"me" "home.example"))
      ~call_id:"c-reg"
      ~cseq:(Sip.Cseq.make 1 Sip.Msg_method.REGISTER)
      ~contact:(Sip.Name_addr.make (Sip.Uri.make ~user:"me" ~port:5060 "10.0.0.1"))
      ()
  in
  send_to_proxy rig register;
  Dsim.Scheduler.run rig.p_sched;
  check_int "registration recorded" 1 (Voip.Proxy.registrations rig.proxy);
  check "location bound" true
    (Voip.Location.lookup (Voip.Proxy.location rig.proxy) ~aor:"me@home.example"
    = Some (Dsim.Addr.v "10.0.0.1" 5060));
  (* An INVITE to that user routes back to its contact. *)
  let delivered = ref None in
  Dsim.Network.set_handler rig.ua_node (fun p -> delivered := Some p);
  send_to_proxy rig (invite_to "home.example" "me");
  Dsim.Scheduler.run rig.p_sched;
  (match !delivered with
  | Some p -> (
      match Sip.Msg.parse p.Dsim.Packet.payload with
      | Ok msg ->
          check_int "proxy pushed a via" 2 (List.length (ok (Sip.Msg.vias msg)));
          check "max-forwards decremented" true (Sip.Msg.max_forwards msg = Some 69)
      | Error _ -> Alcotest.fail "unparsable")
  | None -> Alcotest.fail "not routed to contact");
  check_int "forwarded" 1 (Voip.Proxy.requests_forwarded rig.proxy)

let proxy_foreign_domain_via_dns () =
  let rig = make_proxy () in
  let delivered = ref false in
  Dsim.Network.set_handler rig.far_node (fun _ -> delivered := true);
  send_to_proxy rig (invite_to "far.example" "bob");
  Dsim.Scheduler.run rig.p_sched;
  check "reached far proxy" true !delivered

let proxy_unknown_user_404 () =
  let rig = make_proxy () in
  let response = ref None in
  Dsim.Network.set_handler rig.ua_node (fun p -> response := Some p);
  send_to_proxy rig (invite_to "home.example" "ghost");
  Dsim.Scheduler.run rig.p_sched;
  match !response with
  | Some p -> (
      match Sip.Msg.parse p.Dsim.Packet.payload with
      | Ok msg -> check "404" true (Sip.Msg.status_of msg = Some 404)
      | Error _ -> Alcotest.fail "unparsable")
  | None -> Alcotest.fail "no response"

let proxy_max_forwards_483 () =
  let rig = make_proxy () in
  let invite = invite_to "far.example" "bob" in
  let exhausted =
    { invite with Sip.Msg.headers = Sip.Header.set invite.Sip.Msg.headers "Max-Forwards" "0" }
  in
  let response = ref None in
  Dsim.Network.set_handler rig.ua_node (fun p -> response := Some p);
  send_to_proxy rig exhausted;
  Dsim.Scheduler.run rig.p_sched;
  match !response with
  | Some p -> (
      match Sip.Msg.parse p.Dsim.Packet.payload with
      | Ok msg -> check "483" true (Sip.Msg.status_of msg = Some 483)
      | Error _ -> Alcotest.fail "unparsable")
  | None -> Alcotest.fail "no response"

let proxy_record_route_inserts () =
  let rig = make_proxy ~record_route:true () in
  let delivered = ref None in
  Dsim.Network.set_handler rig.far_node (fun p -> delivered := Some p);
  send_to_proxy rig (invite_to "far.example" "bob");
  Dsim.Scheduler.run rig.p_sched;
  match !delivered with
  | Some p -> (
      match Sip.Msg.parse p.Dsim.Packet.payload with
      | Ok msg ->
          check_int "record-route present" 1
            (List.length (Sip.Header.get_all msg.Sip.Msg.headers "Record-Route"))
      | Error _ -> Alcotest.fail "unparsable")
  | None -> Alcotest.fail "not forwarded"

let proxy_loose_route_forwarding () =
  let rig = make_proxy () in
  (* A request whose Route names this proxy, with the final target a raw
     contact address: the proxy pops its Route and forwards directly. *)
  let invite = invite_to "elsewhere.example" "bob" in
  let routed =
    {
      invite with
      Sip.Msg.headers =
        Sip.Header.add_first invite.Sip.Msg.headers "Route" "<sip:10.0.0.9:5060;lr>";
      start =
        Sip.Msg.Request
          {
            meth = Sip.Msg_method.INVITE;
            uri = ok (Sip.Uri.parse "sip:bob@10.9.9.9:5060");
          };
    }
  in
  let delivered = ref None in
  Dsim.Network.set_handler rig.far_node (fun p -> delivered := Some p);
  send_to_proxy rig routed;
  Dsim.Scheduler.run rig.p_sched;
  match !delivered with
  | Some p -> (
      match Sip.Msg.parse p.Dsim.Packet.payload with
      | Ok msg ->
          check_int "route consumed" 0
            (List.length (Sip.Header.get_all msg.Sip.Msg.headers "Route"))
      | Error _ -> Alcotest.fail "unparsable")
  | None -> Alcotest.fail "not forwarded"

(* ------------------------------------------------------------------ *)
(* Location / call generator / metrics                                 *)
(* ------------------------------------------------------------------ *)

let location_basics () =
  let loc = Voip.Location.create () in
  Voip.Location.bind loc ~aor:"a@x" ~contact:(Dsim.Addr.v "h" 1);
  check "lookup" true (Voip.Location.lookup loc ~aor:"a@x" = Some (Dsim.Addr.v "h" 1));
  Voip.Location.bind loc ~aor:"a@x" ~contact:(Dsim.Addr.v "h" 2);
  check "rebind replaces" true (Voip.Location.lookup loc ~aor:"a@x" = Some (Dsim.Addr.v "h" 2));
  Voip.Location.unbind loc ~aor:"a@x";
  check "unbound" true (Voip.Location.lookup loc ~aor:"a@x" = None);
  check_str "aor of uri" "bob@b.example"
    (Voip.Location.aor_of_uri (ok (Sip.Uri.parse "sip:bob@b.example:5070")))

let generator_respects_horizon () =
  let tb = Voip.Testbed.make ~seed:33 ~n_ua:3 ~vids:Voip.Testbed.Off () in
  let profile =
    {
      Voip.Call_generator.mean_interarrival = Dsim.Time.of_sec 30.0;
      mean_duration = Dsim.Time.of_sec 10.0;
      min_duration = Dsim.Time.of_sec 5.0;
    }
  in
  Voip.Testbed.run_workload tb ~profile ~duration:(Dsim.Time.of_sec 300.0) ();
  let arrivals = Voip.Metrics.arrivals tb.Voip.Testbed.metrics in
  check "arrivals happened" true (Dsim.Stat.Series.length arrivals > 3);
  List.iter
    (fun (at, duration) ->
      check "arrival before horizon" true Dsim.Time.(at <= Dsim.Time.of_sec 300.0);
      check "duration clamped" true (duration >= 5.0))
    (Dsim.Stat.Series.to_list arrivals)

let forge_messages_parse () =
  let bye =
    Attack.Forge.spoofed_bye ~call_id:"c" ~from_uri:(ok (Sip.Uri.parse "sip:a@x"))
      ~from_tag:"t1"
      ~to_uri:(ok (Sip.Uri.parse "sip:b@y"))
      ~to_tag:"t2" ~via_host:"evil" ~branch:"z9hG4bKe" ~cseq:9 ()
  in
  let reparsed = ok (Sip.Msg.parse (Sip.Msg.serialize bye)) in
  check "bye method" true (Sip.Msg.method_of reparsed = Some Sip.Msg_method.BYE);
  check "from tag" true (Sip.Name_addr.tag (ok (Sip.Msg.from_ reparsed)) = Some "t1");
  let response =
    Attack.Forge.fake_response ~code:200 ~call_id:"r" ~to_host:"victim" ~branch:"z9hG4bKr" ()
  in
  check "fake response is response" true
    (Sip.Msg.is_response (ok (Sip.Msg.parse (Sip.Msg.serialize response))));
  let rtp = Attack.Forge.rtp_with ~ssrc:5l ~seq:1 ~ts:2l ~payload_len:10 () in
  check "rtp decodes" true (Result.is_ok (Rtp.Rtp_packet.decode rtp))

let metrics_accounting () =
  let m = Voip.Metrics.create () in
  Voip.Metrics.incr_attempted m;
  Voip.Metrics.incr_established m;
  Voip.Metrics.incr_completed m;
  Voip.Metrics.record_setup m ~caller:"x" ~at:0 ~delay:(Dsim.Time.of_ms 100.0);
  Voip.Metrics.record_setup m ~caller:"x" ~at:1 ~delay:(Dsim.Time.of_ms 300.0);
  check_int "attempted" 1 (Voip.Metrics.attempted m);
  Alcotest.(check (float 1e-9))
    "mean setup" 0.2
    (Dsim.Stat.Summary.mean (Voip.Metrics.setup_all m));
  Alcotest.(check (list string)) "callers" [ "x" ] (Voip.Metrics.callers m);
  check "series exists" true (Voip.Metrics.setup_series m ~caller:"x" <> None);
  check "missing caller" true (Voip.Metrics.setup_series m ~caller:"y" = None)

let suite =
  [
    ( "voip.transport",
      [ tc "delivers message" transport_delivers_msg; tc "raw src spoofing" transport_raw_chooses_src ] );
    ( "voip.txn_manager",
      [
        tc "server txn created once" mgr_creates_server_txn_once;
        tc "response matched" mgr_matches_response_to_client;
        tc "stray response" mgr_stray_response;
        tc "unmatched CANCEL gets 481" mgr_cancel_unmatched_481;
      ] );
    ( "voip.proxy",
      [
        tc "registrar + local routing" proxy_registers_and_routes;
        tc "foreign domain via dns" proxy_foreign_domain_via_dns;
        tc "unknown user 404" proxy_unknown_user_404;
        tc "max-forwards 483" proxy_max_forwards_483;
        tc "record-route inserted" proxy_record_route_inserts;
        tc "loose route forwarding" proxy_loose_route_forwarding;
      ] );
    ( "voip.support",
      [
        tc "location service" location_basics;
        tc "generator horizon" generator_respects_horizon;
        tc "forged messages parse" forge_messages_parse;
        tc "metrics accounting" metrics_accounting;
      ] );
  ]
