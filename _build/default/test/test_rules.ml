(* Tests for the baseline's textual rule language. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let tc name f = Alcotest.test_case name `Quick f

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

let alloc = Dsim.Packet.allocator ()

let packet ~src ~dst payload = Dsim.Packet.make alloc ~src ~dst ~sent_at:0 payload

let cancel_text =
  "CANCEL sip:b@y SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bKc\r\nFrom: <sip:a@x>;tag=1\r\nTo: <sip:b@y>\r\nCall-ID: c\r\nCSeq: 1 CANCEL\r\n\r\n"

let invite_text =
  "INVITE sip:b@y SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bKi\r\nFrom: <sip:a@x>;tag=1\r\nTo: <sip:b@y>\r\nCall-ID: c\r\nCSeq: 1 INVITE\r\n\r\n"

let rtp_bytes pt =
  Rtp.Rtp_packet.encode
    (Rtp.Rtp_packet.make ~payload_type:pt ~sequence:1 ~timestamp:0l ~ssrc:1l "x")

let sip_addr h = Dsim.Addr.v h 5060

let rule_header_parsing () =
  check "minimal" true
    (Result.is_ok (Baseline.Rule_lang.parse_rule "alert any any any -> any any"));
  check "specific" true
    (Result.is_ok
       (Baseline.Rule_lang.parse_rule "alert sip 1.2.3.4 5060 -> 5.6.7.8 5060 (msg:\"x\";)"));
  check "bad proto" true
    (Result.is_error (Baseline.Rule_lang.parse_rule "alert tcp any any -> any any"));
  check "bad arrow" true
    (Result.is_error (Baseline.Rule_lang.parse_rule "alert sip any any <- any any"));
  check "bad port" true
    (Result.is_error (Baseline.Rule_lang.parse_rule "alert sip any 99999 -> any any"));
  check "bad option" true
    (Result.is_error (Baseline.Rule_lang.parse_rule "alert sip any any -> any any (bogus:1;)"));
  check "bad kind" true
    (Result.is_error
       (Baseline.Rule_lang.parse_rule "alert sip any any -> any any (kind:nonsense;)"))

let rule_method_match () =
  let rule =
    ok
      (Baseline.Rule_lang.parse_rule
         "alert sip any any -> any 5060 (msg:\"cancel\"; method:CANCEL; kind:cancel-dos;)")
  in
  let snort = Baseline.Snort_like.create [ rule ] in
  let hits =
    Baseline.Snort_like.process snort
      (packet ~src:(sip_addr "atk") ~dst:(sip_addr "victim") cancel_text)
  in
  check_int "cancel matches" 1 (List.length hits);
  check "kind mapped" true ((List.hd hits).Vids.Alert.kind = Vids.Alert.Cancel_dos);
  let misses =
    Baseline.Snort_like.process snort
      (packet ~src:(sip_addr "atk") ~dst:(sip_addr "victim") invite_text)
  in
  check_int "invite does not" 0 (List.length misses)

let rule_host_port_match () =
  let rule =
    ok (Baseline.Rule_lang.parse_rule "alert sip 203.0.113.66 any -> any 5060 (msg:\"bad host\";)")
  in
  let snort = Baseline.Snort_like.create [ rule ] in
  check_int "matching host" 1
    (List.length
       (Baseline.Snort_like.process snort
          (packet ~src:(sip_addr "203.0.113.66") ~dst:(sip_addr "v") invite_text)));
  check_int "other host" 0
    (List.length
       (Baseline.Snort_like.process snort
          (packet ~src:(sip_addr "10.0.0.1") ~dst:(sip_addr "v") invite_text)))

let rule_payload_type_match () =
  let rule =
    ok
      (Baseline.Rule_lang.parse_rule
         "alert rtp any any -> any any (msg:\"codec\"; payload_type:99;)")
  in
  let snort = Baseline.Snort_like.create [ rule ] in
  let media_packet pt =
    packet ~src:(Dsim.Addr.v "a" 16384) ~dst:(Dsim.Addr.v "b" 20000) (rtp_bytes pt)
  in
  check_int "pt 99 matches" 1 (List.length (Baseline.Snort_like.process snort (media_packet 99)));
  check_int "pt 18 does not" 0
    (List.length (Baseline.Snort_like.process snort (media_packet 18)))

let rule_content_match () =
  let rule =
    ok
      (Baseline.Rule_lang.parse_rule
         "alert sip any any -> any any (msg:\"needle\"; content:\"Call-ID: c\";)")
  in
  let snort = Baseline.Snort_like.create [ rule ] in
  check_int "content present" 1
    (List.length
       (Baseline.Snort_like.process snort (packet ~src:(sip_addr "a") ~dst:(sip_addr "b") invite_text)))

let rule_code_match () =
  let resp =
    "SIP/2.0 486 Busy Here\r\nVia: SIP/2.0/UDP h;branch=z9hG4bKr\r\nFrom: <sip:a@x>;tag=1\r\nTo: <sip:b@y>;tag=2\r\nCall-ID: c\r\nCSeq: 1 INVITE\r\n\r\n"
  in
  let rule =
    ok (Baseline.Rule_lang.parse_rule "alert sip any any -> any any (msg:\"busy\"; code:486;)")
  in
  let snort = Baseline.Snort_like.create [ rule ] in
  check_int "486 matches" 1
    (List.length
       (Baseline.Snort_like.process snort (packet ~src:(sip_addr "a") ~dst:(sip_addr "b") resp)));
  check_int "cancel does not" 0
    (List.length
       (Baseline.Snort_like.process snort
          (packet ~src:(sip_addr "a") ~dst:(sip_addr "b") cancel_text)))

let ruleset_parsing () =
  let rules = ok (Baseline.Rule_lang.parse_rules Baseline.Rule_lang.default_ruleset) in
  check_int "three rules" 3 (List.length rules);
  (match Baseline.Rule_lang.parse_rules "alert sip any any -> any any\nbroken line\n" with
  | Error e -> check "line number in error" true (String.length e > 0 && String.sub e 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "should fail");
  check "comments skipped" true
    (Result.is_ok (Baseline.Rule_lang.parse_rules "# only a comment\n\n"))

let ruleset_names_rules () =
  let rules = ok (Baseline.Rule_lang.parse_rules Baseline.Rule_lang.default_ruleset) in
  check_str "first rule name" "external CANCEL" (List.hd rules).Baseline.Snort_like.name

let suite =
  [
    ( "baseline.rule_lang",
      [
        tc "header parsing" rule_header_parsing;
        tc "method match" rule_method_match;
        tc "host/port match" rule_host_port_match;
        tc "payload type match" rule_payload_type_match;
        tc "content match" rule_content_match;
        tc "code match" rule_code_match;
        tc "ruleset parsing" ruleset_parsing;
        tc "rule naming" ruleset_names_rules;
      ] );
  ]
