test/main.mli:
