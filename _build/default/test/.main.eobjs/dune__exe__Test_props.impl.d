test/test_props.ml: Array Baseline Dsim Efsm Float Gen Int Int32 List Printf QCheck QCheck_alcotest Rtp Sdp Sip String Vids
