test/test_extensions.ml: Alcotest Attack Dsim Efsm Filename List Result String Sys Vids Voip
