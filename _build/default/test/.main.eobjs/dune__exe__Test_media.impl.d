test/test_media.ml: Alcotest Bytes Char Dsim Int32 List Option Result Rtp Sdp String
