test/test_vids_machines.ml: Alcotest Dsim Efsm List String Vids
