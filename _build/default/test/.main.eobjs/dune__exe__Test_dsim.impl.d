test/test_dsim.ml: Alcotest Array Dsim Float Format Int Int64 List String
