test/test_voip.ml: Alcotest Attack Dsim List Result Rtp Sip Voip
