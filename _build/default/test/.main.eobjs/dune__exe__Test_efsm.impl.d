test/test_efsm.ml: Alcotest Dsim Efsm List Result String
