test/test_sip.ml: Alcotest Dsim Hashtbl List Result Sip String
