test/test_rules.ml: Alcotest Baseline Dsim List Result Rtp String Vids
