test/test_engine.ml: Alcotest Baseline Dsim Efsm Format Int32 List Option Printf Rtp Sip String Vids
