test/test_auth.ml: Alcotest Attack Dsim List Result Sip String Vids Voip
