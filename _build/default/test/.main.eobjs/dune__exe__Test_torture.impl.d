test/test_torture.ml: Alcotest Bytes Char List Printf Result Rtp Sdp Sip String
