test/test_integration.ml: Alcotest Attack Dsim Float Int32 List Rtp Vids Voip
