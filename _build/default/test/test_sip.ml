(* Unit tests for the SIP stack: URIs, headers, messages, transactions,
   dialogs. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let tc name f = Alcotest.test_case name `Quick f

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* ------------------------------------------------------------------ *)
(* URI                                                                 *)
(* ------------------------------------------------------------------ *)

let uri_full () =
  let u = ok (Sip.Uri.parse "sip:alice@example.com:5070;transport=udp;lr?X-h=1") in
  check_str "scheme" "sip" u.Sip.Uri.scheme;
  check "user" true (u.Sip.Uri.user = Some "alice");
  check_str "host" "example.com" u.Sip.Uri.host;
  check "port" true (u.Sip.Uri.port = Some 5070);
  check "transport param" true (Sip.Uri.param u "transport" = Some (Some "udp"));
  check "lr flag" true (Sip.Uri.param u "lr" = Some None);
  check "headers" true (u.Sip.Uri.headers = Some "X-h=1")

let uri_minimal () =
  let u = ok (Sip.Uri.parse "sip:example.com") in
  check "no user" true (u.Sip.Uri.user = None);
  check "no port" true (u.Sip.Uri.port = None);
  check_str "to_string" "sip:example.com" (Sip.Uri.to_string u)

let uri_roundtrip () =
  let samples =
    [
      "sip:a@b.example";
      "sips:a@b.example:5061";
      "sip:b.example;maddr=10.0.0.1";
      "sip:user@host:1;p1=v1;flag?h=1";
    ]
  in
  List.iter (fun s -> check_str s s (Sip.Uri.to_string (ok (Sip.Uri.parse s)))) samples

let uri_errors () =
  check "no scheme" true (Result.is_error (Sip.Uri.parse "example.com"));
  check "bad scheme" true (Result.is_error (Sip.Uri.parse "http://x.com"));
  check "empty host" true (Result.is_error (Sip.Uri.parse "sip:alice@"));
  check "bad port" true (Result.is_error (Sip.Uri.parse "sip:h:abc"))

let uri_equality () =
  let a = ok (Sip.Uri.parse "sip:alice@Example.COM") in
  let b = ok (Sip.Uri.parse "sip:alice@example.com") in
  check "host case-insensitive" true (Sip.Uri.equal a b);
  let c = ok (Sip.Uri.parse "sip:bob@example.com") in
  check "different user" false (Sip.Uri.equal a c)

let uri_with_param () =
  let u = ok (Sip.Uri.parse "sip:h;a=1") in
  let u = Sip.Uri.with_param u "a" (Some "2") in
  check "replaced" true (Sip.Uri.param u "a" = Some (Some "2"))

(* ------------------------------------------------------------------ *)
(* Headers                                                             *)
(* ------------------------------------------------------------------ *)

let header_canonical () =
  check_str "compact i" "Call-ID" (Sip.Header.canonical_name "i");
  check_str "compact v" "Via" (Sip.Header.canonical_name "v");
  check_str "cseq" "CSeq" (Sip.Header.canonical_name "cseq");
  check_str "mixed case" "Max-Forwards" (Sip.Header.canonical_name "MAX-FORWARDS");
  check_str "unknown" "X-Custom-Thing" (Sip.Header.canonical_name "x-custom-thing")

let header_multi () =
  let h = Sip.Header.empty in
  let h = Sip.Header.add h "Via" "v1" in
  let h = Sip.Header.add h "Via" "v2" in
  let h = Sip.Header.add_first h "Via" "v0" in
  Alcotest.(check (list string)) "ordered" [ "v0"; "v1"; "v2" ] (Sip.Header.get_all h "Via");
  check "first" true (Sip.Header.get h "Via" = Some "v0");
  let h = Sip.Header.remove_first h "Via" in
  Alcotest.(check (list string)) "popped" [ "v1"; "v2" ] (Sip.Header.get_all h "Via")

let header_comma_split () =
  let h = Sip.Header.add Sip.Header.empty "Route" "<sip:a;lr>, <sip:b,c@x>, \"d,e\" <sip:f>" in
  Alcotest.(check (list string))
    "split respects brackets/quotes"
    [ "<sip:a;lr>"; "<sip:b,c@x>"; "\"d,e\" <sip:f>" ]
    (Sip.Header.get_all h "Route")

let header_set_remove () =
  let h = Sip.Header.add Sip.Header.empty "To" "x" in
  let h = Sip.Header.set h "To" "y" in
  check "replaced" true (Sip.Header.get h "To" = Some "y");
  let h = Sip.Header.remove h "To" in
  check "gone" false (Sip.Header.mem h "To")

(* ------------------------------------------------------------------ *)
(* Name-addr                                                           *)
(* ------------------------------------------------------------------ *)

let name_addr_display () =
  let na = ok (Sip.Name_addr.parse "\"Alice Smith\" <sip:alice@a.example>;tag=88sja8x") in
  check "display" true (na.Sip.Name_addr.display = Some "Alice Smith");
  check "tag" true (Sip.Name_addr.tag na = Some "88sja8x");
  check_str "uri host" "a.example" na.Sip.Name_addr.uri.Sip.Uri.host

let name_addr_bare () =
  (* Params after a bare addr-spec belong to the header (RFC 3261). *)
  let na = ok (Sip.Name_addr.parse "sip:bob@b.example;tag=99") in
  check "tag is header param" true (Sip.Name_addr.tag na = Some "99");
  check "uri has no params" true (na.Sip.Name_addr.uri.Sip.Uri.params = [])

let name_addr_roundtrip () =
  let na = ok (Sip.Name_addr.parse "<sip:x@y>;tag=1") in
  check_str "serialized" "<sip:x@y>;tag=1" (Sip.Name_addr.to_string na)

let name_addr_with_tag () =
  let na = ok (Sip.Name_addr.parse "<sip:x@y>") in
  check "no tag" true (Sip.Name_addr.tag na = None);
  let na = Sip.Name_addr.with_tag na "abc" in
  check "tag added" true (Sip.Name_addr.tag na = Some "abc");
  let na = Sip.Name_addr.with_tag na "def" in
  check "tag replaced" true (Sip.Name_addr.tag na = Some "def")

let name_addr_errors () =
  check "unmatched <" true (Result.is_error (Sip.Name_addr.parse "<sip:x@y"));
  check "bad uri" true (Result.is_error (Sip.Name_addr.parse "<nonsense>"))

(* ------------------------------------------------------------------ *)
(* Via / CSeq                                                          *)
(* ------------------------------------------------------------------ *)

let via_parse () =
  let v = ok (Sip.Via.parse "SIP/2.0/UDP pc33.example.com:5066;branch=z9hG4bK776;received=1.2.3.4") in
  check_str "transport" "UDP" v.Sip.Via.transport;
  check_str "host" "pc33.example.com" v.Sip.Via.host;
  check "port" true (v.Sip.Via.port = Some 5066);
  check "branch" true (Sip.Via.branch v = Some "z9hG4bK776");
  check "received" true (Sip.Via.param v "received" = Some (Some "1.2.3.4"));
  check_str "sent-by" "pc33.example.com:5066" (Dsim.Addr.to_string (Sip.Via.sent_by v))

let via_default_port () =
  let v = ok (Sip.Via.parse "SIP/2.0/UDP host.example") in
  check_int "default 5060" 5060 (Dsim.Addr.port (Sip.Via.sent_by v))

let via_roundtrip () =
  let s = "SIP/2.0/UDP h:5060;branch=z9hG4bKxyz" in
  check_str "roundtrip" s (Sip.Via.to_string (ok (Sip.Via.parse s)))

let via_errors () =
  check "bad protocol" true (Result.is_error (Sip.Via.parse "SIP/1.0/UDP h"));
  check "no sent-by" true (Result.is_error (Sip.Via.parse "SIP/2.0/UDP"));
  check "bad port" true (Result.is_error (Sip.Via.parse "SIP/2.0/UDP h:x"))

let cseq_parse () =
  let c = ok (Sip.Cseq.parse "314159 INVITE") in
  check_int "number" 314159 c.Sip.Cseq.number;
  check "method" true (Sip.Msg_method.equal c.Sip.Cseq.meth Sip.Msg_method.INVITE);
  check_str "roundtrip" "314159 INVITE" (Sip.Cseq.to_string c);
  let n = Sip.Cseq.next c Sip.Msg_method.BYE in
  check_int "next" 314160 n.Sip.Cseq.number

let cseq_errors () =
  check "garbage" true (Result.is_error (Sip.Cseq.parse "xyz"));
  check "negative" true (Result.is_error (Sip.Cseq.parse "-1 INVITE"))

let method_extension () =
  check "unknown method kept" true
    (Sip.Msg_method.of_string "FOOBAR" = Sip.Msg_method.Extension "FOOBAR");
  check_str "roundtrip" "FOOBAR" (Sip.Msg_method.to_string (Sip.Msg_method.of_string "FOOBAR"));
  check "standard" true (Sip.Msg_method.is_standard Sip.Msg_method.INVITE);
  check "extension not standard" false
    (Sip.Msg_method.is_standard (Sip.Msg_method.Extension "X"))

let status_classes () =
  check "180 provisional" true (Sip.Status.is_provisional 180);
  check "200 final" true (Sip.Status.is_final 200);
  check "200 success" true (Sip.Status.is_success 200);
  check "486 not success" false (Sip.Status.is_success 486);
  check_str "reason" "Ringing" (Sip.Status.reason_phrase 180);
  check_str "busy" "Busy Here" (Sip.Status.reason_phrase 486);
  check "klass" true (Sip.Status.klass 503 = Sip.Status.Server_error)

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

let sample_invite_text =
  "INVITE sip:bob@b.example SIP/2.0\r\n\
   Via: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKabc1\r\n\
   Max-Forwards: 70\r\n\
   From: \"Alice\" <sip:alice@a.example>;tag=t-alice\r\n\
   To: <sip:bob@b.example>\r\n\
   Call-ID: cid-1@10.1.0.10\r\n\
   CSeq: 1 INVITE\r\n\
   Contact: <sip:alice@10.1.0.10:5060>\r\n\
   Content-Type: application/sdp\r\n\
   Content-Length: 23\r\n\
   \r\n\
   v=0\r\no=a 0 0 IN IP4 h\r\n"

let msg_parse_request () =
  let m = ok (Sip.Msg.parse sample_invite_text) in
  check "is request" true (Sip.Msg.is_request m);
  check "method" true (Sip.Msg.method_of m = Some Sip.Msg_method.INVITE);
  check_str "call-id" "cid-1@10.1.0.10" (ok (Sip.Msg.call_id m));
  check "from tag" true (Sip.Name_addr.tag (ok (Sip.Msg.from_ m)) = Some "t-alice");
  check "to untagged" true (Sip.Name_addr.tag (ok (Sip.Msg.to_ m)) = None);
  check_int "body trimmed to content-length" 23 (String.length m.Sip.Msg.body);
  check "max-forwards" true (Sip.Msg.max_forwards m = Some 70);
  check "content type" true (Sip.Msg.content_type m = Some "application/sdp")

let msg_parse_response () =
  let text = "SIP/2.0 180 Ringing\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK1\r\nFrom: <sip:a@x>;tag=1\r\nTo: <sip:b@y>;tag=2\r\nCall-ID: c1\r\nCSeq: 1 INVITE\r\n\r\n" in
  let m = ok (Sip.Msg.parse text) in
  check "is response" true (Sip.Msg.is_response m);
  check "code" true (Sip.Msg.status_of m = Some 180);
  check "cseq method drives method_of" true (Sip.Msg.method_of m = Some Sip.Msg_method.INVITE)

let msg_serialize_roundtrip () =
  let m = ok (Sip.Msg.parse sample_invite_text) in
  let m2 = ok (Sip.Msg.parse (Sip.Msg.serialize m)) in
  check_str "call-id preserved" (ok (Sip.Msg.call_id m)) (ok (Sip.Msg.call_id m2));
  check_str "body preserved" m.Sip.Msg.body m2.Sip.Msg.body;
  check "start preserved" true (Sip.Msg.method_of m2 = Some Sip.Msg_method.INVITE)

let msg_folding () =
  let text =
    "OPTIONS sip:x SIP/2.0\r\nVia: SIP/2.0/UDP h\r\nSubject: first\r\n second\r\nCall-ID: c\r\nCSeq: 1 OPTIONS\r\nFrom: <sip:a@x>\r\nTo: <sip:b@y>\r\n\r\n"
  in
  let m = ok (Sip.Msg.parse text) in
  check "folded header joined" true
    (Sip.Header.get m.Sip.Msg.headers "Subject" = Some "first second")

let msg_lf_only () =
  let text = "OPTIONS sip:x SIP/2.0\nVia: SIP/2.0/UDP h\nCall-ID: c\nCSeq: 1 OPTIONS\nFrom: <sip:a@x>\nTo: <sip:b@y>\n\n" in
  check "parses with bare LF" true (Result.is_ok (Sip.Msg.parse text))

let msg_compact_forms () =
  let text = "OPTIONS sip:x SIP/2.0\r\nv: SIP/2.0/UDP h;branch=z9hG4bK1\r\ni: compact-cid\r\nf: <sip:a@x>;tag=1\r\nt: <sip:b@y>\r\nCSeq: 1 OPTIONS\r\n\r\n" in
  let m = ok (Sip.Msg.parse text) in
  check_str "compact call-id" "compact-cid" (ok (Sip.Msg.call_id m));
  check "compact via" true (Result.is_ok (Sip.Msg.top_via m))

let msg_parse_errors () =
  check "empty" true (Result.is_error (Sip.Msg.parse ""));
  check "garbage start" true (Result.is_error (Sip.Msg.parse "HELLO WORLD\r\n\r\n"));
  check "bad status" true (Result.is_error (Sip.Msg.parse "SIP/2.0 abc Oops\r\n\r\n"));
  check "status out of range" true (Result.is_error (Sip.Msg.parse "SIP/2.0 99 Low\r\n\r\n"));
  check "content-length too large" true
    (Result.is_error
       (Sip.Msg.parse "OPTIONS sip:x SIP/2.0\r\nContent-Length: 99\r\n\r\nshort"));
  check "header without colon" true
    (Result.is_error (Sip.Msg.parse "OPTIONS sip:x SIP/2.0\r\nBadHeader\r\n\r\n"))

let msg_response_to () =
  let req = ok (Sip.Msg.parse sample_invite_text) in
  let resp = Sip.Msg.response_to req ~code:180 ~to_tag:"t-bob" () in
  check "code" true (Sip.Msg.status_of resp = Some 180);
  check_str "call-id copied" "cid-1@10.1.0.10" (ok (Sip.Msg.call_id resp));
  check "to tag added" true (Sip.Name_addr.tag (ok (Sip.Msg.to_ resp)) = Some "t-bob");
  check "from copied" true (Sip.Name_addr.tag (ok (Sip.Msg.from_ resp)) = Some "t-alice");
  check "via copied" true (Result.is_ok (Sip.Msg.top_via resp));
  (* The CSeq of a response mirrors the request. *)
  check "cseq" true (Sip.Cseq.equal (ok (Sip.Msg.cseq resp)) (ok (Sip.Msg.cseq req)))

let msg_response_to_keeps_existing_tag () =
  let text = String.concat "\r\n"
    [ "BYE sip:bob@b.example SIP/2.0"; "Via: SIP/2.0/UDP h;branch=z9hG4bK2";
      "From: <sip:a@x>;tag=1"; "To: <sip:b@y>;tag=2"; "Call-ID: c"; "CSeq: 2 BYE"; ""; "" ]
  in
  let req = ok (Sip.Msg.parse text) in
  let resp = Sip.Msg.response_to req ~code:200 ~to_tag:"should-not-win" () in
  check "existing tag kept" true (Sip.Name_addr.tag (ok (Sip.Msg.to_ resp)) = Some "2")

let msg_ack_for () =
  let req = ok (Sip.Msg.parse sample_invite_text) in
  let resp = Sip.Msg.response_to req ~code:486 ~to_tag:"t-bob" () in
  let ack = Sip.Msg.ack_for req ~response:resp in
  check "is ACK" true (Sip.Msg.method_of ack = Some Sip.Msg_method.ACK);
  (* Same branch as the INVITE (RFC 3261 §17.1.1.3). *)
  check "same branch" true
    (Sip.Via.branch (ok (Sip.Msg.top_via ack)) = Sip.Via.branch (ok (Sip.Msg.top_via req)));
  check "to has remote tag" true (Sip.Name_addr.tag (ok (Sip.Msg.to_ ack)) = Some "t-bob");
  let cseq = ok (Sip.Msg.cseq ack) in
  check_int "cseq number preserved" 1 cseq.Sip.Cseq.number

let msg_via_stack () =
  let m = ok (Sip.Msg.parse sample_invite_text) in
  let v2 = Sip.Via.make ~port:5060 ~branch:"z9hG4bKproxy" "10.9.9.9" in
  let m = Sip.Msg.push_via m v2 in
  let vias = ok (Sip.Msg.vias m) in
  check_int "two vias" 2 (List.length vias);
  check_str "top is proxy" "10.9.9.9" (ok (Sip.Msg.top_via m)).Sip.Via.host;
  let m = Sip.Msg.pop_via m in
  check_str "popped back" "10.1.0.10" (ok (Sip.Msg.top_via m)).Sip.Via.host

let msg_max_forwards () =
  let m = ok (Sip.Msg.parse sample_invite_text) in
  let m = ok (Sip.Msg.decrement_max_forwards m) in
  check "69" true (Sip.Msg.max_forwards m = Some 69);
  let exhausted =
    { m with Sip.Msg.headers = Sip.Header.set m.Sip.Msg.headers "Max-Forwards" "0" }
  in
  check "exhausted" true (Result.is_error (Sip.Msg.decrement_max_forwards exhausted))

let msg_transaction_keys () =
  let m = ok (Sip.Msg.parse sample_invite_text) in
  let key = ok (Sip.Msg.transaction_key m) in
  check "key mentions branch" true
    (String.length key > 0 && String.sub key 0 11 = "z9hG4bKabc1");
  (* ACK folds to INVITE's key. *)
  let resp = Sip.Msg.response_to m ~code:486 ~to_tag:"x" () in
  let ack = Sip.Msg.ack_for m ~response:resp in
  check_str "ack matches invite txn" key (ok (Sip.Msg.transaction_key ack))

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

(* An in-memory loopback transport: records sends, allows loss injection. *)
type loop = { sched : Dsim.Scheduler.t; mutable sent : Sip.Msg.t list; mutable drop : int }

let make_loop () =
  let sched = Dsim.Scheduler.create () in
  let loop = { sched; sent = []; drop = 0 } in
  let transport =
    {
      Sip.Transaction.sched;
      send =
        (fun msg _dst ->
          if loop.drop > 0 then loop.drop <- loop.drop - 1
          else loop.sent <- msg :: loop.sent);
    }
  in
  (loop, transport)

let sample_invite () = ok (Sip.Msg.parse sample_invite_text)

let dst = Dsim.Addr.v "10.2.0.2" 5060

let client_invite_retransmits () =
  let loop, transport = make_loop () in
  let timeout = ref false in
  let _txn =
    Sip.Transaction.Client.create transport (sample_invite ()) ~dst
      ~on_response:(fun _ -> ())
      ~on_timeout:(fun () -> timeout := true)
      ~on_terminated:(fun () -> ())
  in
  (* Timer A doubles: sends at 0, .5, 1.5, 3.5, 7.5, 15.5, 31.5 then B at 32. *)
  Dsim.Scheduler.run_until loop.sched (Dsim.Time.of_sec 40.0);
  check_int "7 transmissions" 7 (List.length loop.sent);
  check "timed out" true !timeout

let client_invite_1xx_stops_retransmit () =
  let loop, transport = make_loop () in
  let got = ref [] in
  let txn =
    Sip.Transaction.Client.create transport (sample_invite ()) ~dst
      ~on_response:(fun r -> got := r :: !got)
      ~on_timeout:(fun () -> Alcotest.fail "no timeout expected")
      ~on_terminated:(fun () -> ())
  in
  Dsim.Scheduler.run_until loop.sched (Dsim.Time.of_ms 100.0);
  let ringing = Sip.Msg.response_to (sample_invite ()) ~code:180 ~to_tag:"b" () in
  Sip.Transaction.Client.receive txn ringing;
  check "proceeding" true (Sip.Transaction.Client.state txn = Sip.Transaction.Client.Proceeding);
  Dsim.Scheduler.run_until loop.sched (Dsim.Time.of_sec 10.0);
  check_int "no further retransmission" 1 (List.length loop.sent);
  check_int "response delivered" 1 (List.length !got)

let client_invite_2xx_terminates () =
  let loop, transport = make_loop () in
  let txn =
    Sip.Transaction.Client.create transport (sample_invite ()) ~dst
      ~on_response:(fun _ -> ())
      ~on_timeout:(fun () -> ())
      ~on_terminated:(fun () -> ())
  in
  Sip.Transaction.Client.receive txn
    (Sip.Msg.response_to (sample_invite ()) ~code:200 ~to_tag:"b" ());
  check "terminated on 2xx" true
    (Sip.Transaction.Client.state txn = Sip.Transaction.Client.Terminated);
  ignore loop

let client_invite_failure_acks () =
  let loop, transport = make_loop () in
  let txn =
    Sip.Transaction.Client.create transport (sample_invite ()) ~dst
      ~on_response:(fun _ -> ())
      ~on_timeout:(fun () -> ())
      ~on_terminated:(fun () -> ())
  in
  let busy = Sip.Msg.response_to (sample_invite ()) ~code:486 ~to_tag:"b" () in
  Sip.Transaction.Client.receive txn busy;
  check "completed" true (Sip.Transaction.Client.state txn = Sip.Transaction.Client.Completed);
  let acks =
    List.filter (fun m -> Sip.Msg.method_of m = Some Sip.Msg_method.ACK) loop.sent
  in
  check_int "auto ACK sent" 1 (List.length acks);
  (* A retransmitted 486 triggers an ACK retransmission. *)
  Sip.Transaction.Client.receive txn busy;
  let acks =
    List.filter (fun m -> Sip.Msg.method_of m = Some Sip.Msg_method.ACK) loop.sent
  in
  check_int "ACK retransmitted" 2 (List.length acks)

let client_non_invite_caps_at_t2 () =
  let loop, transport = make_loop () in
  let options =
    Sip.Msg.request ~meth:Sip.Msg_method.OPTIONS ~uri:(ok (Sip.Uri.parse "sip:x"))
      ~via:(Sip.Via.make ~branch:"z9hG4bKo1" "h")
      ~from_:(Sip.Name_addr.make ~params:[ ("tag", Some "1") ] (ok (Sip.Uri.parse "sip:a@x")))
      ~to_:(Sip.Name_addr.make (ok (Sip.Uri.parse "sip:b@y")))
      ~call_id:"c-opt" ~cseq:(Sip.Cseq.make 1 Sip.Msg_method.OPTIONS) ()
  in
  let timeout = ref false in
  let _txn =
    Sip.Transaction.Client.create transport options ~dst
      ~on_response:(fun _ -> ())
      ~on_timeout:(fun () -> timeout := true)
      ~on_terminated:(fun () -> ())
  in
  Dsim.Scheduler.run_until loop.sched (Dsim.Time.of_sec 40.0);
  (* Timer E: .5,1,2,4,4,4... until F at 32 s: sends at 0,.5,1.5,3.5,7.5,11.5,
     15.5,19.5,23.5,27.5,31.5 = 11 *)
  check_int "11 transmissions" 11 (List.length loop.sent);
  check "timed out" true !timeout

let server_invite_retransmits_final () =
  let loop, transport = make_loop () in
  let invite = sample_invite () in
  let txn =
    Sip.Transaction.Server.create transport invite ~src:dst
      ~on_ack:(fun _ -> ())
      ~on_terminated:(fun () -> ())
  in
  Sip.Transaction.Server.respond txn (Sip.Msg.response_to invite ~code:486 ~to_tag:"b" ());
  Dsim.Scheduler.run_until loop.sched (Dsim.Time.of_sec 2.0);
  (* Timer G: 0, .5, 1.5 within 2 s -> 3 transmissions. *)
  check_int "response retransmitted" 3 (List.length loop.sent);
  check "completed" true (Sip.Transaction.Server.state txn = Sip.Transaction.Server.Completed)

let server_invite_ack_confirms () =
  let loop, transport = make_loop () in
  let invite = sample_invite () in
  let acked = ref false in
  let txn =
    Sip.Transaction.Server.create transport invite ~src:dst
      ~on_ack:(fun _ -> acked := true)
      ~on_terminated:(fun () -> ())
  in
  let resp = Sip.Msg.response_to invite ~code:486 ~to_tag:"b" () in
  Sip.Transaction.Server.respond txn resp;
  let ack = Sip.Msg.ack_for invite ~response:resp in
  Sip.Transaction.Server.receive txn ack;
  check "confirmed" true (Sip.Transaction.Server.state txn = Sip.Transaction.Server.Confirmed);
  check "ack delivered" true !acked;
  Dsim.Scheduler.run_until loop.sched (Dsim.Time.of_sec 10.0);
  check "terminated after timer I" true
    (Sip.Transaction.Server.state txn = Sip.Transaction.Server.Terminated);
  check_int "no retransmissions after ACK" 1 (List.length loop.sent)

let server_invite_2xx_accepted () =
  let loop, transport = make_loop () in
  let invite = sample_invite () in
  let txn =
    Sip.Transaction.Server.create transport invite ~src:dst
      ~on_ack:(fun _ -> ())
      ~on_terminated:(fun () -> ())
  in
  Sip.Transaction.Server.respond txn (Sip.Msg.response_to invite ~code:200 ~to_tag:"b" ());
  check "accepted" true (Sip.Transaction.Server.state txn = Sip.Transaction.Server.Accepted);
  Dsim.Scheduler.run_until loop.sched (Dsim.Time.of_sec 1.0);
  (* 2xx retransmitted until ACK (RFC 6026): 0 and .5 within 1 s. *)
  check_int "2xx retransmitted" 2 (List.length loop.sent)

let server_request_retransmission_replays () =
  let loop, transport = make_loop () in
  let invite = sample_invite () in
  let txn =
    Sip.Transaction.Server.create transport invite ~src:dst
      ~on_ack:(fun _ -> ())
      ~on_terminated:(fun () -> ())
  in
  Sip.Transaction.Server.respond txn (Sip.Msg.response_to invite ~code:180 ~to_tag:"b" ());
  check_int "one response" 1 (List.length loop.sent);
  Sip.Transaction.Server.receive txn invite;
  check_int "replayed provisional" 2 (List.length loop.sent);
  ignore loop

(* ------------------------------------------------------------------ *)
(* Dialogs                                                             *)
(* ------------------------------------------------------------------ *)

let dialog_uac () =
  let invite = sample_invite () in
  let resp =
    Sip.Msg.response_to invite ~code:200 ~to_tag:"t-bob"
      ~headers:[ ("Contact", "<sip:bob@10.2.0.10:5060>") ]
      ()
  in
  let d = ok (Sip.Dialog.uac_of_response ~request:invite ~response:resp) in
  check "confirmed" true (d.Sip.Dialog.state = Sip.Dialog.Confirmed);
  check_str "local tag" "t-alice" d.Sip.Dialog.id.Sip.Dialog.local_tag;
  check_str "remote tag" "t-bob" d.Sip.Dialog.id.Sip.Dialog.remote_tag;
  check_str "remote target from contact" "10.2.0.10" d.Sip.Dialog.remote_target.Sip.Uri.host;
  let c = Sip.Dialog.next_cseq d Sip.Msg_method.BYE in
  check_int "next cseq" 2 c.Sip.Cseq.number

let dialog_uas () =
  let invite = sample_invite () in
  let d =
    ok
      (Sip.Dialog.uas_of_request ~request:invite ~local_tag:"t-bob"
         ~contact:(ok (Sip.Uri.parse "sip:alice@10.1.0.10")))
  in
  check "early" true (d.Sip.Dialog.state = Sip.Dialog.Early);
  check_str "remote tag is caller's" "t-alice" d.Sip.Dialog.id.Sip.Dialog.remote_tag;
  check "remote cseq learned" true (Sip.Dialog.validate_remote_cseq d 2);
  check "stale cseq rejected" false (Sip.Dialog.validate_remote_cseq d 2);
  Sip.Dialog.confirm d;
  check "confirmed" true (d.Sip.Dialog.state = Sip.Dialog.Confirmed);
  Sip.Dialog.terminate d;
  check "terminated" true (d.Sip.Dialog.state = Sip.Dialog.Terminated)

let dialog_request_matching () =
  let invite = sample_invite () in
  let d =
    ok
      (Sip.Dialog.uas_of_request ~request:invite ~local_tag:"t-bob"
         ~contact:(ok (Sip.Uri.parse "sip:alice@10.1.0.10")))
  in
  let bye_text =
    "BYE sip:bob@b.example SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK9\r\nFrom: <sip:alice@a.example>;tag=t-alice\r\nTo: <sip:bob@b.example>;tag=t-bob\r\nCall-ID: cid-1@10.1.0.10\r\nCSeq: 2 BYE\r\n\r\n"
  in
  check "matches" true (Sip.Dialog.request_matches d (ok (Sip.Msg.parse bye_text)));
  let foreign =
    "BYE sip:bob@b.example SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK9\r\nFrom: <sip:alice@a.example>;tag=WRONG\r\nTo: <sip:bob@b.example>;tag=t-bob\r\nCall-ID: cid-1@10.1.0.10\r\nCSeq: 2 BYE\r\n\r\n"
  in
  check "foreign tag rejected" false (Sip.Dialog.request_matches d (ok (Sip.Msg.parse foreign)))

let dialog_needs_tags () =
  let invite = sample_invite () in
  let untagged_resp = Sip.Msg.response_to invite ~code:200 () in
  check "response without to-tag rejected" true
    (Result.is_error (Sip.Dialog.uac_of_response ~request:invite ~response:untagged_resp))

let ident_unique () =
  let id = Sip.Ident.create (Dsim.Rng.create 1) in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 1000 do
    let b = Sip.Ident.branch id in
    check "branch has cookie" true (String.length b > 7 && String.sub b 0 7 = "z9hG4bK");
    check "unique" false (Hashtbl.mem seen b);
    Hashtbl.replace seen b ()
  done

let suite =
  [
    ( "sip.uri",
      [
        tc "full" uri_full;
        tc "minimal" uri_minimal;
        tc "roundtrip" uri_roundtrip;
        tc "errors" uri_errors;
        tc "equality" uri_equality;
        tc "with_param" uri_with_param;
      ] );
    ( "sip.header",
      [
        tc "canonical names" header_canonical;
        tc "multi-value order" header_multi;
        tc "comma split" header_comma_split;
        tc "set/remove" header_set_remove;
      ] );
    ( "sip.name_addr",
      [
        tc "display+tag" name_addr_display;
        tc "bare addr-spec" name_addr_bare;
        tc "roundtrip" name_addr_roundtrip;
        tc "with_tag" name_addr_with_tag;
        tc "errors" name_addr_errors;
      ] );
    ( "sip.via+cseq",
      [
        tc "via parse" via_parse;
        tc "via default port" via_default_port;
        tc "via roundtrip" via_roundtrip;
        tc "via errors" via_errors;
        tc "cseq" cseq_parse;
        tc "cseq errors" cseq_errors;
        tc "method extension" method_extension;
        tc "status classes" status_classes;
      ] );
    ( "sip.msg",
      [
        tc "parse request" msg_parse_request;
        tc "parse response" msg_parse_response;
        tc "serialize roundtrip" msg_serialize_roundtrip;
        tc "header folding" msg_folding;
        tc "LF-only lines" msg_lf_only;
        tc "compact forms" msg_compact_forms;
        tc "parse errors" msg_parse_errors;
        tc "response_to" msg_response_to;
        tc "response_to keeps tag" msg_response_to_keeps_existing_tag;
        tc "ack_for" msg_ack_for;
        tc "via stack" msg_via_stack;
        tc "max-forwards" msg_max_forwards;
        tc "transaction keys" msg_transaction_keys;
      ] );
    ( "sip.transaction",
      [
        tc "invite client retransmits + times out" client_invite_retransmits;
        tc "1xx stops retransmission" client_invite_1xx_stops_retransmit;
        tc "2xx terminates client" client_invite_2xx_terminates;
        tc "failure auto-ACKs" client_invite_failure_acks;
        tc "non-invite E/F timers" client_non_invite_caps_at_t2;
        tc "server retransmits final" server_invite_retransmits_final;
        tc "ACK confirms server" server_invite_ack_confirms;
        tc "2xx accepted state" server_invite_2xx_accepted;
        tc "request retransmission replays" server_request_retransmission_replays;
      ] );
    ( "sip.dialog",
      [
        tc "uac dialog" dialog_uac;
        tc "uas dialog" dialog_uas;
        tc "request matching" dialog_request_matching;
        tc "needs tags" dialog_needs_tags;
        tc "ident uniqueness" ident_unique;
      ] );
  ]
