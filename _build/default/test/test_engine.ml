(* Tests for the vIDS pipeline: classifier, fact base, engine — fed with
   synthetic wire packets. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let tc name f = Alcotest.test_case name `Quick f

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

let alloc = Dsim.Packet.allocator ()

let packet ?(at = 0) ~src ~dst payload = Dsim.Packet.make alloc ~src ~dst ~sent_at:at payload

let sip_addr host = Dsim.Addr.v host 5060

(* ------------------------------------------------------------------ *)
(* Classifier                                                          *)
(* ------------------------------------------------------------------ *)

let no_media _ = false

let invite_text =
  "INVITE sip:bob@b.example SIP/2.0\r\n\
   Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bKc1\r\n\
   From: <sip:alice@a.example>;tag=ta\r\n\
   To: <sip:bob@b.example>\r\n\
   Call-ID: c-1\r\n\
   CSeq: 1 INVITE\r\n\
   Contact: <sip:alice@10.1.0.10:5060>\r\n\
   Content-Type: application/sdp\r\n\
   \r\n\
   v=0\r\no=alice 0 0 IN IP4 10.1.0.10\r\ns=-\r\nc=IN IP4 10.1.0.10\r\nt=0 0\r\nm=audio 16384 RTP/AVP 18\r\n"

let classify_sip () =
  let p = packet ~src:(sip_addr "10.1.0.2") ~dst:(sip_addr "10.2.0.2") invite_text in
  match Vids.Classifier.classify ~known_media:no_media p with
  | Vids.Classifier.Sip msg -> check "is invite" true (Sip.Msg.method_of msg = Some Sip.Msg_method.INVITE)
  | _ -> Alcotest.fail "expected SIP"

let classify_malformed_sip () =
  let p = packet ~src:(sip_addr "10.1.0.2") ~dst:(sip_addr "10.2.0.2") "NOT SIP AT ALL" in
  match Vids.Classifier.classify ~known_media:no_media p with
  | Vids.Classifier.Malformed_sip _ -> ()
  | _ -> Alcotest.fail "expected malformed SIP"

let classify_rtp () =
  let rtp =
    Rtp.Rtp_packet.encode
      (Rtp.Rtp_packet.make ~payload_type:18 ~sequence:5 ~timestamp:0l ~ssrc:9l "x")
  in
  let p = packet ~src:(Dsim.Addr.v "10.1.0.10" 16384) ~dst:(Dsim.Addr.v "10.2.0.10" 20000) rtp in
  (match Vids.Classifier.classify ~known_media:no_media p with
  | Vids.Classifier.Rtp decoded -> check_int "seq" 5 decoded.Rtp.Rtp_packet.sequence
  | _ -> Alcotest.fail "expected RTP (port range)");
  (* Outside the range but registered as media. *)
  let p2 = packet ~src:(Dsim.Addr.v "h" 999) ~dst:(Dsim.Addr.v "10.2.0.10" 40002) rtp in
  match Vids.Classifier.classify ~known_media:(fun _ -> true) p2 with
  | Vids.Classifier.Rtp _ -> ()
  | _ -> Alcotest.fail "expected RTP (registered)"

let classify_rtcp () =
  let rtcp = Rtp.Rtcp.encode (Rtp.Rtcp.Receiver_report { ssrc = 1l; blocks = [] }) in
  let p = packet ~src:(Dsim.Addr.v "h" 16385) ~dst:(Dsim.Addr.v "h2" 20001) rtcp in
  match Vids.Classifier.classify ~known_media:no_media p with
  | Vids.Classifier.Rtcp _ -> ()
  | _ -> Alcotest.fail "expected RTCP"

let classify_other () =
  let p = packet ~src:(Dsim.Addr.v "h" 53) ~dst:(Dsim.Addr.v "h2" 53) "dns?" in
  match Vids.Classifier.classify ~known_media:no_media p with
  | Vids.Classifier.Other -> ()
  | _ -> Alcotest.fail "expected Other"

let quick_protocol () =
  check "sip by dst" true
    (Vids.Classifier.quick_protocol (packet ~src:(Dsim.Addr.v "h" 9) ~dst:(sip_addr "h2") "")
    = `Sip);
  check "media" true
    (Vids.Classifier.quick_protocol
       (packet ~src:(Dsim.Addr.v "h" 9) ~dst:(Dsim.Addr.v "h2" 16500) "")
    = `Media);
  check "other" true
    (Vids.Classifier.quick_protocol
       (packet ~src:(Dsim.Addr.v "h" 9) ~dst:(Dsim.Addr.v "h2" 80) "")
    = `Other)

(* ------------------------------------------------------------------ *)
(* Engine pipeline                                                     *)
(* ------------------------------------------------------------------ *)

type pipeline = { sched : Dsim.Scheduler.t; engine : Vids.Engine.t }

let make_pipeline () =
  let sched = Dsim.Scheduler.create () in
  { sched; engine = Vids.Engine.create sched }

let feed p ~src ~dst payload =
  Vids.Engine.process_packet p.engine
    (packet ~at:(Dsim.Scheduler.now p.sched) ~src ~dst payload)

let response_text ?(code = 200) ?(cseq = "1 INVITE") ?(to_tag = "tb") ?(sdp = true) () =
  let body =
    if sdp then
      "v=0\r\no=bob 0 0 IN IP4 10.2.0.10\r\ns=-\r\nc=IN IP4 10.2.0.10\r\nt=0 0\r\nm=audio 20000 RTP/AVP 18\r\n"
    else ""
  in
  Printf.sprintf
    "SIP/2.0 %d X\r\nVia: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bKc1\r\nFrom: <sip:alice@a.example>;tag=ta\r\nTo: <sip:bob@b.example>;tag=%s\r\nCall-ID: c-1\r\nCSeq: %s\r\nContact: <sip:bob@10.2.0.10:5060>\r\n%sContent-Length: %d\r\n\r\n%s"
    code to_tag cseq
    (if sdp then "Content-Type: application/sdp\r\n" else "")
    (String.length body) body

let bye_text ?(src_tag = "ta") () =
  Printf.sprintf
    "BYE sip:bob@10.2.0.10 SIP/2.0\r\nVia: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKb9\r\nFrom: <sip:alice@a.example>;tag=%s\r\nTo: <sip:bob@b.example>;tag=tb\r\nCall-ID: c-1\r\nCSeq: 2 BYE\r\n\r\n"
    src_tag

let ack_text =
  "ACK sip:bob@10.2.0.10 SIP/2.0\r\nVia: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKa7\r\nFrom: <sip:alice@a.example>;tag=ta\r\nTo: <sip:bob@b.example>;tag=tb\r\nCall-ID: c-1\r\nCSeq: 1 ACK\r\n\r\n"

let rtp_bytes ?(ssrc = 77l) ~seq ~ts () =
  Rtp.Rtp_packet.encode
    (Rtp.Rtp_packet.make ~payload_type:18 ~sequence:seq ~timestamp:(Int32.of_int ts) ~ssrc
       (String.make 20 'v'))

let run_call p =
  feed p ~src:(sip_addr "10.1.0.2") ~dst:(sip_addr "10.2.0.2") invite_text;
  feed p ~src:(sip_addr "10.2.0.2") ~dst:(sip_addr "10.1.0.2") (response_text ~code:180 ~sdp:false ());
  feed p ~src:(sip_addr "10.2.0.2") ~dst:(sip_addr "10.1.0.2") (response_text ());
  feed p ~src:(sip_addr "10.1.0.10") ~dst:(sip_addr "10.2.0.10") ack_text

let engine_tracks_call () =
  let p = make_pipeline () in
  run_call p;
  let stats = Vids.Engine.memory_stats p.engine in
  check_int "one call" 1 stats.Vids.Fact_base.active_calls;
  check_int "modeled 490 B" 490 stats.Vids.Fact_base.modeled_bytes;
  check "measured > 0" true (stats.Vids.Fact_base.measured_bytes > 0);
  let c = Vids.Engine.counters p.engine in
  check_int "four sip packets" 4 c.Vids.Engine.sip_packets;
  check_int "no alerts" 0 c.Vids.Engine.alerts_raised;
  check_int "no anomalies" 0 c.Vids.Engine.anomalies

let engine_routes_rtp_to_call () =
  let p = make_pipeline () in
  run_call p;
  (* Media both ways: to callee media (20000) and caller media (16384). *)
  feed p ~src:(Dsim.Addr.v "10.1.0.10" 16384) ~dst:(Dsim.Addr.v "10.2.0.10" 20000)
    (rtp_bytes ~seq:1 ~ts:160 ());
  feed p ~src:(Dsim.Addr.v "10.2.0.10" 20000) ~dst:(Dsim.Addr.v "10.1.0.10" 16384)
    (rtp_bytes ~ssrc:88l ~seq:1 ~ts:160 ());
  let c = Vids.Engine.counters p.engine in
  check_int "rtp seen" 2 c.Vids.Engine.rtp_packets;
  check_int "no alerts" 0 c.Vids.Engine.alerts_raised;
  (* The call's RTP machine is active now. *)
  let call = Option.get (Vids.Fact_base.find_call (Vids.Engine.fact_base p.engine) "c-1") in
  check_str "rtp active" Vids.Rtp_call_machine.st_active
    (Efsm.Machine.state call.Vids.Fact_base.rtp)

let engine_detects_bye_dos_end_to_end () =
  let p = make_pipeline () in
  run_call p;
  feed p ~src:(Dsim.Addr.v "10.1.0.10" 16384) ~dst:(Dsim.Addr.v "10.2.0.10" 20000)
    (rtp_bytes ~seq:1 ~ts:160 ());
  (* Spoofed BYE: right tags, wrong network source. *)
  feed p ~src:(sip_addr "203.0.113.66") ~dst:(sip_addr "10.2.0.10") (bye_text ());
  Dsim.Scheduler.run_until p.sched (Dsim.Time.of_sec 1.0);
  feed p ~src:(Dsim.Addr.v "10.1.0.10" 16384) ~dst:(Dsim.Addr.v "10.2.0.10" 20000)
    (rtp_bytes ~seq:30 ~ts:4800 ());
  let alerts = Vids.Engine.alerts_of_kind p.engine Vids.Alert.Bye_dos in
  check_int "bye dos alert" 1 (List.length alerts);
  check_str "subject is the call" "c-1" (List.hd alerts).Vids.Alert.subject

let engine_clean_teardown_no_alert () =
  let p = make_pipeline () in
  run_call p;
  feed p ~src:(Dsim.Addr.v "10.1.0.10" 16384) ~dst:(Dsim.Addr.v "10.2.0.10" 20000)
    (rtp_bytes ~seq:1 ~ts:160 ());
  (* Genuine BYE from the caller's contact host. *)
  feed p ~src:(sip_addr "10.1.0.10") ~dst:(sip_addr "10.2.0.10") (bye_text ());
  feed p ~src:(sip_addr "10.2.0.10") ~dst:(sip_addr "10.1.0.10")
    (response_text ~code:200 ~cseq:"2 BYE" ~sdp:false ());
  Dsim.Scheduler.run_until p.sched (Dsim.Time.of_sec 2.0);
  let c = Vids.Engine.counters p.engine in
  check_int "no alerts" 0 c.Vids.Engine.alerts_raised;
  (* Record reaped after the linger. *)
  Dsim.Scheduler.run_until p.sched (Dsim.Time.of_sec 60.0);
  let stats = Vids.Engine.memory_stats p.engine in
  check_int "deleted" 0 stats.Vids.Fact_base.active_calls;
  check_int "created 1" 1 stats.Vids.Fact_base.calls_created;
  check_int "deleted 1" 1 stats.Vids.Fact_base.calls_deleted

let engine_malformed_sip_alert () =
  let p = make_pipeline () in
  feed p ~src:(sip_addr "203.0.113.1") ~dst:(sip_addr "10.2.0.2") "\x01\x02garbage";
  let c = Vids.Engine.counters p.engine in
  check_int "malformed counted" 1 c.Vids.Engine.malformed_packets;
  check_int "alert raised" 1
    (List.length (Vids.Engine.alerts_of_kind p.engine Vids.Alert.Spec_deviation))

let engine_orphan_request_warns () =
  let p = make_pipeline () in
  feed p ~src:(sip_addr "10.1.0.10") ~dst:(sip_addr "10.2.0.10") (bye_text ());
  let c = Vids.Engine.counters p.engine in
  check_int "orphan request" 1 c.Vids.Engine.orphan_requests

let engine_orphan_responses_feed_drdos () =
  let p = make_pipeline () in
  let n = Vids.Config.default.Vids.Config.drdos_threshold + 1 in
  for i = 1 to n do
    let text =
      Printf.sprintf
        "SIP/2.0 200 OK\r\nVia: SIP/2.0/UDP refl%d:5060;branch=z9hG4bKr%d\r\nFrom: <sip:v@x>;tag=1\r\nTo: <sip:v@x>;tag=2\r\nCall-ID: refl-%d\r\nCSeq: 1 OPTIONS\r\n\r\n"
        i i i
    in
    feed p ~src:(sip_addr (Printf.sprintf "refl%d" i)) ~dst:(sip_addr "10.2.0.10") text
  done;
  check_int "drdos alert" 1
    (List.length (Vids.Engine.alerts_of_kind p.engine Vids.Alert.Drdos));
  let c = Vids.Engine.counters p.engine in
  check_int "orphans counted" n c.Vids.Engine.orphan_responses

let engine_dedup () =
  let p = make_pipeline () in
  run_call p;
  feed p ~src:(Dsim.Addr.v "10.1.0.10" 16384) ~dst:(Dsim.Addr.v "10.2.0.10" 20000)
    (rtp_bytes ~seq:1 ~ts:160 ());
  feed p ~src:(sip_addr "203.0.113.66") ~dst:(sip_addr "10.2.0.10") (bye_text ());
  Dsim.Scheduler.run_until p.sched (Dsim.Time.of_sec 1.0);
  for i = 0 to 9 do
    feed p ~src:(Dsim.Addr.v "10.1.0.10" 16384) ~dst:(Dsim.Addr.v "10.2.0.10" 20000)
      (rtp_bytes ~seq:(40 + i) ~ts:(6400 + (160 * i)) ())
  done;
  let c = Vids.Engine.counters p.engine in
  check_int "one distinct" 1 (List.length (Vids.Engine.alerts_of_kind p.engine Vids.Alert.Bye_dos));
  check "duplicates suppressed" true (c.Vids.Engine.alerts_suppressed >= 9)

let engine_listener () =
  let p = make_pipeline () in
  let heard = ref 0 in
  Vids.Engine.on_alert p.engine (fun _ -> incr heard);
  feed p ~src:(sip_addr "x") ~dst:(sip_addr "10.2.0.2") "junk";
  check_int "listener invoked" 1 !heard

let engine_cpu_accounting () =
  let p = make_pipeline () in
  run_call p;
  let expected = 4 * Vids.Config.default.Vids.Config.sip_cpu_cost in
  check_int "busy time" expected (Vids.Engine.cpu_busy p.engine)

let engine_transit_delay_queueing () =
  let p = make_pipeline () in
  let sip_packet = packet ~src:(sip_addr "a") ~dst:(sip_addr "b") "x" in
  let d1 = Vids.Engine.transit_delay p.engine sip_packet in
  let d2 = Vids.Engine.transit_delay p.engine sip_packet in
  let cfg = Vids.Config.default in
  check_int "first is pipeline latency" cfg.Vids.Config.sip_transit_delay d1;
  check_int "second queues behind cpu" (cfg.Vids.Config.sip_transit_delay + cfg.Vids.Config.sip_cpu_cost) d2;
  let other = packet ~src:(Dsim.Addr.v "a" 1) ~dst:(Dsim.Addr.v "b" 2) "x" in
  check_int "other free" 0 (Vids.Engine.transit_delay p.engine other)

let fact_base_sweep () =
  let p = make_pipeline () in
  feed p ~src:(sip_addr "10.1.0.2") ~dst:(sip_addr "10.2.0.2") invite_text;
  Dsim.Scheduler.run_until p.sched (Dsim.Time.of_sec 3600.0);
  check_int "still there (never finished)" 1
    (Vids.Engine.memory_stats p.engine).Vids.Fact_base.active_calls;
  let swept = Vids.Fact_base.sweep (Vids.Engine.fact_base p.engine) ~max_age:(Dsim.Time.of_sec 1800.0) in
  check_int "swept" 1 swept;
  check_int "gone" 0 (Vids.Engine.memory_stats p.engine).Vids.Fact_base.active_calls

let fact_base_media_index () =
  let p = make_pipeline () in
  run_call p;
  let base = Vids.Engine.fact_base p.engine in
  check "caller media known" true (Vids.Fact_base.known_media base (Dsim.Addr.v "10.1.0.10" 16384));
  check "callee media known" true (Vids.Fact_base.known_media base (Dsim.Addr.v "10.2.0.10" 20000));
  check "unknown" false (Vids.Fact_base.known_media base (Dsim.Addr.v "10.9.9.9" 1000));
  match Vids.Fact_base.call_for_media base (Dsim.Addr.v "10.2.0.10" 20000) with
  | Some call -> check_str "routes to call" "c-1" call.Vids.Fact_base.call_id
  | None -> Alcotest.fail "media not indexed"

let memory_scales_linearly () =
  let p = make_pipeline () in
  let per_call =
    Vids.Config.default.Vids.Config.sip_state_bytes
    + Vids.Config.default.Vids.Config.rtp_state_bytes
  in
  for i = 1 to 100 do
    let text =
      Printf.sprintf
        "INVITE sip:u%d@b.example SIP/2.0\r\nVia: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bKm%d\r\nFrom: <sip:a@a.example>;tag=t%d\r\nTo: <sip:u%d@b.example>\r\nCall-ID: scale-%d\r\nCSeq: 1 INVITE\r\n\r\n"
        i i i i i
    in
    feed p ~src:(sip_addr "10.1.0.2") ~dst:(sip_addr "10.2.0.2") text
  done;
  let stats = Vids.Engine.memory_stats p.engine in
  check_int "100 calls" 100 stats.Vids.Fact_base.active_calls;
  check_int "linear model" (100 * per_call) stats.Vids.Fact_base.modeled_bytes

(* ------------------------------------------------------------------ *)
(* Baselines                                                           *)
(* ------------------------------------------------------------------ *)

let snort_stateless_misses_bye_dos () =
  let snort = Baseline.Snort_like.create Baseline.Snort_like.default_rules in
  (* The exact packets of the BYE DoS scenario trigger nothing. *)
  let packets =
    [
      packet ~src:(sip_addr "10.1.0.2") ~dst:(sip_addr "10.2.0.2") invite_text;
      packet ~src:(sip_addr "10.2.0.2") ~dst:(sip_addr "10.1.0.2") (response_text ());
      packet ~src:(sip_addr "203.0.113.66") ~dst:(sip_addr "10.2.0.10") (bye_text ());
      packet ~src:(Dsim.Addr.v "10.1.0.10" 16384) ~dst:(Dsim.Addr.v "10.2.0.10" 20000)
        (rtp_bytes ~seq:30 ~ts:4800 ());
    ]
  in
  let alerts = List.concat_map (Baseline.Snort_like.process snort) packets in
  check_int "stateless baseline is blind" 0 (List.length alerts);
  check_int "packets counted" 4 (Baseline.Snort_like.packets_processed snort)

let snort_catches_malformed () =
  let snort = Baseline.Snort_like.create Baseline.Snort_like.default_rules in
  let alerts =
    Baseline.Snort_like.process snort
      (packet ~src:(sip_addr "x") ~dst:(sip_addr "y") "garbage message")
  in
  check_int "malformed flagged" 1 (List.length alerts)

let scidive_catches_bye_dos_but_needs_rule () =
  let sched = Dsim.Scheduler.create () in
  let scidive = Baseline.Scidive_like.create sched () in
  let feed pkt = Baseline.Scidive_like.process scidive pkt in
  ignore (feed (packet ~src:(sip_addr "10.1.0.2") ~dst:(sip_addr "10.2.0.2") invite_text));
  ignore (feed (packet ~src:(sip_addr "10.2.0.2") ~dst:(sip_addr "10.1.0.2") (response_text ())));
  ignore (feed (packet ~src:(sip_addr "203.0.113.66") ~dst:(sip_addr "10.2.0.10") (bye_text ())));
  Dsim.Scheduler.run_until sched (Dsim.Time.of_sec 1.0);
  let alerts =
    feed
      (packet ~src:(Dsim.Addr.v "10.1.0.10" 16384) ~dst:(Dsim.Addr.v "10.2.0.10" 20000)
         (rtp_bytes ~seq:30 ~ts:4800 ()))
  in
  check_int "stateful cross-protocol rule fires" 1 (List.length alerts);
  (* But an attack with no rule (hijack) passes silently. *)
  let hijack =
    "INVITE sip:bob@b.example SIP/2.0\r\nVia: SIP/2.0/UDP 203.0.113.66:5060;branch=z9hG4bKh\r\nFrom: <sip:m@evil>;tag=tm\r\nTo: <sip:bob@b.example>;tag=tb\r\nCall-ID: c-1\r\nCSeq: 60 INVITE\r\n\r\n"
  in
  let alerts2 = feed (packet ~src:(sip_addr "203.0.113.66") ~dst:(sip_addr "10.2.0.10") hijack) in
  check_int "no rule, no detection" 0 (List.length alerts2)

let alert_formatting () =
  let a =
    Vids.Alert.make ~kind:Vids.Alert.Bye_dos ~at:(Dsim.Time.of_sec 1.0) ~subject:"c-9" "detail"
  in
  let rendered = Format.asprintf "%a" Vids.Alert.pp a in
  check "mentions kind" true
    (String.length rendered > 0
    &&
    let rec contains i =
      i + 7 <= String.length rendered && (String.sub rendered i 7 = "BYE-DoS" || contains (i + 1))
    in
    contains 0);
  check_str "dedup key" "BYE-DoS|c-9" (Vids.Alert.dedup_key a);
  check "severity default" true (a.Vids.Alert.severity = Vids.Alert.Critical);
  check "spec deviation is warning" true
    (Vids.Alert.default_severity Vids.Alert.Spec_deviation = Vids.Alert.Warning)

let sip_event_encoding () =
  let msg = ok (Sip.Msg.parse invite_text) in
  let event =
    Vids.Sip_event.of_msg ~at:0 ~src:(sip_addr "10.1.0.2") ~dst:(sip_addr "10.2.0.2") msg
  in
  check_str "name" "INVITE" event.Efsm.Event.name;
  check_str "src" "10.1.0.2" (Efsm.Event.arg_str event Vids.Keys.src_ip);
  check_str "call id" "c-1" (Efsm.Event.arg_str event Vids.Keys.call_id);
  check_str "media host" "10.1.0.10" (Efsm.Event.arg_str event Vids.Keys.media_host);
  check_int "media port" 16384 (Efsm.Event.arg_int event Vids.Keys.media_port);
  check "flood key" true (Vids.Sip_event.flood_key msg = Some "bob@b.example");
  check "media addr" true
    (Vids.Sip_event.media_of_event event = Some (Dsim.Addr.v "10.1.0.10" 16384))

let suite =
  [
    ( "vids.classifier",
      [
        tc "sip" classify_sip;
        tc "malformed sip" classify_malformed_sip;
        tc "rtp" classify_rtp;
        tc "rtcp" classify_rtcp;
        tc "other" classify_other;
        tc "quick protocol" quick_protocol;
      ] );
    ( "vids.engine",
      [
        tc "tracks a call" engine_tracks_call;
        tc "routes rtp" engine_routes_rtp_to_call;
        tc "bye dos end-to-end" engine_detects_bye_dos_end_to_end;
        tc "clean teardown" engine_clean_teardown_no_alert;
        tc "malformed sip alert" engine_malformed_sip_alert;
        tc "orphan request" engine_orphan_request_warns;
        tc "orphan responses -> drdos" engine_orphan_responses_feed_drdos;
        tc "alert dedup" engine_dedup;
        tc "alert listener" engine_listener;
        tc "cpu accounting" engine_cpu_accounting;
        tc "inline queueing" engine_transit_delay_queueing;
      ] );
    ( "vids.fact_base",
      [
        tc "sweep" fact_base_sweep;
        tc "media index" fact_base_media_index;
        tc "memory linear" memory_scales_linearly;
      ] );
    ( "vids.sip_event",
      [ tc "encoding" sip_event_encoding; tc "alert formatting" alert_formatting ] );
    ( "baseline",
      [
        tc "snort misses bye dos" snort_stateless_misses_bye_dos;
        tc "snort catches malformed" snort_catches_malformed;
        tc "scidive rule coverage" scidive_catches_bye_dos_but_needs_rule;
      ] );
  ]
