(* Property-based tests (qcheck) on codecs, arithmetic and invariants. *)

let q ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let token_gen =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'b'; 'z'; '0'; '9'; 'X'; '-'; '.' ]) (int_range 1 12))

let host_gen =
  QCheck.Gen.(
    map2 (fun a b -> Printf.sprintf "%s.%s" a b)
      (string_size ~gen:(oneofl [ 'a'; 'b'; 'c'; '1' ]) (int_range 1 8))
      (oneofl [ "example"; "test"; "invalid" ]))

let uri_gen =
  QCheck.Gen.(
    map3
      (fun user host port ->
        Sip.Uri.make ?user ?port host)
      (opt token_gen) host_gen
      (opt (int_range 1 65535)))

let uri_arb = QCheck.make ~print:Sip.Uri.to_string uri_gen

let seq16 = QCheck.int_range 0 0xFFFF

(* ------------------------------------------------------------------ *)
(* Round-trip properties                                               *)
(* ------------------------------------------------------------------ *)

let uri_roundtrip =
  q "sip uri: parse (to_string u) = u" uri_arb (fun u ->
      match Sip.Uri.parse (Sip.Uri.to_string u) with
      | Ok u' -> Sip.Uri.equal u u'
      | Error _ -> false)

let rtp_roundtrip =
  q "rtp: decode (encode p) = p"
    QCheck.(
      quad (int_range 0 127) seq16 (pair int32 int32) (string_of_size (Gen.int_range 0 300)))
    (fun (pt, seq, (ts, ssrc), payload) ->
      let p = Rtp.Rtp_packet.make ~payload_type:pt ~sequence:seq ~timestamp:ts ~ssrc payload in
      match Rtp.Rtp_packet.decode (Rtp.Rtp_packet.encode p) with
      | Ok p' -> p = p'
      | Error _ -> false)

let rtp_decode_never_crashes =
  q ~count:500 "rtp: decode total on junk" QCheck.(string_of_size (Gen.int_range 0 64))
    (fun junk ->
      match Rtp.Rtp_packet.decode junk with Ok _ -> true | Error _ -> true)

let sip_parse_never_crashes =
  q ~count:500 "sip: parse total on junk" QCheck.(string_of_size (Gen.int_range 0 200))
    (fun junk -> match Sip.Msg.parse junk with Ok _ -> true | Error _ -> true)

let sdp_parse_never_crashes =
  q ~count:500 "sdp: parse total on junk" QCheck.(string_of_size (Gen.int_range 0 200))
    (fun junk -> match Sdp.parse junk with Ok _ -> true | Error _ -> true)

let sip_msg_roundtrip =
  q "sip msg: serialize/parse round-trip keeps identity fields"
    QCheck.(triple uri_arb (pair seq16 (int_range 100 699)) (make token_gen))
    (fun (uri, (cseq_n, _code), call_id) ->
      QCheck.assume (call_id <> "");
      let msg =
        Sip.Msg.request ~meth:Sip.Msg_method.INVITE ~uri
          ~via:(Sip.Via.make ~branch:"z9hG4bKx" "h.example")
          ~from_:(Sip.Name_addr.make ~params:[ ("tag", Some "t1") ] uri)
          ~to_:(Sip.Name_addr.make uri) ~call_id
          ~cseq:(Sip.Cseq.make cseq_n Sip.Msg_method.INVITE)
          ~body:"payload" ()
      in
      match Sip.Msg.parse (Sip.Msg.serialize msg) with
      | Error _ -> false
      | Ok msg' ->
          Sip.Msg.call_id msg' = Ok call_id
          && msg'.Sip.Msg.body = "payload"
          && Sip.Msg.method_of msg' = Some Sip.Msg_method.INVITE)

(* ------------------------------------------------------------------ *)
(* Serial-number arithmetic                                            *)
(* ------------------------------------------------------------------ *)

let seq_delta_antisymmetric =
  q "rtp: seq_delta a b = -(seq_delta b a) (mod 2^16)" QCheck.(pair seq16 seq16)
    (fun (a, b) ->
      let d1 = Rtp.Rtp_packet.seq_delta a b and d2 = Rtp.Rtp_packet.seq_delta b a in
      (d1 + d2) land 0xFFFF = 0)

let seq_delta_bounds =
  q "rtp: seq_delta in [-32768, 32767]" QCheck.(pair seq16 seq16) (fun (a, b) ->
      let d = Rtp.Rtp_packet.seq_delta a b in
      d >= -32768 && d <= 32767)

let seq_delta_successor =
  q "rtp: successor distance is 1" seq16 (fun a ->
      Rtp.Rtp_packet.seq_delta a ((a + 1) land 0xFFFF) = 1)

(* ------------------------------------------------------------------ *)
(* Heap / scheduler invariants                                         *)
(* ------------------------------------------------------------------ *)

let heap_sorts_any_list =
  q "heap: drains in sorted order" QCheck.(list int) (fun xs ->
      let h = Dsim.Heap.create ~cmp:Int.compare in
      List.iter (Dsim.Heap.push h) xs;
      let rec drain acc =
        match Dsim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

let scheduler_monotone =
  q "scheduler: observed times are non-decreasing"
    QCheck.(list_of_size (Gen.int_range 0 50) (int_range 0 100000))
    (fun times ->
      let s = Dsim.Scheduler.create () in
      let seen = ref [] in
      List.iter
        (fun t -> ignore (Dsim.Scheduler.schedule_at s t (fun () -> seen := t :: !seen)))
        times;
      Dsim.Scheduler.run s;
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | [ _ ] | [] -> true
      in
      monotone (List.rev !seen) && List.length !seen = List.length times)

(* ------------------------------------------------------------------ *)
(* Statistics invariants                                               *)
(* ------------------------------------------------------------------ *)

let summary_mean_bounded =
  q "summary: min <= mean <= max" QCheck.(list_of_size (Gen.int_range 1 100) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Dsim.Stat.Summary.create () in
      List.iter (Dsim.Stat.Summary.add s) xs;
      Dsim.Stat.Summary.min s <= Dsim.Stat.Summary.mean s +. 1e-6
      && Dsim.Stat.Summary.mean s <= Dsim.Stat.Summary.max s +. 1e-6)

let summary_matches_naive =
  q "summary: Welford mean = naive mean"
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let s = Dsim.Stat.Summary.create () in
      List.iter (Dsim.Stat.Summary.add s) xs;
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Dsim.Stat.Summary.mean s -. naive) < 1e-6)

let percentile_within_range =
  q "percentile: result within [min,max]"
    QCheck.(pair (list_of_size (Gen.int_range 1 60) (float_range 0.0 100.0)) (float_range 0.0 100.0))
    (fun (xs, p) ->
      let arr = Array.of_list xs in
      let v = Dsim.Stat.percentile arr p in
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

(* ------------------------------------------------------------------ *)
(* EFSM invariants                                                     *)
(* ------------------------------------------------------------------ *)

let machine_event_gen =
  QCheck.Gen.(
    map2
      (fun name n -> (name, n))
      (oneofl [ "INVITE"; "RESPONSE"; "ACK"; "BYE"; "CANCEL"; "REGISTER"; "OPTIONS" ])
      (int_range 100 699))

(* Feeding arbitrary SIP event sequences never yields nondeterminism —
   guards of the per-call machine must be pairwise disjoint (paper §4.1). *)
let sip_machine_deterministic =
  q ~count:300 "sip machine: arbitrary event sequences stay deterministic"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 25) machine_event_gen))
    (fun events ->
      let m =
        Efsm.Machine.instantiate
          (Vids.Sip_call_machine.spec Vids.Config.default)
          ~globals:(Efsm.Env.globals ())
      in
      List.for_all
        (fun (name, code) ->
          let args =
            [
              (Vids.Keys.code, Efsm.Value.Int code);
              (Vids.Keys.cseq_method, Efsm.Value.Str "INVITE");
              (Vids.Keys.from_tag, Efsm.Value.Str "t1");
              (Vids.Keys.branch, Efsm.Value.Str "b1");
              (Vids.Keys.src_ip, Efsm.Value.Str "10.0.0.1");
              (Vids.Keys.contact_host, Efsm.Value.Str "10.0.0.1");
              (Vids.Keys.call_id, Efsm.Value.Str "c");
            ]
          in
          match Efsm.Machine.step m (Efsm.Event.make ~args (Efsm.Event.Data "SIP") ~at:0 name) with
          | Efsm.Machine.Nondeterministic _ -> false
          | Efsm.Machine.Moved _ | Efsm.Machine.Rejected -> true)
        events)

let spam_machine_deterministic =
  q ~count:300 "spam machine: arbitrary rtp sequences stay deterministic"
    QCheck.(list_of_size (Gen.int_range 1 40) (pair seq16 (int_range 0 1_000_000)))
    (fun packets ->
      let m =
        Efsm.Machine.instantiate
          (Vids.Media_spam_machine.spec Vids.Config.default)
          ~globals:(Efsm.Env.globals ())
      in
      List.for_all
        (fun (seq, ts) ->
          let args =
            [
              (Vids.Keys.ssrc, Efsm.Value.Int 7);
              (Vids.Keys.seq, Efsm.Value.Int seq);
              (Vids.Keys.ts, Efsm.Value.Int ts);
            ]
          in
          match
            Efsm.Machine.step m
              (Efsm.Event.make ~args (Efsm.Event.Data "RTP") ~at:0 Vids.Keys.rtp_packet)
          with
          | Efsm.Machine.Nondeterministic _ -> false
          | Efsm.Machine.Moved _ | Efsm.Machine.Rejected -> true)
        packets)

(* The engine never raises on arbitrary packet contents. *)
let engine_total_on_junk =
  q ~count:300 "engine: total on junk datagrams"
    QCheck.(pair (int_range 1 65535) (string_of_size (Gen.int_range 0 100)))
    (fun (port, payload) ->
      let sched = Dsim.Scheduler.create () in
      let engine = Vids.Engine.create sched in
      let alloc = Dsim.Packet.allocator () in
      let packet =
        Dsim.Packet.make alloc ~src:(Dsim.Addr.v "src" port) ~dst:(Dsim.Addr.v "dst" port)
          ~sent_at:0 payload
      in
      Vids.Engine.process_packet engine packet;
      true)

let jitter_non_negative =
  q "jitter: estimate stays non-negative"
    QCheck.(list_of_size (Gen.int_range 2 60) (pair (int_range 0 10_000) (int_range 0 100_000)))
    (fun samples ->
      let j = Rtp.Jitter.create ~clock_rate:8000 in
      let t = ref 0 in
      List.for_all
        (fun (gap_us, ts) ->
          t := !t + gap_us;
          Rtp.Jitter.observe j ~arrival:!t ~rtp_timestamp:(Int32.of_int ts);
          Rtp.Jitter.jitter_ticks j >= 0.0)
        samples)

let auth_correct_password_verifies =
  q "auth: correct password always verifies, wrong never"
    QCheck.(triple (make token_gen) (make token_gen) (make token_gen))
    (fun (user, password, wrong) ->
      QCheck.assume (password <> wrong);
      let challenge = { Sip.Auth.realm = "r.example"; nonce = "n-1" } in
      let uri = Sip.Uri.make "r.example" in
      let build pw =
        Sip.Msg.request ~meth:Sip.Msg_method.REGISTER ~uri
          ~via:(Sip.Via.make ~branch:"z9hG4bKp" "h")
          ~from_:(Sip.Name_addr.make ~params:[ ("tag", Some "t") ] uri)
          ~to_:(Sip.Name_addr.make uri) ~call_id:"c"
          ~cseq:(Sip.Cseq.make 2 Sip.Msg_method.REGISTER)
          ~headers:
            [
              ( "Authorization",
                Sip.Auth.authorization_header ~username:user ~password:pw ~challenge
                  ~meth:Sip.Msg_method.REGISTER ~uri );
            ]
          ()
      in
      let verify msg =
        Sip.Auth.verify
          ~password_of:(fun u -> if u = user then Some password else None)
          ~realm:"r.example" ~nonce_valid:(String.equal "n-1") msg
      in
      verify (build password) && not (verify (build wrong)))

let mos_monotone_in_delay =
  q "mos: non-increasing in delay" QCheck.(pair (float_range 0.0 0.4) (float_range 0.0 0.4))
    (fun (d1, d2) ->
      let lo = Float.min d1 d2 and hi = Float.max d1 d2 in
      Rtp.Mos.mos ~one_way_delay:hi ~loss_fraction:0.0
      <= Rtp.Mos.mos ~one_way_delay:lo ~loss_fraction:0.0 +. 1e-9)

let mos_monotone_in_loss =
  q "mos: non-increasing in loss" QCheck.(pair (float_range 0.0 0.3) (float_range 0.0 0.3))
    (fun (l1, l2) ->
      let lo = Float.min l1 l2 and hi = Float.max l1 l2 in
      Rtp.Mos.mos ~one_way_delay:0.05 ~loss_fraction:hi
      <= Rtp.Mos.mos ~one_way_delay:0.05 ~loss_fraction:lo +. 1e-9)

let mos_bounded =
  q "mos: within [1, 4.5]" QCheck.(pair (float_range 0.0 2.0) (float_range 0.0 1.0))
    (fun (delay, loss) ->
      let m = Rtp.Mos.mos ~one_way_delay:delay ~loss_fraction:loss in
      m >= 1.0 && m <= 4.5)

let playout_counts_consistent =
  q "playout: late <= received and fraction in [0,1]"
    QCheck.(list_of_size (Gen.int_range 0 60) (pair (int_range 0 100000) (int_range 0 200000)))
    (fun samples ->
      let p = Rtp.Playout.create ~target_delay:(Dsim.Time.of_ms 60.0) in
      List.iter
        (fun (capture, arrival_offset) ->
          ignore (Rtp.Playout.offer p ~capture ~arrival:(capture + arrival_offset)))
        samples;
      Rtp.Playout.late p <= Rtp.Playout.received p
      && Rtp.Playout.received p = List.length samples
      && Rtp.Playout.late_fraction p >= 0.0
      && Rtp.Playout.late_fraction p <= 1.0)

let rule_lang_never_crashes =
  q ~count:400 "rule_lang: parse total on junk" QCheck.(string_of_size (Gen.int_range 0 120))
    (fun junk ->
      match Baseline.Rule_lang.parse_rule junk with Ok _ -> true | Error _ -> true)

let suite =
  [
    ( "properties",
      [
        uri_roundtrip;
        rtp_roundtrip;
        rtp_decode_never_crashes;
        sip_parse_never_crashes;
        sdp_parse_never_crashes;
        sip_msg_roundtrip;
        seq_delta_antisymmetric;
        seq_delta_bounds;
        seq_delta_successor;
        heap_sorts_any_list;
        scheduler_monotone;
        summary_mean_bounded;
        summary_matches_naive;
        percentile_within_range;
        sip_machine_deterministic;
        spam_machine_deterministic;
        engine_total_on_junk;
        jitter_non_negative;
        auth_correct_password_verifies;
        mos_monotone_in_delay;
        mos_monotone_in_loss;
        mos_bounded;
        playout_counts_consistent;
        rule_lang_never_crashes;
      ] );
  ]
