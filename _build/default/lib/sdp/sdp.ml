type media = {
  media_type : string;
  port : int;
  transport : string;
  formats : int list;
  attributes : (string * string option) list;
}

type t = {
  version : int;
  origin : string;
  session_name : string;
  connection : string option;
  timing : string;
  media : media list;
  session_attributes : (string * string option) list;
}

let make ?(session_name = "-") ~origin_user ~origin_host ~connection ~media () =
  {
    version = 0;
    origin = Printf.sprintf "%s 0 0 IN IP4 %s" origin_user origin_host;
    session_name;
    connection;
    timing = "0 0";
    media;
    session_attributes = [];
  }

let make ?session_name ~origin_user ~origin_host ~connection ~media () =
  make ?session_name ~origin_user ~origin_host ~connection:(Some connection) ~media ()

let audio_media ~port ~formats =
  let attributes =
    List.filter_map
      (fun number ->
        match Payload_type.find number with
        | Some info -> Some ("rtpmap", Some (Payload_type.rtpmap info))
        | None -> None)
      formats
  in
  { media_type = "audio"; port; transport = "RTP/AVP"; formats; attributes }

let parse_attribute value =
  match String.index_opt value ':' with
  | None -> (value, None)
  | Some i -> (String.sub value 0 i, Some (String.sub value (i + 1) (String.length value - i - 1)))

(* The c= line is "IN IP4 <addr>"; extract the address. *)
let connection_addr value =
  match String.split_on_char ' ' value |> List.filter (fun s -> s <> "") with
  | [ _net; _kind; addr ] -> Some addr
  | _ -> None

let parse_media_line value =
  match String.split_on_char ' ' value |> List.filter (fun s -> s <> "") with
  | media_type :: port_str :: transport :: formats -> (
      match int_of_string_opt port_str with
      | None -> Error (Printf.sprintf "SDP: bad media port %S" port_str)
      | Some port ->
          let formats = List.filter_map int_of_string_opt formats in
          Ok { media_type; port; transport; formats; attributes = [] })
  | _ -> Error (Printf.sprintf "SDP: bad m= line %S" value)

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.map (fun line ->
           let n = String.length line in
           if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line)
    |> List.filter (fun line -> line <> "")
  in
  let ( let* ) r f = Result.bind r f in
  let rec go acc current_media = function
    | [] ->
        let acc =
          match current_media with
          | None -> acc
          | Some m -> { acc with media = m :: acc.media }
        in
        Ok { acc with media = List.rev acc.media }
    | line :: rest ->
        if String.length line < 2 || line.[1] <> '=' then
          Error (Printf.sprintf "SDP: bad line %S" line)
        else
          let kind = line.[0] in
          let value = String.sub line 2 (String.length line - 2) in
          let* acc, current_media =
            match kind with
            | 'v' -> (
                match int_of_string_opt value with
                | Some v -> Ok ({ acc with version = v }, current_media)
                | None -> Error "SDP: bad v= line")
            | 'o' -> Ok ({ acc with origin = value }, current_media)
            | 's' -> Ok ({ acc with session_name = value }, current_media)
            | 'c' -> (
                match current_media with
                | None -> Ok ({ acc with connection = connection_addr value }, current_media)
                | Some m ->
                    (* Media-level c= overrides; store as attribute. *)
                    Ok (acc, Some { m with attributes = m.attributes @ [ ("c", Some value) ] }))
            | 't' -> Ok ({ acc with timing = value }, current_media)
            | 'm' ->
                let* m = parse_media_line value in
                let acc =
                  match current_media with
                  | None -> acc
                  | Some prev -> { acc with media = prev :: acc.media }
                in
                Ok (acc, Some m)
            | 'a' -> (
                let attr = parse_attribute value in
                match current_media with
                | None ->
                    Ok
                      ( { acc with session_attributes = acc.session_attributes @ [ attr ] },
                        current_media )
                | Some m -> Ok (acc, Some { m with attributes = m.attributes @ [ attr ] }))
            | 'b' | 'k' | 'i' | 'u' | 'e' | 'p' | 'z' | 'r' ->
                Ok (acc, current_media) (* tolerated, ignored *)
            | _ -> Error (Printf.sprintf "SDP: unknown line type %c" kind)
          in
          go acc current_media rest
  in
  let empty =
    {
      version = 0;
      origin = "";
      session_name = "-";
      connection = None;
      timing = "0 0";
      media = [];
      session_attributes = [];
    }
  in
  go empty None lines

let to_string t =
  let buffer = Buffer.create 256 in
  let line kind value =
    Buffer.add_char buffer kind;
    Buffer.add_char buffer '=';
    Buffer.add_string buffer value;
    Buffer.add_string buffer "\r\n"
  in
  line 'v' (string_of_int t.version);
  line 'o' t.origin;
  line 's' t.session_name;
  (match t.connection with None -> () | Some addr -> line 'c' ("IN IP4 " ^ addr));
  line 't' t.timing;
  List.iter
    (fun (name, value) ->
      line 'a' (match value with None -> name | Some v -> name ^ ":" ^ v))
    t.session_attributes;
  List.iter
    (fun m ->
      line 'm'
        (Printf.sprintf "%s %d %s %s" m.media_type m.port m.transport
           (String.concat " " (List.map string_of_int m.formats)));
      List.iter
        (fun (name, value) ->
          match (name, value) with
          | "c", Some v -> line 'c' v
          | _ -> line 'a' (match value with None -> name | Some v -> name ^ ":" ^ v))
        m.attributes)
    t.media;
  Buffer.contents buffer

let pp ppf t = Format.pp_print_string ppf (to_string t)
let first_audio t = List.find_opt (fun m -> m.media_type = "audio") t.media

let media_addr t m =
  match t.connection with Some addr -> Some (addr, m.port) | None -> None

module Payload_type = Payload_type
