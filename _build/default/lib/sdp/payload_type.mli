(** Static RTP/AVP payload type registry (RFC 3551 subset). *)

type info = {
  number : int;
  encoding : string;  (** e.g. ["G729"]. *)
  clock_rate : int;  (** Hz. *)
}

val pcmu : info
(** Payload type 0: G.711 µ-law. *)

val gsm : info
(** Payload type 3. *)

val pcma : info
(** Payload type 8: G.711 A-law. *)

val g722 : info
(** Payload type 9. *)

val g728 : info
(** Payload type 15. *)

val g729 : info
(** Payload type 18 — the codec the paper's testbed uses. *)

val find : int -> info option

val rtpmap : info -> string
(** The [a=rtpmap] attribute value, e.g. ["18 G729/8000"]. *)
