type info = { number : int; encoding : string; clock_rate : int }

let pcmu = { number = 0; encoding = "PCMU"; clock_rate = 8000 }
let gsm = { number = 3; encoding = "GSM"; clock_rate = 8000 }
let pcma = { number = 8; encoding = "PCMA"; clock_rate = 8000 }
let g722 = { number = 9; encoding = "G722"; clock_rate = 8000 }
let g728 = { number = 15; encoding = "G728"; clock_rate = 8000 }
let g729 = { number = 18; encoding = "G729"; clock_rate = 8000 }

let all = [ pcmu; gsm; pcma; g722; g728; g729 ]
let find number = List.find_opt (fun i -> i.number = number) all
let rtpmap i = Printf.sprintf "%d %s/%d" i.number i.encoding i.clock_rate
