lib/sdp/sdp.mli: Format Payload_type
