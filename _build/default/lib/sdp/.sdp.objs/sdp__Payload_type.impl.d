lib/sdp/payload_type.ml: List Printf
