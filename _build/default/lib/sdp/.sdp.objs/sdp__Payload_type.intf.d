lib/sdp/payload_type.mli:
