lib/sdp/sdp.ml: Buffer Format List Payload_type Printf Result String
