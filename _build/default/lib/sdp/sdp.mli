(** Session Description Protocol (RFC 2327 subset).

    Carries exactly what the paper's vIDS reads out of an INVITE/200 body:
    the media connection address, port, transport and offered codecs. *)

type media = {
  media_type : string;  (** ["audio"], ["video"], … *)
  port : int;
  transport : string;  (** ["RTP/AVP"]. *)
  formats : int list;  (** RTP payload type numbers, preference order. *)
  attributes : (string * string option) list;  (** [a=] lines for this m-block. *)
}

type t = {
  version : int;  (** [v=] — always 0. *)
  origin : string;  (** [o=] line, verbatim. *)
  session_name : string;  (** [s=]. *)
  connection : string option;  (** Address from the session-level [c=] line. *)
  timing : string;  (** [t=] line, verbatim. *)
  media : media list;
  session_attributes : (string * string option) list;
}

val make :
  ?session_name:string ->
  origin_user:string ->
  origin_host:string ->
  connection:string ->
  media:media list ->
  unit ->
  t

val audio_media : port:int -> formats:int list -> media
(** An [m=audio] block over RTP/AVP with [a=rtpmap] attributes for known
    payload types. *)

val parse : string -> (t, string) result

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val first_audio : t -> media option

val media_addr : t -> media -> (string * int) option
(** Connection host and port for a media block (session-level [c=] only). *)

(** Re-export of the payload-type registry, since this module is the
    library's sole entry point. *)
module Payload_type : module type of Payload_type
