type t = { host : string; port : int }

let v host port = { host; port }
let equal a b = String.equal a.host b.host && Int.equal a.port b.port

let compare a b =
  let c = String.compare a.host b.host in
  if c <> 0 then c else Int.compare a.port b.port

let host t = t.host
let port t = t.port
let pp ppf t = Format.fprintf ppf "%s:%d" t.host t.port
let to_string t = Format.asprintf "%a" pp t

let of_string s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i -> (
      let host = String.sub s 0 i in
      let port_str = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port_str with
      | Some port when port >= 0 && host <> "" -> Some { host; port }
      | Some _ | None -> None)
