type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

(* Uniform float in [0,1): use the top 53 bits. *)
let unit_float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively;
     modulo bias is negligible for the tiny bounds used here. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let bool t p = unit_float t < p

let exponential t mean =
  let u = unit_float t in
  (* 1 - u is in (0,1], avoiding log 0. *)
  -.mean *. log (1.0 -. u)

let uniform t lo hi = lo +. (unit_float t *. (hi -. lo))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))
