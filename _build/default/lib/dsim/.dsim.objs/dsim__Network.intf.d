lib/dsim/network.mli: Addr Packet Rng Scheduler Time
