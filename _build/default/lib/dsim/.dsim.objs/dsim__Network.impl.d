lib/dsim/network.ml: Array Hashtbl List Packet Printf Queue Rng Scheduler Stat Stdlib Time
