lib/dsim/stat.mli: Format Time
