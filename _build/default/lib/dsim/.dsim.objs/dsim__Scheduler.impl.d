lib/dsim/scheduler.ml: Format Heap Int Time
