lib/dsim/rng.mli:
