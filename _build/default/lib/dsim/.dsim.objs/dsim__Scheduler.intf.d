lib/dsim/scheduler.mli: Time
