lib/dsim/stat.ml: Array Float Format Hashtbl List Stdlib String Time
