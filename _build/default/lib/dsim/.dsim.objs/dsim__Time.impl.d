lib/dsim/time.ml: Float Format Int Stdlib
