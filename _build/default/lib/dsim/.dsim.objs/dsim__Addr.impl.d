lib/dsim/addr.ml: Format Int String
