lib/dsim/packet.ml: Addr Format String Time
