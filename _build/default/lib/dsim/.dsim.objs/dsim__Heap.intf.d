lib/dsim/heap.mli:
