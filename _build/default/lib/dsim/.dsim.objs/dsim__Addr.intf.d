lib/dsim/addr.mli: Format
