lib/dsim/heap.ml: Array Stdlib
