lib/dsim/packet.mli: Addr Format Time
