(** Deterministic pseudo-random number generation.

    A small splitmix64 generator: fast, seedable, and stable across runs and
    platforms, which keeps every experiment in the benchmark harness
    reproducible.  Each stream is independent; derive sub-streams with
    {!split} so concurrent entities draw from uncorrelated sequences. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives a new independent generator, advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)].  [bound] must be
    positive. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given mean (in the caller's unit). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] draws uniformly from [\[lo, hi)]. *)

val pick : t -> 'a array -> 'a
(** Uniformly pick an array element.  Raises [Invalid_argument] on an empty
    array. *)
