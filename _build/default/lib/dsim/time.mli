(** Simulated time.

    All simulation timestamps and durations are integer microseconds, which
    keeps event ordering exact and runs reproducible across hosts.  Negative
    values are permitted for durations (e.g. time differences) but the
    scheduler never runs at a negative absolute time. *)

type t = int
(** Microseconds since the start of the simulation. *)

val zero : t

val of_sec : float -> t
(** [of_sec s] rounds [s] seconds to the nearest microsecond. *)

val to_sec : t -> float

val of_ms : float -> t

val to_ms : t -> float

val of_us : int -> t

val to_us : t -> int

val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] is [a - b]. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( < ) : t -> t -> bool

val ( >= ) : t -> t -> bool

val ( > ) : t -> t -> bool

val min : t -> t -> t

val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints as seconds with microsecond precision, e.g. ["12.345678s"]. *)
