(** Transport addresses: an IPv4-style host string plus a UDP port. *)

type t = { host : string; port : int }

val v : string -> int -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val host : t -> string

val port : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as ["host:port"]. *)

val to_string : t -> string

val of_string : string -> t option
(** Parses ["host:port"]. *)
