type t = int

let zero = 0
let of_sec s = int_of_float (Float.round (s *. 1e6))
let to_sec t = float_of_int t /. 1e6
let of_ms ms = int_of_float (Float.round (ms *. 1e3))
let to_ms t = float_of_int t /. 1e3
let of_us us = us
let to_us t = t
let add = ( + )
let sub = ( - )
let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let min (a : t) b = Stdlib.min a b
let max (a : t) b = Stdlib.max a b
let pp ppf t = Format.fprintf ppf "%d.%06ds" (t / 1_000_000) (abs (t mod 1_000_000))
