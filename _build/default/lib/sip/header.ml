type t = (string * string) list

let empty = []

let compact_table =
  [
    ("v", "Via");
    ("f", "From");
    ("t", "To");
    ("i", "Call-ID");
    ("m", "Contact");
    ("c", "Content-Type");
    ("l", "Content-Length");
    ("e", "Content-Encoding");
    ("s", "Subject");
    ("k", "Supported");
  ]

let known_table =
  [
    ("via", "Via");
    ("from", "From");
    ("to", "To");
    ("call-id", "Call-ID");
    ("cseq", "CSeq");
    ("contact", "Contact");
    ("max-forwards", "Max-Forwards");
    ("content-type", "Content-Type");
    ("content-length", "Content-Length");
    ("content-encoding", "Content-Encoding");
    ("route", "Route");
    ("record-route", "Record-Route");
    ("expires", "Expires");
    ("user-agent", "User-Agent");
    ("server", "Server");
    ("allow", "Allow");
    ("supported", "Supported");
    ("require", "Require");
    ("subject", "Subject");
    ("authorization", "Authorization");
    ("www-authenticate", "WWW-Authenticate");
    ("proxy-authorization", "Proxy-Authorization");
    ("warning", "Warning");
    ("timestamp", "Timestamp");
    ("organization", "Organization");
    ("priority", "Priority");
    ("retry-after", "Retry-After");
    ("min-expires", "Min-Expires");
    ("event", "Event");
    ("refer-to", "Refer-To");
    ("rack", "RAck");
    ("rseq", "RSeq");
  ]

(* Title-case each '-'-separated word: "x-custom-header" -> "X-Custom-Header". *)
let title_case s =
  String.split_on_char '-' s
  |> List.map (fun word ->
         if word = "" then ""
         else
           String.make 1 (Char.uppercase_ascii word.[0])
           ^ String.lowercase_ascii (String.sub word 1 (String.length word - 1)))
  |> String.concat "-"

let canonical_name name =
  let lower = String.lowercase_ascii name in
  match List.assoc_opt lower compact_table with
  | Some canon -> canon
  | None -> (
      match List.assoc_opt lower known_table with
      | Some canon -> canon
      | None -> title_case lower)

let add t name value = t @ [ (canonical_name name, value) ]
let add_first t name value = (canonical_name name, value) :: t

let same name (field, _) = String.equal field name

let get t name =
  let name = canonical_name name in
  match List.find_opt (same name) t with None -> None | Some (_, v) -> Some v

(* Split "a, b, c" while ignoring commas inside "..." and <...>. *)
let split_list_value value =
  let parts = ref [] in
  let buffer = Buffer.create 16 in
  let in_quotes = ref false in
  let in_brackets = ref false in
  let flush () =
    let piece = String.trim (Buffer.contents buffer) in
    Buffer.clear buffer;
    if piece <> "" then parts := piece :: !parts
  in
  String.iter
    (fun c ->
      match c with
      | '"' ->
          in_quotes := not !in_quotes;
          Buffer.add_char buffer c
      | '<' when not !in_quotes ->
          in_brackets := true;
          Buffer.add_char buffer c
      | '>' when not !in_quotes ->
          in_brackets := false;
          Buffer.add_char buffer c
      | ',' when (not !in_quotes) && not !in_brackets -> flush ()
      | _ -> Buffer.add_char buffer c)
    value;
  flush ();
  List.rev !parts

let get_all t name =
  let name = canonical_name name in
  List.concat_map (fun (field, v) -> if String.equal field name then split_list_value v else []) t

let remove t name =
  let name = canonical_name name in
  List.filter (fun f -> not (same name f)) t

let set t name value = remove t name @ [ (canonical_name name, value) ]

let remove_first t name =
  let name = canonical_name name in
  let rec drop = function
    | [] -> []
    | field :: rest -> if same name field then rest else field :: drop rest
  in
  drop t

let mem t name = Option.is_some (get t name)
let fold f t init = List.fold_left (fun acc (name, value) -> f name value acc) init t
let to_list t = t
let of_list fields = List.map (fun (name, value) -> (canonical_name name, value)) fields
