type t = { display : string option; uri : Uri.t; params : (string * string option) list }

let make ?display ?(params = []) uri = { display; uri; params }

let parse_params s =
  String.split_on_char ';' s
  |> List.filter (fun p -> String.trim p <> "")
  |> List.map (fun p ->
         let p = String.trim p in
         match String.index_opt p '=' with
         | None -> (p, None)
         | Some i -> (String.sub p 0 i, Some (String.sub p (i + 1) (String.length p - i - 1))))

let parse s =
  let s = String.trim s in
  match String.index_opt s '<' with
  | Some lt -> (
      match String.index_opt s '>' with
      | None -> Error "name-addr: unmatched '<'"
      | Some gt when gt < lt -> Error "name-addr: '>' before '<'"
      | Some gt -> (
          let display_raw = String.trim (String.sub s 0 lt) in
          let display =
            if display_raw = "" then None
            else if
              String.length display_raw >= 2
              && display_raw.[0] = '"'
              && display_raw.[String.length display_raw - 1] = '"'
            then Some (String.sub display_raw 1 (String.length display_raw - 2))
            else Some display_raw
          in
          let uri_text = String.sub s (lt + 1) (gt - lt - 1) in
          let after = String.sub s (gt + 1) (String.length s - gt - 1) in
          let params =
            match String.index_opt after ';' with
            | None -> []
            | Some i -> parse_params (String.sub after (i + 1) (String.length after - i - 1))
          in
          match Uri.parse uri_text with
          | Error e -> Error e
          | Ok uri -> Ok { display; uri; params }))
  | None -> (
      (* Bare addr-spec: per RFC 3261 §20.10, parameters after the URI belong
         to the header, not the URI. *)
      let uri_text, params =
        match String.index_opt s ';' with
        | None -> (s, [])
        | Some i ->
            (String.sub s 0 i, parse_params (String.sub s (i + 1) (String.length s - i - 1)))
      in
      match Uri.parse uri_text with Error e -> Error e | Ok uri -> Ok { display = None; uri; params })

let to_string t =
  let buffer = Buffer.create 48 in
  (match t.display with
  | None -> ()
  | Some d ->
      Buffer.add_char buffer '"';
      Buffer.add_string buffer d;
      Buffer.add_string buffer "\" ");
  Buffer.add_char buffer '<';
  Buffer.add_string buffer (Uri.to_string t.uri);
  Buffer.add_char buffer '>';
  List.iter
    (fun (name, value) ->
      Buffer.add_char buffer ';';
      Buffer.add_string buffer name;
      match value with
      | None -> ()
      | Some v ->
          Buffer.add_char buffer '=';
          Buffer.add_string buffer v)
    t.params;
  Buffer.contents buffer

let pp ppf t = Format.pp_print_string ppf (to_string t)

let param t name =
  match List.find_opt (fun (n, _) -> String.equal n name) t.params with
  | None -> None
  | Some (_, v) -> Some v

let tag t = match param t "tag" with Some (Some v) -> Some v | Some None | None -> None

let with_tag t tag_value =
  let params = List.filter (fun (n, _) -> n <> "tag") t.params in
  { t with params = params @ [ ("tag", Some tag_value) ] }
