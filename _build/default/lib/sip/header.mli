(** SIP header field collection.

    Headers are an ordered multimap: order matters for Via and Route stacks.
    Field names compare case-insensitively and compact forms (["v"] for
    ["Via"], …) are normalized to their canonical long names at insertion. *)

type t

val empty : t

val canonical_name : string -> string
(** Expands compact forms and title-cases known fields, e.g.
    [canonical_name "i" = "Call-ID"], [canonical_name "cseq" = "CSeq"]. *)

val add : t -> string -> string -> t
(** Appends at the end (after any same-named fields). *)

val add_first : t -> string -> string -> t
(** Prepends before any same-named fields (used for Via pushing). *)

val get : t -> string -> string option
(** First value of the field, if any. *)

val get_all : t -> string -> string list
(** All values in order, comma-separated list values split apart.  Splitting
    respects quoted strings and angle brackets. *)

val set : t -> string -> string -> t
(** Replaces every occurrence with a single field. *)

val remove : t -> string -> t

val remove_first : t -> string -> t
(** Removes only the first occurrence (used for Via popping). *)

val mem : t -> string -> bool

val fold : (string -> string -> 'a -> 'a) -> t -> 'a -> 'a
(** In field order. *)

val to_list : t -> (string * string) list

val of_list : (string * string) list -> t

val split_list_value : string -> string list
(** Splits a comma-separated header value, honouring quotes and [<>]. *)
