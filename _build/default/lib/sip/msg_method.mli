(** SIP request methods (RFC 3261 plus common extensions). *)

type t =
  | INVITE
  | ACK
  | BYE
  | CANCEL
  | REGISTER
  | OPTIONS
  | INFO
  | UPDATE
  | PRACK
  | SUBSCRIBE
  | NOTIFY
  | REFER
  | MESSAGE
  | Extension of string
      (** Any other token; kept verbatim so unknown methods still parse. *)

val to_string : t -> string

val of_string : string -> t
(** Method names are case-sensitive tokens in SIP; unknown ones map to
    [Extension]. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val is_standard : t -> bool
