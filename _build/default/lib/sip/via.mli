(** Via header fields: [SIP/2.0/UDP host:port;branch=...;received=...]. *)

type t = {
  transport : string;  (** ["UDP"], ["TCP"], … *)
  host : string;
  port : int option;
  params : (string * string option) list;
}

val make : ?transport:string -> ?port:int -> ?branch:string -> string -> t

val parse : string -> (t, string) result

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val branch : t -> string option

val param : t -> string -> string option option

val with_param : t -> string -> string option -> t

val sent_by : t -> Dsim.Addr.t
(** Host and port (5060 when absent). *)

val magic_cookie : string
(** ["z9hG4bK"], the RFC 3261 branch prefix. *)
