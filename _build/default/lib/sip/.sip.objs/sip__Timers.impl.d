lib/sip/timers.ml: Dsim
