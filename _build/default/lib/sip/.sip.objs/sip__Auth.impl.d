lib/sip/auth.ml: Hashtbl Header Ident List Msg Msg_method Printf String Uri
