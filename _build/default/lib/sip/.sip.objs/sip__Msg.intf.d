lib/sip/msg.mli: Cseq Format Header Msg_method Name_addr Status Uri Via
