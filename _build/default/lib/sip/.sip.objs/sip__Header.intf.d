lib/sip/header.mli:
