lib/sip/msg.ml: Buffer Cseq Format Header List Msg_method Name_addr Option Printf Result Status String Uri Via
