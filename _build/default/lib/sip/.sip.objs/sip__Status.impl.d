lib/sip/status.ml: Format Printf
