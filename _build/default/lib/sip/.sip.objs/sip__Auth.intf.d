lib/sip/auth.mli: Ident Msg Msg_method Uri
