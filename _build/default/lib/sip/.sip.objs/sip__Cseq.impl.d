lib/sip/cseq.ml: Format Int List Msg_method Printf String
