lib/sip/uri.ml: Buffer Format Int List Option Printf Result String
