lib/sip/msg_method.mli: Format
