lib/sip/header.ml: Buffer Char List Option String
