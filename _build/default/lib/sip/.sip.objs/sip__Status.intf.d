lib/sip/status.mli: Format
