lib/sip/via.ml: Buffer Dsim Format List Option Printf String
