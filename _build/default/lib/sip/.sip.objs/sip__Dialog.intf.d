lib/sip/dialog.mli: Cseq Format Msg Msg_method Uri
