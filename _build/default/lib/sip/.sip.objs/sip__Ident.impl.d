lib/sip/ident.ml: Dsim Printf String Via
