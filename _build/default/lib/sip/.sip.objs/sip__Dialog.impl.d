lib/sip/dialog.ml: Cseq Format Msg Name_addr Option Result Status String Uri
