lib/sip/msg_method.ml: Format String
