lib/sip/cseq.mli: Format Msg_method
