lib/sip/uri.mli: Format
