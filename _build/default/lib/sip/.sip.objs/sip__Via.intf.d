lib/sip/via.mli: Dsim Format
