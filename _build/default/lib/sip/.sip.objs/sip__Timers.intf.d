lib/sip/timers.mli: Dsim
