lib/sip/transaction.mli: Dsim Msg
