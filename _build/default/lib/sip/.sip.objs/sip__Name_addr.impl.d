lib/sip/name_addr.ml: Buffer Format List String Uri
