lib/sip/transaction.ml: Dsim Msg Msg_method Option Status Timers Via
