lib/sip/ident.mli: Dsim
