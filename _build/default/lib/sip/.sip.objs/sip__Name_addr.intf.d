lib/sip/name_addr.mli: Format Uri
