type t = {
  transport : string;
  host : string;
  port : int option;
  params : (string * string option) list;
}

let magic_cookie = "z9hG4bK"

let make ?(transport = "UDP") ?port ?branch host =
  let params = match branch with None -> [] | Some b -> [ ("branch", Some b) ] in
  { transport; host; port; params }

let parse_params s =
  String.split_on_char ';' s
  |> List.filter (fun p -> String.trim p <> "")
  |> List.map (fun p ->
         let p = String.trim p in
         match String.index_opt p '=' with
         | None -> (p, None)
         | Some i -> (String.sub p 0 i, Some (String.sub p (i + 1) (String.length p - i - 1))))

let parse s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> Error "Via: missing sent-by"
  | Some space -> (
      let protocol = String.sub s 0 space in
      let rest = String.trim (String.sub s (space + 1) (String.length s - space - 1)) in
      match String.split_on_char '/' protocol with
      | [ "SIP"; "2.0"; transport ] -> (
          let hostport, params =
            match String.index_opt rest ';' with
            | None -> (rest, [])
            | Some i ->
                ( String.sub rest 0 i,
                  parse_params (String.sub rest (i + 1) (String.length rest - i - 1)) )
          in
          match String.index_opt hostport ':' with
          | None ->
              if hostport = "" then Error "Via: empty host"
              else Ok { transport; host = hostport; port = None; params }
          | Some i -> (
              let host = String.sub hostport 0 i in
              let port_str = String.sub hostport (i + 1) (String.length hostport - i - 1) in
              match int_of_string_opt port_str with
              | Some port -> Ok { transport; host; port = Some port; params }
              | None -> Error (Printf.sprintf "Via: bad port %S" port_str)))
      | _ -> Error (Printf.sprintf "Via: bad protocol %S" protocol))

let to_string t =
  let buffer = Buffer.create 48 in
  Buffer.add_string buffer "SIP/2.0/";
  Buffer.add_string buffer t.transport;
  Buffer.add_char buffer ' ';
  Buffer.add_string buffer t.host;
  (match t.port with
  | None -> ()
  | Some p ->
      Buffer.add_char buffer ':';
      Buffer.add_string buffer (string_of_int p));
  List.iter
    (fun (name, value) ->
      Buffer.add_char buffer ';';
      Buffer.add_string buffer name;
      match value with
      | None -> ()
      | Some v ->
          Buffer.add_char buffer '=';
          Buffer.add_string buffer v)
    t.params;
  Buffer.contents buffer

let pp ppf t = Format.pp_print_string ppf (to_string t)

let param t name =
  match List.find_opt (fun (n, _) -> String.equal n name) t.params with
  | None -> None
  | Some (_, v) -> Some v

let branch t = match param t "branch" with Some (Some v) -> Some v | Some None | None -> None

let with_param t name value =
  let params = List.filter (fun (n, _) -> not (String.equal n name)) t.params in
  { t with params = params @ [ (name, value) ] }

let sent_by t = Dsim.Addr.v t.host (Option.value t.port ~default:5060)
