type start_line =
  | Request of { meth : Msg_method.t; uri : Uri.t }
  | Response of { code : Status.t; reason : string }

type t = { start : start_line; headers : Header.t; body : string }

let sip_version = "SIP/2.0"

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let request ~meth ~uri ~via ~from_ ~to_ ~call_id ~cseq ?contact ?(max_forwards = 70)
    ?(headers = []) ?(body = "") ?content_type () =
  let h = Header.empty in
  let h = Header.add h "Via" (Via.to_string via) in
  let h = Header.add h "Max-Forwards" (string_of_int max_forwards) in
  let h = Header.add h "From" (Name_addr.to_string from_) in
  let h = Header.add h "To" (Name_addr.to_string to_) in
  let h = Header.add h "Call-ID" call_id in
  let h = Header.add h "CSeq" (Cseq.to_string cseq) in
  let h =
    match contact with None -> h | Some c -> Header.add h "Contact" (Name_addr.to_string c)
  in
  let h =
    match content_type with None -> h | Some ct -> Header.add h "Content-Type" ct
  in
  let h = List.fold_left (fun h (name, value) -> Header.add h name value) h headers in
  { start = Request { meth; uri }; headers = h; body }

let response_to req ~code ?reason ?(body = "") ?content_type ?(headers = []) ?to_tag () =
  match req.start with
  | Response _ -> invalid_arg "Msg.response_to: argument is a response"
  | Request _ ->
      let copy name h =
        List.fold_left
          (fun h v -> Header.add h name v)
          h
          (List.filter_map
             (fun (n, v) -> if String.equal n (Header.canonical_name name) then Some v else None)
             (Header.to_list req.headers))
      in
      let h = Header.empty in
      let h = copy "Via" h in
      (* Dialog-forming responses echo the Record-Route set (§12.1.1). *)
      let h = copy "Record-Route" h in
      let h = copy "From" h in
      let h =
        match (Header.get req.headers "To", to_tag) with
        | Some to_value, Some tag -> (
            match Name_addr.parse to_value with
            | Ok na when Name_addr.tag na = None ->
                Header.add h "To" (Name_addr.to_string (Name_addr.with_tag na tag))
            | Ok _ | Error _ -> Header.add h "To" to_value)
        | Some to_value, None -> Header.add h "To" to_value
        | None, _ -> h
      in
      let h =
        match Header.get req.headers "Call-ID" with
        | Some v -> Header.add h "Call-ID" v
        | None -> h
      in
      let h =
        match Header.get req.headers "CSeq" with Some v -> Header.add h "CSeq" v | None -> h
      in
      let h =
        match content_type with None -> h | Some ct -> Header.add h "Content-Type" ct
      in
      let h = List.fold_left (fun h (name, value) -> Header.add h name value) h headers in
      let reason = match reason with Some r -> r | None -> Status.reason_phrase code in
      { start = Response { code; reason }; headers = h; body }

let ack_for req ~response =
  match req.start with
  | Response _ -> invalid_arg "Msg.ack_for: argument is a response"
  | Request { uri; _ } ->
      let copy_from src name h =
        match Header.get src name with Some v -> Header.add h name v | None -> h
      in
      let h = Header.empty in
      (* Same top Via (and branch) as the INVITE for non-2xx ACK. *)
      let h =
        match Header.get req.headers "Via" with Some v -> Header.add h "Via" v | None -> h
      in
      let h = copy_from req.headers "From" h in
      (* To comes from the response so it carries the remote tag. *)
      let h = copy_from response.headers "To" h in
      let h = copy_from req.headers "Call-ID" h in
      let h =
        match Header.get req.headers "CSeq" with
        | Some v -> (
            match Cseq.parse v with
            | Ok c -> Header.add h "CSeq" (Cseq.to_string { c with meth = Msg_method.ACK })
            | Error _ -> h)
        | None -> h
      in
      let h = Header.add h "Max-Forwards" "70" in
      { start = Request { meth = Msg_method.ACK; uri }; headers = h; body = "" }

(* ------------------------------------------------------------------ *)
(* Wire format                                                         *)
(* ------------------------------------------------------------------ *)

let split_head_body text =
  let rec find i =
    if i + 3 < String.length text then
      if text.[i] = '\r' && text.[i + 1] = '\n' && text.[i + 2] = '\r' && text.[i + 3] = '\n'
      then Some (i, i + 4)
      else if text.[i] = '\n' && text.[i + 1] = '\n' then Some (i, i + 2)
      else find (i + 1)
    else if i + 1 < String.length text && text.[i] = '\n' && text.[i + 1] = '\n' then
      Some (i, i + 2)
    else None
  in
  match find 0 with
  | Some (head_end, body_start) ->
      ( String.sub text 0 head_end,
        String.sub text body_start (String.length text - body_start) )
  | None -> (text, "")

let split_lines head =
  (* Split on CRLF or LF, then unfold continuations (lines starting with
     whitespace extend the previous line). *)
  let raw = String.split_on_char '\n' head in
  let raw =
    List.map
      (fun line ->
        let n = String.length line in
        if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line)
      raw
  in
  let rec unfold acc = function
    | [] -> List.rev acc
    | line :: rest when line <> "" && (line.[0] = ' ' || line.[0] = '\t') -> (
        match acc with
        | prev :: acc' -> unfold ((prev ^ " " ^ String.trim line) :: acc') rest
        | [] -> unfold [ String.trim line ] rest)
    | line :: rest -> unfold (line :: acc) rest
  in
  unfold [] raw

let parse_start_line line =
  if String.length line >= 8 && String.sub line 0 8 = "SIP/2.0 " then begin
    (* Response: SIP/2.0 code reason *)
    let rest = String.sub line 8 (String.length line - 8) in
    match String.index_opt rest ' ' with
    | None -> (
        match int_of_string_opt rest with
        | Some code when code >= 100 && code <= 699 -> Ok (Response { code; reason = "" })
        | Some _ | None -> Error (Printf.sprintf "bad status line %S" line))
    | Some i -> (
        let code_str = String.sub rest 0 i in
        let reason = String.sub rest (i + 1) (String.length rest - i - 1) in
        match int_of_string_opt code_str with
        | Some code when code >= 100 && code <= 699 -> Ok (Response { code; reason })
        | Some _ | None -> Error (Printf.sprintf "bad status code %S" code_str))
  end
  else
    match String.split_on_char ' ' line with
    | [ method_str; uri_str; version ] when version = sip_version -> (
        match Uri.parse uri_str with
        | Ok uri -> Ok (Request { meth = Msg_method.of_string method_str; uri })
        | Error e -> Error e)
    | _ -> Error (Printf.sprintf "bad request line %S" line)

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> Error (Printf.sprintf "bad header line %S" line)
  | Some i ->
      let name = String.trim (String.sub line 0 i) in
      let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      if name = "" then Error (Printf.sprintf "empty header name in %S" line)
      else Ok (name, value)

let parse text =
  let ( let* ) r f = Result.bind r f in
  let head, body = split_head_body text in
  match split_lines head with
  | [] -> Error "empty message"
  | start_text :: header_lines ->
      let* start = parse_start_line start_text in
      let* headers =
        List.fold_left
          (fun acc line ->
            let* h = acc in
            if String.trim line = "" then Ok h
            else
              let* name, value = parse_header_line line in
              Ok (Header.add h name value))
          (Ok Header.empty) header_lines
      in
      let* body =
        match Header.get headers "Content-Length" with
        | None -> Ok body
        | Some len_str -> (
            match int_of_string_opt (String.trim len_str) with
            | None -> Error (Printf.sprintf "bad Content-Length %S" len_str)
            | Some len when len < 0 -> Error "negative Content-Length"
            | Some len ->
                if len > String.length body then Error "Content-Length exceeds body"
                else Ok (String.sub body 0 len))
      in
      Ok { start; headers; body }

let serialize t =
  let buffer = Buffer.create 512 in
  (match t.start with
  | Request { meth; uri } ->
      Buffer.add_string buffer (Msg_method.to_string meth);
      Buffer.add_char buffer ' ';
      Buffer.add_string buffer (Uri.to_string uri);
      Buffer.add_char buffer ' ';
      Buffer.add_string buffer sip_version
  | Response { code; reason } ->
      Buffer.add_string buffer sip_version;
      Buffer.add_char buffer ' ';
      Buffer.add_string buffer (string_of_int code);
      Buffer.add_char buffer ' ';
      Buffer.add_string buffer reason);
  Buffer.add_string buffer "\r\n";
  let headers = Header.set t.headers "Content-Length" (string_of_int (String.length t.body)) in
  Header.fold
    (fun name value () ->
      Buffer.add_string buffer name;
      Buffer.add_string buffer ": ";
      Buffer.add_string buffer value;
      Buffer.add_string buffer "\r\n")
    headers ();
  Buffer.add_string buffer "\r\n";
  Buffer.add_string buffer t.body;
  Buffer.contents buffer

let pp ppf t =
  match t.start with
  | Request { meth; uri } ->
      Format.fprintf ppf "%a %s (cid=%s)" Msg_method.pp meth (Uri.to_string uri)
        (Option.value (Header.get t.headers "Call-ID") ~default:"?")
  | Response { code; reason } ->
      Format.fprintf ppf "%d %s (cid=%s)" code reason
        (Option.value (Header.get t.headers "Call-ID") ~default:"?")

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let is_request t = match t.start with Request _ -> true | Response _ -> false
let is_response t = not (is_request t)

let cseq t =
  match Header.get t.headers "CSeq" with
  | None -> Error "missing CSeq"
  | Some v -> Cseq.parse v

let method_of t =
  match t.start with
  | Request { meth; _ } -> Some meth
  | Response _ -> ( match cseq t with Ok c -> Some c.Cseq.meth | Error _ -> None)

let status_of t = match t.start with Response { code; _ } -> Some code | Request _ -> None

let call_id t =
  match Header.get t.headers "Call-ID" with Some v -> Ok v | None -> Error "missing Call-ID"

let name_addr_field t name =
  match Header.get t.headers name with
  | None -> Error (Printf.sprintf "missing %s" name)
  | Some v -> Name_addr.parse v

let from_ t = name_addr_field t "From"
let to_ t = name_addr_field t "To"

let vias t =
  let rec all acc = function
    | [] -> Ok (List.rev acc)
    | v :: rest -> ( match Via.parse v with Ok via -> all (via :: acc) rest | Error e -> Error e)
  in
  match Header.get_all t.headers "Via" with [] -> Error "missing Via" | vs -> all [] vs

let top_via t =
  match Header.get_all t.headers "Via" with
  | [] -> Error "missing Via"
  | v :: _ -> Via.parse v

let contact t = name_addr_field t "Contact"

let max_forwards t =
  match Header.get t.headers "Max-Forwards" with
  | None -> None
  | Some v -> int_of_string_opt (String.trim v)

let content_type t = Header.get t.headers "Content-Type"

let expires t =
  match Header.get t.headers "Expires" with
  | None -> None
  | Some v -> int_of_string_opt (String.trim v)

(* ------------------------------------------------------------------ *)
(* Proxy helpers                                                       *)
(* ------------------------------------------------------------------ *)

let push_via t via = { t with headers = Header.add_first t.headers "Via" (Via.to_string via) }
let pop_via t = { t with headers = Header.remove_first t.headers "Via" }

let decrement_max_forwards t =
  match max_forwards t with
  | None -> Ok { t with headers = Header.set t.headers "Max-Forwards" "70" }
  | Some 0 -> Error "Max-Forwards exhausted"
  | Some n -> Ok { t with headers = Header.set t.headers "Max-Forwards" (string_of_int (n - 1)) }

let transaction_key t =
  let ( let* ) r f = Result.bind r f in
  let* via = top_via t in
  let* c = cseq t in
  let branch = Option.value (Via.branch via) ~default:"no-branch" in
  let meth =
    (* ACK for a non-2xx matches the INVITE server transaction.  CANCEL
       keeps its own transaction; routing a CANCEL to the INVITE it cancels
       is the transaction user's job. *)
    match c.Cseq.meth with Msg_method.ACK -> Msg_method.INVITE | m -> m
  in
  Ok
    (Printf.sprintf "%s|%s:%d|%s" branch via.Via.host
       (Option.value via.Via.port ~default:5060)
       (Msg_method.to_string meth))

let invite_key_of_cancel t =
  let ( let* ) r f = Result.bind r f in
  let* via = top_via t in
  let branch = Option.value (Via.branch via) ~default:"no-branch" in
  Ok
    (Printf.sprintf "%s|%s:%d|INVITE" branch via.Via.host
       (Option.value via.Via.port ~default:5060))
