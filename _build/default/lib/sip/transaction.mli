(** RFC 3261 §17 transaction state machines over unreliable (UDP) transport.

    Transactions own retransmission and timeout behaviour so the transaction
    user (UA core or proxy) only sees de-duplicated requests and responses.
    The server INVITE machine follows RFC 6026: 2xx responses are
    retransmitted by the transaction until the ACK arrives. *)

type transport = {
  sched : Dsim.Scheduler.t;
  send : Msg.t -> Dsim.Addr.t -> unit;  (** Hand a message to the wire. *)
}

(** {1 Client transactions} *)

module Client : sig
  type state = Calling | Trying | Proceeding | Completed | Terminated

  type t

  val create :
    transport ->
    Msg.t ->
    dst:Dsim.Addr.t ->
    on_response:(Msg.t -> unit) ->
    on_timeout:(unit -> unit) ->
    on_terminated:(unit -> unit) ->
    t
  (** Sends the request immediately.  INVITE and non-INVITE machines are
      selected from the request method.  [on_response] fires once per
      distinct provisional and once for the final response; for a non-2xx
      final to an INVITE the ACK is generated automatically. *)

  val receive : t -> Msg.t -> unit
  (** Feed a response matched to this transaction. *)

  val state : t -> state

  val request : t -> Msg.t

  val branch : t -> string
  (** Top Via branch of the request, used for response matching. *)

  val retransmissions : t -> int
  (** Number of request retransmissions performed so far. *)
end

(** {1 Server transactions} *)

module Server : sig
  type state = Trying | Proceeding | Completed | Accepted | Confirmed | Terminated

  type t

  val create :
    transport ->
    Msg.t ->
    src:Dsim.Addr.t ->
    on_ack:(Msg.t -> unit) ->
    on_terminated:(unit -> unit) ->
    t
  (** [src] is where responses are sent (the previous hop).  Retransmitted
      requests are absorbed (last response replayed). *)

  val receive : t -> Msg.t -> unit
  (** Feed a request (retransmission, or the ACK for an INVITE). *)

  val respond : t -> Msg.t -> unit
  (** Transaction user sends a response. *)

  val state : t -> state

  val request : t -> Msg.t

  val key : t -> string
  (** The §17.2.3 matching key of the original request. *)
end
