type t =
  | INVITE
  | ACK
  | BYE
  | CANCEL
  | REGISTER
  | OPTIONS
  | INFO
  | UPDATE
  | PRACK
  | SUBSCRIBE
  | NOTIFY
  | REFER
  | MESSAGE
  | Extension of string

let to_string = function
  | INVITE -> "INVITE"
  | ACK -> "ACK"
  | BYE -> "BYE"
  | CANCEL -> "CANCEL"
  | REGISTER -> "REGISTER"
  | OPTIONS -> "OPTIONS"
  | INFO -> "INFO"
  | UPDATE -> "UPDATE"
  | PRACK -> "PRACK"
  | SUBSCRIBE -> "SUBSCRIBE"
  | NOTIFY -> "NOTIFY"
  | REFER -> "REFER"
  | MESSAGE -> "MESSAGE"
  | Extension s -> s

let of_string = function
  | "INVITE" -> INVITE
  | "ACK" -> ACK
  | "BYE" -> BYE
  | "CANCEL" -> CANCEL
  | "REGISTER" -> REGISTER
  | "OPTIONS" -> OPTIONS
  | "INFO" -> INFO
  | "UPDATE" -> UPDATE
  | "PRACK" -> PRACK
  | "SUBSCRIBE" -> SUBSCRIBE
  | "NOTIFY" -> NOTIFY
  | "REFER" -> REFER
  | "MESSAGE" -> MESSAGE
  | s -> Extension s

let equal a b = String.equal (to_string a) (to_string b)
let compare a b = String.compare (to_string a) (to_string b)
let pp ppf t = Format.pp_print_string ppf (to_string t)
let is_standard = function Extension _ -> false | _ -> true
