(** RFC 3261 timer defaults (UDP transport). *)

val t1 : Dsim.Time.t
(** RTT estimate: 500 ms.  Base for retransmission timers. *)

val t2 : Dsim.Time.t
(** Maximum retransmit interval for non-INVITE requests and INVITE
    responses: 4 s. *)

val t4 : Dsim.Time.t
(** Maximum duration a message remains in the network: 5 s. *)

val timer_b : Dsim.Time.t
(** INVITE client transaction timeout: 64*T1. *)

val timer_d : Dsim.Time.t
(** Wait in Completed for response retransmissions (client INVITE): 32 s. *)

val timer_f : Dsim.Time.t
(** Non-INVITE client transaction timeout: 64*T1. *)

val timer_h : Dsim.Time.t
(** Wait for ACK (server INVITE): 64*T1. *)

val timer_j : Dsim.Time.t
(** Wait for request retransmissions (server non-INVITE): 64*T1. *)
