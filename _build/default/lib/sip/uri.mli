(** SIP URIs (RFC 3261 §19.1 subset).

    Supported shape: [sip:user@host:port;param=value;flag?headers].  The
    [headers] part after ['?'] is kept verbatim; escaping is not
    interpreted — the simulated endpoints never generate escapes, and the
    intrusion detector only compares URIs structurally. *)

type t = {
  scheme : string;  (** ["sip"] or ["sips"]. *)
  user : string option;
  host : string;
  port : int option;
  params : (string * string option) list;  (** In order; flags have no value. *)
  headers : string option;
}

val make :
  ?scheme:string ->
  ?user:string ->
  ?port:int ->
  ?params:(string * string option) list ->
  ?headers:string ->
  string ->
  t
(** [make host] builds a [sip:] URI. *)

val parse : string -> (t, string) result

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
(** Structural equality with case-insensitive scheme/host and order-sensitive
    params — sufficient for the detector's identity checks. *)

val param : t -> string -> string option option
(** [param t name] is [None] when absent, [Some None] for a flag parameter,
    [Some (Some v)] for [name=v]. *)

val with_param : t -> string -> string option -> t
(** Adds or replaces a parameter. *)
