(** The [name-addr] form used by From, To and Contact:
    [\["Display Name"\] <uri>;param=value;...] or a bare [addr-spec] with
    header parameters.  The [tag] parameter identifies dialog ends. *)

type t = {
  display : string option;
  uri : Uri.t;
  params : (string * string option) list;  (** Header params, e.g. [tag]. *)
}

val make : ?display:string -> ?params:(string * string option) list -> Uri.t -> t

val parse : string -> (t, string) result

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val tag : t -> string option

val with_tag : t -> string -> t
(** Replaces any existing tag. *)

val param : t -> string -> string option option
