(** SIP response status codes. *)

type t = int

type klass =
  | Provisional  (** 1xx *)
  | Success  (** 2xx *)
  | Redirection  (** 3xx *)
  | Client_error  (** 4xx *)
  | Server_error  (** 5xx *)
  | Global_failure  (** 6xx *)

val klass : t -> klass
(** Raises [Invalid_argument] outside 100..699. *)

val is_provisional : t -> bool

val is_final : t -> bool

val is_success : t -> bool

val reason_phrase : t -> string
(** Default reason phrase for well-known codes; ["Unknown"] otherwise. *)

val pp : Format.formatter -> t -> unit
