type t = { rng : Dsim.Rng.t; mutable counter : int }

let create rng = { rng; counter = 0 }

let alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

let token t n =
  String.init n (fun _ -> alphabet.[Dsim.Rng.int t.rng (String.length alphabet)])

let unique t prefix =
  t.counter <- t.counter + 1;
  Printf.sprintf "%s%s%d" prefix (token t 8) t.counter

let branch t = unique t Via.magic_cookie
let tag t = unique t ""
let call_id t ~host = Printf.sprintf "%s@%s" (unique t "") host
