type id = { call_id : string; local_tag : string; remote_tag : string }

let pp_id ppf id = Format.fprintf ppf "%s;local=%s;remote=%s" id.call_id id.local_tag id.remote_tag
let id_to_string id = Format.asprintf "%a" pp_id id

type state = Early | Confirmed | Terminated

type t = {
  id : id;
  mutable state : state;
  local_uri : Uri.t;
  remote_uri : Uri.t;
  mutable remote_target : Uri.t;
  mutable local_cseq : int;
  mutable remote_cseq : int option;
  secure : bool;
}

let uac_of_response ~request ~response =
  let ( let* ) r f = Result.bind r f in
  let* call_id = Msg.call_id request in
  let* from_ = Msg.from_ request in
  let* to_ = Msg.to_ response in
  let* local_tag =
    match Name_addr.tag from_ with Some t -> Ok t | None -> Error "UAC From has no tag"
  in
  let* remote_tag =
    match Name_addr.tag to_ with Some t -> Ok t | None -> Error "response To has no tag"
  in
  let* cseq = Msg.cseq request in
  let remote_target =
    match Msg.contact response with Ok c -> c.Name_addr.uri | Error _ -> to_.Name_addr.uri
  in
  let state =
    match Msg.status_of response with
    | Some code when Status.is_success code -> Confirmed
    | Some _ | None -> Early
  in
  Ok
    {
      id = { call_id; local_tag; remote_tag };
      state;
      local_uri = from_.Name_addr.uri;
      remote_uri = to_.Name_addr.uri;
      remote_target;
      local_cseq = cseq.Cseq.number;
      remote_cseq = None;
      secure = false;
    }

let uas_of_request ~request ~local_tag ~contact =
  let ( let* ) r f = Result.bind r f in
  let* call_id = Msg.call_id request in
  let* from_ = Msg.from_ request in
  let* to_ = Msg.to_ request in
  let* remote_tag =
    match Name_addr.tag from_ with Some t -> Ok t | None -> Error "request From has no tag"
  in
  let* cseq = Msg.cseq request in
  Ok
    {
      id = { call_id; local_tag; remote_tag };
      state = Early;
      local_uri = to_.Name_addr.uri;
      remote_uri = from_.Name_addr.uri;
      remote_target = contact;
      local_cseq = 0;
      remote_cseq = Some cseq.Cseq.number;
      secure = false;
    }

let confirm t = if t.state = Early then t.state <- Confirmed
let terminate t = t.state <- Terminated

let next_cseq t meth =
  t.local_cseq <- t.local_cseq + 1;
  Cseq.make t.local_cseq meth

let validate_remote_cseq t number =
  match t.remote_cseq with
  | Some previous when number <= previous -> false
  | Some _ | None ->
      t.remote_cseq <- Some number;
      true

let request_matches t msg =
  match (Msg.call_id msg, Msg.from_ msg, Msg.to_ msg) with
  | Ok call_id, Ok from_, Ok to_ ->
      String.equal call_id t.id.call_id
      && Option.equal String.equal (Name_addr.tag from_) (Some t.id.remote_tag)
      && Option.equal String.equal (Name_addr.tag to_) (Some t.id.local_tag)
  | _ -> false
