type t = int

type klass = Provisional | Success | Redirection | Client_error | Server_error | Global_failure

let klass code =
  match code / 100 with
  | 1 -> Provisional
  | 2 -> Success
  | 3 -> Redirection
  | 4 -> Client_error
  | 5 -> Server_error
  | 6 -> Global_failure
  | _ -> invalid_arg (Printf.sprintf "Status.klass: %d out of range" code)

let is_provisional code = code >= 100 && code <= 199
let is_final code = code >= 200 && code <= 699
let is_success code = code >= 200 && code <= 299

let reason_phrase = function
  | 100 -> "Trying"
  | 180 -> "Ringing"
  | 181 -> "Call Is Being Forwarded"
  | 182 -> "Queued"
  | 183 -> "Session Progress"
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 300 -> "Multiple Choices"
  | 301 -> "Moved Permanently"
  | 302 -> "Moved Temporarily"
  | 305 -> "Use Proxy"
  | 380 -> "Alternative Service"
  | 400 -> "Bad Request"
  | 401 -> "Unauthorized"
  | 403 -> "Forbidden"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 406 -> "Not Acceptable"
  | 407 -> "Proxy Authentication Required"
  | 408 -> "Request Timeout"
  | 410 -> "Gone"
  | 413 -> "Request Entity Too Large"
  | 415 -> "Unsupported Media Type"
  | 416 -> "Unsupported URI Scheme"
  | 420 -> "Bad Extension"
  | 480 -> "Temporarily Unavailable"
  | 481 -> "Call/Transaction Does Not Exist"
  | 482 -> "Loop Detected"
  | 483 -> "Too Many Hops"
  | 484 -> "Address Incomplete"
  | 485 -> "Ambiguous"
  | 486 -> "Busy Here"
  | 487 -> "Request Terminated"
  | 488 -> "Not Acceptable Here"
  | 491 -> "Request Pending"
  | 500 -> "Server Internal Error"
  | 501 -> "Not Implemented"
  | 502 -> "Bad Gateway"
  | 503 -> "Service Unavailable"
  | 504 -> "Server Time-out"
  | 505 -> "Version Not Supported"
  | 513 -> "Message Too Large"
  | 600 -> "Busy Everywhere"
  | 603 -> "Decline"
  | 604 -> "Does Not Exist Anywhere"
  | 606 -> "Not Acceptable"
  | _ -> "Unknown"

let pp ppf code = Format.fprintf ppf "%d %s" code (reason_phrase code)
