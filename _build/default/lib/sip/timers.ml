let t1 = Dsim.Time.of_ms 500.0
let t2 = Dsim.Time.of_sec 4.0
let t4 = Dsim.Time.of_sec 5.0
let timer_b = 64 * t1
let timer_d = Dsim.Time.of_sec 32.0
let timer_f = 64 * t1
let timer_h = 64 * t1
let timer_j = 64 * t1
