(** Digest-style SIP authentication (RFC 3261 §22 shape).

    The paper's threat model §3.1 observes that "a great deal of the
    discussion of possible attacks centers around an assumption of lack of
    proper authentication"; this module supplies the challenge/response
    mechanism so experiments can contrast {e prevention} (auth on) with
    {e detection} (vIDS).  The digest function is a deterministic
    keyed hash standing in for MD5 — the protocol shape (401 challenge,
    nonce, response over method+uri+password) is what matters to the
    simulation, not cryptographic strength. *)

type challenge = { realm : string; nonce : string }

val challenge_header : challenge -> string
(** The [WWW-Authenticate] value: [Digest realm="...", nonce="..."]. *)

val parse_challenge : string -> (challenge, string) result

val response :
  username:string -> password:string -> challenge:challenge -> meth:Msg_method.t ->
  uri:Uri.t -> string
(** The digest response token. *)

val authorization_header :
  username:string -> password:string -> challenge:challenge -> meth:Msg_method.t ->
  uri:Uri.t -> string
(** The [Authorization] value carrying the response. *)

val verify :
  password_of:(string -> string option) -> realm:string -> nonce_valid:(string -> bool) ->
  Msg.t -> bool
(** Checks a request's Authorization header against the credential store.
    False when the header is absent, malformed, for another realm, carries
    a stale nonce, or the response does not match. *)

val fresh_nonce : Ident.t -> string
