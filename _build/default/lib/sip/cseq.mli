(** The CSeq header: a sequence number and the request method. *)

type t = { number : int; meth : Msg_method.t }

val make : int -> Msg_method.t -> t

val parse : string -> (t, string) result

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val next : t -> Msg_method.t -> t
(** Same numbering space, incremented, with the new method. *)
