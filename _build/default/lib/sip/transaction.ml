type transport = { sched : Dsim.Scheduler.t; send : Msg.t -> Dsim.Addr.t -> unit }

let cancel_opt = function None -> () | Some timer -> Dsim.Scheduler.cancel timer

module Client = struct
  type state = Calling | Trying | Proceeding | Completed | Terminated

  type t = {
    transport : transport;
    request : Msg.t;
    dst : Dsim.Addr.t;
    invite : bool;
    branch : string;
    on_response : Msg.t -> unit;
    on_timeout : unit -> unit;
    on_terminated : unit -> unit;
    mutable state : state;
    mutable retransmit_timer : Dsim.Scheduler.timer option;
    mutable timeout_timer : Dsim.Scheduler.timer option;
    mutable linger_timer : Dsim.Scheduler.timer option;
    mutable retransmissions : int;
    mutable ack : Msg.t option; (* ACK sent for a non-2xx final (INVITE only) *)
  }

  let state t = t.state
  let request t = t.request
  let branch t = t.branch
  let retransmissions t = t.retransmissions

  let terminate t =
    if t.state <> Terminated then begin
      t.state <- Terminated;
      cancel_opt t.retransmit_timer;
      cancel_opt t.timeout_timer;
      cancel_opt t.linger_timer;
      t.on_terminated ()
    end

  (* Timer A / E: retransmit while no response, doubling the interval
     (capped at T2 for non-INVITE). *)
  let rec arm_retransmit t interval =
    t.retransmit_timer <-
      Some
        (Dsim.Scheduler.schedule_after t.transport.sched interval (fun () ->
             let retransmit_allowed =
               match t.state with
               | Calling -> true
               | Trying | Proceeding -> not t.invite
               | Completed | Terminated -> false
             in
             if retransmit_allowed then begin
               t.retransmissions <- t.retransmissions + 1;
               t.transport.send t.request t.dst;
               let interval' =
                 if t.invite then 2 * interval else Dsim.Time.min (2 * interval) Timers.t2
               in
               arm_retransmit t interval'
             end))

  let create transport request ~dst ~on_response ~on_timeout ~on_terminated =
    let invite = Msg.method_of request = Some Msg_method.INVITE in
    let branch =
      match Msg.top_via request with
      | Ok via -> Option.value (Via.branch via) ~default:"no-branch"
      | Error _ -> "no-branch"
    in
    let t =
      {
        transport;
        request;
        dst;
        invite;
        branch;
        on_response;
        on_timeout;
        on_terminated;
        state = (if invite then Calling else Trying);
        retransmit_timer = None;
        timeout_timer = None;
        linger_timer = None;
        retransmissions = 0;
        ack = None;
      }
    in
    transport.send request dst;
    arm_retransmit t Timers.t1;
    let timeout = if invite then Timers.timer_b else Timers.timer_f in
    t.timeout_timer <-
      Some
        (Dsim.Scheduler.schedule_after transport.sched timeout (fun () ->
             match t.state with
             | Calling | Trying | Proceeding ->
                 t.on_timeout ();
                 terminate t
             | Completed | Terminated -> ()));
    t

  let send_ack t response =
    let ack =
      match t.ack with
      | Some ack -> ack
      | None ->
          let ack = Msg.ack_for t.request ~response in
          t.ack <- Some ack;
          ack
    in
    t.transport.send ack t.dst

  let receive t response =
    match Msg.status_of response with
    | None -> () (* requests never reach a client transaction *)
    | Some code -> (
        match t.state with
        | Terminated -> ()
        | Completed ->
            (* Response retransmission: replay ACK for INVITE non-2xx. *)
            if t.invite && code >= 300 then send_ack t response
        | Calling | Trying | Proceeding ->
            if Status.is_provisional code then begin
              t.state <- Proceeding;
              t.on_response response
            end
            else if Status.is_success code then begin
              (* 2xx: transaction ends; the TU handles the ACK (INVITE) or
                 nothing further (non-INVITE). *)
              t.on_response response;
              if t.invite then terminate t
              else begin
                t.state <- Completed;
                cancel_opt t.retransmit_timer;
                cancel_opt t.timeout_timer;
                t.linger_timer <-
                  Some (Dsim.Scheduler.schedule_after t.transport.sched Timers.t4 (fun () ->
                           terminate t))
              end
            end
            else begin
              (* Final non-2xx. *)
              t.on_response response;
              t.state <- Completed;
              cancel_opt t.retransmit_timer;
              cancel_opt t.timeout_timer;
              if t.invite then send_ack t response;
              let linger = if t.invite then Timers.timer_d else Timers.t4 in
              t.linger_timer <-
                Some (Dsim.Scheduler.schedule_after t.transport.sched linger (fun () ->
                         terminate t))
            end)
end

module Server = struct
  type state = Trying | Proceeding | Completed | Accepted | Confirmed | Terminated

  type t = {
    transport : transport;
    request : Msg.t;
    src : Dsim.Addr.t;
    invite : bool;
    key : string;
    on_ack : Msg.t -> unit;
    on_terminated : unit -> unit;
    mutable state : state;
    mutable last_response : Msg.t option;
    mutable retransmit_timer : Dsim.Scheduler.timer option;
    mutable timeout_timer : Dsim.Scheduler.timer option;
    mutable linger_timer : Dsim.Scheduler.timer option;
  }

  let state t = t.state
  let request t = t.request
  let key t = t.key

  let terminate t =
    if t.state <> Terminated then begin
      t.state <- Terminated;
      cancel_opt t.retransmit_timer;
      cancel_opt t.timeout_timer;
      cancel_opt t.linger_timer;
      t.on_terminated ()
    end

  let create transport request ~src ~on_ack ~on_terminated =
    let invite = Msg.method_of request = Some Msg_method.INVITE in
    let key = match Msg.transaction_key request with Ok k -> k | Error e -> "bad-key:" ^ e in
    {
      transport;
      request;
      src;
      invite;
      key;
      on_ack;
      on_terminated;
      state = (if invite then Proceeding else Trying);
      last_response = None;
      retransmit_timer = None;
      timeout_timer = None;
      linger_timer = None;
    }

  (* Timer G: retransmit the final INVITE response until ACK, doubling up
     to T2.  Used for both non-2xx (Completed) and 2xx (Accepted). *)
  let rec arm_response_retransmit t interval =
    t.retransmit_timer <-
      Some
        (Dsim.Scheduler.schedule_after t.transport.sched interval (fun () ->
             match (t.state, t.last_response) with
             | (Completed | Accepted), Some response ->
                 t.transport.send response t.src;
                 arm_response_retransmit t (Dsim.Time.min (2 * interval) Timers.t2)
             | _ -> ()))

  let respond t response =
    match t.state with
    | Terminated | Confirmed -> ()
    | Trying | Proceeding | Completed | Accepted -> (
        t.last_response <- Some response;
        t.transport.send response t.src;
        match Msg.status_of response with
        | None -> ()
        | Some code ->
            if Status.is_provisional code then begin
              if t.state = Trying then t.state <- Proceeding
            end
            else if t.invite then begin
              t.state <- (if Status.is_success code then Accepted else Completed);
              arm_response_retransmit t Timers.t1;
              t.timeout_timer <-
                Some
                  (Dsim.Scheduler.schedule_after t.transport.sched Timers.timer_h (fun () ->
                       terminate t))
            end
            else begin
              t.state <- Completed;
              t.linger_timer <-
                Some
                  (Dsim.Scheduler.schedule_after t.transport.sched Timers.timer_j (fun () ->
                       terminate t))
            end)

  let receive t msg =
    match Msg.method_of msg with
    | Some Msg_method.ACK when t.invite -> (
        match t.state with
        | Completed | Accepted ->
            t.state <- Confirmed;
            cancel_opt t.retransmit_timer;
            cancel_opt t.timeout_timer;
            t.on_ack msg;
            t.linger_timer <-
              Some (Dsim.Scheduler.schedule_after t.transport.sched Timers.t4 (fun () ->
                       terminate t))
        | Trying | Proceeding | Confirmed | Terminated -> ())
    | Some _ | None -> (
        (* Request retransmission: replay the latest response, if any. *)
        match (t.state, t.last_response) with
        | (Proceeding | Completed | Accepted), Some response -> t.transport.send response t.src
        | _ -> ())
end
