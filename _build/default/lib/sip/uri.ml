type t = {
  scheme : string;
  user : string option;
  host : string;
  port : int option;
  params : (string * string option) list;
  headers : string option;
}

let make ?(scheme = "sip") ?user ?port ?(params = []) ?headers host =
  { scheme; user; host; port; params; headers }

let parse_params s =
  (* s is the raw text after the first ';' and before '?'. *)
  String.split_on_char ';' s
  |> List.filter (fun p -> p <> "")
  |> List.map (fun p ->
         match String.index_opt p '=' with
         | None -> (p, None)
         | Some i -> (String.sub p 0 i, Some (String.sub p (i + 1) (String.length p - i - 1))))

let parse s =
  let ( let* ) r f = Result.bind r f in
  let* scheme, rest =
    match String.index_opt s ':' with
    | None -> Error "URI: missing scheme"
    | Some i ->
        let scheme = String.lowercase_ascii (String.sub s 0 i) in
        if scheme = "sip" || scheme = "sips" || scheme = "tel" then
          Ok (scheme, String.sub s (i + 1) (String.length s - i - 1))
        else Error (Printf.sprintf "URI: unsupported scheme %S" scheme)
  in
  let rest, headers =
    match String.index_opt rest '?' with
    | None -> (rest, None)
    | Some i ->
        (String.sub rest 0 i, Some (String.sub rest (i + 1) (String.length rest - i - 1)))
  in
  let rest, params =
    match String.index_opt rest ';' with
    | None -> (rest, [])
    | Some i ->
        ( String.sub rest 0 i,
          parse_params (String.sub rest (i + 1) (String.length rest - i - 1)) )
  in
  let user, hostport =
    match String.index_opt rest '@' with
    | None -> (None, rest)
    | Some i -> (Some (String.sub rest 0 i), String.sub rest (i + 1) (String.length rest - i - 1))
  in
  let* host, port =
    match String.index_opt hostport ':' with
    | None -> Ok (hostport, None)
    | Some i -> (
        let host = String.sub hostport 0 i in
        let port_str = String.sub hostport (i + 1) (String.length hostport - i - 1) in
        match int_of_string_opt port_str with
        | Some p when p >= 0 && p <= 65535 -> Ok (host, Some p)
        | Some _ | None -> Error (Printf.sprintf "URI: bad port %S" port_str))
  in
  if host = "" then Error "URI: empty host" else Ok { scheme; user; host; port; params; headers }

let to_string t =
  let buffer = Buffer.create 32 in
  Buffer.add_string buffer t.scheme;
  Buffer.add_char buffer ':';
  (match t.user with
  | None -> ()
  | Some u ->
      Buffer.add_string buffer u;
      Buffer.add_char buffer '@');
  Buffer.add_string buffer t.host;
  (match t.port with
  | None -> ()
  | Some p ->
      Buffer.add_char buffer ':';
      Buffer.add_string buffer (string_of_int p));
  List.iter
    (fun (name, value) ->
      Buffer.add_char buffer ';';
      Buffer.add_string buffer name;
      match value with
      | None -> ()
      | Some v ->
          Buffer.add_char buffer '=';
          Buffer.add_string buffer v)
    t.params;
  (match t.headers with
  | None -> ()
  | Some h ->
      Buffer.add_char buffer '?';
      Buffer.add_string buffer h);
  Buffer.contents buffer

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b =
  String.equal (String.lowercase_ascii a.scheme) (String.lowercase_ascii b.scheme)
  && Option.equal String.equal a.user b.user
  && String.equal (String.lowercase_ascii a.host) (String.lowercase_ascii b.host)
  && Option.equal Int.equal a.port b.port
  && a.params = b.params
  && Option.equal String.equal a.headers b.headers

let param t name =
  match List.find_opt (fun (n, _) -> String.equal n name) t.params with
  | None -> None
  | Some (_, v) -> Some v

let with_param t name value =
  let params = List.filter (fun (n, _) -> not (String.equal n name)) t.params in
  { t with params = params @ [ (name, value) ] }
