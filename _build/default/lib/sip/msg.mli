(** SIP messages: parsing, serialization and typed accessors.

    The grammar is the RFC 3261 subset every endpoint in this repository
    speaks; the parser is deliberately strict about structure (start line,
    mandatory header syntax, Content-Length agreement) because the intrusion
    detection system treats an unparsable message as a protocol violation. *)

type start_line =
  | Request of { meth : Msg_method.t; uri : Uri.t }
  | Response of { code : Status.t; reason : string }

type t = { start : start_line; headers : Header.t; body : string }

(** {1 Construction} *)

val request :
  meth:Msg_method.t ->
  uri:Uri.t ->
  via:Via.t ->
  from_:Name_addr.t ->
  to_:Name_addr.t ->
  call_id:string ->
  cseq:Cseq.t ->
  ?contact:Name_addr.t ->
  ?max_forwards:int ->
  ?headers:(string * string) list ->
  ?body:string ->
  ?content_type:string ->
  unit ->
  t

val response_to : t -> code:Status.t -> ?reason:string -> ?body:string ->
  ?content_type:string -> ?headers:(string * string) list -> ?to_tag:string -> unit -> t
(** Builds a response to a request per RFC 3261 §8.2.6: copies Via stack,
    From, To (adding [to_tag] if the request's To has none), Call-ID and
    CSeq.  Raises [Invalid_argument] when applied to a response. *)

val ack_for : t -> response:t -> t
(** Builds the ACK for a final response to an INVITE (same branch for
    non-2xx per §17.1.1.3; the caller provides the 2xx ACK itself since that
    is a new transaction). *)

(** {1 Wire format} *)

val parse : string -> (t, string) result

val serialize : t -> string
(** CRLF line endings; Content-Length is recomputed from the body. *)

val pp : Format.formatter -> t -> unit
(** One-line summary, e.g. ["INVITE sip:b@b.example (cid=...)"]. *)

(** {1 Predicates} *)

val is_request : t -> bool

val is_response : t -> bool

val method_of : t -> Msg_method.t option
(** For requests, the request method; for responses, the CSeq method. *)

val status_of : t -> Status.t option

(** {1 Typed header accessors}

    Each returns [Error] when the field is missing or malformed; the
    detector reports these as protocol anomalies. *)

val call_id : t -> (string, string) result

val cseq : t -> (Cseq.t, string) result

val from_ : t -> (Name_addr.t, string) result

val to_ : t -> (Name_addr.t, string) result

val vias : t -> (Via.t list, string) result

val top_via : t -> (Via.t, string) result

val contact : t -> (Name_addr.t, string) result

val max_forwards : t -> int option

val content_type : t -> string option

val expires : t -> int option

(** {1 Proxy helpers} *)

val push_via : t -> Via.t -> t

val pop_via : t -> t

val decrement_max_forwards : t -> (t, string) result
(** [Error] when the hop count is exhausted (a 483 condition). *)

val transaction_key : t -> (string, string) result
(** RFC 3261 §17.2.3 server-side matching key: top Via branch + sent-by +
    CSeq method, with ACK folded onto INVITE (an ACK completes the INVITE
    transaction).  A CANCEL keys its own transaction; use
    {!invite_key_of_cancel} to find the INVITE it targets. *)

val invite_key_of_cancel : t -> (string, string) result
(** The transaction key of the INVITE a CANCEL is trying to stop (same
    branch and sent-by, method INVITE). *)
