(** SIP dialogs (RFC 3261 §12): the peer-to-peer relationship created by a
    2xx (or provisional with tag) to an INVITE. *)

type id = { call_id : string; local_tag : string; remote_tag : string }

val pp_id : Format.formatter -> id -> unit

val id_to_string : id -> string

type state = Early | Confirmed | Terminated

type t = {
  id : id;
  mutable state : state;
  local_uri : Uri.t;
  remote_uri : Uri.t;
  mutable remote_target : Uri.t;  (** Contact of the peer. *)
  mutable local_cseq : int;
  mutable remote_cseq : int option;
  secure : bool;
}

val uac_of_response : request:Msg.t -> response:Msg.t -> (t, string) result
(** Dialog as seen by the caller, from its INVITE and a tagged response. *)

val uas_of_request : request:Msg.t -> local_tag:string -> contact:Uri.t ->
  (t, string) result
(** Dialog as seen by the callee, from the incoming INVITE and the tag it
    assigns.  [contact] is the remote target taken from the request. *)

val confirm : t -> unit

val terminate : t -> unit

val next_cseq : t -> Msg_method.t -> Cseq.t
(** Allocates the next local CSeq. *)

val validate_remote_cseq : t -> int -> bool
(** True (and records it) when the CSeq is fresh; false for stale/duplicate
    in-dialog requests. *)

val request_matches : t -> Msg.t -> bool
(** Does an in-dialog request (From/To tags + Call-ID) belong to this
    dialog, from the local end's perspective? *)
