type challenge = { realm : string; nonce : string }

let challenge_header c = Printf.sprintf "Digest realm=%S, nonce=%S" c.realm c.nonce

(* Parse `Digest k="v", k2="v2", ...` *)
let parse_params s =
  String.split_on_char ',' s
  |> List.filter_map (fun part ->
         let part = String.trim part in
         match String.index_opt part '=' with
         | None -> None
         | Some i ->
             let key = String.sub part 0 i in
             let value = String.sub part (i + 1) (String.length part - i - 1) in
             let value =
               let n = String.length value in
               if n >= 2 && value.[0] = '"' && value.[n - 1] = '"' then
                 String.sub value 1 (n - 2)
               else value
             in
             Some (key, value))

let parse_challenge s =
  let s = String.trim s in
  if String.length s < 7 || not (String.equal (String.lowercase_ascii (String.sub s 0 6)) "digest")
  then Error "not a Digest challenge"
  else
    let params = parse_params (String.sub s 6 (String.length s - 6)) in
    match (List.assoc_opt "realm" params, List.assoc_opt "nonce" params) with
    | Some realm, Some nonce -> Ok { realm; nonce }
    | _ -> Error "challenge missing realm or nonce"

(* Deterministic keyed digest standing in for MD5(A1:nonce:A2). *)
let digest parts = Printf.sprintf "%08x%08x" (Hashtbl.hash parts) (Hashtbl.hash (List.rev parts))

let response ~username ~password ~challenge ~meth ~uri =
  digest
    [
      username; challenge.realm; password; challenge.nonce; Msg_method.to_string meth;
      Uri.to_string uri;
    ]

let authorization_header ~username ~password ~challenge ~meth ~uri =
  Printf.sprintf "Digest username=%S, realm=%S, nonce=%S, uri=%S, response=%S" username
    challenge.realm challenge.nonce (Uri.to_string uri)
    (response ~username ~password ~challenge ~meth ~uri)

let verify ~password_of ~realm ~nonce_valid msg =
  match Header.get msg.Msg.headers "Authorization" with
  | None -> false
  | Some value -> (
      match parse_challenge value with
      | Error _ -> false
      | Ok _ -> (
          let params = parse_params (String.sub value 6 (String.length value - 6)) in
          match
            ( List.assoc_opt "username" params,
              List.assoc_opt "realm" params,
              List.assoc_opt "nonce" params,
              List.assoc_opt "uri" params,
              List.assoc_opt "response" params )
          with
          | Some username, Some r, Some nonce, Some uri_str, Some given
            when String.equal r realm && nonce_valid nonce -> (
              match (password_of username, Uri.parse uri_str, msg.Msg.start) with
              | Some password, Ok uri, Msg.Request { meth; _ } ->
                  String.equal given
                    (response ~username ~password ~challenge:{ realm; nonce } ~meth ~uri)
              | _ -> false)
          | _ -> false))

let fresh_nonce ident = Ident.token ident 16
