(** Random protocol identifiers: branches, tags, Call-IDs, SSRC seeds. *)

type t

val create : Dsim.Rng.t -> t

val branch : t -> string
(** A fresh RFC 3261 branch: magic cookie plus unique suffix. *)

val tag : t -> string

val call_id : t -> host:string -> string
(** ["<token>@host"]. *)

val token : t -> int -> string
(** Random lowercase alphanumeric token of the given length. *)
