type t = { number : int; meth : Msg_method.t }

let make number meth = { number; meth }

let parse s =
  match String.split_on_char ' ' (String.trim s) |> List.filter (fun x -> x <> "") with
  | [ number_str; method_str ] -> (
      match int_of_string_opt number_str with
      | Some number when number >= 0 -> Ok { number; meth = Msg_method.of_string method_str }
      | Some _ | None -> Error (Printf.sprintf "CSeq: bad number %S" number_str))
  | _ -> Error (Printf.sprintf "CSeq: malformed %S" s)

let to_string t = Printf.sprintf "%d %s" t.number (Msg_method.to_string t.meth)
let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal a b = Int.equal a.number b.number && Msg_method.equal a.meth b.meth
let next t meth = { number = t.number + 1; meth }
