(** Graphviz export of machine specifications, for documentation and for
    eyeballing the attack patterns against the paper's Figures 4–6. *)

val of_spec : Machine.spec -> string
(** A [digraph] with the initial state marked, final states double-circled
    and attack states filled red. *)
