type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Float of float
  | Addr of string * int
  | Unset

exception Type_error of string

let equal a b =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Float x, Float y -> Float.equal x y
  | Addr (h1, p1), Addr (h2, p2) -> String.equal h1 h2 && Int.equal p1 p2
  | Unset, Unset -> true
  | (Int _ | Str _ | Bool _ | Float _ | Addr _ | Unset), _ -> false

let rank = function
  | Int _ -> 0
  | Str _ -> 1
  | Bool _ -> 2
  | Float _ -> 3
  | Addr _ -> 4
  | Unset -> 5

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Float x, Float y -> Float.compare x y
  | Addr (h1, p1), Addr (h2, p2) ->
      let c = String.compare h1 h2 in
      if c <> 0 then c else Int.compare p1 p2
  | _ -> Int.compare (rank a) (rank b)

let pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.fprintf ppf "%b" b
  | Float f -> Format.fprintf ppf "%g" f
  | Addr (h, p) -> Format.fprintf ppf "%s:%d" h p
  | Unset -> Format.fprintf ppf "<unset>"

let to_string t = Format.asprintf "%a" pp t

let type_error expected got =
  raise (Type_error (Printf.sprintf "expected %s, got %s" expected (to_string got)))

let as_int = function Int n -> n | v -> type_error "int" v
let as_str = function Str s -> s | v -> type_error "string" v
let as_bool = function Bool b -> b | v -> type_error "bool" v
let as_float = function Float f -> f | Int n -> float_of_int n | v -> type_error "float" v
let as_addr = function Addr (h, p) -> (h, p) | v -> type_error "addr" v
