(** Values carried by EFSM state variables and event parameters.

    The paper's model (Definition 1) works over a vector of typed state
    variables [v] with domains [D]; this is the value universe. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Float of float
  | Addr of string * int  (** host, port *)
  | Unset  (** A declared variable before initialization. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Coercions; raise [Type_error] with a descriptive message. *)

exception Type_error of string

val as_int : t -> int

val as_str : t -> string

val as_bool : t -> bool

val as_float : t -> float

val as_addr : t -> string * int
