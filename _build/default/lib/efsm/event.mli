(** EFSM events: the [c?event(x̄)] inputs of the paper's model.

    An event arrives on a channel — either a protocol data channel (a packet
    arrival), an internal synchronization channel between two machines (the
    [δ] messages of Figures 2 and 5), or the timer channel. *)

type channel =
  | Data of string  (** Protocol name, e.g. ["SIP"], ["RTP"]. *)
  | Sync of { from_machine : string }  (** δ message from a peer machine. *)
  | Timer  (** Expiry of a named timer. *)

type t = {
  name : string;  (** e.g. ["INVITE"], ["200"], ["rtp_packet"], ["delta_bye"]. *)
  channel : channel;
  args : (string * Value.t) list;  (** The input vector x̄. *)
  at : Dsim.Time.t;  (** Arrival time (virtual). *)
}

val make : ?args:(string * Value.t) list -> channel -> at:Dsim.Time.t -> string -> t

val arg : t -> string -> Value.t
(** [Value.Unset] when the parameter is absent. *)

val arg_int : t -> string -> int

val arg_str : t -> string -> string

val arg_addr : t -> string -> string * int

val has_arg : t -> string -> bool

val is_sync : t -> bool

val pp : Format.formatter -> t -> unit
