lib/efsm/machine.mli: Dsim Env Event Value
