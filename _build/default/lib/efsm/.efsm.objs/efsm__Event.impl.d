lib/efsm/event.ml: Dsim Format List Value
