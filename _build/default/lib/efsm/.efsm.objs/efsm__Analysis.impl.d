lib/efsm/analysis.ml: Hashtbl List Machine Printf String
