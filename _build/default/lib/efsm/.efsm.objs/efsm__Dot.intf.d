lib/efsm/dot.mli: Machine
