lib/efsm/value.mli: Format
