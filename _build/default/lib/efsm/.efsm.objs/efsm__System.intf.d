lib/efsm/system.mli: Dsim Env Event Machine
