lib/efsm/dot.ml: Buffer List Machine Printf String
