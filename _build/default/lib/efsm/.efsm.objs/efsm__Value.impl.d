lib/efsm/value.ml: Bool Float Format Int Printf String
