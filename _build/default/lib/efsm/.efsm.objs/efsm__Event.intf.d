lib/efsm/event.mli: Dsim Format Value
