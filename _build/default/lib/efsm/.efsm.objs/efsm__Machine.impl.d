lib/efsm/machine.ml: Dsim Env Event List Printf String Value
