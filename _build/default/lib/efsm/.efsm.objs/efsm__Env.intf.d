lib/efsm/env.mli: Value
