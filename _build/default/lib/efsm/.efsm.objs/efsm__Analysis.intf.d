lib/efsm/analysis.mli: Machine
