lib/efsm/env.ml: Hashtbl List String Value
