lib/efsm/system.ml: Dsim Env Event Hashtbl List Machine Printf Queue String
