type channel = Data of string | Sync of { from_machine : string } | Timer

type t = {
  name : string;
  channel : channel;
  args : (string * Value.t) list;
  at : Dsim.Time.t;
}

let make ?(args = []) channel ~at name = { name; channel; args; at }

let arg t name =
  match List.assoc_opt name t.args with Some v -> v | None -> Value.Unset

let arg_int t name = Value.as_int (arg t name)
let arg_str t name = Value.as_str (arg t name)
let arg_addr t name = Value.as_addr (arg t name)
let has_arg t name = List.mem_assoc name t.args
let is_sync t = match t.channel with Sync _ -> true | Data _ | Timer -> false

let pp_channel ppf = function
  | Data proto -> Format.fprintf ppf "%s" proto
  | Sync { from_machine } -> Format.fprintf ppf "sync<%s>" from_machine
  | Timer -> Format.fprintf ppf "timer"

let pp ppf t =
  Format.fprintf ppf "%a?%s(%a) @ %a" pp_channel t.channel t.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (name, value) -> Format.fprintf ppf "%s=%a" name Value.pp value))
    t.args Dsim.Time.pp t.at
