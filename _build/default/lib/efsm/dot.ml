let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let trigger_label = function
  | Machine.On_event n -> n
  | Machine.On_channel proto -> proto ^ "?*"
  | Machine.On_sync n -> "δ:" ^ n
  | Machine.On_timer id -> "timeout(" ^ id ^ ")"

let of_spec (spec : Machine.spec) =
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer (Printf.sprintf "digraph %S {\n" spec.Machine.spec_name);
  Buffer.add_string buffer "  rankdir=LR;\n  node [shape=ellipse];\n";
  List.iter
    (fun state ->
      let attrs =
        if List.mem_assoc state spec.Machine.attack_states then
          " [shape=doubleoctagon,style=filled,fillcolor=salmon]"
        else if List.mem state spec.Machine.finals then " [shape=doublecircle]"
        else if String.equal state spec.Machine.initial then " [style=bold]"
        else ""
      in
      Buffer.add_string buffer (Printf.sprintf "  \"%s\"%s;\n" (escape state) attrs))
    (Machine.states spec);
  List.iter
    (fun tr ->
      Buffer.add_string buffer
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s\"];\n"
           (escape tr.Machine.from_state) (escape tr.Machine.to_state)
           (escape (trigger_label tr.Machine.trigger))))
    spec.Machine.transitions;
  Buffer.add_string buffer "}\n";
  Buffer.contents buffer
