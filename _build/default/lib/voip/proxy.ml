type t = {
  transport : Transport.t;
  domain : string;
  dns : string -> Dsim.Addr.t option;
  record_route : bool;
  auth : (string -> string option) option; (* username -> password *)
  ident : Sip.Ident.t;
  nonces : (string, unit) Hashtbl.t;
  location : Location.t;
  mutable requests_forwarded : int;
  mutable responses_forwarded : int;
  mutable registrations : int;
  mutable rejected : int;
}

let create ?(record_route = false) ?auth transport ~domain ~dns =
  {
    transport;
    domain;
    dns;
    record_route;
    auth;
    ident = Sip.Ident.create (Dsim.Rng.create (Hashtbl.hash domain));
    nonces = Hashtbl.create 16;
    location = Location.create ();
    requests_forwarded = 0;
    responses_forwarded = 0;
    registrations = 0;
    rejected = 0;
  }

let location t = t.location

(* Stateless branch: deterministic function of the incoming top branch so a
   retransmitted request gets the same transaction identity downstream. *)
let stateless_branch msg =
  let seed =
    match Sip.Msg.top_via msg with
    | Ok via -> Option.value (Sip.Via.branch via) ~default:"?"
    | Error _ -> "?"
  in
  let meth =
    match Sip.Msg.method_of msg with Some m -> Sip.Msg_method.to_string m | None -> "?"
  in
  Printf.sprintf "%ssl%08x" Sip.Via.magic_cookie (Hashtbl.hash (seed, meth))

let reply t msg code =
  match Sip.Msg.top_via msg with
  | Error _ -> t.rejected <- t.rejected + 1
  | Ok via ->
      t.rejected <- t.rejected + 1;
      Transport.send_msg t.transport
        (Sip.Msg.response_to msg ~code ~to_tag:"proxy" ())
        (Sip.Via.sent_by via)

(* RFC 3261 §22: challenge unauthenticated REGISTERs when a credential
   store is configured. *)
let authenticated t msg =
  match t.auth with
  | None -> true
  | Some password_of ->
      Sip.Auth.verify ~password_of ~realm:t.domain
        ~nonce_valid:(fun nonce -> Hashtbl.mem t.nonces nonce)
        msg

let send_401 t msg =
  let nonce = Sip.Auth.fresh_nonce t.ident in
  Hashtbl.replace t.nonces nonce ();
  match Sip.Msg.top_via msg with
  | Error _ -> t.rejected <- t.rejected + 1
  | Ok via ->
      Transport.send_msg t.transport
        (Sip.Msg.response_to msg ~code:401 ~to_tag:"auth"
           ~headers:
             [
               ( "WWW-Authenticate",
                 Sip.Auth.challenge_header { Sip.Auth.realm = t.domain; nonce } );
             ]
           ())
        (Sip.Via.sent_by via)

let handle_register t msg =
  if not (authenticated t msg) then send_401 t msg
  else
  match (Sip.Msg.to_ msg, Sip.Msg.contact msg) with
  | Ok to_, Ok contact ->
      let aor = Location.aor_of_uri to_.Sip.Name_addr.uri in
      let uri = contact.Sip.Name_addr.uri in
      let contact_addr =
        Dsim.Addr.v uri.Sip.Uri.host (Option.value uri.Sip.Uri.port ~default:5060)
      in
      (match Sip.Msg.expires msg with
      | Some 0 -> Location.unbind t.location ~aor
      | Some _ | None -> Location.bind t.location ~aor ~contact:contact_addr);
      t.registrations <- t.registrations + 1;
      (match Sip.Msg.top_via msg with
      | Ok via ->
          Transport.send_msg t.transport
            (Sip.Msg.response_to msg ~code:200 ~to_tag:"reg" ())
            (Sip.Via.sent_by via)
      | Error _ -> ())
  | _ -> reply t msg 400

let addr_of_route_value value =
  match Sip.Name_addr.parse value with
  | Ok na ->
      let uri = na.Sip.Name_addr.uri in
      Some (Dsim.Addr.v uri.Sip.Uri.host (Option.value uri.Sip.Uri.port ~default:5060))
  | Error _ -> None

(* Is this Route/Record-Route entry this proxy itself? *)
let route_is_self t value =
  match addr_of_route_value value with
  | Some addr -> Dsim.Addr.equal addr (Transport.local t.transport)
  | None -> false

let forward_request t msg =
  match msg.Sip.Msg.start with
  | Sip.Msg.Response _ -> ()
  | Sip.Msg.Request { meth; uri } -> (
      let is_ack = Sip.Msg_method.equal meth Sip.Msg_method.ACK in
      match Sip.Msg.decrement_max_forwards msg with
      | Error _ -> if not is_ack then reply t msg 483
      | Ok msg -> (
          (* Loose routing (RFC 3261 §16.4): pop our own Route entry. *)
          let msg =
            match Sip.Header.get_all msg.Sip.Msg.headers "Route" with
            | top :: _ when route_is_self t top ->
                { msg with Sip.Msg.headers = Sip.Header.remove_first msg.Sip.Msg.headers "Route" }
            | _ -> msg
          in
          let target =
            (* Remaining Route set wins; otherwise resolve the request URI:
               our domain via the location service, a foreign domain via
               DNS, and a contact-style host:port directly. *)
            match Sip.Header.get_all msg.Sip.Msg.headers "Route" with
            | next :: _ -> addr_of_route_value next
            | [] ->
                if String.equal uri.Sip.Uri.host t.domain then
                  Location.lookup t.location ~aor:(Location.aor_of_uri uri)
                else (
                  match t.dns uri.Sip.Uri.host with
                  | Some addr -> Some addr
                  | None ->
                      Some
                        (Dsim.Addr.v uri.Sip.Uri.host
                           (Option.value uri.Sip.Uri.port ~default:5060)))
          in
          match target with
          | None -> if not is_ack then reply t msg 404
          | Some addr ->
              let local = Transport.local t.transport in
              let via =
                Sip.Via.make ~port:(Dsim.Addr.port local) ~branch:(stateless_branch msg)
                  (Dsim.Addr.host local)
              in
              let msg =
                (* Stay on the signaling path of dialogs we helped form. *)
                if t.record_route && Sip.Msg_method.equal meth Sip.Msg_method.INVITE then
                  {
                    msg with
                    Sip.Msg.headers =
                      Sip.Header.add_first msg.Sip.Msg.headers "Record-Route"
                        (Printf.sprintf "<sip:%s:%d;lr>" (Dsim.Addr.host local)
                           (Dsim.Addr.port local));
                  }
                else msg
              in
              t.requests_forwarded <- t.requests_forwarded + 1;
              Transport.send_msg t.transport (Sip.Msg.push_via msg via) addr))

let forward_response t msg =
  (* Pop our Via; the next Via names the previous hop to deliver to. *)
  let popped = Sip.Msg.pop_via msg in
  match Sip.Msg.top_via popped with
  | Error _ -> t.rejected <- t.rejected + 1
  | Ok via ->
      t.responses_forwarded <- t.responses_forwarded + 1;
      Transport.send_msg t.transport popped (Sip.Via.sent_by via)

let handle_packet t (packet : Dsim.Packet.t) =
  match Sip.Msg.parse packet.payload with
  | Error _ -> t.rejected <- t.rejected + 1
  | Ok msg -> (
      match msg.Sip.Msg.start with
      | Sip.Msg.Response _ -> forward_response t msg
      | Sip.Msg.Request { meth = Sip.Msg_method.REGISTER; uri }
        when String.equal uri.Sip.Uri.host t.domain ->
          handle_register t msg
      | Sip.Msg.Request _ -> forward_request t msg)

let requests_forwarded t = t.requests_forwarded
let responses_forwarded t = t.responses_forwarded
let registrations t = t.registrations
let rejected t = t.rejected
