lib/voip/testbed.ml: Array Call_generator Dsim List Metrics Printf Proxy String Transport Ua Vids
