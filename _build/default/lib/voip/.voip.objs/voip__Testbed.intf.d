lib/voip/testbed.mli: Call_generator Dsim Metrics Proxy Sip Transport Ua Vids
