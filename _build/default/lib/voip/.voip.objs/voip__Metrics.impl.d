lib/voip/metrics.ml: Dsim Hashtbl List String
