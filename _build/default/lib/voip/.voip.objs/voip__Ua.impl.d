lib/voip/ua.ml: Dsim Float Hashtbl Int32 Int64 List Metrics Option Printf Rtp Sdp Sip Transport Txn_manager
