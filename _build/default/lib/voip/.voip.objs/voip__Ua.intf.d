lib/voip/ua.mli: Dsim Metrics Rtp Sip Transport
