lib/voip/transport.ml: Dsim Sip
