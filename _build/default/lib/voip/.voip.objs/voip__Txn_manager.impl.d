lib/voip/txn_manager.ml: Dsim Hashtbl Option Sip Transport
