lib/voip/metrics.mli: Dsim
