lib/voip/location.ml: Dsim Hashtbl Option Sip
