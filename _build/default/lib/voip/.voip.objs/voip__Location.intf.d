lib/voip/location.mli: Dsim Sip
