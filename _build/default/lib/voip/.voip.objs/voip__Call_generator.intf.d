lib/voip/call_generator.mli: Dsim Metrics Sip Ua
