lib/voip/txn_manager.mli: Dsim Sip Transport
