lib/voip/transport.mli: Dsim Sip
