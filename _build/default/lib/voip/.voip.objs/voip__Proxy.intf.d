lib/voip/proxy.mli: Dsim Location Transport
