lib/voip/proxy.ml: Dsim Hashtbl Location Option Printf Sip String Transport
