lib/voip/call_generator.ml: Array Dsim List Metrics Ua
