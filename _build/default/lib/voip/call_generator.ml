type profile = {
  mean_interarrival : Dsim.Time.t;
  mean_duration : Dsim.Time.t;
  min_duration : Dsim.Time.t;
}

let default_profile =
  {
    mean_interarrival = Dsim.Time.of_sec 300.0;
    mean_duration = Dsim.Time.of_sec 90.0;
    min_duration = Dsim.Time.of_sec 5.0;
  }

let start sched rng ~callers ~callees ~metrics ~profile ~until =
  if Array.length callees = 0 then invalid_arg "Call_generator.start: no callees";
  let draw_gap r =
    Dsim.Time.of_sec (Dsim.Rng.exponential r (Dsim.Time.to_sec profile.mean_interarrival))
  in
  let draw_duration r =
    Dsim.Time.max profile.min_duration
      (Dsim.Time.of_sec (Dsim.Rng.exponential r (Dsim.Time.to_sec profile.mean_duration)))
  in
  let arm caller =
    let r = Dsim.Rng.split rng in
    let rec next () =
      let gap = draw_gap r in
      let fire_at = Dsim.Time.add (Dsim.Scheduler.now sched) gap in
      if Dsim.Time.( <= ) fire_at until then
        ignore
          (Dsim.Scheduler.schedule_at sched fire_at (fun () ->
               let callee = Dsim.Rng.pick r callees in
               let duration = draw_duration r in
               Metrics.record_call_arrival metrics ~at:(Dsim.Scheduler.now sched) ~duration;
               Ua.call caller ~callee ~duration;
               next ()))
    in
    next ()
  in
  List.iter arm callers
