(** Location service: AOR → registered contact bindings (paper §2.1). *)

type t

val create : unit -> t

val bind : t -> aor:string -> contact:Dsim.Addr.t -> unit
(** [aor] is the canonical ["user@domain"] form. *)

val unbind : t -> aor:string -> unit

val lookup : t -> aor:string -> Dsim.Addr.t option

val aor_of_uri : Sip.Uri.t -> string

val bindings : t -> int
