(** Experiment measurements collected by the testbed (paper §7). *)

type t

val create : unit -> t

(** {1 Workload (Figure 8)} *)

val record_call_arrival : t -> at:Dsim.Time.t -> duration:Dsim.Time.t -> unit

val arrivals : t -> Dsim.Stat.Series.t
(** One sample per arrival; the value is the planned duration in seconds. *)

(** {1 Call setup delay (Figure 9)} *)

val record_setup : t -> caller:string -> at:Dsim.Time.t -> delay:Dsim.Time.t -> unit

val setup_series : t -> caller:string -> Dsim.Stat.Series.t option

val setup_all : t -> Dsim.Stat.Summary.t

val callers : t -> string list

(** {1 RTP QoS (Figure 10)} *)

val record_rtp_delay : t -> at:Dsim.Time.t -> delay:Dsim.Time.t -> unit

val record_delay_variation : t -> at:Dsim.Time.t -> variation:float -> unit
(** [variation] in seconds: |delayᵢ − delayᵢ₋₁| per stream. *)

val record_jitter : t -> float -> unit
(** Final RFC 3550 jitter estimate of a receiver, in seconds. *)

val rtp_delay : t -> Dsim.Stat.Series.t

val delay_variation : t -> Dsim.Stat.Series.t

val jitter_summary : t -> Dsim.Stat.Summary.t

val record_playout_late : t -> float -> unit
(** Per-call fraction of packets that missed the playout deadline. *)

val playout_late_summary : t -> Dsim.Stat.Summary.t

(** {1 Call accounting} *)

val incr_attempted : t -> unit

val incr_established : t -> unit

val incr_completed : t -> unit

val incr_failed : t -> unit

val attempted : t -> int

val established : t -> int

val completed : t -> int

val failed : t -> int

val rtp_packets_received : t -> int

val incr_rtp_received : t -> unit

val rtcp_packets_received : t -> int

val incr_rtcp_received : t -> unit
