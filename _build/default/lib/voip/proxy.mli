(** A SIP proxy server with an integrated registrar and location service
    (paper §2.1: "the SIP proxy server ... only facilitates the two end
    points to discover and contact each other").

    Forwarding is stateless (RFC 3261 §16.11): requests gain a Via with a
    branch derived deterministically from the incoming one so that
    retransmissions take identical paths; responses are routed by popping
    the Via stack.  REGISTER requests for the proxy's own domain are
    answered locally and recorded in the location service. *)

type t

val create :
  ?record_route:bool ->
  ?auth:(string -> string option) ->
  Transport.t ->
  domain:string ->
  dns:(string -> Dsim.Addr.t option) ->
  t
(** [dns domain] resolves a foreign domain to its inbound proxy.  With
    [record_route] the proxy inserts itself into dialog routes (RFC 3261
    §16.6 step 4, loose routing) so in-dialog requests keep flowing through
    it instead of going direct between the UAs.  With [auth] (a
    username→password credential store) REGISTERs are challenged with a
    401 digest challenge and only authenticated bindings are accepted. *)

val location : t -> Location.t

val handle_packet : t -> Dsim.Packet.t -> unit

val requests_forwarded : t -> int

val responses_forwarded : t -> int

val registrations : t -> int

val rejected : t -> int
(** Requests answered with a failure (404/483/502) or dropped. *)
