type t = { net : Dsim.Network.t; node : Dsim.Network.node; local : Dsim.Addr.t }

let create net node ~local = { net; node; local }
let local t = t.local
let network t = t.net
let node t = t.node
let scheduler t = Dsim.Network.scheduler t.net

let send_raw t ~src ~dst payload =
  let packet = Dsim.Network.make_packet t.net ~src ~dst payload in
  Dsim.Network.send t.net ~from:t.node packet

let send_msg t msg dst = send_raw t ~src:t.local ~dst (Sip.Msg.serialize msg)

let txn_transport t =
  { Sip.Transaction.sched = scheduler t; send = (fun msg dst -> send_msg t msg dst) }
