module Stat = Dsim.Stat

type t = {
  arrivals : Stat.Series.t;
  setups : (string, Stat.Series.t) Hashtbl.t;
  setup_all : Stat.Summary.t;
  rtp_delay : Stat.Series.t;
  delay_variation : Stat.Series.t;
  jitter : Stat.Summary.t;
  playout_late : Stat.Summary.t;
  mutable attempted : int;
  mutable established : int;
  mutable completed : int;
  mutable failed : int;
  mutable rtp_received : int;
  mutable rtcp_received : int;
}

let create () =
  {
    arrivals = Stat.Series.create ~name:"call-arrivals";
    setups = Hashtbl.create 32;
    setup_all = Stat.Summary.create ();
    rtp_delay = Stat.Series.create ~name:"rtp-delay";
    delay_variation = Stat.Series.create ~name:"rtp-delay-variation";
    jitter = Stat.Summary.create ();
    playout_late = Stat.Summary.create ();
    attempted = 0;
    established = 0;
    completed = 0;
    failed = 0;
    rtp_received = 0;
    rtcp_received = 0;
  }

let record_call_arrival t ~at ~duration =
  Stat.Series.add t.arrivals at (Dsim.Time.to_sec duration)

let arrivals t = t.arrivals

let record_setup t ~caller ~at ~delay =
  let series =
    match Hashtbl.find_opt t.setups caller with
    | Some s -> s
    | None ->
        let s = Stat.Series.create ~name:("setup:" ^ caller) in
        Hashtbl.replace t.setups caller s;
        s
  in
  let seconds = Dsim.Time.to_sec delay in
  Stat.Series.add series at seconds;
  Stat.Summary.add t.setup_all seconds

let setup_series t ~caller = Hashtbl.find_opt t.setups caller
let setup_all t = t.setup_all
let callers t = Hashtbl.fold (fun k _ acc -> k :: acc) t.setups [] |> List.sort String.compare
let record_rtp_delay t ~at ~delay = Stat.Series.add t.rtp_delay at (Dsim.Time.to_sec delay)
let record_delay_variation t ~at ~variation = Stat.Series.add t.delay_variation at variation
let record_jitter t j = Stat.Summary.add t.jitter j
let record_playout_late t fraction = Stat.Summary.add t.playout_late fraction
let playout_late_summary t = t.playout_late
let rtp_delay t = t.rtp_delay
let delay_variation t = t.delay_variation
let jitter_summary t = t.jitter
let incr_attempted t = t.attempted <- t.attempted + 1
let incr_established t = t.established <- t.established + 1
let incr_completed t = t.completed <- t.completed + 1
let incr_failed t = t.failed <- t.failed + 1
let attempted t = t.attempted
let established t = t.established
let completed t = t.completed
let failed t = t.failed
let rtp_packets_received t = t.rtp_received
let incr_rtp_received t = t.rtp_received <- t.rtp_received + 1
let rtcp_packets_received t = t.rtcp_received
let incr_rtcp_received t = t.rtcp_received <- t.rtcp_received + 1
