(** UDP transport binding a SIP entity to its network node. *)

type t

val create : Dsim.Network.t -> Dsim.Network.node -> local:Dsim.Addr.t -> t

val local : t -> Dsim.Addr.t

val network : t -> Dsim.Network.t

val node : t -> Dsim.Network.node

val scheduler : t -> Dsim.Scheduler.t

val send_msg : t -> Sip.Msg.t -> Dsim.Addr.t -> unit
(** Serializes and injects the message at this entity's node. *)

val send_raw : t -> src:Dsim.Addr.t -> dst:Dsim.Addr.t -> string -> unit
(** Sends arbitrary bytes (RTP, or deliberately malformed traffic) from a
    chosen source address on this node. *)

val txn_transport : t -> Sip.Transaction.transport
(** The same wire, shaped for the transaction layer. *)
