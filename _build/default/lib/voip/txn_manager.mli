(** Per-entity transaction bookkeeping: matches incoming SIP messages to
    client/server transactions (RFC 3261 §17.1.3/§17.2.3) and surfaces the
    rest to the transaction user. *)

type callbacks = {
  on_request : Sip.Msg.t -> src:Dsim.Addr.t -> Sip.Transaction.Server.t -> unit;
      (** A new server transaction was created for this request. *)
  on_cancel : Sip.Msg.t -> src:Dsim.Addr.t -> Sip.Transaction.Server.t option -> unit;
      (** A CANCEL arrived; the option is the INVITE server transaction it
          targets (answered with its own 200 by the manager already). *)
  on_ack : Sip.Msg.t -> src:Dsim.Addr.t -> unit;
      (** An ACK that matched no transaction (i.e. the ACK for a 2xx). *)
  on_stray_response : Sip.Msg.t -> src:Dsim.Addr.t -> unit;
}

type t

val create : Transport.t -> callbacks -> t

val transport : t -> Transport.t

val request :
  t ->
  Sip.Msg.t ->
  dst:Dsim.Addr.t ->
  on_response:(Sip.Msg.t -> unit) ->
  on_timeout:(unit -> unit) ->
  Sip.Transaction.Client.t
(** Starts a client transaction (sends the request). *)

val handle_packet : t -> Dsim.Packet.t -> unit
(** Feed every SIP datagram addressed to this entity here.  Unparsable
    messages are dropped (counted). *)

val dropped : t -> int

val active_clients : t -> int

val active_servers : t -> int
