type t = (string, Dsim.Addr.t) Hashtbl.t

let create () = Hashtbl.create 32
let bind t ~aor ~contact = Hashtbl.replace t aor contact
let unbind t ~aor = Hashtbl.remove t aor
let lookup t ~aor = Hashtbl.find_opt t aor

let aor_of_uri (uri : Sip.Uri.t) =
  Option.value uri.Sip.Uri.user ~default:"" ^ "@" ^ uri.Sip.Uri.host

let bindings t = Hashtbl.length t
