(** Random call workload (paper §7.1: "UAs of network A generate call
    requests randomly and independently of each other.  The call duration
    and calling interval between calls are also assumed to be randomly
    distributed"). *)

type profile = {
  mean_interarrival : Dsim.Time.t;  (** Per caller, exponential. *)
  mean_duration : Dsim.Time.t;  (** Exponential, clamped to [min_duration]. *)
  min_duration : Dsim.Time.t;
}

val default_profile : profile
(** 300 s mean inter-call gap per UA, 90 s mean talk time. *)

val start :
  Dsim.Scheduler.t ->
  Dsim.Rng.t ->
  callers:Ua.t list ->
  callees:Sip.Uri.t array ->
  metrics:Metrics.t ->
  profile:profile ->
  until:Dsim.Time.t ->
  unit
(** Arms one independent generator per caller; generation stops at [until]
    (calls in progress then run to completion). *)
