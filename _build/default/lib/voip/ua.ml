module Time = Dsim.Time

type call_state = Setup | Active | Ended

type call = {
  call_id : string;
  role : [ `Caller | `Callee ];
  mutable local_media : Dsim.Addr.t;
  mutable state : call_state;
  mutable remote_media : Dsim.Addr.t option;
  mutable peer_contact : Dsim.Addr.t option;
  mutable from_tag : string option; (* our tag when caller, theirs when callee *)
  mutable to_tag : string option;
  mutable local_tag : string; (* our tag regardless of role *)
  mutable remote_tag : string option;
  mutable local_cseq : int;
  mutable sender : Rtp.Session.Sender.t option;
  mutable receiver : Rtp.Session.Receiver.t option;
  mutable playout : Rtp.Playout.t option;
  mutable rtp_timer : Dsim.Scheduler.timer option;
  mutable hangup_timer : Dsim.Scheduler.timer option;
  mutable answer_timer : Dsim.Scheduler.timer option;
  mutable invite_sent_at : Time.t;
  mutable setup_recorded : bool;
  mutable last_rtp_delay : Time.t option;
  mutable invite_server_txn : Sip.Transaction.Server.t option;
  mutable original_invite : Sip.Msg.t option;
  mutable last_ack : Sip.Msg.t option;
  mutable remote_uri : Sip.Uri.t option;
  mutable talking : bool;
  mutable route_set : Dsim.Addr.t list;
}

type t = {
  name : string;
  domain : string;
  local : Dsim.Addr.t;
  proxy : Dsim.Addr.t;
  transport : Transport.t;
  mutable txn_mgr : Txn_manager.t option;
  ident : Sip.Ident.t;
  rng : Dsim.Rng.t;
  codec : Rtp.Codec.t;
  metrics : Metrics.t;
  calls : (string, call) Hashtbl.t;
  media_ports : (int, string) Hashtbl.t;
  mutable next_media_port : int;
  max_concurrent : int;
  vad : bool;
  password : string;
  mutable fraudulent : bool;
}

let sched t = Transport.scheduler t.transport
let now t = Dsim.Scheduler.now (sched t)
let name t = t.name
let addr t = t.local
let transport t = t.transport
let aor t = Sip.Uri.make ~user:t.name t.domain
let set_fraudulent t flag = t.fraudulent <- flag

let txn_mgr t =
  match t.txn_mgr with Some m -> m | None -> failwith "Ua: transaction manager missing"

let cancel_timer = function None -> () | Some timer -> Dsim.Scheduler.cancel timer

let live_calls t =
  Hashtbl.fold (fun _ c acc -> if c.state = Ended then acc else acc + 1) t.calls 0

let alloc_media_port t call_id =
  let port = t.next_media_port in
  t.next_media_port <- t.next_media_port + 2;
  Hashtbl.replace t.media_ports port call_id;
  port

let local_na t call = Sip.Name_addr.make ~params:[ ("tag", Some call.local_tag) ] (aor t)
let contact_na t = Sip.Name_addr.make (Sip.Uri.make ~user:t.name ~port:(Dsim.Addr.port t.local) (Dsim.Addr.host t.local))

let sdp_body_for t media =
  Sdp.to_string
    (Sdp.make ~origin_user:t.name ~origin_host:(Dsim.Addr.host t.local)
       ~connection:(Dsim.Addr.host media)
       ~media:
         [ Sdp.audio_media ~port:(Dsim.Addr.port media)
             ~formats:[ t.codec.Rtp.Codec.payload_type ] ]
       ())

let sdp_body t call = sdp_body_for t call.local_media

let parse_remote_media body =
  match Sdp.parse body with
  | Error _ -> None
  | Ok description -> (
      match Sdp.first_audio description with
      | None -> None
      | Some media -> (
          match Sdp.media_addr description media with
          | Some (host, port) -> Some (Dsim.Addr.v host port)
          | None -> None))

let route_set_of msg ~reversed =
  let addrs =
    List.filter_map
      (fun value ->
        match Sip.Name_addr.parse value with
        | Ok na ->
            let uri = na.Sip.Name_addr.uri in
            Some (Dsim.Addr.v uri.Sip.Uri.host (Option.value uri.Sip.Uri.port ~default:5060))
        | Error _ -> None)
      (Sip.Header.get_all msg.Sip.Msg.headers "Record-Route")
  in
  if reversed then List.rev addrs else addrs

let contact_addr_of msg =
  match Sip.Msg.contact msg with
  | Ok na ->
      let uri = na.Sip.Name_addr.uri in
      Some (Dsim.Addr.v uri.Sip.Uri.host (Option.value uri.Sip.Uri.port ~default:5060))
  | Error _ -> None

(* ------------------------------------------------------------------ *)
(* Media                                                               *)
(* ------------------------------------------------------------------ *)

let stop_media call =
  cancel_timer call.rtp_timer;
  call.rtp_timer <- None

let rec media_tick t call =
  match (call.sender, call.remote_media) with
  | Some sender, Some remote when call.state = Active ->
      if call.talking then begin
        let packet = Rtp.Session.Sender.next_packet sender in
        Transport.send_raw t.transport ~src:call.local_media ~dst:remote
          (Rtp.Rtp_packet.encode packet)
      end;
      call.rtp_timer <-
        Some
          (Dsim.Scheduler.schedule_after (sched t)
             (Rtp.Codec.packet_interval t.codec)
             (fun () -> media_tick t call))
  | _ -> ()

(* Speech activity detection: alternate exponentially-distributed
   talkspurts and silences (the paper's G.729 settings enable SAD).  During
   silence no packets are emitted; on resumption the sender's timestamp has
   advanced and its next packet carries the marker bit. *)
let rec vad_cycle t call =
  if call.state = Active then begin
    call.talking <- true;
    let talk = Time.of_sec (Float.max 0.3 (Dsim.Rng.exponential t.rng 1.5)) in
    ignore
      (Dsim.Scheduler.schedule_after (sched t) talk (fun () ->
           if call.state = Active then begin
             call.talking <- false;
             let silence = Time.of_sec (Float.max 0.2 (Dsim.Rng.exponential t.rng 1.0)) in
             ignore
               (Dsim.Scheduler.schedule_after (sched t) silence (fun () ->
                    (match call.sender with
                    | Some sender -> Rtp.Session.Sender.skip_silence sender silence
                    | None -> ());
                    vad_cycle t call))
           end))
  end

(* RFC 3550 §6: periodic sender reports on the RTCP port (media port + 1).
   Fixed 5 s interval — enough to put realistic RTCP on the wire for the
   classifier without modeling the full interval algorithm. *)
let rec rtcp_tick t call =
  if call.state = Active then begin
    (match (call.sender, call.remote_media) with
    | Some sender, Some remote ->
        let report =
          Rtp.Rtcp.Sender_report
            {
              ssrc = Rtp.Session.Sender.ssrc sender;
              ntp_sec = Int32.of_int (Dsim.Time.to_sec (now t) |> int_of_float);
              rtp_ts = Rtp.Session.Sender.current_timestamp sender;
              packet_count = Int32.of_int (Rtp.Session.Sender.packets_sent sender);
              octet_count =
                Int32.of_int
                  (Rtp.Session.Sender.packets_sent sender * Rtp.Codec.payload_size t.codec);
              blocks = [];
            }
        in
        Transport.send_raw t.transport
          ~src:(Dsim.Addr.v (Dsim.Addr.host call.local_media) (Dsim.Addr.port call.local_media + 1))
          ~dst:(Dsim.Addr.v (Dsim.Addr.host remote) (Dsim.Addr.port remote + 1))
          (Rtp.Rtcp.encode report)
    | _ -> ());
    ignore
      (Dsim.Scheduler.schedule_after (sched t) (Time.of_sec 5.0) (fun () -> rtcp_tick t call))
  end

let start_media t call =
  if call.sender = None then begin
    let ssrc = Dsim.Rng.bits64 t.rng |> Int64.to_int32 in
    let initial_seq = Dsim.Rng.int t.rng 0x10000 in
    let initial_ts = Dsim.Rng.bits64 t.rng |> Int64.to_int32 in
    call.sender <-
      Some (Rtp.Session.Sender.create ~ssrc ~codec:t.codec ~initial_seq ~initial_ts);
    call.receiver <- Some (Rtp.Session.Receiver.create ~clock_rate:t.codec.Rtp.Codec.clock_rate);
    (* A WAN-profile de-jitter depth (fixed buffers are provisioned well
       above the nominal path delay). *)
    call.playout <- Some (Rtp.Playout.create ~target_delay:(Time.of_ms 100.0));
    if t.vad then vad_cycle t call;
    media_tick t call;
    rtcp_tick t call
  end

let handle_media t call (packet : Dsim.Packet.t) =
  match Rtp.Rtp_packet.decode packet.payload with
  | Error _ -> ()
  | Ok decoded ->
      Metrics.incr_rtp_received t.metrics;
      let arrival = now t in
      (match call.receiver with
      | Some receiver -> Rtp.Session.Receiver.observe receiver ~arrival decoded
      | None -> ());
      (match call.playout with
      | Some playout ->
          ignore (Rtp.Playout.offer playout ~capture:packet.Dsim.Packet.sent_at ~arrival)
      | None -> ());
      let delay = Time.sub arrival packet.sent_at in
      Metrics.record_rtp_delay t.metrics ~at:arrival ~delay;
      (match call.last_rtp_delay with
      | Some previous ->
          let variation = Float.abs (Time.to_sec delay -. Time.to_sec previous) in
          Metrics.record_delay_variation t.metrics ~at:arrival ~variation
      | None -> ());
      call.last_rtp_delay <- Some delay

(* ------------------------------------------------------------------ *)
(* Call lifecycle                                                      *)
(* ------------------------------------------------------------------ *)

let finish_call t call =
  if call.state <> Ended then begin
    call.state <- Ended;
    stop_media call;
    cancel_timer call.hangup_timer;
    cancel_timer call.answer_timer;
    (match call.receiver with
    | Some receiver when Rtp.Session.Receiver.packets_received receiver > 1 ->
        Metrics.record_jitter t.metrics (Rtp.Jitter.jitter_seconds (Rtp.Session.Receiver.jitter receiver))
    | Some _ | None -> ());
    (match call.playout with
    | Some playout when Rtp.Playout.received playout > 0 ->
        Metrics.record_playout_late t.metrics (Rtp.Playout.late_fraction playout)
    | Some _ | None -> ());
    (* Fraudulent endpoints keep the media flowing after teardown. *)
    if t.fraudulent && call.sender <> None && call.remote_media <> None then begin
      call.rtp_timer <- None;
      let rec fraud_tick remaining =
        if remaining > 0 then begin
          (match (call.sender, call.remote_media) with
          | Some sender, Some remote ->
              Transport.send_raw t.transport ~src:call.local_media ~dst:remote
                (Rtp.Rtp_packet.encode (Rtp.Session.Sender.next_packet sender))
          | _ -> ());
          ignore
            (Dsim.Scheduler.schedule_after (sched t)
               (Rtp.Codec.packet_interval t.codec)
               (fun () -> fraud_tick (remaining - 1)))
        end
      in
      fraud_tick 500
    end;
    (* Reap the record after a linger so late packets still find it. *)
    ignore
      (Dsim.Scheduler.schedule_after (sched t) (Time.of_sec 40.0) (fun () ->
           Hashtbl.remove t.media_ports (Dsim.Addr.port call.local_media);
           Hashtbl.remove t.calls call.call_id))
  end

let new_cseq call meth =
  call.local_cseq <- call.local_cseq + 1;
  Sip.Cseq.make call.local_cseq meth

let in_dialog_request ?body ?content_type t call meth =
  let remote_uri =
    match call.remote_uri with
    | Some uri -> uri
    | None -> Sip.Uri.make "unknown.invalid"
  in
  let to_params =
    match call.remote_tag with None -> [] | Some tag -> [ ("tag", Some tag) ]
  in
  let routes =
    List.map
      (fun addr ->
        ("Route", Printf.sprintf "<sip:%s:%d;lr>" (Dsim.Addr.host addr) (Dsim.Addr.port addr)))
      call.route_set
  in
  Sip.Msg.request ~meth ~uri:remote_uri
    ~via:
      (Sip.Via.make ~port:(Dsim.Addr.port t.local) ~branch:(Sip.Ident.branch t.ident)
         (Dsim.Addr.host t.local))
    ~from_:(local_na t call)
    ~to_:(Sip.Name_addr.make ~params:to_params remote_uri)
    ~call_id:call.call_id ~cseq:(new_cseq call meth) ~contact:(contact_na t) ~headers:routes
    ?body ?content_type ()

(* Next hop for in-dialog messages: the first route when the proxies
   record-routed the dialog, else the peer's contact. *)
let in_dialog_next_hop call =
  match call.route_set with addr :: _ -> Some addr | [] -> call.peer_contact

let send_bye t call =
  match in_dialog_next_hop call with
  | None -> finish_call t call
  | Some peer ->
      let bye = in_dialog_request t call Sip.Msg_method.BYE in
      stop_media call;
      ignore
        (Txn_manager.request (txn_mgr t) bye ~dst:peer
           ~on_response:(fun response ->
             match Sip.Msg.status_of response with
             | Some code when Sip.Status.is_final code ->
                 Metrics.incr_completed t.metrics;
                 finish_call t call
             | Some _ | None -> ())
           ~on_timeout:(fun () -> finish_call t call))

let hangup_all t =
  Hashtbl.iter (fun _ call -> if call.state = Active then send_bye t call) t.calls

(* --- Caller side --- *)

let send_ack_for_2xx t call response =
  let remote_target =
    match contact_addr_of response with Some a -> Some a | None -> call.peer_contact
  in
  call.peer_contact <- remote_target;
  (* RFC 3261 §12.1.2: the caller's route set is the Record-Route list in
     reverse order. *)
  if call.route_set = [] then call.route_set <- route_set_of response ~reversed:true;
  (match Sip.Msg.contact response with
  | Ok na -> call.remote_uri <- Some na.Sip.Name_addr.uri
  | Error _ -> ());
  match in_dialog_next_hop call with
  | None -> ()
  | Some peer ->
      let to_value =
        match Sip.Header.get response.Sip.Msg.headers "To" with Some v -> v | None -> ""
      in
      let uri =
        match call.remote_uri with Some u -> u | None -> Sip.Uri.make "unknown.invalid"
      in
      let routes =
        List.map
          (fun addr ->
            ( "Route",
              Printf.sprintf "<sip:%s:%d;lr>" (Dsim.Addr.host addr) (Dsim.Addr.port addr) ))
          call.route_set
      in
      let ack =
        Sip.Msg.request ~meth:Sip.Msg_method.ACK ~uri
          ~via:
            (Sip.Via.make ~port:(Dsim.Addr.port t.local) ~branch:(Sip.Ident.branch t.ident)
               (Dsim.Addr.host t.local))
          ~from_:(local_na t call)
          ~to_:
            (match Sip.Name_addr.parse to_value with
            | Ok na -> na
            | Error _ -> Sip.Name_addr.make uri)
          ~call_id:call.call_id
          ~cseq:(Sip.Cseq.make call.local_cseq Sip.Msg_method.ACK)
          ~headers:routes ()
      in
      call.last_ack <- Some ack;
      Transport.send_msg t.transport ack peer

(* Mid-call media renegotiation: move our receive endpoint to a fresh port
   via an in-dialog INVITE (paper §2.1).  The sender keeps its SSRC and
   sequence space; only the advertised endpoint changes. *)
let reinvite_media t call =
  match in_dialog_next_hop call with
  | None -> ()
  | Some peer when call.state = Active ->
      let new_port = alloc_media_port t call.call_id in
      let new_media = Dsim.Addr.v (Dsim.Addr.host t.local) new_port in
      let invite =
        in_dialog_request t call Sip.Msg_method.INVITE
          ~body:(sdp_body_for t new_media) ~content_type:"application/sdp"
      in
      ignore
        (Txn_manager.request (txn_mgr t) invite ~dst:peer
           ~on_response:(fun response ->
             match Sip.Msg.status_of response with
             | Some code when Sip.Status.is_success code ->
                 Hashtbl.remove t.media_ports (Dsim.Addr.port call.local_media);
                 call.local_media <- new_media;
                 (match parse_remote_media response.Sip.Msg.body with
                 | Some media -> call.remote_media <- Some media
                 | None -> ());
                 send_ack_for_2xx t call response
             | Some _ | None -> ())
           ~on_timeout:(fun () -> ()))
  | Some _ -> ()

let reinvite_all t =
  Hashtbl.iter (fun _ call -> if call.state = Active then reinvite_media t call) t.calls

let on_invite_response t call ~duration response =
  match Sip.Msg.status_of response with
  | None -> ()
  | Some code ->
      if code >= 180 && code <= 199 && not call.setup_recorded then begin
        call.setup_recorded <- true;
        Metrics.record_setup t.metrics ~caller:t.name ~at:(now t)
          ~delay:(Time.sub (now t) call.invite_sent_at)
      end;
      if Sip.Status.is_success code then begin
        if not call.setup_recorded then begin
          call.setup_recorded <- true;
          Metrics.record_setup t.metrics ~caller:t.name ~at:(now t)
            ~delay:(Time.sub (now t) call.invite_sent_at)
        end;
        if call.state = Setup then begin
          (match Sip.Msg.to_ response with
          | Ok to_ -> call.remote_tag <- Sip.Name_addr.tag to_
          | Error _ -> ());
          call.to_tag <- call.remote_tag;
          (match parse_remote_media response.Sip.Msg.body with
          | Some media -> call.remote_media <- Some media
          | None -> ());
          send_ack_for_2xx t call response;
          call.state <- Active;
          Metrics.incr_established t.metrics;
          start_media t call;
          call.hangup_timer <-
            Some
              (Dsim.Scheduler.schedule_after (sched t) duration (fun () ->
                   if call.state = Active then send_bye t call))
        end
      end
      else if code >= 300 then begin
        Metrics.incr_failed t.metrics;
        finish_call t call
      end

let call t ~callee ~duration =
  if live_calls t >= t.max_concurrent then Metrics.incr_failed t.metrics
  else begin
    let call_id = Sip.Ident.call_id t.ident ~host:(Dsim.Addr.host t.local) in
    let local_tag = Sip.Ident.tag t.ident in
    let media_port = alloc_media_port t call_id in
    let record =
      {
        call_id;
        role = `Caller;
        local_media = Dsim.Addr.v (Dsim.Addr.host t.local) media_port;
        state = Setup;
        remote_media = None;
        peer_contact = None;
        from_tag = Some local_tag;
        to_tag = None;
        local_tag;
        remote_tag = None;
        local_cseq = 1;
        sender = None;
        receiver = None;
        playout = None;
        rtp_timer = None;
        hangup_timer = None;
        answer_timer = None;
        invite_sent_at = now t;
        setup_recorded = false;
        last_rtp_delay = None;
        invite_server_txn = None;
        original_invite = None;
        last_ack = None;
        remote_uri = Some callee;
        talking = true;
        route_set = [];
      }
    in
    Hashtbl.replace t.calls call_id record;
    Metrics.incr_attempted t.metrics;
    let invite =
      Sip.Msg.request ~meth:Sip.Msg_method.INVITE ~uri:callee
        ~via:
          (Sip.Via.make ~port:(Dsim.Addr.port t.local) ~branch:(Sip.Ident.branch t.ident)
             (Dsim.Addr.host t.local))
        ~from_:(local_na t record)
        ~to_:(Sip.Name_addr.make callee)
        ~call_id
        ~cseq:(Sip.Cseq.make 1 Sip.Msg_method.INVITE)
        ~contact:(contact_na t) ~content_type:"application/sdp" ~body:(sdp_body t record) ()
    in
    record.invite_sent_at <- now t;
    ignore
      (Txn_manager.request (txn_mgr t) invite ~dst:t.proxy
         ~on_response:(fun response -> on_invite_response t record ~duration response)
         ~on_timeout:(fun () ->
           Metrics.incr_failed t.metrics;
           finish_call t record))
  end

(* --- Callee side --- *)

let answer t call txn invite =
  if call.state = Setup then begin
    let body = sdp_body t call in
    let response =
      Sip.Msg.response_to invite ~code:200 ~to_tag:call.local_tag
        ~headers:[ ("Contact", Sip.Name_addr.to_string (contact_na t)) ]
        ~content_type:"application/sdp" ~body ()
    in
    Sip.Transaction.Server.respond txn response
  end

let on_invite t invite ~src:_ txn =
  if live_calls t >= t.max_concurrent then
    Sip.Transaction.Server.respond txn (Sip.Msg.response_to invite ~code:486 ~to_tag:"busy" ())
  else
    match Sip.Msg.call_id invite with
    | Error _ ->
        Sip.Transaction.Server.respond txn (Sip.Msg.response_to invite ~code:400 ())
    | Ok call_id when Hashtbl.mem t.calls call_id ->
        (* Retransmission already absorbed by the transaction layer; a
           re-INVITE for an active call renegotiates media (paper §2.1: the
           media path only changes through a re-invite). *)
        let call = Hashtbl.find t.calls call_id in
        (match parse_remote_media invite.Sip.Msg.body with
        | Some media -> call.remote_media <- Some media
        | None -> ());
        if call.state = Active then
          Sip.Transaction.Server.respond txn
            (Sip.Msg.response_to invite ~code:200 ~to_tag:call.local_tag
               ~headers:[ ("Contact", Sip.Name_addr.to_string (contact_na t)) ]
               ~content_type:"application/sdp" ~body:(sdp_body t call) ())
        else answer t call txn invite
    | Ok call_id ->
        let local_tag = Sip.Ident.tag t.ident in
        let media_port = alloc_media_port t call_id in
        let record =
          {
            call_id;
            role = `Callee;
            local_media = Dsim.Addr.v (Dsim.Addr.host t.local) media_port;
            state = Setup;
            remote_media = parse_remote_media invite.Sip.Msg.body;
            peer_contact = contact_addr_of invite;
            from_tag =
              (match Sip.Msg.from_ invite with
              | Ok na -> Sip.Name_addr.tag na
              | Error _ -> None);
            to_tag = Some local_tag;
            local_tag;
            remote_tag =
              (match Sip.Msg.from_ invite with
              | Ok na -> Sip.Name_addr.tag na
              | Error _ -> None);
            local_cseq = 0;
            sender = None;
            receiver = None;
            playout = None;
            rtp_timer = None;
            hangup_timer = None;
            answer_timer = None;
            invite_sent_at = now t;
            setup_recorded = true;
            last_rtp_delay = None;
            invite_server_txn = Some txn;
            original_invite = Some invite;
            last_ack = None;
            remote_uri =
              (match Sip.Msg.contact invite with
              | Ok na -> Some na.Sip.Name_addr.uri
              | Error _ -> None);
            talking = true;
            route_set = route_set_of invite ~reversed:false;
          }
        in
        Hashtbl.replace t.calls call_id record;
        Sip.Transaction.Server.respond txn
          (Sip.Msg.response_to invite ~code:180 ~to_tag:local_tag ());
        let delay = Time.of_sec (Dsim.Rng.uniform t.rng 0.5 2.5) in
        record.answer_timer <-
          Some
            (Dsim.Scheduler.schedule_after (sched t) delay (fun () ->
                 answer t record txn invite))

let on_bye t bye ~src:_ txn =
  Sip.Transaction.Server.respond txn (Sip.Msg.response_to bye ~code:200 ());
  match Sip.Msg.call_id bye with
  | Error _ -> ()
  | Ok call_id -> (
      match Hashtbl.find_opt t.calls call_id with
      | None -> ()
      | Some call ->
          stop_media call;
          finish_call t call)

let on_request t msg ~src txn =
  match Sip.Msg.method_of msg with
  | Some Sip.Msg_method.INVITE -> on_invite t msg ~src txn
  | Some Sip.Msg_method.BYE -> on_bye t msg ~src txn
  | Some Sip.Msg_method.OPTIONS ->
      Sip.Transaction.Server.respond txn (Sip.Msg.response_to msg ~code:200 ())
  | Some _ | None ->
      Sip.Transaction.Server.respond txn (Sip.Msg.response_to msg ~code:501 ())

let on_ack t ack ~src:_ =
  match Sip.Msg.call_id ack with
  | Error _ -> ()
  | Ok call_id -> (
      match Hashtbl.find_opt t.calls call_id with
      | None -> ()
      | Some call ->
          if call.role = `Callee && call.state = Setup then begin
            call.state <- Active;
            start_media t call
          end)

let on_cancel t cancel ~src:_ invite_txn =
  (match invite_txn with
  | Some txn ->
      let invite = Sip.Transaction.Server.request txn in
      Sip.Transaction.Server.respond txn (Sip.Msg.response_to invite ~code:487 ())
  | None -> ());
  match Sip.Msg.call_id cancel with
  | Error _ -> ()
  | Ok call_id -> (
      match Hashtbl.find_opt t.calls call_id with
      | None -> ()
      | Some call -> finish_call t call)

let on_stray_response t response ~src:_ =
  (* A retransmitted 2xx whose client transaction already ended: re-ACK. *)
  match (Sip.Msg.status_of response, Sip.Msg.call_id response) with
  | Some code, Ok call_id when Sip.Status.is_success code -> (
      match Hashtbl.find_opt t.calls call_id with
      | Some ({ last_ack = Some ack; _ } as call) -> (
          match in_dialog_next_hop call with
          | Some peer -> Transport.send_msg t.transport ack peer
          | None -> ())
      | Some _ | None -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Wiring                                                              *)
(* ------------------------------------------------------------------ *)

let handle_packet t (packet : Dsim.Packet.t) =
  let dst_port = Dsim.Addr.port packet.dst in
  if dst_port = Dsim.Addr.port t.local then Txn_manager.handle_packet (txn_mgr t) packet
  else
    match Hashtbl.find_opt t.media_ports dst_port with
    | Some call_id -> (
        match Hashtbl.find_opt t.calls call_id with
        | Some call -> handle_media t call packet
        | None -> ())
    | None ->
        (* RTCP rides on media port + 1. *)
        if dst_port land 1 = 1 && Hashtbl.mem t.media_ports (dst_port - 1) then
          match Rtp.Rtcp.decode packet.payload with
          | Ok _ -> Metrics.incr_rtcp_received t.metrics
          | Error _ -> ()

let register t =
  let local_tag = Sip.Ident.tag t.ident in
  let call_id = Sip.Ident.call_id t.ident ~host:(Dsim.Addr.host t.local) in
  let build ~cseq ~extra_headers =
    Sip.Msg.request ~meth:Sip.Msg_method.REGISTER
      ~uri:(Sip.Uri.make t.domain)
      ~via:
        (Sip.Via.make ~port:(Dsim.Addr.port t.local) ~branch:(Sip.Ident.branch t.ident)
           (Dsim.Addr.host t.local))
      ~from_:(Sip.Name_addr.make ~params:[ ("tag", Some local_tag) ] (aor t))
      ~to_:(Sip.Name_addr.make (aor t))
      ~call_id
      ~cseq:(Sip.Cseq.make cseq Sip.Msg_method.REGISTER)
      ~contact:(contact_na t)
      ~headers:(("Expires", "3600") :: extra_headers)
      ()
  in
  (* One 401-challenge round (RFC 3261 §22.2): answer the digest challenge
     with our credentials, then give up rather than loop. *)
  let rec send ~cseq ~extra_headers ~may_retry =
    ignore
      (Txn_manager.request (txn_mgr t)
         (build ~cseq ~extra_headers)
         ~dst:t.proxy
         ~on_response:(fun response ->
           match Sip.Msg.status_of response with
           | Some 401 when may_retry -> (
               match Sip.Header.get response.Sip.Msg.headers "WWW-Authenticate" with
               | Some challenge_value -> (
                   match Sip.Auth.parse_challenge challenge_value with
                   | Ok challenge ->
                       let authorization =
                         Sip.Auth.authorization_header ~username:t.name ~password:t.password
                           ~challenge ~meth:Sip.Msg_method.REGISTER
                           ~uri:(Sip.Uri.make t.domain)
                       in
                       send ~cseq:(cseq + 1)
                         ~extra_headers:[ ("Authorization", authorization) ]
                         ~may_retry:false
                   | Error _ -> ())
               | None -> ())
           | Some _ | None -> ())
         ~on_timeout:(fun () -> ()))
  in
  send ~cseq:1 ~extra_headers:[] ~may_retry:true

type call_info = {
  call_id : string;
  role : [ `Caller | `Callee ];
  state : [ `Setup | `Active | `Ended ];
  local_media : Dsim.Addr.t;
  remote_media : Dsim.Addr.t option;
  ssrc : int32 option;
  next_seq : int option;
  next_ts : int32 option;
  peer_contact : Dsim.Addr.t option;
  from_tag : string option;
  to_tag : string option;
}

let active_calls t =
  Hashtbl.fold
    (fun _ (c : call) acc ->
      let state = match c.state with Setup -> `Setup | Active -> `Active | Ended -> `Ended in
      {
        call_id = c.call_id;
        role = c.role;
        state;
        local_media = c.local_media;
        remote_media = c.remote_media;
        ssrc = Option.map Rtp.Session.Sender.ssrc c.sender;
        next_seq = Option.map Rtp.Session.Sender.current_sequence c.sender;
        next_ts = Option.map Rtp.Session.Sender.current_timestamp c.sender;
        peer_contact = c.peer_contact;
        from_tag = c.from_tag;
        to_tag = c.to_tag;
      }
      :: acc)
    t.calls []

let create net node ~name ~host ~domain ~proxy ~rng ~metrics ?(codec = Rtp.Codec.g729)
    ?(max_concurrent = 2) ?(vad = false) ?password () =
  let local = Dsim.Addr.v host 5060 in
  let transport = Transport.create net node ~local in
  let t =
    {
      name;
      domain;
      local;
      proxy;
      transport;
      txn_mgr = None;
      ident = Sip.Ident.create (Dsim.Rng.split rng);
      rng = Dsim.Rng.split rng;
      codec;
      metrics;
      calls = Hashtbl.create 8;
      media_ports = Hashtbl.create 8;
      next_media_port = 16384;
      max_concurrent;
      vad;
      password = (match password with Some p -> p | None -> "pw-" ^ name);
      fraudulent = false;
    }
  in
  let callbacks =
    {
      Txn_manager.on_request = (fun msg ~src txn -> on_request t msg ~src txn);
      on_cancel = (fun msg ~src txn -> on_cancel t msg ~src txn);
      on_ack = (fun msg ~src -> on_ack t msg ~src);
      on_stray_response = (fun msg ~src -> on_stray_response t msg ~src);
    }
  in
  t.txn_mgr <- Some (Txn_manager.create transport callbacks);
  Dsim.Network.set_handler node (fun packet -> handle_packet t packet);
  t
