type callbacks = {
  on_request : Sip.Msg.t -> src:Dsim.Addr.t -> Sip.Transaction.Server.t -> unit;
  on_cancel : Sip.Msg.t -> src:Dsim.Addr.t -> Sip.Transaction.Server.t option -> unit;
  on_ack : Sip.Msg.t -> src:Dsim.Addr.t -> unit;
  on_stray_response : Sip.Msg.t -> src:Dsim.Addr.t -> unit;
}

type t = {
  transport : Transport.t;
  callbacks : callbacks;
  clients : (string, Sip.Transaction.Client.t) Hashtbl.t;
  servers : (string, Sip.Transaction.Server.t) Hashtbl.t;
  mutable dropped : int;
}

let create transport callbacks =
  {
    transport;
    callbacks;
    clients = Hashtbl.create 16;
    servers = Hashtbl.create 16;
    dropped = 0;
  }

let transport t = t.transport
let client_key ~branch ~meth = branch ^ "|" ^ Sip.Msg_method.to_string meth

let client_key_of_msg msg =
  match (Sip.Msg.top_via msg, Sip.Msg.cseq msg) with
  | Ok via, Ok cseq ->
      let branch = Option.value (Sip.Via.branch via) ~default:"no-branch" in
      Some (client_key ~branch ~meth:cseq.Sip.Cseq.meth)
  | _ -> None

let request t msg ~dst ~on_response ~on_timeout =
  let key = match client_key_of_msg msg with Some k -> k | None -> "unkeyed" in
  let txn =
    Sip.Transaction.Client.create
      (Transport.txn_transport t.transport)
      msg ~dst ~on_response ~on_timeout
      ~on_terminated:(fun () -> Hashtbl.remove t.clients key)
  in
  Hashtbl.replace t.clients key txn;
  txn

let handle_response t msg ~src =
  match client_key_of_msg msg with
  | None -> t.dropped <- t.dropped + 1
  | Some key -> (
      match Hashtbl.find_opt t.clients key with
      | Some txn -> Sip.Transaction.Client.receive txn msg
      | None -> t.callbacks.on_stray_response msg ~src)

let new_server_txn t msg ~src ~key =
  let txn =
    Sip.Transaction.Server.create
      (Transport.txn_transport t.transport)
      msg ~src
      ~on_ack:(fun _ -> ())
      ~on_terminated:(fun () -> Hashtbl.remove t.servers key)
  in
  Hashtbl.replace t.servers key txn;
  txn

let handle_request t msg ~src =
  match Sip.Msg.transaction_key msg with
  | Error _ -> t.dropped <- t.dropped + 1
  | Ok key -> (
      let meth = match Sip.Msg.method_of msg with Some m -> m | None -> Sip.Msg_method.INFO in
      match Hashtbl.find_opt t.servers key with
      | Some txn -> Sip.Transaction.Server.receive txn msg
      | None -> (
          match meth with
          | Sip.Msg_method.ACK ->
              (* ACK for a 2xx creates no transaction (RFC 3261 §13.3). *)
              t.callbacks.on_ack msg ~src
          | Sip.Msg_method.CANCEL ->
              (* The CANCEL gets its own transaction: 200 when it matches a
                 pending INVITE (the TU then answers that INVITE with 487),
                 481 otherwise (RFC 3261 §9.2). *)
              let cancel_txn = new_server_txn t msg ~src ~key in
              let invite_txn =
                match Sip.Msg.invite_key_of_cancel msg with
                | Ok invite_key -> Hashtbl.find_opt t.servers invite_key
                | Error _ -> None
              in
              let code = match invite_txn with Some _ -> 200 | None -> 481 in
              Sip.Transaction.Server.respond cancel_txn (Sip.Msg.response_to msg ~code ());
              t.callbacks.on_cancel msg ~src invite_txn
          | _ ->
              let txn = new_server_txn t msg ~src ~key in
              t.callbacks.on_request msg ~src txn))

let handle_packet t (packet : Dsim.Packet.t) =
  match Sip.Msg.parse packet.payload with
  | Error _ -> t.dropped <- t.dropped + 1
  | Ok msg ->
      if Sip.Msg.is_response msg then handle_response t msg ~src:packet.src
      else handle_request t msg ~src:packet.src

let dropped t = t.dropped
let active_clients t = Hashtbl.length t.clients
let active_servers t = Hashtbl.length t.servers
