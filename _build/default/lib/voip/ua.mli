(** SIP user agent (phone) model.

    Each UA owns a network node, speaks SIP through the transaction layer
    (so retransmission under loss is real) and streams RTP media during
    established calls.  The UA switches between UAC and UAS roles per call,
    as in the paper's §2.1 description.

    For the attack experiments a UA can be marked {e fraudulent}: it sends
    BYE to stop billing but keeps transmitting RTP — the toll-fraud
    behaviour of paper §3.1. *)

type t

type call_info = {
  call_id : string;
  role : [ `Caller | `Callee ];
  state : [ `Setup | `Active | `Ended ];
  local_media : Dsim.Addr.t;
  remote_media : Dsim.Addr.t option;
  ssrc : int32 option;  (** Our sender's SSRC once media started. *)
  next_seq : int option;
  next_ts : int32 option;
  peer_contact : Dsim.Addr.t option;
  from_tag : string option;
  to_tag : string option;
}

val create :
  Dsim.Network.t ->
  Dsim.Network.node ->
  name:string ->
  host:string ->
  domain:string ->
  proxy:Dsim.Addr.t ->
  rng:Dsim.Rng.t ->
  metrics:Metrics.t ->
  ?codec:Rtp.Codec.t ->
  ?max_concurrent:int ->
  ?vad:bool ->
  ?password:string ->
  unit ->
  t
(** Also installs the UA as the node's packet handler.  [password] (default
    ["pw-<name>"]) answers the registrar's digest challenge when the proxy
    enforces authentication. *)

val name : t -> string

val aor : t -> Sip.Uri.t
(** [sip:name\@domain]. *)

val addr : t -> Dsim.Addr.t

val transport : t -> Transport.t

val register : t -> unit
(** Sends REGISTER to the configured proxy. *)

val call : t -> callee:Sip.Uri.t -> duration:Dsim.Time.t -> unit
(** Originates a call; the UA hangs up [duration] after establishment.
    Silently refused (and counted as failed) when at capacity. *)

val hangup_all : t -> unit

val reinvite_all : t -> unit
(** Renegotiates the media endpoint of every active call via an in-dialog
    re-INVITE (a fresh RTP port is allocated and advertised in new SDP). *)

val set_fraudulent : t -> bool -> unit
(** When true, BYE does not stop this UA's RTP sender. *)

val active_calls : t -> call_info list
(** Snapshot, including recently ended calls not yet reaped. *)

val handle_packet : t -> Dsim.Packet.t -> unit
(** Exposed for tests; normally wired as the node handler by [create]. *)
