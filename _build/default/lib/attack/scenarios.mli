(** Scripted attack scenarios against the Figure-7 testbed.

    Each function schedules an attack at [at] (simulation time) and returns
    immediately; run the scheduler to execute it.  Attacker knowledge that
    the paper grants the adversary (SDP contents, SSRC identifiers, dialog
    tags — "a third party knowing the SDP information ... could fabricate
    RTP packets") is obtained by inspecting the victim UAs, which stands in
    for on-path eavesdropping. *)

type t
(** An attacker with a host on the Internet side of the cloud. *)

val create : Voip.Testbed.t -> host:string -> t

val host : t -> string

(** {1 Signaling attacks (paper §3.1)} *)

val invite_flood :
  t -> target:Sip.Uri.t -> via_proxy:bool -> count:int -> interval:Dsim.Time.t ->
  at:Dsim.Time.t -> unit
(** [count] INVITEs with distinct Call-IDs to one destination.  [via_proxy]
    sends through network B's proxy (the normal path); otherwise straight to
    the phone. *)

val spoofed_bye_call : t -> caller:Voip.Ua.t -> callee:Voip.Ua.t -> at:Dsim.Time.t -> unit
(** Starts a call between the two UAs at [at], then (2 s after answer
    windows close) tears it down with a BYE forged from the attacker's host
    claiming the caller's identity.  The caller keeps streaming — the BYE
    DoS signature. *)

val cancel_dos_call : t -> caller:Voip.Ua.t -> callee:Voip.Ua.t -> at:Dsim.Time.t -> unit
(** Starts a call and CANCELs it from a third-party source while ringing. *)

val hijack_call : t -> caller:Voip.Ua.t -> callee:Voip.Ua.t -> at:Dsim.Time.t -> unit
(** Starts a call, then injects an in-dialog INVITE with foreign tags. *)

val drdos : t -> victim_host:string -> reflectors:int -> responses:int -> at:Dsim.Time.t -> unit
(** Unsolicited responses from many spoofed reflector sources to the
    victim. *)

val register_hijack : t -> victim:Voip.Ua.t -> at:Dsim.Time.t -> unit
(** REGISTERs the victim's address-of-record with the attacker's contact at
    network B's registrar, redirecting the victim's future inbound calls. *)

(** {1 Media attacks (paper §3.2)} *)

val media_spam_call : t -> caller:Voip.Ua.t -> callee:Voip.Ua.t -> at:Dsim.Time.t -> unit
(** Starts a call, then injects RTP with the caller's SSRC but jumped
    sequence numbers/timestamps toward the callee. *)

val rtp_flood :
  t -> target:Dsim.Addr.t -> rate_pps:int -> duration:Dsim.Time.t -> at:Dsim.Time.t -> unit
(** High-rate in-order RTP from the attacker's own SSRC. *)

val billing_fraud_call : t -> caller:Voip.Ua.t -> callee:Voip.Ua.t -> at:Dsim.Time.t -> unit
(** Marks the caller fraudulent, runs a short call; after its genuine BYE
    the caller keeps streaming. *)
