lib/attack/forge.ml: Option Rtp Sip String
