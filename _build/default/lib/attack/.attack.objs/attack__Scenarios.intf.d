lib/attack/scenarios.mli: Dsim Sip Voip
