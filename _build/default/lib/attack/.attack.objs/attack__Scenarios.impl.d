lib/attack/scenarios.ml: Dsim Float Forge Hashtbl Int32 Int64 List Option Printf Sdp Sip Voip
