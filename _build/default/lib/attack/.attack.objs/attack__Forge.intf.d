lib/attack/forge.mli: Sip
